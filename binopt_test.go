package binopt

import (
	"math"
	"strings"
	"testing"
)

func TestPriceFacade(t *testing.T) {
	v, err := Price(demoOption(), 512)
	if err != nil {
		t.Fatal(err)
	}
	if v <= 5 || v > 12 {
		t.Errorf("american put price = %v, expected single digits above intrinsic", v)
	}
	if _, err := Price(demoOption(), 0); err == nil {
		t.Error("zero steps should fail")
	}
}

func TestPriceWithGreeksFacade(t *testing.T) {
	v, g, err := PriceWithGreeks(demoOption(), 256)
	if err != nil {
		t.Fatal(err)
	}
	if v <= 0 || g.Delta >= 0 || g.Vega <= 0 {
		t.Errorf("price %v greeks %+v", v, g)
	}
}

func TestPriceBatchFacade(t *testing.T) {
	opts := []Option{demoOption(), demoOption()}
	opts[1].Strike = 95
	vs, err := PriceBatch(opts, 128, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 2 || vs[0] <= vs[1] {
		t.Errorf("K=105 put should exceed K=95 put: %v", vs)
	}
}

func TestImpliedVolRoundTrip(t *testing.T) {
	o := demoOption()
	o.Sigma = 0.31
	quote, err := Price(o, 128)
	if err != nil {
		t.Fatal(err)
	}
	iv, err := ImpliedVol(quote, o, 128)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(iv-0.31) > 1e-4 {
		t.Errorf("implied vol = %v, want 0.31", iv)
	}
}

func TestTable1Experiment(t *testing.T) {
	res, err := Table1()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Text, "Logic utilization") || !strings.Contains(res.Text, "Power consumption") {
		t.Errorf("table 1 text:\n%s", res.Text)
	}
	if res.KernelIVA.NodeLanes != 6 || res.KernelIVB.NodeLanes != 8 {
		t.Errorf("lanes: IVA %d IVB %d", res.KernelIVA.NodeLanes, res.KernelIVB.NodeLanes)
	}
}

func TestTable2ExperimentFast(t *testing.T) {
	// Full-depth throughput model with a reduced-depth accuracy batch to
	// keep the test quick.
	res, err := Table2(Table2Config{Steps: 1024, RMSEOptions: 12, RMSESteps: 256})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 7 {
		t.Fatalf("got %d rows", len(res.Rows))
	}
	for _, want := range []string{"Kernel IV.A", "Kernel IV.B", "Reference Software", "[9] Jin", "[10] Wynnyk"} {
		if !strings.Contains(res.Text, want) {
			t.Errorf("table 2 missing %q:\n%s", want, res.Text)
		}
	}
	// The flawed-pow FPGA row must carry a nonzero RMSE; the double
	// reference row zero.
	var sawFlawed bool
	for _, r := range res.Rows {
		if r.Kernel == "IV.B" && strings.Contains(r.Platform, "EP4SGX530") {
			if r.RMSE == 0 {
				t.Error("FPGA IV.B row should show the Power-operator RMSE")
			}
			sawFlawed = true
		}
	}
	if !sawFlawed {
		t.Error("no FPGA IV.B row found")
	}
}

func TestSaturationExperiment(t *testing.T) {
	res, err := Saturation(nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 2 {
		t.Fatalf("got %d platforms", len(res))
	}
	for _, r := range res {
		if len(r.Points) == 0 || r.Text == "" {
			t.Errorf("empty saturation result for %s", r.Label)
		}
	}
	// FPGA saturates an order of magnitude earlier than the GPU: compare
	// the workload at which each reaches 80% of its own peak.
	reach80 := func(r SaturationResult) int64 {
		peak := r.Points[len(r.Points)-1].OptionsPerSec
		for _, p := range r.Points {
			if p.OptionsPerSec >= 0.8*peak {
				return p.Options
			}
		}
		return math.MaxInt64
	}
	if reach80(res[0]) >= reach80(res[1]) {
		t.Errorf("FPGA should saturate earlier: %d vs %d", reach80(res[0]), reach80(res[1]))
	}
}

func TestVolCurveExperimentSmall(t *testing.T) {
	res, err := VolCurve(VolCurveConfig{Quotes: 30, Steps: 96, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points)+res.Skipped != 30 {
		t.Errorf("points %d + skipped %d != 30", len(res.Points), res.Skipped)
	}
	if res.FPGASeconds <= 0 || res.FPGAPowerWatts <= 0 {
		t.Errorf("model outputs missing: %+v", res)
	}
	if !strings.Contains(res.Text, "implied vol") {
		t.Errorf("text:\n%s", res.Text)
	}
}

func TestKnobSweepExperiment(t *testing.T) {
	rows, text, err := KnobSweep(1024)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 24 {
		t.Fatalf("got %d sweep rows", len(rows))
	}
	var fitCount, noFitCount int
	var paperA, paperB *KnobSweepRow
	for i := range rows {
		r := &rows[i]
		if r.Fits {
			fitCount++
		} else {
			noFitCount++
		}
		if r.Kernel == "IV.A" && r.Knobs.Vectorize == 2 && r.Knobs.Replicate == 3 && r.Knobs.Unroll == 1 {
			paperA = r
		}
		if r.Kernel == "IV.B" && r.Knobs.Vectorize == 4 && r.Knobs.Unroll == 2 {
			paperB = r
		}
	}
	if fitCount == 0 || noFitCount == 0 {
		t.Errorf("sweep should contain both fitting and non-fitting points (%d/%d)", fitCount, noFitCount)
	}
	if paperA == nil || !paperA.Fits {
		t.Error("the paper's IV.A knobs must fit")
	}
	if paperB == nil || !paperB.Fits {
		t.Error("the paper's IV.B knobs must fit")
	}
	// The paper's IV.B choice should be near the best fitting IV.B point
	// (it was chosen "after several compilation iterations"). The model's
	// sweep finds vec2 x unroll4 — the same 8 lanes with less LSU area and
	// hence a slightly higher clock — about 9% faster; anything beyond
	// ~15% would mean the model disagrees with the paper's exploration.
	for _, r := range rows {
		if r.Kernel == "IV.B" && r.Fits && r.OptionsPerSec > paperB.OptionsPerSec*1.15 {
			t.Errorf("sweep found a much faster fitting IV.B config than the paper's: %v at %.0f options/s",
				r.Knobs, r.OptionsPerSec)
		}
	}
	if !strings.Contains(text, "vec4") {
		t.Errorf("sweep table:\n%s", text)
	}
}

func TestPowAccuracyExperiment(t *testing.T) {
	res, err := PowAccuracy(1024, 16, 0)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's headline: flawed pow gives RMSE ~1e-3, the fix removes
	// it, host leaves are exact.
	if om := orderOf(res.FlawedRMSE); om < -5 || om > -2 {
		t.Errorf("flawed RMSE %g (order %d), want ~1e-3", res.FlawedRMSE, om)
	}
	if res.FixedRMSE > 1e-9 {
		t.Errorf("fixed-core RMSE %g, want ~0", res.FixedRMSE)
	}
	if res.HostRMSE != 0 {
		t.Errorf("host RMSE %g, want 0", res.HostRMSE)
	}
	if res.SingleRMSE == 0 {
		t.Error("single-precision RMSE should be nonzero")
	}
	if !strings.Contains(res.Text, "Power-operator") {
		t.Errorf("text:\n%s", res.Text)
	}
}

func orderOf(x float64) int {
	if x == 0 {
		return math.MinInt
	}
	return int(math.Floor(math.Log10(math.Abs(x))))
}

func TestFigures(t *testing.T) {
	f1, err := Figure1(0)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(f1, "Binomial tree") {
		t.Error("figure 1 broken")
	}
	if !strings.Contains(Figure2(), "DEVICE") {
		t.Error("figure 2 broken")
	}
	f3, err := Figure3(0, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(f3, "ping-pong") {
		t.Error("figure 3 broken")
	}
	f4, err := Figure4(0, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(f4, "barrier") {
		t.Error("figure 4 broken")
	}
}

func TestNewEngineAndBoundaryFacade(t *testing.T) {
	e, err := NewEngine(128)
	if err != nil {
		t.Fatal(err)
	}
	if e.Steps() != 128 {
		t.Errorf("Steps = %d", e.Steps())
	}
	pts, err := ExerciseBoundary(demoOption(), 128)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) == 0 {
		t.Error("american put should have an exercise boundary")
	}
	if _, err := ExerciseBoundary(demoOption(), 0); err == nil {
		t.Error("zero steps should fail")
	}
}
