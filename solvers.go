package binopt

import (
	"binopt/internal/baw"
	"binopt/internal/fdm"
	"binopt/internal/lattice"
	"binopt/internal/montecarlo"
	"binopt/internal/option"
	"binopt/internal/quadrature"
)

// The alternative solvers of the related-work survey ([12], §II) are part
// of the public surface so downstream users can rerun the method
// comparison on their own contracts.

// MCResult is a Monte Carlo estimate with its standard error.
type MCResult = montecarlo.Result

// MCConfig configures the Monte Carlo solvers.
type MCConfig = montecarlo.Config

// PriceMC estimates the option by Monte Carlo: exact terminal sampling
// for European contracts, Longstaff-Schwartz regression for American
// ones.
func PriceMC(o Option, cfg MCConfig) (MCResult, error) {
	if o.Style == option.European {
		return montecarlo.PriceEuropean(o, cfg)
	}
	if cfg.Steps == 0 {
		cfg.Steps = 50
	}
	return montecarlo.PriceAmerican(o, cfg)
}

// FDMConfig configures the finite-difference solver.
type FDMConfig = fdm.Config

// PriceFDM values the option by Crank-Nicolson finite differences with
// projected SOR for early exercise.
func PriceFDM(o Option, cfg FDMConfig) (float64, error) {
	return fdm.Price(o, cfg)
}

// QUADConfig configures the quadrature solver.
type QUADConfig = quadrature.Config

// PriceQUAD values the option by repeated lognormal-kernel integration
// (the QUAD method).
func PriceQUAD(o Option, cfg QUADConfig) (float64, error) {
	return quadrature.Price(o, cfg)
}

// PriceBAW returns the Barone-Adesi-Whaley quadratic approximation of an
// American option — closed-form speed at ~1% accuracy.
func PriceBAW(o Option) (float64, error) { return baw.Price(o) }

// PriceTrinomial values the option on a Boyle trinomial lattice.
func PriceTrinomial(o Option, steps int) (float64, error) {
	e, err := lattice.NewTrinomialEngine(steps)
	if err != nil {
		return 0, err
	}
	return e.Price(o)
}

// Dividend is one discrete cash dividend payment.
type Dividend = lattice.Dividend

// PriceWithDividends values the option under a discrete dividend
// schedule (escrowed-dividend model) on a lattice of the given depth.
func PriceWithDividends(o Option, divs []Dividend, steps int) (float64, error) {
	e, err := lattice.NewEngine(steps)
	if err != nil {
		return 0, err
	}
	return e.PriceWithDividends(o, divs)
}

// BoundaryPoint is one sample of an American option's early-exercise
// boundary.
type BoundaryPoint = lattice.BoundaryPoint

// ExerciseBoundary extracts the early-exercise boundary of an American
// option from a lattice of the given depth.
func ExerciseBoundary(o Option, steps int) ([]BoundaryPoint, error) {
	e, err := lattice.NewEngine(steps)
	if err != nil {
		return nil, err
	}
	return e.ExerciseBoundary(o)
}
