package binopt

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (see DESIGN.md §3 for the experiment index):
//
//	BenchmarkTable1Fit             Table I  — compiler/fitter/power model
//	BenchmarkTable2*               Table II — per-platform rows; the
//	                               ReferenceSoftware bench measures this
//	                               machine's real nodes/s for comparison
//	BenchmarkFigure*               Figures 1-4 renderers
//	BenchmarkSaturationSweep       §V-C saturation study (E1)
//	BenchmarkVolatilityCurve       §I use case (E2)
//	BenchmarkKnobSweep             §V-B exploration (E3)
//	BenchmarkPowAccuracy           §V-C accuracy isolation (E4)
//	BenchmarkIVAReducedReads       ablation: full vs reduced readback
//	BenchmarkLeafPlacement         ablation: device pow vs host leaves
//	BenchmarkPrecision             ablation: double vs single pipeline
//	BenchmarkPowerCap              ablation: 10 W clock derating
//
// Custom metrics: options/s and nodes/s mirror Table II's units.

import (
	"testing"

	"binopt/internal/accel"
	"binopt/internal/device"
	"binopt/internal/hls"
	"binopt/internal/hwmath"
	"binopt/internal/kernels"
	"binopt/internal/lattice"
	"binopt/internal/opencl"
	"binopt/internal/perf"
	"binopt/internal/workload"
)

// ---- Table I ----

func BenchmarkTable1Fit(b *testing.B) {
	board := device.DE4()
	for i := 0; i < b.N; i++ {
		if _, err := hls.Fit(board, kernels.ProfileIVA(), kernels.PaperKnobsIVA()); err != nil {
			b.Fatal(err)
		}
		if _, err := hls.Fit(board, kernels.ProfileIVB(1024), kernels.PaperKnobsIVB()); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Table II ----

// BenchmarkTable2ReferenceSoftware measures the actual Go reference
// pricer on the build machine at the paper's N=1024, reporting the same
// units as Table II. The paper's Xeon X5450 reaches 222 options/s; a
// modern core lands far above it, the *shape* to compare is nodes/s.
func BenchmarkTable2ReferenceSoftware(b *testing.B) {
	eng, err := lattice.NewEngine(1024)
	if err != nil {
		b.Fatal(err)
	}
	o := demoOption()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Price(o); err != nil {
			b.Fatal(err)
		}
	}
	perOpt := b.Elapsed().Seconds() / float64(b.N)
	b.ReportMetric(1/perOpt, "options/s")
	b.ReportMetric(1024*1025/2/perOpt, "nodes/s")
}

// BenchmarkTable2KernelIVBFunctional runs the optimized kernel through
// the OpenCL-model runtime (functional simulation; wall time measures the
// simulator, numerics are the deliverable).
func BenchmarkTable2KernelIVBFunctional(b *testing.B) {
	ctx := benchContext(b)
	opts, err := workload.MixedBatch(1, 4)
	if err != nil {
		b.Fatal(err)
	}
	cfg := kernels.IVBConfig{Steps: 64, Pow: hwmath.Flawed13}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := kernels.RunIVB(ctx, opts, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2KernelIVAFunctional runs the straightforward kernel's
// host batch loop through the runtime.
func BenchmarkTable2KernelIVAFunctional(b *testing.B) {
	ctx := benchContext(b)
	opts, err := workload.MixedBatch(2, 4)
	if err != nil {
		b.Fatal(err)
	}
	cfg := kernels.IVAConfig{Steps: 32, FullReadback: true}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := kernels.RunIVA(ctx, opts, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkTable2Assembly regenerates the full table (models plus a
// reduced accuracy batch).
func BenchmarkTable2Assembly(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Table2(Table2Config{Steps: 1024, RMSEOptions: 8, RMSESteps: 128}); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Figures ----

func BenchmarkFigure1Render(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Figure1(2); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure2Render(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = Figure2()
	}
}

func BenchmarkFigure3Render(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Figure3(2, 3, 4); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFigure4Render(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Figure4(4, 2); err != nil {
			b.Fatal(err)
		}
	}
}

// ---- Experiments ----

func BenchmarkSaturationSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := Saturation(nil); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVolatilityCurve runs the use case at reduced scale and reports
// quotes/s; scale Quotes and Steps up to reproduce the full experiment.
func BenchmarkVolatilityCurve(b *testing.B) {
	cfg := VolCurveConfig{Quotes: 20, Steps: 64, Seed: 11}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := VolCurve(cfg); err != nil {
			b.Fatal(err)
		}
	}
	perRun := b.Elapsed().Seconds() / float64(b.N)
	b.ReportMetric(float64(cfg.Quotes)/perRun, "quotes/s")
}

func BenchmarkKnobSweep(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := KnobSweep(1024); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPowAccuracy(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := PowAccuracy(256, 8, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkMethodComparison reruns the §II solver comparison (E5).
func BenchmarkMethodComparison(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, _, err := MethodComparison(MethodComparisonConfig{MCPaths: 10000, RefSteps: 4096}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSolvers measures each solver pricing the demo American put at
// its comparison configuration.
func BenchmarkSolvers(b *testing.B) {
	o := demoOption()
	b.Run("binomial-1024", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := Price(o, 1024); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("fdm-400x400", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := PriceFDM(o, FDMConfig{SpaceNodes: 400, TimeSteps: 400}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("quad-512x64", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := PriceQUAD(o, QUADConfig{SpaceNodes: 512, Dates: 64}); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("lsm-20k", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := PriceMC(o, MCConfig{Paths: 20000, Steps: 50, Seed: 1, Antithetic: true}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// ---- Ablations (DESIGN.md §4) ----

// BenchmarkIVAReducedReads compares the modelled batch time of the
// published full-readback kernel against the reduced-reads variant.
func BenchmarkIVAReducedReads(b *testing.B) {
	fpga, err := accel.Get("fpga-ivb")
	if err != nil {
		b.Fatal(err)
	}
	var full, reduced perf.Estimate
	for i := 0; i < b.N; i++ {
		if full, err = fpga.Estimate(1024, accel.Options{Kernel: accel.KernelIVA, FullReadback: true}); err != nil {
			b.Fatal(err)
		}
		if reduced, err = fpga.Estimate(1024, accel.Options{Kernel: accel.KernelIVA}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(full.OptionsPerSec, "full-options/s")
	b.ReportMetric(reduced.OptionsPerSec, "reduced-options/s")
}

// BenchmarkLeafPlacement compares device-pow and host-computed leaves for
// kernel IV.B, in modelled throughput.
func BenchmarkLeafPlacement(b *testing.B) {
	fpga, err := accel.Get("fpga-ivb")
	if err != nil {
		b.Fatal(err)
	}
	var dev, host perf.Estimate
	for i := 0; i < b.N; i++ {
		if dev, err = fpga.Estimate(1024, accel.Options{}); err != nil {
			b.Fatal(err)
		}
		if host, err = fpga.Estimate(1024, accel.Options{LeavesOnHost: true}); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(dev.OptionsPerSec, "device-leaves-options/s")
	b.ReportMetric(host.OptionsPerSec, "host-leaves-options/s")
}

// BenchmarkPrecision measures the real double and single engines on the
// build machine.
func BenchmarkPrecision(b *testing.B) {
	o := demoOption()
	for _, tc := range []struct {
		name   string
		single bool
	}{{"double", false}, {"single", true}} {
		b.Run(tc.name, func(b *testing.B) {
			eng, err := lattice.NewEngine(1024)
			if err != nil {
				b.Fatal(err)
			}
			if tc.single {
				eng = eng.WithSinglePrecision()
			}
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := eng.Price(o); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPowerCap evaluates the 10 W derating transform.
func BenchmarkPowerCap(b *testing.B) {
	board := device.DE4()
	fitB, err := hls.Fit(board, kernels.ProfileIVB(1024), kernels.PaperKnobsIVB())
	if err != nil {
		b.Fatal(err)
	}
	var capped hls.FitReport
	for i := 0; i < b.N; i++ {
		if capped, err = fitB.CapPower(board.Chip, 10); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(capped.FmaxMHz, "derated-MHz")
}

// BenchmarkPowCores measures the emulated Power operators.
func BenchmarkPowCores(b *testing.B) {
	for _, core := range []hwmath.PowCore{hwmath.Flawed13, hwmath.Accurate13SP1} {
		b.Run(core.Name, func(b *testing.B) {
			s := 0.0
			for i := 0; i < b.N; i++ {
				s += core.Pow(1.0062, float64(i%2048-1024))
			}
			_ = s
		})
	}
}

// benchContext builds a runtime context on the DE4 descriptor.
func benchContext(b *testing.B) *opencl.Context {
	b.Helper()
	p := opencl.NewPlatform("Altera SDK for OpenCL", "Altera", "OpenCL 1.0", device.DE4().OpenCLInfo())
	ctx, err := opencl.NewContext(p.Devices(opencl.Accelerator)[0])
	if err != nil {
		b.Fatal(err)
	}
	return ctx
}
