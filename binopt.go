// Package binopt reproduces "Energy-Efficient FPGA Implementation for
// Binomial Option Pricing Using OpenCL" (Mena Morales et al., DATE 2014)
// as a self-contained Go library: a binomial (CRR) pricer for American and
// European options, the paper's two OpenCL kernel architectures running on
// a functional OpenCL-model runtime, an HLS compiler/fitter/power model of
// the Stratix IV target, performance and energy models for the three
// evaluation platforms, and the implied-volatility use case that motivates
// the 2000-options-per-second design target.
//
// The top-level API covers everyday pricing; the experiment entry points
// (Table1, Table2, Saturation, VolCurve, KnobSweep, PowAccuracy) regenerate
// the paper's tables, figures and discussion points. See DESIGN.md for the
// system inventory and EXPERIMENTS.md for paper-versus-measured results.
package binopt

import (
	"binopt/internal/lattice"
	"binopt/internal/option"
	"binopt/internal/volatility"
)

// Contract and engine types, aliased from the internal packages so the
// public surface is one import.
type (
	// Option is a vanilla option contract plus market state.
	Option = option.Option
	// Right is Call or Put.
	Right = option.Right
	// Style is European or American exercise.
	Style = option.Style
	// Parameterisation selects the lattice construction (CRR default).
	Parameterisation = option.Parameterisation
	// Engine is a binomial pricing engine.
	Engine = lattice.Engine
	// Greeks are lattice sensitivities.
	Greeks = lattice.Greeks
)

// Contract enumerations.
const (
	// Call is the right to buy.
	Call = option.Call
	// Put is the right to sell.
	Put = option.Put
	// European exercise: at expiry only.
	European = option.European
	// American exercise: any time up to expiry.
	American = option.American
	// CRR is the Cox-Ross-Rubinstein lattice parameterisation.
	CRR = option.CRR
	// JarrowRudd is the equal-probability parameterisation.
	JarrowRudd = option.JarrowRudd
	// Tian is the moment-matching parameterisation.
	Tian = option.Tian
)

// NewEngine returns the double-precision reference engine — the paper's
// "reference software" — with the given number of time steps.
func NewEngine(steps int) (*Engine, error) { return lattice.NewEngine(steps) }

// Price values the option on a reference binomial tree of the given
// depth (the paper evaluates at 1024 steps).
func Price(o Option, steps int) (float64, error) {
	e, err := lattice.NewEngine(steps)
	if err != nil {
		return 0, err
	}
	return e.Price(o)
}

// PriceWithGreeks values the option and returns its sensitivities.
func PriceWithGreeks(o Option, steps int) (float64, Greeks, error) {
	e, err := lattice.NewEngine(steps)
	if err != nil {
		return 0, Greeks{}, err
	}
	return e.PriceAndGreeks(o)
}

// PriceBatch values many options concurrently with the reference engine.
func PriceBatch(opts []Option, steps, workers int) ([]float64, error) {
	e, err := lattice.NewEngine(steps)
	if err != nil {
		return nil, err
	}
	return e.PriceBatch(opts, workers)
}

// ImpliedVol recovers the volatility at which a binomial tree of the
// given depth reprices the quote (Brent's method). The option's Sigma
// field is ignored. It returns volatility.ErrNoVolInfo for quotes pinned
// at the zero-volatility floor.
func ImpliedVol(quote float64, o Option, steps int) (float64, error) {
	e, err := lattice.NewEngine(steps)
	if err != nil {
		return 0, err
	}
	return volatility.Brent(quote, o, e.Price, 0, 0)
}
