// Volsurface: the multi-maturity extension of the paper's use case.
// Synthesize a quote tape across three expiries, save and reload it as
// CSV (the interchange point for real market data), build the implied-
// volatility surface, and query it at arbitrary (strike, expiry) points.
package main

import (
	"bytes"
	"fmt"
	"log"

	"binopt"
	"binopt/internal/workload"
)

func main() {
	const steps = 128

	// A tape of quotes at three maturities from the same smile.
	var quotes []binopt.Quote
	for i, mat := range []float64{0.25, 0.5, 1.0} {
		spec := workload.DefaultVolCurveSpec(int64(7 + i))
		spec.N = 50
		spec.T = mat
		spec.MinMny = 0.85
		spec.MaxMny = 1.15
		opts, err := workload.Chain(spec)
		if err != nil {
			log.Fatal(err)
		}
		qs, err := workload.ReferenceQuotes(opts, steps, 0)
		if err != nil {
			log.Fatal(err)
		}
		quotes = append(quotes, qs...)
	}

	// Round-trip through CSV, the format a desk would feed in.
	var tape bytes.Buffer
	if err := binopt.SaveQuotes(&tape, quotes); err != nil {
		log.Fatal(err)
	}
	tapeBytes := tape.Len() // LoadQuotes drains the buffer
	loaded, err := binopt.LoadQuotes(&tape)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("quote tape: %d quotes, %d bytes of CSV\n", len(loaded), tapeBytes)

	surf, skipped, err := binopt.BuildVolSurface(loaded, steps, 0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("surface built from %d maturities (%d pinned quotes skipped)\n\n",
		len(surf.Maturities()), skipped)

	fmt.Println("implied vol at (strike, expiry):")
	for _, k := range []float64{90, 100, 110} {
		for _, t := range []float64{0.3, 0.5, 0.8} {
			v, err := surf.Vol(k, t)
			if err != nil {
				log.Fatal(err)
			}
			fmt.Printf("  K=%-4.0f T=%.2fy -> %.4f\n", k, t, v)
		}
	}
}
