// Volcurve: the paper's motivating scenario end to end. A trader holds a
// tape of option quotes (synthesised here from a known smile), inverts
// every quote through the binomial pricer to an implied-volatility curve,
// and checks the workload against the accelerator's
// one-second-per-curve / sub-20 W envelope.
package main

import (
	"fmt"
	"log"
	"time"

	"binopt"
)

func main() {
	cfg := binopt.VolCurveConfig{
		Quotes: 400, // scaled from the paper's 2000 for a quick run
		Steps:  256,
		Seed:   2014,
	}
	start := time.Now()
	res, err := binopt.VolCurve(cfg)
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	fmt.Println(res.Text)
	fmt.Printf("host-side run (generation + %d inversions): %v\n", cfg.Quotes, elapsed.Round(time.Millisecond))
	fmt.Printf("modelled DE4 kernel IV.B pricing pass: %.3f s at %.1f W\n", res.FPGASeconds, res.FPGAPowerWatts)
	fmt.Printf("informative quotes: %d, skipped (pinned at intrinsic): %d\n", len(res.Points), res.Skipped)

	// Show the recovered smile shape at three characteristic strikes.
	if len(res.Points) >= 3 {
		lo := res.Points[0]
		mid := res.Points[len(res.Points)/2]
		hi := res.Points[len(res.Points)-1]
		fmt.Printf("smile: vol(K=%.0f)=%.3f  vol(K=%.0f)=%.3f  vol(K=%.0f)=%.3f\n",
			lo.Strike, lo.Implied, mid.Strike, mid.Implied, hi.Strike, hi.Implied)
	}
}
