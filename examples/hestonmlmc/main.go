// Hestonmlmc: rebuild the design-space result of the paper's reference
// [4] — de Schryver et al.'s energy-efficiency benchmark application —
// from this repository's substrates: a down-and-out barrier call under
// the Heston stochastic-volatility model, priced by plain Monte Carlo
// and by the Multi-Level Monte Carlo estimator that [4] selected as the
// best accuracy/energy compromise.
package main

import (
	"fmt"
	"log"

	"binopt"
)

func main() {
	res, err := binopt.MLMCStudy(120000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(res.Text)
	fmt.Printf("takeaway: at matched statistical error, MLMC does %.1fx less work than\n", res.Speedup)
	fmt.Println("single-level Monte Carlo — on an accelerator this translates directly into")
	fmt.Println("joules per option, the criterion [4] adds to raw throughput comparisons.")
}
