// Devicecompare: regenerate the paper's evaluation — Table I (resource
// usage on the Stratix IV), Table II (throughput, accuracy and energy on
// FPGA, GPU and CPU), and the saturation study — and print the headline
// conclusions the paper draws from them.
package main

import (
	"fmt"
	"log"

	"binopt"
)

func main() {
	t1, err := binopt.Table1()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("TABLE I — RESOURCE USAGE")
	fmt.Println(t1.Text)

	t2, err := binopt.Table2(binopt.Table2Config{
		Steps:       1024,
		RMSEOptions: 24,
		RMSESteps:   512, // keep the host-side accuracy batch quick
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("TABLE II — PERFORMANCES")
	fmt.Println(t2.Text)

	// The paper's headline comparisons, recomputed from the rows.
	var fpgaB, gpuB, ref *rowView
	for i := range t2.Rows {
		r := &t2.Rows[i]
		switch {
		case r.Kernel == "IV.B" && r.Precision == "double" && r.Platform == "EP4SGX530":
			fpgaB = &rowView{r.Estimate.OptionsPerSec, r.Estimate.OptionsPerJoule}
		case r.Kernel == "IV.B" && r.Precision == "double" && r.Platform != "EP4SGX530":
			gpuB = &rowView{r.Estimate.OptionsPerSec, r.Estimate.OptionsPerJoule}
		case r.Kernel == "reference" && r.Precision == "double":
			ref = &rowView{r.Estimate.OptionsPerSec, r.Estimate.OptionsPerJoule}
		}
	}
	if fpgaB == nil || gpuB == nil || ref == nil {
		log.Fatal("missing headline rows")
	}
	fmt.Printf("headlines:\n")
	fmt.Printf("  FPGA IV.B prices %.0f options/s — above the 2000/s use-case target\n", fpgaB.optSec)
	fmt.Printf("  FPGA is %.1fx more energy-efficient than the GPU (%.0f vs %.0f options/J)\n",
		fpgaB.optJ/gpuB.optJ, fpgaB.optJ, gpuB.optJ)
	fmt.Printf("  FPGA is %.0fx more energy-efficient than the software reference\n", fpgaB.optJ/ref.optJ)
	fmt.Printf("  GPU is %.1fx faster in raw throughput (within the paper's 'factor 5')\n", gpuB.optSec/fpgaB.optSec)

	sat, err := binopt.Saturation([]int64{1000, 10_000, 100_000, 1_000_000})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nSATURATION (throughput vs workload)")
	for _, s := range sat {
		fmt.Println(s.Text)
	}
}

type rowView struct {
	optSec, optJ float64
}
