// Methods: rerun the related-work solver comparison of the paper's §II
// on your own machine — the same American put priced by the binomial
// tree, finite differences, QUAD and Longstaff-Schwartz Monte Carlo —
// and extract the early-exercise boundary the binomial accelerator
// computes as a by-product.
package main

import (
	"fmt"
	"log"

	"binopt"
)

func main() {
	results, text, err := binopt.MethodComparison(binopt.MethodComparisonConfig{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(text)

	var best binopt.MethodResult
	bestScore := 0.0
	for _, r := range results {
		// Time-to-accuracy score: lower error and lower time both win.
		score := 1 / ((r.AbsError + 1e-6) * (r.Seconds + 1e-6))
		if score > bestScore {
			bestScore = score
			best = r
		}
	}
	fmt.Printf("best time-to-accuracy: %s (%s) — |err| %.2e in %.4f s\n\n",
		best.Method, best.Params, best.AbsError, best.Seconds)

	// The exercise boundary of the same contract: the desk-side artefact
	// the accelerated pricer produces for free.
	o := binopt.Option{
		Right: binopt.Put, Style: binopt.American,
		Spot: 100, Strike: 105, Rate: 0.03, Sigma: 0.2, T: 0.5,
	}
	pts, err := binopt.ExerciseBoundary(o, 512)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("early-exercise boundary (%d samples): exercise the put when S falls below...\n", len(pts))
	stride := len(pts) / 8
	if stride < 1 {
		stride = 1
	}
	for i := 0; i < len(pts); i += stride {
		fmt.Printf("  t=%.3fy  S* = %.3f\n", pts[i].T, pts[i].Critical)
	}
}
