// Tracetree: render the paper's explanatory figures as ASCII — the
// binomial tree (Figure 1), the OpenCL platform model (Figure 2), and
// the dataflow of both kernel architectures (Figures 3 and 4). Useful
// for understanding how the two kernels schedule the same recurrence.
package main

import (
	"fmt"
	"log"

	"binopt"
)

func main() {
	f1, err := binopt.Figure1(2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(f1)

	fmt.Println(binopt.Figure2())

	f3, err := binopt.Figure3(2, 3, 4)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(f3)

	f4, err := binopt.Figure4(4, 2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(f4)
}
