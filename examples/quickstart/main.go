// Quickstart: price an American put on a binomial tree, inspect its
// Greeks, and recover the implied volatility from the quote — the
// essential loop every downstream user of the library runs first.
package main

import (
	"fmt"
	"log"

	"binopt"
)

func main() {
	contract := binopt.Option{
		Right:  binopt.Put,
		Style:  binopt.American,
		Spot:   100,  // underlying trades at $100
		Strike: 105,  // right to sell at $105
		Rate:   0.03, // 3% risk-free rate
		Sigma:  0.20, // 20% volatility
		T:      0.5,  // six months to expiry
	}
	const steps = 1024 // the paper's discretisation

	price, greeks, err := binopt.PriceWithGreeks(contract, steps)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("contract: %s\n", contract)
	fmt.Printf("binomial price (N=%d): %.6f\n", steps, price)
	fmt.Printf("delta %+.4f  gamma %+.4f  theta %+.4f  vega %+.4f  rho %+.4f\n",
		greeks.Delta, greeks.Gamma, greeks.Theta, greeks.Vega, greeks.Rho)

	// Treat the computed price as a market quote and invert it.
	iv, err := binopt.ImpliedVol(price, contract, steps)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("implied volatility recovered from the quote: %.4f (true 0.2000)\n", iv)

	// European comparison: the early-exercise premium of the put.
	euro := contract
	euro.Style = binopt.European
	euroPrice, err := binopt.Price(euro, steps)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("european price %.6f -> early-exercise premium %.6f\n", euroPrice, price-euroPrice)
}
