package binopt

import (
	"fmt"
	"math"
	"time"

	"binopt/internal/accel"
	"binopt/internal/bs"
	"binopt/internal/lattice"
	"binopt/internal/option"
	"binopt/internal/report"
)

// ConvergencePoint is one row of the discretisation study.
type ConvergencePoint struct {
	Steps        int
	EuropeanErr  float64 // |CRR - Black-Scholes| on the European twin
	AmericanErr  float64 // |CRR - deep reference| on the American contract
	LRErr        float64 // |Leisen-Reimer - deep reference| (odd N)
	HostSeconds  float64 // measured pricing time on this machine
	FPGAOptSec   float64 // modelled DE4 kernel IV.B throughput at this N
	FPGALocalM9K bool    // whether the N-sized local buffer still fits the knobs
}

// ConvergenceResult carries the study and its rendering.
type ConvergenceResult struct {
	Points []ConvergencePoint
	Text   string
}

// Convergence reproduces the design decision behind the paper's
// discretisation choice (§V-B: "a discretization step of T = 1024 ...
// provides a good compromise between speed, precision and hardware
// restrictions"): accuracy versus step count for the CRR tree (against
// the closed form on the European twin and a deep lattice on the
// American contract), the Leisen-Reimer alternative, measured host time,
// and the modelled FPGA throughput at each depth.
func Convergence(stepsList []int) (ConvergenceResult, error) {
	if len(stepsList) == 0 {
		stepsList = []int{64, 128, 256, 512, 1024, 2048}
	}
	o := demoOption()
	euro := o
	euro.Style = European

	bsRef, err := bs.Price(euro)
	if err != nil {
		return ConvergenceResult{}, err
	}
	deep, err := lattice.NewEngine(8192)
	if err != nil {
		return ConvergenceResult{}, err
	}
	amRef, err := deep.PriceRichardson(o)
	if err != nil {
		return ConvergenceResult{}, err
	}

	fpga, err := accel.Get("fpga-ivb")
	if err != nil {
		return ConvergenceResult{}, err
	}
	var pts []ConvergencePoint
	for _, n := range stepsList {
		if n < 2 {
			return ConvergenceResult{}, fmt.Errorf("binopt: convergence needs steps >= 2, got %d", n)
		}
		eng, err := lattice.NewEngine(n)
		if err != nil {
			return ConvergenceResult{}, err
		}
		start := time.Now()
		ve, err := eng.Price(euro)
		if err != nil {
			return ConvergenceResult{}, err
		}
		va, err := eng.Price(o)
		if err != nil {
			return ConvergenceResult{}, err
		}
		hostSec := time.Since(start).Seconds() / 2

		lrSteps := n + 1 - n%2 // nearest odd
		lrEng, err := lattice.NewEngine(lrSteps)
		if err != nil {
			return ConvergenceResult{}, err
		}
		vl, err := lrEng.WithParameterisation(option.LeisenReimer).Price(o)
		if err != nil {
			return ConvergenceResult{}, err
		}

		p := ConvergencePoint{
			Steps:       n,
			EuropeanErr: math.Abs(ve - bsRef),
			AmericanErr: math.Abs(va - amRef),
			LRErr:       math.Abs(vl - amRef),
			HostSeconds: hostSec,
		}
		// Modelled FPGA throughput: the local value buffer grows with N,
		// so very deep trees stop fitting the paper's knobs and the
		// platform estimate fails.
		if est, eerr := fpga.Estimate(n, accel.Options{}); eerr == nil {
			p.FPGAOptSec = est.OptionsPerSec
			p.FPGALocalM9K = true
		}
		pts = append(pts, p)
	}

	tbl := report.NewTable("N", "|CRR-BS| (euro)", "|CRR-ref| (amer)", "|LR-ref| (amer)",
		"host s/option", "FPGA options/s", "fits DE4")
	for _, p := range pts {
		fpga := "-"
		fits := "no"
		if p.FPGALocalM9K {
			fpga = report.Sci(p.FPGAOptSec)
			fits = "yes"
		}
		tbl.AddRow(fmt.Sprintf("%d", p.Steps),
			fmt.Sprintf("%.2e", p.EuropeanErr),
			fmt.Sprintf("%.2e", p.AmericanErr),
			fmt.Sprintf("%.2e", p.LRErr),
			fmt.Sprintf("%.5f", p.HostSeconds),
			fpga, fits)
	}
	text := fmt.Sprintf("Discretisation study on %s\n(european reference: Black-Scholes %.6f; american reference: N=8192 Richardson %.6f)\n%s",
		o.String(), bsRef, amRef, tbl.String())
	return ConvergenceResult{Points: pts, Text: text}, nil
}
