package binopt

import (
	"fmt"
	"strings"

	"binopt/internal/accel"
	"binopt/internal/hls"
	"binopt/internal/hwmath"
	"binopt/internal/lattice"
	"binopt/internal/mathx"
	"binopt/internal/perf"
	"binopt/internal/report"
	"binopt/internal/trace"
	"binopt/internal/volatility"
	"binopt/internal/workload"
)

// fpgaFitter resolves the registry's FPGA platform as the fitting target
// for Table I, the knob sweep, and the per-row fits of Table II.
func fpgaFitter() (accel.Fitter, error) {
	p, err := accel.Get("fpga-ivb")
	if err != nil {
		return nil, err
	}
	f, ok := p.(accel.Fitter)
	if !ok {
		return nil, fmt.Errorf("binopt: platform %s does not support fitting", p.Describe().Name)
	}
	return f, nil
}

// Table1Result carries the regenerated resource-usage table (paper
// Table I).
type Table1Result struct {
	Text      string
	CSV       string
	KernelIVA hls.FitReport
	KernelIVB hls.FitReport
}

// Table1 compiles both kernels for the registry's FPGA platform with the
// paper's parallelisation knobs and renders the fitter/power summary.
func Table1() (Table1Result, error) {
	f, err := fpgaFitter()
	if err != nil {
		return Table1Result{}, err
	}
	fitA, err := f.Fit(1024, accel.KernelIVA, hls.Knobs{})
	if err != nil {
		return Table1Result{}, err
	}
	fitB, err := f.Fit(1024, accel.KernelIVB, hls.Knobs{})
	if err != nil {
		return Table1Result{}, err
	}
	chip := f.Describe().Board.Chip
	tbl := report.BuildTable1(chip.Name, chip.Registers, chip.M9K,
		chip.DSP18, chip.MemoryBits, fitA, fitB)
	return Table1Result{Text: tbl.String(), CSV: tbl.CSV(), KernelIVA: fitA, KernelIVB: fitB}, nil
}

// Table2Config scales the performance-comparison experiment. The zero
// value reproduces the paper (1024 steps) with a fast accuracy batch.
type Table2Config struct {
	// Steps is the tree depth (default 1024, the paper's choice).
	Steps int
	// RMSEOptions is the batch size used to measure each variant's RMSE
	// against the double-precision reference (default 40).
	RMSEOptions int
	// RMSESteps is the tree depth for the RMSE measurement; it defaults
	// to Steps. Accuracy runs execute full trees on the host, so tests
	// can lower it independently of the modelled throughput depth.
	RMSESteps int
	// Workers bounds RMSE-measurement concurrency (<=0: GOMAXPROCS).
	Workers int
}

func (c *Table2Config) defaults() {
	if c.Steps == 0 {
		c.Steps = 1024
	}
	if c.RMSEOptions == 0 {
		c.RMSEOptions = 40
	}
	if c.RMSESteps == 0 {
		c.RMSESteps = c.Steps
	}
}

// Table2Result carries the regenerated performance table (paper
// Table II).
type Table2Result struct {
	Text string
	CSV  string
	Rows []report.Table2Row
}

// Table2 assembles the full performance comparison: both kernels on both
// accelerators, the software reference in both precisions, measured RMSE
// per variant, and the published baselines.
func Table2(cfg Table2Config) (Table2Result, error) {
	cfg.defaults()
	fpga, err := accel.Get("fpga-ivb")
	if err != nil {
		return Table2Result{}, err
	}
	gpu, err := accel.Get("gpu-ivb")
	if err != nil {
		return Table2Result{}, err
	}
	cpu, err := accel.Get("cpu-ref")
	if err != nil {
		return Table2Result{}, err
	}
	fpgaLabel := fpga.Describe().Board.Chip.Name
	gpuLabel := gpu.Describe().GPU.Name
	cpuLabel := cpu.Describe().CPU.Name

	rmse, err := measureRMSE(cfg)
	if err != nil {
		return Table2Result{}, err
	}

	type rowSpec struct {
		kernel, platform string
		on               accel.Platform
		opts             accel.Options
		rmse             float64
	}
	specs := []rowSpec{
		{"IV.A", fpgaLabel, fpga, accel.Options{Kernel: accel.KernelIVA, FullReadback: true}, rmse.hostLeavesDouble},
		{"IV.A", gpuLabel, gpu, accel.Options{Kernel: accel.KernelIVA, FullReadback: true}, rmse.hostLeavesDouble},
		{"IV.B", fpgaLabel, fpga, accel.Options{}, rmse.flawedPowDouble},
		{"IV.B", gpuLabel, gpu, accel.Options{Single: true}, rmse.single},
		{"IV.B", gpuLabel, gpu, accel.Options{}, rmse.hostLeavesDouble},
		{"reference", cpuLabel, cpu, accel.Options{Single: true}, rmse.single},
		{"reference", cpuLabel, cpu, accel.Options{}, 0},
	}

	var rows []report.Table2Row
	for _, s := range specs {
		est, err := s.on.Estimate(cfg.Steps, s.opts)
		if err != nil {
			return Table2Result{}, fmt.Errorf("binopt: table 2 row %s/%s: %w", s.kernel, s.platform, err)
		}
		rows = append(rows, report.Table2Row{
			Kernel:    s.kernel,
			Platform:  s.platform,
			Precision: est.Precision,
			Estimate:  est,
			RMSE:      s.rmse,
			RMSEKnown: true,
		})
	}
	tbl := report.BuildTable2(rows, report.PublishedBaselines())
	return Table2Result{Text: tbl.String(), CSV: tbl.CSV(), Rows: rows}, nil
}

// rmseSet holds the measured accuracy of each arithmetic variant against
// the double-precision reference.
type rmseSet struct {
	hostLeavesDouble float64 // kernel IV.A and accurate IV.B builds
	flawedPowDouble  float64 // kernel IV.B on the FPGA (Power operator)
	single           float64 // any single-precision build
}

// measureRMSE runs the lattice engines (bit-identical to the kernels, as
// the integration tests prove) over a mixed batch and compares against
// the reference.
func measureRMSE(cfg Table2Config) (rmseSet, error) {
	opts, err := workload.MixedBatch(2014, cfg.RMSEOptions)
	if err != nil {
		return rmseSet{}, err
	}
	ref, err := lattice.NewEngine(cfg.RMSESteps)
	if err != nil {
		return rmseSet{}, err
	}
	want, err := ref.PriceBatch(opts, cfg.Workers)
	if err != nil {
		return rmseSet{}, err
	}
	run := func(e *lattice.Engine) (float64, error) {
		got, err := e.PriceBatch(opts, cfg.Workers)
		if err != nil {
			return 0, err
		}
		return mathx.RMSE(got, want), nil
	}
	var out rmseSet
	if out.flawedPowDouble, err = run(ref.WithDeviceLeaves(hwmath.Flawed13)); err != nil {
		return rmseSet{}, err
	}
	if out.single, err = run(ref.WithSinglePrecision()); err != nil {
		return rmseSet{}, err
	}
	// Host-leaves double is the reference algorithm itself.
	out.hostLeavesDouble = 0
	return out, nil
}

// SaturationResult carries the §V-C saturation study for one platform.
type SaturationResult struct {
	Label  string
	Points []perf.CurvePoint
	Text   string
}

// Saturation sweeps workload sizes on the FPGA and GPU builds of kernel
// IV.B, reproducing the discussion that the FPGA reaches linear
// throughput around 1e5 options and the GPU needs ten times more.
func Saturation(workloads []int64) ([]SaturationResult, error) {
	if len(workloads) == 0 {
		workloads = []int64{100, 1000, 2000, 10_000, 100_000, 1_000_000, 10_000_000}
	}
	var ests []perf.Estimate
	for _, name := range []string{"fpga-ivb", "gpu-ivb"} {
		plat, err := accel.Get(name)
		if err != nil {
			return nil, err
		}
		e, err := plat.Estimate(1024, accel.Options{})
		if err != nil {
			return nil, err
		}
		ests = append(ests, e)
	}
	var out []SaturationResult
	for _, p := range ests {
		label := fmt.Sprintf("IV.B %s", p.Platform)
		pts := perf.SaturationCurve(p.OptionsPerSec, p.SaturationOptions, workloads)
		out = append(out, SaturationResult{
			Label:  label,
			Points: pts,
			Text:   report.FormatSaturation(label, pts),
		})
	}
	return out, nil
}

// VolCurveConfig scales the trader use case (experiment E2).
type VolCurveConfig struct {
	// Quotes is the chain size (default 2000, the paper's curve).
	Quotes int
	// Steps is the tree depth for both quote generation and inversion
	// (default 1024; tests use less).
	Steps int
	// Seed drives the synthetic chain.
	Seed int64
	// Workers bounds concurrency (<=0: GOMAXPROCS).
	Workers int
}

// VolCurveResult is the recovered curve plus the modelled accelerator
// timing for the workload.
type VolCurveResult struct {
	Points  []volatility.CurvePoint
	Skipped int
	// FPGASeconds is the modelled time for the DE4 kernel IV.B to price
	// the chain once (the paper's one-second-per-curve target), and
	// FPGAPowerWatts its dissipation.
	FPGASeconds    float64
	FPGAPowerWatts float64
	Text           string
}

// VolCurve runs the use case end to end: generate the chain, produce
// binomial reference quotes, invert them to an implied-volatility curve,
// and attach the modelled FPGA cost of the pricing workload.
func VolCurve(cfg VolCurveConfig) (VolCurveResult, error) {
	if cfg.Quotes == 0 {
		cfg.Quotes = 2000
	}
	if cfg.Steps == 0 {
		cfg.Steps = 1024
	}
	spec := workload.DefaultVolCurveSpec(cfg.Seed)
	spec.N = cfg.Quotes
	opts, err := workload.Chain(spec)
	if err != nil {
		return VolCurveResult{}, err
	}
	quotes, err := workload.ReferenceQuotes(opts, cfg.Steps, cfg.Workers)
	if err != nil {
		return VolCurveResult{}, err
	}
	eng, err := lattice.NewEngine(cfg.Steps)
	if err != nil {
		return VolCurveResult{}, err
	}
	pts, skipped, err := volatility.Curve(quotes, eng.Price, volatility.MethodBrent, cfg.Workers)
	if err != nil {
		return VolCurveResult{}, err
	}

	plat, err := accel.Get("fpga-ivb")
	if err != nil {
		return VolCurveResult{}, err
	}
	fpga, err := plat.Estimate(cfg.Steps, accel.Options{})
	if err != nil {
		return VolCurveResult{}, err
	}
	seconds := perf.SecondsFor(fpga.OptionsPerSec, fpga.SaturationOptions, int64(cfg.Quotes))

	var b strings.Builder
	fmt.Fprintf(&b, "Implied volatility curve: %d quotes, %d informative, %d skipped (pinned at intrinsic)\n",
		cfg.Quotes, len(pts), skipped)
	fmt.Fprintf(&b, "modelled %s kernel IV.B pricing pass: %.3f s at %.1f W (%.0f options/s steady state)\n",
		plat.Describe().Label, seconds, fpga.PowerWatts, fpga.OptionsPerSec)
	tbl := report.NewTable("strike", "moneyness", "implied vol")
	stride := len(pts) / 10
	if stride < 1 {
		stride = 1
	}
	for i := 0; i < len(pts); i += stride {
		p := pts[i]
		tbl.AddRow(fmt.Sprintf("%.2f", p.Strike), fmt.Sprintf("%.3f", p.Mny), fmt.Sprintf("%.4f", p.Implied))
	}
	b.WriteString(tbl.String())
	if len(pts) >= 2 {
		xs := make([]float64, len(pts))
		ys := make([]float64, len(pts))
		for i, p := range pts {
			xs[i] = p.Mny
			ys[i] = p.Implied
		}
		if plot, perr := trace.Plot("recovered smile", "moneyness", "implied vol", xs, ys, 60, 12); perr == nil {
			b.WriteString("\n")
			b.WriteString(plot)
		}
	}

	return VolCurveResult{
		Points:         pts,
		Skipped:        skipped,
		FPGASeconds:    seconds,
		FPGAPowerWatts: fpga.PowerWatts,
		Text:           b.String(),
	}, nil
}

// KnobSweepRow is one compilation iteration of experiment E3.
type KnobSweepRow struct {
	Kernel string
	Knobs  hls.Knobs
	Fits   bool
	Report hls.FitReport
	// OptionsPerSec is the modelled throughput when the design fits.
	OptionsPerSec float64
}

// KnobSweep explores the vectorize/replicate/unroll space for both
// kernels on the DE4 — the "several compilation iterations to find the
// best resource consumption rate" of §V-B — and returns every point with
// its fit outcome and modelled throughput.
func KnobSweep(steps int) ([]KnobSweepRow, string, error) {
	if steps <= 0 {
		steps = 1024
	}
	f, err := fpgaFitter()
	if err != nil {
		return nil, "", err
	}
	var rows []KnobSweepRow
	add := func(kernel accel.Kernel, k hls.Knobs, opts accel.Options) error {
		rep, err := f.Fit(steps, kernel, k)
		if err != nil {
			if strings.Contains(err.Error(), "does not fit") {
				rows = append(rows, KnobSweepRow{Kernel: string(kernel), Knobs: k})
				return nil
			}
			return err
		}
		opts.Kernel = kernel
		opts.Fit = &rep
		e, err := f.Estimate(steps, opts)
		if err != nil {
			return err
		}
		rows = append(rows, KnobSweepRow{
			Kernel: string(kernel), Knobs: k, Fits: true, Report: rep, OptionsPerSec: e.OptionsPerSec,
		})
		return nil
	}
	for _, v := range []int{1, 2, 4} {
		for _, r := range []int{1, 2, 3, 4} {
			k := hls.Knobs{Vectorize: v, Replicate: r, Unroll: 1}
			if err := add(accel.KernelIVA, k, accel.Options{FullReadback: true}); err != nil {
				return nil, "", err
			}
		}
	}
	for _, v := range []int{1, 2, 4, 8} {
		for _, u := range []int{1, 2, 4} {
			k := hls.Knobs{Vectorize: v, Replicate: 1, Unroll: u}
			if err := add(accel.KernelIVB, k, accel.Options{}); err != nil {
				return nil, "", err
			}
		}
	}

	tbl := report.NewTable("kernel", "knobs", "fits", "logic %", "M9K", "DSP", "Fmax MHz", "power W", "options/s")
	for _, r := range rows {
		if !r.Fits {
			tbl.AddRow(r.Kernel, r.Knobs.String(), "no", "-", "-", "-", "-", "-", "-")
			continue
		}
		tbl.AddRow(r.Kernel, r.Knobs.String(), "yes",
			fmt.Sprintf("%.0f", r.Report.LogicUtilPct),
			fmt.Sprintf("%d", r.Report.M9K),
			fmt.Sprintf("%d", r.Report.DSP18),
			fmt.Sprintf("%.1f", r.Report.FmaxMHz),
			fmt.Sprintf("%.1f", r.Report.PowerWatts),
			fmt.Sprintf("%.0f", r.OptionsPerSec))
	}
	return rows, tbl.String(), nil
}

// PowAccuracyResult carries experiment E4: the accuracy of the three leaf
// strategies at a given tree depth.
type PowAccuracyResult struct {
	FlawedRMSE   float64
	FixedRMSE    float64
	HostRMSE     float64
	SingleRMSE   float64
	WorstLeafRel float64
	Text         string
}

// PowAccuracy isolates the Power-operator inaccuracy the paper reports:
// device-side leaves through the flawed core versus the fixed core versus
// host-computed leaves, against the double-precision reference.
func PowAccuracy(steps, batch, workers int) (PowAccuracyResult, error) {
	if steps <= 0 {
		steps = 1024
	}
	if batch <= 0 {
		batch = 40
	}
	opts, err := workload.MixedBatch(979, batch)
	if err != nil {
		return PowAccuracyResult{}, err
	}
	ref, err := lattice.NewEngine(steps)
	if err != nil {
		return PowAccuracyResult{}, err
	}
	want, err := ref.PriceBatch(opts, workers)
	if err != nil {
		return PowAccuracyResult{}, err
	}
	run := func(e *lattice.Engine) (float64, error) {
		got, err := e.PriceBatch(opts, workers)
		if err != nil {
			return 0, err
		}
		return mathx.RMSE(got, want), nil
	}
	var res PowAccuracyResult
	if res.FlawedRMSE, err = run(ref.WithDeviceLeaves(hwmath.Flawed13)); err != nil {
		return res, err
	}
	if res.FixedRMSE, err = run(ref.WithDeviceLeaves(hwmath.Accurate13SP1)); err != nil {
		return res, err
	}
	if res.SingleRMSE, err = run(ref.WithSinglePrecision()); err != nil {
		return res, err
	}
	res.HostRMSE = 0 // host leaves double is the reference itself
	u := 1.0062
	res.WorstLeafRel = hwmath.Flawed13.WorstRelError(u, steps)

	tbl := report.NewTable("leaf strategy", "RMSE vs reference", "note")
	tbl.AddRow("device pow (Altera 13.0 emu)", report.Sci(res.FlawedRMSE), report.RMSENote(res.FlawedRMSE))
	tbl.AddRow("device pow (13.0 SP1 emu)", report.Sci(res.FixedRMSE), report.RMSENote(res.FixedRMSE))
	tbl.AddRow("host-computed leaves", report.Sci(res.HostRMSE), "0 (reference algorithm)")
	tbl.AddRow("single-precision build", report.Sci(res.SingleRMSE), report.RMSENote(res.SingleRMSE))
	res.Text = fmt.Sprintf("Power-operator accuracy isolation (N=%d, %d options)\nworst leaf relative error of the flawed core: %.2e\n%s",
		steps, batch, res.WorstLeafRel, tbl.String())
	return res, nil
}
