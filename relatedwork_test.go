package binopt

import (
	"math"
	"strings"
	"testing"
)

func TestMLMCStudy(t *testing.T) {
	res, err := MLMCStudy(60000)
	if err != nil {
		t.Fatal(err)
	}
	if res.Speedup < 2 {
		t.Errorf("MLMC speedup %gx, expected well above 1 (the [4] finding)", res.Speedup)
	}
	// MLMC and plain MC agree within combined uncertainty plus bias room.
	if diff := math.Abs(res.MLMC.Price - res.PlainPrice); diff > 4*(res.MLMC.StdErr+res.PlainErr)+0.05 {
		t.Errorf("MLMC %v vs plain %v differ by %g", res.MLMC.Price, res.PlainPrice, diff)
	}
	if len(res.MLMC.Levels) != 4 {
		t.Errorf("got %d levels", len(res.MLMC.Levels))
	}
	if !strings.Contains(res.Text, "MLMC study") || !strings.Contains(res.Text, "cheaper") {
		t.Errorf("text:\n%s", res.Text)
	}
}
