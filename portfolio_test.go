package binopt

import (
	"math"
	"strings"
	"testing"

	"binopt/internal/lattice"
)

func testBook() Portfolio {
	long := demoOption()
	short := demoOption()
	short.Right = Call
	short.Strike = 110
	return Portfolio{
		{Option: long, Quantity: 10},
		{Option: short, Quantity: -5},
	}
}

// bigBook builds a deterministic mixed book spanning rights × styles,
// large enough to exercise the quad grouping and worker dispatch.
func bigBook(n int) Portfolio {
	book := make(Portfolio, n)
	for i := range book {
		o := demoOption()
		o.Strike = 85 + float64(i%40)
		o.Sigma = 0.12 + 0.002*float64(i%80)
		o.T = 0.25 + 0.05*float64(i%8)
		if i%2 == 1 {
			o.Right = Call
		}
		if i%3 == 2 {
			o.Style = European
		}
		q := float64(i%7 + 1)
		if i%5 == 0 {
			q = -q
		}
		book[i] = Position{Option: o, Quantity: q}
	}
	return book
}

// valuePortfolioScalar is the pre-fix per-position loop — one
// PriceAndGreeks call per position, five scalar sweeps each. It stays
// here as the bit-parity reference the quad-batched ValuePortfolio is
// pinned against, and as the benchmark baseline.
func valuePortfolioScalar(book Portfolio, steps int) (PortfolioReport, error) {
	eng, err := lattice.NewEngine(steps)
	if err != nil {
		return PortfolioReport{}, err
	}
	var out PortfolioReport
	out.Positions = make([]PositionReport, len(book))
	for i, pos := range book {
		price, greeks, err := eng.PriceAndGreeks(pos.Option)
		if err != nil {
			return PortfolioReport{}, err
		}
		out.Positions[i] = PositionReport{Position: pos, Price: price, Greeks: greeks}
		q := pos.Quantity
		out.Value += q * price
		out.Greeks.Delta += q * greeks.Delta
		out.Greeks.Gamma += q * greeks.Gamma
		out.Greeks.Theta += q * greeks.Theta
		out.Greeks.Vega += q * greeks.Vega
		out.Greeks.Rho += q * greeks.Rho
	}
	return out, nil
}

func TestValuePortfolioAggregates(t *testing.T) {
	book := testBook()
	rep, err := ValuePortfolio(book, 256, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Positions) != 2 {
		t.Fatalf("got %d position reports", len(rep.Positions))
	}
	// Recompute the aggregate by hand.
	var value, delta float64
	for _, pr := range rep.Positions {
		value += pr.Position.Quantity * pr.Price
		delta += pr.Position.Quantity * pr.Greeks.Delta
	}
	if math.Abs(rep.Value-value) > 1e-12 || math.Abs(rep.Greeks.Delta-delta) > 1e-12 {
		t.Errorf("aggregation mismatch: %v/%v vs %v/%v", rep.Value, rep.Greeks.Delta, value, delta)
	}
	// Long puts + short calls: both legs have negative delta exposure.
	if rep.Greeks.Delta >= 0 {
		t.Errorf("book delta = %v, want negative", rep.Greeks.Delta)
	}
	if rep.Value <= 0 {
		t.Errorf("book value = %v (long puts dominate)", rep.Value)
	}
}

// TestValuePortfolioScalarParity pins the quad-batched revaluation
// bit-identical to the pre-fix scalar loop on a mixed book.
func TestValuePortfolioScalarParity(t *testing.T) {
	book := bigBook(41)
	ref, err := valuePortfolioScalar(book, 128)
	if err != nil {
		t.Fatal(err)
	}
	for _, workers := range []int{1, 3, 8} {
		got, err := ValuePortfolio(book, 128, workers)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if got.Value != ref.Value || got.Greeks != ref.Greeks {
			t.Fatalf("workers=%d aggregate diverged: %v/%+v vs %v/%+v",
				workers, got.Value, got.Greeks, ref.Value, ref.Greeks)
		}
		for i := range book {
			if got.Positions[i].Price != ref.Positions[i].Price {
				t.Fatalf("workers=%d position %d price: %v != %v",
					workers, i, got.Positions[i].Price, ref.Positions[i].Price)
			}
			if got.Positions[i].Greeks != ref.Positions[i].Greeks {
				t.Fatalf("workers=%d position %d greeks: %+v != %+v",
					workers, i, got.Positions[i].Greeks, ref.Positions[i].Greeks)
			}
		}
	}
}

func TestValuePortfolioDeterministicAcrossWorkers(t *testing.T) {
	book := testBook()
	a, err := ValuePortfolio(book, 128, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ValuePortfolio(book, 128, 8)
	if err != nil {
		t.Fatal(err)
	}
	if a.Value != b.Value || a.Greeks != b.Greeks {
		t.Error("worker count changed the result")
	}
}

// TestValuePortfolioEmptyBook pins the documented convention: an empty
// book values to the zero report with no error, the same contract the
// scenario engine relies on.
func TestValuePortfolioEmptyBook(t *testing.T) {
	for _, book := range []Portfolio{nil, {}} {
		rep, err := ValuePortfolio(book, 128, 1)
		if err != nil {
			t.Fatalf("empty book should value to zero, got error: %v", err)
		}
		if rep.Value != 0 || rep.Greeks != (Greeks{}) || len(rep.Positions) != 0 {
			t.Errorf("empty book report not zero: %+v", rep)
		}
	}
}

func TestValuePortfolioErrors(t *testing.T) {
	bad := testBook()
	bad[1].Option.Sigma = -1
	_, err := ValuePortfolio(bad, 128, 2)
	if err == nil {
		t.Fatal("invalid position should fail")
	}
	// The error names the failing contract, not just its index.
	if !strings.Contains(err.Error(), "option 1") {
		t.Errorf("error should name the position index: %v", err)
	}
	if !strings.Contains(err.Error(), bad[1].Option.String()) {
		t.Errorf("error should carry the contract identity %q: %v", bad[1].Option.String(), err)
	}
	if _, err := ValuePortfolio(testBook(), 0, 1); err == nil {
		t.Error("zero steps should fail")
	}
}

// The benchmark pair demonstrates the quad speedup reaching book
// revaluation: the quad path replaces the five scalar sweeps per
// position with one retained scalar sweep plus a single four-lane quad
// sweep. Run with -bench=ValuePortfolio; scripts/scenario_smoke.sh
// gates the ratio in CI.
func BenchmarkValuePortfolioQuad(b *testing.B) {
	book := bigBook(64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ValuePortfolio(book, 512, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkValuePortfolioScalarRef(b *testing.B) {
	book := bigBook(64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := valuePortfolioScalar(book, 512); err != nil {
			b.Fatal(err)
		}
	}
}
