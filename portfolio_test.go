package binopt

import (
	"math"
	"testing"
)

func testBook() Portfolio {
	long := demoOption()
	short := demoOption()
	short.Right = Call
	short.Strike = 110
	return Portfolio{
		{Option: long, Quantity: 10},
		{Option: short, Quantity: -5},
	}
}

func TestValuePortfolioAggregates(t *testing.T) {
	book := testBook()
	rep, err := ValuePortfolio(book, 256, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Positions) != 2 {
		t.Fatalf("got %d position reports", len(rep.Positions))
	}
	// Recompute the aggregate by hand.
	var value, delta float64
	for _, pr := range rep.Positions {
		value += pr.Position.Quantity * pr.Price
		delta += pr.Position.Quantity * pr.Greeks.Delta
	}
	if math.Abs(rep.Value-value) > 1e-12 || math.Abs(rep.Greeks.Delta-delta) > 1e-12 {
		t.Errorf("aggregation mismatch: %v/%v vs %v/%v", rep.Value, rep.Greeks.Delta, value, delta)
	}
	// Long puts + short calls: both legs have negative delta exposure.
	if rep.Greeks.Delta >= 0 {
		t.Errorf("book delta = %v, want negative", rep.Greeks.Delta)
	}
	if rep.Value <= 0 {
		t.Errorf("book value = %v (long puts dominate)", rep.Value)
	}
}

func TestValuePortfolioDeterministicAcrossWorkers(t *testing.T) {
	book := testBook()
	a, err := ValuePortfolio(book, 128, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := ValuePortfolio(book, 128, 8)
	if err != nil {
		t.Fatal(err)
	}
	if a.Value != b.Value || a.Greeks != b.Greeks {
		t.Error("worker count changed the result")
	}
}

func TestValuePortfolioErrors(t *testing.T) {
	if _, err := ValuePortfolio(nil, 128, 1); err == nil {
		t.Error("empty book should fail")
	}
	bad := testBook()
	bad[1].Option.Sigma = -1
	if _, err := ValuePortfolio(bad, 128, 2); err == nil {
		t.Error("invalid position should fail")
	}
	if _, err := ValuePortfolio(testBook(), 0, 1); err == nil {
		t.Error("zero steps should fail")
	}
}
