package binopt

import (
	"binopt/internal/lattice"
	"binopt/internal/volatility"
	"binopt/internal/workload"
)

// Quote pairs a contract with its observed market price.
type Quote = workload.Quote

// VolSurface is a queryable implied-volatility surface.
type VolSurface = volatility.Surface

// BuildVolSurface inverts a quote tape (multiple strikes and maturities)
// through binomial pricers of the given depth into an implied-volatility
// surface, returning the surface and the number of quotes skipped for
// carrying no volatility information. This is the multi-maturity
// extension of the paper's one-curve-per-second use case.
func BuildVolSurface(quotes []Quote, steps, workers int) (*VolSurface, int, error) {
	eng, err := lattice.NewEngine(steps)
	if err != nil {
		return nil, 0, err
	}
	return volatility.BuildSurface(quotes, eng.Price, volatility.MethodBrent, workers)
}

// LoadQuotes reads a CSV quote tape (see SaveQuotes for the layout).
var LoadQuotes = workload.LoadQuotes

// SaveQuotes writes a CSV quote tape.
var SaveQuotes = workload.SaveQuotes
