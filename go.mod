module binopt

go 1.22
