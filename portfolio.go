package binopt

import (
	"fmt"
	"runtime"
	"sync"

	"binopt/internal/lattice"
)

// Position is a signed holding of one contract (negative quantity =
// short).
type Position struct {
	Option   Option
	Quantity float64
}

// Portfolio is a book of option positions.
type Portfolio []Position

// PositionReport is one position's valuation.
type PositionReport struct {
	Position Position
	Price    float64
	Greeks   Greeks
}

// PortfolioReport aggregates a book: total value and net Greeks, with
// the per-position breakdown.
type PortfolioReport struct {
	Value     float64
	Greeks    Greeks
	Positions []PositionReport
}

// ValuePortfolio prices every position on lattices of the given depth
// (concurrently) and aggregates value and Greeks, quantity-weighted.
// This is the desk-side loop the accelerator's throughput target exists
// to serve: a book revaluation is just a batch of tree pricings.
func ValuePortfolio(book Portfolio, steps, workers int) (PortfolioReport, error) {
	if len(book) == 0 {
		return PortfolioReport{}, fmt.Errorf("binopt: empty portfolio")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(book) {
		workers = len(book)
	}
	eng, err := lattice.NewEngine(steps)
	if err != nil {
		return PortfolioReport{}, err
	}

	reports := make([]PositionReport, len(book))
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		firstErr error
	)
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				price, greeks, err := eng.PriceAndGreeks(book[i].Option)
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("binopt: position %d: %w", i, err)
					}
					mu.Unlock()
					continue
				}
				reports[i] = PositionReport{Position: book[i], Price: price, Greeks: greeks}
			}
		}()
	}
	for i := range book {
		next <- i
	}
	close(next)
	wg.Wait()
	if firstErr != nil {
		return PortfolioReport{}, firstErr
	}

	var out PortfolioReport
	out.Positions = reports
	for _, r := range reports {
		q := r.Position.Quantity
		out.Value += q * r.Price
		out.Greeks.Delta += q * r.Greeks.Delta
		out.Greeks.Gamma += q * r.Greeks.Gamma
		out.Greeks.Theta += q * r.Greeks.Theta
		out.Greeks.Vega += q * r.Greeks.Vega
		out.Greeks.Rho += q * r.Greeks.Rho
	}
	return out, nil
}
