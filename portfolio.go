package binopt

import (
	"fmt"

	"binopt/internal/lattice"
	"binopt/internal/option"
)

// Position is a signed holding of one contract (negative quantity =
// short).
type Position struct {
	Option   Option
	Quantity float64
}

// Portfolio is a book of option positions.
type Portfolio []Position

// PositionReport is one position's valuation.
type PositionReport struct {
	Position Position
	Price    float64
	Greeks   Greeks
}

// PortfolioReport aggregates a book: total value and net Greeks, with
// the per-position breakdown.
type PortfolioReport struct {
	Value     float64
	Greeks    Greeks
	Positions []PositionReport
}

// ValuePortfolio prices every position on lattices of the given depth
// and aggregates value and Greeks, quantity-weighted. This is the
// desk-side loop the accelerator's throughput target exists to serve: a
// book revaluation is just a batch of tree pricings, so it routes
// through the quad-interleaved batch path — each position costs one
// retained scalar sweep plus a single quad sweep carrying all four
// vega/rho bump contracts, instead of the five scalar sweeps of the
// per-position loop. Results are bit-identical to pricing each position
// alone through Engine.PriceAndGreeks (the scalar bit-parity
// reference); portfolio_test.go pins the parity and benchmarks the
// speedup.
//
// An empty book values to the zero report with no error, matching the
// scenario engine's convention: revaluing nothing is worth exactly
// nothing. On the first failing position the dispatcher stops handing
// out work and the error names the contract, not just its index.
func ValuePortfolio(book Portfolio, steps, workers int) (PortfolioReport, error) {
	if len(book) == 0 {
		return PortfolioReport{}, nil
	}
	eng, err := lattice.NewEngine(steps)
	if err != nil {
		return PortfolioReport{}, err
	}
	opts := make([]option.Option, len(book))
	for i, pos := range book {
		opts[i] = pos.Option
	}
	prices, greeks, err := eng.PriceAndGreeksBatch(opts, workers)
	if err != nil {
		return PortfolioReport{}, fmt.Errorf("binopt: portfolio: %w", err)
	}

	var out PortfolioReport
	out.Positions = make([]PositionReport, len(book))
	for i, pos := range book {
		out.Positions[i] = PositionReport{Position: pos, Price: prices[i], Greeks: greeks[i]}
		q := pos.Quantity
		out.Value += q * prices[i]
		out.Greeks.Delta += q * greeks[i].Delta
		out.Greeks.Gamma += q * greeks[i].Gamma
		out.Greeks.Theta += q * greeks[i].Theta
		out.Greeks.Vega += q * greeks[i].Vega
		out.Greeks.Rho += q * greeks[i].Rho
	}
	return out, nil
}
