package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"binopt/internal/serve"
)

// BenchmarkRouterOverhead prices the same (cached) contract directly
// against a node and through a one-node router, so the delta between
// the two sub-benchmarks is the fabric tax: one extra HTTP hop, the
// ring lookup, sub-batch marshal and merge. Kept as a benchmark so the
// BENCH_serve.json fleet row has a measured, re-runnable source.
func BenchmarkRouterOverhead(b *testing.B) {
	const steps = 128
	f, err := NewLocalFleet(1, serve.Config{Steps: steps, CacheSize: 1024})
	if err != nil {
		b.Fatalf("fleet: %v", err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		f.Close(ctx)
	}()
	rt, err := NewRouter(Config{Nodes: f.Nodes(), Steps: steps, Heartbeat: -1})
	if err != nil {
		b.Fatalf("router: %v", err)
	}
	defer rt.Close()
	hs := httptest.NewServer(rt.Handler())
	defer hs.Close()

	body, _ := json.Marshal(serve.PriceRequest{Contracts: []serve.Contract{contractFor(100)}})
	post := func(url string) error {
		resp, err := http.Post(url+"/v1/price", "application/json", bytes.NewReader(body))
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		var pr serve.PriceResponse
		return json.NewDecoder(resp.Body).Decode(&pr)
	}
	// Warm the node cache so both paths measure transport, not lattice.
	if err := post(f.URL(0)); err != nil {
		b.Fatalf("warm: %v", err)
	}

	b.Run("direct", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := post(f.URL(0)); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("via-router", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if err := post(hs.URL); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkRingOwner measures the placement lookup itself — the only
// cluster-side work on the per-contract hot path.
func BenchmarkRingOwner(b *testing.B) {
	r := NewRing(1, 128)
	for _, n := range []string{"node-0", "node-1", "node-2", "node-3"} {
		r.Add(n)
	}
	keys := testKeys(1024)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r.Owner(keys[i%len(keys)])
	}
}
