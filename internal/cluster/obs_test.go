package cluster

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"binopt/internal/serve"
	"binopt/internal/slo"
	"binopt/internal/telemetry"
	"binopt/internal/workload"
)

// fleetTraceDoc is the subset of the Chrome trace-event schema the
// fleet tests assert on.
type fleetTraceDoc struct {
	TraceEvents []struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		Pid  int            `json:"pid"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
}

func getFleetTrace(t *testing.T, url string) fleetTraceDoc {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	var doc fleetTraceDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	return doc
}

// TestFleetMergedTrace is the tentpole's acceptance check: one request
// through a 2-node fleet yields one merged Chrome trace on the router
// whose router spans AND both nodes' spans share a single distributed
// trace ID, with each node's spans in its own process lanes.
func TestFleetMergedTrace(t *testing.T) {
	const steps = 64
	_, _, hs := newTestFleet(t, 2,
		serve.Config{Steps: steps, Tracer: telemetry.New(4096)},
		Config{Steps: steps, Tracer: telemetry.New(4096), Heartbeat: 20 * time.Millisecond})

	spec := workload.DefaultVolCurveSpec(23)
	spec.N = 50
	chain, err := workload.Chain(spec)
	if err != nil {
		t.Fatalf("chain: %v", err)
	}
	resp, body := postJSON(t, hs.URL+"/v1/price", serve.PriceRequest{Contracts: toContracts(chain)})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("price: HTTP %d: %s", resp.StatusCode, body)
	}
	wantTrace, _, ok := telemetry.ParseTraceParent(resp.Header.Get("traceparent"))
	if !ok {
		t.Fatalf("router echoed no traceparent, got %q", resp.Header.Get("traceparent"))
	}

	// The node-side request span is emitted a hair after the response is
	// written; give the fleet a moment to have everything in its rings.
	var doc fleetTraceDoc
	var procs map[int]string
	var lanes map[string]bool
	deadline := time.Now().Add(2 * time.Second)
	for {
		doc = getFleetTrace(t, hs.URL+"/debug/trace")
		procs = map[int]string{}
		for _, ev := range doc.TraceEvents {
			if ev.Ph == "M" && ev.Name == "process_name" {
				procs[ev.Pid], _ = ev.Args["name"].(string)
			}
		}
		lanes = map[string]bool{}
		for _, p := range procs {
			lanes[p] = true
		}
		if lanes["router"] && lanes["node-0:host"] && lanes["node-1:host"] {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("merged trace never grew all lanes, have %v", lanes)
		}
		time.Sleep(20 * time.Millisecond)
	}

	// Every traced span — router and node alike — carries the one trace
	// ID the client saw.
	names := map[string]int{}
	nodeSpanProcs := map[string]bool{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		names[ev.Name]++
		if tid, ok := ev.Args["trace_id"].(string); ok && tid != wantTrace {
			t.Errorf("span %q on %q has trace %q, want %s", ev.Name, procs[ev.Pid], tid, wantTrace)
		}
		if strings.HasPrefix(procs[ev.Pid], "node-") {
			nodeSpanProcs[procs[ev.Pid]] = true
			if tid, ok := ev.Args["trace_id"].(string); !ok || tid == "" {
				// Node spans of this request must be stitched; idle-time
				// node spans don't exist in this test.
				t.Errorf("node span %q on %q has no trace_id", ev.Name, procs[ev.Pid])
			}
		}
	}
	for _, want := range []string{"POST /v1/price", "forward", "merge", "batch", "compute", "readback"} {
		if names[want] == 0 {
			t.Errorf("merged trace has no %q span (have %v)", want, names)
		}
	}
	if !nodeSpanProcs["node-0:host"] || !nodeSpanProcs["node-1:host"] {
		t.Errorf("spans from both nodes expected, have %v", nodeSpanProcs)
	}
	// The modelled device lanes came along too, under the node prefix.
	deviceLane := false
	for p := range lanes {
		if strings.HasPrefix(p, "node-") && strings.Contains(p, ":device:") {
			deviceLane = true
		}
	}
	if !deviceLane {
		t.Errorf("no per-node device lane in %v", lanes)
	}

	// reset clears both the router ring and the collected node spans;
	// member cursors survive, so nothing is re-pulled.
	getFleetTrace(t, hs.URL+"/debug/trace?reset=1")
	doc = getFleetTrace(t, hs.URL+"/debug/trace")
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" && ev.Name != "POST /v1/price" {
			t.Fatalf("span %q survived reset", ev.Name)
		}
	}
}

// TestFleetScrapeFailureStale: a node dying between scrapes keeps its
// last known figures in the fleet roll-up, marked stale — the fleet
// totals must not collapse to half because one board is rebooting.
func TestFleetScrapeFailureStale(t *testing.T) {
	const steps = 64
	f, _, hs := newTestFleet(t, 2, serve.Config{Steps: steps},
		Config{Steps: steps, Heartbeat: -1})

	spec := workload.DefaultVolCurveSpec(31)
	spec.N = 40
	chain, err := workload.Chain(spec)
	if err != nil {
		t.Fatalf("chain: %v", err)
	}
	resp, body := postJSON(t, hs.URL+"/v1/price", serve.PriceRequest{Contracts: toContracts(chain)})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("price: HTTP %d: %s", resp.StatusCode, body)
	}

	scrape := func() string {
		t.Helper()
		mresp, err := http.Get(hs.URL + "/metrics")
		if err != nil {
			t.Fatalf("GET /metrics: %v", err)
		}
		defer mresp.Body.Close()
		raw, _ := io.ReadAll(mresp.Body)
		return string(raw)
	}

	before := scrape()
	for _, want := range []string{
		`binopt_fleet_node_stale{node="node-0"} 0`,
		`binopt_fleet_node_stale{node="node-1"} 0`,
		"binopt_fleet_nodes_scraped 2\n",
		"binopt_fleet_options_served_total 40\n",
	} {
		if !strings.Contains(before, want) {
			t.Errorf("live scrape missing %q:\n%s", want, before)
		}
	}

	f.Kill(1)
	after := scrape()
	for _, want := range []string{
		`binopt_fleet_node_stale{node="node-0"} 0`,
		`binopt_fleet_node_stale{node="node-1"} 1`,
		"binopt_fleet_nodes_scraped 1\n",
		// The dead node's last-good joules figure is still on the page…
		`binopt_fleet_node_joules_total{node="node-1"} `,
		// …and the fleet totals still count everything it served.
		"binopt_fleet_options_served_total 40\n",
	} {
		if !strings.Contains(after, want) {
			t.Errorf("stale scrape missing %q:\n%s", want, after)
		}
	}
	if strings.Contains(after, "binopt_fleet_modelled_joules_total 0\n") {
		t.Errorf("fleet joules zeroed by a dead node:\n%s", after)
	}
}

// TestHeartbeatClockOffset: the heartbeat reads a member's healthz
// now_unix_nano against the poll RTT and lands within tolerance of the
// node's actual (here deliberately skewed) clock offset.
func TestHeartbeatClockOffset(t *testing.T) {
	const skew = 5 * time.Second
	fake := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, map[string]any{
			"status":        "ok",
			"now_unix_nano": time.Now().Add(skew).UnixNano(),
		})
	}))
	defer fake.Close()

	rt, err := NewRouter(Config{
		Nodes:     []Node{{Name: "skewed", BaseURL: fake.URL}},
		Steps:     64,
		Heartbeat: -1, // poll manually
	})
	if err != nil {
		t.Fatalf("NewRouter: %v", err)
	}
	defer rt.Close()

	rt.pollOnce()
	got := time.Duration(rt.members["skewed"].clockOffset.Load())
	if got < skew-time.Second || got > skew+time.Second {
		t.Errorf("measured offset %v, want ~%v", got, skew)
	}
}

// TestRouterSLOAndBurningHealthz: the router's own burn-rate monitor is
// served on /debug/slo and folds into /healthz as "burning" while the
// HTTP code stays 200 (a burning router still answers).
func TestRouterSLOAndBurningHealthz(t *testing.T) {
	const steps = 64
	clock := time.Unix(1700000000, 0)
	_, rt, hs := newTestFleet(t, 1, serve.Config{Steps: steps},
		Config{Steps: steps, SLO: &slo.Options{
			LatencyThreshold: time.Nanosecond, // everything is slow
			FastWindow:       2 * time.Second,
			SlowWindow:       10 * time.Second,
			Now:              func() time.Time { return clock },
		}})

	resp, err := http.Get(hs.URL + "/debug/slo")
	if err != nil {
		t.Fatal(err)
	}
	var rep slo.Report
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !rep.Healthy || len(rep.Objectives) != 2 {
		t.Errorf("idle router slo = %+v", rep)
	}

	for i := 0; i < 20; i++ {
		rt.slomon.Observe(time.Second, false)
	}
	hresp, err := http.Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	if hresp.StatusCode != http.StatusOK {
		t.Errorf("burning router healthz code = %d, want 200", hresp.StatusCode)
	}
	var health map[string]any
	if err := json.NewDecoder(hresp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health["status"] != "burning" {
		t.Errorf("status = %v, want burning", health["status"])
	}
	if now, _ := health["now_unix_nano"].(float64); now == 0 {
		t.Error("router healthz has no now_unix_nano")
	}
}

// TestRouterCloseCancelsInflightHeartbeat: Close must not wait out
// HeartbeatTimeout behind a wedged member. The probe context derives
// from the router's lifetime context, so cancelling it unblocks the
// in-flight /healthz request immediately. (Regression: probes used to
// derive from context.Background(), and Close blocked on wg.Wait until
// the full probe timeout expired — found by the ctxflow analyzer.)
func TestRouterCloseCancelsInflightHeartbeat(t *testing.T) {
	probing := make(chan struct{}, 1)
	wedged := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		select {
		case probing <- struct{}{}:
		default:
		}
		<-r.Context().Done() // hang until the probe is cancelled
	}))
	defer wedged.Close()

	rt, err := NewRouter(Config{
		Nodes:            []Node{{Name: "wedged", BaseURL: wedged.URL}},
		Steps:            64,
		Heartbeat:        5 * time.Millisecond,
		HeartbeatTimeout: 30 * time.Second, // the bug made Close wait this long
	})
	if err != nil {
		t.Fatalf("NewRouter: %v", err)
	}

	select {
	case <-probing:
	case <-time.After(5 * time.Second):
		t.Fatal("heartbeat never reached the wedged member")
	}

	done := make(chan struct{})
	go func() {
		rt.Close()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("Close blocked behind a wedged heartbeat probe")
	}
}
