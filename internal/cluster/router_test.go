package cluster

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"binopt/internal/option"
	"binopt/internal/serve"
)

// fakeNode is a scripted stand-in for a member: it answers /v1/price
// with deterministic prices (price = spot, so assertions can tell who
// answered what) after an optional delay, or fails with a scripted
// status.
type fakeNode struct {
	delay  time.Duration
	status atomic.Int64 // 0 = answer normally, else fail with this code
	hits   atomic.Int64
}

func (f *fakeNode) handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte(`{"status":"ok"}`))
	})
	mux.HandleFunc("/v1/price", func(w http.ResponseWriter, r *http.Request) {
		f.hits.Add(1)
		if f.delay > 0 {
			select {
			case <-time.After(f.delay):
			case <-r.Context().Done():
				return
			}
		}
		if code := f.status.Load(); code != 0 {
			http.Error(w, "scripted failure", int(code))
			return
		}
		var req serve.PriceRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			http.Error(w, err.Error(), http.StatusBadRequest)
			return
		}
		results := make([]serve.Result, len(req.Contracts))
		for i, c := range req.Contracts {
			results[i] = serve.Result{Price: c.Spot, Backend: "fake"}
		}
		json.NewEncoder(w).Encode(serve.PriceResponse{Steps: 64, Results: results})
	})
	return mux
}

// contractFor builds a valid contract whose spot doubles as an
// identity tag in fake-node responses.
func contractFor(spot float64) serve.Contract {
	return serve.Contract{
		Right: "put", Style: "american",
		Spot: spot, Strike: 100, Rate: 0.03, Sigma: 0.2, T: 0.5,
	}
}

// newFakeRouter builds a router over n fake nodes. Heartbeats are off
// unless the config says otherwise; forward outcomes drive the
// breakers.
func newFakeRouter(t *testing.T, n int, cfg Config) ([]*fakeNode, *Router) {
	t.Helper()
	fakes := make([]*fakeNode, n)
	for i := range fakes {
		fakes[i] = &fakeNode{}
		hs := httptest.NewServer(fakes[i].handler())
		t.Cleanup(hs.Close)
		cfg.Nodes = append(cfg.Nodes, Node{Name: nodeName(i), BaseURL: hs.URL})
	}
	if cfg.Heartbeat == 0 {
		cfg.Heartbeat = -1 // off by default in unit tests
	}
	rt, err := NewRouter(cfg)
	if err != nil {
		t.Fatalf("NewRouter: %v", err)
	}
	t.Cleanup(rt.Close)
	return fakes, rt
}

func nodeName(i int) string { return "node-" + string(rune('a'+i)) }

// priceOne pushes one contract through the router handler and returns
// the HTTP status and decoded response.
func priceOne(t *testing.T, rt *Router, c serve.Contract) (int, serve.PriceResponse) {
	t.Helper()
	hs := httptest.NewServer(rt.Handler())
	defer hs.Close()
	resp, body := postJSON(t, hs.URL+"/v1/price", serve.PriceRequest{Contracts: []serve.Contract{c}})
	var pr serve.PriceResponse
	if resp.StatusCode == http.StatusOK {
		if err := json.Unmarshal(body, &pr); err != nil {
			t.Fatalf("decode: %v", err)
		}
	}
	return resp.StatusCode, pr
}

// TestRouterFailover: the owner failing with 500 must be invisible to
// the client — the contract re-places onto the ring successor within
// the same request, and the failure feeds the owner's breaker.
func TestRouterFailover(t *testing.T) {
	fakes, rt := newFakeRouter(t, 2, Config{Steps: 64, MaxAttempts: 2})

	c := contractFor(123)
	key := serve.KeyFor(mustOption(t, c), 64).String()
	owner := rt.Ring().Owner(key)
	ownerIdx := int(owner[len(owner)-1] - 'a')
	fakes[ownerIdx].status.Store(http.StatusInternalServerError)

	status, pr := priceOne(t, rt, c)
	if status != http.StatusOK {
		t.Fatalf("HTTP %d with a live successor", status)
	}
	if pr.Results[0].Price != 123 {
		t.Fatalf("price %v, want 123", pr.Results[0].Price)
	}
	if got := rt.metrics.failovers.Load(); got == 0 {
		t.Error("failover counter did not move")
	}
	if errs := rt.members[owner].errs.Load(); errs == 0 {
		t.Error("owner error counter did not move")
	}
}

// TestRouterPermanentErrorPassthrough: a 400 from the node is the
// request's own fault; the router must not burn attempts on successors
// or mask the status.
func TestRouterPermanentErrorPassthrough(t *testing.T) {
	fakes, rt := newFakeRouter(t, 2, Config{Steps: 64, MaxAttempts: 2})
	for _, f := range fakes {
		f.status.Store(http.StatusBadRequest)
	}
	status, _ := priceOne(t, rt, contractFor(50))
	if status != http.StatusBadRequest {
		t.Fatalf("HTTP %d, want 400 passed through", status)
	}
}

// TestRouterHedging: a straggling owner is raced against its successor
// after the hedge delay; the fast duplicate answers the client and is
// booked as a hedge win. The slow node's breaker must NOT be fed a
// failure for losing the race — its request was cancelled by us.
func TestRouterHedging(t *testing.T) {
	fakes, rt := newFakeRouter(t, 2, Config{Steps: 64, Hedge: 20 * time.Millisecond})

	c := contractFor(77)
	key := serve.KeyFor(mustOption(t, c), 64).String()
	owner := rt.Ring().Owner(key)
	ownerIdx := int(owner[len(owner)-1] - 'a')
	fakes[ownerIdx].delay = 400 * time.Millisecond

	start := time.Now()
	status, pr := priceOne(t, rt, c)
	elapsed := time.Since(start)
	if status != http.StatusOK {
		t.Fatalf("HTTP %d", status)
	}
	if pr.Results[0].Price != 77 {
		t.Fatalf("price %v, want 77", pr.Results[0].Price)
	}
	if elapsed >= 400*time.Millisecond {
		t.Errorf("request took %v — hedge never cut the straggler", elapsed)
	}
	if rt.metrics.hedges.Load() == 0 || rt.metrics.hedgeWins.Load() == 0 {
		t.Errorf("hedges=%d hedgeWins=%d, want both > 0",
			rt.metrics.hedges.Load(), rt.metrics.hedgeWins.Load())
	}
	if st, _ := rt.members[owner].breaker.State(); st != "closed" {
		t.Errorf("slow owner's breaker %s after losing a hedge race, want closed", st)
	}
}

// TestRouterAllNodesDown: with every node failing, the client gets an
// error after MaxAttempts — bounded, not hung — and the route-error
// counter moves.
func TestRouterAllNodesDown(t *testing.T) {
	fakes, rt := newFakeRouter(t, 3, Config{Steps: 64, MaxAttempts: 3})
	for _, f := range fakes {
		f.status.Store(http.StatusInternalServerError)
	}
	status, _ := priceOne(t, rt, contractFor(10))
	if status != http.StatusBadGateway {
		t.Fatalf("HTTP %d, want 502", status)
	}
	if rt.metrics.routeErrors.Load() != 1 {
		t.Errorf("routeErrors = %d, want 1", rt.metrics.routeErrors.Load())
	}
}

// TestRouterGroupsByOwner: a batch splits across nodes by ring
// ownership — with two nodes and many contracts both must see traffic,
// and the merged response must preserve input order.
func TestRouterGroupsByOwner(t *testing.T) {
	fakes, rt := newFakeRouter(t, 2, Config{Steps: 64})
	hs := httptest.NewServer(rt.Handler())
	defer hs.Close()

	req := serve.PriceRequest{}
	for i := 0; i < 64; i++ {
		req.Contracts = append(req.Contracts, contractFor(float64(1000+i)))
	}
	resp, body := postJSON(t, hs.URL+"/v1/price", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("HTTP %d: %s", resp.StatusCode, body)
	}
	var pr serve.PriceResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatalf("decode: %v", err)
	}
	for i, r := range pr.Results {
		if r.Price != float64(1000+i) {
			t.Fatalf("result %d carries price %v — merge broke input order", i, r.Price)
		}
	}
	if fakes[0].hits.Load() == 0 || fakes[1].hits.Load() == 0 {
		t.Errorf("hits %d/%d — batch did not split across the ring",
			fakes[0].hits.Load(), fakes[1].hits.Load())
	}
}

// TestRouterRejectsBadConfig: empty membership and duplicate names are
// construction-time errors, not runtime surprises.
func TestRouterRejectsBadConfig(t *testing.T) {
	if _, err := NewRouter(Config{}); err == nil {
		t.Error("empty membership accepted")
	}
	if _, err := NewRouter(Config{Nodes: []Node{
		{Name: "a", BaseURL: "http://x"}, {Name: "a", BaseURL: "http://y"},
	}}); err == nil {
		t.Error("duplicate node name accepted")
	}
	if _, err := NewRouter(Config{Nodes: []Node{{Name: "a"}}}); err == nil {
		t.Error("node without base URL accepted")
	}
}

func mustOption(t *testing.T, c serve.Contract) option.Option {
	t.Helper()
	opt, err := c.ToOption()
	if err != nil {
		t.Fatalf("ToOption: %v", err)
	}
	return opt
}
