package cluster

import (
	"context"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"binopt/internal/scenario"
	"binopt/internal/serve"
)

// scenarioBook builds a deterministic mixed book spanning rights,
// styles and signed quantities — the same shape the serve-tier tests
// use, sized for fleet runs.
func scenarioBook(n int) []serve.ScenarioPosition {
	book := make([]serve.ScenarioPosition, n)
	for i := range book {
		right := "call"
		if i%2 == 1 {
			right = "put"
		}
		style := "european"
		if i%3 == 0 {
			style = "american"
		}
		qty := float64(1 + i%5)
		if i%4 == 3 {
			qty = -qty
		}
		book[i] = serve.ScenarioPosition{
			Contract: serve.Contract{
				Right: right, Style: style,
				Spot:   95 + float64(i%7)*2.5,
				Strike: 100 - float64(i%5)*3,
				Rate:   0.01 + float64(i%3)*0.01,
				Div:    float64(i%2) * 0.01,
				Sigma:  0.15 + float64(i%6)*0.04,
				T:      0.25 + float64(i%4)*0.25,
			},
			Quantity: qty,
		}
	}
	return book
}

// newSoloServer boots a single serve.Server behind a test listener, the
// solo baseline the fleet answers are compared against.
func newSoloServer(t *testing.T, cfg serve.Config) *httptest.Server {
	t.Helper()
	s, err := serve.New(cfg)
	if err != nil {
		t.Fatalf("serve.New: %v", err)
	}
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		hs.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Close(ctx)
	})
	return hs
}

func postScenarios(t *testing.T, base string, req serve.ScenarioRequest) serve.ScenarioResponse {
	t.Helper()
	resp, body := postJSON(t, base+"/v1/scenarios", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST %s/v1/scenarios: HTTP %d: %s", base, resp.StatusCode, body)
	}
	var out serve.ScenarioResponse
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	return out
}

// requireScenarioEqual asserts the fleet and solo revaluations agree on
// everything distribution must not change: base value, net Greeks,
// every per-scenario value and P&L, and the risk quantiles. Evaluations
// and joules are deliberately excluded — each fleet shard reprices the
// base book, so the fleet's energy ledger is honestly larger.
func requireScenarioEqual(t *testing.T, fleet, solo serve.ScenarioResponse) {
	t.Helper()
	if math.Float64bits(fleet.BaseValue) != math.Float64bits(solo.BaseValue) {
		t.Errorf("base value: fleet %x, solo %x", fleet.BaseValue, solo.BaseValue)
	}
	if fleet.HasGreeks != solo.HasGreeks {
		t.Errorf("has_greeks: fleet %t, solo %t", fleet.HasGreeks, solo.HasGreeks)
	}
	if fleet.HasGreeks && solo.HasGreeks && *fleet.Greeks != *solo.Greeks {
		t.Errorf("greeks: fleet %+v, solo %+v", *fleet.Greeks, *solo.Greeks)
	}
	if len(fleet.Scenarios) != len(solo.Scenarios) {
		t.Fatalf("scenario count: fleet %d, solo %d", len(fleet.Scenarios), len(solo.Scenarios))
	}
	for i := range solo.Scenarios {
		if fleet.Scenarios[i] != solo.Scenarios[i] {
			t.Fatalf("scenario %d: fleet %+v, solo %+v", i, fleet.Scenarios[i], solo.Scenarios[i])
		}
	}
	if len(fleet.Risk) != len(solo.Risk) {
		t.Fatalf("risk count: fleet %d, solo %d", len(fleet.Risk), len(solo.Risk))
	}
	for i := range solo.Risk {
		if fleet.Risk[i] != solo.Risk[i] {
			t.Errorf("risk %d: fleet %+v, solo %+v", i, fleet.Risk[i], solo.Risk[i])
		}
	}
}

// TestFleetScenariosBitIdenticalToSolo is the scenario fabric's
// foundational claim, mirroring TestFleetBitIdentical for /v1/price: a
// stress grid revalued through a sharded fleet equals the same request
// answered by one solo node bit for bit — sharding the scenario axis,
// skip-greeks placement and the router's risk recomputation are
// numerically invisible.
func TestFleetScenariosBitIdenticalToSolo(t *testing.T) {
	const steps = 64
	req := serve.ScenarioRequest{
		Portfolio: scenarioBook(21),
		Grid: &scenario.GridSpec{
			Spot: scenario.Axis{From: 0.8, To: 1.2, N: 5},
			Vol:  scenario.Axis{From: 0.85, To: 1.3, N: 4},
			Rate: scenario.Axis{From: -0.01, To: 0.01, N: 3},
		},
		Quantiles: []float64{0.9, 0.95, 0.99},
	}

	solo := newSoloServer(t, serve.Config{Steps: steps})
	want := postScenarios(t, solo.URL, req)
	if !want.HasGreeks {
		t.Fatalf("solo baseline carries no greeks")
	}

	_, rt, hs := newTestFleet(t, 3, serve.Config{Steps: steps}, Config{Steps: steps})
	got := postScenarios(t, hs.URL, req)
	requireScenarioEqual(t, got, want)

	if got.Backend != "fleet" {
		t.Errorf("backend = %q, want fleet", got.Backend)
	}
	if shards := rt.metrics.scenarioShards.Load(); shards < 2 {
		t.Errorf("scenario axis did not shard: %d sub-requests", shards)
	}
	var nonzero int
	for _, rm := range got.Risk {
		if rm.VaR != 0 {
			nonzero++
		}
	}
	if nonzero == 0 {
		t.Errorf("expected nonzero VaR on a shocked book: %+v", got.Risk)
	}
}

// TestFleetScenariosFailover kills a member mid-fleet and requires the
// routed revaluation to still come back complete and bit-identical —
// the failed node's scenario groups re-place onto ring successors, and
// if the dead node owned the Greeks pass, the re-placement carries it.
func TestFleetScenariosFailover(t *testing.T) {
	const steps = 32
	req := serve.ScenarioRequest{
		Portfolio: scenarioBook(6),
		Grid: &scenario.GridSpec{
			Spot: scenario.Axis{From: 0.9, To: 1.1, N: 5},
			Vol:  scenario.Axis{From: 0.9, To: 1.2, N: 4},
		},
	}
	solo := newSoloServer(t, serve.Config{Steps: steps})
	want := postScenarios(t, solo.URL, req)

	f, rt, hs := newTestFleet(t, 3,
		serve.Config{Steps: steps},
		Config{Steps: steps, Heartbeat: -1}) // no heartbeat: the forward itself must discover the corpse
	f.Kill(1)

	got := postScenarios(t, hs.URL, req)
	requireScenarioEqual(t, got, want)
	if rt.metrics.scenarioFailovers.Load() == 0 {
		t.Logf("note: ring placed no scenarios on the killed node this layout")
	}
}

// TestFleetScenariosBadRequest pins that malformed requests die at the
// router with 400 and are never forwarded.
func TestFleetScenariosBadRequest(t *testing.T) {
	const steps = 32
	_, rt, hs := newTestFleet(t, 2, serve.Config{Steps: steps}, Config{Steps: steps})
	resp, _ := postJSON(t, hs.URL+"/v1/scenarios", serve.ScenarioRequest{Portfolio: scenarioBook(1)})
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("status %d, want 400", resp.StatusCode)
	}
	if rt.metrics.scenarioShards.Load() != 0 {
		t.Errorf("bad request was forwarded to %d shards", rt.metrics.scenarioShards.Load())
	}
}
