package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"binopt/internal/obslog"
	"binopt/internal/scenario"
	"binopt/internal/serve"
	"binopt/internal/telemetry"
)

// scenFwdResult is one scenario sub-request's forward outcome.
type scenFwdResult struct {
	resp    serve.ScenarioResponse
	m       *member
	status  int // HTTP status, 0 on transport error
	elapsed time.Duration
	err     error
}

func (r scenFwdResult) retryable() bool {
	return r.status == 0 || r.status >= 500 || r.status == http.StatusTooManyRequests
}

// forwardScenario posts one scenario sub-request to one member and
// decodes the reply, feeding the member's breaker exactly as the price
// path does (429 saturation is load, not ill-health).
func (rt *Router) forwardScenario(ctx context.Context, m *member, body []byte, want int, traceparent string) scenFwdResult {
	t0 := time.Now()
	m.forwards.Add(1)
	out := scenFwdResult{m: m}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, m.base+"/v1/scenarios", bytes.NewReader(body))
	if err != nil {
		out.err = err
		return out
	}
	req.Header.Set("Content-Type", "application/json")
	if traceparent != "" {
		req.Header.Set("traceparent", traceparent)
	}
	resp, err := m.client.Do(req)
	out.elapsed = time.Since(t0)
	if err != nil {
		if ctx.Err() != nil {
			out.err = ctx.Err()
			return out
		}
		m.errs.Add(1)
		m.breaker.OnFailure()
		out.err = fmt.Errorf("node %s: %w", m.name, err)
		return out
	}
	defer resp.Body.Close()
	out.status = resp.StatusCode
	if resp.StatusCode != http.StatusOK {
		m.errs.Add(1)
		if resp.StatusCode != http.StatusTooManyRequests {
			m.breaker.OnFailure()
		}
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		out.err = fmt.Errorf("node %s: HTTP %d: %s", m.name, resp.StatusCode, bytes.TrimSpace(msg))
		return out
	}
	if err := json.NewDecoder(resp.Body).Decode(&out.resp); err != nil {
		m.errs.Add(1)
		m.breaker.OnFailure()
		out.err = fmt.Errorf("node %s: decoding response: %w", m.name, err)
		return out
	}
	if len(out.resp.Scenarios) != want {
		m.errs.Add(1)
		m.breaker.OnFailure()
		out.err = fmt.Errorf("node %s: %d scenarios for %d requested", m.name, len(out.resp.Scenarios), want)
		return out
	}
	out.elapsed = time.Since(t0)
	m.breaker.OnSuccess()
	return out
}

// wireShocks converts resolved shocks back to their explicit wire form
// for a sub-request, labels included — the node must not re-derive
// anything the router already fixed.
func wireShocks(shocks []scenario.Shock) []serve.ShockJSON {
	out := make([]serve.ShockJSON, len(shocks))
	for i := range shocks {
		sh := shocks[i]
		out[i] = serve.ShockJSON{Label: sh.Label, SpotMul: &sh.SpotMul, VolMul: &sh.VolMul, RateAdd: sh.RateAdd}
	}
	return out
}

// routeScenarios revalues one client request across the fleet by
// sharding the scenario axis: scenarios are grouped by the ring owner of
// their shock key (the whole book travels with every group — the book is
// small, the scenario axis is what explodes), groups forward
// concurrently, failed groups re-place onto successors with the failed
// node excluded, and per-scenario results merge back in request order.
//
// Every node prices the base book identically (bit-identical lattices),
// so per-scenario P&L needs no cross-shard reconciliation; the Greeks
// pass runs on exactly one shard — the one holding the lowest
// still-unmerged scenario index — and every other sub-request sets
// skip_greeks. The router recomputes VaR/ES over the merged P&L, which
// reproduces a solo node's numbers exactly because the risk computation
// is a deterministic sort plus fixed-order tail sums.
func (rt *Router) routeScenarios(ctx context.Context, reqID uint64, trace, fallbackTP string, wreq serve.ScenarioRequest, shocks []scenario.Shock, quantiles []float64) (serve.ScenarioResponse, int, error) {
	out := serve.ScenarioResponse{
		Steps:     rt.cfg.Steps,
		Scenarios: make([]scenario.ScenarioValue, len(shocks)),
		Backend:   "fleet",
	}
	keys := make([]string, len(shocks))
	for i, sh := range shocks {
		keys[i] = sh.Key()
	}

	remaining := make([]int, len(shocks))
	for i := range remaining {
		remaining[i] = i
	}
	excluded := make(map[string]bool)
	greeksMerged := false
	baseMerged := false
	var lastErr error
	lastStatus := http.StatusBadGateway

	for attempt := 0; attempt < rt.cfg.MaxAttempts && len(remaining) > 0; attempt++ {
		if attempt > 0 {
			rt.metrics.scenarioFailovers.Add(int64(len(remaining)))
		}
		groups := make(map[*member][]int)
		for _, i := range remaining {
			m := rt.pick(keys[i], excluded)
			if m == nil {
				return out, http.StatusBadGateway,
					fmt.Errorf("no nodes left for scenario %d after %d exclusions", i, len(excluded))
			}
			groups[m] = append(groups[m], i)
		}
		// The Greeks pass runs once per request: the group holding the
		// lowest unmerged scenario index carries it (deterministic, and
		// re-assigned automatically if that group's node fails over).
		var greeksOwner *member
		if !wreq.SkipGreeks && !greeksMerged {
			low := -1
			for m, idx := range groups {
				if low < 0 || idx[0] < low {
					low, greeksOwner = idx[0], m
				}
			}
		}

		var (
			mu     sync.Mutex
			wg     sync.WaitGroup
			failed []int
		)
		for m, idx := range groups {
			wg.Add(1)
			go func(m *member, idx []int, withGreeks bool) {
				defer wg.Done()
				rt.metrics.scenarioShards.Add(1)
				sub := serve.ScenarioRequest{
					Portfolio:  wreq.Portfolio,
					Quantiles:  quantiles,
					SkipGreeks: !withGreeks,
				}
				subShocks := make([]scenario.Shock, len(idx))
				for j, i := range idx {
					subShocks[j] = shocks[i]
				}
				sub.Shocks = wireShocks(subShocks)
				body, err := json.Marshal(sub)
				if err != nil {
					mu.Lock()
					failed = append(failed, idx...)
					lastErr = err
					mu.Unlock()
					return
				}
				var fwdID uint64
				tp := fallbackTP
				if trace != "" {
					if fwdID = rt.tracer.NextID(); fwdID != 0 {
						tp = telemetry.FormatTraceParent(trace, fwdID)
					}
				}
				t0 := time.Now()
				r := rt.forwardScenario(ctx, m, body, len(idx), tp)
				rt.emitScenarioForwardSpan(reqID, trace, fwdID, m, r, t0, len(idx), attempt)
				mu.Lock()
				defer mu.Unlock()
				if r.err != nil {
					lastErr = r.err
					if r.status == http.StatusTooManyRequests {
						lastStatus = http.StatusTooManyRequests
					}
					excluded[r.m.name] = true
					if !r.retryable() {
						lastStatus = r.status
					}
					failed = append(failed, idx...)
					return
				}
				for j, i := range idx {
					out.Scenarios[i] = r.resp.Scenarios[j]
				}
				out.Evaluations += r.resp.Evaluations
				out.ModelledJoules += r.resp.ModelledJoules
				// Base value is bit-identical on every node; keep the
				// first merged one and let the Greeks owner's sub-response
				// contribute the sensitivities.
				if !baseMerged {
					out.BaseValue = r.resp.BaseValue
					baseMerged = true
				}
				if withGreeks && r.resp.HasGreeks {
					out.Greeks = r.resp.Greeks
					out.HasGreeks = true
					greeksMerged = true
				}
			}(m, idx, m == greeksOwner)
		}
		wg.Wait()
		remaining = failed
	}

	if len(remaining) > 0 {
		rt.metrics.routeErrors.Add(1)
		if lastErr == nil {
			lastErr = fmt.Errorf("cluster: %d scenarios unplaced", len(remaining))
		}
		return out, lastStatus, lastErr
	}

	// Recompute the risk quantiles over the merged P&L distribution —
	// deterministic, so bit-identical to a solo node's report.
	pnl := make([]float64, len(out.Scenarios))
	for i, sv := range out.Scenarios {
		pnl[i] = sv.PnL
	}
	risk, err := scenario.RiskMeasures(pnl, quantiles)
	if err != nil {
		return out, http.StatusInternalServerError, err
	}
	out.Risk = risk
	return out, http.StatusOK, nil
}

// emitScenarioForwardSpan records one scenario sub-request forward on
// the router's trace, on the target node's lane.
func (rt *Router) emitScenarioForwardSpan(reqID uint64, trace string, fwdID uint64, m *member, r scenFwdResult, start time.Time, n, attempt int) {
	if !rt.tracer.Enabled() {
		return
	}
	name := "scenario-forward"
	if r.err != nil {
		name = "scenario-forward-error"
	}
	rt.tracer.Emit(telemetry.Span{
		ID: fwdID, Req: reqID, Trace: trace,
		Name: name, Proc: "router", Thread: "node " + m.name,
		Start: start, Dur: r.elapsed, Clock: telemetry.Wall,
		Attrs: map[string]any{
			"node":      m.name,
			"scenarios": n,
			"attempt":   attempt + 1,
			"status":    r.status,
		},
	})
}

// handleScenarios is the fleet edge of POST /v1/scenarios: same wire
// grammar as a member node, answered by sharding the scenario axis over
// the ring and merging in order — a client cannot tell a router from a
// node except by throughput.
func (rt *Router) handleScenarios(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		rt.writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	rt.metrics.scenarioReqs.Add(1)
	started := time.Now()

	trace, parent, fromRemote := telemetry.ParseTraceParent(r.Header.Get("traceparent"))
	if !fromRemote && rt.tracer.Enabled() {
		trace = telemetry.NewTraceID()
	}
	fallbackTP := ""
	if fromRemote {
		fallbackTP = r.Header.Get("traceparent")
	}
	span := rt.tracer.Begin("POST /v1/scenarios", "router", "requests")
	span.SetReq(span.ID())
	span.SetTrace(trace)
	if fromRemote {
		span.SetAttr("parent_span", fmt.Sprintf("%016x", parent))
	}
	defer span.End()
	log := obslog.WithTrace(rt.logger, trace, span.ID())

	// Batch-class SLO observation: a sharded stress grid counts toward
	// availability but is exempt from the interactive latency budget.
	observe := func(failed bool) { rt.slomon.ObserveBatch(failed) }

	body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes))
	if err != nil {
		rt.writeError(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	req, err := serve.ParseScenarioRequest(body)
	if err != nil {
		rt.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	_, shocks, quantiles, err := req.Resolve()
	if err != nil {
		rt.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	span.SetAttr("positions", len(req.Portfolio))
	span.SetAttr("scenarios", len(shocks))

	resp, status, err := rt.routeScenarios(r.Context(), span.ID(), trace, fallbackTP, req, shocks, quantiles)
	if err != nil {
		if status == http.StatusTooManyRequests {
			w.Header().Set("Retry-After", "1")
		}
		if status >= 500 {
			observe(true)
			log.Warn("scenario route failed",
				"positions", len(req.Portfolio), "scenarios", len(shocks),
				"status", status, "error", err.Error())
		}
		rt.writeError(w, status, "%v", err)
		return
	}
	observe(false)

	span.SetAttr("evaluations", resp.Evaluations)
	span.SetAttr("joules", resp.ModelledJoules)
	if trace != "" && span.ID() != 0 {
		w.Header().Set("traceparent", telemetry.FormatTraceParent(trace, span.ID()))
	}
	writeJSON(w, http.StatusOK, resp)
	log.Debug("scenario request routed",
		"positions", len(req.Portfolio), "scenarios", len(shocks),
		"evaluations", resp.Evaluations, "joules", resp.ModelledJoules,
		"latency", time.Since(started).Seconds())
}
