package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"binopt/internal/obslog"
	"binopt/internal/option"
	"binopt/internal/serve"
	"binopt/internal/slo"
	"binopt/internal/telemetry"
)

// maxBodyBytes mirrors the node-side request bound.
const maxBodyBytes = 8 << 20

// Node names one fleet member and where to reach it.
type Node struct {
	// Name is the member's ring identity. Placement hashes the name,
	// not the address, so a node that moves hosts keeps its segment.
	Name string
	// BaseURL is the member's serving root, e.g. "http://10.0.0.7:8080".
	BaseURL string
}

// Config parameterises a Router. The zero value of every optional field
// has a sensible default.
type Config struct {
	// Nodes is the initial membership. At least one required.
	Nodes []Node
	// Steps is the lattice depth the member nodes price at; it is baked
	// into the placement keys so routing identity equals cache identity.
	Steps int
	// VNodes is the virtual-node count per member (default 128).
	VNodes int
	// Seed seeds ring placement, so tests replay exact layouts
	// (default 1).
	Seed uint64
	// Hedge, when positive, re-sends a sub-batch to the owner's ring
	// successor if the owner has not answered within this delay; the
	// first response wins. Prices are bit-identical across nodes, so a
	// hedged duplicate is semantically invisible — it only cuts the
	// tail. Zero disables hedging.
	Hedge time.Duration
	// MaxAttempts bounds how many distinct nodes a sub-batch may be
	// tried on before the client sees an error (default 3, clamped to
	// the fleet size).
	MaxAttempts int
	// Heartbeat is the membership health-poll interval (default 250ms;
	// negative disables polling — forward outcomes still feed the
	// breakers).
	Heartbeat time.Duration
	// HeartbeatTimeout bounds one health poll (default 1s).
	HeartbeatTimeout time.Duration
	// Breaker parameterises the per-node circuit breakers; zero fields
	// take the serve.BreakerConfig defaults — the same machinery that
	// guards the in-process shards guards the remote nodes.
	Breaker serve.BreakerConfig
	// Tracer, when set, records route/forward/node-compute/merge spans
	// and enables /debug/trace on the router — which also pulls every
	// member's span ring and serves the merged, clock-aligned fleet
	// trace.
	Tracer *telemetry.Tracer
	// SLO, when set, runs a burn-rate monitor over the router's own
	// request outcomes (served on /debug/slo, folded into /healthz) —
	// the fleet-level view of what clients actually experienced,
	// failovers and hedges included.
	SLO *slo.Options
	// Logger receives structured request and routing logs; nil logs
	// nothing.
	Logger *slog.Logger
	// Transport, when set, overrides every member's HTTP transport
	// (tests inject failing or instrumented transports). When nil each
	// member gets its own pooled transport.
	Transport http.RoundTripper
}

func (c Config) withDefaults() Config {
	if c.Steps <= 0 {
		c.Steps = 1024
	}
	if c.VNodes <= 0 {
		c.VNodes = 128
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.MaxAttempts > len(c.Nodes) {
		c.MaxAttempts = len(c.Nodes)
	}
	if c.Heartbeat == 0 {
		c.Heartbeat = 250 * time.Millisecond
	}
	if c.HeartbeatTimeout <= 0 {
		c.HeartbeatTimeout = time.Second
	}
	return c
}

// member is one node as the router sees it: a connection pool, a
// circuit breaker fed by heartbeats and forward outcomes, and counters.
type member struct {
	name    string
	base    string
	client  *http.Client
	breaker *serve.Breaker

	up       atomic.Bool  // last heartbeat verdict
	forwards atomic.Int64 // sub-batches sent here
	errs     atomic.Int64 // sub-batches that failed here
	hedgeWin atomic.Int64 // hedged duplicates this node won

	// clockOffset is the node's wall clock minus the router's, in
	// nanoseconds: the heartbeat reads the node's healthz now_unix_nano
	// against the poll's RTT midpoint. The fleet trace aggregator
	// subtracts it so spans from skewed machines land on the router's
	// timeline. Zero until the first successful measurement.
	clockOffset atomic.Int64
}

// Router is the fabric front-end: it speaks the node's own /v1/price
// API to clients, places contracts on members via the consistent-hash
// ring, and hides member failures behind hedging and successor
// failover. Construct with NewRouter, serve via Handler, stop with
// Close.
type Router struct {
	cfg     Config
	ring    *Ring
	members map[string]*member
	metrics *routerMetrics
	tracer  *telemetry.Tracer
	fleetTr *fleetTrace
	slomon  *slo.Monitor
	logger  *slog.Logger

	// gen is the router's view of the fleet cache generation, advanced
	// by POST /v1/invalidate at the router.
	gen atomic.Uint64

	// lifetime is cancelled by Close; background work (heartbeats) that
	// cannot inherit a request context derives from it, so Close never
	// waits out a probe timeout.
	lifetime context.Context
	cancel   context.CancelFunc

	stop chan struct{}
	wg   sync.WaitGroup
}

// NewRouter builds a router over the given membership and starts the
// heartbeat loop.
func NewRouter(cfg Config) (*Router, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Nodes) == 0 {
		return nil, fmt.Errorf("cluster: at least one node required")
	}
	rt := &Router{
		cfg:     cfg,
		ring:    NewRing(cfg.Seed, cfg.VNodes),
		members: make(map[string]*member, len(cfg.Nodes)),
		metrics: newRouterMetrics(),
		tracer:  cfg.Tracer,
		logger:  obslog.Or(cfg.Logger),
		stop:    make(chan struct{}),
	}
	//binopt:ignore ctxflow router lifetime root, cancelled in Close
	rt.lifetime, rt.cancel = context.WithCancel(context.Background())
	if cfg.Tracer.Enabled() {
		rt.fleetTr = newFleetTrace(cfg.Tracer.Capacity())
	}
	if cfg.SLO != nil {
		rt.slomon = slo.New(*cfg.SLO)
	}
	for _, n := range cfg.Nodes {
		if n.Name == "" || n.BaseURL == "" {
			return nil, fmt.Errorf("cluster: node needs name and base URL, got %+v", n)
		}
		if _, dup := rt.members[n.Name]; dup {
			return nil, fmt.Errorf("cluster: duplicate node name %q", n.Name)
		}
		transport := cfg.Transport
		if transport == nil {
			transport = &http.Transport{
				MaxIdleConns:        64,
				MaxIdleConnsPerHost: 64,
				IdleConnTimeout:     90 * time.Second,
			}
		}
		m := &member{
			name:    n.Name,
			base:    n.BaseURL,
			client:  &http.Client{Transport: transport},
			breaker: serve.NewBreaker(cfg.Breaker),
		}
		m.up.Store(true) // optimistic until the first heartbeat says otherwise
		rt.members[n.Name] = m
		rt.ring.Add(n.Name)
	}
	if cfg.Heartbeat > 0 {
		rt.wg.Add(1)
		go rt.heartbeatLoop()
	}
	return rt, nil
}

// Close stops the heartbeat loop, cancelling any probe already in
// flight — without the lifetime cancel, Close blocks for up to
// HeartbeatTimeout behind one wedged member. In-flight requests
// complete on their own contexts.
func (rt *Router) Close() {
	rt.cancel()
	close(rt.stop)
	rt.wg.Wait()
}

// Ring exposes the placement ring (read-only use: ownership gauges,
// tests).
func (rt *Router) Ring() *Ring { return rt.ring }

// heartbeatLoop polls every member's /healthz on the configured
// interval. Outcomes feed the member's circuit breaker — the same
// rolling-window state machine the serving pool runs per shard — so a
// node that stops answering is routed around within one breaker window
// even with no traffic in flight.
func (rt *Router) heartbeatLoop() {
	defer rt.wg.Done()
	tick := time.NewTicker(rt.cfg.Heartbeat)
	defer tick.Stop()
	for {
		select {
		case <-rt.stop:
			return
		case <-tick.C:
			rt.pollOnce()
		}
	}
}

// pollOnce health-checks every member concurrently.
func (rt *Router) pollOnce() {
	var wg sync.WaitGroup
	for _, m := range rt.members {
		wg.Add(1)
		go func(m *member) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(rt.lifetime, rt.cfg.HeartbeatTimeout)
			defer cancel()
			req, err := http.NewRequestWithContext(ctx, http.MethodGet, m.base+"/healthz", nil)
			if err != nil {
				return
			}
			t0 := time.Now()
			resp, err := m.client.Do(req)
			if err != nil {
				m.up.Store(false)
				m.breaker.OnFailure()
				return
			}
			var health struct {
				NowUnixNano int64 `json:"now_unix_nano"`
			}
			decErr := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&health)
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if decErr == nil && health.NowUnixNano != 0 {
				// NTP-style midpoint estimate: the node stamped its clock
				// somewhere inside our RTT window; assume the middle.
				// offset = node clock − router clock, subtracted later
				// when merging the node's spans onto our timeline.
				rtt := time.Since(t0)
				m.clockOffset.Store(health.NowUnixNano - t0.Add(rtt/2).UnixNano())
			}
			// Draining (503) nodes are down for placement purposes;
			// degraded (200) nodes still price correctly.
			ok := resp.StatusCode == http.StatusOK
			m.up.Store(ok)
			if ok {
				m.breaker.OnSuccess()
			} else {
				m.breaker.OnFailure()
			}
		}(m)
	}
	wg.Wait()
}

// pick returns the member that should price key given the nodes already
// excluded this request: the first breaker-eligible, up member on the
// key's successor chain. If every non-excluded member looks unhealthy,
// the first non-excluded one is returned anyway — a fully dark fleet
// should still try. Returns nil when every member is excluded.
func (rt *Router) pick(key string, excluded map[string]bool) *member {
	chain := rt.ring.Successors(key, rt.ring.Len())
	var fallback *member
	for _, name := range chain {
		if excluded[name] {
			continue
		}
		m := rt.members[name]
		if fallback == nil {
			fallback = m
		}
		if m.up.Load() && m.breaker.Eligible() {
			return m
		}
	}
	return fallback
}

// backupFor returns the first healthy member on key's successor chain
// other than primary and the excluded set — the hedge target.
func (rt *Router) backupFor(key string, primary *member, excluded map[string]bool) *member {
	for _, name := range rt.ring.Successors(key, rt.ring.Len()) {
		if name == primary.name || excluded[name] {
			continue
		}
		m := rt.members[name]
		if m.up.Load() && m.breaker.Eligible() {
			return m
		}
	}
	return nil
}

// fwdResult is one sub-batch forward outcome.
type fwdResult struct {
	resp    serve.PriceResponse
	phases  serve.PhaseBreakdown
	m       *member
	status  int // HTTP status, 0 on transport error
	hedged  bool
	elapsed time.Duration
	err     error
}

// retryable reports whether failover to another node can help: transport
// errors, 5xx, and 429 saturation are worth a successor; other 4xx are
// the request's own fault and would fail identically everywhere.
func (r fwdResult) retryable() bool {
	return r.status == 0 || r.status >= 500 || r.status == http.StatusTooManyRequests
}

// forwardOnce posts one sub-batch to one member and decodes the reply.
// traceparent, when non-empty, rides the request so the node parents
// its spans under the routed request's distributed trace. Outcomes feed
// the member's breaker: transport errors and 5xx are failures, 200 is a
// success, 429 is neither (saturation is load, not ill-health).
func (rt *Router) forwardOnce(ctx context.Context, m *member, body []byte, want int, traceparent string) fwdResult {
	t0 := time.Now()
	m.forwards.Add(1)
	out := fwdResult{m: m}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, m.base+"/v1/price", bytes.NewReader(body))
	if err != nil {
		out.err = err
		return out
	}
	req.Header.Set("Content-Type", "application/json")
	if traceparent != "" {
		req.Header.Set("traceparent", traceparent)
	}
	resp, err := m.client.Do(req)
	out.elapsed = time.Since(t0)
	if err != nil {
		if ctx.Err() != nil {
			// Our own cancellation (a hedge rival won, or the client
			// left) — not node ill-health; the breaker stays unfed.
			out.err = ctx.Err()
			return out
		}
		m.errs.Add(1)
		m.breaker.OnFailure()
		out.err = fmt.Errorf("node %s: %w", m.name, err)
		return out
	}
	defer resp.Body.Close()
	out.status = resp.StatusCode
	if resp.StatusCode != http.StatusOK {
		m.errs.Add(1)
		if resp.StatusCode != http.StatusTooManyRequests {
			m.breaker.OnFailure()
		}
		msg, _ := io.ReadAll(io.LimitReader(resp.Body, 512))
		out.err = fmt.Errorf("node %s: HTTP %d: %s", m.name, resp.StatusCode, bytes.TrimSpace(msg))
		return out
	}
	if err := json.NewDecoder(resp.Body).Decode(&out.resp); err != nil {
		m.errs.Add(1)
		m.breaker.OnFailure()
		out.err = fmt.Errorf("node %s: decoding response: %w", m.name, err)
		return out
	}
	if len(out.resp.Results) != want {
		m.errs.Add(1)
		m.breaker.OnFailure()
		out.err = fmt.Errorf("node %s: %d results for %d contracts", m.name, len(out.resp.Results), want)
		return out
	}
	out.elapsed = time.Since(t0)
	if st := resp.Header.Get("Server-Timing"); st != "" {
		if bd, err := serve.ParseServerTiming(st); err == nil {
			out.phases = bd
		}
	}
	m.breaker.OnSuccess()
	return out
}

// forwardGroup forwards one sub-batch with optional hedging: the
// primary gets the request immediately; if it has neither answered nor
// failed within the hedge delay, the backup gets a duplicate and the
// first success wins. A primary that fails fast promotes the backup
// immediately — no point waiting out a delay the failure already paid.
func (rt *Router) forwardGroup(ctx context.Context, primary, backup *member, body []byte, want int, traceparent string) fwdResult {
	if rt.cfg.Hedge <= 0 || backup == nil {
		return rt.forwardOnce(ctx, primary, body, want, traceparent)
	}
	cctx, cancel := context.WithCancel(ctx)
	defer cancel() // the loser's request is torn down with the call
	ch := make(chan fwdResult, 2)
	launch := func(m *member, hedged bool) {
		go func() {
			r := rt.forwardOnce(cctx, m, body, want, traceparent)
			r.hedged = hedged
			ch <- r
		}()
	}
	launch(primary, false)
	timer := time.NewTimer(rt.cfg.Hedge)
	defer timer.Stop()
	launched, done := 1, 0
	var lastErr fwdResult
	for {
		select {
		case r := <-ch:
			done++
			if r.err == nil {
				if r.hedged {
					rt.metrics.hedgeWins.Add(1)
					r.m.hedgeWin.Add(1)
				}
				return r
			}
			lastErr = r
			if launched < 2 {
				// Fast failure: promote the hedge now.
				rt.metrics.hedges.Add(1)
				launch(backup, true)
				launched++
			} else if done == launched {
				return lastErr
			}
		case <-timer.C:
			if launched < 2 {
				rt.metrics.hedges.Add(1)
				launch(backup, true)
				launched++
			}
		}
	}
}

// routeBatch prices one client batch across the fleet: contracts are
// grouped by ring owner, groups forward concurrently (with hedging),
// failed groups re-place onto successors with the failed node excluded,
// and results merge back in input order. Prices are bit-identical on
// every node, so failover and hedging never change an answer — only
// who computed it.
//
// trace is the request's distributed trace ID ("" untraced); each
// forward injects a traceparent naming its own pre-allocated forward
// span as the parent, so node spans nest under the exact forward that
// carried them. fallbackTP is the header to forward verbatim when the
// router has no span IDs of its own (tracer disabled, pure proxy).
func (rt *Router) routeBatch(ctx context.Context, reqID uint64, trace, fallbackTP string, contracts []serve.Contract) ([]serve.Result, serve.PhaseBreakdown, int, error) {
	var phases serve.PhaseBreakdown
	opts := make([]option.Option, len(contracts))
	keys := make([]string, len(contracts))
	for i, c := range contracts {
		o, err := c.ToOption()
		if err != nil {
			return nil, phases, http.StatusBadRequest, fmt.Errorf("contract %d: %v", i, err)
		}
		opts[i] = o
		keys[i] = serve.KeyFor(o, rt.cfg.Steps).String()
	}

	results := make([]serve.Result, len(contracts))
	remaining := make([]int, len(contracts))
	for i := range remaining {
		remaining[i] = i
	}
	excluded := make(map[string]bool)
	var lastErr error
	lastStatus := http.StatusBadGateway

	for attempt := 0; attempt < rt.cfg.MaxAttempts && len(remaining) > 0; attempt++ {
		if attempt > 0 {
			rt.metrics.failovers.Add(int64(len(remaining)))
		}
		// Place the remaining contracts. Backups are chosen here, while
		// placement is still single-threaded — the excluded set mutates
		// under the forward goroutines' mutex and must not be read
		// concurrently.
		groups := make(map[*member][]int)
		for _, i := range remaining {
			m := rt.pick(keys[i], excluded)
			if m == nil {
				return nil, phases, http.StatusBadGateway,
					fmt.Errorf("no nodes left for contract %d after %d exclusions", i, len(excluded))
			}
			groups[m] = append(groups[m], i)
		}
		backups := make(map[*member]*member, len(groups))
		for m, idx := range groups {
			backups[m] = rt.backupFor(keys[idx[0]], m, excluded)
		}

		// Forward every group concurrently.
		var (
			mu     sync.Mutex
			wg     sync.WaitGroup
			failed []int
		)
		for m, idx := range groups {
			wg.Add(1)
			go func(m *member, idx []int, backup *member) {
				defer wg.Done()
				sub := serve.PriceRequest{Contracts: make([]serve.Contract, len(idx))}
				for j, i := range idx {
					sub.Contracts[j] = contracts[i]
				}
				body, err := json.Marshal(sub)
				if err != nil {
					mu.Lock()
					failed = append(failed, idx...)
					lastErr = err
					mu.Unlock()
					return
				}
				var fwdID uint64
				tp := fallbackTP
				if trace != "" {
					if fwdID = rt.tracer.NextID(); fwdID != 0 {
						tp = telemetry.FormatTraceParent(trace, fwdID)
					}
				}
				t0 := time.Now()
				r := rt.forwardGroup(ctx, m, backup, body, len(idx), tp)
				rt.emitForwardSpans(reqID, trace, fwdID, m, r, t0, len(idx), attempt)
				mu.Lock()
				defer mu.Unlock()
				if r.err != nil {
					lastErr = r.err
					if r.status == http.StatusTooManyRequests {
						lastStatus = http.StatusTooManyRequests
					}
					excluded[r.m.name] = true
					if !r.retryable() {
						// Permanent: surface the node's verdict as ours.
						lastStatus = r.status
					}
					failed = append(failed, idx...)
					return
				}
				for j, i := range idx {
					results[i] = r.resp.Results[j]
				}
				phases.Add(r.phases)
			}(m, idx, backups[m])
		}
		wg.Wait()
		remaining = failed
	}

	if len(remaining) > 0 {
		rt.metrics.routeErrors.Add(1)
		if lastErr == nil {
			lastErr = fmt.Errorf("cluster: %d contracts unplaced", len(remaining))
		}
		return nil, phases, lastStatus, lastErr
	}
	return results, phases, http.StatusOK, nil
}

// emitForwardSpans records one group forward and, when the node
// reported phase timing, a node-compute span re-anchored on the router
// clock — so a Chrome trace of the router shows
// route → forward → node-compute → merge. The forward span reuses the
// pre-allocated ID the traceparent named, so the node's spans really do
// hang off the span that carried them; the fleet aggregator then pulls
// the node's own rings in under the same trace ID.
func (rt *Router) emitForwardSpans(reqID uint64, trace string, fwdID uint64, m *member, r fwdResult, start time.Time, n, attempt int) {
	if !rt.tracer.Enabled() {
		return
	}
	name := "forward"
	if r.err != nil {
		name = "forward-error"
	}
	rt.tracer.Emit(telemetry.Span{
		ID: fwdID, Req: reqID, Trace: trace,
		Name: name, Proc: "router", Thread: "node " + m.name,
		Start: start, Dur: r.elapsed, Clock: telemetry.Wall,
		Attrs: map[string]any{
			"node":      m.name,
			"contracts": n,
			"attempt":   attempt + 1,
			"hedged":    r.hedged,
			"status":    r.status,
		},
	})
	if r.err == nil && r.phases.Compute > 0 {
		rt.tracer.Emit(telemetry.Span{
			Req: reqID, Trace: trace,
			Name: "node-compute", Proc: "router", Thread: "node " + m.name,
			Start: start.Add(r.elapsed - r.phases.Compute - r.phases.Readback),
			Dur:   r.phases.Compute, Clock: telemetry.Wall,
			Attrs: map[string]any{"node": m.name, "priced": r.phases.Priced},
		})
	}
}

// Handler returns the router's HTTP API — a superset of the node API,
// so clients (and loadgen) cannot tell a router from a node:
//
//	POST /v1/price       route a batch across the fleet
//	POST /v1/scenarios   shard a revaluation's scenario axis across
//	                     the fleet and merge in order
//	POST /v1/invalidate  bump the fleet cache generation (broadcast)
//	GET  /healthz        fleet membership, ring and breaker view
//	GET  /metrics        fleet + per-node + router metrics
//	GET  /debug/slo      router burn-rate monitor state (JSON)
//	GET  /debug/trace    merged fleet trace: router spans plus every
//	                     member's span ring, clock-aligned, as Chrome
//	                     trace JSON
//	GET  /debug/spans    the router's own incremental span export
//	                     (?cursor=N), for a router-of-routers
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/price", rt.handlePrice)
	mux.HandleFunc("/v1/scenarios", rt.handleScenarios)
	mux.HandleFunc("/v1/invalidate", rt.handleInvalidate)
	mux.HandleFunc("/healthz", rt.handleHealthz)
	mux.HandleFunc("/metrics", rt.handleMetrics)
	mux.HandleFunc("/debug/slo", rt.handleSLO)
	if rt.tracer.Enabled() {
		mux.HandleFunc("/debug/trace", rt.handleTrace)
		mux.HandleFunc("/debug/spans", rt.handleSpans)
	}
	return mux
}

// handleSLO serves the router's burn-rate monitor state; a router with
// no monitor serves the healthy zero report.
func (rt *Router) handleSLO(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, rt.slomon.Report())
}

// handleSpans serves the router's own span ring in incremental wire
// form, the same page the member nodes serve — so a router can itself
// be a member of a larger fabric.
func (rt *Router) handleSpans(w http.ResponseWriter, r *http.Request) {
	var cursor uint64
	if q := r.URL.Query().Get("cursor"); q != "" {
		var err error
		if cursor, err = strconv.ParseUint(q, 10, 64); err != nil {
			rt.writeError(w, http.StatusBadRequest, "bad cursor %q: %v", q, err)
			return
		}
	}
	writeJSON(w, http.StatusOK, rt.tracer.ExportSince(cursor, "router"))
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func (rt *Router) writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, map[string]string{"error": fmt.Sprintf(format, args...)})
}

func (rt *Router) handlePrice(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		rt.writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	rt.metrics.requests.Add(1)
	started := time.Now()

	// Distributed trace identity, mirroring the node handler: adopt an
	// upstream traceparent when one arrives, mint otherwise. The
	// original header is kept as the pure-proxy fallback — a router
	// without its own tracer still propagates the caller's identity
	// verbatim to the nodes.
	trace, parent, fromRemote := telemetry.ParseTraceParent(r.Header.Get("traceparent"))
	if !fromRemote && rt.tracer.Enabled() {
		trace = telemetry.NewTraceID()
	}
	fallbackTP := ""
	if fromRemote {
		fallbackTP = r.Header.Get("traceparent")
	}

	span := rt.tracer.Begin("POST /v1/price", "router", "requests")
	span.SetReq(span.ID())
	span.SetTrace(trace)
	if fromRemote {
		span.SetAttr("parent_span", fmt.Sprintf("%016x", parent))
	}
	defer span.End()
	log := obslog.WithTrace(rt.logger, trace, span.ID())

	// The SLO monitor books what clients experienced at the fleet edge:
	// routed successes (hedges and failovers already absorbed) and the
	// failures that survived every attempt. Client faults (4xx) and
	// backpressure (429) spend no error budget.
	observe := func(failed bool) { rt.slomon.Observe(time.Since(started), failed) }

	body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes))
	if err != nil {
		rt.writeError(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	req, err := serve.ParsePriceRequest(body)
	if err != nil {
		rt.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	span.SetAttr("contracts", len(req.Contracts))

	results, phases, status, err := rt.routeBatch(r.Context(), span.ID(), trace, fallbackTP, req.Contracts)
	if err != nil {
		if status == http.StatusTooManyRequests {
			w.Header().Set("Retry-After", "1")
		}
		if status >= 500 {
			observe(true)
			log.Warn("route failed", "contracts", len(req.Contracts), "status", status, "error", err.Error())
		}
		rt.writeError(w, status, "%v", err)
		return
	}
	observe(false)

	mergeStart := time.Now()
	rt.metrics.options.Add(int64(len(results)))
	span.SetAttr("joules", phases.Joules)
	if trace != "" && span.ID() != 0 {
		w.Header().Set("traceparent", telemetry.FormatTraceParent(trace, span.ID()))
	}
	w.Header().Set("Server-Timing", phases.ServerTiming())
	writeJSON(w, http.StatusOK, serve.PriceResponse{Steps: rt.cfg.Steps, Results: results})
	if rt.tracer.Enabled() {
		rt.tracer.Emit(telemetry.Span{
			Req: span.ID(), Trace: trace, Name: "merge", Proc: "router", Thread: "requests",
			Start: mergeStart, Dur: time.Since(mergeStart), Clock: telemetry.Wall,
			Attrs: map[string]any{"contracts": len(results)},
		})
	}
	log.Debug("batch routed",
		"contracts", len(req.Contracts), "priced", phases.Priced,
		"joules", phases.Joules, "latency", time.Since(started).Seconds())
}

// handleInvalidate bumps the fleet cache generation and broadcasts the
// bump to every member concurrently. Member nodes running under a
// gossiper re-forward it, so even members the router could not reach
// directly converge via their peers.
func (rt *Router) handleInvalidate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		rt.writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req serve.InvalidateRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<16)).Decode(&req); err != nil && err != io.EOF {
		rt.writeError(w, http.StatusBadRequest, "bad JSON: %v", err)
		return
	}
	gen := req.Generation
	for {
		cur := rt.gen.Load()
		if gen == 0 {
			gen = cur + 1
		}
		if gen <= cur {
			writeJSON(w, http.StatusOK, serve.InvalidateResponse{Applied: false, Generation: cur})
			return
		}
		if rt.gen.CompareAndSwap(cur, gen) {
			break
		}
	}
	rt.metrics.invalidations.Add(1)
	origin := req.Origin
	if origin == "" {
		origin = "router"
	}
	reached := rt.broadcastInvalidate(r.Context(), gen, origin)
	writeJSON(w, http.StatusOK, map[string]any{
		"applied": true, "generation": gen, "nodes_reached": reached,
	})
}

// broadcastInvalidate pushes a generation bump to every member,
// returning how many acknowledged.
func (rt *Router) broadcastInvalidate(ctx context.Context, gen uint64, origin string) int {
	body, _ := json.Marshal(serve.InvalidateRequest{Generation: gen, Origin: origin})
	var wg sync.WaitGroup
	var reached atomic.Int64
	for _, m := range rt.members {
		wg.Add(1)
		go func(m *member) {
			defer wg.Done()
			cctx, cancel := context.WithTimeout(ctx, 2*time.Second)
			defer cancel()
			req, err := http.NewRequestWithContext(cctx, http.MethodPost, m.base+"/v1/invalidate", bytes.NewReader(body))
			if err != nil {
				return
			}
			req.Header.Set("Content-Type", "application/json")
			resp, err := m.client.Do(req)
			if err != nil {
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				reached.Add(1)
			}
		}(m)
	}
	wg.Wait()
	return int(reached.Load())
}

func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	type nodeHealth struct {
		Name         string  `json:"name"`
		BaseURL      string  `json:"base_url"`
		Up           bool    `json:"up"`
		Breaker      string  `json:"breaker"`
		BreakerOpens int64   `json:"breaker_opens,omitempty"`
		Forwards     int64   `json:"forwards"`
		Errors       int64   `json:"errors,omitempty"`
		Ownership    float64 `json:"ring_ownership"`
	}
	own := rt.ring.Ownership()
	status := "ok"
	upCount := 0
	nodes := make([]nodeHealth, 0, len(rt.members))
	for _, name := range rt.ring.Nodes() {
		m := rt.members[name]
		st, _ := m.breaker.State()
		up := m.up.Load()
		if up {
			upCount++
		} else if status == "ok" {
			status = "degraded"
		}
		nodes = append(nodes, nodeHealth{
			Name: name, BaseURL: m.base, Up: up,
			Breaker: st, BreakerOpens: m.breaker.Opens(),
			Forwards: m.forwards.Load(), Errors: m.errs.Load(),
			Ownership: own[name],
		})
	}
	sloReport := rt.slomon.Report()
	if !sloReport.Healthy && status == "ok" {
		// Burning is degradation, not death: the code stays 200 so
		// upstream probes don't pull a router that is still answering.
		status = "burning"
	}
	code := http.StatusOK
	if upCount == 0 {
		status = "down"
		code = http.StatusServiceUnavailable
	}
	out := map[string]any{
		"status":           status,
		"steps":            rt.cfg.Steps,
		"nodes":            nodes,
		"nodes_up":         upCount,
		"cache_generation": rt.gen.Load(),
		// now_unix_nano mirrors the node healthz: a router fronted by
		// another router gets its clock offset measured the same way.
		"now_unix_nano": time.Now().UnixNano(),
	}
	if rt.slomon.Enabled() {
		out["slo"] = sloReport
	}
	writeJSON(w, code, out)
}

func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	io.WriteString(w, rt.renderMetrics(r.Context()))
}

// handleTrace serves the merged fleet trace: the aggregator pulls every
// member's span ring incrementally (each node only ever re-sends what
// the router has not seen), aligns wall timestamps using the
// heartbeat-measured clock offsets, prefixes each node's process lanes
// with its name, and renders everything — router spans included — as
// one Chrome trace. ?reset=1 clears both the router ring and the
// collected node spans after the snapshot; member cursors survive, so
// no node span is ever double-pulled.
func (rt *Router) handleTrace(w http.ResponseWriter, r *http.Request) {
	rt.fleetTr.collect(r.Context(), rt)
	spans := append(rt.tracer.Snapshot(), rt.fleetTr.snapshot()...)
	out, err := telemetry.Chrome(spans)
	if err != nil {
		rt.writeError(w, http.StatusInternalServerError, "rendering trace: %v", err)
		return
	}
	if r.URL.Query().Get("reset") == "1" {
		rt.tracer.Reset()
		rt.fleetTr.reset()
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(out)
}

// Steps reports the lattice depth the fleet prices at.
func (rt *Router) Steps() int { return rt.cfg.Steps }

// NodesUp reports how many members passed their last heartbeat.
func (rt *Router) NodesUp() int {
	n := 0
	for _, m := range rt.members {
		if m.up.Load() {
			n++
		}
	}
	return n
}
