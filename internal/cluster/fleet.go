package cluster

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"sync"

	"binopt/internal/serve"
	"binopt/internal/telemetry"
)

// LocalFleet boots M member nodes in one process, each a full
// serve.Server behind its own TCP listener with gossip wiring to its
// peers. It exists for two callers: cmd/pricefleet's in-process mode
// (one binary, a whole modelled rack) and the cluster tests, which
// need real sockets — and the ability to yank one — to prove the
// failover story rather than assert it.
type LocalFleet struct {
	mu    sync.Mutex
	nodes []*fleetNode
}

type fleetNode struct {
	name   string
	server *serve.Server
	hs     *http.Server
	ln     net.Listener
	url    string
	killed bool
	done   chan struct{} // closed when the HTTP serve loop exits
}

// NewLocalFleet starts n member nodes, each configured from cfg (the
// per-node serve config; zero-value fields take the serve defaults).
// Node i is named "node-i" and listens on a kernel-assigned localhost
// port. Gossip peers are fully meshed.
//
// cfg is a per-node template, not shared state: each node gets its own
// Node name, and when cfg.Tracer is set it serves only as a capacity
// template — every node gets a fresh ring of the same size, because a
// shared ring would interleave the fleet's spans into one process lane
// and defeat the per-node cursors the trace aggregator pulls on.
func NewLocalFleet(n int, cfg serve.Config) (*LocalFleet, error) {
	if n <= 0 {
		return nil, fmt.Errorf("cluster: fleet size must be positive, got %d", n)
	}
	f := &LocalFleet{}
	// Bind every listener first: gossip wiring needs all peer URLs
	// before any node serves.
	for i := 0; i < n; i++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			f.close()
			return nil, fmt.Errorf("cluster: node %d listen: %w", i, err)
		}
		nodeCfg := cfg
		nodeCfg.Node = fmt.Sprintf("node-%d", i)
		if cfg.Tracer.Enabled() {
			nodeCfg.Tracer = telemetry.New(cfg.Tracer.Capacity())
		}
		s, err := serve.New(nodeCfg)
		if err != nil {
			ln.Close()
			f.close()
			return nil, fmt.Errorf("cluster: node %d: %w", i, err)
		}
		f.nodes = append(f.nodes, &fleetNode{
			name:   nodeCfg.Node,
			server: s,
			ln:     ln,
			url:    "http://" + ln.Addr().String(),
			done:   make(chan struct{}),
		})
	}
	for i, nd := range f.nodes {
		var peers []string
		for j, other := range f.nodes {
			if j != i {
				peers = append(peers, other.url)
			}
		}
		g := &Gossiper{Origin: nd.name, Peers: peers}
		nd.hs = &http.Server{Handler: NodeHandler(nd.server, g)}
		go func(nd *fleetNode) {
			defer close(nd.done)
			nd.hs.Serve(nd.ln) // returns on Kill/Close
		}(nd)
	}
	return f, nil
}

// Len reports the fleet size, killed nodes included.
func (f *LocalFleet) Len() int { return len(f.nodes) }

// Nodes returns the membership in router form.
func (f *LocalFleet) Nodes() []Node {
	out := make([]Node, len(f.nodes))
	for i, nd := range f.nodes {
		out[i] = Node{Name: nd.name, BaseURL: nd.url}
	}
	return out
}

// URL returns node i's base URL.
func (f *LocalFleet) URL(i int) string { return f.nodes[i].url }

// Server returns node i's serve.Server (tests reach into cache
// generations and metrics through it).
func (f *LocalFleet) Server(i int) *serve.Server { return f.nodes[i].server }

// Kill abruptly terminates node i's HTTP service: the listener closes
// and every open connection is torn down mid-flight, the closest a
// test gets to pulling a board's power. The serve.Server underneath is
// not drained — a real crash would not drain either. Idempotent.
func (f *LocalFleet) Kill(i int) {
	f.mu.Lock()
	nd := f.nodes[i]
	if nd.killed {
		f.mu.Unlock()
		return
	}
	nd.killed = true
	f.mu.Unlock()
	nd.hs.Close() // closes the listener and all active connections
	<-nd.done
}

// Killed reports whether node i has been killed.
func (f *LocalFleet) Killed(i int) bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.nodes[i].killed
}

// Close shuts the whole fleet down: HTTP abruptly, then the pricing
// servers gracefully so in-flight lattice work lands.
func (f *LocalFleet) Close(ctx context.Context) error {
	var firstErr error
	for i := range f.nodes {
		f.Kill(i)
	}
	for _, nd := range f.nodes {
		if err := nd.server.Close(ctx); err != nil && firstErr == nil {
			firstErr = err
		}
	}
	return firstErr
}

// close tears down partially-constructed fleets during NewLocalFleet
// error paths, before any HTTP server exists.
func (f *LocalFleet) close() {
	for _, nd := range f.nodes {
		nd.ln.Close()
		//binopt:ignore ctxflow constructor error path: no caller ctx exists yet, nothing is serving
		nd.server.Close(context.Background())
	}
}
