//go:build race

package cluster

// raceEnabled reports whether this binary carries race-detector
// instrumentation, whose overhead makes wall-clock scaling assertions
// meaningless.
const raceEnabled = true
