package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"binopt/internal/lattice"
	"binopt/internal/option"
	"binopt/internal/serve"
	"binopt/internal/workload"
)

// newTestFleet boots an n-node local fleet plus a router over it, both
// torn down with the test.
func newTestFleet(t *testing.T, n int, nodeCfg serve.Config, rcfg Config) (*LocalFleet, *Router, *httptest.Server) {
	t.Helper()
	f, err := NewLocalFleet(n, nodeCfg)
	if err != nil {
		t.Fatalf("NewLocalFleet(%d): %v", n, err)
	}
	rcfg.Nodes = f.Nodes()
	rt, err := NewRouter(rcfg)
	if err != nil {
		t.Fatalf("NewRouter: %v", err)
	}
	hs := httptest.NewServer(rt.Handler())
	t.Cleanup(func() {
		hs.Close()
		rt.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		f.Close(ctx)
	})
	return f, rt, hs
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	out.ReadFrom(resp.Body)
	return resp, out.Bytes()
}

func toContracts(opts []option.Option) []serve.Contract {
	out := make([]serve.Contract, len(opts))
	for i, o := range opts {
		out[i] = serve.FromOption(o)
	}
	return out
}

// TestFleetBitIdentical is the fabric's foundational claim: the paper's
// full 2000-put chain priced through a 4-node fleet equals the direct
// reference-lattice pricing bit for bit. Distribution — hashing,
// sub-batching, per-node caches, merge order — must be numerically
// invisible, which is also what makes failover and hedging legal.
func TestFleetBitIdentical(t *testing.T) {
	const steps = 128
	chain, err := workload.Chain(workload.DefaultVolCurveSpec(7))
	if err != nil {
		t.Fatalf("chain: %v", err)
	}
	eng, err := lattice.NewEngine(steps)
	if err != nil {
		t.Fatalf("engine: %v", err)
	}
	want, err := eng.PriceBatch(chain, 0)
	if err != nil {
		t.Fatalf("reference batch: %v", err)
	}

	_, rt, hs := newTestFleet(t, 4, serve.Config{Steps: steps, CacheSize: 4096}, Config{Steps: steps})

	got := make([]float64, 0, len(chain))
	const reqBatch = 250
	for at := 0; at < len(chain); at += reqBatch {
		end := at + reqBatch
		if end > len(chain) {
			end = len(chain)
		}
		resp, body := postJSON(t, hs.URL+"/v1/price",
			serve.PriceRequest{Contracts: toContracts(chain[at:end])})
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("batch [%d:%d]: HTTP %d: %s", at, end, resp.StatusCode, body)
		}
		var pr serve.PriceResponse
		if err := json.Unmarshal(body, &pr); err != nil {
			t.Fatalf("batch [%d:%d]: %v", at, end, err)
		}
		if pr.Steps != steps {
			t.Fatalf("steps = %d, want %d", pr.Steps, steps)
		}
		for _, r := range pr.Results {
			got = append(got, r.Price)
		}
	}
	if len(got) != len(want) {
		t.Fatalf("priced %d of %d options", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("option %d: fleet price %x, reference %x", i, got[i], want[i])
		}
	}

	// Every node must have taken part — the ring actually spread the
	// chain, it did not degenerate to one hot node.
	for _, n := range rt.Ring().Nodes() {
		if rt.members[n].forwards.Load() == 0 {
			t.Errorf("node %s received no forwards", n)
		}
	}
}

// sleepBackend builds a one-worker backend whose pricing takes a fixed
// wall-time per option and no meaningful CPU. Sleeping nodes do not
// contend for cores, so node-level parallelism shows through even
// though all fleet nodes share this process — the test machine stands
// in for the rack, and the measured speedup is bounded by ring balance
// alone, not by how many cores CI happens to have.
func sleepBackend(perOption time.Duration) []serve.BackendConfig {
	return []serve.BackendConfig{{
		Name: "simulated-board",
		Kind: "fpga",
		PriceFunc: func(o option.Option) (float64, error) {
			time.Sleep(perOption)
			return o.Strike - o.Spot, nil // placeholder value, never asserted
		},
	}}
}

// TestFleetScaling holds the near-linear scaling claim: the same chain,
// cold caches, priced through 1-, 2- and 4-node fleets of identical
// fixed-rate nodes must speed up by >= 1.6x at 2 nodes and >= 3x at 4.
// The ceiling on the speedup is ring balance — the slowest node is the
// one the balance test bounds.
func TestFleetScaling(t *testing.T) {
	if testing.Short() {
		t.Skip("scaling measurement in -short mode")
	}
	if raceEnabled {
		t.Skip("race-detector overhead drowns the wall-clock measurement; the routing path itself is race-covered by the chaos and bit-identical tests")
	}
	const steps = 64
	const perOption = 400 * time.Microsecond
	spec := workload.DefaultVolCurveSpec(11)
	spec.N = 800
	chain, err := workload.Chain(spec)
	if err != nil {
		t.Fatalf("chain: %v", err)
	}
	contracts := toContracts(chain)

	elapsed := make(map[int]time.Duration)
	for _, n := range []int{1, 2, 4} {
		nodeCfg := serve.Config{
			Steps:     steps,
			CacheSize: -1, // cold path only: timing must measure pricing
			Backends:  sleepBackend(perOption),
		}
		f, err := NewLocalFleet(n, nodeCfg)
		if err != nil {
			t.Fatalf("fleet(%d): %v", n, err)
		}
		rt, err := NewRouter(Config{Nodes: f.Nodes(), Steps: steps})
		if err != nil {
			t.Fatalf("router(%d): %v", n, err)
		}
		hs := httptest.NewServer(rt.Handler())

		start := time.Now()
		resp, body := postJSON(t, hs.URL+"/v1/price", serve.PriceRequest{Contracts: contracts})
		elapsed[n] = time.Since(start)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("fleet(%d): HTTP %d: %s", n, resp.StatusCode, body)
		}
		var pr serve.PriceResponse
		if err := json.Unmarshal(body, &pr); err != nil {
			t.Fatalf("fleet(%d): %v", n, err)
		}
		if len(pr.Results) != len(contracts) {
			t.Fatalf("fleet(%d): %d results for %d contracts", n, len(pr.Results), len(contracts))
		}

		hs.Close()
		rt.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		f.Close(ctx)
		cancel()
	}

	speedup := func(n int) float64 { return float64(elapsed[1]) / float64(elapsed[n]) }
	t.Logf("elapsed: 1 node %v, 2 nodes %v (%.2fx), 4 nodes %v (%.2fx)",
		elapsed[1], elapsed[2], speedup(2), elapsed[4], speedup(4))
	if s := speedup(2); s < 1.6 {
		t.Errorf("2-node speedup %.2fx, want >= 1.6x", s)
	}
	if s := speedup(4); s < 3.0 {
		t.Errorf("4-node speedup %.2fx, want >= 3.0x", s)
	}
}

// TestFleetChaosKillNode is the chaos acceptance test: with clients
// hammering a 3-node fleet, one node is killed mid-run — listener and
// every open connection torn down, no drain — and not a single client
// request may fail or return a wrong price. Failover re-places the dead
// node's ring segment onto its successors inside the request.
func TestFleetChaosKillNode(t *testing.T) {
	const steps = 64
	spec := workload.DefaultVolCurveSpec(13)
	spec.N = 200
	chain, err := workload.Chain(spec)
	if err != nil {
		t.Fatalf("chain: %v", err)
	}
	eng, err := lattice.NewEngine(steps)
	if err != nil {
		t.Fatalf("engine: %v", err)
	}
	want, err := eng.PriceBatch(chain, 0)
	if err != nil {
		t.Fatalf("reference batch: %v", err)
	}
	contracts := toContracts(chain)

	f, _, hs := newTestFleet(t, 3,
		serve.Config{Steps: steps, CacheSize: 4096},
		Config{
			Steps:       steps,
			MaxAttempts: 3,
			Heartbeat:   25 * time.Millisecond,
			Hedge:       200 * time.Millisecond,
		})

	const (
		clients  = 4
		reqBatch = 20
		duration = 900 * time.Millisecond
	)
	var failures atomic.Int64
	var requests atomic.Int64
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			client := &http.Client{}
			for at := c * reqBatch; ; at = (at + reqBatch) % (len(contracts) - reqBatch) {
				select {
				case <-stop:
					return
				default:
				}
				body, _ := json.Marshal(serve.PriceRequest{Contracts: contracts[at : at+reqBatch]})
				resp, err := client.Post(hs.URL+"/v1/price", "application/json", bytes.NewReader(body))
				requests.Add(1)
				if err != nil {
					failures.Add(1)
					t.Errorf("client %d: %v", c, err)
					return
				}
				raw, _ := io.ReadAll(resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					failures.Add(1)
					t.Errorf("client %d: HTTP %d: %s", c, resp.StatusCode, raw)
					return
				}
				var pr serve.PriceResponse
				if err := json.Unmarshal(raw, &pr); err != nil {
					failures.Add(1)
					t.Errorf("client %d: %v", c, err)
					return
				}
				for j, r := range pr.Results {
					if r.Price != want[at+j] {
						failures.Add(1)
						t.Errorf("client %d: option %d: price %x, want %x", c, at+j, r.Price, want[at+j])
						return
					}
				}
			}
		}(c)
	}

	// Let traffic establish, then pull the plug on node 1.
	time.Sleep(duration / 3)
	f.Kill(1)
	time.Sleep(2 * duration / 3)
	close(stop)
	wg.Wait()

	if n := failures.Load(); n != 0 {
		t.Fatalf("%d client-visible failures during node kill (of %d requests)", n, requests.Load())
	}
	if requests.Load() < 10 {
		t.Fatalf("only %d requests issued; chaos window too quiet to mean anything", requests.Load())
	}
	t.Logf("%d requests, 0 failures across the kill", requests.Load())
}

// TestFleetMetricsAggregation: the router /metrics must carry the fleet
// roll-up — node count, summed throughput, fleet joules per option, and
// per-node ring-ownership gauges.
func TestFleetMetricsAggregation(t *testing.T) {
	const steps = 64
	_, _, hs := newTestFleet(t, 2, serve.Config{Steps: steps}, Config{Steps: steps})

	spec := workload.DefaultVolCurveSpec(17)
	spec.N = 50
	chain, err := workload.Chain(spec)
	if err != nil {
		t.Fatalf("chain: %v", err)
	}
	resp, body := postJSON(t, hs.URL+"/v1/price", serve.PriceRequest{Contracts: toContracts(chain)})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("price: HTTP %d: %s", resp.StatusCode, body)
	}

	mresp, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer mresp.Body.Close()
	raw, _ := io.ReadAll(mresp.Body)
	text := string(raw)
	for _, want := range []string{
		"binopt_fleet_nodes 2\n",
		"binopt_fleet_nodes_scraped 2\n",
		"binopt_fleet_options_per_sec ",
		"binopt_fleet_joules_per_option ",
		"binopt_fleet_modelled_joules_total ",
		"binopt_router_requests_total 1\n",
		"binopt_router_options_total 50\n",
		fmt.Sprintf("binopt_ring_ownership{node=%q} ", "node-0"),
		fmt.Sprintf("binopt_node_up{node=%q} 1\n", "node-1"),
		"binopt_fleet_cache_converged 1\n",
	} {
		if !bytes.Contains(raw, []byte(want)) {
			t.Errorf("metrics missing %q\n%s", want, text)
		}
	}
	// The fleet priced real options on modelled hardware, so the energy
	// roll-up must be live, not zero.
	if bytes.Contains(raw, []byte("binopt_fleet_joules_per_option 0\n")) {
		t.Errorf("fleet joules per option is zero after pricing:\n%s", text)
	}
}

// TestFleetHealthz: the router health view reflects membership and
// carries ring ownership; killing a node degrades (not downs) the
// fleet within a heartbeat.
func TestFleetHealthz(t *testing.T) {
	const steps = 64
	f, _, hs := newTestFleet(t, 3, serve.Config{Steps: steps},
		Config{Steps: steps, Heartbeat: 20 * time.Millisecond})

	get := func() (int, map[string]any) {
		t.Helper()
		resp, err := http.Get(hs.URL + "/healthz")
		if err != nil {
			t.Fatalf("GET /healthz: %v", err)
		}
		defer resp.Body.Close()
		var h map[string]any
		if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
			t.Fatalf("decode healthz: %v", err)
		}
		return resp.StatusCode, h
	}

	code, h := get()
	if code != http.StatusOK || h["status"] != "ok" {
		t.Fatalf("healthy fleet: HTTP %d status %v", code, h["status"])
	}
	if n, _ := h["nodes_up"].(float64); int(n) != 3 {
		t.Fatalf("nodes_up = %v, want 3", h["nodes_up"])
	}

	f.Kill(2)
	deadline := time.Now().Add(2 * time.Second)
	for {
		code, h = get()
		if n, _ := h["nodes_up"].(float64); int(n) == 2 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("nodes_up never dropped to 2: %v", h)
		}
		time.Sleep(10 * time.Millisecond)
	}
	if code != http.StatusOK || h["status"] != "degraded" {
		t.Fatalf("after kill: HTTP %d status %v, want 200 degraded", code, h["status"])
	}
}
