package cluster

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"binopt/internal/serve"
)

// TestGossipConvergence: a generation bump posted to ONE member of a
// three-node fleet must reach every member — the epidemic path, with no
// router involved. The spread is synchronous along each hop, so by the
// time the first node answers, the fleet has converged.
func TestGossipConvergence(t *testing.T) {
	f, err := NewLocalFleet(3, serve.Config{Steps: 64})
	if err != nil {
		t.Fatalf("fleet: %v", err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		f.Close(ctx)
	}()

	resp, body := postJSON(t, f.URL(0)+"/v1/invalidate", serve.InvalidateRequest{Generation: 7, Origin: "test"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("invalidate: HTTP %d: %s", resp.StatusCode, body)
	}
	var ir serve.InvalidateResponse
	if err := json.Unmarshal(body, &ir); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !ir.Applied || ir.Generation != 7 {
		t.Fatalf("applied=%v gen=%d, want applied gen 7", ir.Applied, ir.Generation)
	}
	for i := 0; i < f.Len(); i++ {
		if gen := f.Server(i).CacheGeneration(); gen != 7 {
			t.Errorf("node %d at generation %d, want 7 — gossip never arrived", i, gen)
		}
	}

	// Re-delivery of the same generation is a no-op everywhere: the
	// idempotence that lets rumours travel multiple paths without
	// repeatedly dumping warm caches.
	resp, body = postJSON(t, f.URL(1)+"/v1/invalidate", serve.InvalidateRequest{Generation: 7})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("re-invalidate: HTTP %d: %s", resp.StatusCode, body)
	}
	if err := json.Unmarshal(body, &ir); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if ir.Applied {
		t.Error("duplicate generation re-applied — gossip would never terminate")
	}
}

// TestGossipFlushesPeerCaches: the point of the rumour — a warm cache
// on node B actually flushes when the bump enters at node A.
func TestGossipFlushesPeerCaches(t *testing.T) {
	f, err := NewLocalFleet(2, serve.Config{Steps: 64, CacheSize: 128})
	if err != nil {
		t.Fatalf("fleet: %v", err)
	}
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		f.Close(ctx)
	}()

	// Warm node 1's cache directly.
	c := contractFor(95)
	resp, _ := postJSON(t, f.URL(1)+"/v1/price", serve.PriceRequest{Contracts: []serve.Contract{c}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("warm: HTTP %d", resp.StatusCode)
	}
	var pr serve.PriceResponse
	resp, body := postJSON(t, f.URL(1)+"/v1/price", serve.PriceRequest{Contracts: []serve.Contract{c}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("re-price: HTTP %d", resp.StatusCode)
	}
	json.Unmarshal(body, &pr)
	if !pr.Results[0].Cached {
		t.Fatal("second pricing not cached; cannot observe the flush")
	}

	// Bump at node 0; node 1 must serve the next request cold.
	resp, _ = postJSON(t, f.URL(0)+"/v1/invalidate", serve.InvalidateRequest{})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("invalidate: HTTP %d", resp.StatusCode)
	}
	resp, body = postJSON(t, f.URL(1)+"/v1/price", serve.PriceRequest{Contracts: []serve.Contract{c}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-flush price: HTTP %d", resp.StatusCode)
	}
	json.Unmarshal(body, &pr)
	if pr.Results[0].Cached {
		t.Error("node 1 served from cache after a peer-originated invalidation")
	}
}

// TestRouterInvalidateBroadcast: a bump entering at the ROUTER reaches
// every member, and the router's own generation view advances.
func TestRouterInvalidateBroadcast(t *testing.T) {
	f, rt, hs := newTestFleet(t, 3, serve.Config{Steps: 64}, Config{Steps: 64})

	resp, body := postJSON(t, hs.URL+"/v1/invalidate", serve.InvalidateRequest{Generation: 9})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("invalidate: HTTP %d: %s", resp.StatusCode, body)
	}
	var out struct {
		Applied      bool   `json:"applied"`
		Generation   uint64 `json:"generation"`
		NodesReached int    `json:"nodes_reached"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !out.Applied || out.Generation != 9 || out.NodesReached != 3 {
		t.Fatalf("applied=%v gen=%d reached=%d, want applied gen 9 reached 3",
			out.Applied, out.Generation, out.NodesReached)
	}
	for i := 0; i < f.Len(); i++ {
		if gen := f.Server(i).CacheGeneration(); gen != 9 {
			t.Errorf("node %d at generation %d, want 9", i, gen)
		}
	}
	if rt.gen.Load() != 9 {
		t.Errorf("router generation %d, want 9", rt.gen.Load())
	}

	// A stale bump at the router is refused without touching nodes.
	resp, body = postJSON(t, hs.URL+"/v1/invalidate", serve.InvalidateRequest{Generation: 4})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("stale invalidate: HTTP %d: %s", resp.StatusCode, body)
	}
	var ir serve.InvalidateResponse
	json.Unmarshal(body, &ir)
	if ir.Applied || ir.Generation != 9 {
		t.Errorf("stale bump: applied=%v gen=%d, want refused at 9", ir.Applied, ir.Generation)
	}
}

// TestGossipSpreadFanout: Fanout bounds the push width and the rotation
// spreads load across peers over successive rumours.
func TestGossipSpreadFanout(t *testing.T) {
	var hits [3]int
	var servers [3]*httptest.Server
	peers := make([]string, 3)
	for i := range servers {
		i := i
		servers[i] = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			hits[i]++
			w.Write([]byte(`{"applied":true}`))
		}))
		defer servers[i].Close()
		peers[i] = servers[i].URL
	}
	g := &Gossiper{Origin: "test", Peers: peers, Fanout: 2}
	for gen := uint64(1); gen <= 3; gen++ {
		g.Spread(context.Background(), gen)
	}
	if g.Spreads() != 6 {
		t.Fatalf("spreads = %d, want 3 rounds x fanout 2 = 6", g.Spreads())
	}
	total := hits[0] + hits[1] + hits[2]
	if total != 6 {
		t.Fatalf("peer hits = %v (total %d), want 6", hits, total)
	}
	for i, h := range hits {
		if h == 0 {
			t.Errorf("peer %d never gossiped to — rotation stuck", i)
		}
	}
}
