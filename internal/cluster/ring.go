// Package cluster is the distributed pricing fabric over internal/serve:
// a router front-end that places canonicalised contracts onto member
// nodes via a consistent-hash ring, forwards batches over the nodes'
// existing HTTP API with per-node connection pools, request hedging and
// successor failover, tracks membership with heartbeat health polls
// feeding per-node circuit breakers, propagates cache invalidations by
// gossip so a vol-surface update on one node never leaves a stale price
// on another, and aggregates per-node metrics into a fleet-level
// options/joule scoreboard. It is the modelled data centre the paper's
// energy argument assumes: racks of pricing boards behind a scheduler,
// not a single device.
package cluster

import (
	"fmt"
	"hash/fnv"
	"sort"
	"sync"
)

// Ring is a consistent-hash ring with virtual nodes. Every member
// contributes VNodes points on a 64-bit circle; a key is owned by the
// first point clockwise from its hash. The placement is seeded: the same
// (seed, members, vnodes) triple always yields the same ring, so tests
// replay and a restarted router re-derives identical ownership —
// placement is configuration, not runtime accident.
//
// Virtual nodes are what make the two load-bearing properties hold:
// keys spread near-uniformly across members (balance), and a member
// joining or leaving remaps only the ~1/N of keys in its own segments
// (minimal movement) — every other node's cache stays warm through a
// membership change.
type Ring struct {
	seed   uint64
	vnodes int

	mu     sync.RWMutex
	points []ringPoint // sorted by hash, the circle
	nodes  map[string]bool
}

type ringPoint struct {
	hash uint64
	node string
}

// NewRing builds an empty ring. vnodes <= 0 defaults to 128 points per
// node, enough to hold per-node load within a few percent of fair at
// fleet sizes the fabric targets.
func NewRing(seed uint64, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = 128
	}
	return &Ring{seed: seed, vnodes: vnodes, nodes: make(map[string]bool)}
}

// hash64 is FNV-1a over the seed bytes then the key bytes, finished
// with a murmur3-style avalanche. FNV is deterministic across processes
// (unlike maphash) and cheap, but its final multiply leaves the last
// few input bytes under-diffused in the high bits — exactly the bits
// ring placement searches on, and contract keys differ mostly in their
// trailing bytes. The finalizer spreads every input bit across the
// whole word; the seed both namespaces rings and lets tests exercise
// alternative placements.
func (r *Ring) hash64(s string) uint64 {
	h := fnv.New64a()
	var seedBytes [8]byte
	for i := 0; i < 8; i++ {
		seedBytes[i] = byte(r.seed >> (8 * i))
	}
	h.Write(seedBytes[:])
	h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Add inserts a member's virtual nodes. Adding a present member is a
// no-op.
func (r *Ring) Add(node string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.nodes[node] {
		return
	}
	r.nodes[node] = true
	for v := 0; v < r.vnodes; v++ {
		r.points = append(r.points, ringPoint{
			hash: r.hash64(fmt.Sprintf("%s#%d", node, v)),
			node: node,
		})
	}
	sort.Slice(r.points, func(i, j int) bool { return r.points[i].hash < r.points[j].hash })
}

// Remove deletes a member's virtual nodes. Removing an absent member is
// a no-op.
func (r *Ring) Remove(node string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if !r.nodes[node] {
		return
	}
	delete(r.nodes, node)
	kept := r.points[:0]
	for _, p := range r.points {
		if p.node != node {
			kept = append(kept, p)
		}
	}
	r.points = kept
}

// Nodes returns the members in sorted order.
func (r *Ring) Nodes() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, 0, len(r.nodes))
	for n := range r.nodes {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// Len reports the member count.
func (r *Ring) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.nodes)
}

// Owner returns the member owning key, or "" on an empty ring.
func (r *Ring) Owner(key string) string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 {
		return ""
	}
	return r.points[r.search(key)].node
}

// search finds the index of the first point clockwise from key's hash.
// Caller holds at least the read lock.
func (r *Ring) search(key string) int {
	h := r.hash64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0 // wrap: the circle's first point
	}
	return i
}

// Successors returns up to n distinct members in ring order starting at
// the key's owner — the failover chain: when the owner is down, its
// segment's keys re-route to the next distinct member clockwise, so an
// outage shifts load to ring neighbours instead of one hot spare.
func (r *Ring) Successors(key string, n int) []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	if len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.nodes) {
		n = len(r.nodes)
	}
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for i, at := 0, r.search(key); i < len(r.points) && len(out) < n; i++ {
		p := r.points[(at+i)%len(r.points)]
		if !seen[p.node] {
			seen[p.node] = true
			out = append(out, p.node)
		}
	}
	return out
}

// Ownership reports the fraction of the 64-bit hash circle each member
// owns — the ring-ownership gauge on /metrics, and the balance figure
// the ring tests bound.
func (r *Ring) Ownership() map[string]float64 {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make(map[string]float64, len(r.nodes))
	if len(r.points) == 0 {
		return out
	}
	const whole = float64(1<<63) * 2 // 2^64 as a float
	for i, p := range r.points {
		// The arc ending at point i is owned by point i's node.
		var arc uint64
		if i == 0 {
			arc = r.points[0].hash - r.points[len(r.points)-1].hash // wraps mod 2^64
		} else {
			arc = p.hash - r.points[i-1].hash
		}
		out[p.node] += float64(arc) / whole
	}
	return out
}
