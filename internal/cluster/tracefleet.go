// Fleet trace aggregation: the router pulls every member's span ring
// through the incremental /debug/spans export, aligns wall timestamps
// using the heartbeat-measured per-node clock offsets, and files the
// spans under per-node process lanes — so /debug/trace on the router
// shows one request's timeline across the whole fabric: the router's
// route/forward/merge spans on top, each node's host phases and
// modelled device commands below, all stitched by one trace ID.
package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"
	"time"

	"binopt/internal/telemetry"
)

// fleetTrace is the router-side collector. Each member gets its own
// Since cursor, so a collect only transfers spans the router has not
// seen; the merged buffer is bounded the same way the tracer ring is —
// old spans fall off, and the missed counters stay honest about it.
type fleetTrace struct {
	mu      sync.Mutex
	cursors map[string]uint64 // member name → next Since cursor
	missed  map[string]uint64 // spans lost to node ring wraparound
	spans   []telemetry.Span  // collected node spans, oldest first
	cap     int
}

// newFleetTrace sizes the collected-span buffer from the router's own
// ring capacity: nodes together get 4× the router's retention, enough
// to hold the fan-out of everything the router ring still remembers.
func newFleetTrace(routerCap int) *fleetTrace {
	if routerCap < 1 {
		routerCap = 1
	}
	return &fleetTrace{
		cursors: make(map[string]uint64),
		missed:  make(map[string]uint64),
		cap:     4 * routerCap,
	}
}

// collect pulls fresh spans from every member concurrently. A member
// that does not answer (down, or running without a tracer) contributes
// nothing this round and its cursor stays put — the next collect picks
// up exactly where this one left off, modulo ring wraparound, which the
// missed counter records. Nil-safe: a router without a tracer has no
// collector.
func (ft *fleetTrace) collect(ctx context.Context, rt *Router) {
	if ft == nil {
		return
	}
	type pull struct {
		name   string
		ex     telemetry.Export
		offset time.Duration
		ok     bool
	}
	names := rt.ring.Nodes()
	pulls := make([]pull, len(names))
	ft.mu.Lock()
	cursors := make(map[string]uint64, len(names))
	for _, n := range names {
		cursors[n] = ft.cursors[n]
	}
	ft.mu.Unlock()

	var wg sync.WaitGroup
	for i, name := range names {
		wg.Add(1)
		go func(i int, m *member) {
			defer wg.Done()
			p := pull{name: m.name, offset: time.Duration(m.clockOffset.Load())}
			p.ex, p.ok = fetchSpans(ctx, m, cursors[m.name])
			pulls[i] = p
		}(i, rt.members[name])
	}
	wg.Wait()

	ft.mu.Lock()
	defer ft.mu.Unlock()
	for _, p := range pulls {
		if !p.ok {
			continue
		}
		ft.cursors[p.name] = p.ex.Next
		ft.missed[p.name] += p.ex.Missed
		for _, sj := range p.ex.Spans {
			sp := telemetry.FromJSON(sj, p.offset)
			// Per-node process lanes: "node-0:host", "node-0:device:…".
			sp.Proc = p.name + ":" + sp.Proc
			ft.spans = append(ft.spans, sp)
		}
	}
	if over := len(ft.spans) - ft.cap; over > 0 {
		ft.spans = append(ft.spans[:0], ft.spans[over:]...)
	}
}

// fetchSpans pulls one page of a member's span export.
func fetchSpans(ctx context.Context, m *member, cursor uint64) (telemetry.Export, bool) {
	var ex telemetry.Export
	cctx, cancel := context.WithTimeout(ctx, 2*time.Second)
	defer cancel()
	url := fmt.Sprintf("%s/debug/spans?cursor=%d", m.base, cursor)
	req, err := http.NewRequestWithContext(cctx, http.MethodGet, url, nil)
	if err != nil {
		return ex, false
	}
	resp, err := m.client.Do(req)
	if err != nil {
		return ex, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return ex, false
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 8<<20)).Decode(&ex); err != nil {
		return ex, false
	}
	return ex, true
}

// snapshot copies the collected node spans out.
func (ft *fleetTrace) snapshot() []telemetry.Span {
	if ft == nil {
		return nil
	}
	ft.mu.Lock()
	defer ft.mu.Unlock()
	out := make([]telemetry.Span, len(ft.spans))
	copy(out, ft.spans)
	return out
}

// reset discards the collected spans. Cursors survive — the nodes'
// rings still advance monotonically, so the next collect resumes
// without re-pulling anything.
func (ft *fleetTrace) reset() {
	if ft == nil {
		return
	}
	ft.mu.Lock()
	ft.spans = nil
	ft.mu.Unlock()
}

// missedTotal reports, per node, how many spans were emitted on the
// node but lost to its ring before the router pulled them — rendered
// into /metrics so a truncated trace is visible as a number, not a
// silent gap.
func (ft *fleetTrace) missedTotal() map[string]uint64 {
	if ft == nil {
		return nil
	}
	ft.mu.Lock()
	defer ft.mu.Unlock()
	out := make(map[string]uint64, len(ft.missed))
	for k, v := range ft.missed {
		out[k] = v
	}
	return out
}
