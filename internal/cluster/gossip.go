package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"binopt/internal/serve"
)

// Gossiper spreads cache-generation bumps epidemically between member
// nodes. The caches are shared-nothing — each node owns its LRU — so
// invalidation is the only cross-node cache traffic, and it needs no
// coordinator: a bump entering anywhere reaches everywhere because each
// node that newly applies a generation re-offers it to its peers.
// Termination is the generation check itself — a node that has already
// seen the generation applies nothing and re-offers nothing, so each
// rumour dies exactly one hop past the frontier.
type Gossiper struct {
	// Origin names this node in re-gossiped requests (for tracing who
	// spread what; the protocol ignores it).
	Origin string
	// Peers are the other members' base URLs.
	Peers []string
	// Fanout bounds how many peers one application pushes to; <= 0
	// means all peers. Small fleets gossip to everyone — the epidemic
	// rounds only matter at sizes this fabric does not target yet.
	Fanout int
	// Timeout bounds one peer push (default 2s).
	Timeout time.Duration
	// Client issues the pushes; nil uses http.DefaultClient.
	Client *http.Client

	// next rotates the fanout window across the peer list so repeated
	// bumps do not always favour the same peers.
	next atomic.Uint64

	// spread counts pushes issued (tests and /metrics observability).
	spread atomic.Int64
}

func (g *Gossiper) client() *http.Client {
	if g.Client != nil {
		return g.Client
	}
	return http.DefaultClient
}

func (g *Gossiper) timeout() time.Duration {
	if g.Timeout > 0 {
		return g.Timeout
	}
	return 2 * time.Second
}

// Spreads reports how many peer pushes this gossiper has issued.
func (g *Gossiper) Spreads() int64 { return g.spread.Load() }

// Spread offers generation gen to up to Fanout peers, concurrently,
// and waits for the pushes to finish or time out. Peers that already
// hold gen (or newer) apply nothing and stay quiet; peers that newly
// apply it re-offer it onward — that recursion, not this call, is what
// carries the bump past unreachable links.
func (g *Gossiper) Spread(ctx context.Context, gen uint64) {
	if len(g.Peers) == 0 {
		return
	}
	n := g.Fanout
	if n <= 0 || n > len(g.Peers) {
		n = len(g.Peers)
	}
	start := int(g.next.Add(1)-1) % len(g.Peers)
	body, _ := json.Marshal(serve.InvalidateRequest{Generation: gen, Origin: g.Origin})
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		peer := g.Peers[(start+i)%len(g.Peers)]
		wg.Add(1)
		go func(peer string) {
			defer wg.Done()
			g.spread.Add(1)
			cctx, cancel := context.WithTimeout(ctx, g.timeout())
			defer cancel()
			req, err := http.NewRequestWithContext(cctx, http.MethodPost, peer+"/v1/invalidate", bytes.NewReader(body))
			if err != nil {
				return
			}
			req.Header.Set("Content-Type", "application/json")
			resp, err := g.client().Do(req)
			if err != nil {
				return // unreachable peers hear it from someone else
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
		}(peer)
	}
	wg.Wait()
}

// NodeHandler wraps a member node's HTTP handler with gossip:
// POST /v1/invalidate applies the bump to the local server and, only
// when the bump was newly applied, re-offers it to the gossiper's
// peers before answering — so by the time the caller sees Applied=true
// the rumour is already one hop wider. Every other route passes through
// to the server untouched.
func NodeHandler(s *serve.Server, g *Gossiper) http.Handler {
	inner := s.Handler()
	mux := http.NewServeMux()
	mux.Handle("/", inner)
	mux.HandleFunc("/v1/invalidate", func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost {
			writeJSON(w, http.StatusMethodNotAllowed, map[string]string{"error": "POST required"})
			return
		}
		var req serve.InvalidateRequest
		if err := json.NewDecoder(io.LimitReader(r.Body, 1<<16)).Decode(&req); err != nil && !errors.Is(err, io.EOF) {
			writeJSON(w, http.StatusBadRequest, map[string]string{"error": "bad JSON: " + err.Error()})
			return
		}
		gen := req.Generation
		if gen == 0 {
			gen = s.CacheGeneration() + 1
		}
		applied := s.Invalidate(gen)
		if applied && g != nil {
			g.Spread(r.Context(), gen)
		}
		writeJSON(w, http.StatusOK, serve.InvalidateResponse{Applied: applied, Generation: s.CacheGeneration()})
	})
	return mux
}
