package cluster

import (
	"bufio"
	"context"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// routerMetrics are the router's own counters; fleet-level figures are
// scraped live from the member nodes at render time, falling back to
// each member's last good scrape when it is unreachable.
type routerMetrics struct {
	requests      atomic.Int64 // POST /v1/price at the router
	options       atomic.Int64 // contracts answered to clients
	hedges        atomic.Int64 // hedged duplicates launched
	hedgeWins     atomic.Int64 // hedged duplicates that answered first
	failovers     atomic.Int64 // contracts re-placed after a node failure
	routeErrors   atomic.Int64 // batches that exhausted every attempt
	invalidations atomic.Int64 // generation bumps broadcast

	scenarioReqs      atomic.Int64 // POST /v1/scenarios at the router
	scenarioShards    atomic.Int64 // scenario sub-requests forwarded
	scenarioFailovers atomic.Int64 // scenarios re-placed after a node failure

	// lastScrape caches each member's most recent successful scrape. A
	// node that stops answering keeps contributing its last known
	// figures (marked stale) instead of zeroing the fleet gauges — a
	// rack does not lose half its served-options history because one
	// board rebooted during a scrape.
	scrapeMu   sync.Mutex
	lastScrape map[string]nodeScrape
}

func newRouterMetrics() *routerMetrics {
	return &routerMetrics{lastScrape: make(map[string]nodeScrape)}
}

// nodeScrape is the slice of one member's /metrics the fleet roll-up
// needs.
type nodeScrape struct {
	name          string
	ok            bool
	optionsPriced float64 // binopt_options_priced_total
	optionsServed float64 // binopt_options_served_total
	windowRate    float64 // binopt_options_per_sec_window
	joules        float64 // binopt_modelled_joules_total
	cacheGen      float64 // binopt_cache_generation
	cacheHits     float64 // binopt_cache_hits_total
}

// scrapeNode pulls one member's /metrics and extracts the fleet
// ingredients. A scrape failure marks the node absent from the roll-up
// rather than failing the render — the fleet page must stay up while a
// node is down; that is when it is read.
func scrapeNode(ctx context.Context, m *member) nodeScrape {
	out := nodeScrape{name: m.name}
	cctx, cancel := context.WithTimeout(ctx, 2*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(cctx, http.MethodGet, m.base+"/metrics", nil)
	if err != nil {
		return out
	}
	resp, err := m.client.Do(req)
	if err != nil {
		return out
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return out
	}
	sc := bufio.NewScanner(io.LimitReader(resp.Body, 1<<20))
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name, val, found := strings.Cut(line, " ")
		if !found {
			continue
		}
		f, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
		if err != nil {
			continue
		}
		switch name {
		case "binopt_options_priced_total":
			out.optionsPriced = f
		case "binopt_options_served_total":
			out.optionsServed = f
		case "binopt_options_per_sec_window":
			out.windowRate = f
		case "binopt_modelled_joules_total":
			out.joules = f
		case "binopt_cache_generation":
			out.cacheGen = f
		case "binopt_cache_hits_total":
			out.cacheHits = f
		}
	}
	out.ok = sc.Err() == nil
	return out
}

// renderMetrics produces the router's Prometheus-style text exposition:
// router counters, ring-ownership gauges, per-node liveness, and the
// fleet roll-up — summed serving rate and fleet-level joules per option,
// the figure the paper's energy argument scales from one board to a
// rack of them.
func (rt *Router) renderMetrics(ctx context.Context) string {
	var b strings.Builder
	w := func(format string, args ...any) { fmt.Fprintf(&b, format, args...) }

	w("binopt_router_requests_total %d\n", rt.metrics.requests.Load())
	w("binopt_router_options_total %d\n", rt.metrics.options.Load())
	w("binopt_router_hedges_total %d\n", rt.metrics.hedges.Load())
	w("binopt_router_hedge_wins_total %d\n", rt.metrics.hedgeWins.Load())
	w("binopt_router_failovers_total %d\n", rt.metrics.failovers.Load())
	w("binopt_router_route_errors_total %d\n", rt.metrics.routeErrors.Load())
	w("binopt_router_invalidations_total %d\n", rt.metrics.invalidations.Load())
	w("binopt_router_scenario_requests_total %d\n", rt.metrics.scenarioReqs.Load())
	w("binopt_router_scenario_shards_total %d\n", rt.metrics.scenarioShards.Load())
	w("binopt_router_scenario_failovers_total %d\n", rt.metrics.scenarioFailovers.Load())
	w("binopt_fleet_cache_generation %d\n", rt.gen.Load())

	// Per-node router view: placement share, liveness, breaker state,
	// forward traffic.
	own := rt.ring.Ownership()
	names := rt.ring.Nodes()
	for _, name := range names {
		m := rt.members[name]
		up := 0
		if m.up.Load() {
			up = 1
		}
		_, stCode := m.breaker.State()
		w("binopt_ring_ownership{node=%q} %.6f\n", name, own[name])
		w("binopt_node_up{node=%q} %d\n", name, up)
		w("binopt_node_breaker_state{node=%q} %d\n", name, stCode)
		w("binopt_node_breaker_opens_total{node=%q} %d\n", name, m.breaker.Opens())
		w("binopt_node_forwards_total{node=%q} %d\n", name, m.forwards.Load())
		w("binopt_node_forward_errors_total{node=%q} %d\n", name, m.errs.Load())
		w("binopt_node_hedge_wins_total{node=%q} %d\n", name, m.hedgeWin.Load())
	}

	// Fleet roll-up: scrape every member concurrently. A node that does
	// not answer falls back to its last good scrape, marked stale — the
	// fleet totals must not collapse because one member is mid-reboot.
	// Only a node that has never been scraped contributes nothing.
	scrapes := make([]nodeScrape, len(names))
	var wg sync.WaitGroup
	for i, name := range names {
		wg.Add(1)
		go func(i int, m *member) {
			defer wg.Done()
			scrapes[i] = scrapeNode(ctx, m)
		}(i, rt.members[name])
	}
	wg.Wait()

	stale := make([]bool, len(scrapes))
	rt.metrics.scrapeMu.Lock()
	for i, s := range scrapes {
		if s.ok {
			rt.metrics.lastScrape[s.name] = s
			continue
		}
		if prev, cached := rt.metrics.lastScrape[s.name]; cached {
			scrapes[i] = prev // last good figures, reported as stale
			stale[i] = true
		}
	}
	rt.metrics.scrapeMu.Unlock()

	var (
		reached              int
		sumRate, sumJoules   float64
		sumPriced, sumServed float64
		sumHits              float64
		generations          []float64
	)
	for i, s := range scrapes {
		if !s.ok {
			// Down and never successfully scraped: nothing to fall back
			// on, so nothing to contribute.
			w("binopt_fleet_node_stale{node=%q} 1\n", s.name)
			continue
		}
		staleVal := 0
		if stale[i] {
			staleVal = 1
		} else {
			reached++
		}
		sumRate += s.windowRate
		sumJoules += s.joules
		sumPriced += s.optionsPriced
		sumServed += s.optionsServed
		sumHits += s.cacheHits
		generations = append(generations, s.cacheGen)
		w("binopt_fleet_node_stale{node=%q} %d\n", s.name, staleVal)
		w("binopt_fleet_node_options_per_sec{node=%q} %.3f\n", s.name, s.windowRate)
		w("binopt_fleet_node_joules_total{node=%q} %.6g\n", s.name, s.joules)
		w("binopt_fleet_node_cache_generation{node=%q} %g\n", s.name, s.cacheGen)
	}
	w("binopt_fleet_nodes %d\n", len(names))
	w("binopt_fleet_nodes_scraped %d\n", reached)
	w("binopt_fleet_options_per_sec %.3f\n", sumRate)
	w("binopt_fleet_options_priced_total %.0f\n", sumPriced)
	w("binopt_fleet_options_served_total %.0f\n", sumServed)
	w("binopt_fleet_cache_hits_total %.0f\n", sumHits)
	w("binopt_fleet_modelled_joules_total %.6g\n", sumJoules)
	jpo := 0.0
	if sumPriced > 0 {
		jpo = sumJoules / sumPriced
	}
	w("binopt_fleet_joules_per_option %.6g\n", jpo)
	// Convergence gauge: 1 when every reachable node agrees on the
	// cache generation — the gossip health signal.
	sort.Float64s(generations)
	converged := 1
	if len(generations) > 1 && generations[len(generations)-1]-generations[0] > 0 {
		converged = 0
	}
	w("binopt_fleet_cache_converged %d\n", converged)
	// Trace-aggregation honesty: spans a node emitted but lost to its
	// ring before the router pulled them. Nonzero means the merged
	// /debug/trace has gaps — poll it more often or enlarge node rings.
	if missed := rt.fleetTr.missedTotal(); len(missed) > 0 {
		nodes := make([]string, 0, len(missed))
		for name := range missed {
			nodes = append(nodes, name)
		}
		sort.Strings(nodes)
		for _, name := range nodes {
			w("binopt_fleet_trace_missed_total{node=%q} %d\n", name, missed[name])
		}
	}
	return b.String()
}
