package cluster

import (
	"fmt"
	"testing"
)

func testKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		keys[i] = fmt.Sprintf("contract-%d", i)
	}
	return keys
}

// TestRingBalance bounds key-distribution skew: across 1k keys on a
// 4-node ring with the default virtual-node count, no node may own more
// than 1.5x or less than 0.5x its fair share. This is the bound that
// makes the fleet's near-linear scaling claim honest — throughput is
// limited by the most-loaded node.
func TestRingBalance(t *testing.T) {
	const nodes, nkeys = 4, 1000
	r := NewRing(1, 0) // default vnodes
	for i := 0; i < nodes; i++ {
		r.Add(fmt.Sprintf("node-%d", i))
	}
	counts := make(map[string]int)
	for _, k := range testKeys(nkeys) {
		counts[r.Owner(k)]++
	}
	fair := float64(nkeys) / nodes
	for node, c := range counts {
		if float64(c) > 1.5*fair || float64(c) < 0.5*fair {
			t.Errorf("%s owns %d keys, outside [%.0f, %.0f] around fair %.0f", node, c, 0.5*fair, 1.5*fair, fair)
		}
	}
	if len(counts) != nodes {
		t.Fatalf("only %d of %d nodes own keys: %v", len(counts), nodes, counts)
	}

	// The ownership gauge must roughly agree with the empirical split.
	own := r.Ownership()
	var total float64
	for node, frac := range own {
		total += frac
		if frac < 0.10 || frac > 0.45 {
			t.Errorf("%s ownership fraction %.3f, outside [0.10, 0.45]", node, frac)
		}
	}
	if total < 0.999 || total > 1.001 {
		t.Errorf("ownership fractions sum to %.6f, want 1", total)
	}
}

// TestRingMinimalMovement holds consistent hashing's defining property:
// a node joining (or leaving) an N-node ring remaps only about 1/N of
// the keys — everyone else's cache stays warm through the membership
// change. We allow up to 2x the theoretical expectation for hash noise.
func TestRingMinimalMovement(t *testing.T) {
	const nkeys = 1000
	keys := testKeys(nkeys)

	build := func(nodes []string) map[string]string {
		r := NewRing(1, 0)
		for _, n := range nodes {
			r.Add(n)
		}
		owners := make(map[string]string, nkeys)
		for _, k := range keys {
			owners[k] = r.Owner(k)
		}
		return owners
	}
	moved := func(a, b map[string]string) int {
		n := 0
		for k := range a {
			if a[k] != b[k] {
				n++
			}
		}
		return n
	}

	three := build([]string{"node-0", "node-1", "node-2"})
	four := build([]string{"node-0", "node-1", "node-2", "node-3"})

	// Join: 3 -> 4 nodes, expected movement nkeys/4.
	if m := moved(three, four); m > nkeys/2 {
		t.Errorf("join remapped %d/%d keys, want <= %d (~1/4 expected)", m, nkeys, nkeys/2)
	}
	// Every moved key must have moved TO the joiner — consistent
	// hashing never shuffles keys between surviving nodes.
	for k := range three {
		if three[k] != four[k] && four[k] != "node-3" {
			t.Fatalf("key %q moved %s -> %s, not to the joiner", k, three[k], four[k])
		}
	}

	// Leave via Remove: back to the identical 3-node placement.
	r := NewRing(1, 0)
	for _, n := range []string{"node-0", "node-1", "node-2", "node-3"} {
		r.Add(n)
	}
	r.Remove("node-3")
	for _, k := range keys {
		if got := r.Owner(k); got != three[k] {
			t.Fatalf("after leave, key %q owned by %s, want %s", k, got, three[k])
		}
	}
}

// TestRingSeededGolden pins exact placements for a fixed (seed, members,
// vnodes) triple. If this test ever fails, ring placement changed and
// every node cache in a rolling fleet restart would go cold — treat the
// hash layout as a wire format.
func TestRingSeededGolden(t *testing.T) {
	r := NewRing(42, 64)
	for _, n := range []string{"node-0", "node-1", "node-2"} {
		r.Add(n)
	}
	golden := []struct{ key, owner string }{
		{"put|american|0x1.9p+06|0x1.a4p+06|0x1.eb851eb851eb8p-05|0x0p+00|0x1.999999999999ap-03|0x1p-01|1024", "node-2"},
		{"alpha", "node-1"},
		{"beta", "node-2"},
		{"gamma", "node-2"},
		{"delta", "node-1"},
		{"epsilon", "node-2"},
		{"zeta", "node-2"},
		{"eta", "node-2"},
		{"theta", "node-2"},
	}
	for _, g := range golden {
		if got := r.Owner(g.key); got != g.owner {
			t.Errorf("Owner(%q) = %s, want %s", g.key, got, g.owner)
		}
	}
	wantSucc := []string{"node-1", "node-2", "node-0"}
	got := r.Successors("alpha", 3)
	if len(got) != len(wantSucc) {
		t.Fatalf("Successors = %v, want %v", got, wantSucc)
	}
	for i := range got {
		if got[i] != wantSucc[i] {
			t.Fatalf("Successors = %v, want %v", got, wantSucc)
		}
	}

	// A different seed must yield a different placement somewhere —
	// seeding is real, not decorative.
	other := NewRing(43, 64)
	for _, n := range []string{"node-0", "node-1", "node-2"} {
		other.Add(n)
	}
	same := true
	for _, k := range testKeys(100) {
		if r.Owner(k) != other.Owner(k) {
			same = false
			break
		}
	}
	if same {
		t.Error("seeds 42 and 43 produced identical placement over 100 keys")
	}
}

func TestRingEdgeCases(t *testing.T) {
	r := NewRing(7, 8)
	if r.Owner("x") != "" {
		t.Error("empty ring owns a key")
	}
	if s := r.Successors("x", 2); s != nil {
		t.Errorf("empty ring successors = %v", s)
	}
	r.Add("only")
	r.Add("only") // duplicate add is a no-op
	if r.Len() != 1 {
		t.Fatalf("Len = %d, want 1", r.Len())
	}
	if got := r.Owner("anything"); got != "only" {
		t.Errorf("single-node ring owner = %q", got)
	}
	if s := r.Successors("anything", 5); len(s) != 1 || s[0] != "only" {
		t.Errorf("single-node successors = %v", s)
	}
	r.Remove("ghost") // absent remove is a no-op
	r.Remove("only")
	if r.Len() != 0 || r.Owner("x") != "" {
		t.Error("ring not empty after removing the only node")
	}
}
