package option

import (
	"math"
	"testing"
)

func TestLeisenReimerRequiresOddSteps(t *testing.T) {
	o := sample()
	if _, err := NewLatticeParams(o, 100, LeisenReimer); err == nil {
		t.Error("even steps should fail")
	}
	if _, err := NewLatticeParams(o, 101, LeisenReimer); err != nil {
		t.Errorf("odd steps should work: %v", err)
	}
}

func TestLeisenReimerParamsSane(t *testing.T) {
	o := sample()
	lp, err := NewLatticeParams(o, 255, LeisenReimer)
	if err != nil {
		t.Fatal(err)
	}
	if !(lp.P > 0 && lp.P < 1) {
		t.Errorf("p = %v", lp.P)
	}
	if lp.D >= lp.U {
		t.Errorf("d %v >= u %v", lp.D, lp.U)
	}
	// Martingale: p*u + (1-p)*d = growth.
	growth := math.Exp((o.Rate - o.Div) * lp.Dt)
	if got := lp.P*lp.U + (1-lp.P)*lp.D; math.Abs(got-growth) > 1e-12 {
		t.Errorf("martingale violated: %v vs %v", got, growth)
	}
}

func TestPeizerPrattProperties(t *testing.T) {
	// Antisymmetric around 1/2, bounded in (0,1), monotone in z.
	for _, n := range []int{11, 101, 1001} {
		if got := peizerPratt(0, n); got != 0.5 {
			t.Errorf("h(0) = %v, want 0.5", got)
		}
		prev := 0.0
		for z := -5.0; z <= 5.0; z += 0.25 {
			h := peizerPratt(z, n)
			if h <= 0 || h >= 1 {
				t.Fatalf("h(%v) = %v out of (0,1)", z, h)
			}
			if z > -5 && h < prev {
				t.Fatalf("h not monotone at z=%v", z)
			}
			if sym := peizerPratt(-z, n); math.Abs(h+sym-1) > 1e-12 {
				t.Fatalf("h(%v)+h(%v) = %v, want 1", z, -z, h+sym)
			}
			prev = h
		}
	}
}

func TestPeizerPrattAsymptotics(t *testing.T) {
	// The inversion returns a per-step probability whose deviation from
	// 1/2 shrinks like z/(2*sqrt(n)) — that scaling is what makes the
	// n-step binomial tail match the normal CDF at z.
	for _, n := range []int{101, 1001, 10001} {
		got := peizerPratt(1, n) - 0.5
		want := 1 / (2 * math.Sqrt(float64(n)))
		if math.Abs(got-want) > 0.05*want {
			t.Errorf("n=%d: h(1)-0.5 = %g, want ~%g", n, got, want)
		}
	}
}
