package option

import (
	"fmt"
	"math"
)

// Parameterisation selects how the up/down factors and risk-neutral
// probability of the binomial lattice are derived from the contract. The
// paper uses the classic Cox–Ross–Rubinstein tree [3]; the alternatives
// are provided as documented extensions and ablation points.
type Parameterisation int

const (
	// CRR is the Cox–Ross–Rubinstein parameterisation: u = exp(sigma*sqrt(dt)),
	// d = 1/u. The tree recombines around the spot.
	CRR Parameterisation = iota
	// JarrowRudd sets p = 1/2 and folds the drift into the factors.
	JarrowRudd
	// Tian matches the first three moments of the lognormal increment.
	Tian
	// LeisenReimer centres the tree on the strike via the Peizer–Pratt
	// inversion, achieving O(1/N^2) convergence without the payoff-kink
	// oscillation. Requires an odd number of steps.
	LeisenReimer
)

// String names the parameterisation.
func (p Parameterisation) String() string {
	switch p {
	case CRR:
		return "crr"
	case JarrowRudd:
		return "jarrow-rudd"
	case Tian:
		return "tian"
	case LeisenReimer:
		return "leisen-reimer"
	default:
		return fmt.Sprintf("Parameterisation(%d)", int(p))
	}
}

// LatticeParams holds everything a binomial kernel needs per option: the
// per-step factors, the discounted risk-neutral probabilities rp and rq of
// the paper's recurrence (Equation 1), and the step count. Precomputing
// these on the host mirrors the paper's "option-dependent data ... stored
// in another global buffer".
type LatticeParams struct {
	Steps int     // N, number of time discretisation steps
	Dt    float64 // time step T/N
	U     float64 // up factor
	D     float64 // down factor
	P     float64 // risk-neutral up probability
	Disc  float64 // one-step discount factor exp(-r*dt)
	Pu    float64 // Disc * P       (the paper's rp)
	Pd    float64 // Disc * (1-P)   (the paper's rq)
}

// NewLatticeParams derives the lattice coefficients for the option with N
// steps under the given parameterisation. It returns an error when the
// discretisation is unusable (N < 1) or the resulting risk-neutral
// probability falls outside (0, 1), which happens when the drift per step
// exceeds the volatility per step (dt too large for CRR).
func NewLatticeParams(o Option, n int, param Parameterisation) (LatticeParams, error) {
	if err := o.Validate(); err != nil {
		return LatticeParams{}, err
	}
	if n < 1 {
		return LatticeParams{}, fmt.Errorf("option: lattice needs at least 1 step, got %d", n)
	}
	dt := o.T / float64(n)
	growth := math.Exp((o.Rate - o.Div) * dt)

	var u, d, p float64
	switch param {
	case CRR:
		u = math.Exp(o.Sigma * math.Sqrt(dt))
		d = 1 / u
		p = (growth - d) / (u - d)
	case JarrowRudd:
		nu := o.Rate - o.Div - 0.5*o.Sigma*o.Sigma
		u = math.Exp(nu*dt + o.Sigma*math.Sqrt(dt))
		d = math.Exp(nu*dt - o.Sigma*math.Sqrt(dt))
		p = 0.5
	case Tian:
		v := math.Exp(o.Sigma * o.Sigma * dt)
		u = 0.5 * growth * v * (v + 1 + math.Sqrt(v*v+2*v-3))
		d = 0.5 * growth * v * (v + 1 - math.Sqrt(v*v+2*v-3))
		p = (growth - d) / (u - d)
	case LeisenReimer:
		if n%2 == 0 {
			return LatticeParams{}, fmt.Errorf("option: Leisen-Reimer requires an odd step count, got %d", n)
		}
		volSqrtT := o.Sigma * math.Sqrt(o.T)
		d1 := (math.Log(o.Spot/o.Strike) + (o.Rate-o.Div+0.5*o.Sigma*o.Sigma)*o.T) / volSqrtT
		d2 := d1 - volSqrtT
		p = peizerPratt(d2, n)
		pPrime := peizerPratt(d1, n)
		u = growth * pPrime / p
		d = (growth - p*u) / (1 - p)
	default:
		return LatticeParams{}, fmt.Errorf("option: unknown parameterisation %d", int(param))
	}

	if !(p > 0 && p < 1) {
		return LatticeParams{}, fmt.Errorf(
			"option: risk-neutral probability %v outside (0,1); increase steps (N=%d, dt=%v)", p, n, dt)
	}
	disc := math.Exp(-o.Rate * dt)
	return LatticeParams{
		Steps: n,
		Dt:    dt,
		U:     u,
		D:     d,
		P:     p,
		Disc:  disc,
		Pu:    disc * p,
		Pd:    disc * (1 - p),
	}, nil
}

// peizerPratt is the Peizer–Pratt method-2 inversion used by the
// Leisen–Reimer tree: it maps a normal quantile z onto a binomial
// probability so that the n-step binomial CDF matches the normal CDF at
// z.
func peizerPratt(z float64, n int) float64 {
	nf := float64(n)
	denom := nf + 1.0/3.0 + 0.1/(nf+1)
	arg := -(z / denom) * (z / denom) * (nf + 1.0/6.0)
	s := 0.25 - 0.25*math.Exp(arg)
	if s < 0 {
		s = 0
	}
	h := 0.5 + math.Copysign(math.Sqrt(s), z)
	return h
}

// LeafPrice returns the underlying price at leaf k of the tree (k up-moves
// out of Steps), i.e. S0 * u^k * d^(Steps-k). For CRR this telescopes to
// S0 * u^(2k-Steps), the form the device-side leaf initialisation uses via
// its Power operator (the source of the paper's RMSE issue).
func (lp LatticeParams) LeafPrice(spot float64, k int) float64 {
	return spot * math.Pow(lp.U, float64(k)) * math.Pow(lp.D, float64(lp.Steps-k))
}

// NodeCount returns the total number of tree nodes N(N+1)/2 + N+1 counted
// the way the paper counts "tree nodes/s" throughput: the number of
// work-items needed to process one option, N(N+1)/2.
func (lp LatticeParams) NodeCount() int64 {
	n := int64(lp.Steps)
	return n * (n + 1) / 2
}
