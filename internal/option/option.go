// Package option defines the financial contracts priced by this library:
// vanilla call and put options with European or American exercise, together
// with the market parameters and the precomputed Cox–Ross–Rubinstein (CRR)
// lattice coefficients the kernels consume.
package option

import (
	"fmt"
	"math"
)

// Right is the option right: the holder may buy (call) or sell (put) the
// underlying at the strike price.
type Right int

const (
	// Call gives the right to buy the underlying at the strike.
	Call Right = iota
	// Put gives the right to sell the underlying at the strike.
	Put
)

// String returns "call" or "put".
func (r Right) String() string {
	switch r {
	case Call:
		return "call"
	case Put:
		return "put"
	default:
		return fmt.Sprintf("Right(%d)", int(r))
	}
}

// Style is the exercise style. European options may be exercised only at
// expiry; American options at any time up to expiry, which is what makes
// their value path-dependent and analytically intractable (paper §III-A).
type Style int

const (
	// European exercise: at expiry only.
	European Style = iota
	// American exercise: any time up to expiry.
	American
)

// String returns "european" or "american".
func (s Style) String() string {
	switch s {
	case European:
		return "european"
	case American:
		return "american"
	default:
		return fmt.Sprintf("Style(%d)", int(s))
	}
}

// Option is a vanilla equity option contract plus the market state needed
// to price it. All rates are continuously compounded and annualised; T is
// in years.
type Option struct {
	Right  Right
	Style  Style
	Spot   float64 // current underlying price S0
	Strike float64 // strike price K
	Rate   float64 // risk-free rate r
	Div    float64 // continuous dividend yield q
	Sigma  float64 // volatility of the underlying
	T      float64 // time to expiry in years
}

// Validate reports whether the contract parameters are usable by the
// pricing engines.
func (o Option) Validate() error {
	switch {
	case o.Right != Call && o.Right != Put:
		return fmt.Errorf("option: invalid right %d", int(o.Right))
	case o.Style != European && o.Style != American:
		return fmt.Errorf("option: invalid style %d", int(o.Style))
	case !(o.Spot > 0) || math.IsInf(o.Spot, 0):
		return fmt.Errorf("option: spot must be positive and finite, got %v", o.Spot)
	case !(o.Strike > 0) || math.IsInf(o.Strike, 0):
		return fmt.Errorf("option: strike must be positive and finite, got %v", o.Strike)
	case !(o.T > 0) || math.IsInf(o.T, 0):
		return fmt.Errorf("option: expiry must be positive and finite, got %v", o.T)
	case !(o.Sigma > 0) || math.IsInf(o.Sigma, 0):
		return fmt.Errorf("option: volatility must be positive and finite, got %v", o.Sigma)
	case math.IsNaN(o.Rate) || math.IsInf(o.Rate, 0):
		return fmt.Errorf("option: rate must be finite, got %v", o.Rate)
	case math.IsNaN(o.Div) || math.IsInf(o.Div, 0) || o.Div < 0:
		return fmt.Errorf("option: dividend yield must be finite and non-negative, got %v", o.Div)
	}
	return nil
}

// Payoff returns the exercise value of the option when the underlying
// trades at price s.
func (o Option) Payoff(s float64) float64 {
	switch o.Right {
	case Call:
		return math.Max(s-o.Strike, 0)
	default:
		return math.Max(o.Strike-s, 0)
	}
}

// Intrinsic returns the payoff at the current spot.
func (o Option) Intrinsic() float64 { return o.Payoff(o.Spot) }

// Moneyness returns Spot/Strike, the conventional measure of how far in or
// out of the money the contract is.
func (o Option) Moneyness() float64 { return o.Spot / o.Strike }

// String renders the contract compactly, e.g.
// "american put S=100 K=105 r=3.00% q=0.00% sigma=20.00% T=0.50y".
func (o Option) String() string {
	return fmt.Sprintf("%s %s S=%g K=%g r=%.2f%% q=%.2f%% sigma=%.2f%% T=%gy",
		o.Style, o.Right, o.Spot, o.Strike, 100*o.Rate, 100*o.Div, 100*o.Sigma, o.T)
}
