package option

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewLatticeParamsCRR(t *testing.T) {
	o := sample()
	lp, err := NewLatticeParams(o, 1024, CRR)
	if err != nil {
		t.Fatal(err)
	}
	if lp.Steps != 1024 {
		t.Errorf("Steps = %d", lp.Steps)
	}
	if !almostEqual(lp.Dt, o.T/1024) {
		t.Errorf("Dt = %v", lp.Dt)
	}
	if !almostEqual(lp.U*lp.D, 1) {
		t.Errorf("CRR must have u*d = 1, got %v", lp.U*lp.D)
	}
	if !(lp.P > 0 && lp.P < 1) {
		t.Errorf("P = %v outside (0,1)", lp.P)
	}
	if !almostEqual(lp.Disc, math.Exp(-o.Rate*lp.Dt)) {
		t.Errorf("Disc = %v", lp.Disc)
	}
	if !almostEqual(lp.Pu+lp.Pd, lp.Disc) {
		t.Errorf("Pu+Pd = %v, want Disc = %v", lp.Pu+lp.Pd, lp.Disc)
	}
}

func TestNewLatticeParamsErrors(t *testing.T) {
	o := sample()
	if _, err := NewLatticeParams(o, 0, CRR); err == nil {
		t.Error("N=0 should fail")
	}
	bad := o
	bad.Spot = -1
	if _, err := NewLatticeParams(bad, 16, CRR); err == nil {
		t.Error("invalid option should fail")
	}
	if _, err := NewLatticeParams(o, 16, Parameterisation(42)); err == nil {
		t.Error("unknown parameterisation should fail")
	}
	// Drift dominating volatility per step makes p >= 1 under CRR.
	drifty := o
	drifty.Rate = 0.9
	drifty.Sigma = 0.05
	if _, err := NewLatticeParams(drifty, 1, CRR); err == nil {
		t.Error("p outside (0,1) should fail")
	}
}

func TestMartingaleProperty(t *testing.T) {
	// p*u + (1-p)*d must equal the risk-neutral growth factor for CRR and
	// Tian; Jarrow–Rudd matches it only to O(dt^2).
	o := sample()
	for _, param := range []Parameterisation{CRR, Tian} {
		lp, err := NewLatticeParams(o, 256, param)
		if err != nil {
			t.Fatalf("%v: %v", param, err)
		}
		growth := math.Exp((o.Rate - o.Div) * lp.Dt)
		if got := lp.P*lp.U + (1-lp.P)*lp.D; !almostEqual(got, growth) {
			t.Errorf("%v: E[growth] = %.15g, want %.15g", param, got, growth)
		}
	}
	lp, err := NewLatticeParams(o, 256, JarrowRudd)
	if err != nil {
		t.Fatal(err)
	}
	growth := math.Exp((o.Rate - o.Div) * lp.Dt)
	if got := lp.P*lp.U + (1-lp.P)*lp.D; math.Abs(got-growth) > 1e-8 {
		t.Errorf("jarrow-rudd: E[growth] = %.15g too far from %.15g", got, growth)
	}
}

func TestLeafPriceRecombination(t *testing.T) {
	o := sample()
	lp, err := NewLatticeParams(o, 64, CRR)
	if err != nil {
		t.Fatal(err)
	}
	// Middle leaf of an even tree is back at the spot for CRR.
	if got := lp.LeafPrice(o.Spot, 32); !almostEqual(got, o.Spot) {
		t.Errorf("middle leaf = %v, want spot %v", got, o.Spot)
	}
	// Leaves are strictly increasing in k.
	prev := 0.0
	for k := 0; k <= 64; k++ {
		s := lp.LeafPrice(o.Spot, k)
		if s <= prev {
			t.Fatalf("leaf %d = %v not increasing (prev %v)", k, s, prev)
		}
		prev = s
	}
}

func TestLeafPriceTelescopes(t *testing.T) {
	// LeafPrice must agree with iterated multiplication by u and d.
	o := sample()
	lp, err := NewLatticeParams(o, 16, CRR)
	if err != nil {
		t.Fatal(err)
	}
	for k := 0; k <= 16; k++ {
		s := o.Spot
		for i := 0; i < k; i++ {
			s *= lp.U
		}
		for i := 0; i < 16-k; i++ {
			s *= lp.D
		}
		if got := lp.LeafPrice(o.Spot, k); math.Abs(got-s) > 1e-9*s {
			t.Errorf("leaf %d: %v vs iterated %v", k, got, s)
		}
	}
}

func TestNodeCount(t *testing.T) {
	lp := LatticeParams{Steps: 1024}
	if got := lp.NodeCount(); got != 1024*1025/2 {
		t.Errorf("NodeCount = %d", got)
	}
	// The paper's example: N=1024 gives roughly 5e5 nodes per option.
	if got := lp.NodeCount(); got < 500000 || got > 550000 {
		t.Errorf("NodeCount = %d, expected ~5e5 (paper §IV-A)", got)
	}
}

func TestLatticeParamsProperty(t *testing.T) {
	// For any reasonable contract, CRR params satisfy d < growth < u and
	// probabilities in (0,1).
	f := func(rawSigma, rawT, rawRate float64) bool {
		o := sample()
		o.Sigma = 0.05 + math.Abs(math.Mod(rawSigma, 0.95))
		o.T = 0.05 + math.Abs(math.Mod(rawT, 3))
		o.Rate = math.Mod(rawRate, 0.10)
		lp, err := NewLatticeParams(o, 128, CRR)
		if err != nil {
			return true // rejected parameter combinations are fine
		}
		growth := math.Exp((o.Rate - o.Div) * lp.Dt)
		return lp.D < growth && growth < lp.U && lp.P > 0 && lp.P < 1 &&
			lp.Pu > 0 && lp.Pd > 0 &&
			math.Abs(lp.Pu+lp.Pd-lp.Disc) <= 1e-15*lp.Disc
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
