package option

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func sample() Option {
	return Option{
		Right:  Put,
		Style:  American,
		Spot:   100,
		Strike: 105,
		Rate:   0.03,
		Sigma:  0.2,
		T:      0.5,
	}
}

func TestValidateAccepts(t *testing.T) {
	if err := sample().Validate(); err != nil {
		t.Fatalf("valid option rejected: %v", err)
	}
}

func TestValidateRejects(t *testing.T) {
	mutations := map[string]func(*Option){
		"zero spot":      func(o *Option) { o.Spot = 0 },
		"negative spot":  func(o *Option) { o.Spot = -1 },
		"inf spot":       func(o *Option) { o.Spot = math.Inf(1) },
		"zero strike":    func(o *Option) { o.Strike = 0 },
		"nan strike":     func(o *Option) { o.Strike = math.NaN() },
		"zero expiry":    func(o *Option) { o.T = 0 },
		"negative vol":   func(o *Option) { o.Sigma = -0.2 },
		"zero vol":       func(o *Option) { o.Sigma = 0 },
		"nan rate":       func(o *Option) { o.Rate = math.NaN() },
		"inf rate":       func(o *Option) { o.Rate = math.Inf(-1) },
		"negative div":   func(o *Option) { o.Div = -0.01 },
		"invalid right":  func(o *Option) { o.Right = Right(7) },
		"invalid style":  func(o *Option) { o.Style = Style(7) },
		"nan volatility": func(o *Option) { o.Sigma = math.NaN() },
	}
	for name, mutate := range mutations {
		o := sample()
		mutate(&o)
		if err := o.Validate(); err == nil {
			t.Errorf("%s: expected validation error", name)
		}
	}
}

func TestPayoff(t *testing.T) {
	call := sample()
	call.Right = Call
	put := sample()

	if got := call.Payoff(120); got != 15 {
		t.Errorf("call payoff at 120 = %v, want 15", got)
	}
	if got := call.Payoff(90); got != 0 {
		t.Errorf("call payoff at 90 = %v, want 0", got)
	}
	if got := put.Payoff(90); got != 15 {
		t.Errorf("put payoff at 90 = %v, want 15", got)
	}
	if got := put.Payoff(120); got != 0 {
		t.Errorf("put payoff at 120 = %v, want 0", got)
	}
}

func TestPayoffNonNegativeProperty(t *testing.T) {
	f := func(s float64, isCall bool) bool {
		s = math.Abs(math.Mod(s, 1e6))
		o := sample()
		if isCall {
			o.Right = Call
		}
		return o.Payoff(s) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestIntrinsicAndMoneyness(t *testing.T) {
	o := sample() // put, S=100, K=105
	if got := o.Intrinsic(); got != 5 {
		t.Errorf("intrinsic = %v, want 5", got)
	}
	if got := o.Moneyness(); !almostEqual(got, 100.0/105.0) {
		t.Errorf("moneyness = %v", got)
	}
}

func TestStringers(t *testing.T) {
	if s := sample().String(); !strings.Contains(s, "american put") {
		t.Errorf("String() = %q", s)
	}
	if Call.String() != "call" || Put.String() != "put" {
		t.Error("Right.String broken")
	}
	if European.String() != "european" || American.String() != "american" {
		t.Error("Style.String broken")
	}
	if !strings.Contains(Right(9).String(), "9") || !strings.Contains(Style(9).String(), "9") {
		t.Error("unknown enum values should print their number")
	}
	for _, p := range []Parameterisation{CRR, JarrowRudd, Tian, Parameterisation(9)} {
		if p.String() == "" {
			t.Error("empty Parameterisation string")
		}
	}
}

func almostEqual(a, b float64) bool {
	return math.Abs(a-b) <= 1e-12*math.Max(math.Abs(a), math.Abs(b))
}
