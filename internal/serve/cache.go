package serve

import (
	"container/list"
	"math"
	"strconv"
	"strings"
	"sync"

	"binopt/internal/option"
)

// Key is the canonical identity of a priced contract. Two requests that
// describe the same economics must map to the same key, so every float
// is normalised (negative zero folds onto zero; validation upstream
// guarantees no NaNs reach the cache). The lattice depth is part of the
// key so a server reconfigured to a different tree depth never serves
// stale prices.
//
// Key is the single definition of contract identity for every caching
// and placement layer: the node-local result cache keys its LRU on it,
// and the cluster router hashes Key.String() onto the consistent-hash
// ring. One definition means the two layers cannot drift — a contract
// routed to a node is the same contract that node caches.
type Key struct {
	right  option.Right
	style  option.Style
	spot   float64
	strike float64
	rate   float64
	div    float64
	sigma  float64
	t      float64
	steps  int
}

// canon folds -0 onto +0 so the two bit patterns share a key.
func canon(x float64) float64 {
	if x == 0 {
		return 0
	}
	return x
}

// KeyFor canonicalises a contract for the given lattice depth.
func KeyFor(o option.Option, steps int) Key {
	return Key{
		right:  o.Right,
		style:  o.Style,
		spot:   canon(o.Spot),
		strike: canon(o.Strike),
		rate:   canon(o.Rate),
		div:    canon(o.Div),
		sigma:  canon(o.Sigma),
		t:      canon(o.T),
		steps:  steps,
	}
}

// Steps reports the lattice depth baked into the key.
func (k Key) Steps() int { return k.steps }

// String renders the key's canonical textual form, the byte string the
// cluster tier hashes for contract placement. Floats render as exact
// hexadecimal ('x') so two economically identical contracts produce the
// same bytes and two different ones never collide textually.
func (k Key) String() string {
	hexf := func(v float64) string { return strconv.FormatFloat(v, 'x', -1, 64) }
	var b strings.Builder
	b.WriteString(k.right.String())
	b.WriteByte('|')
	b.WriteString(k.style.String())
	for _, v := range []float64{k.spot, k.strike, k.rate, k.div, k.sigma, k.t} {
		b.WriteByte('|')
		b.WriteString(hexf(v))
	}
	b.WriteByte('|')
	b.WriteString(strconv.Itoa(k.steps))
	return b.String()
}

// keyFor is the internal spelling; the exported KeyFor is the one
// definition shared with the cluster router.
func keyFor(o option.Option, steps int) Key { return KeyFor(o, steps) }

// resultCache is a fixed-capacity LRU of priced contracts. A pricing
// service sees the same quote tape repeatedly — the same chain is
// re-priced every time the curve refreshes — so a warm cache converts the
// steady-state workload from O(tree) per option to a map lookup, which is
// how the serving tier sustains the paper's 2000 options/s target on
// hardware far slower than the modelled FPGA.
type resultCache struct {
	mu  sync.Mutex
	cap int
	ll  *list.List // front = most recently used
	m   map[Key]*list.Element
}

type cacheEntry struct {
	key   Key
	price float64
}

// newResultCache returns a cache holding up to capacity entries; a
// capacity <= 0 disables caching (every lookup misses).
func newResultCache(capacity int) *resultCache {
	if capacity <= 0 {
		return nil
	}
	return &resultCache{
		cap: capacity,
		ll:  list.New(),
		m:   make(map[Key]*list.Element, capacity),
	}
}

// get returns the cached price and whether it was present, promoting the
// entry to most recently used.
func (c *resultCache) get(k Key) (float64, bool) {
	if c == nil {
		return 0, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[k]
	if !ok {
		return 0, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*cacheEntry).price, true
}

// put stores a price, evicting the least recently used entry when full.
// Non-finite prices are never cached: they indicate an engine fault that
// should not be pinned into the serving path.
func (c *resultCache) put(k Key, price float64) {
	if c == nil || math.IsNaN(price) || math.IsInf(price, 0) {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[k]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*cacheEntry).price = price
		return
	}
	el := c.ll.PushFront(&cacheEntry{key: k, price: price})
	c.m[k] = el
	if c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.m, oldest.Value.(*cacheEntry).key)
	}
}

// flush drops every cached entry, returning how many were evicted. The
// invalidation path calls it when a generation bump lands — a
// vol-surface update makes every cached price of the old generation
// suspect, and re-pricing is cheap next to serving a stale quote.
func (c *resultCache) flush() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	n := c.ll.Len()
	c.ll.Init()
	clear(c.m)
	return n
}

// len reports the number of cached entries.
func (c *resultCache) len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}
