package serve

import (
	"bytes"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"regexp"
	"strconv"
	"strings"
	"testing"
	"time"

	"binopt/internal/slo"
	"binopt/internal/telemetry"
)

// obsContracts builds n distinct contracts (distinct strikes → no cache
// collisions).
func obsContracts(n int) []Contract {
	out := make([]Contract, n)
	for i := range out {
		out[i] = Contract{
			Right: "put", Style: "american",
			Spot: 100, Strike: 90 + float64(i), Rate: 0.03, Sigma: 0.2, T: 0.5,
		}
	}
	return out
}

// TestTraceparentAdoptedFromRemote: a forwarded request's traceparent
// parents every node-side span under the remote trace ID, and the
// response echoes the trace.
func TestTraceparentAdoptedFromRemote(t *testing.T) {
	_, hs := newTestServer(t, Config{Steps: 32, Tracer: telemetry.New(512), CacheSize: -1})

	const remoteTrace = "4bf92f3577b34da6a3ce929d0e0e4736"
	body, _ := json.Marshal(PriceRequest{Contracts: obsContracts(2)})
	req, _ := http.NewRequest(http.MethodPost, hs.URL+"/v1/price", bytes.NewReader(body))
	req.Header.Set("traceparent", "00-"+remoteTrace+"-00f067aa0ba902b7-01")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	echoed := resp.Header.Get("traceparent")
	if tr, _, ok := telemetry.ParseTraceParent(echoed); !ok || tr != remoteTrace {
		t.Errorf("response traceparent = %q, want trace %s", echoed, remoteTrace)
	}

	// Every span of the request — handler, batch/queue/readback, and
	// the worker's device timeline — carries the remote trace ID.
	sresp, err := http.Get(hs.URL + "/debug/spans")
	if err != nil {
		t.Fatal(err)
	}
	defer sresp.Body.Close()
	var ex telemetry.Export
	if err := json.NewDecoder(sresp.Body).Decode(&ex); err != nil {
		t.Fatal(err)
	}
	if len(ex.Spans) == 0 {
		t.Fatal("no spans exported")
	}
	names := map[string]bool{}
	for _, sp := range ex.Spans {
		if sp.Trace != remoteTrace {
			t.Errorf("span %q trace = %q, want %s", sp.Name, sp.Trace, remoteTrace)
		}
		names[sp.Name] = true
	}
	for _, want := range []string{"POST /v1/price", "batch", "queue", "compute", "readback"} {
		if !names[want] {
			t.Errorf("no %q span exported (have %v)", want, names)
		}
	}
	if ex.NowUnixNano == 0 {
		t.Error("export has no clock reading")
	}
}

// TestTraceMintedLocally: without a traceparent header the node mints a
// trace ID and a malformed header is ignored rather than adopted.
func TestTraceMintedLocally(t *testing.T) {
	_, hs := newTestServer(t, Config{Steps: 32, Tracer: telemetry.New(256), CacheSize: -1})

	body, _ := json.Marshal(PriceRequest{Contracts: obsContracts(1)})
	req, _ := http.NewRequest(http.MethodPost, hs.URL+"/v1/price", bytes.NewReader(body))
	req.Header.Set("traceparent", "garbage-header")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	trace, _, ok := telemetry.ParseTraceParent(resp.Header.Get("traceparent"))
	if !ok {
		t.Fatalf("no valid traceparent echoed, got %q", resp.Header.Get("traceparent"))
	}
	if len(trace) != 32 || strings.Contains(trace, "garbage") {
		t.Errorf("minted trace = %q", trace)
	}
}

// TestServerTimingJoulesLedger: the per-request joules in Server-Timing
// sum across requests to the delta of binopt_modelled_joules_total, and
// the per-phase attribution telescopes to the same total.
func TestServerTimingJoulesLedger(t *testing.T) {
	_, hs := newTestServer(t, Config{Steps: 32, CacheSize: -1})

	scrapeJoules := func() (total float64, phases float64) {
		resp, err := http.Get(hs.URL + "/metrics")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		raw, _ := io.ReadAll(resp.Body)
		reTotal := regexp.MustCompile(`(?m)^binopt_modelled_joules_total (\S+)$`)
		rePhase := regexp.MustCompile(`(?m)^binopt_phase_joules_total\{phase="\w+"\} (\S+)$`)
		mt := reTotal.FindStringSubmatch(string(raw))
		if mt == nil {
			t.Fatal("no binopt_modelled_joules_total in /metrics")
		}
		total = parseFloat(t, mt[1])
		for _, m := range rePhase.FindAllStringSubmatch(string(raw), -1) {
			phases += parseFloat(t, m[1])
		}
		return total, phases
	}

	before, _ := scrapeJoules()
	var ledger float64
	for i := 0; i < 3; i++ {
		resp, _ := postJSON(t, hs.URL+"/v1/price", PriceRequest{Contracts: obsContracts(4 + i)})
		bd, err := ParseServerTiming(resp.Header.Get("Server-Timing"))
		if err != nil {
			t.Fatalf("parsing Server-Timing: %v", err)
		}
		if bd.Joules <= 0 {
			t.Fatalf("request %d reported no joules: %+v", i, bd)
		}
		ledger += bd.Joules
	}
	after, phaseSum := scrapeJoules()

	delta := after - before
	if math.Abs(delta-ledger) > 1e-9*math.Max(1, math.Abs(delta)) {
		t.Errorf("Server-Timing joules sum %.12g != modelled_joules_total delta %.12g", ledger, delta)
	}
	// The per-phase attribution telescopes to the booked total.
	if math.Abs(phaseSum-after) > 1e-9*math.Max(1, math.Abs(after)) {
		t.Errorf("phase joules sum %.12g != booked total %.12g", phaseSum, after)
	}
}

// TestDebugSpansCursor: /debug/spans pages with a cursor and never
// re-delivers.
func TestDebugSpansCursor(t *testing.T) {
	_, hs := newTestServer(t, Config{Steps: 32, Tracer: telemetry.New(512), CacheSize: -1, Node: "node7"})

	get := func(url string) telemetry.Export {
		t.Helper()
		resp, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		var ex telemetry.Export
		if err := json.NewDecoder(resp.Body).Decode(&ex); err != nil {
			t.Fatal(err)
		}
		return ex
	}

	postJSON(t, hs.URL+"/v1/price", PriceRequest{Contracts: obsContracts(2)})
	first := get(hs.URL + "/debug/spans")
	if len(first.Spans) == 0 || first.Node != "node7" {
		t.Fatalf("first page = %+v", first)
	}
	second := get(hs.URL + "/debug/spans?cursor=" + strconv.FormatUint(first.Next, 10))
	if len(second.Spans) != 0 {
		t.Errorf("cursor re-delivered %d spans", len(second.Spans))
	}

	resp, err := http.Get(hs.URL + "/debug/spans?cursor=banana")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad cursor → status %d, want 400", resp.StatusCode)
	}
}

// TestDebugSLOAndHealthz: the SLO report is served on /debug/slo, folded
// into /healthz with the clock reading the fleet aggregator needs, and
// absent (but healthy) when no monitor is configured.
func TestDebugSLOAndHealthz(t *testing.T) {
	_, hs := newTestServer(t, Config{
		Steps: 32, CacheSize: -1, Node: "node0",
		SLO: &slo.Options{LatencyThreshold: 5 * time.Second},
	})

	postJSON(t, hs.URL+"/v1/price", PriceRequest{Contracts: obsContracts(1)})

	resp, err := http.Get(hs.URL + "/debug/slo")
	if err != nil {
		t.Fatal(err)
	}
	var rep slo.Report
	if err := json.NewDecoder(resp.Body).Decode(&rep); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if !rep.Healthy || rep.Requests != 1 || len(rep.Objectives) != 2 {
		t.Errorf("slo report = %+v", rep)
	}

	hresp, err := http.Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var health map[string]any
	if err := json.NewDecoder(hresp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	hresp.Body.Close()
	if health["status"] != "ok" {
		t.Errorf("status = %v", health["status"])
	}
	if health["node"] != "node0" {
		t.Errorf("node = %v", health["node"])
	}
	if now, _ := health["now_unix_nano"].(float64); now == 0 {
		t.Error("healthz has no now_unix_nano")
	}
	if _, ok := health["slo"]; !ok {
		t.Error("healthz has no slo section")
	}

	// No monitor: /debug/slo still serves a healthy zero report.
	_, hs2 := newTestServer(t, Config{Steps: 32, CacheSize: -1})
	resp2, err := http.Get(hs2.URL + "/debug/slo")
	if err != nil {
		t.Fatal(err)
	}
	var rep2 slo.Report
	if err := json.NewDecoder(resp2.Body).Decode(&rep2); err != nil {
		t.Fatal(err)
	}
	resp2.Body.Close()
	if !rep2.Healthy || len(rep2.Objectives) != 0 {
		t.Errorf("disabled slo report = %+v", rep2)
	}
}

// TestSLOBurnSurfacesOnHealthz: a latency storm flips /healthz status to
// "burning" while the HTTP code stays 200.
func TestSLOBurnSurfacesOnHealthz(t *testing.T) {
	clock := time.Unix(1700000000, 0)
	s, hs := newTestServer(t, Config{
		Steps: 32, CacheSize: -1,
		SLO: &slo.Options{
			LatencyThreshold: time.Nanosecond, // everything is slow
			FastWindow:       2 * time.Second,
			SlowWindow:       10 * time.Second,
			Now:              func() time.Time { return clock },
		},
	})
	for i := 0; i < 20; i++ {
		s.slomon.Observe(time.Second, false)
	}
	resp, err := http.Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Errorf("burning healthz status code = %d, want 200", resp.StatusCode)
	}
	var health map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health["status"] != "burning" {
		t.Errorf("status = %v, want burning", health["status"])
	}
}

func parseFloat(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("parsing %q: %v", s, err)
	}
	return v
}
