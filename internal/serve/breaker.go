package serve

import (
	"sync"
	"time"
)

// BreakerConfig parameterises the per-shard circuit breakers. The zero
// value of every field has a sensible default. The defaults are tuned
// for a latency-SLO pricing pool: a shard failing one pricing in ten is
// already worse than routing around it, because results are
// bit-identical everywhere and the healthy shards have modelled
// headroom — degraded-but-correct beats hard failures.
type BreakerConfig struct {
	// Window is the rolling outcome window per shard (default 50
	// pricings).
	Window int
	// MinSamples is the minimum outcomes in the window before the
	// breaker may trip (default 10), so one early error on a cold shard
	// cannot open it.
	MinSamples int
	// Threshold is the windowed error rate at or above which the
	// breaker opens (default 0.1).
	Threshold float64
	// Cooldown is how long an open breaker rejects dispatch before
	// probing again (default 250ms).
	Cooldown time.Duration
	// HalfOpenSuccesses is the number of consecutive successful
	// pricings a half-open shard must serve to close again (default 8);
	// any failure while half-open re-opens immediately.
	HalfOpenSuccesses int
}

func (c BreakerConfig) withDefaults() BreakerConfig {
	if c.Window <= 0 {
		c.Window = 50
	}
	if c.MinSamples <= 0 {
		c.MinSamples = 10
	}
	if c.Threshold <= 0 {
		c.Threshold = 0.1
	}
	if c.Cooldown <= 0 {
		c.Cooldown = 250 * time.Millisecond
	}
	if c.HalfOpenSuccesses <= 0 {
		c.HalfOpenSuccesses = 8
	}
	return c
}

// breakerState is the classic three-state machine. The numeric values
// are the /metrics encoding of binopt_breaker_state.
type breakerState int

const (
	breakerClosed   breakerState = 0 // healthy, counting outcomes
	breakerOpen     breakerState = 1 // shedding: dispatch routes around the shard
	breakerHalfOpen breakerState = 2 // probing: limited traffic decides reopen/close
)

func (s breakerState) String() string {
	switch s {
	case breakerOpen:
		return "open"
	case breakerHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// breaker is one shard's health tracker: a rolling error-rate window
// driving open → half-open → closed transitions. Workers report
// outcomes; the dispatcher asks eligible() before offering work.
type breaker struct {
	cfg BreakerConfig
	now func() time.Time // injectable clock for deterministic tests

	mu       sync.Mutex
	window   []bool // ring of outcomes, true = failure
	at       int    // next ring slot
	filled   int    // occupied slots
	fails    int    // failures currently in the ring
	state    breakerState
	openedAt time.Time
	probeOK  int   // consecutive half-open successes
	opens    int64 // cumulative open transitions (metric)
}

func newBreaker(cfg BreakerConfig) *breaker {
	cfg = cfg.withDefaults()
	return &breaker{cfg: cfg, now: time.Now, window: make([]bool, cfg.Window)}
}

// record books one outcome into the ring. Caller holds b.mu.
func (b *breaker) record(failure bool) {
	if b.filled == len(b.window) {
		if b.window[b.at] {
			b.fails--
		}
	} else {
		b.filled++
	}
	b.window[b.at] = failure
	if failure {
		b.fails++
	}
	b.at = (b.at + 1) % len(b.window)
}

// resetWindow clears the ring. Caller holds b.mu.
func (b *breaker) resetWindow() {
	b.at, b.filled, b.fails = 0, 0, 0
}

// trip opens the breaker. Caller holds b.mu.
func (b *breaker) trip() {
	b.state = breakerOpen
	b.openedAt = b.now()
	b.opens++
	b.resetWindow()
}

// eligible reports whether the dispatcher may offer this shard new
// work. An open breaker whose cooldown has elapsed transitions to
// half-open here — the next dispatched batch is the probe.
func (b *breaker) eligible() bool {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerOpen:
		if b.now().Sub(b.openedAt) < b.cfg.Cooldown {
			return false
		}
		b.state = breakerHalfOpen
		b.probeOK = 0
		return true
	default:
		return true
	}
}

// onSuccess books one successful pricing. Enough consecutive successes
// close a half-open breaker.
func (b *breaker) onSuccess() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerHalfOpen:
		b.probeOK++
		if b.probeOK >= b.cfg.HalfOpenSuccesses {
			b.state = breakerClosed
			b.resetWindow()
		}
	case breakerClosed:
		b.record(false)
	}
}

// onFailure books one failed pricing. A half-open probe failure
// re-opens immediately; a closed breaker opens when the windowed error
// rate crosses the threshold; a failure while already open (a job that
// was queued before the trip) extends the outage.
func (b *breaker) onFailure() {
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case breakerHalfOpen:
		b.trip()
	case breakerOpen:
		b.openedAt = b.now()
	default:
		b.record(true)
		if b.filled >= b.cfg.MinSamples && float64(b.fails)/float64(b.filled) >= b.cfg.Threshold {
			b.trip()
		}
	}
}

// snapshot returns the current state and cumulative open count.
func (b *breaker) snapshot() (breakerState, int64) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state, b.opens
}

// Breaker is the exported handle on the shard circuit-breaker machinery,
// for layers above the worker pool that track health per remote — the
// cluster router runs one per member node, fed by heartbeats and forward
// outcomes, exactly as the pool runs one per shard. Same state machine,
// same defaults, one implementation.
type Breaker struct{ b *breaker }

// NewBreaker builds a breaker; zero-valued config fields take the
// BreakerConfig defaults.
func NewBreaker(cfg BreakerConfig) *Breaker { return &Breaker{b: newBreaker(cfg)} }

// Eligible reports whether the guarded target may be offered new work.
// An open breaker whose cooldown has elapsed transitions to half-open
// here — the next request is the probe.
func (b *Breaker) Eligible() bool { return b.b.eligible() }

// OnSuccess books one successful outcome.
func (b *Breaker) OnSuccess() { b.b.onSuccess() }

// OnFailure books one failed outcome.
func (b *Breaker) OnFailure() { b.b.onFailure() }

// State reports the breaker's current state ("closed", "open",
// "half-open") and its numeric /metrics encoding (0, 1, 2).
func (b *Breaker) State() (string, int) {
	st, _ := b.b.snapshot()
	return st.String(), int(st)
}

// Opens reports the cumulative number of open transitions.
func (b *Breaker) Opens() int64 {
	_, opens := b.b.snapshot()
	return opens
}
