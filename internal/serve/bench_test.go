package serve

import (
	"context"
	"fmt"
	"runtime"
	"testing"
	"time"

	"binopt/internal/lattice"
	"binopt/internal/option"
	"binopt/internal/telemetry"
)

// BenchmarkServeBatch measures the serving overhead per option — cache
// lookup, admission, micro-batching, dispatch, result delivery — with an
// instant pricing kernel and the cache disabled, i.e. the queue machinery
// itself.
func BenchmarkServeBatch(b *testing.B) {
	s, err := New(Config{
		Steps: 16, MaxBatch: 64, FlushInterval: 200 * time.Microsecond,
		CacheSize: -1, // disable: measure the queue, not the map
		Backends:  stubBackends(2, 64),
		PriceFunc: stubPrice,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close(context.Background())

	batch := make([]option.Option, 64)
	for i := range batch {
		batch[i] = testOption(i)
	}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.PriceOptions(ctx, batch); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N*len(batch))/b.Elapsed().Seconds(), "options/s")
}

// BenchmarkServeBatchTraced is BenchmarkServeBatch with the span ring
// live — the delta between the two is the whole cost of tracing on the
// queue path (acceptance: under 5% of options/s).
func BenchmarkServeBatchTraced(b *testing.B) {
	s, err := New(Config{
		Steps: 16, MaxBatch: 64, FlushInterval: 200 * time.Microsecond,
		CacheSize: -1,
		Backends:  stubBackends(2, 64),
		PriceFunc: stubPrice,
		Tracer:    telemetry.New(65536),
	})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close(context.Background())

	batch := make([]option.Option, 64)
	for i := range batch {
		batch[i] = testOption(i)
	}
	ctx := context.Background()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.PriceOptions(ctx, batch); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N*len(batch))/b.Elapsed().Seconds(), "options/s")
}

// BenchmarkServeCacheHit measures the steady-state fast path: every
// option served straight from the LRU.
func BenchmarkServeCacheHit(b *testing.B) {
	s, err := New(Config{
		Steps: 16, MaxBatch: 64, FlushInterval: 200 * time.Microsecond,
		Backends:  stubBackends(2, 64),
		PriceFunc: stubPrice,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer s.Close(context.Background())

	batch := make([]option.Option, 64)
	for i := range batch {
		batch[i] = testOption(i)
	}
	ctx := context.Background()
	if _, err := s.PriceOptions(ctx, batch); err != nil { // prime
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.PriceOptions(ctx, batch); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(b.N*len(batch))/b.Elapsed().Seconds(), "options/s")
}

// BenchmarkPriceAmericanPut1024 is the lattice hot path at the paper's
// evaluation depth — the cold-path cost every cache miss pays.
func BenchmarkPriceAmericanPut1024(b *testing.B) {
	eng, err := lattice.NewEngine(1024)
	if err != nil {
		b.Fatal(err)
	}
	o := option.Option{
		Right: option.Put, Style: option.American,
		Spot: 100, Strike: 105, Rate: 0.03, Sigma: 0.2, T: 0.5,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Price(o); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	b.ReportMetric(b.Elapsed().Seconds()/float64(b.N)*1e3, "ms/option")
}

// BenchmarkPriceBatchQuad1024 is the cold path through the
// quad-interleaved batch pricer at the paper's evaluation depth: 64
// distinct contracts per call. The one-worker case isolates the
// interleave itself — its options/s over BenchmarkPriceAmericanPut1024
// is the single-core speedup of sharing one backward sweep across four
// lanes; the GOMAXPROCS case adds worker parallelism on top (omitted
// when GOMAXPROCS is 1).
func BenchmarkPriceBatchQuad1024(b *testing.B) {
	eng, err := lattice.NewEngine(1024)
	if err != nil {
		b.Fatal(err)
	}
	batch := make([]option.Option, 64)
	for i := range batch {
		batch[i] = option.Option{
			Right: option.Put, Style: option.American,
			Spot: 100, Strike: 85 + 0.5*float64(i),
			Rate: 0.03, Sigma: 0.2 + 0.002*float64(i%8), T: 0.5,
		}
	}
	counts := []int{1}
	if p := runtime.GOMAXPROCS(0); p > 1 {
		counts = append(counts, p)
	}
	for _, workers := range counts {
		b.Run(fmt.Sprintf("workers=%d", workers), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := eng.PriceBatch(batch, workers); err != nil {
					b.Fatal(err)
				}
			}
			b.StopTimer()
			b.ReportMetric(float64(b.N*len(batch))/b.Elapsed().Seconds(), "options/s")
		})
	}
}
