package serve

import (
	"sync"
	"testing"
	"time"
)

// fakeClock drives a breaker's injectable clock so transition tests are
// deterministic schedules, not sleeps.
type fakeClock struct {
	mu sync.Mutex
	t  time.Time
}

func (c *fakeClock) now() time.Time {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.t
}

func (c *fakeClock) advance(d time.Duration) {
	c.mu.Lock()
	c.t = c.t.Add(d)
	c.mu.Unlock()
}

func testBreaker(cfg BreakerConfig) (*breaker, *fakeClock) {
	b := newBreaker(cfg)
	clk := &fakeClock{t: time.Unix(1000, 0)}
	b.now = clk.now
	return b, clk
}

func wantState(t *testing.T, b *breaker, want breakerState) {
	t.Helper()
	if st, _ := b.snapshot(); st != want {
		t.Fatalf("breaker state = %v, want %v", st, want)
	}
}

// TestBreakerStaysClosedBelowMinSamples: a cold shard's first errors
// must not open the breaker before the window has evidence.
func TestBreakerStaysClosedBelowMinSamples(t *testing.T) {
	b, _ := testBreaker(BreakerConfig{Window: 20, MinSamples: 10, Threshold: 0.1})
	for i := 0; i < 9; i++ {
		b.onFailure()
	}
	wantState(t, b, breakerClosed)
	if !b.eligible() {
		t.Fatal("closed breaker must stay eligible")
	}
}

// TestBreakerTripClosesAfterProbe walks the full state machine on a
// deterministic schedule: threshold trip, cooldown rejection, half-open
// probe, close on enough successes.
func TestBreakerTripClosesAfterProbe(t *testing.T) {
	cfg := BreakerConfig{
		Window: 10, MinSamples: 4, Threshold: 0.5,
		Cooldown: time.Second, HalfOpenSuccesses: 3,
	}
	b, clk := testBreaker(cfg)

	b.onSuccess()
	b.onSuccess()
	b.onFailure()
	wantState(t, b, breakerClosed) // 1/3 failed but below MinSamples
	b.onFailure()
	wantState(t, b, breakerOpen) // 2/4 = 0.5 >= threshold

	if b.eligible() {
		t.Fatal("open breaker inside cooldown must not be eligible")
	}
	clk.advance(cfg.Cooldown)
	if !b.eligible() {
		t.Fatal("open breaker past cooldown must turn half-open and accept a probe")
	}
	wantState(t, b, breakerHalfOpen)

	b.onSuccess()
	b.onSuccess()
	wantState(t, b, breakerHalfOpen) // 2 of 3 required successes
	b.onSuccess()
	wantState(t, b, breakerClosed)

	// The close must have reset the window: the pre-trip failures may
	// not count against fresh outcomes.
	b.onFailure()
	b.onFailure()
	b.onFailure()
	b.onSuccess()
	// 3/4 >= 0.5 with MinSamples met: trips again on fresh evidence.
	b.onFailure()
	wantState(t, b, breakerOpen)
}

// TestBreakerHalfOpenFailureReopens: one failed probe re-opens
// immediately and counts a second open transition.
func TestBreakerHalfOpenFailureReopens(t *testing.T) {
	cfg := BreakerConfig{Window: 8, MinSamples: 2, Threshold: 0.5, Cooldown: time.Second}
	b, clk := testBreaker(cfg)
	b.onFailure()
	b.onFailure()
	wantState(t, b, breakerOpen)

	clk.advance(cfg.Cooldown)
	if !b.eligible() {
		t.Fatal("want half-open probe after cooldown")
	}
	b.onFailure()
	wantState(t, b, breakerOpen)
	if _, opens := b.snapshot(); opens != 2 {
		t.Fatalf("opens = %d, want 2", opens)
	}
	if b.eligible() {
		t.Fatal("re-opened breaker must reject until a fresh cooldown elapses")
	}
}

// TestBreakerOpenFailureExtendsOutage: stragglers failing on an already
// open shard (jobs queued before the trip) push the cooldown out.
func TestBreakerOpenFailureExtendsOutage(t *testing.T) {
	cfg := BreakerConfig{Window: 8, MinSamples: 2, Threshold: 0.5, Cooldown: time.Second}
	b, clk := testBreaker(cfg)
	b.onFailure()
	b.onFailure()
	wantState(t, b, breakerOpen)

	clk.advance(cfg.Cooldown)
	b.onFailure() // straggler: outage clock restarts
	if b.eligible() {
		t.Fatal("extended outage must keep rejecting")
	}
	clk.advance(cfg.Cooldown)
	if !b.eligible() {
		t.Fatal("want probe after the extended cooldown")
	}
}

// TestBreakerWindowSlides: outcomes age out of the ring, so an old
// error burst cannot trip the breaker after the shard recovers.
func TestBreakerWindowSlides(t *testing.T) {
	b, _ := testBreaker(BreakerConfig{Window: 4, MinSamples: 4, Threshold: 0.5})
	b.onFailure()
	b.onSuccess()
	b.onSuccess()
	b.onSuccess()
	wantState(t, b, breakerClosed) // 1/4 < 0.5
	// Four more successes evict the failure entirely...
	for i := 0; i < 4; i++ {
		b.onSuccess()
	}
	// ...so one fresh failure is 1/4 again, not 2/4.
	b.onFailure()
	wantState(t, b, breakerClosed)
	b.onFailure()
	wantState(t, b, breakerOpen) // 2/4 of fresh outcomes
}
