package serve

import (
	"encoding/json"
	"testing"

	"binopt/internal/option"
)

// TestInvalidateEndpoint drives the market-data invalidation path over
// HTTP: a priced contract is served from cache until a generation bump
// lands, after which it is re-priced; stale bumps are idempotent no-ops.
func TestInvalidateEndpoint(t *testing.T) {
	s, hs := newTestServer(t, Config{Steps: 64, CacheSize: 128})

	o := option.Option{
		Right: option.Put, Style: option.American,
		Spot: 100, Strike: 105, Rate: 0.03, Sigma: 0.2, T: 0.5,
	}
	price := func() Result {
		resp, body := postJSON(t, hs.URL+"/v1/price", PriceRequest{Contracts: []Contract{FromOption(o)}})
		if resp.StatusCode != 200 {
			t.Fatalf("price: %d %s", resp.StatusCode, body)
		}
		var pr PriceResponse
		if err := json.Unmarshal(body, &pr); err != nil {
			t.Fatalf("decode: %v", err)
		}
		return pr.Results[0]
	}

	if r := price(); r.Cached {
		t.Fatal("first pricing reported cached")
	}
	if r := price(); !r.Cached {
		t.Fatal("second pricing missed the cache")
	}

	// Explicit bump to generation 3: applied, cache flushed.
	resp, body := postJSON(t, hs.URL+"/v1/invalidate", InvalidateRequest{Generation: 3, Origin: "test"})
	var ir InvalidateResponse
	if err := json.Unmarshal(body, &ir); err != nil || resp.StatusCode != 200 {
		t.Fatalf("invalidate: %d %s (%v)", resp.StatusCode, body, err)
	}
	if !ir.Applied || ir.Generation != 3 {
		t.Fatalf("invalidate = %+v, want applied gen 3", ir)
	}
	if r := price(); r.Cached {
		t.Fatal("cache served across a generation bump")
	}

	// Stale re-delivery (gossip duplicate): no-op, warm cache survives.
	_, body = postJSON(t, hs.URL+"/v1/invalidate", InvalidateRequest{Generation: 2})
	if err := json.Unmarshal(body, &ir); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if ir.Applied || ir.Generation != 3 {
		t.Fatalf("stale bump = %+v, want not applied at gen 3", ir)
	}
	if r := price(); !r.Cached {
		t.Fatal("stale bump dumped the warm cache")
	}

	// Generation 0 means "bump past current" — the curl spelling.
	_, body = postJSON(t, hs.URL+"/v1/invalidate", InvalidateRequest{})
	if err := json.Unmarshal(body, &ir); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !ir.Applied || ir.Generation != 4 {
		t.Fatalf("auto bump = %+v, want applied gen 4", ir)
	}
	if s.CacheGeneration() != 4 {
		t.Fatalf("CacheGeneration = %d, want 4", s.CacheGeneration())
	}
}
