package serve

import (
	"errors"
	"sync"
	"time"

	"binopt/internal/option"
)

// ErrClosed is returned for work submitted after shutdown began.
var ErrClosed = errors.New("serve: server is shutting down")

// ErrSaturated is returned when admission would exceed the configured
// queue depth; HTTP maps it to 429 with a Retry-After computed from the
// modelled drain rate.
var ErrSaturated = errors.New("serve: pricing queue saturated")

// ErrBatchTooLarge is the permanent form of saturation: the request's
// cache-missing contracts alone exceed the queue depth, so retrying can
// never help. HTTP maps it to 413 instead of 429 + Retry-After.
var ErrBatchTooLarge = errors.New("serve: batch exceeds queue capacity")

// job is one cache-missing contract travelling through the batcher to a
// backend shard. done is buffered so a worker never blocks on a client
// that gave up waiting.
//
// The four timestamps mark the phase boundaries of the option's life:
// enqueued→flushed is batch assembly, flushed→picked is shard queue
// wait, picked→computed is compute; the requester adds readback when it
// receives the result. flushed is written by the dispatcher and picked/
// computed by the worker, all strictly before the send on done, so the
// requester reads them race-free after the receive.
type job struct {
	opt      option.Option
	key      Key
	req      uint64 // telemetry request group (0 when tracing is off)
	trace    string // distributed trace ID ("" when untraced)
	seq      int    // index within the originating request
	enqueued time.Time
	flushed  time.Time
	picked   time.Time
	computed time.Time
	done     chan jobResult
	// retries counts failover re-dispatches after failed pricing
	// attempts. Only the owning worker (exactly one at a time — a job
	// is re-dispatched only after its current shard gave up on it) and
	// the backoff timer touch it, strictly before the next send, so the
	// requester reads it race-free from the jobResult.
	retries int
}

type jobResult struct {
	price   float64
	backend string
	joules  float64
	retries int // failover re-dispatches this option survived
	err     error
}

// batcher implements dynamic micro-batching, the same discipline an
// inference server uses: requests accumulate in a buffer that is flushed
// to a backend either when it reaches maxBatch options (size trigger) or
// when the oldest request has waited flushInterval (deadline trigger),
// whichever comes first. Batching amortises dispatch and models the
// paper's observation that accelerators only approach peak throughput on
// grouped workloads (§V-C saturation).
type batcher struct {
	maxBatch int
	interval time.Duration
	dispatch func([]*job)

	mu     sync.Mutex
	buf    []*job
	timer  *time.Timer
	closed bool
}

func newBatcher(maxBatch int, interval time.Duration, dispatch func([]*job)) *batcher {
	return &batcher{
		maxBatch: maxBatch,
		interval: interval,
		dispatch: dispatch,
		buf:      make([]*job, 0, maxBatch),
	}
}

// add enqueues one job. The size trigger flushes inline on the caller's
// goroutine so backpressure from a full backend propagates naturally to
// the producer.
func (b *batcher) add(j *job) error {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return ErrClosed
	}
	b.buf = append(b.buf, j)
	if len(b.buf) >= b.maxBatch {
		batch := b.take()
		b.mu.Unlock()
		b.dispatch(batch)
		return nil
	}
	if len(b.buf) == 1 {
		// First job in an empty buffer arms the deadline trigger.
		b.timer = time.AfterFunc(b.interval, b.deadlineFlush)
	}
	b.mu.Unlock()
	return nil
}

// take detaches the buffer and disarms the timer. Caller holds b.mu.
func (b *batcher) take() []*job {
	batch := b.buf
	b.buf = make([]*job, 0, b.maxBatch)
	if b.timer != nil {
		b.timer.Stop()
		b.timer = nil
	}
	return batch
}

// deadlineFlush fires on the timer goroutine. A concurrent size-trigger
// flush may have emptied the buffer already; the empty check makes the
// stale fire harmless.
func (b *batcher) deadlineFlush() {
	b.mu.Lock()
	if b.closed || len(b.buf) == 0 {
		b.mu.Unlock()
		return
	}
	batch := b.take()
	b.mu.Unlock()
	b.dispatch(batch)
}

// close stops accepting work and flushes whatever is buffered, so no
// admitted job is ever dropped during graceful shutdown.
func (b *batcher) close() {
	b.mu.Lock()
	if b.closed {
		b.mu.Unlock()
		return
	}
	b.closed = true
	batch := b.take()
	b.mu.Unlock()
	if len(batch) > 0 {
		b.dispatch(batch)
	}
}

// pendingLen reports the number of buffered (not yet flushed) jobs.
func (b *batcher) pendingLen() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return len(b.buf)
}
