package serve

import (
	"encoding/json"
	"math"
	"net/http"
	"strings"
	"testing"

	"binopt/internal/lattice"
	"binopt/internal/option"
	"binopt/internal/scenario"
)

// scenarioTestBook builds a deterministic mixed book spanning rights,
// styles and signed quantities.
func scenarioTestBook(n int) []ScenarioPosition {
	book := make([]ScenarioPosition, n)
	for i := range book {
		right := "call"
		if i%2 == 1 {
			right = "put"
		}
		style := "european"
		if i%3 == 0 {
			style = "american"
		}
		qty := float64(1 + i%5)
		if i%4 == 3 {
			qty = -qty
		}
		book[i] = ScenarioPosition{
			Contract: Contract{
				Right: right, Style: style,
				Spot:   95 + float64(i%7)*2.5,
				Strike: 100 - float64(i%5)*3,
				Rate:   0.01 + float64(i%3)*0.01,
				Div:    float64(i%2) * 0.01,
				Sigma:  0.15 + float64(i%6)*0.04,
				T:      0.25 + float64(i%4)*0.25,
			},
			Quantity: qty,
		}
	}
	return book
}

// TestScenariosEndToEndBitIdentical drives a grid revaluation through
// the HTTP endpoint and rebuilds every number serially on the reference
// lattice: per-scenario values, base value, net Greeks and the risk
// quantiles must all match bit for bit.
func TestScenariosEndToEndBitIdentical(t *testing.T) {
	const steps = 64
	book := scenarioTestBook(8)
	grid := &scenario.GridSpec{
		Spot: scenario.Axis{From: 0.85, To: 1.15, N: 4},
		Vol:  scenario.Axis{From: 0.9, To: 1.3, N: 3},
		Rate: scenario.Axis{From: -0.01, To: 0.01, N: 3},
	}
	quantiles := []float64{0.9, 0.99}

	_, hs := newTestServer(t, Config{Steps: steps})
	resp, body := postJSON(t, hs.URL+"/v1/scenarios", ScenarioRequest{
		Portfolio: book, Grid: grid, Quantiles: quantiles,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var got ScenarioResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}

	shocks, err := grid.Shocks()
	if err != nil {
		t.Fatalf("grid: %v", err)
	}
	if len(got.Scenarios) != len(shocks) {
		t.Fatalf("got %d scenarios, want %d", len(got.Scenarios), len(shocks))
	}
	if got.Steps != steps || got.Cached || got.Backend == "" || got.Backend == "cache" {
		t.Fatalf("unexpected response envelope: %+v", got)
	}

	// Serial reference: one scalar engine, one contract at a time, the
	// engine's documented accumulation order.
	eng, err := lattice.NewEngine(steps)
	if err != nil {
		t.Fatalf("engine: %v", err)
	}
	opts := make([]option.Option, len(book))
	for i, p := range book {
		o, err := p.Contract.ToOption()
		if err != nil {
			t.Fatalf("contract %d: %v", i, err)
		}
		opts[i] = o
	}
	basePrices, baseGreeks, err := eng.PriceAndGreeksBatch(opts, 1)
	if err != nil {
		t.Fatalf("base reference: %v", err)
	}
	var wantBase float64
	var wantG lattice.Greeks
	for i, p := range book {
		q := p.Quantity
		wantBase += q * basePrices[i]
		wantG.Delta += q * baseGreeks[i].Delta
		wantG.Gamma += q * baseGreeks[i].Gamma
		wantG.Theta += q * baseGreeks[i].Theta
		wantG.Vega += q * baseGreeks[i].Vega
		wantG.Rho += q * baseGreeks[i].Rho
	}
	if math.Float64bits(got.BaseValue) != math.Float64bits(wantBase) {
		t.Errorf("base value %v != reference %v", got.BaseValue, wantBase)
	}
	if !got.HasGreeks || got.Greeks == nil {
		t.Fatalf("expected greeks in response")
	}
	gotG := lattice.Greeks{Delta: got.Greeks.Delta, Gamma: got.Greeks.Gamma, Theta: got.Greeks.Theta, Vega: got.Greeks.Vega, Rho: got.Greeks.Rho}
	if gotG != wantG {
		t.Errorf("net greeks %+v != reference %+v", gotG, wantG)
	}

	pnl := make([]float64, len(shocks))
	for si, sh := range shocks {
		var want float64
		for _, p := range book {
			o, _ := p.Contract.ToOption()
			price, err := eng.Price(sh.Apply(o))
			if err != nil {
				t.Fatalf("scenario %d reference: %v", si, err)
			}
			want += p.Quantity * price
		}
		if math.Float64bits(got.Scenarios[si].Value) != math.Float64bits(want) {
			t.Fatalf("scenario %d (%s): value %v != serial reference %v",
				si, got.Scenarios[si].Label, got.Scenarios[si].Value, want)
		}
		wantPnL := want - wantBase
		if math.Float64bits(got.Scenarios[si].PnL) != math.Float64bits(wantPnL) {
			t.Fatalf("scenario %d: pnl %v != %v", si, got.Scenarios[si].PnL, wantPnL)
		}
		pnl[si] = wantPnL
	}

	wantRisk, err := scenario.RiskMeasures(pnl, quantiles)
	if err != nil {
		t.Fatalf("risk reference: %v", err)
	}
	if len(got.Risk) != len(wantRisk) {
		t.Fatalf("got %d risk measures, want %d", len(got.Risk), len(wantRisk))
	}
	for i := range wantRisk {
		if got.Risk[i] != wantRisk[i] {
			t.Errorf("risk[%d]: %+v != %+v", i, got.Risk[i], wantRisk[i])
		}
	}
	if got.Evaluations != int64(5*len(book)+len(shocks)*len(book)) {
		t.Errorf("evaluations %d, want %d", got.Evaluations, 5*len(book)+len(shocks)*len(book))
	}
	if got.ModelledJoules <= 0 {
		t.Errorf("expected nonzero modelled joules on an engine backend, got %v", got.ModelledJoules)
	}
	if resp.Header.Get("Server-Timing") == "" || !strings.Contains(resp.Header.Get("Server-Timing"), "joules;dur=") {
		t.Errorf("missing joules slot in Server-Timing: %q", resp.Header.Get("Server-Timing"))
	}
}

// TestScenariosCacheAndInvalidate pins the scenario cache lifecycle: a
// repeated request is served from cache with identical numbers and zero
// fresh energy, and a market-data generation bump flushes it.
func TestScenariosCacheAndInvalidate(t *testing.T) {
	s, hs := newTestServer(t, Config{Steps: 32})
	req := ScenarioRequest{
		Portfolio: scenarioTestBook(4),
		Shocks: []ShockJSON{
			{RateAdd: 0.01},
			{SpotMul: f64p(0.9), VolMul: f64p(1.2)},
		},
	}

	_, body1 := postJSON(t, hs.URL+"/v1/scenarios", req)
	var first ScenarioResponse
	if err := json.Unmarshal(body1, &first); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if first.Cached {
		t.Fatalf("first request must miss the cache")
	}

	_, body2 := postJSON(t, hs.URL+"/v1/scenarios", req)
	var second ScenarioResponse
	if err := json.Unmarshal(body2, &second); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !second.Cached || second.Backend != "cache" {
		t.Fatalf("second request should hit the cache: %+v", second)
	}
	if second.ModelledJoules != 0 {
		t.Errorf("cache hit booked %v joules", second.ModelledJoules)
	}
	if math.Float64bits(second.BaseValue) != math.Float64bits(first.BaseValue) ||
		len(second.Scenarios) != len(first.Scenarios) {
		t.Fatalf("cached response differs from original")
	}
	for i := range first.Scenarios {
		if second.Scenarios[i] != first.Scenarios[i] {
			t.Fatalf("cached scenario %d differs: %+v != %+v", i, second.Scenarios[i], first.Scenarios[i])
		}
	}
	if hits := s.metrics.scenarioCacheHits.Load(); hits != 1 {
		t.Errorf("scenario cache hits = %d, want 1", hits)
	}

	// A generation bump must flush memoised revaluations too.
	if !s.Invalidate(s.CacheGeneration() + 1) {
		t.Fatalf("invalidate did not apply")
	}
	_, body3 := postJSON(t, hs.URL+"/v1/scenarios", req)
	var third ScenarioResponse
	if err := json.Unmarshal(body3, &third); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if third.Cached {
		t.Fatalf("post-invalidation request must miss the cache")
	}
	if math.Float64bits(third.BaseValue) != math.Float64bits(first.BaseValue) {
		t.Errorf("repriced base value diverged: %v != %v", third.BaseValue, first.BaseValue)
	}
}

func f64p(v float64) *float64 { return &v }

// TestScenariosSkipGreeks pins the router-facing contract: skipping the
// Greeks pass suppresses sensitivities without changing a single value
// bit, and books fewer evaluations.
func TestScenariosSkipGreeks(t *testing.T) {
	_, hs := newTestServer(t, Config{Steps: 32, CacheSize: -1})
	req := ScenarioRequest{
		Portfolio: scenarioTestBook(5),
		Shocks:    []ShockJSON{{SpotMul: f64p(1.1)}, {SpotMul: f64p(0.9)}},
	}
	_, fullBody := postJSON(t, hs.URL+"/v1/scenarios", req)
	req.SkipGreeks = true
	_, skipBody := postJSON(t, hs.URL+"/v1/scenarios", req)

	var full, skip ScenarioResponse
	if err := json.Unmarshal(fullBody, &full); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if err := json.Unmarshal(skipBody, &skip); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if !full.HasGreeks || full.Greeks == nil {
		t.Fatalf("full request should carry greeks")
	}
	if skip.HasGreeks || skip.Greeks != nil {
		t.Fatalf("skip_greeks response still carries greeks")
	}
	if math.Float64bits(skip.BaseValue) != math.Float64bits(full.BaseValue) {
		t.Errorf("skip_greeks changed the base value: %v != %v", skip.BaseValue, full.BaseValue)
	}
	for i := range full.Scenarios {
		if skip.Scenarios[i] != full.Scenarios[i] {
			t.Errorf("skip_greeks changed scenario %d: %+v != %+v", i, skip.Scenarios[i], full.Scenarios[i])
		}
	}
	if skip.Evaluations >= full.Evaluations {
		t.Errorf("skip_greeks should book fewer evaluations: %d >= %d", skip.Evaluations, full.Evaluations)
	}
}

// TestScenariosEmptyBook pins the endpoint's empty-book convention: a
// valid request, the documented zero report.
func TestScenariosEmptyBook(t *testing.T) {
	_, hs := newTestServer(t, Config{Steps: 32})
	resp, body := postJSON(t, hs.URL+"/v1/scenarios", ScenarioRequest{
		Shocks: []ShockJSON{{SpotMul: f64p(0.8)}, {SpotMul: f64p(1.2)}},
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("empty book should be valid, got %d: %s", resp.StatusCode, body)
	}
	var got ScenarioResponse
	if err := json.Unmarshal(body, &got); err != nil {
		t.Fatalf("unmarshal: %v", err)
	}
	if got.BaseValue != 0 || got.Evaluations != 0 {
		t.Errorf("empty book should value to zero with no evaluations: %+v", got)
	}
	for _, sv := range got.Scenarios {
		if sv.Value != 0 || sv.PnL != 0 {
			t.Errorf("empty book scenario %q has nonzero value", sv.Label)
		}
	}
	for _, rm := range got.Risk {
		if rm.VaR != 0 || rm.ES != 0 {
			t.Errorf("empty book risk should be zero: %+v", rm)
		}
	}
}

// TestScenariosBadRequests walks the endpoint's 4xx grammar.
func TestScenariosBadRequests(t *testing.T) {
	_, hs := newTestServer(t, Config{Steps: 32})
	cases := []struct {
		name string
		body any
	}{
		{"no shocks or grid", ScenarioRequest{Portfolio: scenarioTestBook(1)}},
		{"both shocks and grid", ScenarioRequest{
			Portfolio: scenarioTestBook(1),
			Shocks:    []ShockJSON{{RateAdd: 0.01}},
			Grid:      &scenario.GridSpec{Rate: scenario.Axis{From: -0.01, To: 0.01, N: 3}},
		}},
		{"bad contract", ScenarioRequest{
			Portfolio: []ScenarioPosition{{Contract: Contract{Right: "swap", Style: "european", Spot: 100, Strike: 100, Sigma: 0.2, T: 1}}},
			Shocks:    []ShockJSON{{RateAdd: 0.01}},
		}},
		{"bad shock", ScenarioRequest{
			Portfolio: scenarioTestBook(1),
			Shocks:    []ShockJSON{{SpotMul: f64p(-1)}},
		}},
		{"bad quantile", ScenarioRequest{
			Portfolio: scenarioTestBook(1),
			Shocks:    []ShockJSON{{RateAdd: 0.01}},
			Quantiles: []float64{1.5},
		}},
		{"oversized grid", ScenarioRequest{
			Portfolio: scenarioTestBook(1),
			Grid: &scenario.GridSpec{
				Spot: scenario.Axis{From: 0.5, To: 1.5, N: 2000},
				Vol:  scenario.Axis{From: 0.5, To: 1.5, N: 2000},
			},
		}},
	}
	for _, tc := range cases {
		resp, body := postJSON(t, hs.URL+"/v1/scenarios", tc.body)
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400 (%s)", tc.name, resp.StatusCode, body)
		}
	}

	getResp, err := http.Get(hs.URL + "/v1/scenarios")
	if err != nil {
		t.Fatalf("GET: %v", err)
	}
	getResp.Body.Close()
	if getResp.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET status %d, want 405", getResp.StatusCode)
	}

	// Non-finite quantities cannot ride JSON, but the router calls
	// Resolve on already-decoded requests; the guard must hold there.
	bad := ScenarioRequest{
		Portfolio: []ScenarioPosition{{Contract: scenarioTestBook(1)[0].Contract, Quantity: math.Inf(1)}},
		Shocks:    []ShockJSON{{RateAdd: 0.01}},
	}
	if _, _, _, err := bad.Resolve(); err == nil {
		t.Errorf("Resolve accepted an infinite quantity")
	}
}

// TestScenariosMetrics checks the binopt_scenario_* exposition lines
// move with traffic.
func TestScenariosMetrics(t *testing.T) {
	_, hs := newTestServer(t, Config{Steps: 32})
	req := ScenarioRequest{
		Portfolio: scenarioTestBook(3),
		Shocks:    []ShockJSON{{RateAdd: 0.01}, {RateAdd: -0.01}},
	}
	postJSON(t, hs.URL+"/v1/scenarios", req)
	postJSON(t, hs.URL+"/v1/scenarios", req) // cache hit

	resp, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatalf("GET /metrics: %v", err)
	}
	defer resp.Body.Close()
	page := readAll(t, resp)
	for _, want := range []string{
		"binopt_scenario_requests_total 2",
		"binopt_scenario_cache_hits_total 1",
		"binopt_scenario_shocks_total 2",
		"binopt_scenario_evaluations_total 21", // 5*3 greeks + 2*3 scenario contracts
		"binopt_scenario_modelled_joules_total",
		"binopt_scenario_latency_seconds_mean",
		`binopt_requests_total{endpoint="scenarios"} 2`,
	} {
		if !strings.Contains(page, want) {
			t.Errorf("metrics page missing %q", want)
		}
	}
}

func readAll(t *testing.T, resp *http.Response) string {
	t.Helper()
	var sb strings.Builder
	buf := make([]byte, 32<<10)
	for {
		n, err := resp.Body.Read(buf)
		sb.Write(buf[:n])
		if err != nil {
			break
		}
	}
	return sb.String()
}
