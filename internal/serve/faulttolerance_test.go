package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"binopt/internal/faults"
	"binopt/internal/option"
	"binopt/internal/workload"
)

// faultyPrice wraps a pricing kernel with an injector hook, the same
// composition pricesrvd arms on real engines.
func faultyPrice(hook func() error, kernel func(option.Option) (float64, error)) func(option.Option) (float64, error) {
	return func(o option.Option) (float64, error) {
		if err := hook(); err != nil {
			return 0, err
		}
		return kernel(o)
	}
}

// TestFailoverAbsorbsShardFaults is the acceptance scenario: one shard
// of a two-shard pool fails 20% of its pricings, and the paper's
// 2000-put chain must still complete with zero client-visible errors
// and prices bit-identical to the healthy kernel, with the outage
// observable — retries counted, the flaky shard's breaker open on
// /healthz and /metrics, and the modelled drain rate behind Retry-After
// excluding the shard being routed around.
func TestFailoverAbsorbsShardFaults(t *testing.T) {
	inj, err := faults.Parse("flaky:err=0.2", 7)
	if err != nil {
		t.Fatalf("faults.Parse: %v", err)
	}
	s, hs := newTestServer(t, Config{
		Steps: 16, QueueDepth: 4096, CacheSize: -1,
		Backends: []BackendConfig{
			// The flaky shard advertises the higher modelled rate, so the
			// dispatcher prefers it until its breaker opens — faults are
			// guaranteed to be exercised, not routed around by luck.
			{Name: "flaky", Estimate: stubEstimate(100000), Workers: 2,
				PriceFunc: faultyPrice(inj.HookFor("flaky"), stubPrice)},
			{Name: "healthy", Estimate: stubEstimate(1000), Workers: 2, PriceFunc: stubPrice},
		},
		// Once open the breaker must stay open through the post-run
		// assertions below.
		Breaker: BreakerConfig{Cooldown: time.Hour},
	})

	chain, err := workload.Chain(workload.DefaultVolCurveSpec(7))
	if err != nil {
		t.Fatalf("chain: %v", err)
	}
	results, err := s.PriceOptions(context.Background(), chain)
	if err != nil {
		t.Fatalf("PriceOptions under 20%% shard faults: %v", err)
	}

	var retries int64
	for i, r := range results {
		want, _ := stubPrice(chain[i])
		if r.Price != want {
			t.Fatalf("option %d: price %v, want %v (failover must be numerically invisible)", i, r.Price, want)
		}
		retries += int64(r.Retries)
	}
	if retries == 0 {
		t.Fatal("no retries recorded: the injected faults never fired or failover never ran")
	}
	if got := s.metrics.retries.Load(); got != retries {
		t.Fatalf("metrics retries = %d, per-result sum = %d", got, retries)
	}
	if s.metrics.priceErrors.Load() == 0 {
		t.Fatal("no price errors metered despite injected faults")
	}
	if n := s.QueueDepth(); n != 0 {
		t.Fatalf("queue depth %d after completion, want 0 (admission leak)", n)
	}

	// The flaky shard's breaker is open: 20% windowed error rate is well
	// past the 10% default threshold.
	var flakyStat *breakerStat
	for _, bs := range s.breakerStats() {
		if bs.backend == "flaky" {
			b := bs
			flakyStat = &b
		}
	}
	if flakyStat == nil || flakyStat.state != breakerOpen || flakyStat.opens == 0 {
		t.Fatalf("flaky breaker = %+v, want open with opens > 0", flakyStat)
	}

	// Retry-After honesty: the open shard's modelled rate is excluded.
	if rate := s.aggregateRate(); rate != 1000 {
		t.Fatalf("aggregateRate = %v, want 1000 (healthy only; flaky is open)", rate)
	}

	// /healthz: per-shard breaker state plus the degraded pool status.
	resp, err := http.Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d, want 200: degraded is not down", resp.StatusCode)
	}
	var health struct {
		Status   string `json:"status"`
		Backends []struct {
			Name         string `json:"name"`
			Breaker      string `json:"breaker"`
			BreakerOpens int64  `json:"breaker_opens"`
			PriceErrors  int64  `json:"price_errors"`
		} `json:"backends"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatalf("healthz decode: %v", err)
	}
	if health.Status != "degraded" {
		t.Fatalf("healthz status %q, want \"degraded\" while a breaker is open", health.Status)
	}
	found := false
	for _, be := range health.Backends {
		switch be.Name {
		case "flaky":
			found = true
			if be.Breaker != "open" || be.BreakerOpens == 0 || be.PriceErrors == 0 {
				t.Fatalf("flaky health = %+v, want open breaker with errors metered", be)
			}
		case "healthy":
			if be.Breaker != "closed" {
				t.Fatalf("healthy shard breaker %q, want closed", be.Breaker)
			}
		}
	}
	if !found {
		t.Fatal("healthz missing the flaky backend")
	}

	// /metrics: the error-path counters and breaker gauges.
	mresp, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	defer mresp.Body.Close()
	body, _ := io.ReadAll(mresp.Body)
	for _, want := range []string{
		fmt.Sprintf("binopt_retries_total %d\n", retries),
		"binopt_breaker_state{backend=\"flaky\"} 1\n",
		"binopt_breaker_state{backend=\"healthy\"} 0\n",
		"binopt_backend_price_errors_total{backend=\"flaky\"}",
	} {
		if !strings.Contains(string(body), want) {
			t.Errorf("metrics missing %q:\n%s", want, body)
		}
	}
	if strings.Contains(string(body), "binopt_price_errors_total 0\n") {
		t.Error("binopt_price_errors_total still zero despite injected faults")
	}
}

// TestExhaustedAttemptsDrainSiblings is the regression for the brittle
// error path: when one contract's attempts are exhausted, the request
// must still drain every sibling's result — observing their phases —
// and the error must name the failing contract index.
func TestExhaustedAttemptsDrainSiblings(t *testing.T) {
	const poisoned = 5
	poison := testOption(poisoned)
	kernel := func(o option.Option) (float64, error) {
		if o.Strike == poison.Strike {
			return 0, errors.New("poisoned contract")
		}
		return stubPrice(o)
	}
	s, _ := newTestServer(t, Config{
		Steps: 16, QueueDepth: 256, CacheSize: -1, MaxAttempts: 1,
		Backends: []BackendConfig{
			{Name: "stub", Estimate: stubEstimate(1000), Workers: 2, PriceFunc: kernel},
		},
	})

	opts := make([]option.Option, 8)
	for i := range opts {
		opts[i] = testOption(i)
	}
	_, phases, err := s.PriceOptionsTimed(context.Background(), opts)
	if err == nil {
		t.Fatal("want the poisoned contract's error")
	}
	if !strings.Contains(err.Error(), fmt.Sprintf("contract %d", poisoned)) {
		t.Fatalf("error %q does not name contract %d", err, poisoned)
	}
	if !strings.Contains(err.Error(), "poisoned contract") {
		t.Fatalf("error %q lost the kernel's cause", err)
	}
	// Every sibling was drained and observed, not abandoned in flight.
	if phases.Priced != len(opts)-1 {
		t.Fatalf("phases observed %d options, want %d (siblings must drain)", phases.Priced, len(opts)-1)
	}
	if got := s.metrics.optionsPriced.Load(); got != int64(len(opts)-1) {
		t.Fatalf("metrics priced %d options, want %d", got, len(opts)-1)
	}
	if n := s.QueueDepth(); n != 0 {
		t.Fatalf("queue depth %d after failed request, want 0", n)
	}
}

// TestRetryRecomputesOnSecondShard pins the failover mechanics: a shard
// that always fails hands its jobs to the healthy shard, the result
// carries the retry count and the shard that actually priced it.
func TestRetryRecomputesOnSecondShard(t *testing.T) {
	s, _ := newTestServer(t, Config{
		Steps: 16, QueueDepth: 64, CacheSize: -1,
		Backends: []BackendConfig{
			{Name: "dead", Estimate: stubEstimate(100000), Workers: 1,
				PriceFunc: func(option.Option) (float64, error) { return 0, errors.New("dead shard") }},
			{Name: "alive", Estimate: stubEstimate(100), Workers: 1, PriceFunc: stubPrice},
		},
		Breaker: BreakerConfig{Cooldown: time.Hour},
	})

	o := testOption(1)
	res, err := s.PriceOptions(context.Background(), []option.Option{o})
	if err != nil {
		t.Fatalf("PriceOptions: %v", err)
	}
	want, _ := stubPrice(o)
	if res[0].Price != want {
		t.Fatalf("price %v, want %v", res[0].Price, want)
	}
	if res[0].Backend != "alive" {
		t.Fatalf("priced on %q, want the failover shard \"alive\"", res[0].Backend)
	}
	if res[0].Retries < 1 {
		t.Fatalf("retries = %d, want >= 1", res[0].Retries)
	}
}

// TestAttemptBudgetExhaustsAcrossShards: with every shard dead, the
// error reaches the client only after MaxAttempts distinct tries.
func TestAttemptBudgetExhaustsAcrossShards(t *testing.T) {
	attempts := make(chan string, 16)
	dead := func(name string) func(option.Option) (float64, error) {
		return func(option.Option) (float64, error) {
			attempts <- name
			return 0, errors.New("outage")
		}
	}
	s, _ := newTestServer(t, Config{
		Steps: 16, QueueDepth: 64, CacheSize: -1, MaxAttempts: 3,
		Backends: []BackendConfig{
			{Name: "a", Estimate: stubEstimate(1000), Workers: 1, PriceFunc: dead("a")},
			{Name: "b", Estimate: stubEstimate(1000), Workers: 1, PriceFunc: dead("b")},
		},
	})

	_, err := s.PriceOptions(context.Background(), []option.Option{testOption(1)})
	if err == nil {
		t.Fatal("want an error once every attempt is exhausted")
	}
	if !strings.Contains(err.Error(), "3 attempt(s) failed") {
		t.Fatalf("error %q does not report the exhausted attempt budget", err)
	}
	close(attempts)
	var n int
	for range attempts {
		n++
	}
	if n != 3 {
		t.Fatalf("kernel ran %d times, want exactly MaxAttempts=3", n)
	}
	if d := s.QueueDepth(); d != 0 {
		t.Fatalf("queue depth %d, want 0", d)
	}
}
