package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"binopt/internal/option"
)

// LoadConfig parameterises a load-generation run against a pricing
// server. The workload is split into batch requests of BatchSize
// contracts; WarmupPasses sweeps prime the server (cold lattice pricing,
// cache fill) and are reported separately, then Passes sweeps are
// measured.
type LoadConfig struct {
	// BaseURL of the target server, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Targets, when set, overrides BaseURL with several servers:
	// requests round-robin across them and the report carries a
	// per-target breakdown. This is client-side spreading for comparing
	// raw nodes; point BaseURL at a cluster router instead to measure
	// the fabric's own placement (ring-aware, cache-aligned).
	Targets []string
	// Options is the workload, typically the paper's 2000-put chain.
	Options []option.Option
	// Concurrency is the number of in-flight requests (default 4).
	Concurrency int
	// BatchSize is contracts per request (default 250).
	BatchSize int
	// WarmupPasses over the workload before measurement (default 0).
	WarmupPasses int
	// Passes over the workload during measurement (default 1).
	Passes int
	// RPS throttles the measured request rate; 0 means unlimited.
	RPS float64
	// Client overrides the HTTP client (default: shared transport with
	// Concurrency idle connections).
	Client *http.Client
}

// LoadReport summarises a run: client-observed throughput, exact latency
// quantiles over per-request round trips, and the server's modelled
// energy bill for the options it actually priced.
type LoadReport struct {
	// Warmup phase totals (zero when WarmupPasses == 0).
	WarmupOptions int64
	WarmupElapsed time.Duration

	// Measured phase.
	Requests      int64
	Errors        int64
	Options       int64
	CacheHits     int64
	Retries       int64 // failover re-dispatches the server survived for us
	Elapsed       time.Duration
	OptionsPerSec float64
	P50, P95, P99 time.Duration

	// Energy across the whole run (warmup + measured): modelled joules
	// accumulated by the backend shards, amortised per option served.
	ModelledJoules  float64
	JoulesPerOption float64

	// Per-phase mean latencies of the priced (non-cached) options across
	// the whole run, aggregated from the server's Server-Timing response
	// headers. PhasePriced is the number of options contributing; all
	// zero against a server without phase timing. HeaderJoules is the
	// sum of the headers' per-request joules entries — on a consistent
	// server it reconciles with ModelledJoules, so a divergence flags a
	// node double-booking or dropping energy.
	PhaseBatch, PhaseQueue  time.Duration
	PhaseCompute, PhaseRead time.Duration
	PhasePriced             int64
	HeaderJoules            float64

	// Targets is the measured-phase per-target breakdown, in the order
	// the targets were configured. Single-target runs get one row.
	Targets []TargetReport
}

// TargetReport is the measured-phase slice of one target in a
// multi-target run: its share of the traffic and its own latency
// quantiles, so a slow node shows up as itself instead of smearing the
// fleet-wide tail.
type TargetReport struct {
	BaseURL       string
	Requests      int64
	Errors        int64
	Options       int64
	OptionsPerSec float64
	P50, P95, P99 time.Duration
}

// Text renders the report as the operator-facing summary.
func (r LoadReport) Text() string {
	var b strings.Builder
	if r.WarmupOptions > 0 {
		fmt.Fprintf(&b, "warmup:   %d options in %.2fs (%.0f options/s, cold path)\n",
			r.WarmupOptions, r.WarmupElapsed.Seconds(),
			float64(r.WarmupOptions)/r.WarmupElapsed.Seconds())
	}
	fmt.Fprintf(&b, "measured: %d options in %d requests over %.2fs\n", r.Options, r.Requests, r.Elapsed.Seconds())
	fmt.Fprintf(&b, "throughput: %.0f options/s sustained\n", r.OptionsPerSec)
	fmt.Fprintf(&b, "latency:  p50 %s  p95 %s  p99 %s (per request)\n", r.P50, r.P95, r.P99)
	fmt.Fprintf(&b, "cache:    %d/%d hits (%.1f%%)\n", r.CacheHits, r.Options, 100*float64(r.CacheHits)/float64(max64(r.Options, 1)))
	if r.PhasePriced > 0 {
		fmt.Fprintf(&b, "phases:   batch %s  queue %s  compute %s  readback %s (mean per priced option, %d options)\n",
			r.PhaseBatch, r.PhaseQueue, r.PhaseCompute, r.PhaseRead, r.PhasePriced)
	}
	fmt.Fprintf(&b, "energy:   %.4g J modelled total, %.4g J/option amortised\n", r.ModelledJoules, r.JoulesPerOption)
	if r.HeaderJoules > 0 {
		fmt.Fprintf(&b, "ledger:   %.4g J attributed via Server-Timing headers\n", r.HeaderJoules)
	}
	if r.Retries > 0 {
		fmt.Fprintf(&b, "retries:  %d failover re-dispatches absorbed server-side\n", r.Retries)
	}
	fmt.Fprintf(&b, "errors:   %d\n", r.Errors)
	if len(r.Targets) > 1 {
		for _, tr := range r.Targets {
			fmt.Fprintf(&b, "target:   %s  %d reqs  %d options  %.0f options/s  p50 %s  p95 %s  p99 %s  errors %d\n",
				tr.BaseURL, tr.Requests, tr.Options, tr.OptionsPerSec, tr.P50, tr.P95, tr.P99, tr.Errors)
		}
	}
	return b.String()
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// loadRequest is one pre-encoded batch request.
type loadRequest struct {
	body    []byte
	options int
}

// RunLoad drives the server with the configured workload and returns the
// report. The warmup phase exercises the cold pricing path; the measured
// phase reports sustained serving throughput (on a repeated workload this
// is dominated by cache hits — by design, that is the serving tier's
// steady state).
func RunLoad(ctx context.Context, cfg LoadConfig) (LoadReport, error) {
	if len(cfg.Options) == 0 {
		return LoadReport{}, fmt.Errorf("loadgen: empty workload")
	}
	if len(cfg.Targets) == 0 {
		if cfg.BaseURL == "" {
			return LoadReport{}, fmt.Errorf("loadgen: no target: set BaseURL or Targets")
		}
		cfg.Targets = []string{cfg.BaseURL}
	}
	if cfg.Concurrency <= 0 {
		cfg.Concurrency = 4
	}
	if cfg.BatchSize <= 0 {
		cfg.BatchSize = 250
	}
	if cfg.Passes <= 0 {
		cfg.Passes = 1
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: cfg.Concurrency}}
	}

	// Pre-encode one pass worth of batch requests.
	var pass []loadRequest
	for at := 0; at < len(cfg.Options); at += cfg.BatchSize {
		end := at + cfg.BatchSize
		if end > len(cfg.Options) {
			end = len(cfg.Options)
		}
		chunk := cfg.Options[at:end]
		req := PriceRequest{Contracts: make([]Contract, len(chunk))}
		for i, o := range chunk {
			req.Contracts[i] = FromOption(o)
		}
		body, err := json.Marshal(req)
		if err != nil {
			return LoadReport{}, fmt.Errorf("loadgen: encoding batch: %w", err)
		}
		pass = append(pass, loadRequest{body: body, options: len(chunk)})
	}

	var rep LoadReport

	if cfg.WarmupPasses > 0 {
		start := time.Now()
		stats, err := sweep(ctx, client, cfg, pass, cfg.WarmupPasses, 0)
		if err != nil {
			return rep, err
		}
		rep.WarmupOptions = stats.options
		rep.WarmupElapsed = time.Since(start)
		rep.ModelledJoules += stats.joules
		rep.addPhases(stats)
	}

	start := time.Now()
	stats, err := sweep(ctx, client, cfg, pass, cfg.Passes, cfg.RPS)
	if err != nil {
		return rep, err
	}
	rep.addPhases(stats)
	rep.Elapsed = time.Since(start)
	rep.Requests = stats.requests
	rep.Errors = stats.errors
	rep.Options = stats.options
	rep.CacheHits = stats.cacheHits
	rep.Retries = stats.retries
	rep.ModelledJoules += stats.joules
	if rep.Elapsed > 0 {
		rep.OptionsPerSec = float64(stats.options) / rep.Elapsed.Seconds()
	}
	sort.Slice(stats.latencies, func(i, j int) bool { return stats.latencies[i] < stats.latencies[j] })
	rep.P50 = quantileDur(stats.latencies, 0.50)
	rep.P95 = quantileDur(stats.latencies, 0.95)
	rep.P99 = quantileDur(stats.latencies, 0.99)
	for i, ts := range stats.perTarget {
		tr := TargetReport{
			BaseURL: cfg.Targets[i], Requests: ts.requests,
			Errors: ts.errors, Options: ts.options,
		}
		if rep.Elapsed > 0 {
			tr.OptionsPerSec = float64(ts.options) / rep.Elapsed.Seconds()
		}
		sort.Slice(ts.latencies, func(a, b int) bool { return ts.latencies[a] < ts.latencies[b] })
		tr.P50 = quantileDur(ts.latencies, 0.50)
		tr.P95 = quantileDur(ts.latencies, 0.95)
		tr.P99 = quantileDur(ts.latencies, 0.99)
		rep.Targets = append(rep.Targets, tr)
	}
	total := rep.WarmupOptions + rep.Options
	if total > 0 {
		rep.JoulesPerOption = rep.ModelledJoules / float64(total)
	}
	return rep, nil
}

type sweepStats struct {
	requests, errors, options, cacheHits int64
	retries                              int64
	joules                               float64
	latencies                            []time.Duration
	phases                               phaseSums
	perTarget                            []targetStats // parallel to cfg.Targets
}

type targetStats struct {
	requests, errors, options int64
	latencies                 []time.Duration
}

// phaseSums accumulates Server-Timing phase durations, the priced
// option counts they cover, and the per-request modelled joules the
// server attached to each header.
type phaseSums struct {
	batch, queue, compute, readback time.Duration
	joules                          float64
	priced                          int64
}

func (p *phaseSums) add(o phaseSums) {
	p.batch += o.batch
	p.queue += o.queue
	p.compute += o.compute
	p.readback += o.readback
	p.joules += o.joules
	p.priced += o.priced
}

// addPhases folds one sweep's phase sums into the report's running
// per-option means.
func (r *LoadReport) addPhases(stats sweepStats) {
	p := stats.phases
	r.HeaderJoules += p.joules
	if p.priced == 0 {
		return
	}
	prev := r.PhasePriced
	total := prev + p.priced
	mix := func(mean time.Duration, sum time.Duration) time.Duration {
		return time.Duration((int64(mean)*prev + int64(sum)) / total)
	}
	r.PhaseBatch = mix(r.PhaseBatch, p.batch)
	r.PhaseQueue = mix(r.PhaseQueue, p.queue)
	r.PhaseCompute = mix(r.PhaseCompute, p.compute)
	r.PhaseRead = mix(r.PhaseRead, p.readback)
	r.PhasePriced = total
}

// sweep runs `passes` copies of the request set through a worker pool and
// aggregates per-request observations.
func sweep(ctx context.Context, client *http.Client, cfg LoadConfig, pass []loadRequest, passes int, rps float64) (sweepStats, error) {
	// A worker that hits a transport error exits; once every worker is
	// gone the feeder would block forever on an unbuffered send. The
	// sweep-local cancel turns "first worker death" into "feeder stops",
	// independent of the caller's context.
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	work := make(chan loadRequest)
	var throttle <-chan time.Time
	if rps > 0 {
		t := time.NewTicker(time.Duration(float64(time.Second) / rps))
		defer t.Stop()
		throttle = t.C
	}

	var (
		mu    sync.Mutex
		stats sweepStats
		wg    sync.WaitGroup
		fail  atomic.Value  // first transport-level error
		rr    atomic.Uint64 // round-robin cursor over cfg.Targets
	)
	stats.perTarget = make([]targetStats, len(cfg.Targets))
	for w := 0; w < cfg.Concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for lr := range work {
				ti := int((rr.Add(1) - 1) % uint64(len(cfg.Targets)))
				t0 := time.Now()
				obs, err := doPriceRequest(ctx, client, cfg.Targets[ti], lr)
				lat := time.Since(t0)
				if err != nil {
					fail.CompareAndSwap(nil, err)
					cancel()
					return
				}
				mu.Lock()
				stats.requests++
				stats.latencies = append(stats.latencies, lat)
				ts := &stats.perTarget[ti]
				ts.requests++
				ts.latencies = append(ts.latencies, lat)
				if obs.httpErr {
					stats.errors++
					ts.errors++
				} else {
					stats.options += int64(lr.options)
					ts.options += int64(lr.options)
					stats.cacheHits += obs.cacheHits
					stats.retries += obs.retries
					stats.joules += obs.joules
					stats.phases.add(obs.phases)
				}
				mu.Unlock()
			}
		}()
	}

feed:
	for p := 0; p < passes; p++ {
		for _, lr := range pass {
			if throttle != nil {
				select {
				case <-throttle:
				case <-ctx.Done():
					break feed
				}
			}
			select {
			case work <- lr:
			case <-ctx.Done():
				break feed
			}
		}
	}
	close(work)
	wg.Wait()
	if err, ok := fail.Load().(error); ok && err != nil {
		return stats, fmt.Errorf("loadgen: %w", err)
	}
	if err := ctx.Err(); err != nil {
		return stats, fmt.Errorf("loadgen: %w", err)
	}
	return stats, nil
}

type requestObs struct {
	httpErr   bool
	cacheHits int64
	retries   int64
	joules    float64
	phases    phaseSums
}

// ParseServerTiming reads a Server-Timing header back into the phase
// breakdown the server rendered it from — the inverse of
// PhaseBreakdown.ServerTiming. The cluster router uses it to merge the
// phase accounting of sub-batches fanned out across nodes into one
// fleet-level header. Unknown metric names and parameters are skipped
// (proxies append their own entries; newer servers add metrics older
// clients haven't heard of); the error fires only when a non-empty
// header yields no recognised metric at all, which means the peer is
// not speaking this protocol.
func ParseServerTiming(header string) (PhaseBreakdown, error) {
	p, recognised := parseServerTiming(header)
	if recognised == 0 {
		return PhaseBreakdown{}, fmt.Errorf("serve: no recognised metrics in Server-Timing %q", header)
	}
	return PhaseBreakdown{
		Batch: p.batch, Queue: p.queue, Compute: p.compute, Readback: p.readback,
		Priced: int(p.priced), Joules: p.joules,
	}, nil
}

// Add accumulates another breakdown into p.
func (p *PhaseBreakdown) Add(o PhaseBreakdown) {
	p.Batch += o.Batch
	p.Queue += o.Queue
	p.Compute += o.Compute
	p.Readback += o.Readback
	p.Priced += o.Priced
	p.Joules += o.Joules
}

// parseServerTiming reads the serving tier's Server-Timing header:
// per-phase summed milliseconds, the priced option count, and the
// request's modelled joules ("batch;dur=1.2, ..., priced;dur=250,
// joules;dur=0.004"). It follows the header's grammar rather than the
// exact string the server emits: entries split on ",", parameters on
// ";", and the dur parameter may sit anywhere among other parameters
// ("compute;desc=fpga;dur=10"). Unknown metrics, unknown parameters and
// malformed values are skipped — the generator must survive
// proxy-mangled headers and older or newer servers. Returns the sums
// plus how many entries were recognised.
func parseServerTiming(header string) (phaseSums, int) {
	var p phaseSums
	recognised := 0
	for _, entry := range strings.Split(header, ",") {
		params := strings.Split(entry, ";")
		name := strings.TrimSpace(params[0])
		var dur string
		found := false
		for _, param := range params[1:] {
			if k, v, ok := strings.Cut(param, "="); ok && strings.TrimSpace(k) == "dur" {
				dur, found = strings.TrimSpace(v), true
				break
			}
		}
		if !found {
			continue
		}
		v, err := strconv.ParseFloat(dur, 64)
		if err != nil {
			continue
		}
		d := time.Duration(v * float64(time.Millisecond))
		switch name {
		case "batch":
			p.batch = d
		case "queue":
			p.queue = d
		case "compute":
			p.compute = d
		case "readback":
			p.readback = d
		case "priced":
			p.priced = int64(v)
		case "joules":
			// The dur= slot carries joules directly; the metric name,
			// not the slot, fixes the unit (see ServerTiming).
			p.joules = v
		default:
			continue
		}
		recognised++
	}
	return p, recognised
}

// doPriceRequest posts one batch and parses the response. Non-2xx
// statuses (e.g. 429 under saturation) count as request errors, not
// transport failures — the generator keeps going, as a real client would.
func doPriceRequest(ctx context.Context, client *http.Client, baseURL string, lr loadRequest) (requestObs, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, baseURL+"/v1/price", bytes.NewReader(lr.body))
	if err != nil {
		return requestObs{}, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := client.Do(req)
	if err != nil {
		return requestObs{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, resp.Body)
		return requestObs{httpErr: true}, nil
	}
	var pr PriceResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		return requestObs{}, fmt.Errorf("decoding response: %w", err)
	}
	obs := requestObs{}
	if st := resp.Header.Get("Server-Timing"); st != "" {
		obs.phases, _ = parseServerTiming(st)
	}
	for _, res := range pr.Results {
		if res.Cached {
			obs.cacheHits++
		}
		obs.retries += int64(res.Retries)
		obs.joules += res.ModelledJoules
	}
	return obs, nil
}

// quantileDur returns the q-quantile of an ascending slice.
func quantileDur(d []time.Duration, q float64) time.Duration {
	if len(d) == 0 {
		return 0
	}
	i := int(q * float64(len(d)-1))
	return d[i]
}
