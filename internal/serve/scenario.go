package serve

import (
	"container/list"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"strconv"
	"sync"
	"time"

	"binopt/internal/lattice"
	"binopt/internal/obslog"
	"binopt/internal/scenario"
	"binopt/internal/telemetry"
)

// ScenarioPosition is the wire form of one signed holding: a contract
// and a quantity (negative = short).
type ScenarioPosition struct {
	Contract Contract `json:"contract"`
	Quantity float64  `json:"quantity"`
}

// ShockJSON is the wire form of one scenario shock. Absent multipliers
// default to the identity (1), so a pure rate-shift ladder need not
// spell out "spot_mul": 1 on every line.
type ShockJSON struct {
	Label   string   `json:"label,omitempty"`
	SpotMul *float64 `json:"spot_mul,omitempty"`
	VolMul  *float64 `json:"vol_mul,omitempty"`
	RateAdd float64  `json:"rate_add,omitempty"`
}

func (sj ShockJSON) toShock() scenario.Shock {
	s := scenario.Shock{Label: sj.Label, SpotMul: 1, VolMul: 1, RateAdd: sj.RateAdd}
	if sj.SpotMul != nil {
		s.SpotMul = *sj.SpotMul
	}
	if sj.VolMul != nil {
		s.VolMul = *sj.VolMul
	}
	return s
}

// ScenarioRequest is the body of POST /v1/scenarios: a portfolio plus
// either an explicit shock list or a grid spec (exactly one of the
// two). It is the one wire grammar for the endpoint, shared by the node
// handler and the cluster router — the router re-marshals sub-requests
// in this same shape with explicit shock slices.
type ScenarioRequest struct {
	Portfolio []ScenarioPosition `json:"portfolio"`
	Shocks    []ShockJSON        `json:"shocks,omitempty"`
	Grid      *scenario.GridSpec `json:"grid,omitempty"`
	Quantiles []float64          `json:"quantiles,omitempty"`
	// SkipGreeks suppresses the base book's net-Greeks pass. The fleet
	// router sets it on all but one shard so the book's sensitivities
	// are computed exactly once per request.
	SkipGreeks bool `json:"skip_greeks,omitempty"`
}

// GreeksJSON is the wire form of the book's net sensitivities.
type GreeksJSON struct {
	Delta float64 `json:"delta"`
	Gamma float64 `json:"gamma"`
	Theta float64 `json:"theta"`
	Vega  float64 `json:"vega"`
	Rho   float64 `json:"rho"`
}

func greeksJSON(g lattice.Greeks) *GreeksJSON {
	return &GreeksJSON{Delta: g.Delta, Gamma: g.Gamma, Theta: g.Theta, Vega: g.Vega, Rho: g.Rho}
}

// ScenarioResponse is the body of a successful POST /v1/scenarios.
// Every float is bit-identical to revaluing the same book serially
// through the scalar reference lattice, which is what makes solo,
// cached and fleet-sharded answers comparable to the last bit.
type ScenarioResponse struct {
	Steps     int         `json:"steps"`
	BaseValue float64     `json:"base_value"`
	Greeks    *GreeksJSON `json:"greeks,omitempty"`
	HasGreeks bool        `json:"has_greeks"`

	Scenarios []scenario.ScenarioValue `json:"scenarios"`
	Risk      []scenario.RiskMeasure   `json:"risk"`

	// Evaluations counts contract evaluations on the pricing substrate
	// (the base Greeks pass books its five sweeps per position).
	Evaluations int64 `json:"evaluations"`
	// ModelledJoules is Evaluations × the pricing backend's modelled
	// per-option energy (zero for cache hits and the reference engine).
	ModelledJoules float64 `json:"modelled_joules"`
	Cached         bool    `json:"cached"`
	// Backend names the engine shard that priced the revaluation
	// ("cache" on a hit, "reference" on the host lattice fallback).
	Backend string `json:"backend"`
	Node    string `json:"node,omitempty"`
}

// ParseScenarioRequest decodes a POST /v1/scenarios body.
func ParseScenarioRequest(body []byte) (ScenarioRequest, error) {
	var req ScenarioRequest
	if err := json.Unmarshal(body, &req); err != nil {
		return req, fmt.Errorf("bad JSON: %v", err)
	}
	if len(req.Shocks) == 0 && req.Grid == nil {
		return req, fmt.Errorf("supply shocks or grid")
	}
	if len(req.Shocks) > 0 && req.Grid != nil {
		return req, fmt.Errorf("supply shocks or grid, not both")
	}
	if len(req.Shocks) > scenario.MaxGridScenarios {
		return req, fmt.Errorf("%d shocks exceed the %d-scenario cap", len(req.Shocks), scenario.MaxGridScenarios)
	}
	return req, nil
}

// Resolve converts the wire request into engine terms: the validated
// book, the expanded shock list, and the quantile set. An empty
// portfolio is valid — it revalues to the documented zero report, the
// same empty-book convention ValuePortfolio follows.
func (r ScenarioRequest) Resolve() ([]scenario.Position, []scenario.Shock, []float64, error) {
	book := make([]scenario.Position, len(r.Portfolio))
	for i, p := range r.Portfolio {
		o, err := p.Contract.ToOption()
		if err != nil {
			return nil, nil, nil, fmt.Errorf("position %d: %v", i, err)
		}
		if math.IsNaN(p.Quantity) || math.IsInf(p.Quantity, 0) {
			return nil, nil, nil, fmt.Errorf("position %d: quantity must be finite, got %v", i, p.Quantity)
		}
		book[i] = scenario.Position{Option: o, Quantity: p.Quantity}
	}

	var shocks []scenario.Shock
	if r.Grid != nil {
		var err error
		if shocks, err = r.Grid.Shocks(); err != nil {
			return nil, nil, nil, err
		}
	} else {
		shocks = make([]scenario.Shock, len(r.Shocks))
		for i, sj := range r.Shocks {
			shocks[i] = sj.toShock()
			if err := shocks[i].Validate(); err != nil {
				return nil, nil, nil, fmt.Errorf("shock %d: %v", i, err)
			}
		}
	}

	quantiles := r.Quantiles
	if len(quantiles) == 0 {
		quantiles = scenario.DefaultQuantiles
	}
	for _, c := range quantiles {
		if math.IsNaN(c) || c <= 0 || c >= 1 {
			return nil, nil, nil, fmt.Errorf("quantile must be in (0,1), got %v", c)
		}
	}
	return book, shocks, quantiles, nil
}

// scenarioKey canonicalises a resolved request into a fixed-size cache
// key: the sha256 of steps, every position's contract Key and quantity
// bits, every shock's bit-pattern Key and label, the quantile bits and
// the Greeks flag. Everything that can change a byte of the response is
// in the hash, so two requests collide only when their responses are
// identical.
func scenarioKey(steps int, book []scenario.Position, shocks []scenario.Shock, quantiles []float64, skipGreeks bool) string {
	h := sha256.New()
	fmt.Fprintf(h, "steps=%d;greeks=%t;", steps, !skipGreeks)
	for _, pos := range book {
		fmt.Fprintf(h, "p=%s*%016x;", KeyFor(pos.Option, steps).String(), math.Float64bits(pos.Quantity))
	}
	for _, sh := range shocks {
		fmt.Fprintf(h, "s=%s|%s;", sh.Key(), sh.Label)
	}
	for _, q := range quantiles {
		fmt.Fprintf(h, "q=%016x;", math.Float64bits(q))
	}
	return hex.EncodeToString(h.Sum(nil))
}

// scenarioCacheCap bounds the scenario-report LRU. Reports are whole
// revaluations (thousands of evaluations each), so a small cache of
// them shields the engines from the dominant steady-state pattern — the
// same stress grid re-requested every time a dashboard refreshes.
const scenarioCacheCap = 256

// scenarioCacheCapFor derives the scenario cache's capacity from the
// contract cache's configured size: caching disabled (negative) turns
// the scenario cache off too, anything else gets the fixed report
// capacity.
func scenarioCacheCapFor(cacheSize int) int {
	if cacheSize < 0 {
		return 0
	}
	return scenarioCacheCap
}

// scenarioCache is a fixed-capacity LRU of complete revaluation
// reports, flushed by the same market-data generation bumps that flush
// the per-contract result cache.
type scenarioCache struct {
	mu  sync.Mutex
	cap int
	ll  *list.List
	m   map[string]*list.Element
}

type scenarioEntry struct {
	key string
	rep scenario.Report
}

func newScenarioCache(capacity int) *scenarioCache {
	if capacity <= 0 {
		return nil
	}
	return &scenarioCache{cap: capacity, ll: list.New(), m: make(map[string]*list.Element, capacity)}
}

func (c *scenarioCache) get(k string) (scenario.Report, bool) {
	if c == nil {
		return scenario.Report{}, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.m[k]
	if !ok {
		return scenario.Report{}, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*scenarioEntry).rep, true
}

func (c *scenarioCache) put(k string, rep scenario.Report) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.m[k]; ok {
		c.ll.MoveToFront(el)
		el.Value.(*scenarioEntry).rep = rep
		return
	}
	c.m[k] = c.ll.PushFront(&scenarioEntry{key: k, rep: rep})
	if c.ll.Len() > c.cap {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.m, oldest.Value.(*scenarioEntry).key)
	}
}

func (c *scenarioCache) flush() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	n := c.ll.Len()
	c.ll.Init()
	clear(c.m)
	return n
}

// scenarioPricer picks the engine shard a revaluation runs on: the
// engine-backed backend with the shortest modelled drain time, so
// scenario load lands on whichever accelerator is most idle. With no
// engine shards (or a PriceFunc override, whose stub kernels are not
// the reference) it falls back to the server's reference lattice —
// bit-identical either way, per the startup parity check.
func (s *Server) scenarioPricer() (*backend, scenario.Pricer, string, float64) {
	if s.cfg.PriceFunc == nil {
		var best *backend
		for _, be := range s.backends {
			if be.cfg.Engine == nil || be.cfg.PriceFunc != nil {
				continue
			}
			if best == nil || be.drainScore() < best.drainScore() {
				best = be
			}
		}
		if best != nil {
			return best, best.cfg.Engine, best.cfg.Name, best.joules
		}
	}
	return nil, s.engine, "reference", 0
}

// scenarioServerTiming renders the revaluation's phase breakdown in the
// same Server-Timing shape the price path uses; joules abuses the dur=
// slot exactly as PhaseBreakdown.ServerTiming does.
func scenarioServerTiming(expand, price, aggregate time.Duration, evals int64, joules float64) string {
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	return fmt.Sprintf("expand;dur=%.3f, price;dur=%.3f, aggregate;dur=%.3f, evals;dur=%d, joules;dur=%.9g",
		ms(expand), ms(price), ms(aggregate), evals, joules)
}

func (s *Server) handleScenarios(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	if s.closed.Load() {
		s.writeError(w, http.StatusServiceUnavailable, "%v", ErrClosed)
		return
	}
	s.metrics.scenarioReqs.Add(1)
	started := time.Now()

	trace, parent, fromRemote := telemetry.ParseTraceParent(r.Header.Get("traceparent"))
	if !fromRemote && s.tracer.Enabled() {
		trace = telemetry.NewTraceID()
	}
	span := s.tracer.Begin("POST /v1/scenarios", "host", "requests")
	span.SetReq(span.ID())
	span.SetTrace(trace)
	if fromRemote {
		span.SetAttr("parent_span", fmt.Sprintf("%016x", parent))
	}
	defer span.End()
	log := obslog.WithTrace(s.logger, trace, span.ID())

	// Same SLO discipline as /v1/price: every terminal outcome booked
	// exactly once, client mistakes and backpressure spending no budget.
	// Batch-class SLO observation: a stress grid counts toward
	// availability but is exempt from the interactive latency budget.
	observe := func(failed bool) { s.slomon.ObserveBatch(failed) }

	body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes))
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	req, err := ParseScenarioRequest(body)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	// Expand phase: wire → engine terms, including grid expansion.
	book, shocks, quantiles, err := req.Resolve()
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}
	expandDone := time.Now()
	span.SetAttr("positions", len(book))
	span.SetAttr("scenarios", len(shocks))

	emitPhase := func(name string, start time.Time, d time.Duration) {
		if !s.tracer.Enabled() {
			return
		}
		s.tracer.Emit(telemetry.Span{
			Req: span.ID(), Trace: trace, Name: name, Proc: "host", Thread: "scenarios",
			Start: start, Dur: d, Clock: telemetry.Wall,
			Attrs: map[string]any{"positions": len(book), "scenarios": len(shocks)},
		})
	}
	emitPhase("expand", started, expandDone.Sub(started))

	key := scenarioKey(s.cfg.Steps, book, shocks, quantiles, req.SkipGreeks)
	if rep, ok := s.scenarios.get(key); ok {
		observe(false)
		s.metrics.scenarioCacheHits.Add(1)
		s.writeScenarioResponse(w, span, trace, rep, true, "cache", 0)
		log.Debug("scenario request served from cache",
			"positions", len(book), "scenarios", len(shocks), "latency", time.Since(started).Seconds())
		return
	}

	// Admission: a revaluation is a standing claim on a whole engine, so
	// concurrent requests are bounded separately from the per-contract
	// queue. Beyond the bound the client gets the same 429 contract.
	select {
	case s.scenarioSem <- struct{}{}:
		defer func() { <-s.scenarioSem }()
	default:
		s.metrics.rejected.Add(1)
		w.Header().Set("Retry-After", strconv.Itoa(int(s.RetryAfter()/time.Second)))
		writeJSON(w, http.StatusTooManyRequests, errorResponse{Error: "scenario capacity saturated"})
		return
	}

	be, pricer, backendName, jpo := s.scenarioPricer()
	eng := scenario.New(pricer, 0)
	if be != nil {
		// Book the expansion on the shard's pending count for the
		// duration, so contract dispatch and Retry-After see the load.
		est := int64(len(shocks)+1) * int64(len(book))
		be.pending.Add(est)
		defer be.pending.Add(-est)
	}

	// Price phase: base book (with Greeks unless skipped) plus the whole
	// scenario cross product through the quad-interleaved batch path.
	rep, err := eng.Revalue(scenario.Request{
		Book: book, Shocks: shocks, Quantiles: quantiles, SkipGreeks: req.SkipGreeks,
	})
	priceDone := time.Now()
	emitPhase("price", expandDone, priceDone.Sub(expandDone))
	if err != nil {
		observe(true)
		log.Warn("scenario request failed",
			"positions", len(book), "scenarios", len(shocks), "error", err.Error())
		s.writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}

	// Aggregate phase: energy ledger, metrics, cache fill, response.
	joules := float64(rep.Evaluations) * jpo
	s.metrics.scenarioShocks.Add(int64(len(shocks)))
	s.metrics.scenarioEvals.Add(rep.Evaluations)
	s.metrics.scenarioJoules.add(joules)
	s.metrics.requestJoules.ObserveExemplar(joules, trace)
	s.scenarios.put(key, rep)
	observe(false)
	s.metrics.scenarioLatency.Observe(time.Since(started).Seconds())
	emitPhase("aggregate", priceDone, time.Since(priceDone))
	span.SetAttr("evaluations", rep.Evaluations)
	span.SetAttr("joules", joules)

	w.Header().Set("Server-Timing", scenarioServerTiming(
		expandDone.Sub(started), priceDone.Sub(expandDone), time.Since(priceDone), rep.Evaluations, joules))
	s.writeScenarioResponse(w, span, trace, rep, false, backendName, joules)
	log.Debug("scenario request served",
		"positions", len(book), "scenarios", len(shocks), "evaluations", rep.Evaluations,
		"backend", backendName, "joules", joules, "latency", time.Since(started).Seconds())
}

// writeScenarioResponse renders one revaluation report to the client,
// echoing the trace identity like the price path does.
func (s *Server) writeScenarioResponse(w http.ResponseWriter, span *telemetry.Active, trace string, rep scenario.Report, cached bool, backendName string, joules float64) {
	resp := ScenarioResponse{
		Steps:          s.cfg.Steps,
		BaseValue:      rep.BaseValue,
		HasGreeks:      rep.HasGreeks,
		Scenarios:      rep.Scenarios,
		Risk:           rep.Risk,
		Evaluations:    rep.Evaluations,
		ModelledJoules: joules,
		Cached:         cached,
		Backend:        backendName,
		Node:           s.cfg.Node,
	}
	if rep.HasGreeks {
		resp.Greeks = greeksJSON(rep.Greeks)
	}
	if trace != "" && span.ID() != 0 {
		w.Header().Set("traceparent", telemetry.FormatTraceParent(trace, span.ID()))
	}
	writeJSON(w, http.StatusOK, resp)
}
