//go:build !race

package serve

// raceEnabled reports whether the race detector is compiled in; the
// throughput smoke test skips itself under race, where the instrumented
// lattice is an order of magnitude slower than any modelled device.
const raceEnabled = false
