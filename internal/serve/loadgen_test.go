package serve

import (
	"context"
	"strings"
	"testing"
	"time"

	"binopt/internal/workload"
)

// TestRunLoadSmall checks the generator's accounting on a tiny workload.
func TestRunLoadSmall(t *testing.T) {
	_, hs := newTestServer(t, Config{Steps: 32})
	spec := workload.DefaultVolCurveSpec(3)
	spec.N = 8
	chain, err := workload.Chain(spec)
	if err != nil {
		t.Fatal(err)
	}

	rep, err := RunLoad(context.Background(), LoadConfig{
		BaseURL: hs.URL, Options: chain,
		Concurrency: 2, BatchSize: 3, WarmupPasses: 1, Passes: 2,
	})
	if err != nil {
		t.Fatalf("RunLoad: %v", err)
	}
	if rep.WarmupOptions != 8 {
		t.Errorf("warmup options = %d, want 8", rep.WarmupOptions)
	}
	if rep.Options != 16 {
		t.Errorf("measured options = %d, want 16", rep.Options)
	}
	if rep.Requests != 6 { // ceil(8/3)=3 requests per pass, 2 passes
		t.Errorf("requests = %d, want 6", rep.Requests)
	}
	if rep.Errors != 0 {
		t.Errorf("errors = %d", rep.Errors)
	}
	// Warmup primed the cache, so the measured passes must be all hits.
	if rep.CacheHits != 16 {
		t.Errorf("cache hits = %d, want 16", rep.CacheHits)
	}
	if rep.ModelledJoules <= 0 || rep.JoulesPerOption <= 0 {
		t.Errorf("energy accounting missing: %+v", rep)
	}
	if rep.P50 <= 0 || rep.P99 < rep.P50 {
		t.Errorf("latency quantiles inconsistent: p50 %v p99 %v", rep.P50, rep.P99)
	}
	for _, want := range []string{"throughput:", "latency:", "p99", "J/option", "errors:"} {
		if !strings.Contains(rep.Text(), want) {
			t.Errorf("report text missing %q:\n%s", want, rep.Text())
		}
	}
}

// TestRunLoadMultiTarget: with Targets set, requests round-robin across
// the servers and the report carries a per-target breakdown whose rows
// sum to the fleet totals.
func TestRunLoadMultiTarget(t *testing.T) {
	_, hsA := newTestServer(t, Config{Steps: 32})
	_, hsB := newTestServer(t, Config{Steps: 32})
	spec := workload.DefaultVolCurveSpec(9)
	spec.N = 12
	chain, err := workload.Chain(spec)
	if err != nil {
		t.Fatal(err)
	}

	rep, err := RunLoad(context.Background(), LoadConfig{
		Targets: []string{hsA.URL, hsB.URL}, Options: chain,
		Concurrency: 2, BatchSize: 3, Passes: 2,
	})
	if err != nil {
		t.Fatalf("RunLoad: %v", err)
	}
	if len(rep.Targets) != 2 {
		t.Fatalf("per-target rows = %d, want 2", len(rep.Targets))
	}
	var sumReqs, sumOpts int64
	for _, tr := range rep.Targets {
		if tr.Requests == 0 {
			t.Errorf("target %s got no traffic — round-robin stuck", tr.BaseURL)
		}
		if tr.P50 <= 0 {
			t.Errorf("target %s has no latency quantiles", tr.BaseURL)
		}
		sumReqs += tr.Requests
		sumOpts += tr.Options
	}
	if sumReqs != rep.Requests || sumOpts != rep.Options {
		t.Errorf("per-target rows sum to %d reqs / %d options, fleet totals %d / %d",
			sumReqs, sumOpts, rep.Requests, rep.Options)
	}
	if !strings.Contains(rep.Text(), "target:") {
		t.Errorf("report text missing per-target rows:\n%s", rep.Text())
	}

	// No target configured at all is a configuration error.
	if _, err := RunLoad(context.Background(), LoadConfig{Options: chain}); err == nil {
		t.Error("RunLoad accepted a config with no target")
	}
}

// TestRunLoadRPSThrottle bounds the measured request rate.
func TestRunLoadRPSThrottle(t *testing.T) {
	_, hs := newTestServer(t, Config{Steps: 16})
	spec := workload.DefaultVolCurveSpec(5)
	spec.N = 4
	chain, err := workload.Chain(spec)
	if err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	rep, err := RunLoad(context.Background(), LoadConfig{
		BaseURL: hs.URL, Options: chain,
		Concurrency: 1, BatchSize: 2, Passes: 2, RPS: 50,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 4 requests at 50 req/s: the ticker spaces them ~20ms apart.
	if el := time.Since(start); el < 60*time.Millisecond {
		t.Errorf("throttled run finished in %s; RPS limit not applied", el)
	}
	if rep.Requests != 4 {
		t.Errorf("requests = %d, want 4", rep.Requests)
	}
}

// TestLoadgenSmoke2000OptionsPerSec is the acceptance run: the paper's
// 2000-American-put chain at the full 1024-step evaluation depth, served
// in-process. One warmup pass prices the whole curve cold (filling the
// cache, paying the modelled energy); the measured passes then sustain
// the steady-state serving rate, which must clear the paper's 2000
// options/s use-case budget while the report carries latency quantiles
// and modelled joules/option.
func TestLoadgenSmoke2000OptionsPerSec(t *testing.T) {
	if testing.Short() {
		t.Skip("skipping 1024-step smoke run in -short mode")
	}
	if raceEnabled {
		t.Skip("skipping throughput assertion under the race detector")
	}

	chain, err := workload.Chain(workload.DefaultVolCurveSpec(7))
	if err != nil {
		t.Fatal(err)
	}
	if len(chain) != 2000 {
		t.Fatalf("chain size %d, want the paper's 2000", len(chain))
	}

	_, hs := newTestServer(t, Config{Steps: 1024})
	rep, err := RunLoad(context.Background(), LoadConfig{
		BaseURL: hs.URL, Options: chain,
		Concurrency: 4, BatchSize: 250, WarmupPasses: 1, Passes: 4,
	})
	if err != nil {
		t.Fatalf("RunLoad: %v", err)
	}
	t.Logf("loadgen summary:\n%s", rep.Text())

	if rep.Errors != 0 {
		t.Fatalf("measured phase saw %d errors", rep.Errors)
	}
	if rep.Options != 8000 {
		t.Fatalf("measured %d options, want 8000", rep.Options)
	}
	if rep.OptionsPerSec < 2000 {
		t.Fatalf("sustained %.0f options/s, need >= 2000 (paper §I budget)", rep.OptionsPerSec)
	}
	if rep.P50 <= 0 || rep.P95 < rep.P50 || rep.P99 < rep.P95 {
		t.Fatalf("latency quantiles missing or inconsistent: p50 %v p95 %v p99 %v", rep.P50, rep.P95, rep.P99)
	}
	if rep.JoulesPerOption <= 0 {
		t.Fatalf("modelled joules/option missing from summary: %+v", rep)
	}
}

// TestRunLoadDeadTargetFailsFast: when every worker dies on a transport
// error (here: a server that is already down), the feeder must stop
// rather than block forever on the work channel. (Regression: workers
// exited on the first error without cancelling, and with all workers
// gone the unbuffered send in the feed loop deadlocked under a
// background context.)
func TestRunLoadDeadTargetFailsFast(t *testing.T) {
	_, hs := newTestServer(t, Config{Steps: 32})
	dead := hs.URL
	hs.Close() // nothing listens here any more

	spec := workload.DefaultVolCurveSpec(3)
	spec.N = 8
	chain, err := workload.Chain(spec)
	if err != nil {
		t.Fatal(err)
	}

	type result struct {
		err error
	}
	done := make(chan result, 1)
	go func() {
		_, err := RunLoad(context.Background(), LoadConfig{
			BaseURL: dead, Options: chain,
			Concurrency: 1, BatchSize: 1, Passes: 1,
		})
		done <- result{err}
	}()
	select {
	case r := <-done:
		if r.err == nil {
			t.Fatal("RunLoad against a dead target reported success")
		}
	case <-time.After(10 * time.Second):
		t.Fatal("RunLoad deadlocked against a dead target")
	}
}
