package serve

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"binopt/internal/omhist"
	"binopt/internal/opencl"
)

// latencyBuckets are the histogram upper bounds, in seconds: exponential
// from 50 microseconds to ~100 s, which spans a cache hit on loopback up
// to a saturated queue draining a deep tree. The final implicit bucket is
// +Inf.
var latencyBuckets = omhist.ExpBuckets(50e-6, 120, 2)

// joulesBuckets span a request's modelled energy: from a fraction of a
// millijoule (one option on the most efficient device) up past a
// 2000-option chain on the hungriest one.
var joulesBuckets = omhist.ExpBuckets(1e-5, 1e3, 10)

// atomicFloat is a float64 accumulator built on a bits CAS loop, good
// enough for the additive counters the metrics page needs.
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) add(v float64) {
	for {
		old := f.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (f *atomicFloat) load() float64 { return math.Float64frombits(f.bits.Load()) }

// phaseNames orders the pipeline phase decomposition everywhere it is
// rendered: the life of one priced option is batch assembly wait, shard
// queue wait, compute, readback.
var phaseNames = []string{"batch", "queue", "compute", "readback"}

// rateWindow is a 10-slot, one-second-granularity sliding window over a
// counter, for a throughput figure that decays after idle periods
// instead of averaging over the whole uptime. Methods take the current
// unix second so tests can drive the clock.
type rateWindow struct {
	mu    sync.Mutex
	slots [10]struct {
		sec int64
		n   int64
	}
}

// add books n observations in the current second's slot.
func (w *rateWindow) add(nowSec, n int64) {
	i := nowSec % int64(len(w.slots))
	w.mu.Lock()
	if w.slots[i].sec != nowSec {
		w.slots[i].sec = nowSec
		w.slots[i].n = 0
	}
	w.slots[i].n += n
	w.mu.Unlock()
}

// rate returns observations per second over the window, counting only
// slots within the last len(slots) seconds. uptime bounds the divisor
// so a server younger than the window is not under-reported.
func (w *rateWindow) rate(nowSec int64, uptime time.Duration) float64 {
	window := float64(len(w.slots))
	if up := uptime.Seconds(); up < window {
		window = up
	}
	if window < 1 {
		window = 1
	}
	var sum int64
	w.mu.Lock()
	for _, s := range w.slots {
		if s.sec > nowSec-int64(len(w.slots)) {
			sum += s.n
		}
	}
	w.mu.Unlock()
	return float64(sum) / window
}

// metrics aggregates everything /metrics exposes. All fields are safe for
// concurrent use.
type metrics struct {
	start time.Time

	requests       atomic.Int64 // HTTP requests to /v1/price
	volcurveReqs   atomic.Int64 // HTTP requests to /v1/volcurve
	badRequests    atomic.Int64 // 4xx other than 429
	rejected       atomic.Int64 // 429 admission rejections
	optionsServed  atomic.Int64 // priced + cache hits returned to clients
	optionsPriced  atomic.Int64 // actually ran the lattice
	cacheHits      atomic.Int64
	batchPriced    atomic.Int64 // options priced through the quad-interleaved batch path
	solverPricings atomic.Int64 // lattice evaluations spent inside implied-vol solves
	priceErrors    atomic.Int64 // failed pricing attempts across all shards
	retries        atomic.Int64 // failover re-dispatches after failed attempts

	invalidations      atomic.Int64 // applied cache-generation bumps
	invalidatedEntries atomic.Int64 // cache entries dropped by those bumps

	scenarioReqs      atomic.Int64 // HTTP requests to /v1/scenarios
	scenarioCacheHits atomic.Int64 // revaluations served from the scenario cache
	scenarioShocks    atomic.Int64 // scenarios evaluated (shocked market states)
	scenarioEvals     atomic.Int64 // contract evaluations spent in revaluations
	scenarioJoules    atomicFloat  // modelled energy of those evaluations

	modelledJoules atomicFloat // sum of per-option modelled energy

	latency   *omhist.Histogram // per-option enqueue-to-result latency, seconds
	batchSize *omhist.Histogram // options per flushed batch
	// requestJoules is the per-request energy ledger: one observation
	// per /v1/price or /v1/scenarios request of its summed modelled
	// joules, exemplared with the request's trace ID.
	requestJoules *omhist.Histogram
	// scenarioLatency is the end-to-end latency of non-cached
	// /v1/scenarios revaluations, seconds.
	scenarioLatency *omhist.Histogram
	// phases decomposes the per-option latency: one histogram per
	// pipeline phase, keyed in phaseNames order.
	phases map[string]*omhist.Histogram
	// phaseJoules attributes the booked energy across the same four
	// phases (duration-proportional, telescoping exactly to
	// modelledJoules for priced options).
	phaseJoules map[string]*atomicFloat
	// window tracks options served over the last 10 seconds, the decay-
	// aware companion of the cumulative optionsPerSec.
	window rateWindow

	mu            sync.Mutex
	perBackend    map[string]*atomic.Int64 // options priced per backend shard
	perBackendErr map[string]*atomic.Int64 // failed pricing attempts per backend shard

	// substrate, when set, snapshots per-backend device counters from
	// the platform engines; render appends them to the exposition.
	substrate func() []substrateStat
	// traceStats, when set, reports the span tracer's emitted/dropped/
	// retained counts.
	traceStats func() (emitted, dropped int64, retained int)
	// breakers, when set, snapshots per-shard circuit breaker state for
	// the exposition.
	breakers func() []breakerStat
}

// breakerStat is one shard's circuit breaker snapshot at render time.
type breakerStat struct {
	backend string
	state   breakerState
	opens   int64 // cumulative closed/half-open -> open transitions
}

// substrateStat is one backend's accumulated device-level activity, read
// from its platform engine at render time.
type substrateStat struct {
	backend    string
	counters   opencl.Counters
	joules     float64
	devSeconds float64 // modelled device-busy time
}

func newMetrics() *metrics {
	batchBounds := []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}
	m := &metrics{
		start:           time.Now(),
		latency:         omhist.New(latencyBuckets),
		batchSize:       omhist.New(batchBounds),
		requestJoules:   omhist.New(joulesBuckets),
		scenarioLatency: omhist.New(latencyBuckets),
		phases:          make(map[string]*omhist.Histogram, len(phaseNames)),
		phaseJoules:     make(map[string]*atomicFloat, len(phaseNames)),
		perBackend:      make(map[string]*atomic.Int64),
		perBackendErr:   make(map[string]*atomic.Int64),
	}
	for _, p := range phaseNames {
		m.phases[p] = omhist.New(latencyBuckets)
		m.phaseJoules[p] = new(atomicFloat)
	}
	return m
}

// observePhases records one priced option's per-phase wall durations.
func (m *metrics) observePhases(batch, queue, compute, readback time.Duration) {
	m.phases["batch"].Observe(batch.Seconds())
	m.phases["queue"].Observe(queue.Seconds())
	m.phases["compute"].Observe(compute.Seconds())
	m.phases["readback"].Observe(readback.Seconds())
}

// backendCounter returns the per-shard priced counter, creating it on
// first use.
func (m *metrics) backendCounter(name string) *atomic.Int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := m.perBackend[name]
	if !ok {
		c = new(atomic.Int64)
		m.perBackend[name] = c
	}
	return c
}

// backendErrCounter returns the per-shard failed-attempt counter,
// creating it on first use.
func (m *metrics) backendErrCounter(name string) *atomic.Int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := m.perBackendErr[name]
	if !ok {
		c = new(atomic.Int64)
		m.perBackendErr[name] = c
	}
	return c
}

// observeOption records one completed pricing: its queue+compute latency
// and the modelled energy of the shard that priced it. nowSec is the
// caller's already-stamped completion time — the worker holds a fresh
// time.Time, so the hot path is spared another clock read. trace, when
// non-empty, pins the option's latency bucket exemplar to its
// distributed trace.
func (m *metrics) observeOption(lat time.Duration, nowSec int64, joules float64, backend *atomic.Int64, trace string) {
	m.optionsPriced.Add(1)
	m.optionsServed.Add(1)
	m.window.add(nowSec, 1)
	m.modelledJoules.add(joules)
	m.latency.ObserveExemplar(lat.Seconds(), trace)
	if backend != nil {
		backend.Add(1)
	}
}

// observeHit records one cache hit served to a client.
func (m *metrics) observeHit() {
	m.cacheHits.Add(1)
	m.optionsServed.Add(1)
	m.window.add(time.Now().Unix(), 1)
}

// joulesPerOption is the modelled energy amortised over everything served
// (cache hits cost nothing, which is exactly their point).
func (m *metrics) joulesPerOption() float64 {
	served := m.optionsServed.Load()
	if served == 0 {
		return 0
	}
	return m.modelledJoules.load() / float64(served)
}

// optionsPerSec is the cumulative serving rate since start.
func (m *metrics) optionsPerSec() float64 {
	el := time.Since(m.start).Seconds()
	if el <= 0 {
		return 0
	}
	return float64(m.optionsServed.Load()) / el
}

// render writes the exposition text: Prometheus-style name/value lines,
// one metric per line, deterministic ordering.
func (m *metrics) render(queueDepth int64, cacheLen int, cacheGen uint64) string {
	var b strings.Builder
	w := func(format string, args ...any) { fmt.Fprintf(&b, format, args...) }

	w("binopt_uptime_seconds %.3f\n", time.Since(m.start).Seconds())
	w("binopt_requests_total{endpoint=\"price\"} %d\n", m.requests.Load())
	w("binopt_requests_total{endpoint=\"volcurve\"} %d\n", m.volcurveReqs.Load())
	w("binopt_requests_total{endpoint=\"scenarios\"} %d\n", m.scenarioReqs.Load())
	w("binopt_bad_requests_total %d\n", m.badRequests.Load())
	w("binopt_rejected_total %d\n", m.rejected.Load())
	w("binopt_options_served_total %d\n", m.optionsServed.Load())
	w("binopt_options_priced_total %d\n", m.optionsPriced.Load())
	w("binopt_cache_hits_total %d\n", m.cacheHits.Load())
	w("binopt_cache_entries %d\n", cacheLen)
	w("binopt_cache_generation %d\n", cacheGen)
	w("binopt_cache_invalidations_total %d\n", m.invalidations.Load())
	w("binopt_cache_invalidated_entries_total %d\n", m.invalidatedEntries.Load())
	w("binopt_solver_pricings_total %d\n", m.solverPricings.Load())
	w("binopt_price_errors_total %d\n", m.priceErrors.Load())
	w("binopt_retries_total %d\n", m.retries.Load())
	w("binopt_queue_depth %d\n", queueDepth)
	w("binopt_options_per_sec %.3f\n", m.optionsPerSec())
	now := time.Now()
	w("binopt_options_per_sec_window %.3f\n", m.window.rate(now.Unix(), now.Sub(m.start)))
	w("binopt_modelled_joules_total %.6g\n", m.modelledJoules.load())
	w("binopt_modelled_joules_per_option %.6g\n", m.joulesPerOption())

	w("binopt_batch_size_mean %.3f\n", m.batchSize.Mean())
	m.batchSize.Render(&b, "binopt_batch_size", "")
	w("binopt_batch_priced_options_total %d\n", m.batchPriced.Load())
	w("binopt_option_latency_seconds_mean %.6g\n", m.latency.Mean())
	m.latency.Render(&b, "binopt_option_latency_seconds", "")
	m.requestJoules.Render(&b, "binopt_request_joules", "")

	w("binopt_scenario_requests_total %d\n", m.scenarioReqs.Load())
	w("binopt_scenario_cache_hits_total %d\n", m.scenarioCacheHits.Load())
	w("binopt_scenario_shocks_total %d\n", m.scenarioShocks.Load())
	w("binopt_scenario_evaluations_total %d\n", m.scenarioEvals.Load())
	w("binopt_scenario_modelled_joules_total %.6g\n", m.scenarioJoules.load())
	w("binopt_scenario_latency_seconds_mean %.6g\n", m.scenarioLatency.Mean())
	m.scenarioLatency.Render(&b, "binopt_scenario_latency_seconds", "")

	for _, p := range phaseNames {
		w("binopt_phase_seconds_mean{phase=%q} %.6g\n", p, m.phases[p].Mean())
		m.phases[p].Render(&b, "binopt_phase_seconds", fmt.Sprintf("phase=%q", p))
		w("binopt_phase_joules_total{phase=%q} %.6g\n", p, m.phaseJoules[p].load())
	}

	m.mu.Lock()
	names := make([]string, 0, len(m.perBackend))
	for name := range m.perBackend {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		w("binopt_backend_options_priced_total{backend=%q} %d\n", name, m.perBackend[name].Load())
	}
	errNames := make([]string, 0, len(m.perBackendErr))
	for name := range m.perBackendErr {
		errNames = append(errNames, name)
	}
	sort.Strings(errNames)
	for _, name := range errNames {
		w("binopt_backend_price_errors_total{backend=%q} %d\n", name, m.perBackendErr[name].Load())
	}
	m.mu.Unlock()

	if m.breakers != nil {
		for _, bs := range m.breakers() {
			w("binopt_breaker_state{backend=%q} %d\n", bs.backend, int(bs.state))
			w("binopt_breaker_opens_total{backend=%q} %d\n", bs.backend, bs.opens)
		}
	}

	if m.substrate != nil {
		for _, st := range m.substrate() {
			c := st.counters
			w("binopt_backend_flops_total{backend=%q} %d\n", st.backend, c.Flops)
			w("binopt_backend_global_bytes_total{backend=%q} %d\n", st.backend, c.GlobalBytes())
			w("binopt_backend_host_bytes_total{backend=%q} %d\n", st.backend, c.HostBytes())
			w("binopt_backend_barriers_total{backend=%q} %d\n", st.backend, c.Barriers)
			w("binopt_backend_kernel_launches_total{backend=%q} %d\n", st.backend, c.KernelLaunches)
			w("binopt_backend_modelled_joules_total{backend=%q} %.6g\n", st.backend, st.joules)
			w("binopt_backend_modelled_device_seconds_total{backend=%q} %.6g\n", st.backend, st.devSeconds)
		}
	}
	if m.traceStats != nil {
		emitted, dropped, retained := m.traceStats()
		w("binopt_trace_spans_total %d\n", emitted)
		w("binopt_trace_spans_dropped_total %d\n", dropped)
		w("binopt_trace_spans_retained %d\n", retained)
	}
	return b.String()
}
