package serve

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"binopt/internal/opencl"
)

// latencyBuckets are the histogram upper bounds, in seconds: exponential
// from 50 microseconds to ~100 s, which spans a cache hit on loopback up
// to a saturated queue draining a deep tree. The final implicit bucket is
// +Inf.
var latencyBuckets = func() []float64 {
	b := make([]float64, 0, 22)
	for v := 50e-6; v < 120; v *= 2 {
		b = append(b, v)
	}
	return b
}()

// histogram is a fixed-bucket concurrent histogram.
type histogram struct {
	bounds []float64      // upper bounds, ascending
	counts []atomic.Int64 // len(bounds)+1, last is overflow
	sum    atomicFloat
	n      atomic.Int64
}

func newHistogram(bounds []float64) *histogram {
	return &histogram{bounds: bounds, counts: make([]atomic.Int64, len(bounds)+1)}
}

// observe records one sample.
func (h *histogram) observe(v float64) {
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.sum.add(v)
	h.n.Add(1)
}

// quantile estimates the q-quantile (0 < q < 1) by linear interpolation
// inside the containing bucket. It returns 0 when the histogram is empty.
func (h *histogram) quantile(q float64) float64 {
	total := h.n.Load()
	if total == 0 {
		return 0
	}
	target := q * float64(total)
	var cum float64
	for i := range h.counts {
		c := float64(h.counts[i].Load())
		if cum+c >= target && c > 0 {
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := lo * 2
			if i < len(h.bounds) {
				hi = h.bounds[i]
			}
			frac := (target - cum) / c
			return lo + frac*(hi-lo)
		}
		cum += c
	}
	return h.bounds[len(h.bounds)-1]
}

// mean returns the average observed value, or 0 when empty.
func (h *histogram) mean() float64 {
	n := h.n.Load()
	if n == 0 {
		return 0
	}
	return h.sum.load() / float64(n)
}

// atomicFloat is a float64 accumulator built on a bits CAS loop, good
// enough for the additive counters the metrics page needs.
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) add(v float64) {
	for {
		old := f.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (f *atomicFloat) load() float64 { return math.Float64frombits(f.bits.Load()) }

// phaseNames orders the pipeline phase decomposition everywhere it is
// rendered: the life of one priced option is batch assembly wait, shard
// queue wait, compute, readback.
var phaseNames = []string{"batch", "queue", "compute", "readback"}

// rateWindow is a 10-slot, one-second-granularity sliding window over a
// counter, for a throughput figure that decays after idle periods
// instead of averaging over the whole uptime. Methods take the current
// unix second so tests can drive the clock.
type rateWindow struct {
	mu    sync.Mutex
	slots [10]struct {
		sec int64
		n   int64
	}
}

// add books n observations in the current second's slot.
func (w *rateWindow) add(nowSec, n int64) {
	i := nowSec % int64(len(w.slots))
	w.mu.Lock()
	if w.slots[i].sec != nowSec {
		w.slots[i].sec = nowSec
		w.slots[i].n = 0
	}
	w.slots[i].n += n
	w.mu.Unlock()
}

// rate returns observations per second over the window, counting only
// slots within the last len(slots) seconds. uptime bounds the divisor
// so a server younger than the window is not under-reported.
func (w *rateWindow) rate(nowSec int64, uptime time.Duration) float64 {
	window := float64(len(w.slots))
	if up := uptime.Seconds(); up < window {
		window = up
	}
	if window < 1 {
		window = 1
	}
	var sum int64
	w.mu.Lock()
	for _, s := range w.slots {
		if s.sec > nowSec-int64(len(w.slots)) {
			sum += s.n
		}
	}
	w.mu.Unlock()
	return float64(sum) / window
}

// metrics aggregates everything /metrics exposes. All fields are safe for
// concurrent use.
type metrics struct {
	start time.Time

	requests       atomic.Int64 // HTTP requests to /v1/price
	volcurveReqs   atomic.Int64 // HTTP requests to /v1/volcurve
	badRequests    atomic.Int64 // 4xx other than 429
	rejected       atomic.Int64 // 429 admission rejections
	optionsServed  atomic.Int64 // priced + cache hits returned to clients
	optionsPriced  atomic.Int64 // actually ran the lattice
	cacheHits      atomic.Int64
	batchPriced    atomic.Int64 // options priced through the quad-interleaved batch path
	solverPricings atomic.Int64 // lattice evaluations spent inside implied-vol solves
	priceErrors    atomic.Int64 // failed pricing attempts across all shards
	retries        atomic.Int64 // failover re-dispatches after failed attempts

	invalidations      atomic.Int64 // applied cache-generation bumps
	invalidatedEntries atomic.Int64 // cache entries dropped by those bumps

	modelledJoules atomicFloat // sum of per-option modelled energy

	latency   *histogram // per-option enqueue-to-result latency, seconds
	batchSize *histogram // options per flushed batch
	// phases decomposes the per-option latency: one histogram per
	// pipeline phase, keyed in phaseNames order.
	phases map[string]*histogram
	// window tracks options served over the last 10 seconds, the decay-
	// aware companion of the cumulative optionsPerSec.
	window rateWindow

	mu            sync.Mutex
	perBackend    map[string]*atomic.Int64 // options priced per backend shard
	perBackendErr map[string]*atomic.Int64 // failed pricing attempts per backend shard

	// substrate, when set, snapshots per-backend device counters from
	// the platform engines; render appends them to the exposition.
	substrate func() []substrateStat
	// traceStats, when set, reports the span tracer's emitted/dropped/
	// retained counts.
	traceStats func() (emitted, dropped int64, retained int)
	// breakers, when set, snapshots per-shard circuit breaker state for
	// the exposition.
	breakers func() []breakerStat
}

// breakerStat is one shard's circuit breaker snapshot at render time.
type breakerStat struct {
	backend string
	state   breakerState
	opens   int64 // cumulative closed/half-open -> open transitions
}

// substrateStat is one backend's accumulated device-level activity, read
// from its platform engine at render time.
type substrateStat struct {
	backend    string
	counters   opencl.Counters
	joules     float64
	devSeconds float64 // modelled device-busy time
}

func newMetrics() *metrics {
	batchBounds := []float64{1, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024}
	m := &metrics{
		start:         time.Now(),
		latency:       newHistogram(latencyBuckets),
		batchSize:     newHistogram(batchBounds),
		phases:        make(map[string]*histogram, len(phaseNames)),
		perBackend:    make(map[string]*atomic.Int64),
		perBackendErr: make(map[string]*atomic.Int64),
	}
	for _, p := range phaseNames {
		m.phases[p] = newHistogram(latencyBuckets)
	}
	return m
}

// observePhases records one priced option's per-phase wall durations.
func (m *metrics) observePhases(batch, queue, compute, readback time.Duration) {
	m.phases["batch"].observe(batch.Seconds())
	m.phases["queue"].observe(queue.Seconds())
	m.phases["compute"].observe(compute.Seconds())
	m.phases["readback"].observe(readback.Seconds())
}

// backendCounter returns the per-shard priced counter, creating it on
// first use.
func (m *metrics) backendCounter(name string) *atomic.Int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := m.perBackend[name]
	if !ok {
		c = new(atomic.Int64)
		m.perBackend[name] = c
	}
	return c
}

// backendErrCounter returns the per-shard failed-attempt counter,
// creating it on first use.
func (m *metrics) backendErrCounter(name string) *atomic.Int64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	c, ok := m.perBackendErr[name]
	if !ok {
		c = new(atomic.Int64)
		m.perBackendErr[name] = c
	}
	return c
}

// observeOption records one completed pricing: its queue+compute latency
// and the modelled energy of the shard that priced it. nowSec is the
// caller's already-stamped completion time — the worker holds a fresh
// time.Time, so the hot path is spared another clock read.
func (m *metrics) observeOption(lat time.Duration, nowSec int64, joules float64, backend *atomic.Int64) {
	m.optionsPriced.Add(1)
	m.optionsServed.Add(1)
	m.window.add(nowSec, 1)
	m.modelledJoules.add(joules)
	m.latency.observe(lat.Seconds())
	if backend != nil {
		backend.Add(1)
	}
}

// observeHit records one cache hit served to a client.
func (m *metrics) observeHit() {
	m.cacheHits.Add(1)
	m.optionsServed.Add(1)
	m.window.add(time.Now().Unix(), 1)
}

// joulesPerOption is the modelled energy amortised over everything served
// (cache hits cost nothing, which is exactly their point).
func (m *metrics) joulesPerOption() float64 {
	served := m.optionsServed.Load()
	if served == 0 {
		return 0
	}
	return m.modelledJoules.load() / float64(served)
}

// optionsPerSec is the cumulative serving rate since start.
func (m *metrics) optionsPerSec() float64 {
	el := time.Since(m.start).Seconds()
	if el <= 0 {
		return 0
	}
	return float64(m.optionsServed.Load()) / el
}

// render writes the exposition text: Prometheus-style name/value lines,
// one metric per line, deterministic ordering.
func (m *metrics) render(queueDepth int64, cacheLen int, cacheGen uint64) string {
	var b strings.Builder
	w := func(format string, args ...any) { fmt.Fprintf(&b, format, args...) }

	w("binopt_uptime_seconds %.3f\n", time.Since(m.start).Seconds())
	w("binopt_requests_total{endpoint=\"price\"} %d\n", m.requests.Load())
	w("binopt_requests_total{endpoint=\"volcurve\"} %d\n", m.volcurveReqs.Load())
	w("binopt_bad_requests_total %d\n", m.badRequests.Load())
	w("binopt_rejected_total %d\n", m.rejected.Load())
	w("binopt_options_served_total %d\n", m.optionsServed.Load())
	w("binopt_options_priced_total %d\n", m.optionsPriced.Load())
	w("binopt_cache_hits_total %d\n", m.cacheHits.Load())
	w("binopt_cache_entries %d\n", cacheLen)
	w("binopt_cache_generation %d\n", cacheGen)
	w("binopt_cache_invalidations_total %d\n", m.invalidations.Load())
	w("binopt_cache_invalidated_entries_total %d\n", m.invalidatedEntries.Load())
	w("binopt_solver_pricings_total %d\n", m.solverPricings.Load())
	w("binopt_price_errors_total %d\n", m.priceErrors.Load())
	w("binopt_retries_total %d\n", m.retries.Load())
	w("binopt_queue_depth %d\n", queueDepth)
	w("binopt_options_per_sec %.3f\n", m.optionsPerSec())
	now := time.Now()
	w("binopt_options_per_sec_window %.3f\n", m.window.rate(now.Unix(), now.Sub(m.start)))
	w("binopt_modelled_joules_total %.6g\n", m.modelledJoules.load())
	w("binopt_modelled_joules_per_option %.6g\n", m.joulesPerOption())

	w("binopt_batch_size_count %d\n", m.batchSize.n.Load())
	w("binopt_batch_size_mean %.3f\n", m.batchSize.mean())
	w("binopt_batch_priced_options_total %d\n", m.batchPriced.Load())
	for _, q := range []float64{0.5, 0.95, 0.99} {
		w("binopt_option_latency_seconds{quantile=\"%g\"} %.6g\n", q, m.latency.quantile(q))
	}
	w("binopt_option_latency_seconds_count %d\n", m.latency.n.Load())
	w("binopt_option_latency_seconds_mean %.6g\n", m.latency.mean())

	for _, p := range phaseNames {
		h := m.phases[p]
		for _, q := range []float64{0.5, 0.95, 0.99} {
			w("binopt_phase_seconds{phase=%q,quantile=\"%g\"} %.6g\n", p, q, h.quantile(q))
		}
		w("binopt_phase_seconds_count{phase=%q} %d\n", p, h.n.Load())
		w("binopt_phase_seconds_mean{phase=%q} %.6g\n", p, h.mean())
	}

	m.mu.Lock()
	names := make([]string, 0, len(m.perBackend))
	for name := range m.perBackend {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		w("binopt_backend_options_priced_total{backend=%q} %d\n", name, m.perBackend[name].Load())
	}
	errNames := make([]string, 0, len(m.perBackendErr))
	for name := range m.perBackendErr {
		errNames = append(errNames, name)
	}
	sort.Strings(errNames)
	for _, name := range errNames {
		w("binopt_backend_price_errors_total{backend=%q} %d\n", name, m.perBackendErr[name].Load())
	}
	m.mu.Unlock()

	if m.breakers != nil {
		for _, bs := range m.breakers() {
			w("binopt_breaker_state{backend=%q} %d\n", bs.backend, int(bs.state))
			w("binopt_breaker_opens_total{backend=%q} %d\n", bs.backend, bs.opens)
		}
	}

	if m.substrate != nil {
		for _, st := range m.substrate() {
			c := st.counters
			w("binopt_backend_flops_total{backend=%q} %d\n", st.backend, c.Flops)
			w("binopt_backend_global_bytes_total{backend=%q} %d\n", st.backend, c.GlobalBytes())
			w("binopt_backend_host_bytes_total{backend=%q} %d\n", st.backend, c.HostBytes())
			w("binopt_backend_barriers_total{backend=%q} %d\n", st.backend, c.Barriers)
			w("binopt_backend_kernel_launches_total{backend=%q} %d\n", st.backend, c.KernelLaunches)
			w("binopt_backend_modelled_joules_total{backend=%q} %.6g\n", st.backend, st.joules)
			w("binopt_backend_modelled_device_seconds_total{backend=%q} %.6g\n", st.backend, st.devSeconds)
		}
	}
	if m.traceStats != nil {
		emitted, dropped, retained := m.traceStats()
		w("binopt_trace_spans_total %d\n", emitted)
		w("binopt_trace_spans_dropped_total %d\n", dropped)
		w("binopt_trace_spans_retained %d\n", retained)
	}
	return b.String()
}
