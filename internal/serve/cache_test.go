package serve

import (
	"math"
	"testing"

	"binopt/internal/option"
)

func cacheOption(strike float64) option.Option {
	return option.Option{
		Right: option.Put, Style: option.American,
		Spot: 100, Strike: strike, Rate: 0.03, Sigma: 0.2, T: 0.5,
	}
}

func TestCacheHitAndEviction(t *testing.T) {
	c := newResultCache(2)
	k1 := keyFor(cacheOption(90), 64)
	k2 := keyFor(cacheOption(100), 64)
	k3 := keyFor(cacheOption(110), 64)

	c.put(k1, 1.0)
	c.put(k2, 2.0)
	if v, ok := c.get(k1); !ok || v != 1.0 {
		t.Fatalf("k1 = %v,%v want 1,true", v, ok)
	}
	// k1 is now most recent; inserting k3 must evict k2.
	c.put(k3, 3.0)
	if _, ok := c.get(k2); ok {
		t.Fatal("k2 survived eviction; LRU order wrong")
	}
	if v, ok := c.get(k1); !ok || v != 1.0 {
		t.Fatalf("k1 evicted out of LRU order (%v, %v)", v, ok)
	}
	if v, ok := c.get(k3); !ok || v != 3.0 {
		t.Fatalf("k3 = %v,%v want 3,true", v, ok)
	}
	if c.len() != 2 {
		t.Fatalf("len = %d, want 2", c.len())
	}

	// Updating an existing key must not grow the cache.
	c.put(k3, 3.5)
	if v, _ := c.get(k3); v != 3.5 {
		t.Fatalf("update lost: %v", v)
	}
	if c.len() != 2 {
		t.Fatalf("len after update = %d, want 2", c.len())
	}
}

func TestCacheKeyCanonicalisation(t *testing.T) {
	a := cacheOption(95)
	b := a
	b.Rate = math.Copysign(0, -1) // -0.0
	a.Rate = 0
	if keyFor(a, 128) != keyFor(b, 128) {
		t.Fatal("-0 and +0 rate produced different keys")
	}

	// Different depth must not share keys.
	if keyFor(a, 128) == keyFor(a, 256) {
		t.Fatal("different tree depths share a cache key")
	}
	// Different economics must not share keys.
	cOpt := a
	cOpt.Sigma = 0.21
	if keyFor(a, 128) == keyFor(cOpt, 128) {
		t.Fatal("different sigmas share a cache key")
	}
}

func TestCacheDisabledAndNonFinite(t *testing.T) {
	var c *resultCache // capacity <= 0 yields nil
	if c = newResultCache(0); c != nil {
		t.Fatal("capacity 0 should disable the cache")
	}
	if _, ok := c.get(keyFor(cacheOption(90), 64)); ok {
		t.Fatal("nil cache reported a hit")
	}
	c.put(keyFor(cacheOption(90), 64), 1) // must not panic
	if c.len() != 0 {
		t.Fatal("nil cache has entries")
	}

	real := newResultCache(4)
	real.put(keyFor(cacheOption(90), 64), math.NaN())
	real.put(keyFor(cacheOption(91), 64), math.Inf(1))
	if real.len() != 0 {
		t.Fatalf("non-finite prices cached: len %d", real.len())
	}
}
