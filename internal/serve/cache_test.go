package serve

import (
	"math"
	"testing"

	"binopt/internal/option"
)

func cacheOption(strike float64) option.Option {
	return option.Option{
		Right: option.Put, Style: option.American,
		Spot: 100, Strike: strike, Rate: 0.03, Sigma: 0.2, T: 0.5,
	}
}

func TestCacheHitAndEviction(t *testing.T) {
	c := newResultCache(2)
	k1 := keyFor(cacheOption(90), 64)
	k2 := keyFor(cacheOption(100), 64)
	k3 := keyFor(cacheOption(110), 64)

	c.put(k1, 1.0)
	c.put(k2, 2.0)
	if v, ok := c.get(k1); !ok || v != 1.0 {
		t.Fatalf("k1 = %v,%v want 1,true", v, ok)
	}
	// k1 is now most recent; inserting k3 must evict k2.
	c.put(k3, 3.0)
	if _, ok := c.get(k2); ok {
		t.Fatal("k2 survived eviction; LRU order wrong")
	}
	if v, ok := c.get(k1); !ok || v != 1.0 {
		t.Fatalf("k1 evicted out of LRU order (%v, %v)", v, ok)
	}
	if v, ok := c.get(k3); !ok || v != 3.0 {
		t.Fatalf("k3 = %v,%v want 3,true", v, ok)
	}
	if c.len() != 2 {
		t.Fatalf("len = %d, want 2", c.len())
	}

	// Updating an existing key must not grow the cache.
	c.put(k3, 3.5)
	if v, _ := c.get(k3); v != 3.5 {
		t.Fatalf("update lost: %v", v)
	}
	if c.len() != 2 {
		t.Fatalf("len after update = %d, want 2", c.len())
	}
}

func TestCacheKeyCanonicalisation(t *testing.T) {
	a := cacheOption(95)
	b := a
	b.Rate = math.Copysign(0, -1) // -0.0
	a.Rate = 0
	if keyFor(a, 128) != keyFor(b, 128) {
		t.Fatal("-0 and +0 rate produced different keys")
	}

	// Different depth must not share keys.
	if keyFor(a, 128) == keyFor(a, 256) {
		t.Fatal("different tree depths share a cache key")
	}
	// Different economics must not share keys.
	cOpt := a
	cOpt.Sigma = 0.21
	if keyFor(a, 128) == keyFor(cOpt, 128) {
		t.Fatal("different sigmas share a cache key")
	}
}

// TestKeyForTable pins the exported canonical-key contract the cluster
// router shares with the node caches: same economics → same key and
// same String() bytes, any differing field or depth → different key and
// different bytes. If the two layers ever disagree on identity, routing
// and caching drift apart — this table is the fence.
func TestKeyForTable(t *testing.T) {
	base := cacheOption(95)
	mut := func(f func(*option.Option)) option.Option {
		o := base
		f(&o)
		return o
	}
	cases := []struct {
		name  string
		a, b  option.Option
		as    int // steps for a
		bs    int // steps for b
		equal bool
	}{
		{"identical", base, base, 128, 128, true},
		{"negative zero rate folds", mut(func(o *option.Option) { o.Rate = 0 }),
			mut(func(o *option.Option) { o.Rate = math.Copysign(0, -1) }), 128, 128, true},
		{"negative zero div folds", mut(func(o *option.Option) { o.Div = 0 }),
			mut(func(o *option.Option) { o.Div = math.Copysign(0, -1) }), 128, 128, true},
		{"different steps", base, base, 128, 256, false},
		{"different spot", base, mut(func(o *option.Option) { o.Spot = 101 }), 128, 128, false},
		{"different strike", base, mut(func(o *option.Option) { o.Strike = 96 }), 128, 128, false},
		{"different rate", base, mut(func(o *option.Option) { o.Rate = 0.031 }), 128, 128, false},
		{"different sigma", base, mut(func(o *option.Option) { o.Sigma = 0.21 }), 128, 128, false},
		{"different expiry", base, mut(func(o *option.Option) { o.T = 0.75 }), 128, 128, false},
		{"different right", base, mut(func(o *option.Option) { o.Right = option.Call }), 128, 128, false},
		{"different style", base, mut(func(o *option.Option) { o.Style = option.European }), 128, 128, false},
		{"one ulp of sigma", base,
			mut(func(o *option.Option) { o.Sigma = math.Nextafter(o.Sigma, 1) }), 128, 128, false},
	}
	for _, tc := range cases {
		ka, kb := KeyFor(tc.a, tc.as), KeyFor(tc.b, tc.bs)
		if (ka == kb) != tc.equal {
			t.Errorf("%s: key equality = %v, want %v", tc.name, ka == kb, tc.equal)
		}
		if (ka.String() == kb.String()) != tc.equal {
			t.Errorf("%s: String equality = %v, want %v (%q vs %q)",
				tc.name, ka.String() == kb.String(), tc.equal, ka, kb)
		}
	}
	if got := KeyFor(base, 128).Steps(); got != 128 {
		t.Errorf("Steps() = %d, want 128", got)
	}
	// The internal spelling must stay the exported definition.
	if keyFor(base, 64) != KeyFor(base, 64) {
		t.Error("keyFor and KeyFor diverge")
	}
}

func TestCacheFlush(t *testing.T) {
	c := newResultCache(8)
	for i := 0; i < 5; i++ {
		c.put(keyFor(cacheOption(90+float64(i)), 64), float64(i))
	}
	if n := c.flush(); n != 5 {
		t.Fatalf("flush evicted %d, want 5", n)
	}
	if c.len() != 0 {
		t.Fatalf("len after flush = %d, want 0", c.len())
	}
	if _, ok := c.get(keyFor(cacheOption(90), 64)); ok {
		t.Fatal("entry survived flush")
	}
	// Flushed cache must keep working.
	c.put(keyFor(cacheOption(90), 64), 1.5)
	if v, ok := c.get(keyFor(cacheOption(90), 64)); !ok || v != 1.5 {
		t.Fatalf("post-flush put/get = %v,%v", v, ok)
	}
	var nilCache *resultCache
	if nilCache.flush() != 0 {
		t.Fatal("nil cache flush != 0")
	}
}

func TestCacheDisabledAndNonFinite(t *testing.T) {
	var c *resultCache // capacity <= 0 yields nil
	if c = newResultCache(0); c != nil {
		t.Fatal("capacity 0 should disable the cache")
	}
	if _, ok := c.get(keyFor(cacheOption(90), 64)); ok {
		t.Fatal("nil cache reported a hit")
	}
	c.put(keyFor(cacheOption(90), 64), 1) // must not panic
	if c.len() != 0 {
		t.Fatal("nil cache has entries")
	}

	real := newResultCache(4)
	real.put(keyFor(cacheOption(90), 64), math.NaN())
	real.put(keyFor(cacheOption(91), 64), math.Inf(1))
	if real.len() != 0 {
		t.Fatalf("non-finite prices cached: len %d", real.len())
	}
}
