package serve

import (
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"binopt/internal/accel"
	"binopt/internal/perf"
	"binopt/internal/telemetry"
)

// BackendConfig describes one pricing shard: a modelled accelerator from
// the paper's test environment. The estimate drives admission (faster
// shards are offered work first) and the energy accounting (modelled
// joules per option = power / throughput). When Engine is set the shard
// executes on that platform's calibrated engine — probed against the real
// simulated kernel and metering device counters — so results are exact
// and identical across shards while each shard's substrate activity is
// accounted separately.
type BackendConfig struct {
	// Name labels the shard in responses and metrics; DefaultBackends
	// uses the accel registry name.
	Name string
	// Kind classifies the substrate ("fpga", "gpu", "cpu", "embedded").
	Kind string
	// Estimate is the modelled throughput/power row for this device.
	Estimate perf.Estimate
	// Engine, when set, prices this shard's work on the platform engine
	// (bit-identical to the reference lattice, with counter accounting).
	// When nil the shard prices on the server's reference engine.
	Engine *accel.Engine
	// Workers is the number of concurrent batch executors (default 1).
	Workers int
	// QueueDepth bounds the shard's batch queue (default 32 batches).
	QueueDepth int
}

// DefaultBackends builds the serving pool from the accel registry at the
// given tree depth: every registered platform — the DE4's kernel IV.B
// (the energy-efficiency winner), the GTX660's kernel IV.B (the
// throughput winner), the Xeon software reference, and any extra
// registered target such as the §VI embedded SoC — becomes one shard
// executing on its own platform engine: the heterogeneous pool a
// data-centre deployment of the paper's design would schedule across.
func DefaultBackends(steps int) ([]BackendConfig, error) {
	if steps < 1 {
		return nil, fmt.Errorf("serve: lattice depth must be a positive number of steps, got %d", steps)
	}
	platforms := accel.Platforms()
	out := make([]BackendConfig, 0, len(platforms))
	for _, p := range platforms {
		d := p.Describe()
		eng, err := p.NewEngine(steps)
		if err != nil {
			return nil, fmt.Errorf("serve: backend %s: %w", d.Name, err)
		}
		workers := 1
		if d.Kind == "fpga" || d.Kind == "gpu" {
			workers = 2
		}
		out = append(out, BackendConfig{
			Name:     d.Name,
			Kind:     d.Kind,
			Estimate: eng.Estimate(),
			Engine:   eng,
			Workers:  workers,
		})
	}
	return out, nil
}

// backend is a running shard: a bounded batch queue drained by Workers
// goroutines.
type backend struct {
	cfg    BackendConfig
	jobs   chan []*job
	joules float64 // modelled joules per option on this device
	// pending counts options dispatched to this shard and not yet
	// completed; admission reads it to estimate drain time.
	pending atomic.Int64
	priced  *atomic.Int64 // metrics counter
}

func newBackend(cfg BackendConfig, m *metrics) *backend {
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 32
	}
	var joules float64
	switch {
	case cfg.Engine != nil:
		joules = cfg.Engine.ModelledJoulesPerOption()
	case cfg.Estimate.OptionsPerSec > 0:
		joules = cfg.Estimate.PowerWatts / cfg.Estimate.OptionsPerSec
	}
	return &backend{
		cfg:    cfg,
		jobs:   make(chan []*job, cfg.QueueDepth),
		joules: joules,
		priced: m.backendCounter(cfg.Name),
	}
}

// drainScore estimates how long this shard's backlog takes to clear under
// its modelled throughput — the admission signal. Lower is better.
func (be *backend) drainScore() float64 {
	rate := be.cfg.Estimate.OptionsPerSec
	if rate <= 0 {
		rate = 1
	}
	return float64(be.pending.Load()+1) / rate
}

// dispatchBatch routes one flushed batch to the shard with the shortest
// modelled drain time that has queue space, falling back to a blocking
// send on the best shard when every queue is full (admission control has
// already bounded the total backlog, so the block is bounded too).
func (s *Server) dispatchBatch(batch []*job) {
	if len(batch) == 0 {
		return
	}
	s.metrics.batchSize.observe(float64(len(batch)))
	now := time.Now()
	for _, j := range batch {
		j.flushed = now
	}

	order := make([]*backend, len(s.backends))
	copy(order, s.backends)
	sort.Slice(order, func(i, j int) bool { return order[i].drainScore() < order[j].drainScore() })

	for _, be := range order {
		select {
		case be.jobs <- batch:
			be.pending.Add(int64(len(batch)))
			return
		default:
		}
	}
	be := order[0]
	be.pending.Add(int64(len(batch)))
	be.jobs <- batch
}

// worker drains batches from one shard until its queue closes. A shard
// with a platform engine prices on it (a PriceFunc override wins, so stub
// tests keep their injected kernel); the rest fall back to the server's
// reference engine. Results are cached, metered, and delivered on each
// job's buffered channel.
func (s *Server) worker(be *backend) {
	defer s.wg.Done()
	priceFn := s.priceFn
	engine := be.cfg.Engine
	if engine != nil && s.cfg.PriceFunc == nil {
		priceFn = engine.Price
	} else {
		engine = nil // overridden kernels have no modelled device timeline
	}
	for batch := range be.jobs {
		for _, j := range batch {
			j.picked = time.Now()
			var price float64
			var err error
			if engine != nil && s.tracer.Enabled() {
				var dtr accel.DeviceTrace
				price, dtr, err = engine.PriceTraced(j.opt)
				if err == nil {
					s.emitDeviceSpans(j, dtr)
				}
			} else {
				price, err = priceFn(j.opt)
			}
			j.computed = time.Now()
			if err == nil {
				s.cache.put(j.key, price)
				s.metrics.observeOption(j.computed.Sub(j.enqueued), j.computed.Unix(), be.joules, be.priced)
				s.emitComputeSpan(j, be)
			}
			be.pending.Add(-1)
			s.queued.Add(-1)
			j.done <- jobResult{price: price, backend: be.cfg.Name, joules: be.joules, err: err}
		}
	}
}

// emitComputeSpan records the worker-side compute span of one priced
// option on the host clock.
func (s *Server) emitComputeSpan(j *job, be *backend) {
	if !s.tracer.Enabled() {
		return
	}
	s.tracer.Emit(telemetry.Span{
		Req: j.req, Name: "compute", Proc: "host", Thread: "backend " + be.cfg.Name,
		Start: j.picked, Dur: j.computed.Sub(j.picked), Clock: telemetry.Wall,
		Attrs: map[string]any{
			"backend": be.cfg.Name,
			"opt":     j.seq,
			"steps":   s.cfg.Steps,
			"joules":  be.joules,
		},
	})
}

// emitDeviceSpans records one priced option's modelled device timeline:
// an enclosing option span plus one span per modelled command, all on
// the backend's virtual device clock.
func (s *Server) emitDeviceSpans(j *job, dtr accel.DeviceTrace) {
	proc := "device:" + dtr.Backend
	s.tracer.Emit(telemetry.Span{
		Req: j.req, Name: "option", Proc: proc, Thread: "device clock",
		DevStart: dtr.Start, DevDur: dtr.End - dtr.Start, Clock: telemetry.Device,
		Attrs: map[string]any{"backend": dtr.Backend, "opt": j.seq, "steps": s.cfg.Steps},
	})
	for _, c := range dtr.Commands {
		s.tracer.Emit(telemetry.Span{
			Req: j.req, Name: c.Name, Proc: proc, Thread: "cl queue",
			DevStart: c.Start, DevDur: c.End - c.Start, Clock: telemetry.Device,
			Attrs: map[string]any{
				"backend":  dtr.Backend,
				"queued_s": c.Queued,
				"submit_s": c.Submit,
			},
		})
	}
}

// aggregateRate is the pool's total modelled throughput, used to compute
// Retry-After under saturation.
func (s *Server) aggregateRate() float64 {
	var sum float64
	for _, be := range s.backends {
		sum += be.cfg.Estimate.OptionsPerSec
	}
	if sum <= 0 {
		return 1
	}
	return sum
}
