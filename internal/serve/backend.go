package serve

import (
	"fmt"
	"sort"
	"sync/atomic"
	"time"

	"binopt/internal/device"
	"binopt/internal/hls"
	"binopt/internal/kernels"
	"binopt/internal/perf"
)

// BackendConfig describes one pricing shard: a modelled accelerator from
// the paper's test environment. The estimate drives admission (faster
// shards are offered work first) and the energy accounting (modelled
// joules per option = power / throughput); the arithmetic itself runs on
// the host reference engine so results are exact and identical across
// shards.
type BackendConfig struct {
	// Name labels the shard in responses and metrics.
	Name string
	// Estimate is the modelled throughput/power row for this device.
	Estimate perf.Estimate
	// Workers is the number of concurrent batch executors (default 1).
	Workers int
	// QueueDepth bounds the shard's batch queue (default 32 batches).
	QueueDepth int
}

// DefaultBackends models the paper's three platforms at the given tree
// depth: the DE4's kernel IV.B (the energy-efficiency winner), the
// GTX660's kernel IV.B (the throughput winner) and the Xeon software
// reference — the heterogeneous pool a data-centre deployment of the
// paper's design would schedule across.
func DefaultBackends(steps int) ([]BackendConfig, error) {
	board := device.DE4()
	fit, err := hls.Fit(board, kernels.ProfileIVB(steps), kernels.PaperKnobsIVB())
	if err != nil {
		return nil, fmt.Errorf("serve: fitting kernel IV.B: %w", err)
	}
	fpga, err := perf.FPGAIVB(board, fit, steps, false, false)
	if err != nil {
		return nil, fmt.Errorf("serve: FPGA estimate: %w", err)
	}
	gpu, err := perf.GPUIVB(device.GTX660(), steps, false)
	if err != nil {
		return nil, fmt.Errorf("serve: GPU estimate: %w", err)
	}
	cpu, err := perf.CPUReference(device.XeonX5450(), steps, false)
	if err != nil {
		return nil, fmt.Errorf("serve: CPU estimate: %w", err)
	}
	return []BackendConfig{
		{Name: "fpga-ivb", Estimate: fpga, Workers: 2},
		{Name: "gpu-ivb", Estimate: gpu, Workers: 2},
		{Name: "cpu-ref", Estimate: cpu, Workers: 1},
	}, nil
}

// backend is a running shard: a bounded batch queue drained by Workers
// goroutines.
type backend struct {
	cfg    BackendConfig
	jobs   chan []*job
	joules float64 // modelled joules per option on this device
	// pending counts options dispatched to this shard and not yet
	// completed; admission reads it to estimate drain time.
	pending atomic.Int64
	priced  *atomic.Int64 // metrics counter
}

func newBackend(cfg BackendConfig, m *metrics) *backend {
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 32
	}
	var joules float64
	if cfg.Estimate.OptionsPerSec > 0 {
		joules = cfg.Estimate.PowerWatts / cfg.Estimate.OptionsPerSec
	}
	return &backend{
		cfg:    cfg,
		jobs:   make(chan []*job, cfg.QueueDepth),
		joules: joules,
		priced: m.backendCounter(cfg.Name),
	}
}

// drainScore estimates how long this shard's backlog takes to clear under
// its modelled throughput — the admission signal. Lower is better.
func (be *backend) drainScore() float64 {
	rate := be.cfg.Estimate.OptionsPerSec
	if rate <= 0 {
		rate = 1
	}
	return float64(be.pending.Load()+1) / rate
}

// dispatchBatch routes one flushed batch to the shard with the shortest
// modelled drain time that has queue space, falling back to a blocking
// send on the best shard when every queue is full (admission control has
// already bounded the total backlog, so the block is bounded too).
func (s *Server) dispatchBatch(batch []*job) {
	if len(batch) == 0 {
		return
	}
	s.metrics.batchSize.observe(float64(len(batch)))

	order := make([]*backend, len(s.backends))
	copy(order, s.backends)
	sort.Slice(order, func(i, j int) bool { return order[i].drainScore() < order[j].drainScore() })

	for _, be := range order {
		select {
		case be.jobs <- batch:
			be.pending.Add(int64(len(batch)))
			return
		default:
		}
	}
	be := order[0]
	be.pending.Add(int64(len(batch)))
	be.jobs <- batch
}

// worker drains batches from one shard until its queue closes. Results
// are cached, metered, and delivered on each job's buffered channel.
func (s *Server) worker(be *backend) {
	defer s.wg.Done()
	for batch := range be.jobs {
		for _, j := range batch {
			price, err := s.priceFn(j.opt)
			if err == nil {
				s.cache.put(j.key, price)
				s.metrics.observeOption(time.Since(j.enqueued), be.joules, be.priced)
			}
			be.pending.Add(-1)
			s.queued.Add(-1)
			j.done <- jobResult{price: price, backend: be.cfg.Name, joules: be.joules, err: err}
		}
	}
}

// aggregateRate is the pool's total modelled throughput, used to compute
// Retry-After under saturation.
func (s *Server) aggregateRate() float64 {
	var sum float64
	for _, be := range s.backends {
		sum += be.cfg.Estimate.OptionsPerSec
	}
	if sum <= 0 {
		return 1
	}
	return sum
}
