package serve

import (
	"fmt"
	"reflect"
	"sort"
	"sync/atomic"
	"time"

	"binopt/internal/accel"
	"binopt/internal/option"
	"binopt/internal/perf"
	"binopt/internal/telemetry"
)

// BackendConfig describes one pricing shard: a modelled accelerator from
// the paper's test environment. The estimate drives admission (faster
// shards are offered work first) and the energy accounting (modelled
// joules per option = power / throughput). When Engine is set the shard
// executes on that platform's calibrated engine — probed against the real
// simulated kernel and metering device counters — so results are exact
// and identical across shards while each shard's substrate activity is
// accounted separately.
type BackendConfig struct {
	// Name labels the shard in responses and metrics; DefaultBackends
	// uses the accel registry name.
	Name string
	// Kind classifies the substrate ("fpga", "gpu", "cpu", "embedded").
	Kind string
	// Estimate is the modelled throughput/power row for this device.
	Estimate perf.Estimate
	// Engine, when set, prices this shard's work on the platform engine
	// (bit-identical to the reference lattice, with counter accounting).
	// When nil the shard prices on the server's reference engine.
	Engine *accel.Engine
	// PriceFunc overrides this shard's kernel alone — the fault-
	// tolerance tests use it to make exactly one shard misbehave. A
	// shard with a PriceFunc is skipped by the startup parity check and
	// has no modelled device timeline.
	PriceFunc func(option.Option) (float64, error)
	// Workers is the number of concurrent batch executors (default 1).
	Workers int
	// QueueDepth bounds the shard's batch queue (default 32 batches).
	QueueDepth int
}

// DefaultBackends builds the serving pool from the accel registry at the
// given tree depth: every registered platform — the DE4's kernel IV.B
// (the energy-efficiency winner), the GTX660's kernel IV.B (the
// throughput winner), the Xeon software reference, and any extra
// registered target such as the §VI embedded SoC — becomes one shard
// executing on its own platform engine: the heterogeneous pool a
// data-centre deployment of the paper's design would schedule across.
func DefaultBackends(steps int) ([]BackendConfig, error) {
	if steps < 1 {
		return nil, fmt.Errorf("serve: lattice depth must be a positive number of steps, got %d", steps)
	}
	platforms := accel.Platforms()
	out := make([]BackendConfig, 0, len(platforms))
	for _, p := range platforms {
		d := p.Describe()
		eng, err := p.NewEngine(steps)
		if err != nil {
			return nil, fmt.Errorf("serve: backend %s: %w", d.Name, err)
		}
		workers := 1
		if d.Kind == "fpga" || d.Kind == "gpu" {
			workers = 2
		}
		out = append(out, BackendConfig{
			Name:     d.Name,
			Kind:     d.Kind,
			Estimate: eng.Estimate(),
			Engine:   eng,
			Workers:  workers,
		})
	}
	return out, nil
}

// backend is a running shard: a bounded batch queue drained by Workers
// goroutines, with a circuit breaker tracking its rolling health.
type backend struct {
	cfg    BackendConfig
	jobs   chan []*job
	joules float64 // modelled joules per option on this device
	// pending counts options dispatched to this shard and not yet
	// completed or failed over; admission reads it to estimate drain
	// time.
	pending atomic.Int64
	priced  *atomic.Int64 // metrics counter: options priced here
	errs    *atomic.Int64 // metrics counter: pricing attempts failed here
	breaker *breaker
}

func newBackend(cfg BackendConfig, m *metrics, bcfg BreakerConfig) *backend {
	if cfg.Workers <= 0 {
		cfg.Workers = 1
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 32
	}
	var joules float64
	switch {
	case cfg.Engine != nil:
		joules = cfg.Engine.ModelledJoulesPerOption()
	case cfg.Estimate.OptionsPerSec > 0:
		joules = cfg.Estimate.PowerWatts / cfg.Estimate.OptionsPerSec
	}
	return &backend{
		cfg:     cfg,
		jobs:    make(chan []*job, cfg.QueueDepth),
		joules:  joules,
		priced:  m.backendCounter(cfg.Name),
		errs:    m.backendErrCounter(cfg.Name),
		breaker: newBreaker(bcfg),
	}
}

// drainScore estimates how long this shard's backlog takes to clear under
// its modelled throughput — the admission signal. Lower is better.
func (be *backend) drainScore() float64 {
	rate := be.cfg.Estimate.OptionsPerSec
	if rate <= 0 {
		rate = 1
	}
	return float64(be.pending.Load()+1) / rate
}

// dispatchBatch routes one freshly flushed batch into the pool.
func (s *Server) dispatchBatch(batch []*job) {
	if len(batch) == 0 {
		return
	}
	s.metrics.batchSize.Observe(float64(len(batch)))
	now := time.Now()
	for _, j := range batch {
		j.flushed = now
	}
	s.dispatch(batch, nil)
}

// dispatch places a batch on a shard queue. Candidates are the breaker-
// eligible shards minus `exclude` (the shard a retried job just failed
// on); if the breakers have shed everything, all shards are candidates
// again — a fully dark pool should still try rather than park work.
//
// First a non-blocking pass in modelled-drain-time order; if every
// candidate queue is full, a select across *every* candidate's queue at
// once, so the batch lands on whichever shard frees up first instead of
// blocking on one queue chosen from by-then-stale drain scores. The
// shutdown-abort channel participates in the same select: a send
// abandoned at shutdown fails the batch's jobs with ErrClosed and rolls
// back their admission, rather than leaking them (and a pending count)
// on a queue nobody drains.
//
// A shard's pending count is booked only after its send completes, so
// the abandoned path has nothing to roll back there.
func (s *Server) dispatch(batch []*job, exclude *backend) {
	candidates := make([]*backend, 0, len(s.backends))
	for _, be := range s.backends {
		if be != exclude && be.breaker.eligible() {
			candidates = append(candidates, be)
		}
	}
	if len(candidates) == 0 {
		for _, be := range s.backends {
			if be != exclude {
				candidates = append(candidates, be)
			}
		}
	}
	if len(candidates) == 0 {
		candidates = s.backends
	}
	sort.Slice(candidates, func(i, j int) bool { return candidates[i].drainScore() < candidates[j].drainScore() })

	for _, be := range candidates {
		select {
		case be.jobs <- batch:
			be.pending.Add(int64(len(batch)))
			return
		default:
		}
	}

	cases := make([]reflect.SelectCase, 0, len(candidates)+1)
	cases = append(cases, reflect.SelectCase{Dir: reflect.SelectRecv, Chan: reflect.ValueOf(s.aborted)})
	bv := reflect.ValueOf(batch)
	for _, be := range candidates {
		cases = append(cases, reflect.SelectCase{Dir: reflect.SelectSend, Chan: reflect.ValueOf(be.jobs), Send: bv})
	}
	chosen, _, _ := reflect.Select(cases)
	if chosen == 0 {
		// Shutdown abandoned the send: fail the jobs and undo admission.
		for _, j := range batch {
			s.queued.Add(-1)
			j.done <- jobResult{retries: j.retries, err: ErrClosed}
		}
		return
	}
	candidates[chosen-1].pending.Add(int64(len(batch)))
}

// shardKernel resolves the pricing function one shard's workers run: a
// per-shard PriceFunc override first (fault tests), then the server-
// wide override (stub tests keep their injected kernel), then the
// shard's platform engine, then the server's reference engine. Only the
// engine path has a modelled device timeline.
func (s *Server) shardKernel(be *backend) (func(option.Option) (float64, error), *accel.Engine) {
	switch {
	case be.cfg.PriceFunc != nil:
		return be.cfg.PriceFunc, nil
	case s.cfg.PriceFunc != nil:
		return s.priceFn, nil
	case be.cfg.Engine != nil:
		return be.cfg.Engine.Price, be.cfg.Engine
	default:
		return s.priceFn, nil
	}
}

// worker drains batches from one shard until its queue closes. A whole
// cache-miss micro-batch is submitted to the shard engine's
// quad-interleaved batch pricer in one call; batches the fast path
// cannot take (no engine, device-timeline tracing, single job, or a
// failed submission) fall back to the per-job loop. Results are cached,
// metered, and delivered on each job's buffered channel; failed
// pricings are metered against the shard's breaker and handed to
// failover.
func (s *Server) worker(be *backend) {
	defer s.wg.Done()
	priceFn, engine := s.shardKernel(be)
	for batch := range be.jobs {
		if s.runBatch(be, batch, engine) {
			continue
		}
		for _, j := range batch {
			s.runJob(be, j, priceFn, engine)
		}
	}
}

// runBatch prices one micro-batch through the shard engine's batch
// path, which routes groups of four options into one shared
// quad-interleaved sweep. It reports false when the batch must take the
// per-job path instead: no platform engine, the tracer wants per-option
// device timelines (PriceTraced is per-option), a single job (nothing
// to interleave), or the batch submission failed — re-running the jobs
// individually lets the breaker and failover see exactly which option
// failed, instead of failing the whole batch over.
func (s *Server) runBatch(be *backend, batch []*job, engine *accel.Engine) bool {
	if engine == nil || s.tracer.Enabled() || len(batch) < 2 {
		return false
	}
	picked := time.Now()
	opts := make([]option.Option, len(batch))
	for i, j := range batch {
		j.picked = picked
		opts[i] = j.opt
	}
	prices, err := engine.PriceBatch(opts, 1)
	if err != nil {
		return false
	}
	computed := time.Now()
	s.metrics.batchPriced.Add(int64(len(batch)))
	for i, j := range batch {
		j.computed = computed
		be.breaker.onSuccess()
		s.cache.put(j.key, prices[i])
		s.metrics.observeOption(computed.Sub(j.enqueued), computed.Unix(), be.joules, be.priced, j.trace)
		be.pending.Add(-1)
		s.queued.Add(-1)
		j.done <- jobResult{price: prices[i], backend: be.cfg.Name, joules: be.joules, retries: j.retries, err: nil}
	}
	return true
}

// runJob prices one job on one shard and settles its outcome: success
// feeds the cache, the metrics and the requester; failure feeds the
// breaker, the error counters and the failover path.
func (s *Server) runJob(be *backend, j *job, priceFn func(option.Option) (float64, error), engine *accel.Engine) {
	j.picked = time.Now()
	var price float64
	var err error
	if engine != nil && s.tracer.Enabled() {
		var dtr accel.DeviceTrace
		price, dtr, err = engine.PriceTraced(j.opt)
		if err == nil {
			s.emitDeviceSpans(j, dtr)
		}
	} else {
		price, err = priceFn(j.opt)
	}
	j.computed = time.Now()
	if err != nil {
		be.breaker.onFailure()
		be.errs.Add(1)
		s.metrics.priceErrors.Add(1)
		s.emitErrorSpan(j, be, err)
		s.failover(be, j, err)
		return
	}
	be.breaker.onSuccess()
	s.cache.put(j.key, price)
	s.metrics.observeOption(j.computed.Sub(j.enqueued), j.computed.Unix(), be.joules, be.priced, j.trace)
	s.emitComputeSpan(j, be)
	be.pending.Add(-1)
	s.queued.Add(-1)
	j.done <- jobResult{price: price, backend: be.cfg.Name, joules: be.joules, retries: j.retries, err: nil}
}

// failover settles a failed pricing attempt: within the attempt budget
// the job is re-dispatched — after an exponential backoff — to the
// next-best shard whose breaker admits it (bit-identical results across
// shards are what make silent failover safe); past the budget the
// requester gets the error. The job keeps holding its admission slot
// (s.queued) throughout, so graceful drain waits for in-flight retries.
func (s *Server) failover(be *backend, j *job, err error) {
	be.pending.Add(-1)
	attempts := j.retries + 1
	if attempts >= s.cfg.MaxAttempts {
		s.queued.Add(-1)
		j.done <- jobResult{
			backend: be.cfg.Name,
			retries: j.retries,
			err:     fmt.Errorf("%d attempt(s) failed, last on %s: %w", attempts, be.cfg.Name, err),
		}
		return
	}
	j.retries++
	s.metrics.retries.Add(1)
	backoff := retryBackoff(s.cfg.RetryBackoff, j.retries)
	s.emitRetrySpan(j, be, backoff, err)
	// The backoff timer, not the worker, re-dispatches: the shard's
	// other queued jobs must not wait out this job's penalty.
	time.AfterFunc(backoff, func() { s.dispatch([]*job{j}, be) })
}

// retryBackoff is base<<(retry-1), clamped so a misconfigured attempt
// budget cannot shift into overflow.
func retryBackoff(base time.Duration, retry int) time.Duration {
	if retry > 16 {
		retry = 16
	}
	return base << (retry - 1)
}

// emitComputeSpan records the worker-side compute span of one priced
// option on the host clock.
func (s *Server) emitComputeSpan(j *job, be *backend) {
	if !s.tracer.Enabled() {
		return
	}
	s.tracer.Emit(telemetry.Span{
		Req: j.req, Trace: j.trace, Name: "compute", Proc: "host", Thread: "backend " + be.cfg.Name,
		Start: j.picked, Dur: j.computed.Sub(j.picked), Clock: telemetry.Wall,
		Attrs: map[string]any{
			"backend": be.cfg.Name,
			"opt":     j.seq,
			"steps":   s.cfg.Steps,
			"joules":  be.joules,
		},
	})
}

// emitErrorSpan records one failed pricing attempt on the shard's
// track, so a failed-then-recovered option reads as error → retry →
// compute in /debug/trace.
func (s *Server) emitErrorSpan(j *job, be *backend, err error) {
	if !s.tracer.Enabled() {
		return
	}
	s.tracer.Emit(telemetry.Span{
		Req: j.req, Trace: j.trace, Name: "error", Proc: "host", Thread: "backend " + be.cfg.Name,
		Start: j.picked, Dur: j.computed.Sub(j.picked), Clock: telemetry.Wall,
		Attrs: map[string]any{
			"backend": be.cfg.Name,
			"opt":     j.seq,
			"attempt": j.retries + 1,
			"error":   err.Error(),
		},
	})
}

// emitRetrySpan records the backoff interval between a failed attempt
// and its re-dispatch, on the requests track.
func (s *Server) emitRetrySpan(j *job, be *backend, backoff time.Duration, err error) {
	if !s.tracer.Enabled() {
		return
	}
	s.tracer.Emit(telemetry.Span{
		Req: j.req, Trace: j.trace, Name: "retry", Proc: "host", Thread: "requests",
		Start: j.computed, Dur: backoff, Clock: telemetry.Wall,
		Attrs: map[string]any{
			"failed_backend": be.cfg.Name,
			"opt":            j.seq,
			"attempt":        j.retries,
			"backoff":        backoff.String(),
			"error":          err.Error(),
		},
	})
}

// emitDeviceSpans records one priced option's modelled device timeline:
// an enclosing option span plus one span per modelled command, all on
// the backend's virtual device clock.
func (s *Server) emitDeviceSpans(j *job, dtr accel.DeviceTrace) {
	proc := "device:" + dtr.Backend
	s.tracer.Emit(telemetry.Span{
		Req: j.req, Trace: j.trace, Name: "option", Proc: proc, Thread: "device clock",
		DevStart: dtr.Start, DevDur: dtr.End - dtr.Start, Clock: telemetry.Device,
		Attrs: map[string]any{"backend": dtr.Backend, "opt": j.seq, "steps": s.cfg.Steps},
	})
	for _, c := range dtr.Commands {
		s.tracer.Emit(telemetry.Span{
			Req: j.req, Trace: j.trace, Name: c.Name, Proc: proc, Thread: "cl queue",
			DevStart: c.Start, DevDur: c.End - c.Start, Clock: telemetry.Device,
			Attrs: map[string]any{
				"backend":  dtr.Backend,
				"queued_s": c.Queued,
				"submit_s": c.Submit,
			},
		})
	}
}

// aggregateRate is the pool's modelled throughput with open-breaker
// shards excluded — a shard the dispatcher is routing around must not
// inflate the drain rate behind Retry-After, or 429s would promise
// capacity a partial outage cannot deliver. A fully open pool falls
// back to the full sum rather than advertise zero.
func (s *Server) aggregateRate() float64 {
	var sum, all float64
	for _, be := range s.backends {
		rate := be.cfg.Estimate.OptionsPerSec
		all += rate
		if st, _ := be.breaker.snapshot(); st != breakerOpen {
			sum += rate
		}
	}
	if sum <= 0 {
		sum = all
	}
	if sum <= 0 {
		return 1
	}
	return sum
}

// breakerStats snapshots every shard's breaker for /metrics.
func (s *Server) breakerStats() []breakerStat {
	out := make([]breakerStat, 0, len(s.backends))
	for _, be := range s.backends {
		st, opens := be.breaker.snapshot()
		out = append(out, breakerStat{backend: be.cfg.Name, state: st, opens: opens})
	}
	return out
}
