package serve

import (
	"strings"
	"sync"
	"testing"
	"time"

	"binopt/internal/omhist"
)

func TestHistogramQuantiles(t *testing.T) {
	h := omhist.New(latencyBuckets)
	// 1000 samples spread uniformly over (0, 100ms].
	for i := 1; i <= 1000; i++ {
		h.Observe(float64(i) * 100e-6)
	}
	checks := []struct {
		q        float64
		lo, hi   float64
		quantile string
	}{
		{0.50, 0.035, 0.075, "p50"}, // true value 50ms, bucket [51.2ms, 102.4ms) edges
		{0.95, 0.080, 0.110, "p95"}, // true 95ms
		{0.99, 0.090, 0.110, "p99"}, // true 99ms
	}
	for _, c := range checks {
		got := h.Quantile(c.q)
		if got < c.lo || got > c.hi {
			t.Errorf("%s = %v, want within [%v, %v]", c.quantile, got, c.lo, c.hi)
		}
	}
	if mean := h.Mean(); mean < 0.045 || mean > 0.055 {
		t.Errorf("mean = %v, want ~0.05005", mean)
	}
	if h.Quantile(0.5) >= h.Quantile(0.99) {
		t.Error("quantiles not monotone")
	}
}

func TestHistogramEmptyAndOverflow(t *testing.T) {
	h := omhist.New(latencyBuckets)
	if q := h.Quantile(0.5); q != 0 {
		t.Fatalf("empty quantile = %v, want 0", q)
	}
	if m := h.Mean(); m != 0 {
		t.Fatalf("empty mean = %v, want 0", m)
	}
	h.Observe(1e6) // beyond the last bound: overflow bucket
	if q := h.Quantile(0.99); q <= 0 {
		t.Fatalf("overflow quantile = %v, want positive", q)
	}
}

func TestAtomicFloatConcurrentAdd(t *testing.T) {
	var f atomicFloat
	var wg sync.WaitGroup
	const workers, per = 8, 1000
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				f.add(0.5)
			}
		}()
	}
	wg.Wait()
	if got, want := f.load(), float64(workers*per)*0.5; got != want {
		t.Fatalf("sum = %v, want %v", got, want)
	}
}

func TestMetricsRenderAndEnergy(t *testing.T) {
	m := newMetrics()
	be := m.backendCounter("fpga-ivb")
	m.observeOption(2*time.Millisecond, time.Now().Unix(), 0.005, be, "4bf92f3577b34da6a3ce929d0e0e4736")
	m.observeOption(3*time.Millisecond, time.Now().Unix(), 0.005, be, "")
	m.observeHit()
	m.observeHit()

	// 0.01 J over 4 served options: caching halves the modelled energy
	// per option relative to pricing everything.
	if jpo := m.joulesPerOption(); jpo < 0.0024 || jpo > 0.0026 {
		t.Fatalf("joules/option = %v, want 0.0025", jpo)
	}

	text := m.render(3, 17, 5)
	for _, want := range []string{
		"binopt_options_served_total 4",
		"binopt_options_priced_total 2",
		"binopt_cache_hits_total 2",
		"binopt_queue_depth 3",
		"binopt_cache_entries 17",
		"binopt_cache_generation 5",
		"binopt_cache_invalidations_total 0",
		`binopt_backend_options_priced_total{backend="fpga-ivb"} 2`,
		// The latency surface is now an OpenMetrics bucket histogram,
		// with the trace-tagged observation pinned as an exemplar.
		`binopt_option_latency_seconds_bucket{le="+Inf"} 2`,
		"binopt_option_latency_seconds_count 2",
		`# {trace_id="4bf92f3577b34da6a3ce929d0e0e4736"} 0.002`,
	} {
		if !strings.Contains(text, want) {
			t.Errorf("render missing %q:\n%s", want, text)
		}
	}
	if strings.Contains(text, `quantile=`) {
		t.Error("quantile gauges survived the histogram migration")
	}
}
