package serve

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"binopt/internal/option"
	"binopt/internal/perf"
)

// stubEstimate is a synthetic perf row for queue-behaviour tests.
func stubEstimate(rate float64) perf.Estimate {
	return perf.Estimate{Platform: "stub", Kernel: "stub", Precision: "double", OptionsPerSec: rate, PowerWatts: 10}
}

// testOption returns a distinct valid contract per index.
func testOption(i int) option.Option {
	return option.Option{
		Right: option.Put, Style: option.American,
		Spot: 100, Strike: 80 + float64(i), Rate: 0.03, Sigma: 0.2, T: 0.5,
	}
}

// stubPrice is an instant pricing kernel for queue-behaviour tests.
func stubPrice(o option.Option) (float64, error) { return o.Strike - o.Spot + 1, nil }

// stubBackends avoids running the HLS fitter in queue unit tests.
func stubBackends(workers, queueDepth int) []BackendConfig {
	return []BackendConfig{{
		Name:       "stub",
		Estimate:   stubEstimate(1000),
		Workers:    workers,
		QueueDepth: queueDepth,
	}}
}

// TestFlushOnSize: with a long deadline, the size trigger alone must cut
// batches of exactly MaxBatch.
func TestFlushOnSize(t *testing.T) {
	s, err := New(Config{
		Steps: 16, MaxBatch: 4, FlushInterval: 10 * time.Second,
		Backends: stubBackends(1, 8), PriceFunc: stubPrice,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close(context.Background())

	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := s.PriceOptions(context.Background(), []option.Option{testOption(i)}); err != nil {
				t.Errorf("price %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()

	if n := s.metrics.batchSize.Count(); n != 2 {
		t.Fatalf("flushed %d batches, want 2 (size-triggered)", n)
	}
	if mean := s.metrics.batchSize.Mean(); mean != 4 {
		t.Fatalf("mean batch size %v, want 4", mean)
	}
}

// TestFlushOnDeadline: a lone request must not wait for company longer
// than the flush interval.
func TestFlushOnDeadline(t *testing.T) {
	s, err := New(Config{
		Steps: 16, MaxBatch: 1024, FlushInterval: 5 * time.Millisecond,
		Backends: stubBackends(1, 8), PriceFunc: stubPrice,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close(context.Background())

	start := time.Now()
	res, err := s.PriceOptions(context.Background(), []option.Option{testOption(0)})
	if err != nil {
		t.Fatal(err)
	}
	if el := time.Since(start); el > 2*time.Second {
		t.Fatalf("deadline flush took %s", el)
	}
	if res[0].Backend != "stub" {
		t.Fatalf("backend = %q", res[0].Backend)
	}
	if n := s.metrics.batchSize.Count(); n != 1 {
		t.Fatalf("flushed %d batches, want 1 (deadline-triggered)", n)
	}
	if mean := s.metrics.batchSize.Mean(); mean != 1 {
		t.Fatalf("batch size %v, want 1", mean)
	}
}

// TestBackpressure429: once QueueDepth options are admitted and stuck, the
// next request must be rejected — ErrSaturated at the library layer, 429
// with a Retry-After header over HTTP.
func TestBackpressure429(t *testing.T) {
	block := make(chan struct{})
	s, hs := newTestServer(t, Config{
		Steps: 16, MaxBatch: 1, FlushInterval: time.Millisecond, QueueDepth: 2,
		Backends: stubBackends(1, 8),
		PriceFunc: func(o option.Option) (float64, error) {
			<-block
			return 1, nil
		},
	})
	defer close(block)

	// Fill the queue with 2 admitted options.
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			s.PriceOptions(context.Background(), []option.Option{testOption(i)})
		}(i)
	}
	// Wait until both are admitted.
	deadline := time.Now().Add(5 * time.Second)
	for s.queued.Load() < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("queue never filled: depth %d", s.queued.Load())
		}
		time.Sleep(time.Millisecond)
	}

	if _, err := s.PriceOptions(context.Background(), []option.Option{testOption(9)}); !errors.Is(err, ErrSaturated) {
		t.Fatalf("err = %v, want ErrSaturated", err)
	}

	resp, err := http.Post(hs.URL+"/v1/price", "application/json",
		strings.NewReader(`{"right":"put","style":"american","spot":100,"strike":90,"rate":0.03,"sigma":0.2,"t":0.5}`))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if got := s.metrics.rejected.Load(); got != 2 {
		t.Fatalf("rejected counter %d, want 2", got)
	}

	// Unblock and let the helpers finish so Cleanup can drain.
	block <- struct{}{}
	block <- struct{}{}
	wg.Wait()
}

// TestBatchTooLarge413: a request whose uncached contracts exceed the
// whole queue depth can never be admitted — retrying is pointless, so it
// must get ErrBatchTooLarge / HTTP 413 instead of 429 + Retry-After.
func TestBatchTooLarge413(t *testing.T) {
	s, hs := newTestServer(t, Config{
		Steps: 16, MaxBatch: 4, FlushInterval: time.Millisecond, QueueDepth: 3,
		Backends: stubBackends(1, 8), PriceFunc: stubPrice,
	})

	opts := make([]option.Option, 4)
	for i := range opts {
		opts[i] = testOption(i)
	}
	if _, err := s.PriceOptions(context.Background(), opts); !errors.Is(err, ErrBatchTooLarge) {
		t.Fatalf("err = %v, want ErrBatchTooLarge", err)
	}

	var body strings.Builder
	body.WriteString(`{"contracts":[`)
	for i := 0; i < 4; i++ {
		if i > 0 {
			body.WriteString(",")
		}
		fmt.Fprintf(&body, `{"right":"put","style":"american","spot":100,"strike":%d,"rate":0.03,"sigma":0.2,"t":0.5}`, 80+i)
	}
	body.WriteString(`]}`)
	resp, err := http.Post(hs.URL+"/v1/price", "application/json", strings.NewReader(body.String()))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("status %d, want 413", resp.StatusCode)
	}
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		t.Fatalf("413 carries Retry-After %q; the rejection is permanent", ra)
	}

	// Cached contracts don't count against the depth: warm 3 of the 4,
	// then the same over-depth request succeeds with 1 uncached job.
	if _, err := s.PriceOptions(context.Background(), opts[:3]); err != nil {
		t.Fatalf("warming cache: %v", err)
	}
	res, err := s.PriceOptions(context.Background(), opts)
	if err != nil {
		t.Fatalf("after warming: %v", err)
	}
	if !res[0].Cached || res[3].Cached {
		t.Fatalf("cached flags = %v/%v, want true/false", res[0].Cached, res[3].Cached)
	}
}

// TestGracefulShutdownDrains: Close must deliver every admitted result,
// then refuse new work.
func TestGracefulShutdownDrains(t *testing.T) {
	s, err := New(Config{
		Steps: 16, MaxBatch: 4, FlushInterval: time.Millisecond,
		Backends: stubBackends(2, 8),
		PriceFunc: func(o option.Option) (float64, error) {
			time.Sleep(5 * time.Millisecond)
			return o.Strike, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	const n = 12
	results := make(chan error, n)
	for i := 0; i < n; i++ {
		go func(i int) {
			res, err := s.PriceOptions(context.Background(), []option.Option{testOption(i)})
			if err == nil && res[0].Price != testOption(i).Strike {
				err = errors.New("wrong price after drain")
			}
			results <- err
		}(i)
	}
	// Let some work get admitted before draining.
	for s.queued.Load() == 0 {
		time.Sleep(time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Close(ctx); err != nil {
		t.Fatalf("Close: %v", err)
	}

	okCount, closedCount := 0, 0
	for i := 0; i < n; i++ {
		switch err := <-results; {
		case err == nil:
			okCount++
		case errors.Is(err, ErrClosed):
			// Submitted after shutdown began: rejected, not dropped.
			closedCount++
		default:
			t.Fatalf("request failed with %v", err)
		}
	}
	if okCount+closedCount != n {
		t.Fatalf("accounted %d+%d of %d requests", okCount, closedCount, n)
	}
	if okCount == 0 {
		t.Fatal("drain completed zero admitted requests")
	}
	if got := s.queued.Load(); got != 0 {
		t.Fatalf("queue depth %d after drain, want 0", got)
	}

	if _, err := s.PriceOptions(context.Background(), []option.Option{testOption(99)}); !errors.Is(err, ErrClosed) {
		t.Fatalf("post-shutdown err = %v, want ErrClosed", err)
	}
	if err := s.Close(context.Background()); err != nil {
		t.Fatalf("second Close: %v", err)
	}
}

// TestDispatchSpillsAcrossShards: when the fastest shard's queue is full,
// batches must land on the others rather than deadlock.
func TestDispatchSpillsAcrossShards(t *testing.T) {
	release := make(chan struct{})
	s, err := New(Config{
		Steps: 16, MaxBatch: 1, FlushInterval: time.Millisecond, QueueDepth: 64,
		Backends: []BackendConfig{
			{Name: "fast", Estimate: stubEstimate(10000), Workers: 1, QueueDepth: 1},
			{Name: "slow", Estimate: stubEstimate(10), Workers: 1, QueueDepth: 8},
		},
		PriceFunc: func(o option.Option) (float64, error) {
			<-release
			return 1, nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}

	const n = 6
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			if _, err := s.PriceOptions(context.Background(), []option.Option{testOption(i)}); err != nil {
				t.Errorf("price %d: %v", i, err)
			}
		}(i)
	}
	for i := 0; i < n; i++ {
		release <- struct{}{}
	}
	wg.Wait()
	close(release)

	slow := s.metrics.backendCounter("slow").Load()
	fast := s.metrics.backendCounter("fast").Load()
	if slow+fast != n {
		t.Fatalf("shards priced %d+%d, want %d total", fast, slow, n)
	}
	if slow == 0 {
		t.Fatal("overflow never spilled to the slow shard")
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	s.Close(ctx)
}
