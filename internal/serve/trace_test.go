package serve

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"

	"binopt/internal/option"
	"binopt/internal/telemetry"
)

// traceDoc is the subset of the Chrome trace-event schema the tests
// assert on.
type traceDoc struct {
	TraceEvents []struct {
		Name string         `json:"name"`
		Ph   string         `json:"ph"`
		Pid  int            `json:"pid"`
		Tid  int            `json:"tid"`
		Dur  float64        `json:"dur"`
		Args map[string]any `json:"args"`
	} `json:"traceEvents"`
	DisplayTimeUnit string `json:"displayTimeUnit"`
}

func getTrace(t *testing.T, url string) traceDoc {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d", url, resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("trace content type = %q", ct)
	}
	var doc traceDoc
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("trace is not valid JSON: %v", err)
	}
	return doc
}

// TestDebugTraceEndToEnd drives real requests through the HTTP server
// and checks /debug/trace returns a Chrome trace that decomposes the
// priced options into all four host phases plus modelled device events,
// all stitched to the request by a shared req group.
func TestDebugTraceEndToEnd(t *testing.T) {
	_, hs := newTestServer(t, Config{Steps: 64, Tracer: telemetry.New(4096)})

	req := PriceRequest{Contracts: []Contract{
		{Right: "put", Style: "american", Spot: 100, Strike: 105, Rate: 0.03, Sigma: 0.2, T: 0.5},
		{Right: "call", Style: "european", Spot: 100, Strike: 95, Rate: 0.03, Sigma: 0.25, T: 1},
	}}
	resp, _ := postJSON(t, hs.URL+"/v1/price", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("price status %d", resp.StatusCode)
	}

	doc := getTrace(t, hs.URL+"/debug/trace")
	if doc.DisplayTimeUnit != "ms" {
		t.Errorf("displayTimeUnit = %q", doc.DisplayTimeUnit)
	}

	// Every complete event carries a clock, and both clocks appear.
	names := map[string]int{}
	clocks := map[string]int{}
	reqGroups := map[string]bool{}
	procs := map[int]string{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "M" && ev.Name == "process_name" {
			procs[ev.Pid], _ = ev.Args["name"].(string)
		}
	}
	for _, ev := range doc.TraceEvents {
		if ev.Ph != "X" {
			continue
		}
		names[ev.Name]++
		clock, _ := ev.Args["clock"].(string)
		clocks[clock]++
		if clock == "" {
			t.Errorf("event %q has no clock arg", ev.Name)
		}
		if clock == "device" && !strings.HasPrefix(procs[ev.Pid], "device:") {
			t.Errorf("device-clock event %q on process %q", ev.Name, procs[ev.Pid])
		}
		if r, ok := ev.Args["req"]; ok {
			t.Logf("event %q req %v", ev.Name, r)
			reqGroups[ev.Name] = true
		}
	}
	for _, phase := range []string{"batch", "queue", "compute", "readback"} {
		if names[phase] == 0 {
			t.Errorf("no %q span in trace (have %v)", phase, names)
		}
	}
	if names["POST /v1/price"] == 0 {
		t.Error("no request span in trace")
	}
	if names["option"] == 0 {
		t.Error("no device-clock option span in trace")
	}
	if clocks["wall"] == 0 || clocks["device"] == 0 {
		t.Errorf("clock coverage = %v, want both wall and device", clocks)
	}
	for _, phase := range []string{"POST /v1/price", "batch", "queue", "compute", "readback"} {
		if !reqGroups[phase] {
			t.Errorf("span %q not stitched to a req group", phase)
		}
	}

	// ?reset=1 snapshots then clears the ring.
	getTrace(t, hs.URL+"/debug/trace?reset=1")
	doc = getTrace(t, hs.URL+"/debug/trace")
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" {
			t.Fatalf("ring not cleared by reset: %q survived", ev.Name)
		}
	}
}

// TestTraceDisabledByDefault: without a tracer the endpoint does not
// exist and pricing emits nothing.
func TestTraceDisabledByDefault(t *testing.T) {
	s, hs := newTestServer(t, Config{Steps: 64})
	if s.Tracer().Enabled() {
		t.Fatal("tracer enabled without config")
	}
	resp, err := http.Get(hs.URL + "/debug/trace")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("/debug/trace without tracer: status %d, want 404", resp.StatusCode)
	}
}

// TestPhaseSumWithinLatency: the four phases telescope — per request
// their sum equals the summed per-option end-to-end latency, so it can
// never exceed priced×(wall time of the call).
func TestPhaseSumWithinLatency(t *testing.T) {
	s, _ := newTestServer(t, Config{Steps: 64, Tracer: telemetry.New(1024), CacheSize: -1})

	opts := make([]option.Option, 8)
	for i := range opts {
		opts[i] = option.Option{
			Right: option.Put, Style: option.American,
			Spot: 100, Strike: 90 + float64(i), Rate: 0.03, Sigma: 0.2, T: 0.5,
		}
	}
	t0 := time.Now()
	_, phases, err := s.PriceOptionsTimed(context.Background(), opts)
	elapsed := time.Since(t0)
	if err != nil {
		t.Fatal(err)
	}
	if phases.Priced != len(opts) {
		t.Fatalf("priced %d options, want %d", phases.Priced, len(opts))
	}
	sum := phases.Batch + phases.Queue + phases.Compute + phases.Readback
	if sum <= 0 {
		t.Fatalf("phase sum %v, want > 0 (breakdown %+v)", sum, phases)
	}
	if limit := time.Duration(len(opts)) * elapsed; sum > limit {
		t.Errorf("phase sum %v exceeds priced×elapsed %v — phases do not telescope", sum, limit)
	}
	if phases.Compute <= 0 {
		t.Errorf("compute phase empty: %+v", phases)
	}
}

// TestServerTimingHeader: the HTTP response carries the phase breakdown
// in a Server-Timing header and the loadgen parser recovers it.
func TestServerTimingHeader(t *testing.T) {
	_, hs := newTestServer(t, Config{Steps: 64, Tracer: telemetry.New(1024), CacheSize: -1})

	c := Contract{Right: "put", Style: "american", Spot: 100, Strike: 105, Rate: 0.03, Sigma: 0.2, T: 0.5}
	resp, _ := postJSON(t, hs.URL+"/v1/price", PriceRequest{Contracts: []Contract{c}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}
	header := resp.Header.Get("Server-Timing")
	if header == "" {
		t.Fatal("no Server-Timing header")
	}
	for _, metric := range []string{"batch;dur=", "queue;dur=", "compute;dur=", "readback;dur=", "priced;dur=", "joules;dur="} {
		if !strings.Contains(header, metric) {
			t.Errorf("Server-Timing %q missing %q", header, metric)
		}
	}
	got, _ := parseServerTiming(header)
	if got.priced != 1 {
		t.Errorf("parsed priced = %d from %q", got.priced, header)
	}
	if got.batch+got.queue+got.compute+got.readback <= 0 {
		t.Errorf("parsed empty phase sums from %q", header)
	}
	if got.joules <= 0 {
		t.Errorf("parsed no joules from %q", header)
	}
}

// TestParseServerTiming covers the parser against hand-built, foreign
// and malformed headers — loadgen must never crash on a proxy-mangled
// one, and must keep working against servers that add metrics it
// doesn't know (or lack ones it does).
func TestParseServerTiming(t *testing.T) {
	cases := []struct {
		name   string
		header string
		want   phaseSums
		wantN  int
	}{
		{
			name:   "full header",
			header: "batch;dur=1.500, queue;dur=0.250, compute;dur=10.000, readback;dur=0.125, priced;dur=4, joules;dur=0.0625",
			want: phaseSums{
				batch: 1500 * time.Microsecond, queue: 250 * time.Microsecond,
				compute: 10 * time.Millisecond, readback: 125 * time.Microsecond,
				priced: 4, joules: 0.0625,
			},
			wantN: 6,
		},
		{
			name:   "pre-joules server",
			header: "batch;dur=1, queue;dur=1, compute;dur=1, readback;dur=1, priced;dur=2",
			want: phaseSums{
				batch: time.Millisecond, queue: time.Millisecond,
				compute: time.Millisecond, readback: time.Millisecond, priced: 2,
			},
			wantN: 5,
		},
		{
			name:   "unknown metrics and extra params tolerated",
			header: `cdn;desc="edge cache";dur=3, compute;desc=fpga;dur=10, gc;dur=0.1, joules;dur=0.5`,
			want:   phaseSums{compute: 10 * time.Millisecond, joules: 0.5},
			wantN:  2,
		},
		{
			name:   "whitespace and reordered dur param",
			header: "  batch ; desc=x ; dur= 2.0 ,joules;dur=1e-3",
			want:   phaseSums{batch: 2 * time.Millisecond, joules: 1e-3},
			wantN:  2,
		},
		{name: "empty", header: "", wantN: 0},
		{name: "garbage", header: "garbage", wantN: 0},
		{name: "no dur params", header: "a=b;c=d, batch;desc=x", wantN: 0},
		{name: "malformed dur value skipped", header: "batch;dur=abc, queue;dur=0.5", want: phaseSums{queue: 500 * time.Microsecond}, wantN: 1},
		{name: "truncated entry", header: "batch;dur=1.5, compute;du", want: phaseSums{batch: 1500 * time.Microsecond}, wantN: 1},
		{name: "dangling separators", header: ",,;;dur=,batch;dur=1", want: phaseSums{batch: time.Millisecond}, wantN: 1},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			got, n := parseServerTiming(c.header)
			if got != c.want {
				t.Errorf("parseServerTiming(%q) = %+v, want %+v", c.header, got, c.want)
			}
			if n != c.wantN {
				t.Errorf("recognised %d entries in %q, want %d", n, c.header, c.wantN)
			}
			bd, err := ParseServerTiming(c.header)
			if c.wantN == 0 {
				if err == nil {
					t.Errorf("ParseServerTiming(%q) accepted a header with no recognised metrics", c.header)
				}
			} else if err != nil {
				t.Errorf("ParseServerTiming(%q) rejected a parseable header: %v", c.header, err)
			} else if bd.Joules != c.want.joules || bd.Priced != int(c.want.priced) {
				t.Errorf("ParseServerTiming(%q) = %+v, want joules %v priced %d", c.header, bd, c.want.joules, c.want.priced)
			}
		})
	}
}

// TestRateWindow drives the sliding throughput window with a synthetic
// clock: steady load reports the true rate, and the figure decays to
// zero within the window after load stops.
func TestRateWindow(t *testing.T) {
	var w rateWindow
	uptime := time.Hour // not the limiting factor here

	// 100 options/s for 20 seconds; the window only sees the last 10.
	var now int64 = 1000
	for s := int64(0); s < 20; s++ {
		w.add(now+s, 100)
	}
	now += 19
	if got := w.rate(now, uptime); got != 100 {
		t.Errorf("steady rate = %v, want 100", got)
	}

	// Idle for 5 seconds: half the window has drained.
	if got := w.rate(now+5, uptime); got != 50 {
		t.Errorf("rate after 5s idle = %v, want 50", got)
	}
	// Idle past the window: fully decayed.
	if got := w.rate(now+10, uptime); got != 0 {
		t.Errorf("rate after 10s idle = %v, want 0", got)
	}

	// A young server divides by its uptime, not the window.
	var fresh rateWindow
	fresh.add(now, 300)
	if got := fresh.rate(now, 3*time.Second); got != 100 {
		t.Errorf("young-server rate = %v, want 100", got)
	}
	// ...but never by less than one second.
	if got := fresh.rate(now, 100*time.Millisecond); got != 300 {
		t.Errorf("sub-second uptime rate = %v, want 300", got)
	}
}

// TestMetricsExposeObservability: after traced traffic, /metrics renders
// the phase quantiles, the windowed rate, the modelled device seconds
// and the span accounting.
func TestMetricsExposeObservability(t *testing.T) {
	_, hs := newTestServer(t, Config{Steps: 64, Tracer: telemetry.New(1024), CacheSize: -1})

	c := Contract{Right: "put", Style: "american", Spot: 100, Strike: 105, Rate: 0.03, Sigma: 0.2, T: 0.5}
	resp, _ := postJSON(t, hs.URL+"/v1/price", PriceRequest{Contracts: []Contract{c}})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}

	mresp, err := http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	raw, err := io.ReadAll(mresp.Body)
	if err != nil {
		t.Fatal(err)
	}
	body := string(raw)
	for _, line := range []string{
		`binopt_phase_seconds_bucket{phase="batch",le="+Inf"}`,
		`binopt_phase_seconds_bucket{phase="queue",le="5e-05"}`,
		`binopt_phase_seconds_sum{phase="compute"}`,
		`binopt_phase_seconds_count{phase="readback"}`,
		`binopt_phase_joules_total{phase="compute"}`,
		`binopt_option_latency_seconds_bucket{le="+Inf"} 1`,
		`binopt_request_joules_count 1`,
		`# {trace_id="`,
		"binopt_options_per_sec_window",
		"binopt_backend_modelled_device_seconds_total",
		"binopt_trace_spans_total",
		"binopt_trace_spans_dropped_total",
		"binopt_trace_spans_retained",
	} {
		if !strings.Contains(body, line) {
			t.Errorf("/metrics missing %q", line)
		}
	}
}
