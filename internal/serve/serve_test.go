package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"binopt/internal/accel"
	"binopt/internal/lattice"
	"binopt/internal/option"
	"binopt/internal/workload"
)

// newTestServer builds a server and its HTTP front end, torn down with
// the test.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	hs := httptest.NewServer(s.Handler())
	t.Cleanup(func() {
		hs.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		s.Close(ctx)
	})
	return s, hs
}

func postJSON(t *testing.T, url string, body any) (*http.Response, []byte) {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	var out bytes.Buffer
	out.ReadFrom(resp.Body)
	return resp, out.Bytes()
}

// TestEndToEndVolCurveBitForBit prices the paper's full 2000-put chain
// through the HTTP batch endpoint and checks every price equals the
// direct library pricing exactly — batching, sharding and caching must be
// numerically invisible.
func TestEndToEndVolCurveBitForBit(t *testing.T) {
	const steps = 128
	chain, err := workload.Chain(workload.DefaultVolCurveSpec(7))
	if err != nil {
		t.Fatalf("chain: %v", err)
	}
	eng, err := lattice.NewEngine(steps)
	if err != nil {
		t.Fatalf("engine: %v", err)
	}
	want, err := eng.PriceBatch(chain, 0)
	if err != nil {
		t.Fatalf("reference batch: %v", err)
	}

	_, hs := newTestServer(t, Config{Steps: steps, CacheSize: 4096})

	got := make([]float64, 0, len(chain))
	cached := 0
	const reqBatch = 250
	for at := 0; at < len(chain); at += reqBatch {
		end := at + reqBatch
		if end > len(chain) {
			end = len(chain)
		}
		req := PriceRequest{}
		for _, o := range chain[at:end] {
			req.Contracts = append(req.Contracts, FromOption(o))
		}
		resp, body := postJSON(t, hs.URL+"/v1/price", req)
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("status %d: %s", resp.StatusCode, body)
		}
		var pr PriceResponse
		if err := json.Unmarshal(body, &pr); err != nil {
			t.Fatalf("decode: %v", err)
		}
		if pr.Steps != steps {
			t.Fatalf("steps = %d, want %d", pr.Steps, steps)
		}
		for _, r := range pr.Results {
			got = append(got, r.Price)
			if r.Cached {
				cached++
			}
		}
	}
	if len(got) != len(want) {
		t.Fatalf("got %d prices, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("option %d (%v): served %v, library %v (must match bit-for-bit)", i, chain[i], got[i], want[i])
		}
	}
	// The chain has distinct jittered strikes, so the first pass must
	// miss; a second pass over a subset must hit.
	if cached != 0 {
		t.Fatalf("first pass reported %d cache hits, want 0", cached)
	}
	req := PriceRequest{Contracts: []Contract{FromOption(chain[0]), FromOption(chain[1])}}
	resp, body := postJSON(t, hs.URL+"/v1/price", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("repeat status %d: %s", resp.StatusCode, body)
	}
	var pr PriceResponse
	json.Unmarshal(body, &pr)
	for i, r := range pr.Results {
		if !r.Cached || r.Backend != "cache" {
			t.Fatalf("repeat result %d not served from cache: %+v", i, r)
		}
		if r.Price != want[i] {
			t.Fatalf("cached price %v != library %v", r.Price, want[i])
		}
		if r.ModelledJoules != 0 {
			t.Fatalf("cache hit billed %v J, want 0", r.ModelledJoules)
		}
	}
}

// TestSingleContractShorthand posts a bare contract object.
func TestSingleContractShorthand(t *testing.T) {
	_, hs := newTestServer(t, Config{Steps: 64})
	c := Contract{Right: "put", Style: "american", Spot: 100, Strike: 105, Rate: 0.03, Sigma: 0.2, T: 0.5}
	resp, body := postJSON(t, hs.URL+"/v1/price", c)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var pr PriceResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(pr.Results) != 1 || pr.Results[0].Price <= 0 {
		t.Fatalf("unexpected response: %+v", pr)
	}
	if pr.Results[0].Backend == "" || pr.Results[0].ModelledJoules <= 0 {
		t.Fatalf("miss must name its backend and bill modelled energy: %+v", pr.Results[0])
	}
}

// TestBadRequests exercises the 400 paths.
func TestBadRequests(t *testing.T) {
	_, hs := newTestServer(t, Config{Steps: 64})
	cases := []struct {
		name string
		body string
	}{
		{"garbage", "{"},
		{"empty batch", `{"contracts":[]}`},
		{"bad right", `{"right":"straddle","style":"american","spot":100,"strike":100,"rate":0,"sigma":0.2,"t":1}`},
		{"bad style", `{"right":"put","style":"bermudan","spot":100,"strike":100,"rate":0,"sigma":0.2,"t":1}`},
		{"negative spot", `{"right":"put","style":"american","spot":-5,"strike":100,"rate":0,"sigma":0.2,"t":1}`},
		{"zero sigma", `{"right":"put","style":"american","spot":100,"strike":100,"rate":0,"sigma":0,"t":1}`},
	}
	for _, tc := range cases {
		resp, err := http.Post(hs.URL+"/v1/price", "application/json", strings.NewReader(tc.body))
		if err != nil {
			t.Fatalf("%s: %v", tc.name, err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusBadRequest {
			t.Errorf("%s: status %d, want 400", tc.name, resp.StatusCode)
		}
	}
	if resp, err := http.Get(hs.URL + "/v1/price"); err == nil {
		resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Errorf("GET /v1/price: status %d, want 405", resp.StatusCode)
		}
	}
}

// TestVolCurveEndpoint runs the generated-chain form of the use case and
// checks the recovered smile is a plausible volatility curve.
func TestVolCurveEndpoint(t *testing.T) {
	_, hs := newTestServer(t, Config{Steps: 64})
	resp, body := postJSON(t, hs.URL+"/v1/volcurve", VolCurveRequest{N: 32, Seed: 11})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d: %s", resp.StatusCode, body)
	}
	var vr VolCurveResponse
	if err := json.Unmarshal(body, &vr); err != nil {
		t.Fatalf("decode: %v", err)
	}
	if len(vr.Points)+vr.Skipped != 32 {
		t.Fatalf("points %d + skipped %d != 32", len(vr.Points), vr.Skipped)
	}
	for _, p := range vr.Points {
		if p.Implied <= 0 || p.Implied > 2 {
			t.Errorf("implausible implied vol %v at strike %v", p.Implied, p.Strike)
		}
	}

	resp, _ = postJSON(t, hs.URL+"/v1/volcurve", VolCurveRequest{})
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty volcurve request: status %d, want 400", resp.StatusCode)
	}
}

// TestHealthzAndMetrics checks the observability surface.
func TestHealthzAndMetrics(t *testing.T) {
	_, hs := newTestServer(t, Config{Steps: 64})

	resp, err := http.Get(hs.URL + "/healthz")
	if err != nil {
		t.Fatalf("healthz: %v", err)
	}
	var health struct {
		Status   string `json:"status"`
		Backends []struct {
			Name          string  `json:"name"`
			Kind          string  `json:"kind"`
			OptionsPerSec float64 `json:"modelled_options_per_sec"`
		} `json:"backends"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatalf("healthz decode: %v", err)
	}
	resp.Body.Close()
	// One shard per accel-registry platform: the paper's three plus the
	// self-registered embedded target.
	if health.Status != "ok" || len(health.Backends) != len(accel.Names()) {
		t.Fatalf("healthz = %+v, want ok with %d backends", health, len(accel.Names()))
	}
	for i, be := range health.Backends {
		if be.Name != accel.Names()[i] {
			t.Errorf("backend %d = %s, want registry order %v", i, be.Name, accel.Names())
		}
		if be.Kind == "" {
			t.Errorf("backend %s reports no kind", be.Name)
		}
		if be.OptionsPerSec <= 0 {
			t.Errorf("backend %s has no modelled throughput", be.Name)
		}
	}

	// Price two contracts, repeat one, then check the counters moved.
	c1 := Contract{Right: "put", Style: "american", Spot: 100, Strike: 95, Rate: 0.03, Sigma: 0.25, T: 1}
	c2 := c1
	c2.Strike = 105
	postJSON(t, hs.URL+"/v1/price", PriceRequest{Contracts: []Contract{c1, c2}})
	postJSON(t, hs.URL+"/v1/price", PriceRequest{Contracts: []Contract{c1}})

	resp, err = http.Get(hs.URL + "/metrics")
	if err != nil {
		t.Fatalf("metrics: %v", err)
	}
	var out bytes.Buffer
	out.ReadFrom(resp.Body)
	resp.Body.Close()
	text := out.String()
	for _, want := range []string{
		"binopt_requests_total{endpoint=\"price\"} 2",
		"binopt_options_served_total 3",
		"binopt_options_priced_total 2",
		"binopt_cache_hits_total 1",
		"binopt_option_latency_seconds_bucket{le=\"+Inf\"} 2",
		"binopt_modelled_joules_per_option",
		"binopt_queue_depth 0",
		"binopt_batch_size_count",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q in:\n%s", want, text)
		}
	}
}

// TestDuplicateContractsInOneRequest documents the in-flight semantics:
// duplicates inside one request are priced independently (the cache only
// serves completed results), then later requests hit.
func TestDuplicateContractsInOneRequest(t *testing.T) {
	s, _ := newTestServer(t, Config{Steps: 32})
	c := Contract{Right: "call", Style: "european", Spot: 100, Strike: 100, Rate: 0.01, Sigma: 0.2, T: 1}
	o, err := c.ToOption()
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	first, err := s.PriceOptions(ctx, []option.Option{o, o})
	if err != nil {
		t.Fatalf("PriceOptions: %v", err)
	}
	if first[0].Cached || first[1].Cached {
		t.Fatalf("in-flight duplicates must not report cached: %+v", first)
	}
	if first[0].Price != first[1].Price {
		t.Fatalf("duplicate prices differ: %v vs %v", first[0].Price, first[1].Price)
	}
	again, err := s.PriceOptions(ctx, []option.Option{o})
	if err != nil {
		t.Fatalf("PriceOptions repeat: %v", err)
	}
	if !again[0].Cached || again[0].Price != first[0].Price {
		t.Fatalf("repeat should hit the cache with the same price: %+v", again[0])
	}
}

// TestDefaultBackendsValidation: invalid tree depths are rejected with a
// clear error; valid depths yield one engine-backed shard per registry
// platform, in registry order.
func TestDefaultBackendsValidation(t *testing.T) {
	for _, steps := range []int{0, -1, -1024} {
		if _, err := DefaultBackends(steps); err == nil || !strings.Contains(err.Error(), "positive") {
			t.Errorf("DefaultBackends(%d) = %v, want a positive-steps error", steps, err)
		}
	}
	bs, err := DefaultBackends(64)
	if err != nil {
		t.Fatal(err)
	}
	if len(bs) != len(accel.Names()) {
		t.Fatalf("got %d backends, want %d", len(bs), len(accel.Names()))
	}
	for i, bc := range bs {
		if bc.Name != accel.Names()[i] {
			t.Errorf("backend %d = %s, want %s", i, bc.Name, accel.Names()[i])
		}
		if bc.Engine == nil {
			t.Fatalf("backend %s has no platform engine", bc.Name)
		}
		if bc.Engine.Steps() != 64 {
			t.Errorf("backend %s engine depth = %d, want 64", bc.Name, bc.Engine.Steps())
		}
	}
}

// TestShardBatchMissPath: a request of distinct cache misses must reach
// its shard as one micro-batch and be priced through the engine's
// quad-interleaved batch path — bit-identical to the reference lattice,
// with the options visible in the batch-priced metric.
func TestShardBatchMissPath(t *testing.T) {
	const steps = 64
	s, _ := newTestServer(t, Config{Steps: steps, CacheSize: 256})

	base := option.Option{
		Right: option.Put, Style: option.American,
		Spot: 100, Strike: 90, Rate: 0.03, Div: 0.01, Sigma: 0.2, T: 0.5,
	}
	opts := make([]option.Option, 8)
	for i := range opts {
		o := base
		o.Strike = 90 + float64(i)
		opts[i] = o
	}
	eng, err := lattice.NewEngine(steps)
	if err != nil {
		t.Fatal(err)
	}
	want, err := eng.PriceBatch(opts, 0)
	if err != nil {
		t.Fatal(err)
	}

	res, err := s.PriceOptions(context.Background(), opts)
	if err != nil {
		t.Fatalf("PriceOptions: %v", err)
	}
	for i := range opts {
		if res[i].Cached {
			t.Errorf("option %d served from cache on first pass", i)
		}
		if res[i].Price != want[i] {
			t.Errorf("option %d: served %v, reference %v (must match bit-for-bit)", i, res[i].Price, want[i])
		}
	}
	if got := s.metrics.batchPriced.Load(); got != int64(len(opts)) {
		t.Errorf("batch-priced metric = %d, want %d (whole miss batch through the quad path)", got, len(opts))
	}
}
