package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"time"

	"binopt/internal/obslog"
	"binopt/internal/option"
	"binopt/internal/telemetry"
	"binopt/internal/volatility"
	"binopt/internal/workload"
)

// maxBodyBytes bounds request bodies (a 2000-contract batch is ~300 KB).
const maxBodyBytes = 8 << 20

// Contract is the wire form of an option contract.
type Contract struct {
	Right  string  `json:"right"` // "call" or "put"
	Style  string  `json:"style"` // "european" or "american"
	Spot   float64 `json:"spot"`
	Strike float64 `json:"strike"`
	Rate   float64 `json:"rate"`
	Div    float64 `json:"div,omitempty"`
	Sigma  float64 `json:"sigma"`
	T      float64 `json:"t"`
}

// ToOption converts the wire form, validating the enumerations.
func (c Contract) ToOption() (option.Option, error) {
	o := option.Option{
		Spot: c.Spot, Strike: c.Strike, Rate: c.Rate,
		Div: c.Div, Sigma: c.Sigma, T: c.T,
	}
	switch strings.ToLower(c.Right) {
	case "call":
		o.Right = option.Call
	case "put":
		o.Right = option.Put
	default:
		return o, fmt.Errorf("right must be \"call\" or \"put\", got %q", c.Right)
	}
	switch strings.ToLower(c.Style) {
	case "european":
		o.Style = option.European
	case "american":
		o.Style = option.American
	default:
		return o, fmt.Errorf("style must be \"european\" or \"american\", got %q", c.Style)
	}
	return o, o.Validate()
}

// FromOption converts a contract to its wire form.
func FromOption(o option.Option) Contract {
	return Contract{
		Right: o.Right.String(), Style: o.Style.String(),
		Spot: o.Spot, Strike: o.Strike, Rate: o.Rate,
		Div: o.Div, Sigma: o.Sigma, T: o.T,
	}
}

// PriceRequest is the body of POST /v1/price. A bare Contract object is
// also accepted as a single-option shorthand.
type PriceRequest struct {
	Contracts []Contract `json:"contracts"`
}

// PriceResponse is the body of a successful POST /v1/price.
type PriceResponse struct {
	Steps   int      `json:"steps"`
	Results []Result `json:"results"`
}

// QuoteJSON pairs a contract with its observed price for /v1/volcurve.
type QuoteJSON struct {
	Contract Contract `json:"contract"`
	Price    float64  `json:"price"`
}

// VolCurveRequest is the body of POST /v1/volcurve. Either supply quotes
// explicitly, or set N (and optionally Seed) to run the paper's use case:
// the server generates the 2000-put chain, prices it on the reference
// lattice, and recovers the smile.
type VolCurveRequest struct {
	Quotes []QuoteJSON `json:"quotes,omitempty"`
	N      int         `json:"n,omitempty"`
	Seed   int64       `json:"seed,omitempty"`
}

// VolCurvePoint is one recovered point of the smile.
type VolCurvePoint struct {
	Strike    float64 `json:"strike"`
	Moneyness float64 `json:"moneyness"`
	Implied   float64 `json:"implied"`
}

// VolCurveResponse is the body of a successful POST /v1/volcurve.
type VolCurveResponse struct {
	Steps   int             `json:"steps"`
	Points  []VolCurvePoint `json:"points"`
	Skipped int             `json:"skipped"` // quotes with no vol information
}

type errorResponse struct {
	Error string `json:"error"`
}

// ParsePriceRequest decodes a POST /v1/price body, accepting both the
// batch form and the bare single-contract shorthand. It is the one
// definition of the endpoint's wire grammar, shared by the node handler
// and the cluster router so the two layers cannot drift.
func ParsePriceRequest(body []byte) (PriceRequest, error) {
	var req PriceRequest
	if err := json.Unmarshal(body, &req); err != nil || len(req.Contracts) == 0 {
		// Single-contract shorthand: the body is one bare Contract.
		var single Contract
		if err2 := json.Unmarshal(body, &single); err2 == nil && single.Right != "" {
			req.Contracts = []Contract{single}
		} else if err != nil {
			return req, fmt.Errorf("bad JSON: %v", err)
		}
	}
	if len(req.Contracts) == 0 {
		return req, fmt.Errorf("no contracts in request")
	}
	return req, nil
}

// Handler returns the service's HTTP API:
//
//	POST /v1/price       price one contract or a batch
//	POST /v1/scenarios   revalue a portfolio under a scenario set
//	POST /v1/volcurve    recover an implied-volatility curve
//	POST /v1/invalidate  apply a cache-generation bump (market-data update)
//	GET  /healthz        liveness and pool summary
//	GET  /metrics        counters, histograms, energy model
//	GET  /debug/slo      burn-rate monitor state (JSON)
//	GET  /debug/trace    Chrome trace-event JSON of the span ring
//	GET  /debug/spans    incremental span export (?cursor=N), the page
//	                     the fleet aggregator polls
//	                     (debug trace endpoints only when the server has
//	                     a tracer)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/price", s.handlePrice)
	mux.HandleFunc("/v1/scenarios", s.handleScenarios)
	mux.HandleFunc("/v1/volcurve", s.handleVolCurve)
	mux.HandleFunc("/v1/invalidate", s.handleInvalidate)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/metrics", s.handleMetrics)
	mux.HandleFunc("/debug/slo", s.handleSLO)
	if s.tracer.Enabled() {
		mux.HandleFunc("/debug/trace", s.handleTrace)
		mux.HandleFunc("/debug/spans", s.handleSpans)
	}
	return mux
}

// handleTrace serves the span ring as Chrome trace-event JSON, loadable
// in chrome://tracing or https://ui.perfetto.dev. ?reset=1 clears the
// ring after the snapshot, for capturing disjoint windows.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	spans := s.tracer.Snapshot()
	out, err := telemetry.Chrome(spans)
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, "rendering trace: %v", err)
		return
	}
	if r.URL.Query().Get("reset") == "1" {
		s.tracer.Reset()
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(out)
}

// handleSpans serves the incremental span export the fleet trace
// aggregator polls: everything emitted after ?cursor=N (0 for a fresh
// consumer), the next cursor, and an honest missed count when the ring
// wrapped past an unread span. Unlike /debug/trace?reset=1 this is
// race-free across multiple consumers — each holds its own cursor and
// no one clears the ring.
func (s *Server) handleSpans(w http.ResponseWriter, r *http.Request) {
	var cursor uint64
	if q := r.URL.Query().Get("cursor"); q != "" {
		var err error
		if cursor, err = strconv.ParseUint(q, 10, 64); err != nil {
			s.writeError(w, http.StatusBadRequest, "bad cursor %q: %v", q, err)
			return
		}
	}
	writeJSON(w, http.StatusOK, s.tracer.ExportSince(cursor, s.cfg.Node))
}

// handleSLO serves the burn-rate monitor's state. With no monitor
// configured the report is the healthy zero value — probes need no
// special-casing.
func (s *Server) handleSLO(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.slomon.Report())
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	json.NewEncoder(w).Encode(v)
}

func (s *Server) writeError(w http.ResponseWriter, status int, format string, args ...any) {
	if status >= 400 && status != http.StatusTooManyRequests {
		s.metrics.badRequests.Add(1)
	}
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) handlePrice(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	s.metrics.requests.Add(1)
	started := time.Now()

	// Distributed trace identity: adopt the router's traceparent when
	// one arrives (parenting this node's spans under the remote
	// request), mint a fresh trace ID otherwise. A malformed header is
	// served untraced-parented, not rejected.
	trace, parent, fromRemote := telemetry.ParseTraceParent(r.Header.Get("traceparent"))
	if !fromRemote && s.tracer.Enabled() {
		trace = telemetry.NewTraceID()
	}

	span := s.tracer.Begin("POST /v1/price", "host", "requests")
	span.SetReq(span.ID())
	span.SetTrace(trace)
	if fromRemote {
		span.SetAttr("parent_span", fmt.Sprintf("%016x", parent))
	}
	defer span.End()
	log := obslog.WithTrace(s.logger, trace, span.ID())

	// The SLO monitor books every terminal outcome exactly once. Client
	// mistakes (4xx) and backpressure (429) spend no error budget — the
	// objectives cover what the server owes well-formed traffic.
	observe := func(failed bool) { s.slomon.Observe(time.Since(started), failed) }

	body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes))
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}

	req, err := ParsePriceRequest(body)
	if err != nil {
		s.writeError(w, http.StatusBadRequest, "%v", err)
		return
	}

	opts := make([]option.Option, len(req.Contracts))
	for i, c := range req.Contracts {
		o, err := c.ToOption()
		if err != nil {
			s.writeError(w, http.StatusBadRequest, "contract %d: %v", i, err)
			return
		}
		opts[i] = o
	}

	span.SetAttr("contracts", len(opts))
	ctx := telemetry.ContextWithTrace(r.Context(), telemetry.TraceContext{Trace: trace, Req: span.ID()})
	results, phases, err := s.PriceOptionsTimed(ctx, opts)
	switch {
	case errors.Is(err, ErrSaturated):
		w.Header().Set("Retry-After", strconv.Itoa(int(s.RetryAfter()/time.Second)))
		writeJSON(w, http.StatusTooManyRequests, errorResponse{Error: err.Error()})
		return
	case errors.Is(err, ErrBatchTooLarge):
		s.writeError(w, http.StatusRequestEntityTooLarge, "%v", err)
		return
	case errors.Is(err, ErrClosed):
		observe(true)
		s.writeError(w, http.StatusServiceUnavailable, "%v", err)
		return
	case err != nil:
		observe(true)
		log.Warn("price request failed", "contracts", len(opts), "error", err.Error())
		s.writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	observe(false)
	s.metrics.requestJoules.ObserveExemplar(phases.Joules, trace)
	span.SetAttr("priced", phases.Priced)
	span.SetAttr("joules", phases.Joules)
	if trace != "" && span.ID() != 0 {
		// Echo the trace identity so the client (loadgen, curl) can
		// jump from a response straight to the merged trace.
		w.Header().Set("traceparent", telemetry.FormatTraceParent(trace, span.ID()))
	}
	w.Header().Set("Server-Timing", phases.ServerTiming())
	writeJSON(w, http.StatusOK, PriceResponse{Steps: s.cfg.Steps, Results: results})
	log.Debug("price request served",
		"contracts", len(opts), "priced", phases.Priced,
		"joules", phases.Joules, "latency", time.Since(started).Seconds())
}

func (s *Server) handleVolCurve(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	if s.closed.Load() {
		s.writeError(w, http.StatusServiceUnavailable, "%v", ErrClosed)
		return
	}
	s.metrics.volcurveReqs.Add(1)

	var req VolCurveRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, maxBodyBytes)).Decode(&req); err != nil {
		s.writeError(w, http.StatusBadRequest, "bad JSON: %v", err)
		return
	}

	var quotes []workload.Quote
	switch {
	case len(req.Quotes) > 0:
		quotes = make([]workload.Quote, len(req.Quotes))
		for i, q := range req.Quotes {
			o, err := q.Contract.ToOption()
			if err != nil {
				s.writeError(w, http.StatusBadRequest, "quote %d: %v", i, err)
				return
			}
			if q.Price <= 0 {
				s.writeError(w, http.StatusBadRequest, "quote %d: price must be positive, got %v", i, q.Price)
				return
			}
			quotes[i] = workload.Quote{Option: o, Price: q.Price}
		}
	case req.N > 0:
		spec := workload.DefaultVolCurveSpec(req.Seed)
		spec.N = req.N
		chain, err := workload.Chain(spec)
		if err != nil {
			s.writeError(w, http.StatusBadRequest, "%v", err)
			return
		}
		quotes, err = workload.ReferenceQuotes(chain, s.cfg.Steps, s.cfg.SolverWorkers)
		if err != nil {
			s.writeError(w, http.StatusInternalServerError, "%v", err)
			return
		}
	default:
		s.writeError(w, http.StatusBadRequest, "supply quotes or n > 0")
		return
	}

	// The solver's repeated pricings carry fresh sigmas every iteration,
	// so they bypass the cache; we still meter them.
	pf := func(o option.Option) (float64, error) {
		s.metrics.solverPricings.Add(1)
		return s.priceFn(o)
	}
	points, skipped, err := volatility.Curve(quotes, pf, volatility.MethodBrent, s.cfg.SolverWorkers)
	if err != nil {
		s.writeError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	out := make([]VolCurvePoint, len(points))
	for i, p := range points {
		out[i] = VolCurvePoint{Strike: p.Strike, Moneyness: p.Mny, Implied: p.Implied}
	}
	writeJSON(w, http.StatusOK, VolCurveResponse{Steps: s.cfg.Steps, Points: out, Skipped: skipped})
}

// InvalidateRequest is the body of POST /v1/invalidate: a market-data
// generation bump, typically a vol-surface update. Generation 0 (or an
// absent field) means "one past whatever you have" — the convenient
// spelling for a human curl; gossip always carries the explicit
// generation so re-deliveries stay idempotent.
type InvalidateRequest struct {
	Generation uint64 `json:"generation,omitempty"`
	// Origin names the node or client where the update entered the
	// fleet; echoed into logs/metrics labels only.
	Origin string `json:"origin,omitempty"`
}

// InvalidateResponse reports the outcome of a generation bump.
type InvalidateResponse struct {
	// Applied is true when the bump was fresh and the cache flushed.
	Applied bool `json:"applied"`
	// Generation is the server's generation after the request.
	Generation uint64 `json:"generation"`
}

func (s *Server) handleInvalidate(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		s.writeError(w, http.StatusMethodNotAllowed, "POST required")
		return
	}
	var req InvalidateRequest
	if err := json.NewDecoder(io.LimitReader(r.Body, 1<<16)).Decode(&req); err != nil && !errors.Is(err, io.EOF) {
		s.writeError(w, http.StatusBadRequest, "bad JSON: %v", err)
		return
	}
	gen := req.Generation
	if gen == 0 {
		gen = s.cacheGen.Load() + 1
	}
	applied := s.Invalidate(gen)
	writeJSON(w, http.StatusOK, InvalidateResponse{Applied: applied, Generation: s.cacheGen.Load()})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	code := http.StatusOK
	if s.closed.Load() {
		status = "draining"
		code = http.StatusServiceUnavailable
	}
	type backendHealth struct {
		Name          string  `json:"name"`
		Kind          string  `json:"kind,omitempty"`
		OptionsPerSec float64 `json:"modelled_options_per_sec"`
		PowerWatts    float64 `json:"modelled_power_watts"`
		Pending       int64   `json:"pending_options"`
		PricedOptions int64   `json:"priced_options,omitempty"`
		Breaker       string  `json:"breaker"`
		BreakerOpens  int64   `json:"breaker_opens,omitempty"`
		PriceErrors   int64   `json:"price_errors,omitempty"`
	}
	bs := make([]backendHealth, len(s.backends))
	for i, be := range s.backends {
		st, opens := be.breaker.snapshot()
		bs[i] = backendHealth{
			Name:          be.cfg.Name,
			Kind:          be.cfg.Kind,
			OptionsPerSec: be.cfg.Estimate.OptionsPerSec,
			PowerWatts:    be.cfg.Estimate.PowerWatts,
			Pending:       be.pending.Load(),
			Breaker:       st.String(),
			BreakerOpens:  opens,
			PriceErrors:   be.errs.Load(),
		}
		if be.cfg.Engine != nil {
			bs[i].PricedOptions = be.cfg.Engine.PricedOptions()
		}
		// A pool serving around an open breaker is degraded, not down:
		// clients still get every price, so the HTTP code stays 200 and
		// the status string carries the signal.
		if st == breakerOpen && status == "ok" {
			status = "degraded"
		}
	}
	sloReport := s.slomon.Report()
	// An SLO burn is degradation the same way an open breaker is:
	// clients are being served, badly. Status carries the signal, the
	// code stays 200 so liveness probes don't amplify the incident by
	// pulling the node.
	if !sloReport.Healthy && status == "ok" {
		status = "burning"
	}
	out := map[string]any{
		"status":           status,
		"steps":            s.cfg.Steps,
		"queue_depth":      s.queued.Load(),
		"cache_generation": s.cacheGen.Load(),
		// now_unix_nano is this node's wall clock at render time; the
		// cluster heartbeat reads it (against the poll's RTT) to
		// estimate per-node clock offsets for trace merging.
		"now_unix_nano": time.Now().UnixNano(),
		"backends":      bs,
	}
	if s.cfg.Node != "" {
		out["node"] = s.cfg.Node
	}
	if s.slomon.Enabled() {
		out["slo"] = sloReport
	}
	writeJSON(w, code, out)
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "text/plain; version=0.0.4")
	io.WriteString(w, s.metrics.render(s.queued.Load(), s.cache.len(), s.cacheGen.Load()))
}
