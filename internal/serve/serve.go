// Package serve is the pricing service layer over the binopt engines: a
// batched HTTP/JSON API backed by a dynamic micro-batching queue, a
// worker pool with one shard per accel-registry platform (FPGA kernel
// IV.B, GPU, CPU reference, plus any extra registered target), each
// executing on its own platform engine with per-device counter and
// energy accounting, an LRU result cache keyed by canonicalised
// contract parameters, and a metrics surface reporting throughput,
// latency quantiles and modelled energy. It turns the library's one-shot
// experiments into the data-centre serving tier the paper's use case —
// 2000-option implied-volatility curves on demand under a
// throughput/energy budget — actually requires.
package serve

import (
	"context"
	"fmt"
	"log/slog"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"binopt/internal/lattice"
	"binopt/internal/obslog"
	"binopt/internal/option"
	"binopt/internal/slo"
	"binopt/internal/telemetry"
)

// Config parameterises a Server. The zero value of every field has a
// sensible default.
type Config struct {
	// Steps is the lattice depth every request is priced at (default
	// 1024, the paper's evaluation depth).
	Steps int
	// MaxBatch is the size trigger of the micro-batching queue (default
	// 64 options per flush).
	MaxBatch int
	// FlushInterval is the deadline trigger: the longest a request waits
	// for co-batched company before being flushed anyway (default 2ms).
	FlushInterval time.Duration
	// QueueDepth bounds the total options admitted and not yet priced;
	// beyond it requests are rejected with ErrSaturated / HTTP 429
	// (default 8192).
	QueueDepth int
	// CacheSize is the LRU capacity in contracts (default 65536; set
	// negative to disable caching).
	CacheSize int
	// Backends is the shard pool (default DefaultBackends(Steps)).
	Backends []BackendConfig
	// SolverWorkers bounds concurrency inside /v1/volcurve implied-vol
	// solves (default GOMAXPROCS).
	SolverWorkers int
	// ScenarioConcurrency bounds concurrent /v1/scenarios revaluations;
	// beyond it requests get 429 (default 2). Each revaluation already
	// saturates an engine's batch workers, so the bound is a count of
	// engines worth of standing load, not a request rate.
	ScenarioConcurrency int
	// PriceFunc overrides the pricing kernel, for tests that need a slow
	// or failing engine. The default prices on the double-precision
	// reference lattice at Steps depth.
	PriceFunc func(option.Option) (float64, error)
	// MaxAttempts bounds how many shards a single option may be tried
	// on before its error reaches the client (default 3; 1 disables
	// failover). Results are bit-identical across shards, so re-
	// dispatching a failed job elsewhere is semantically invisible.
	MaxAttempts int
	// RetryBackoff is the base of the exponential backoff between a
	// failed attempt and its re-dispatch (default 1ms; attempt n waits
	// RetryBackoff << (n-1)).
	RetryBackoff time.Duration
	// Breaker parameterises the per-shard circuit breakers; zero fields
	// take the BreakerConfig defaults.
	Breaker BreakerConfig
	// Tracer, when set, receives spans for every request and priced
	// option — host phases and modelled device commands — and enables
	// the /debug/trace Chrome-trace endpoint. nil disables tracing (the
	// emit paths become no-ops).
	Tracer *telemetry.Tracer
	// Node names this process in fleet observability surfaces: span
	// export pages, log lines, the aggregator's per-node trace lanes.
	// Empty is fine for a solo server.
	Node string
	// SLO, when set, enables the burn-rate monitor over the /v1/price
	// path with these objectives; its state surfaces on /healthz and
	// /debug/slo. Options (not a Monitor) so every node of a fleet
	// constructs its own window state from one shared config.
	SLO *slo.Options
	// Logger receives structured request/fault logs. nil logs nothing.
	Logger *slog.Logger
}

func (c Config) withDefaults() Config {
	if c.Steps <= 0 {
		c.Steps = 1024
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	if c.FlushInterval <= 0 {
		c.FlushInterval = 2 * time.Millisecond
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 8192
	}
	if c.CacheSize == 0 {
		c.CacheSize = 65536
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 3
	}
	if c.ScenarioConcurrency <= 0 {
		c.ScenarioConcurrency = 2
	}
	if c.RetryBackoff <= 0 {
		c.RetryBackoff = time.Millisecond
	}
	return c
}

// Result is one priced contract as returned to clients.
type Result struct {
	// Price is the option value on the reference lattice.
	Price float64 `json:"price"`
	// Cached reports whether the result came from the LRU.
	Cached bool `json:"cached"`
	// Backend names the shard that priced it ("cache" on a hit).
	Backend string `json:"backend"`
	// ModelledJoules is the modelled energy of producing this result on
	// the shard's device (zero for cache hits).
	ModelledJoules float64 `json:"modelled_joules"`
	// Retries counts the failed pricing attempts this option survived
	// before Backend produced it — nonzero means failover saved the
	// request from a shard fault.
	Retries int `json:"retries,omitempty"`
}

// Server is the pricing service. Construct with New, serve via Handler,
// stop with Close.
type Server struct {
	cfg     Config
	engine  *lattice.Engine
	priceFn func(option.Option) (float64, error)

	cache     *resultCache
	scenarios *scenarioCache
	// scenarioSem bounds concurrent scenario revaluations; acquisition
	// is non-blocking (a full semaphore is a 429, not a queue).
	scenarioSem chan struct{}
	metrics     *metrics
	batcher     *batcher
	backends    []*backend
	tracer      *telemetry.Tracer // nil-safe: nil is the disabled tracer
	slomon      *slo.Monitor      // nil-safe: nil is the disabled monitor
	logger      *slog.Logger      // never nil: obslog.Or substitutes Nop

	queued  atomic.Int64 // admitted, not yet completed
	closed  atomic.Bool
	aborted chan struct{} // closed when a drain deadline abandons shutdown
	wg      sync.WaitGroup

	// cacheGen is the result cache's market-data generation. A bump —
	// local via Invalidate, or remote via POST /v1/invalidate from a
	// cluster gossip peer — flushes the cache, so a vol-surface update
	// on any node of a fleet stops every node from serving prices
	// computed against the old surface. Monotonic; stale bumps no-op.
	cacheGen atomic.Uint64
}

// New builds and starts a Server (backend workers launch immediately).
func New(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	eng, err := lattice.NewEngine(cfg.Steps)
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	if cfg.Backends == nil {
		cfg.Backends, err = DefaultBackends(cfg.Steps)
		if err != nil {
			return nil, err
		}
	}
	if len(cfg.Backends) == 0 {
		return nil, fmt.Errorf("serve: at least one backend required")
	}

	s := &Server{
		cfg:     cfg,
		engine:  eng,
		metrics: newMetrics(),
		cache:   newResultCache(cfg.CacheSize),
		// The scenario cache shares the contract cache's on/off switch:
		// a server that must not serve memoised prices must not serve
		// memoised revaluations either.
		scenarios:   newScenarioCache(scenarioCacheCapFor(cfg.CacheSize)),
		scenarioSem: make(chan struct{}, cfg.ScenarioConcurrency),
		tracer:      cfg.Tracer,
		logger:      obslog.Or(cfg.Logger),
		aborted:     make(chan struct{}),
	}
	if cfg.Node != "" {
		s.logger = s.logger.With(obslog.KeyNode, cfg.Node)
	}
	if cfg.SLO != nil {
		s.slomon = slo.New(*cfg.SLO)
	}
	s.priceFn = cfg.PriceFunc
	if s.priceFn == nil {
		s.priceFn = eng.Price
	}
	for _, bc := range cfg.Backends {
		s.backends = append(s.backends, newBackend(bc, s.metrics, cfg.Breaker))
	}
	if err := s.verifyEngineParity(); err != nil {
		return nil, err
	}
	s.metrics.substrate = s.substrateStats
	s.metrics.breakers = s.breakerStats
	if s.tracer.Enabled() {
		s.metrics.traceStats = func() (int64, int64, int) {
			return s.tracer.Emitted(), s.tracer.Dropped(), s.tracer.Len()
		}
	}
	s.batcher = newBatcher(cfg.MaxBatch, cfg.FlushInterval, s.dispatchBatch)
	for _, be := range s.backends {
		for w := 0; w < be.cfg.Workers; w++ {
			s.wg.Add(1)
			go s.worker(be)
		}
	}
	return s, nil
}

// verifyEngineParity prices one canonical contract on every shard's
// platform engine and requires the results to match the server's
// reference lattice bit for bit — the serving-layer version of the
// kernel validation in §V-B. A PriceFunc override disables the check
// (stub kernels are deliberately not the reference).
func (s *Server) verifyEngineParity() error {
	if s.cfg.PriceFunc != nil {
		return nil
	}
	probe := option.Option{
		Right: option.Put, Style: option.American,
		Spot: 100, Strike: 105, Rate: 0.03, Sigma: 0.2, T: 0.5,
	}
	want, err := s.engine.Price(probe)
	if err != nil {
		return fmt.Errorf("serve: parity reference: %w", err)
	}
	for _, be := range s.backends {
		if be.cfg.Engine == nil || be.cfg.PriceFunc != nil {
			continue
		}
		got, err := be.cfg.Engine.Price(probe)
		if err != nil {
			return fmt.Errorf("serve: parity probe on %s: %w", be.cfg.Name, err)
		}
		if math.Float64bits(got) != math.Float64bits(want) {
			return fmt.Errorf("serve: backend %s diverges from the reference lattice: %v (%#x) != %v (%#x)",
				be.cfg.Name, got, math.Float64bits(got), want, math.Float64bits(want))
		}
	}
	return nil
}

// substrateStats snapshots per-backend device activity from the platform
// engines for the metrics page.
func (s *Server) substrateStats() []substrateStat {
	var out []substrateStat
	for _, be := range s.backends {
		if be.cfg.Engine == nil {
			continue
		}
		out = append(out, substrateStat{
			backend:    be.cfg.Name,
			counters:   be.cfg.Engine.Counters(),
			joules:     be.cfg.Engine.ModelledJoules(),
			devSeconds: be.cfg.Engine.ModelledDeviceSeconds(),
		})
	}
	return out
}

// Steps reports the lattice depth the server prices at.
func (s *Server) Steps() int { return s.cfg.Steps }

// CacheGeneration reports the result cache's current market-data
// generation.
func (s *Server) CacheGeneration() uint64 { return s.cacheGen.Load() }

// Invalidate applies a market-data generation bump: when gen exceeds the
// current generation the result cache is flushed and gen becomes
// current, returning true. A stale or duplicate bump (gen <= current) is
// a no-op returning false — that idempotence is what lets cluster
// gossip re-deliver the same invalidation along many paths without
// repeatedly dumping warm caches.
func (s *Server) Invalidate(gen uint64) bool {
	for {
		cur := s.cacheGen.Load()
		if gen <= cur {
			return false
		}
		if s.cacheGen.CompareAndSwap(cur, gen) {
			// A generation bump outdates memoised revaluations exactly as
			// it outdates memoised prices, so both caches flush together.
			evicted := s.cache.flush() + s.scenarios.flush()
			s.metrics.invalidations.Add(1)
			s.metrics.invalidatedEntries.Add(int64(evicted))
			return true
		}
	}
}

// Tracer returns the server's span tracer (nil when tracing is off),
// for mounting /debug/trace on auxiliary listeners.
func (s *Server) Tracer() *telemetry.Tracer { return s.tracer }

// QueueDepth reports the currently admitted, not yet completed options.
func (s *Server) QueueDepth() int64 { return s.queued.Load() }

// RetryAfter estimates, from the modelled aggregate throughput, how long
// a rejected client should wait before retrying (at least one second).
func (s *Server) RetryAfter() time.Duration {
	secs := float64(s.queued.Load()) / s.aggregateRate()
	if secs < 1 {
		secs = 1
	}
	return time.Duration(secs * float64(time.Second))
}

// PhaseBreakdown sums, over a request's priced (non-cached) options,
// the wall time spent in each pipeline phase: batch assembly wait,
// shard queue wait, compute, and readback (result delivery back to the
// requester). The four phases telescope — their sum is exactly the
// summed end-to-end latency of the priced options.
type PhaseBreakdown struct {
	Batch, Queue, Compute, Readback time.Duration
	// Priced counts the options contributing (cache hits skip every
	// phase and contribute nothing).
	Priced int
	// Joules is the request's modelled energy: the sum of the priced
	// options' per-option modelled joules on the shards that priced
	// them. Cache hits contribute zero — exactly as they contribute
	// zero to the engines' booked totals, which is what makes this
	// ledger sum (across requests) to the binopt_modelled_joules_total
	// delta.
	Joules float64
}

// ServerTiming renders the breakdown as a Server-Timing header value:
// per-phase summed milliseconds, the contributing option count, and the
// request's modelled joules — the form loadgen aggregates across
// requests. joules abuses the dur= slot like priced does; the metric
// name, not the slot, carries the unit.
func (p PhaseBreakdown) ServerTiming() string {
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	return fmt.Sprintf("batch;dur=%.3f, queue;dur=%.3f, compute;dur=%.3f, readback;dur=%.3f, priced;dur=%d, joules;dur=%.9g",
		ms(p.Batch), ms(p.Queue), ms(p.Compute), ms(p.Readback), p.Priced, p.Joules)
}

// PriceOptions prices a slice of contracts through the full serving path:
// cache lookup, admission control, micro-batching, backend shards.
// Results arrive in input order. It returns ErrSaturated when admission
// would exceed the queue depth and ErrClosed during shutdown; the ctx
// cancelling abandons the wait (already-admitted work still completes and
// populates the cache).
func (s *Server) PriceOptions(ctx context.Context, opts []option.Option) ([]Result, error) {
	results, _, err := s.PriceOptionsTimed(ctx, opts)
	return results, err
}

// PriceOptionsTimed is PriceOptions plus the request's per-phase latency
// breakdown, which the HTTP handler exports as a Server-Timing header.
func (s *Server) PriceOptionsTimed(ctx context.Context, opts []option.Option) ([]Result, PhaseBreakdown, error) {
	var phases PhaseBreakdown
	if s.closed.Load() {
		return nil, phases, ErrClosed
	}
	if len(opts) == 0 {
		return nil, phases, fmt.Errorf("serve: empty batch")
	}
	for i, o := range opts {
		if err := o.Validate(); err != nil {
			return nil, phases, fmt.Errorf("serve: contract %d: %w", i, err)
		}
	}

	tc := telemetry.TraceFromContext(ctx)
	reqID := tc.Req
	if s.tracer.Enabled() && reqID == 0 {
		reqID = s.tracer.NextID()
	}
	results := make([]Result, len(opts))
	var jobs []*job
	var jobIdx []int
	now := time.Now()
	for i, o := range opts {
		key := keyFor(o, s.cfg.Steps)
		if price, ok := s.cache.get(key); ok {
			s.metrics.observeHit()
			results[i] = Result{Price: price, Cached: true, Backend: "cache"}
			continue
		}
		jobs = append(jobs, &job{opt: o, key: key, req: reqID, trace: tc.Trace, seq: i, enqueued: now, done: make(chan jobResult, 1)})
		jobIdx = append(jobIdx, i)
	}
	if len(jobs) == 0 {
		return results, phases, nil
	}

	// Admission: reject the whole request rather than partially queueing
	// it, so a client never waits on half a batch. A request too large
	// for an empty queue is rejected permanently — a Retry-After would
	// be a lie.
	n := int64(len(jobs))
	if n > int64(s.cfg.QueueDepth) {
		s.metrics.rejected.Add(1)
		return nil, phases, fmt.Errorf("%w: %d uncached contracts > depth %d", ErrBatchTooLarge, n, s.cfg.QueueDepth)
	}
	if s.queued.Add(n) > int64(s.cfg.QueueDepth) {
		s.queued.Add(-n)
		s.metrics.rejected.Add(1)
		return nil, phases, ErrSaturated
	}

	admitted := 0
	for _, j := range jobs {
		if err := s.batcher.add(j); err != nil {
			// Shutdown raced us: roll back the jobs that never made it in.
			s.queued.Add(-(n - int64(admitted)))
			return nil, phases, err
		}
		admitted++
	}

	// Drain every job's done channel even after a failure: sibling jobs
	// from this request are still in flight, and returning early would
	// silently discard their results and never observe their phase
	// metrics and spans. Only the caller's context abandons the wait
	// (the buffered channels keep the workers from blocking on us).
	var firstErr error
	for k, j := range jobs {
		select {
		case res := <-j.done:
			if res.err != nil {
				if firstErr == nil {
					firstErr = fmt.Errorf("serve: contract %d (%v): %w", jobIdx[k], j.opt, res.err)
				}
				continue
			}
			results[jobIdx[k]] = Result{Price: res.price, Backend: res.backend, ModelledJoules: res.joules, Retries: res.retries}
			s.observeDelivery(j, res, &phases)
		case <-ctx.Done():
			return nil, phases, ctx.Err()
		}
	}
	if firstErr != nil {
		return nil, phases, firstErr
	}
	return results, phases, nil
}

// observeDelivery closes out one priced option on the requester side:
// it computes the four phase durations from the job's timestamps (the
// worker wrote them before sending on done), feeds the phase
// histograms, books the option's modelled joules into the request
// ledger and the per-phase energy attribution, and emits the batch/
// queue/readback host spans. The compute span was emitted by the
// worker, on the shard's own track.
func (s *Server) observeDelivery(j *job, res jobResult, phases *PhaseBreakdown) {
	recv := time.Now()
	batchD := j.flushed.Sub(j.enqueued)
	queueD := j.picked.Sub(j.flushed)
	computeD := j.computed.Sub(j.picked)
	readbackD := recv.Sub(j.computed)
	phases.Batch += batchD
	phases.Queue += queueD
	phases.Compute += computeD
	phases.Readback += readbackD
	phases.Priced++
	phases.Joules += res.joules
	s.metrics.observePhases(batchD, queueD, computeD, readbackD)
	s.attributeJoules(res.joules, batchD, queueD, computeD, readbackD)
	if !s.tracer.Enabled() {
		return
	}
	attrs := func() map[string]any {
		return map[string]any{"backend": res.backend, "opt": j.seq}
	}
	s.tracer.Emit(telemetry.Span{
		Req: j.req, Trace: j.trace, Name: "batch", Proc: "host", Thread: "requests",
		Start: j.enqueued, Dur: batchD, Clock: telemetry.Wall, Attrs: attrs(),
	})
	s.tracer.Emit(telemetry.Span{
		Req: j.req, Trace: j.trace, Name: "queue", Proc: "host", Thread: "requests",
		Start: j.flushed, Dur: queueD, Clock: telemetry.Wall, Attrs: attrs(),
	})
	s.tracer.Emit(telemetry.Span{
		Req: j.req, Trace: j.trace, Name: "readback", Proc: "host", Thread: "requests",
		Start: j.computed, Dur: readbackD, Clock: telemetry.Wall, Attrs: attrs(),
	})
}

// attributeJoules splits one option's modelled energy across the four
// pipeline phases proportionally to their wall durations, with the last
// share computed by subtraction so the four phase counters telescope
// exactly — not approximately — to the booked per-option total. The
// split answers "where did these joules go" in pipeline terms: energy
// spent while the option sat in batch assembly is the cost of batching,
// not of compute.
func (s *Server) attributeJoules(joules float64, batchD, queueD, computeD, readbackD time.Duration) {
	total := batchD + queueD + computeD + readbackD
	var jb, jq, jc float64
	if total > 0 {
		jb = joules * float64(batchD) / float64(total)
		jq = joules * float64(queueD) / float64(total)
		jc = joules * float64(computeD) / float64(total)
	}
	s.metrics.phaseJoules["batch"].add(jb)
	s.metrics.phaseJoules["queue"].add(jq)
	s.metrics.phaseJoules["compute"].add(jc)
	s.metrics.phaseJoules["readback"].add(joules - jb - jq - jc)
}

// Close drains the service: no new work is admitted, the batcher flushes
// its buffer, every already-admitted option completes, then the shard
// queues close and workers exit. ctx bounds the drain.
func (s *Server) Close(ctx context.Context) error {
	if s.closed.Swap(true) {
		return nil
	}
	s.batcher.close()

	tick := time.NewTicker(2 * time.Millisecond)
	defer tick.Stop()
	for s.queued.Load() > 0 {
		select {
		case <-ctx.Done():
			// Abandoning the drain: wake any dispatch blocked on a full
			// shard queue so it can fail its jobs and roll back their
			// admission instead of leaking on a queue nobody drains.
			close(s.aborted)
			return fmt.Errorf("serve: drain interrupted with %d options in flight: %w", s.queued.Load(), ctx.Err())
		case <-tick.C:
		}
	}
	for _, be := range s.backends {
		close(be.jobs)
	}
	s.wg.Wait()
	return nil
}
