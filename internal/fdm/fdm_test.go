package fdm

import (
	"math"
	"testing"

	"binopt/internal/bs"
	"binopt/internal/lattice"
	"binopt/internal/option"
)

func contract(right option.Right, style option.Style) option.Option {
	return option.Option{
		Right: right, Style: style,
		Spot: 100, Strike: 105, Rate: 0.03, Sigma: 0.2, T: 0.5,
	}
}

func TestEuropeanMatchesBlackScholes(t *testing.T) {
	for _, right := range []option.Right{option.Call, option.Put} {
		o := contract(right, option.European)
		ref, err := bs.Price(o)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Price(o, Config{SpaceNodes: 400, TimeSteps: 400})
		if err != nil {
			t.Fatal(err)
		}
		if diff := math.Abs(got - ref); diff > 2e-3 {
			t.Errorf("%v: FDM %v vs BS %v (diff %g)", right, got, ref, diff)
		}
	}
}

func TestAmericanMatchesLattice(t *testing.T) {
	o := contract(option.Put, option.American)
	eng, err := lattice.NewEngine(4096)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := eng.Price(o)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Price(o, Config{SpaceNodes: 400, TimeSteps: 400})
	if err != nil {
		t.Fatal(err)
	}
	if diff := math.Abs(got - ref); diff > 5e-3 {
		t.Errorf("FDM american %v vs lattice %v (diff %g)", got, ref, diff)
	}
}

func TestAmericanCallNoDivEqualsEuropean(t *testing.T) {
	am := contract(option.Call, option.American)
	eu := contract(option.Call, option.European)
	va, err := Price(am, Config{})
	if err != nil {
		t.Fatal(err)
	}
	ve, err := Price(eu, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(va-ve) > 2e-3 {
		t.Errorf("american call %v should equal european %v when q=0", va, ve)
	}
}

func TestAmericanDominatesIntrinsicEverywhere(t *testing.T) {
	o := contract(option.Put, option.American)
	for _, spot := range []float64{60, 80, 100, 120, 150} {
		oo := o
		oo.Spot = spot
		v, err := Price(oo, Config{})
		if err != nil {
			t.Fatal(err)
		}
		if v < oo.Intrinsic()-1e-8 {
			t.Errorf("S=%v: value %v below intrinsic %v", spot, v, oo.Intrinsic())
		}
	}
}

func TestConvergenceUnderRefinement(t *testing.T) {
	o := contract(option.Put, option.European)
	ref, err := bs.Price(o)
	if err != nil {
		t.Fatal(err)
	}
	coarse, err := Price(o, Config{SpaceNodes: 50, TimeSteps: 50})
	if err != nil {
		t.Fatal(err)
	}
	fine, err := Price(o, Config{SpaceNodes: 400, TimeSteps: 400})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fine-ref) > math.Abs(coarse-ref) {
		t.Errorf("refinement did not reduce error: coarse %g, fine %g",
			math.Abs(coarse-ref), math.Abs(fine-ref))
	}
}

func TestDeepITMAmericanPutPinnedAtIntrinsic(t *testing.T) {
	o := option.Option{
		Right: option.Put, Style: option.American,
		Spot: 40, Strike: 100, Rate: 0.08, Sigma: 0.2, T: 1,
	}
	v, err := Price(o, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v-60) > 5e-3 {
		t.Errorf("deep ITM put = %v, want 60", v)
	}
}

func TestValidation(t *testing.T) {
	o := contract(option.Put, option.American)
	bad := o
	bad.Sigma = -1
	if _, err := Price(bad, Config{}); err == nil {
		t.Error("invalid option should fail")
	}
	for _, cfg := range []Config{
		{SpaceNodes: 2},
		{TimeSteps: -1},
		{WidthSigmas: -2},
		{Omega: 2.5},
		{Tol: -1},
		{MaxIter: -3},
	} {
		if _, err := Price(o, cfg); err == nil {
			t.Errorf("config %+v should fail", cfg)
		}
	}
}

func TestPSORNonConvergenceSurfaces(t *testing.T) {
	// Failure injection: starving PSOR of iterations must produce a
	// clean error, not a silent wrong price.
	o := contract(option.Put, option.American)
	_, err := Price(o, Config{MaxIter: 1, Tol: 1e-14})
	if err == nil {
		t.Error("PSOR with 1 iteration should report non-convergence")
	}
}

func TestThomasSolvesKnownSystem(t *testing.T) {
	// [2 1; 1 2 1; 1 2] x = b with known x.
	x := []float64{1, 2, 3}
	b := []float64{2*1 + 1*2, 1*1 + 2*2 + 1*3, 1*2 + 2*3}
	out := make([]float64, 3)
	thomas(1, 2, 1, b, out)
	for i := range x {
		if math.Abs(out[i]-x[i]) > 1e-12 {
			t.Errorf("x[%d] = %v, want %v", i, out[i], x[i])
		}
	}
}

func TestPSORAgreesWithThomasWhenUnconstrained(t *testing.T) {
	// With a payoff floor of -inf, PSOR must reproduce the linear solve.
	rhs := []float64{1, 2, 3, 4}
	floor := []float64{-1e18, -1e18, -1e18, -1e18}
	prev := make([]float64, 4)
	direct := make([]float64, 4)
	thomas(-0.1, 1.3, -0.1, rhs, direct)
	iter := make([]float64, 4)
	cfg := Config{}
	cfg.defaults()
	if err := psor(-0.1, 1.3, -0.1, rhs, floor, prev, iter, cfg); err != nil {
		t.Fatal(err)
	}
	for i := range direct {
		if math.Abs(iter[i]-direct[i]) > 1e-6 {
			t.Errorf("x[%d]: psor %v vs thomas %v", i, iter[i], direct[i])
		}
	}
}
