// Package fdm prices options by finite differences on the Black–Scholes
// PDE — the "finite differences methods" the paper's related-work survey
// groups with quadrature as the alternatives to trees (§II). The scheme
// is Crank–Nicolson on a uniform log-price grid with Rannacher start-up
// (two implicit-Euler half-step pairs to damp the payoff-kink
// oscillation), a Thomas tridiagonal solve for European contracts, and
// projected SOR for the American early-exercise complementarity problem.
package fdm

import (
	"fmt"
	"math"

	"binopt/internal/option"
)

// Config parameterises the grid and the iterative solver.
type Config struct {
	// SpaceNodes is the number of interior log-price nodes (default 200).
	SpaceNodes int
	// TimeSteps is the number of time levels (default 200).
	TimeSteps int
	// WidthSigmas sets the grid half-width in terminal standard
	// deviations (default 6).
	WidthSigmas float64
	// Omega is the PSOR relaxation factor in (0, 2) (default 1.2).
	Omega float64
	// Tol is the PSOR convergence tolerance (default 1e-8).
	Tol float64
	// MaxIter bounds PSOR iterations per time level (default 10000).
	MaxIter int
}

func (c *Config) defaults() {
	if c.SpaceNodes == 0 {
		c.SpaceNodes = 200
	}
	if c.TimeSteps == 0 {
		c.TimeSteps = 200
	}
	if c.WidthSigmas == 0 {
		c.WidthSigmas = 6
	}
	if c.Omega == 0 {
		c.Omega = 1.2
	}
	if c.Tol == 0 {
		c.Tol = 1e-8
	}
	if c.MaxIter == 0 {
		c.MaxIter = 10000
	}
}

func (c Config) validate() error {
	switch {
	case c.SpaceNodes < 3:
		return fmt.Errorf("fdm: need at least 3 space nodes, got %d", c.SpaceNodes)
	case c.TimeSteps < 1:
		return fmt.Errorf("fdm: need at least 1 time step, got %d", c.TimeSteps)
	case c.WidthSigmas <= 0:
		return fmt.Errorf("fdm: width must be positive, got %v", c.WidthSigmas)
	case c.Omega <= 0 || c.Omega >= 2:
		return fmt.Errorf("fdm: PSOR omega must be in (0,2), got %v", c.Omega)
	case c.Tol <= 0:
		return fmt.Errorf("fdm: tolerance must be positive, got %v", c.Tol)
	case c.MaxIter < 1:
		return fmt.Errorf("fdm: max iterations must be positive, got %d", c.MaxIter)
	}
	return nil
}

// Price values the option by Crank–Nicolson finite differences and
// returns the value interpolated at the spot.
func Price(o option.Option, cfg Config) (float64, error) {
	if err := o.Validate(); err != nil {
		return 0, err
	}
	cfg.defaults()
	if err := cfg.validate(); err != nil {
		return 0, err
	}

	m := cfg.SpaceNodes
	nt := cfg.TimeSteps
	american := o.Style == option.American

	// Log-price grid centred on the spot, wide enough that the
	// boundaries are effectively absorbing.
	half := cfg.WidthSigmas*o.Sigma*math.Sqrt(o.T) + math.Abs(o.Rate-o.Div)*o.T + 0.5
	x0 := math.Log(o.Spot)
	xMin, xMax := x0-half, x0+half
	dx := (xMax - xMin) / float64(m+1)
	dt := o.T / float64(nt)

	nu := o.Rate - o.Div - 0.5*o.Sigma*o.Sigma
	sig2 := o.Sigma * o.Sigma

	// Spatial operator A: A_low*V[i-1] + A_diag*V[i] + A_up*V[i+1].
	aLow := 0.5*sig2/(dx*dx) - 0.5*nu/dx
	aDiag := -sig2/(dx*dx) - o.Rate
	aUp := 0.5*sig2/(dx*dx) + 0.5*nu/dx

	// Node prices and payoffs.
	sAt := make([]float64, m+2)
	pay := make([]float64, m+2)
	for i := 0; i <= m+1; i++ {
		sAt[i] = math.Exp(xMin + float64(i)*dx)
		pay[i] = o.Payoff(sAt[i])
	}

	v := append([]float64(nil), pay...)
	vNew := make([]float64, m+2)
	rhs := make([]float64, m)

	// boundary returns the Dirichlet values at time-to-expiry tau.
	boundary := func(tau float64) (lo, hi float64) {
		dfR := math.Exp(-o.Rate * tau)
		dfQ := math.Exp(-o.Div * tau)
		if o.Right == option.Put {
			if american {
				lo = o.Strike - sAt[0]
			} else {
				lo = o.Strike*dfR - sAt[0]*dfQ
			}
			if lo < 0 {
				lo = 0
			}
			return lo, 0
		}
		hi = sAt[m+1]*dfQ - o.Strike*dfR
		if american {
			if intr := sAt[m+1] - o.Strike; intr > hi {
				hi = intr
			}
		}
		if hi < 0 {
			hi = 0
		}
		return 0, hi
	}

	// Rannacher start-up: the first two time levels are split into two
	// implicit-Euler half steps each; the rest are Crank–Nicolson.
	type scheme struct {
		theta float64
		dt    float64
	}
	var plan []scheme
	if nt >= 3 {
		plan = append(plan,
			scheme{1, dt / 2}, scheme{1, dt / 2},
			scheme{1, dt / 2}, scheme{1, dt / 2})
		for k := 2; k < nt; k++ {
			plan = append(plan, scheme{0.5, dt})
		}
	} else {
		for k := 0; k < nt; k++ {
			plan = append(plan, scheme{1, dt})
		}
	}

	tau := 0.0
	for _, st := range plan {
		tau += st.dt
		lo, hi := boundary(tau)

		// Explicit part: (I + (1-theta)*dt*A) v.
		ex := 1 - st.theta
		for i := 1; i <= m; i++ {
			rhs[i-1] = v[i] + ex*st.dt*(aLow*v[i-1]+aDiag*v[i]+aUp*v[i+1])
		}
		// Implicit matrix (I - theta*dt*A), tridiagonal and constant.
		dl := -st.theta * st.dt * aLow
		dd := 1 - st.theta*st.dt*aDiag
		du := -st.theta * st.dt * aUp
		// Fold the boundary values into the first/last equations.
		rhs[0] -= dl * lo
		rhs[m-1] -= du * hi

		vNew[0], vNew[m+1] = lo, hi
		if american {
			if err := psor(dl, dd, du, rhs, pay[1:m+1], v[1:m+1], vNew[1:m+1], cfg); err != nil {
				return 0, err
			}
		} else {
			thomas(dl, dd, du, rhs, vNew[1:m+1])
		}
		copy(v, vNew)
	}

	// Linear interpolation at the spot (x0 sits on the grid centre up to
	// rounding; interpolate anyway). Interpolating in log-space slightly
	// under-estimates in the exercise region (K - e^x is concave), so the
	// American value is floored at intrinsic, which it dominates by
	// arbitrage.
	pos := (x0 - xMin) / dx
	i := int(pos)
	if i < 0 {
		i = 0
	}
	if i > m {
		i = m
	}
	w := pos - float64(i)
	val := v[i]*(1-w) + v[i+1]*w
	if american {
		if intr := o.Intrinsic(); val < intr {
			val = intr
		}
	}
	return val, nil
}

// thomas solves the constant-coefficient tridiagonal system in O(n).
func thomas(dl, dd, du float64, rhs []float64, out []float64) {
	n := len(rhs)
	cp := make([]float64, n)
	bp := make([]float64, n)
	cp[0] = du / dd
	bp[0] = rhs[0] / dd
	for i := 1; i < n; i++ {
		m := dd - dl*cp[i-1]
		cp[i] = du / m
		bp[i] = (rhs[i] - dl*bp[i-1]) / m
	}
	out[n-1] = bp[n-1]
	for i := n - 2; i >= 0; i-- {
		out[i] = bp[i] - cp[i]*out[i+1]
	}
}

// psor solves the linear complementarity problem
// (I - theta*dt*A) v >= rhs, v >= payoff, componentwise complementarity,
// by projected successive over-relaxation warm-started from prev.
func psor(dl, dd, du float64, rhs, payoff, prev, out []float64, cfg Config) error {
	n := len(rhs)
	copy(out, prev)
	for i := range out {
		if out[i] < payoff[i] {
			out[i] = payoff[i]
		}
	}
	for iter := 0; iter < cfg.MaxIter; iter++ {
		maxDelta := 0.0
		for i := 0; i < n; i++ {
			sum := rhs[i]
			if i > 0 {
				sum -= dl * out[i-1]
			}
			if i < n-1 {
				sum -= du * out[i+1]
			}
			gs := sum / dd
			next := out[i] + cfg.Omega*(gs-out[i])
			if next < payoff[i] {
				next = payoff[i]
			}
			if d := math.Abs(next - out[i]); d > maxDelta {
				maxDelta = d
			}
			out[i] = next
		}
		if maxDelta < cfg.Tol {
			return nil
		}
	}
	return fmt.Errorf("fdm: PSOR did not converge in %d iterations", cfg.MaxIter)
}
