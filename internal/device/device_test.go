package device

import (
	"math"
	"testing"

	"binopt/internal/opencl"
)

func TestDE4Inventory(t *testing.T) {
	b := DE4()
	// Table I denominators: 415K registers (base-2 K), 20,736K memory
	// bits, 1,280 M9K blocks, 1K DSP elements.
	if got := b.Chip.Registers / 1024; got != 415 {
		t.Errorf("registers = %dK, want 415K", got)
	}
	if got := b.Chip.MemoryBits / 1024; got != 20736 {
		t.Errorf("memory bits = %dK, want 20736K", got)
	}
	if b.Chip.M9K != 1280 {
		t.Errorf("M9K = %d, want 1280", b.Chip.M9K)
	}
	if b.Chip.DSP18 != 1024 {
		t.Errorf("DSP18 = %d, want 1024", b.Chip.DSP18)
	}
	if b.DDRBytesPerSec != 12.75e9 {
		t.Errorf("DDR bandwidth = %v", b.DDRBytesPerSec)
	}
	if b.PCIe.Gen != 2 || b.PCIe.Lanes != 4 || b.PCIe.TheoreticalB != 2.0e9 {
		t.Errorf("PCIe: %+v", b.PCIe)
	}
	if b.PCIe.EffectiveB > b.PCIe.TheoreticalB {
		t.Error("effective PCIe bandwidth above theoretical")
	}
}

func TestDE4FmaxCalibration(t *testing.T) {
	// The congestion model must reproduce the two published design
	// points: 99% utilisation -> 98.27 MHz, 66% -> 162.62 MHz.
	c := DE4().Chip
	fmax := func(util float64) float64 {
		return c.FmaxPeakMHz * (1 - c.CongestionK*util*util)
	}
	if got := fmax(0.99); math.Abs(got-98.27) > 1.5 {
		t.Errorf("Fmax(99%%) = %.2f MHz, want ~98.27", got)
	}
	if got := fmax(0.66); math.Abs(got-162.62) > 1.5 {
		t.Errorf("Fmax(66%%) = %.2f MHz, want ~162.62", got)
	}
}

func TestDE4PowerCalibration(t *testing.T) {
	// The power model must reproduce the published kernel estimates:
	// IV.A (411K regs, 586 DSP, 1250 M9K at 98.27 MHz) -> ~15 W,
	// IV.B (245K regs, 760 DSP, 1118 M9K at 162.62 MHz) -> ~17 W.
	c := DE4().Chip
	power := func(regs, dsp, m9k int, fMHz float64) float64 {
		weight := float64(regs) + 40*float64(dsp) + 200*float64(m9k)
		return c.StaticWatts + c.DynWattsPerWeightHz*weight*fMHz*1e6
	}
	if got := power(411*1024, 586, 1250, 98.27); math.Abs(got-15) > 0.8 {
		t.Errorf("kernel IV.A power = %.2f W, want ~15", got)
	}
	if got := power(245*1024, 760, 1118, 162.62); math.Abs(got-17) > 0.8 {
		t.Errorf("kernel IV.B power = %.2f W, want ~17", got)
	}
}

func TestGTX660Spec(t *testing.T) {
	g := GTX660()
	if got := g.ComputeUnits * g.CoresPerCU; got != 960 {
		t.Errorf("stream processors = %d, want 960 (paper)", got)
	}
	if got := g.ComputeUnits * g.CoresPerCU / g.DPRatio; got != 120 {
		t.Errorf("DP ALUs = %d, want 120 (paper)", got)
	}
	if g.TDPWatts != 140 {
		t.Errorf("TDP = %v, want 140 W", g.TDPWatts)
	}
	// Peak DP: 120 ALUs * 980 MHz * 2 = 235 GFLOPS.
	if got := g.PeakDPFlops(); math.Abs(got-235.2e9) > 1e9 {
		t.Errorf("peak DP = %g", got)
	}
	if g.PeakSPFlops() != 8*g.PeakDPFlops() {
		t.Error("SP:DP ratio should be 8")
	}
}

func TestXeonSpec(t *testing.T) {
	c := XeonX5450()
	if c.ClockHz != 3.0e9 || c.Cores != 4 || c.TDPWatts != 120 {
		t.Errorf("xeon: %+v", c)
	}
	// Calibration check: 3 GHz / 25.7 cycles per node over a 1024-step
	// tree is ~222 options/s, the published double-precision reference.
	nodes := 1024.0 * 1025.0 / 2.0
	optPerSec := c.ClockHz / c.CyclesPerNode / nodes
	if math.Abs(optPerSec-222) > 5 {
		t.Errorf("modelled reference throughput %.1f options/s, want ~222", optPerSec)
	}
	if c.SingleSpeedup >= 1 {
		t.Error("published single-precision reference is slower than double; ratio must be < 1")
	}
}

func TestOpenCLInfoConversions(t *testing.T) {
	if info := DE4().OpenCLInfo(); info.Type != opencl.Accelerator || info.LocalMemBytes <= 0 {
		t.Errorf("DE4 info: %+v", info)
	}
	if info := GTX660().OpenCLInfo(); info.Type != opencl.GPU || info.ComputeUnits != 5 {
		t.Errorf("GTX660 info: %+v", info)
	}
	if info := XeonX5450().OpenCLInfo(); info.Type != opencl.CPU || info.ComputeUnits != 4 {
		t.Errorf("Xeon info: %+v", info)
	}
}

func TestEmbeddedSpecs(t *testing.T) {
	ti := TIKeystone()
	if ti.PeakDPFlops != 8*1.25e9*4 || ti.TDPWatts != 10 {
		t.Errorf("keystone: %+v", ti)
	}
	if ti.PeakSPFlops != 4*ti.PeakDPFlops {
		t.Error("keystone SP:DP should be 4")
	}
	mali := ARMMali()
	if mali.PeakSPFlops != 68e9 || mali.TDPWatts != 4 {
		t.Errorf("mali: %+v", mali)
	}
	if mali.PeakSPFlops != 4*mali.PeakDPFlops {
		t.Error("mali SP:DP should be 4")
	}
}
