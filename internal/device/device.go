// Package device catalogues the three hardware platforms of the paper's
// test environment (§V-A): the Terasic DE4 FPGA board (Stratix IV
// 4SGX530), the NVIDIA GTX660 GPU, and the Intel Xeon X5450 host CPU.
// The descriptors carry the published micro-architecture parameters plus
// the calibrated effective-bandwidth and power figures the performance
// models need. Everything quantitative cites either the paper or the
// vendor datasheets the paper references ([14], [15]).
package device

import "binopt/internal/opencl"

// PCIe describes a host link. Theoretical bandwidth follows from
// generation and lanes; Effective is the achievable payload bandwidth for
// the synchronous, latency-bound transfer pattern of kernel IV.A's host
// loop, which is far below line rate (the paper's measured 25 options/s on
// the FPGA is dominated by exactly this gap).
type PCIe struct {
	Gen          int
	Lanes        int
	TheoreticalB float64 // bytes/s, protocol line rate * lanes
	EffectiveB   float64 // bytes/s achieved by per-batch blocking transfers
	// CommandLatencySec is the fixed driver/runtime cost of one blocking
	// host command (buffer write, kernel launch, buffer read). It bounds
	// the throughput of chatty host loops even when payloads are tiny —
	// which is why the paper's reduced-reads kernel IV.A variant reaches
	// 840 options/s rather than thousands.
	CommandLatencySec float64
}

// FPGAChip is the Stratix IV resource inventory in the units Quartus
// reports (Table I): combinational ALUTs, dedicated registers, block
// memory bits, M9K/M144K RAM blocks, and 18-bit DSP elements.
type FPGAChip struct {
	Name        string
	ALUTs       int
	Registers   int
	MemoryBits  int64
	M9K         int
	M144K       int
	DSP18       int
	FmaxPeakMHz float64 // routable kernel clock at low utilisation
	// CongestionK is the quadratic Fmax degradation coefficient:
	// f = FmaxPeak * (1 - CongestionK * util^2). Calibrated so the two
	// published design points land on 98.27 and 162.62 MHz.
	CongestionK float64
	// StaticWatts and DynWattsPerWeightHz define the quartus_pow-style
	// power model: P = Static + DynWattsPerWeightHz * weight * fclk, where
	// weight = registers + 40*DSP18 + 200*M9K (a toggling-capacitance
	// proxy). Calibrated on the paper's 15 W / 17 W estimates.
	StaticWatts         float64
	DynWattsPerWeightHz float64
}

// FPGABoard pairs a chip with its board-level memory system.
type FPGABoard struct {
	Name           string
	Chip           FPGAChip
	DDRBytesPerSec float64 // aggregate DDR2 bandwidth, bytes/s
	DDRBytes       int64   // global memory capacity
	LocalBytes     int64   // on-chip RAM usable as OpenCL local memory
	PCIe           PCIe
	// SaturationOptions is the workload at which throughput becomes a
	// linear function of option count ("this saturation typically
	// happens at 1e5 priced options", §V-C).
	SaturationOptions int64
}

// DE4 returns the Terasic DE4 board with the Stratix IV EP4SGX530 used
// throughout the paper.
func DE4() FPGABoard {
	return FPGABoard{
		Name: "Terasic DE4 (Stratix IV EP4SGX530)",
		Chip: FPGAChip{
			Name:       "EP4SGX530",
			ALUTs:      424960,
			Registers:  424960, // paper's Table I denominator prints 415K (base-2 K)
			MemoryBits: 20736 * 1024,
			M9K:        1280,
			M144K:      64,
			DSP18:      1024,
			// Calibration: solving f = peak*(1 - k*util^2) through the two
			// published points (99% -> 98.27 MHz, 66% -> 162.62 MHz) gives
			// peak = 214.1 MHz, k = 0.552.
			FmaxPeakMHz: 214.1,
			CongestionK: 0.552,
			// Calibration: solving P = Ps + a*weight*f through the two
			// published points (15 W and 17 W) gives Ps = 5.25 W,
			// a = 1.45e-13 W/(weight*Hz).
			StaticWatts:         5.25,
			DynWattsPerWeightHz: 1.45e-13,
		},
		// Two DDR2 banks, 12.75 GB/s aggregate at 400 MHz (paper §V-A).
		DDRBytesPerSec: 12.75e9,
		DDRBytes:       2 << 30,
		LocalBytes:     1280 * 9 * 1024 / 8, // M9K pool as byte capacity
		PCIe: PCIe{
			Gen:   2,
			Lanes: 4,
			// 500 MB/s per lane (paper: "maximum bandwidth of 500 MB/s per
			// lane, meaning the DE4 board's maximum bandwidth is 2 GB/s").
			TheoreticalB: 2.0e9,
			// Effective bandwidth of the blocking per-batch read pattern,
			// calibrated so kernel IV.A reproduces its published 25
			// options/s (a multi-megabyte readback per batch).
			EffectiveB:        0.24e9,
			CommandLatencySec: 0.3e-3,
		},
		SaturationOptions: 100_000,
	}
}

// GPUSpec describes the GTX660 the way the paper does: 960 stream
// processors in 5 compute units, one double-precision ALU per 8 stream
// processors, 980 MHz, 2 GB GDDR5 at 144 GB/s, PCIe 3.0 x16, 140 W TDP.
type GPUSpec struct {
	Name            string
	ComputeUnits    int // streaming multiprocessors
	CoresPerCU      int // single-precision lanes per CU
	DPRatio         int // SP lanes per DP lane (8 per the paper)
	ClockHz         float64
	MemBytesPerSec  float64
	MemBytes        int64
	LocalBytesPerCU int64 // 48 KiB L1/shared per CU (paper §V-A)
	PCIe            PCIe
	TDPWatts        float64
	// EffDP and EffSP are the sustained fractions of peak double- and
	// single-precision arithmetic throughput the barrier-synchronised
	// binomial kernel achieves; calibrated on the published 8900 (double)
	// and 47000 (single) options/s figures. The single-precision build is
	// relatively less efficient because it saturates shared memory before
	// the (8x larger) SP ALU pool.
	EffDP float64
	EffSP float64
	// SaturationOptions is the workload at which the device reaches
	// linear throughput (the paper: 1e6 for kernel IV.B on the GTX660,
	// ten times the FPGA's).
	SaturationOptions int64
}

// GTX660 returns the NVIDIA GeForce GTX660 descriptor.
func GTX660() GPUSpec {
	return GPUSpec{
		Name:            "NVIDIA GeForce GTX660",
		ComputeUnits:    5,
		CoresPerCU:      192,
		DPRatio:         8,
		ClockHz:         980e6,
		MemBytesPerSec:  144e9,
		MemBytes:        2 << 30,
		LocalBytesPerCU: 48 << 10,
		PCIe: PCIe{
			Gen:   3,
			Lanes: 16,
			// 985 MB/s per lane per the paper's reading of [14].
			TheoreticalB: 15.76e9,
			// Effective blocking-transfer bandwidth, calibrated so kernel
			// IV.A on the GPU lands near its published 53 options/s; the
			// command latency is calibrated on the 840 options/s of the
			// reduced-reads variant.
			EffectiveB:        0.45e9,
			CommandLatencySec: 0.27e-3,
		},
		TDPWatts:          140,
		EffDP:             0.119,
		EffSP:             0.0787,
		SaturationOptions: 1_000_000,
	}
}

// CPUSpec describes the reference host processor.
type CPUSpec struct {
	Name     string
	Cores    int
	ClockHz  float64
	TDPWatts float64
	// CyclesPerNode is the single-core cost of one backward-induction
	// node update (loads, three multiplies, add, compare, store),
	// calibrated on the published 222 options/s double-precision
	// reference (222 * 1024*1025/2 node updates/s at 3 GHz = 25.7
	// cycles).
	CyclesPerNode float64
	// SingleSpeedup is the throughput gain of the float32 build. The
	// paper reports 116 options/s single vs 222 double — i.e. the
	// reference C code ran *slower* in single precision (x87/SSE
	// conversion overheads); the ratio is preserved as published.
	SingleSpeedup float64
}

// XeonX5450 returns the Intel Xeon X5450 descriptor ([15]).
func XeonX5450() CPUSpec {
	return CPUSpec{
		Name:          "Intel Xeon X5450",
		Cores:         4,
		ClockHz:       3.0e9,
		TDPWatts:      120,
		CyclesPerNode: 25.7,
		SingleSpeedup: 116.0 / 222.0,
	}
}

// OpenCLInfo converts the FPGA board to a runtime device descriptor.
func (b FPGABoard) OpenCLInfo() opencl.DeviceInfo {
	return opencl.DeviceInfo{
		Name:             b.Name,
		Vendor:           "Altera",
		Type:             opencl.Accelerator,
		ComputeUnits:     1,
		GlobalMemBytes:   b.DDRBytes,
		LocalMemBytes:    b.LocalBytes,
		MaxWorkGroupSize: 2048,
	}
}

// OpenCLInfo converts the GPU to a runtime device descriptor.
func (g GPUSpec) OpenCLInfo() opencl.DeviceInfo {
	return opencl.DeviceInfo{
		Name:             g.Name,
		Vendor:           "NVIDIA",
		Type:             opencl.GPU,
		ComputeUnits:     g.ComputeUnits,
		GlobalMemBytes:   g.MemBytes,
		LocalMemBytes:    g.LocalBytesPerCU,
		MaxWorkGroupSize: 1024,
	}
}

// OpenCLInfo converts the CPU to a runtime device descriptor.
func (c CPUSpec) OpenCLInfo() opencl.DeviceInfo {
	return opencl.DeviceInfo{
		Name:             c.Name,
		Vendor:           "Intel",
		Type:             opencl.CPU,
		ComputeUnits:     c.Cores,
		GlobalMemBytes:   16 << 30,
		LocalMemBytes:    32 << 10,
		MaxWorkGroupSize: 8192,
	}
}

// PeakDPFlops returns the GPU's peak double-precision throughput in
// flops/s (fused multiply-add counted as two).
func (g GPUSpec) PeakDPFlops() float64 {
	return float64(g.ComputeUnits*g.CoresPerCU/g.DPRatio) * g.ClockHz * 2
}

// PeakSPFlops returns the GPU's peak single-precision throughput.
func (g GPUSpec) PeakSPFlops() float64 {
	return float64(g.ComputeUnits*g.CoresPerCU) * g.ClockHz * 2
}
