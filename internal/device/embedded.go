package device

// EmbeddedSpec describes the low-power OpenCL targets the paper's future
// work points at ([16] TI KeyStone multicore DSPs, [17] ARM Mali OpenCL):
// peak arithmetic throughput, power, and a sustained-efficiency factor
// for the barrier-synchronised binomial kernel (set conservatively to the
// GPU's measured double-precision efficiency, since no published binomial
// figures exist for these parts).
type EmbeddedSpec struct {
	Name        string
	PeakDPFlops float64
	PeakSPFlops float64
	TDPWatts    float64
	Efficiency  float64
}

// TIKeystone returns a TI TMS320C6678 KeyStone descriptor: eight C66x
// cores at 1.25 GHz, 4 DP flops/cycle/core (16 SP), ~10 W typical.
func TIKeystone() EmbeddedSpec {
	return EmbeddedSpec{
		Name:        "TI KeyStone C6678",
		PeakDPFlops: 8 * 1.25e9 * 4,
		PeakSPFlops: 8 * 1.25e9 * 16,
		TDPWatts:    10,
		Efficiency:  0.119,
	}
}

// ARMMali returns an ARM Mali-T604 descriptor: four shader cores, ~68
// SP GFLOPS, DP at a quarter rate, ~4 W.
func ARMMali() EmbeddedSpec {
	return EmbeddedSpec{
		Name:        "ARM Mali-T604",
		PeakDPFlops: 17e9,
		PeakSPFlops: 68e9,
		TDPWatts:    4,
		Efficiency:  0.119,
	}
}
