package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestULP64Adjacent(t *testing.T) {
	x := 1.0
	y := math.Nextafter(x, 2)
	if got := ULP64(x, y); got != 1 {
		t.Errorf("ULP64(1, next(1)) = %d, want 1", got)
	}
	if got := ULP64(x, x); got != 0 {
		t.Errorf("ULP64(x, x) = %d, want 0", got)
	}
}

func TestULP64AcrossZero(t *testing.T) {
	a := math.Nextafter(0, -1)
	b := math.Nextafter(0, 1)
	if got := ULP64(a, b); got != 2 {
		t.Errorf("ULP64(-denorm, +denorm) = %d, want 2", got)
	}
}

func TestULP64NaN(t *testing.T) {
	if got := ULP64(math.NaN(), 1); got != math.MaxInt64 {
		t.Errorf("ULP64(NaN, 1) = %d, want MaxInt64", got)
	}
}

func TestULP64Symmetric(t *testing.T) {
	f := func(a, b float64) bool {
		if math.IsNaN(a) || math.IsNaN(b) {
			return true
		}
		return ULP64(a, b) == ULP64(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRoundTo32(t *testing.T) {
	x := 0.1
	got := RoundTo32(x)
	if got == x {
		t.Error("RoundTo32(0.1) should differ from the double value")
	}
	if float32(got) != float32(x) {
		t.Error("RoundTo32 must be exactly the float32 rounding")
	}
}

func TestTruncateMantissaExactness(t *testing.T) {
	// 1.5 has a single mantissa bit: any precision >= 1 keeps it exact.
	for bits := uint(1); bits <= 52; bits++ {
		if got := TruncateMantissa(1.5, bits); got != 1.5 {
			t.Fatalf("TruncateMantissa(1.5, %d) = %v", bits, got)
		}
	}
}

func TestTruncateMantissaReducesPrecision(t *testing.T) {
	x := math.Pi
	prev := math.Inf(1)
	for _, bits := range []uint{8, 16, 24, 32, 52} {
		got := TruncateMantissa(x, bits)
		err := math.Abs(got - x)
		if err > prev {
			t.Errorf("error grew when adding precision: bits=%d err=%g prev=%g", bits, err, prev)
		}
		// Rounding error must be bounded by half an ulp at that precision.
		bound := math.Ldexp(1, -int(bits)) * x
		if err > bound {
			t.Errorf("bits=%d: |err|=%g exceeds bound %g", bits, err, bound)
		}
		prev = err
	}
	if got := TruncateMantissa(x, 52); got != x {
		t.Errorf("52-bit truncation must be identity, got %v", got)
	}
}

func TestTruncateMantissaSpecials(t *testing.T) {
	if got := TruncateMantissa(0, 8); got != 0 {
		t.Errorf("TruncateMantissa(0) = %v", got)
	}
	if got := TruncateMantissa(math.Inf(1), 8); !math.IsInf(got, 1) {
		t.Errorf("TruncateMantissa(+Inf) = %v", got)
	}
	if got := TruncateMantissa(math.NaN(), 8); !math.IsNaN(got) {
		t.Errorf("TruncateMantissa(NaN) = %v", got)
	}
	// Negative values round like positives (sign-magnitude mantissa).
	if got, want := TruncateMantissa(-math.Pi, 10), -TruncateMantissa(math.Pi, 10); got != want {
		t.Errorf("negative truncation asymmetric: %v vs %v", got, want)
	}
}

func TestTruncateMantissaCarry(t *testing.T) {
	// A value just below 2.0 must round up across the exponent boundary.
	x := math.Nextafter(2, 0)
	if got := TruncateMantissa(x, 4); got != 2.0 {
		t.Errorf("TruncateMantissa(just-below-2, 4) = %v, want 2", got)
	}
}

func TestClamp(t *testing.T) {
	if got := Clamp(5, 0, 1); got != 1 {
		t.Errorf("Clamp(5,0,1) = %v", got)
	}
	if got := Clamp(-5, 0, 1); got != 0 {
		t.Errorf("Clamp(-5,0,1) = %v", got)
	}
	if got := Clamp(0.5, 0, 1); got != 0.5 {
		t.Errorf("Clamp(0.5,0,1) = %v", got)
	}
}

func TestAlmostEqual(t *testing.T) {
	if !AlmostEqual(1.0, 1.0+1e-13, 0, 1e-12) {
		t.Error("relative tolerance should accept")
	}
	if AlmostEqual(1.0, 1.1, 1e-3, 1e-3) {
		t.Error("should reject 10% difference at 0.1% tolerance")
	}
	if !AlmostEqual(1e-20, 0, 1e-12, 0) {
		t.Error("absolute tolerance should accept near-zero")
	}
}
