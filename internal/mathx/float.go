package mathx

import "math"

// ULP64 returns the distance in units-in-the-last-place between two
// float64 values, saturating at math.MaxInt64. It treats values of
// opposite sign as separated by their combined distance from zero, which
// is the conventional monotone ULP metric.
func ULP64(a, b float64) int64 {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.MaxInt64
	}
	ia := orderedBits64(a)
	ib := orderedBits64(b)
	d := ia - ib
	if d < 0 {
		d = -d
	}
	return d
}

// orderedBits64 maps a float64 onto a monotone int64 scale so that ULP
// distance is a plain subtraction.
func orderedBits64(f float64) int64 {
	b := int64(math.Float64bits(f))
	if b < 0 {
		b = math.MinInt64 - b
	}
	return b
}

// RoundTo32 rounds a float64 to the nearest float32 and widens it back.
// The float32 pricing pipelines use it to model single-precision
// arithmetic at every operation.
func RoundTo32(x float64) float64 {
	return float64(float32(x))
}

// TruncateMantissa rounds x to a float64 with only `bits` explicit
// mantissa bits (1 <= bits <= 52), emulating a reduced-precision hardware
// datapath. The rounding is round-to-nearest-even on the retained bits.
// Subnormal inputs are returned unchanged (they have no implicit leading
// one, so per-bit truncation is ill-defined; hardware cores treat them
// out of band anyway).
func TruncateMantissa(x float64, bits uint) float64 {
	if bits >= 52 {
		return x
	}
	if bits < 1 {
		bits = 1
	}
	if x == 0 || math.IsNaN(x) || math.IsInf(x, 0) || math.Abs(x) < 0x1p-1022 {
		return x
	}
	drop := 52 - bits
	u := math.Float64bits(x)
	mask := uint64(1)<<drop - 1
	frac := u & mask
	u &^= mask
	half := uint64(1) << (drop - 1)
	if frac > half || (frac == half && u&(1<<drop) != 0) {
		u += 1 << drop // may carry into the exponent, which is correct rounding
	}
	return math.Float64frombits(u)
}

// Clamp returns x limited to the closed interval [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	switch {
	case x < lo:
		return lo
	case x > hi:
		return hi
	default:
		return x
	}
}

// AlmostEqual reports whether a and b agree to within absolute tolerance
// absTol or relative tolerance relTol, whichever is looser.
func AlmostEqual(a, b, absTol, relTol float64) bool {
	d := math.Abs(a - b)
	if d <= absTol {
		return true
	}
	m := math.Max(math.Abs(a), math.Abs(b))
	return d <= relTol*m
}
