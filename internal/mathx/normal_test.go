package mathx

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNormPDFKnownValues(t *testing.T) {
	cases := []struct {
		x, want float64
	}{
		{0, 0.39894228040143268},
		{1, 0.24197072451914337},
		{-1, 0.24197072451914337},
		{2, 0.053990966513188063},
		{5, 1.4867195147342979e-06},
	}
	for _, c := range cases {
		if got := NormPDF(c.x); !AlmostEqual(got, c.want, 0, 1e-14) {
			t.Errorf("NormPDF(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestNormCDFKnownValues(t *testing.T) {
	cases := []struct {
		x, want float64
	}{
		{0, 0.5},
		{1, 0.84134474606854293},
		{-1, 0.15865525393145707},
		{1.959963984540054, 0.975},
		{-6, 9.8658764503770093e-10},
	}
	for _, c := range cases {
		if got := NormCDF(c.x); !AlmostEqual(got, c.want, 1e-300, 1e-12) {
			t.Errorf("NormCDF(%v) = %v, want %v", c.x, got, c.want)
		}
	}
}

func TestNormCDFComplementSymmetry(t *testing.T) {
	for _, x := range []float64{-8, -3, -0.5, 0, 0.5, 3, 8} {
		if got, want := NormCDFComplement(x), NormCDF(-x); !AlmostEqual(got, want, 1e-300, 1e-13) {
			t.Errorf("NormCDFComplement(%v) = %v, want NormCDF(-x) = %v", x, got, want)
		}
	}
}

func TestNormCDFMonotone(t *testing.T) {
	f := func(a, b float64) bool {
		a = math.Mod(a, 20)
		b = math.Mod(b, 20)
		if a > b {
			a, b = b, a
		}
		return NormCDF(a) <= NormCDF(b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNormInvCDFRoundTrip(t *testing.T) {
	for p := 1e-12; p < 1; p += 0.000937 {
		x := NormInvCDF(p)
		back := NormCDF(x)
		if !AlmostEqual(back, p, 1e-14, 1e-10) {
			t.Fatalf("round trip failed: p=%v x=%v back=%v", p, x, back)
		}
	}
}

func TestNormInvCDFTails(t *testing.T) {
	for _, p := range []float64{1e-300, 1e-100, 1e-16, 1 - 1e-16} {
		x := NormInvCDF(p)
		if math.IsNaN(x) || math.IsInf(x, 0) {
			t.Fatalf("NormInvCDF(%g) = %v", p, x)
		}
		if back := NormCDF(x); !AlmostEqual(back, p, 1e-305, 1e-6) {
			t.Errorf("tail round trip: p=%g x=%v back=%g", p, x, back)
		}
	}
}

func TestNormInvCDFEdgeCases(t *testing.T) {
	if !math.IsInf(NormInvCDF(0), -1) {
		t.Error("NormInvCDF(0) should be -Inf")
	}
	if !math.IsInf(NormInvCDF(1), 1) {
		t.Error("NormInvCDF(1) should be +Inf")
	}
	for _, p := range []float64{-0.1, 1.1, math.NaN()} {
		if !math.IsNaN(NormInvCDF(p)) {
			t.Errorf("NormInvCDF(%v) should be NaN", p)
		}
	}
	if got := NormInvCDF(0.5); math.Abs(got) > 1e-15 {
		t.Errorf("NormInvCDF(0.5) = %v, want 0", got)
	}
}

func TestNormInvCDFSymmetry(t *testing.T) {
	f := func(raw float64) bool {
		p := math.Abs(math.Mod(raw, 0.499))
		if p == 0 {
			p = 0.1
		}
		lo := NormInvCDF(0.5 - p)
		hi := NormInvCDF(0.5 + p)
		return AlmostEqual(lo, -hi, 1e-12, 1e-9)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
