package mathx

import (
	"math"
	"testing"
)

func FuzzTruncateMantissaInvariants(f *testing.F) {
	f.Add(math.Pi, uint(12))
	f.Add(-1.5e300, uint(1))
	f.Add(4.9e-324, uint(52))
	f.Add(0.0, uint(8))
	f.Fuzz(func(t *testing.T, x float64, bits uint) {
		bits = bits%52 + 1
		got := TruncateMantissa(x, bits)
		switch {
		case math.IsNaN(x):
			if !math.IsNaN(got) {
				t.Fatalf("NaN must stay NaN, got %v", got)
			}
			return
		case math.IsInf(x, 0):
			if got != x {
				t.Fatalf("Inf must stay Inf, got %v", got)
			}
			return
		}
		// Sign preserved; relative error bounded by one ulp at the
		// retained precision (carry across the exponent is still within
		// this bound).
		if x != 0 && math.Signbit(got) != math.Signbit(x) && got != 0 {
			t.Fatalf("sign flipped: %v -> %v", x, got)
		}
		if x != 0 && !math.IsInf(got, 0) {
			rel := math.Abs(got-x) / math.Abs(x)
			if rel > math.Ldexp(1, -int(bits)) {
				t.Fatalf("TruncateMantissa(%v, %d) = %v: rel err %g too large", x, bits, got, rel)
			}
		}
		// Idempotent.
		if again := TruncateMantissa(got, bits); again != got && !math.IsInf(got, 0) {
			t.Fatalf("not idempotent: %v -> %v -> %v", x, got, again)
		}
	})
}

func FuzzNormCDFInvariants(f *testing.F) {
	f.Add(0.0)
	f.Add(5.0)
	f.Add(-37.5)
	f.Add(1e308)
	f.Fuzz(func(t *testing.T, x float64) {
		if math.IsNaN(x) {
			return
		}
		p := NormCDF(x)
		if p < 0 || p > 1 {
			t.Fatalf("NormCDF(%v) = %v out of [0,1]", x, p)
		}
		q := NormCDFComplement(x)
		if s := p + q; math.Abs(s-1) > 1e-12 {
			t.Fatalf("CDF + complement = %v at x=%v", s, x)
		}
	})
}

func FuzzCompareSeriesNeverPanics(f *testing.F) {
	f.Add(1.0, 2.0, 3.0, 4.0)
	f.Add(0.0, 0.0, math.Inf(1), math.Inf(-1))
	f.Fuzz(func(t *testing.T, a, b, c, d float64) {
		st, err := CompareSeries([]float64{a, b}, []float64{c, d})
		if err != nil {
			t.Fatalf("two-element compare errored: %v", err)
		}
		if st.N != 2 {
			t.Fatalf("N = %d", st.N)
		}
	})
}
