package mathx

import "math"

// KahanSum accumulates float64 values with Kahan–Neumaier compensation,
// bounding the rounding error independently of the number of terms. The
// zero value is ready to use.
type KahanSum struct {
	sum float64
	c   float64
}

// Add accumulates v into the sum.
func (k *KahanSum) Add(v float64) {
	t := k.sum + v
	if math.Abs(k.sum) >= math.Abs(v) {
		k.c += (k.sum - t) + v
	} else {
		k.c += (v - t) + k.sum
	}
	k.sum = t
}

// Sum returns the compensated total.
func (k *KahanSum) Sum() float64 { return k.sum + k.c }

// Reset clears the accumulator to zero.
func (k *KahanSum) Reset() { k.sum, k.c = 0, 0 }

// SumSlice returns the compensated sum of xs.
func SumSlice(xs []float64) float64 {
	var k KahanSum
	for _, x := range xs {
		k.Add(x)
	}
	return k.Sum()
}

// Mean returns the compensated arithmetic mean of xs, or 0 for an empty
// slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	return SumSlice(xs) / float64(len(xs))
}
