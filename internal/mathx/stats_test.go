package mathx

import (
	"math"
	"strings"
	"testing"
)

func TestCompareSeriesBasics(t *testing.T) {
	got := []float64{1.0, 2.0, 3.0}
	want := []float64{1.1, 1.9, 3.0}
	st, err := CompareSeries(got, want)
	if err != nil {
		t.Fatal(err)
	}
	if st.N != 3 {
		t.Errorf("N = %d, want 3", st.N)
	}
	wantRMSE := math.Sqrt((0.01 + 0.01 + 0) / 3)
	if !AlmostEqual(st.RMSE, wantRMSE, 1e-12, 1e-12) {
		t.Errorf("RMSE = %v, want %v", st.RMSE, wantRMSE)
	}
	if !AlmostEqual(st.MaxAbs, 0.1, 1e-12, 1e-12) {
		t.Errorf("MaxAbs = %v, want 0.1", st.MaxAbs)
	}
	if !AlmostEqual(st.Bias, (-0.1+0.1+0)/3, 1e-12, 1e-9) {
		t.Errorf("Bias = %v, want ~0", st.Bias)
	}
}

func TestCompareSeriesErrors(t *testing.T) {
	if _, err := CompareSeries([]float64{1}, []float64{1, 2}); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := CompareSeries(nil, nil); err == nil {
		t.Error("empty series should error")
	}
}

func TestCompareSeriesIdentical(t *testing.T) {
	xs := []float64{1, -2, 3.5, 0}
	st, err := CompareSeries(xs, xs)
	if err != nil {
		t.Fatal(err)
	}
	if st.RMSE != 0 || st.MaxAbs != 0 || st.MaxRel != 0 || st.Bias != 0 {
		t.Errorf("identical series should have zero errors, got %+v", st)
	}
}

func TestCompareSeriesRelSkipsZeroReference(t *testing.T) {
	st, err := CompareSeries([]float64{0.5, 2}, []float64{0, 2})
	if err != nil {
		t.Fatal(err)
	}
	if st.MaxRel != 0 {
		t.Errorf("MaxRel = %v, want 0 (zero reference excluded)", st.MaxRel)
	}
}

func TestRMSEPanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("RMSE should panic on length mismatch")
		}
	}()
	RMSE([]float64{1}, []float64{1, 2})
}

func TestErrorStatsString(t *testing.T) {
	st := ErrorStats{N: 2, RMSE: 1e-3}
	s := st.String()
	if !strings.Contains(s, "n=2") || !strings.Contains(s, "1.000e-03") {
		t.Errorf("unexpected String(): %q", s)
	}
}

func TestOrderOfMagnitude(t *testing.T) {
	cases := []struct {
		x    float64
		want int
	}{
		{1e-3, -3}, {2.4e-3, -3}, {9.99e-3, -3},
		{1, 0}, {10, 1}, {0.099, -2}, {-5e4, 4},
	}
	for _, c := range cases {
		if got := OrderOfMagnitude(c.x); got != c.want {
			t.Errorf("OrderOfMagnitude(%v) = %d, want %d", c.x, got, c.want)
		}
	}
	if got := OrderOfMagnitude(0); got != math.MinInt {
		t.Errorf("OrderOfMagnitude(0) = %d, want MinInt", got)
	}
}
