package mathx

import (
	"math"
	"testing"
)

func TestKahanSumCancellation(t *testing.T) {
	// Classic case where naive summation loses the small terms entirely.
	var k KahanSum
	k.Add(1.0)
	for i := 0; i < 1e6; i++ {
		k.Add(1e-16)
	}
	want := 1.0 + 1e-10
	if got := k.Sum(); !AlmostEqual(got, want, 1e-14, 1e-12) {
		t.Errorf("compensated sum = %.17g, want %.17g", got, want)
	}
}

func TestKahanSumNeumaierOrder(t *testing.T) {
	// Neumaier's variant must survive a large term arriving after small
	// ones; plain Kahan fails this pattern.
	var k KahanSum
	k.Add(1.0)
	k.Add(1e100)
	k.Add(1.0)
	k.Add(-1e100)
	if got := k.Sum(); got != 2.0 {
		t.Errorf("sum = %v, want 2.0", got)
	}
}

func TestKahanSumReset(t *testing.T) {
	var k KahanSum
	k.Add(42)
	k.Reset()
	if got := k.Sum(); got != 0 {
		t.Errorf("after Reset, Sum = %v, want 0", got)
	}
}

func TestSumSliceMatchesExact(t *testing.T) {
	xs := make([]float64, 10001)
	for i := range xs {
		xs[i] = 0.1
	}
	if got, want := SumSlice(xs), 1000.1; !AlmostEqual(got, want, 1e-10, 1e-12) {
		t.Errorf("SumSlice = %.17g, want %.17g", got, want)
	}
}

func TestMean(t *testing.T) {
	if got := Mean(nil); got != 0 {
		t.Errorf("Mean(nil) = %v, want 0", got)
	}
	if got := Mean([]float64{2, 4, 6}); got != 4 {
		t.Errorf("Mean = %v, want 4", got)
	}
	if got := Mean([]float64{-1, 1}); got != 0 {
		t.Errorf("Mean = %v, want 0", got)
	}
	if got := Mean([]float64{math.Pi}); got != math.Pi {
		t.Errorf("Mean = %v, want pi", got)
	}
}
