package mathx

import (
	"fmt"
	"math"
)

// ErrorStats summarises the deviation of a vector of computed values from a
// reference vector. The paper reports a single RMSE per implementation;
// the extra fields support the accuracy-isolation experiment (E4).
type ErrorStats struct {
	N       int     // number of compared values
	RMSE    float64 // root mean square of absolute errors
	MaxAbs  float64 // worst absolute error
	MeanAbs float64 // mean absolute error
	MaxRel  float64 // worst relative error (reference != 0 entries only)
	Bias    float64 // signed mean error (computed - reference)
}

// CompareSeries computes error statistics of got against want. The slices
// must have equal, non-zero length.
func CompareSeries(got, want []float64) (ErrorStats, error) {
	if len(got) != len(want) {
		return ErrorStats{}, fmt.Errorf("mathx: series length mismatch: got %d, want %d", len(got), len(want))
	}
	if len(got) == 0 {
		return ErrorStats{}, fmt.Errorf("mathx: cannot compare empty series")
	}
	var sq, abs, bias KahanSum
	st := ErrorStats{N: len(got)}
	for i := range got {
		e := got[i] - want[i]
		ae := math.Abs(e)
		sq.Add(e * e)
		abs.Add(ae)
		bias.Add(e)
		if ae > st.MaxAbs {
			st.MaxAbs = ae
		}
		if want[i] != 0 {
			if rel := ae / math.Abs(want[i]); rel > st.MaxRel {
				st.MaxRel = rel
			}
		}
	}
	n := float64(st.N)
	st.RMSE = math.Sqrt(sq.Sum() / n)
	st.MeanAbs = abs.Sum() / n
	st.Bias = bias.Sum() / n
	return st, nil
}

// String renders the statistics in a compact single line.
func (s ErrorStats) String() string {
	return fmt.Sprintf("n=%d rmse=%.3e max=%.3e mean=%.3e maxrel=%.3e bias=%+.3e",
		s.N, s.RMSE, s.MaxAbs, s.MeanAbs, s.MaxRel, s.Bias)
}

// RMSE returns the root mean square error between got and want. It panics
// if the slices differ in length; use CompareSeries for checked comparison.
func RMSE(got, want []float64) float64 {
	st, err := CompareSeries(got, want)
	if err != nil {
		panic(err)
	}
	return st.RMSE
}

// OrderOfMagnitude returns the decimal exponent of |x| (e.g. -3 for
// 2.4e-3), or math.MinInt for x == 0. The paper quotes RMSE figures as
// orders of magnitude ("~10^-3"); this makes those comparisons explicit.
func OrderOfMagnitude(x float64) int {
	if x == 0 {
		return math.MinInt
	}
	return int(math.Floor(math.Log10(math.Abs(x))))
}
