package accel

import (
	"fmt"
	"math"
	"testing"

	"binopt/internal/lattice"
	"binopt/internal/option"
	"binopt/internal/workload"
)

// TestCrossPlatformParity is the serving-layer exactness guarantee: every
// registry entry's engine must price the paper's 2000-put volatility
// chain bit-for-bit identically to the double-precision host reference at
// the depths the experiments run (§V uses 512–2048 steps).
//
// A full 2000×2048 sweep per platform is too slow for CI on one core, so
// deeper trees subsample the chain with a fixed stride; the 512-step row
// covers every contract. Under the race detector (where the lattice is
// ~10× slower) the strides thin further but every depth still runs.
func TestCrossPlatformParity(t *testing.T) {
	chain, err := workload.Chain(workload.DefaultVolCurveSpec(7))
	if err != nil {
		t.Fatal(err)
	}
	rows := []struct {
		steps  int
		stride int // 1 = every contract in the chain
	}{
		{512, 1},
		{1024, 8},
		{2048, 40},
	}
	if raceEnabled {
		rows[0].stride, rows[1].stride, rows[2].stride = 20, 80, 200
	}
	if testing.Short() {
		rows[0].stride, rows[1].stride, rows[2].stride = 100, 400, 1000
	}
	for _, row := range rows {
		row := row
		t.Run(fmt.Sprintf("steps=%d", row.steps), func(t *testing.T) {
			subset := sample(chain, row.stride)
			ref, err := lattice.NewEngine(row.steps)
			if err != nil {
				t.Fatal(err)
			}
			want := make([]float64, len(subset))
			for i, o := range subset {
				if want[i], err = ref.Price(o); err != nil {
					t.Fatal(err)
				}
			}
			for _, p := range Platforms() {
				name := p.Describe().Name
				eng, err := p.NewEngine(row.steps)
				if err != nil {
					t.Fatalf("%s: NewEngine(%d): %v", name, row.steps, err)
				}
				got, err := eng.PriceBatch(subset, 1)
				if err != nil {
					t.Fatalf("%s: PriceBatch: %v", name, err)
				}
				mismatches := 0
				for i := range subset {
					if got[i] != want[i] {
						if mismatches < 3 {
							t.Errorf("%s: contract %d (K=%.4f σ=%.4f): %v (%#x) != reference %v (%#x)",
								name, i, subset[i].Strike, subset[i].Sigma,
								got[i], math.Float64bits(got[i]),
								want[i], math.Float64bits(want[i]))
						}
						mismatches++
					}
				}
				if mismatches > 0 {
					t.Errorf("%s: %d/%d contracts diverge from the host reference at %d steps",
						name, mismatches, len(subset), row.steps)
				}
			}
		})
	}
}

func sample(chain []option.Option, stride int) []option.Option {
	if stride <= 1 {
		return chain
	}
	out := make([]option.Option, 0, len(chain)/stride+1)
	for i := 0; i < len(chain); i += stride {
		out = append(out, chain[i])
	}
	return out
}
