package accel

import (
	"errors"
	"math"
	"testing"

	"binopt/internal/lattice"
	"binopt/internal/opencl"
	"binopt/internal/option"
)

// TestEngineMatchesReference: every platform's engine must price
// bit-for-bit like the host reference at its serving depth.
func TestEngineMatchesReference(t *testing.T) {
	const steps = 64
	ref, err := lattice.NewEngine(steps)
	if err != nil {
		t.Fatal(err)
	}
	o := option.Option{Right: option.Put, Style: option.American,
		Spot: 100, Strike: 105, Rate: 0.03, Sigma: 0.2, T: 0.5}
	want, err := ref.Price(o)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range Platforms() {
		name := p.Describe().Name
		eng, err := p.NewEngine(steps)
		if err != nil {
			t.Fatalf("%s: NewEngine: %v", name, err)
		}
		got, err := eng.Price(o)
		if err != nil {
			t.Fatalf("%s: Price: %v", name, err)
		}
		if got != want {
			t.Errorf("%s: price %v (%#x) != reference %v (%#x)",
				name, got, math.Float64bits(got), want, math.Float64bits(want))
		}
		if eng.Steps() != steps {
			t.Errorf("%s: Steps = %d", name, eng.Steps())
		}
	}
}

// TestEngineAccounting: counters and modelled energy accumulate with
// priced options, and the kernel-backed engines carry real substrate
// activity from the probe.
func TestEngineAccounting(t *testing.T) {
	for _, p := range Platforms() {
		d := p.Describe()
		eng, err := p.NewEngine(32)
		if err != nil {
			t.Fatalf("%s: %v", d.Name, err)
		}
		if eng.PricedOptions() != 0 || eng.Counters() != (opencl.Counters{}) {
			t.Errorf("%s: fresh engine already accounted work", d.Name)
		}
		batch := probeChain()
		if _, err := eng.PriceBatch(batch, 1); err != nil {
			t.Fatalf("%s: PriceBatch: %v", d.Name, err)
		}
		if got := eng.PricedOptions(); got != int64(len(batch)) {
			t.Errorf("%s: priced %d, want %d", d.Name, got, len(batch))
		}
		c := eng.Counters()
		if c.Flops <= 0 {
			t.Errorf("%s: no modelled flops: %v", d.Name, c)
		}
		if d.Kind != "cpu" {
			if c.Barriers <= 0 || c.LocalReads <= 0 || c.HostBytes() <= 0 {
				t.Errorf("%s: kernel engine missing substrate activity: %v", d.Name, c)
			}
			if eng.ProbeSteps() <= 0 {
				t.Errorf("%s: no probe recorded", d.Name)
			}
		}
		if eng.ModelledJoulesPerOption() <= 0 {
			t.Errorf("%s: no modelled energy", d.Name)
		}
		wantJ := float64(len(batch)) * eng.ModelledJoulesPerOption()
		if got := eng.ModelledJoules(); math.Abs(got-wantJ) > 1e-12*wantJ {
			t.Errorf("%s: ModelledJoules = %g, want %g", d.Name, got, wantJ)
		}
	}
}

// TestQuadBatchAccounting: a batch routes through quad-interleaved
// sweeps, so its modelled activity must book one shared-sweep group per
// four options plus scalar remainder — control costs paid once per
// group, data costs per lane.
func TestQuadBatchAccounting(t *testing.T) {
	for _, p := range Platforms() {
		d := p.Describe()
		eng, err := p.NewEngine(32)
		if err != nil {
			t.Fatalf("%s: %v", d.Name, err)
		}
		chain := probeChain()
		batch := make([]option.Option, 5) // one quad group + one scalar
		for i := range batch {
			batch[i] = chain[i%len(chain)]
			batch[i].Strike += float64(i)
		}
		if _, err := eng.PriceBatch(batch, 1); err != nil {
			t.Fatalf("%s: PriceBatch: %v", d.Name, err)
		}
		var want opencl.Counters
		want.Add(eng.perQuad)
		want.Add(eng.perOption)
		if got := eng.Counters(); got != want {
			t.Errorf("%s: batch of 5 booked %+v, want quad group + scalar %+v", d.Name, got, want)
		}
		// Data-side activity is per lane: 4 in the group + 1 scalar.
		if got := eng.Counters().Flops; got != 5*eng.perOption.Flops {
			t.Errorf("%s: batch flops %d, want 5x per-option %d", d.Name, got, 5*eng.perOption.Flops)
		}
		// Control-side activity is shared across the group's four lanes:
		// the group crosses each barrier once, so 5 options cost 2
		// options' worth of barriers, not 5.
		if d.Kind != "cpu" {
			if per := eng.perOption.Barriers; per <= 0 || eng.Counters().Barriers != 2*per {
				t.Errorf("%s: batch barriers %d, want 2x per-option %d",
					d.Name, eng.Counters().Barriers, per)
			}
		}
	}
}

// TestEngineCountersScaleWithDepth: the modelled per-option arithmetic
// must grow roughly quadratically with the serving depth even though the
// probe depth is capped.
func TestEngineCountersScaleWithDepth(t *testing.T) {
	fpga, err := Get("fpga-ivb")
	if err != nil {
		t.Fatal(err)
	}
	flopsAt := func(steps int) int64 {
		eng, err := fpga.NewEngine(steps)
		if err != nil {
			t.Fatalf("NewEngine(%d): %v", steps, err)
		}
		if _, err := eng.Price(probeChain()[0]); err != nil {
			t.Fatal(err)
		}
		return eng.Counters().Flops
	}
	f512, f1024 := flopsAt(512), flopsAt(1024)
	ratio := float64(f1024) / float64(f512)
	// nodes(1024)/nodes(512) = 1024*1025/(512*513) ≈ 3.996
	if ratio < 3.5 || ratio > 4.5 {
		t.Errorf("flops ratio 1024/512 = %.2f (%d vs %d), want ~4", ratio, f1024, f512)
	}
}

// TestProbeDepthRespectsDeviceLimits: the probe must fit the device's
// work-group ceiling and local memory.
func TestProbeDepthRespectsDeviceLimits(t *testing.T) {
	cases := []struct {
		info  opencl.DeviceInfo
		steps int
		want  int
	}{
		{opencl.DeviceInfo{MaxWorkGroupSize: 2048, LocalMemBytes: 1 << 20}, 64, 64},
		{opencl.DeviceInfo{MaxWorkGroupSize: 2048, LocalMemBytes: 1 << 20}, 4096, maxProbeSteps},
		{opencl.DeviceInfo{MaxWorkGroupSize: 128, LocalMemBytes: 1 << 20}, 4096, 127},
		{opencl.DeviceInfo{MaxWorkGroupSize: 2048, LocalMemBytes: 512}, 4096, 63},
		{opencl.DeviceInfo{}, 100, 100},
	}
	for _, c := range cases {
		if got := probeDepth(c.info, c.steps); got != c.want {
			t.Errorf("probeDepth(%+v, %d) = %d, want %d", c.info, c.steps, got, c.want)
		}
	}
}

// TestEngineFaultHook: an armed hook fails pricing with its error and
// accounts nothing — the injector's substrate outage must be invisible
// in the counters; disarming restores normal service.
func TestEngineFaultHook(t *testing.T) {
	p, err := Get("cpu-ref")
	if err != nil {
		t.Fatal(err)
	}
	eng, err := p.NewEngine(32)
	if err != nil {
		t.Fatal(err)
	}
	o := option.Option{Right: option.Put, Style: option.American,
		Spot: 100, Strike: 105, Rate: 0.03, Sigma: 0.2, T: 0.5}

	boom := errors.New("boom")
	calls := 0
	eng.SetFaultHook(func() error {
		calls++
		if calls%2 == 1 {
			return boom
		}
		return nil
	})

	if _, err := eng.Price(o); !errors.Is(err, boom) {
		t.Fatalf("faulted Price = %v, want the hook's error", err)
	}
	if got := eng.PricedOptions(); got != 0 {
		t.Fatalf("failed pricing accounted %d options, want 0", got)
	}
	if c := eng.Counters(); c.Flops != 0 {
		t.Fatalf("failed pricing accounted %d flops, want 0", c.Flops)
	}
	if _, err := eng.Price(o); err != nil {
		t.Fatalf("hook pass-through still failed: %v", err)
	}
	if _, _, err := eng.PriceTraced(o); !errors.Is(err, boom) {
		t.Fatalf("faulted PriceTraced = %v, want the hook's error", err)
	}
	if _, err := eng.PriceBatch([]option.Option{o, o}, 1); err != nil {
		t.Fatalf("batch after even call count failed: %v", err)
	}
	if got := eng.PricedOptions(); got != 3 {
		t.Fatalf("priced %d options, want 3 (1 single + 2 batch)", got)
	}

	eng.SetFaultHook(nil)
	if _, err := eng.Price(o); err != nil {
		t.Fatalf("disarmed engine failed: %v", err)
	}
}
