package accel

import (
	"binopt/internal/opencl"
	"binopt/internal/perf"
)

// DeviceCommand is one modelled command on a platform's virtual device
// clock, carrying the four profiling timestamps of
// CL_PROFILING_COMMAND_{QUEUED,SUBMIT,START,END} as seconds since the
// engine was built. The host enqueues an option's whole command batch up
// front (the in-order queue of §IV), so every command of one option
// shares a Queued/Submit instant while Start/End tile the interval
// back to back.
type DeviceCommand struct {
	Name                       string
	Queued, Submit, Start, End float64
}

// Seconds is the command's modelled device execution time.
func (c DeviceCommand) Seconds() float64 { return c.End - c.Start }

// DeviceTrace is the modelled device timeline of pricing one option:
// the interval the option occupied on the device clock and its
// per-command decomposition (transfer in, kernel, readback).
type DeviceTrace struct {
	// Backend names the platform whose clock this is.
	Backend string
	// Start and End bracket the option on the device clock, seconds.
	Start, End float64
	Commands   []DeviceCommand
}

// devCommandPlan is the per-option command schedule, precomputed at
// engine construction: command names and their fractions of the
// modelled per-option device time.
type devCommandPlan struct {
	names []string
	frac  []float64
}

// devPlanWeights are the synthetic unit costs that apportion the
// estimate's per-option seconds across the option's commands. Only the
// ratios matter — the total is pinned to 1/OptionsPerSec — and they
// encode the paper's qualitative ordering: a PCIe byte is far more
// expensive than a flop, local memory is near-free, barriers cost a
// few cycles of convergence.
const (
	devCostPCIeByte   = 32.0
	devCostGlobalByte = 2.0
	devCostLocalByte  = 0.25
	devCostFlop       = 1.0
	devCostBarrier    = 4.0
)

// newDevCommandPlan derives the command schedule from the engine's
// modelled per-option counters. Engines with host transfers (the
// kernel-substrate platforms) decompose into the three commands the IV.B
// host program issues; the pure-host reference collapses to one compute
// command.
func newDevCommandPlan(c opencl.Counters) devCommandPlan {
	kernelRaw := float64(c.Flops)*devCostFlop +
		float64(c.GlobalReads+c.GlobalWrites)*devCostGlobalByte +
		float64(c.LocalReads+c.LocalWrites)*devCostLocalByte +
		float64(c.Barriers)*devCostBarrier
	if c.HostTransfers == 0 {
		return devCommandPlan{names: []string{"compute"}, frac: []float64{1}}
	}
	inRaw := float64(c.HostWrites) * devCostPCIeByte
	outRaw := float64(c.HostReads) * devCostPCIeByte
	total := inRaw + kernelRaw + outRaw
	if total <= 0 {
		return devCommandPlan{names: []string{"compute"}, frac: []float64{1}}
	}
	return devCommandPlan{
		names: []string{"write params+leaves", "ndrange IV.B", "read result"},
		frac:  []float64{inRaw / total, kernelRaw / total, outRaw / total},
	}
}

// trace lays the plan onto the device clock starting at start seconds,
// spending total seconds.
func (p devCommandPlan) trace(backend string, start, total float64) DeviceTrace {
	dt := DeviceTrace{Backend: backend, Start: start, End: start + total,
		Commands: make([]DeviceCommand, len(p.names))}
	at := start
	for i, name := range p.names {
		d := total * p.frac[i]
		dt.Commands[i] = DeviceCommand{Name: name, Queued: start, Submit: start, Start: at, End: at + d}
		at += d
	}
	// Float drift never leaves a gap at the option boundary.
	if n := len(dt.Commands); n > 0 {
		dt.Commands[n-1].End = dt.End
	}
	return dt
}

// secondsPerOption is the modelled device time of one option under the
// estimate (zero when the estimate has no throughput).
func secondsPerOption(est perf.Estimate) float64 {
	if est.OptionsPerSec <= 0 {
		return 0
	}
	return 1 / est.OptionsPerSec
}
