package accel

import (
	"reflect"
	"strings"
	"testing"

	"binopt/internal/device"
	"binopt/internal/hls"
)

// TestDefaultRegistryRoster pins the registry contents: the paper's
// three evaluated platforms in §V-A order, then the self-registered
// embedded target from embedded.go.
func TestDefaultRegistryRoster(t *testing.T) {
	want := []string{"fpga-ivb", "gpu-ivb", "cpu-ref", "embedded-keystone"}
	if got := Names(); !reflect.DeepEqual(got, want) {
		t.Fatalf("registry names = %v, want %v", got, want)
	}
	if got := len(Platforms()); got != len(want) {
		t.Fatalf("Platforms() returned %d entries", got)
	}
}

func TestDescriptions(t *testing.T) {
	cases := []struct {
		name, kind, label string
		kernel            Kernel
	}{
		{"fpga-ivb", "fpga", "DE4", KernelIVB},
		{"gpu-ivb", "gpu", "GTX660", KernelIVB},
		{"cpu-ref", "cpu", "Xeon X5450", KernelReference},
		{"embedded-keystone", "embedded", "KeyStone", KernelIVB},
	}
	for _, c := range cases {
		p, err := Get(c.name)
		if err != nil {
			t.Fatal(err)
		}
		d := p.Describe()
		if d.Kind != c.kind || d.Label != c.label || d.DefaultKernel != c.kernel {
			t.Errorf("%s: Describe = kind %q label %q kernel %q", c.name, d.Kind, d.Label, d.DefaultKernel)
		}
		if d.OpenCL.Name == "" || d.OpenCL.MaxWorkGroupSize <= 0 {
			t.Errorf("%s: incomplete OpenCL descriptor %+v", c.name, d.OpenCL)
		}
		set := 0
		for _, ptr := range []bool{d.Board != nil, d.GPU != nil, d.CPU != nil, d.Embedded != nil} {
			if ptr {
				set++
			}
		}
		if set != 1 {
			t.Errorf("%s: %d spec pointers set, want exactly 1", c.name, set)
		}
	}
	// The chip-level details Table I and the power-cap experiment need
	// are reachable through the registry.
	fpga, _ := Get("fpga-ivb")
	if d := fpga.Describe(); d.Board == nil || d.Board.Chip.Name != "EP4SGX530" {
		t.Errorf("fpga-ivb Board spec missing or wrong: %+v", fpga.Describe().Board)
	}
}

func TestGetUnknown(t *testing.T) {
	_, err := Get("tpu-v9")
	if err == nil || !strings.Contains(err.Error(), "unknown platform") {
		t.Fatalf("Get(unknown) = %v", err)
	}
}

func TestRegistryRejectsDuplicates(t *testing.T) {
	r := NewRegistry()
	p := NewCPU("cpu-ref", "Xeon", device.XeonX5450())
	if err := r.Register(p); err != nil {
		t.Fatal(err)
	}
	if err := r.Register(p); err == nil {
		t.Fatal("duplicate registration should fail")
	}
}

// TestEstimateMatchesDirectBuilders: the Platform.Estimate dispatch must
// produce the exact rows the direct builders do — the registry is a
// router, not a second model.
func TestEstimateMatchesDirectBuilders(t *testing.T) {
	const steps = 1024
	_, fitB := fits(t)

	fpga, _ := Get("fpga-ivb")
	viaPlatform, err := fpga.Estimate(steps, Options{})
	if err != nil {
		t.Fatal(err)
	}
	direct, err := FPGAIVB(device.DE4(), fitB, steps, false, false)
	if err != nil {
		t.Fatal(err)
	}
	if viaPlatform != direct {
		t.Errorf("fpga Estimate = %+v, direct = %+v", viaPlatform, direct)
	}

	gpu, _ := Get("gpu-ivb")
	g, err := gpu.Estimate(steps, Options{Kernel: KernelIVA, FullReadback: true})
	if err != nil {
		t.Fatal(err)
	}
	gd, _ := GPUIVA(device.GTX660(), steps, false, true)
	if g != gd {
		t.Errorf("gpu IV.A Estimate = %+v, direct = %+v", g, gd)
	}

	cpu, _ := Get("cpu-ref")
	c, err := cpu.Estimate(steps, Options{Single: true})
	if err != nil {
		t.Fatal(err)
	}
	cd, _ := CPUReference(device.XeonX5450(), steps, true)
	if c != cd {
		t.Errorf("cpu Estimate = %+v, direct = %+v", c, cd)
	}

	emb, _ := Get("embedded-keystone")
	e, err := emb.Estimate(steps, Options{})
	if err != nil {
		t.Fatal(err)
	}
	ed, _ := EmbeddedIVB(device.TIKeystone(), steps, false)
	if e != ed {
		t.Errorf("embedded Estimate = %+v, direct = %+v", e, ed)
	}
}

func TestUnsupportedKernels(t *testing.T) {
	cpu, _ := Get("cpu-ref")
	if _, err := cpu.Estimate(1024, Options{Kernel: KernelIVB}); err == nil {
		t.Error("cpu should reject kernel IV.B")
	}
	fpga, _ := Get("fpga-ivb")
	if _, err := fpga.Estimate(1024, Options{Kernel: KernelReference}); err == nil {
		t.Error("fpga should reject the reference kernel")
	}
	emb, _ := Get("embedded-keystone")
	if _, err := emb.Estimate(1024, Options{Kernel: KernelIVA}); err == nil {
		t.Error("embedded should reject kernel IV.A")
	}
}

// TestFitterInterface: only the FPGA fits; its zero-knob default is the
// paper's published configuration.
func TestFitterInterface(t *testing.T) {
	var fitters []string
	for _, p := range Platforms() {
		if _, ok := p.(Fitter); ok {
			fitters = append(fitters, p.Describe().Name)
		}
	}
	if !reflect.DeepEqual(fitters, []string{"fpga-ivb"}) {
		t.Fatalf("fitting platforms = %v, want [fpga-ivb]", fitters)
	}
	f := mustFitter(t)
	if _, err := f.Fit(0, KernelIVB, hls.Knobs{}); err == nil {
		t.Error("Fit with zero steps should fail")
	}
	if _, err := f.Fit(1024, KernelReference, hls.Knobs{}); err == nil {
		t.Error("Fit of the reference kernel should fail")
	}
}

func mustFitter(t *testing.T) Fitter {
	t.Helper()
	p, err := Get("fpga-ivb")
	if err != nil {
		t.Fatal(err)
	}
	return p.(Fitter)
}
