package accel

import (
	"fmt"

	"binopt/internal/device"
	"binopt/internal/hls"
	"binopt/internal/kernels"
	"binopt/internal/perf"
)

// fpgaPlatform adapts an FPGA board: estimates go through the HLS
// fitter, execution through kernel IV.B on the simulated runtime.
type fpgaPlatform struct {
	name  string
	label string
	board device.FPGABoard
}

// NewFPGA wraps an FPGA board as a registrable platform. The default
// registry holds NewFPGA("fpga-ivb", "DE4", device.DE4()).
func NewFPGA(name, label string, board device.FPGABoard) Fitter {
	return &fpgaPlatform{name: name, label: label, board: board}
}

func (p *fpgaPlatform) Describe() Description {
	board := p.board
	return Description{
		Name:              p.name,
		Label:             p.label,
		Device:            board.Name,
		Kind:              "fpga",
		DefaultKernel:     KernelIVB,
		OpenCL:            board.OpenCLInfo(),
		SaturationOptions: board.SaturationOptions,
		Board:             &board,
	}
}

// Fit compiles the kernel's profile for this board. A zero Knobs value
// selects the paper's published knobs for the kernel.
func (p *fpgaPlatform) Fit(steps int, kernel Kernel, knobs hls.Knobs) (hls.FitReport, error) {
	if steps < 1 {
		return hls.FitReport{}, fmt.Errorf("accel: %s: steps must be positive, got %d", p.name, steps)
	}
	var prof hls.KernelProfile
	switch kernel {
	case KernelIVA:
		prof = kernels.ProfileIVA()
		if knobs == (hls.Knobs{}) {
			knobs = kernels.PaperKnobsIVA()
		}
	case KernelIVB, "":
		prof = kernels.ProfileIVB(steps)
		if knobs == (hls.Knobs{}) {
			knobs = kernels.PaperKnobsIVB()
		}
	default:
		return hls.FitReport{}, fmt.Errorf("accel: %s: kernel %q has no HLS profile", p.name, kernel)
	}
	return hls.Fit(p.board, prof, knobs)
}

func (p *fpgaPlatform) Estimate(steps int, o Options) (perf.Estimate, error) {
	if steps < 1 {
		return perf.Estimate{}, fmt.Errorf("accel: %s: steps must be positive, got %d", p.name, steps)
	}
	k := o.Kernel
	if k == "" {
		k = KernelIVB
	}
	fit := o.Fit
	if fit == nil {
		var knobs hls.Knobs
		if o.Knobs != nil {
			knobs = *o.Knobs
		}
		rep, err := p.Fit(steps, k, knobs)
		if err != nil {
			return perf.Estimate{}, fmt.Errorf("accel: %s: fitting kernel %s: %w", p.name, k, err)
		}
		fit = &rep
	}
	switch k {
	case KernelIVB:
		return FPGAIVB(p.board, *fit, steps, o.Single, o.LeavesOnHost)
	case KernelIVA:
		return FPGAIVA(p.board, *fit, steps, o.Single, o.FullReadback)
	default:
		return perf.Estimate{}, fmt.Errorf("accel: %s: unsupported kernel %q", p.name, k)
	}
}

func (p *fpgaPlatform) NewEngine(steps int) (*Engine, error) {
	est, err := p.Estimate(steps, Options{})
	if err != nil {
		return nil, err
	}
	return newKernelEngine(p.Describe(), est, steps)
}
