package accel

import (
	"fmt"

	"binopt/internal/device"
	"binopt/internal/perf"
)

// cpuPlatform adapts the software reference: estimates come from the
// analytic CPU model, execution is the host lattice itself.
type cpuPlatform struct {
	name  string
	label string
	spec  device.CPUSpec
}

// NewCPU wraps a CPU spec as a registrable platform. The default
// registry holds NewCPU("cpu-ref", "Xeon X5450", device.XeonX5450()).
func NewCPU(name, label string, spec device.CPUSpec) Platform {
	return &cpuPlatform{name: name, label: label, spec: spec}
}

func (p *cpuPlatform) Describe() Description {
	spec := p.spec
	return Description{
		Name:          p.name,
		Label:         p.label,
		Device:        spec.Name,
		Kind:          "cpu",
		DefaultKernel: KernelReference,
		OpenCL:        spec.OpenCLInfo(),
		CPU:           &spec,
	}
}

func (p *cpuPlatform) Estimate(steps int, o Options) (perf.Estimate, error) {
	if steps < 1 {
		return perf.Estimate{}, fmt.Errorf("accel: %s: steps must be positive, got %d", p.name, steps)
	}
	switch o.Kernel {
	case KernelReference, "":
		return CPUReference(p.spec, steps, o.Single)
	default:
		return perf.Estimate{}, fmt.Errorf("accel: %s: unsupported kernel %q (the reference is software-only)", p.name, o.Kernel)
	}
}

func (p *cpuPlatform) NewEngine(steps int) (*Engine, error) {
	est, err := p.Estimate(steps, Options{})
	if err != nil {
		return nil, err
	}
	return newHostEngine(p.Describe(), est, steps)
}
