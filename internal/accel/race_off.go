//go:build !race

package accel

// raceEnabled reports whether the race detector is compiled in; the
// cross-platform parity test thins its deep-tree chains under race,
// where the instrumented lattice is an order of magnitude slower.
const raceEnabled = false
