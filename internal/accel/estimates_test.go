package accel

import (
	"math"
	"testing"

	"binopt/internal/device"
	"binopt/internal/hls"
	"binopt/internal/perf"
)

func fits(t *testing.T) (hls.FitReport, hls.FitReport) {
	t.Helper()
	fpga, err := Get("fpga-ivb")
	if err != nil {
		t.Fatal(err)
	}
	f := fpga.(Fitter)
	fitA, err := f.Fit(1024, KernelIVA, hls.Knobs{})
	if err != nil {
		t.Fatal(err)
	}
	fitB, err := f.Fit(1024, KernelIVB, hls.Knobs{})
	if err != nil {
		t.Fatal(err)
	}
	return fitA, fitB
}

func within(t *testing.T, name string, got, want, relTol float64) {
	t.Helper()
	rel := math.Abs(got-want) / math.Abs(want)
	if rel > relTol {
		t.Errorf("%s = %.4g, paper reports %.4g (off %.0f%%)", name, got, want, 100*rel)
	} else {
		t.Logf("%s = %.4g vs paper %.4g (%.1f%%)", name, got, want, 100*rel)
	}
}

// TestTable2FPGA reproduces the FPGA columns of Table II.
func TestTable2FPGA(t *testing.T) {
	fitA, fitB := fits(t)
	board := device.DE4()

	a, err := FPGAIVA(board, fitA, 1024, false, true)
	if err != nil {
		t.Fatal(err)
	}
	within(t, "IV.A FPGA options/s", a.OptionsPerSec, 25, 0.15)
	within(t, "IV.A FPGA options/J", a.OptionsPerJoule, 1.7, 0.15)
	within(t, "IV.A FPGA nodes/s", a.NodesPerSec, 13e6, 0.15)

	b, err := FPGAIVB(board, fitB, 1024, false, false)
	if err != nil {
		t.Fatal(err)
	}
	within(t, "IV.B FPGA options/s", b.OptionsPerSec, 2400, 0.12)
	within(t, "IV.B FPGA options/J", b.OptionsPerJoule, 140, 0.12)
	within(t, "IV.B FPGA nodes/s", b.NodesPerSec, 1.3e9, 0.12)

	// The headline claim: more than 2000 options per second on the DE4.
	if b.OptionsPerSec < 2000 {
		t.Errorf("IV.B FPGA = %.0f options/s, the paper's use case needs > 2000", b.OptionsPerSec)
	}
}

// TestTable2GPU reproduces the GPU columns.
func TestTable2GPU(t *testing.T) {
	spec := device.GTX660()
	a, err := GPUIVA(spec, 1024, false, true)
	if err != nil {
		t.Fatal(err)
	}
	within(t, "IV.A GPU options/s", a.OptionsPerSec, 53, 0.12)
	within(t, "IV.A GPU options/J", a.OptionsPerJoule, 0.4, 0.15)

	bd, err := GPUIVB(spec, 1024, false)
	if err != nil {
		t.Fatal(err)
	}
	within(t, "IV.B GPU double options/s", bd.OptionsPerSec, 8900, 0.05)
	within(t, "IV.B GPU double options/J", bd.OptionsPerJoule, 64, 0.05)
	within(t, "IV.B GPU double nodes/s", bd.NodesPerSec, 4.7e9, 0.05)

	bs, err := GPUIVB(spec, 1024, true)
	if err != nil {
		t.Fatal(err)
	}
	within(t, "IV.B GPU single options/s", bs.OptionsPerSec, 47000, 0.05)
	within(t, "IV.B GPU single options/J", bs.OptionsPerJoule, 340, 0.05)
}

// TestTable2Reference reproduces the software reference columns.
func TestTable2Reference(t *testing.T) {
	spec := device.XeonX5450()
	d, err := CPUReference(spec, 1024, false)
	if err != nil {
		t.Fatal(err)
	}
	within(t, "reference double options/s", d.OptionsPerSec, 222, 0.05)
	within(t, "reference double options/J", d.OptionsPerJoule, 1.85, 0.05)
	within(t, "reference double nodes/s", d.NodesPerSec, 117e6, 0.05)

	s, err := CPUReference(spec, 1024, true)
	if err != nil {
		t.Fatal(err)
	}
	within(t, "reference single options/s", s.OptionsPerSec, 116, 0.05)
	within(t, "reference single options/J", s.OptionsPerJoule, 1.0, 0.05)
}

// TestPaperHeadlineRatios checks the shape claims of §V-C.
func TestPaperHeadlineRatios(t *testing.T) {
	fitA, fitB := fits(t)
	board := device.DE4()
	fpgaB, _ := FPGAIVB(board, fitB, 1024, false, false)
	gpuB, _ := GPUIVB(device.GTX660(), 1024, false)
	ref, _ := CPUReference(device.XeonX5450(), 1024, false)
	fpgaA, _ := FPGAIVA(board, fitA, 1024, false, true)

	// "the implementation on the DE4 board is 2 times more energy-
	// efficient than the GPU implementation"
	if r := fpgaB.OptionsPerJoule / gpuB.OptionsPerJoule; r < 1.8 || r > 2.6 {
		t.Errorf("FPGA/GPU energy ratio = %.2f, paper reports ~2.2", r)
	}
	// "more than 5 times more energy efficient than the software
	// reference" (140 / 1.85 is in fact ~75; the 5x sentence compares
	// J/option at matched throughput elsewhere — assert the hard
	// dominance).
	if r := fpgaB.OptionsPerJoule / ref.OptionsPerJoule; r < 5 {
		t.Errorf("FPGA/reference energy ratio = %.1f, want > 5", r)
	}
	// GPU wins raw speed by a moderate factor: "the number of options/s
	// computed by the GTX660 and the FPGA version are within a factor 5
	// of each other".
	if r := gpuB.OptionsPerSec / fpgaB.OptionsPerSec; r < 2 || r > 5 {
		t.Errorf("GPU/FPGA speed ratio = %.2f, paper reports within a factor 5", r)
	}
	// Kernel IV.A is catastrophically slower than IV.B on the same board.
	if r := fpgaB.OptionsPerSec / fpgaA.OptionsPerSec; r < 50 {
		t.Errorf("IV.B/IV.A FPGA ratio = %.0f, expected ~100x", r)
	}
}

func TestLeavesOnHostSlowsIVB(t *testing.T) {
	_, fitB := fits(t)
	board := device.DE4()
	fast, err := FPGAIVB(board, fitB, 1024, false, false)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := FPGAIVB(board, fitB, 1024, false, true)
	if err != nil {
		t.Fatal(err)
	}
	if slow.OptionsPerSec >= fast.OptionsPerSec {
		t.Error("host-side leaves must cost throughput (paper: 'to the detriment of speed')")
	}
	// But the penalty is bounded — the fallback remains a usable plan.
	if slow.OptionsPerSec < 0.5*fast.OptionsPerSec {
		t.Errorf("host-leaves penalty too large: %.0f vs %.0f options/s",
			slow.OptionsPerSec, fast.OptionsPerSec)
	}
}

func TestPowerCapMeetsBudget(t *testing.T) {
	// §V-C workaround: derate the clock until the 10 W budget holds, and
	// check the derated design still beats the 2000 options/s target.
	_, fitB := fits(t)
	board := device.DE4()
	capped, err := fitB.CapPower(board.Chip, 10)
	if err != nil {
		t.Fatal(err)
	}
	if capped.PowerWatts > 10+1e-9 {
		t.Errorf("capped power = %.2f W", capped.PowerWatts)
	}
	if capped.FmaxMHz >= fitB.FmaxMHz {
		t.Error("capping must lower the clock")
	}
	est, err := FPGAIVB(board, capped, 1024, false, false)
	if err != nil {
		t.Fatal(err)
	}
	// Derating the clock to 10 W keeps ~40% of throughput (the static
	// power floor eats the budget) — under 2000 options/s, which is why
	// the paper concedes that a less power-hungry *board*, not just a
	// slower clock, is needed to meet both constraints at once.
	if est.OptionsPerSec < 800 || est.OptionsPerSec > 2000 {
		t.Errorf("10 W derated design = %.0f options/s; expected ~1000 (under the 2000 target)", est.OptionsPerSec)
	}
	// Derating also *hurts* energy efficiency: the static watts amortise
	// over fewer options.
	if est.OptionsPerJoule >= fitBEst(t, board, fitB).OptionsPerJoule {
		t.Error("derated design should be less energy-efficient than full speed")
	}
	// Impossible budget: below static power.
	if _, err := fitB.CapPower(board.Chip, 1); err == nil {
		t.Error("budget below static power should fail")
	}
	// Already within budget: unchanged.
	same, err := fitB.CapPower(board.Chip, 100)
	if err != nil {
		t.Fatal(err)
	}
	if same.FmaxMHz != fitB.FmaxMHz {
		t.Error("generous budget should not derate")
	}
	// The capped fit flows back through the platform layer via
	// Options.Fit without refitting.
	fpga, err := Get("fpga-ivb")
	if err != nil {
		t.Fatal(err)
	}
	viaOpts, err := fpga.Estimate(1024, Options{Fit: &capped})
	if err != nil {
		t.Fatal(err)
	}
	if viaOpts.OptionsPerSec != est.OptionsPerSec {
		t.Errorf("Options.Fit path = %g options/s, direct = %g", viaOpts.OptionsPerSec, est.OptionsPerSec)
	}
}

func fitBEst(t *testing.T, board device.FPGABoard, fit hls.FitReport) perf.Estimate {
	t.Helper()
	e, err := FPGAIVB(board, fit, 1024, false, false)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestValidationErrors(t *testing.T) {
	fitA, fitB := fits(t)
	board := device.DE4()
	if _, err := FPGAIVA(board, fitA, 0, false, true); err == nil {
		t.Error("zero steps should fail")
	}
	if _, err := FPGAIVB(board, fitB, -1, false, false); err == nil {
		t.Error("negative steps should fail")
	}
	if _, err := GPUIVA(device.GTX660(), 0, false, true); err == nil {
		t.Error("zero steps should fail")
	}
	if _, err := GPUIVB(device.GTX660(), 0, false); err == nil {
		t.Error("zero steps should fail")
	}
	if _, err := CPUReference(device.XeonX5450(), 0, false); err == nil {
		t.Error("zero steps should fail")
	}
	// The platform layer rejects bad depths before reaching any model.
	for _, p := range Platforms() {
		if _, err := p.Estimate(0, Options{}); err == nil {
			t.Errorf("%s: zero steps should fail", p.Describe().Name)
		}
		if _, err := p.NewEngine(-5); err == nil {
			t.Errorf("%s: negative steps should fail", p.Describe().Name)
		}
	}
}

// TestMonotoneInDepth: deeper trees mean more nodes per option, so
// options/s must fall monotonically with N on every platform model.
func TestMonotoneInDepth(t *testing.T) {
	board := device.DE4()
	fitA, fitB := fits(t)
	gpu := device.GTX660()
	cpu := device.XeonX5450()

	prev := map[string]float64{}
	for _, n := range []int{128, 256, 512, 1024, 2048} {
		cases := map[string]func() (perf.Estimate, error){
			"fpga-ivb": func() (perf.Estimate, error) { return FPGAIVB(board, fitB, n, false, false) },
			"fpga-iva": func() (perf.Estimate, error) { return FPGAIVA(board, fitA, n, false, true) },
			"gpu-ivb":  func() (perf.Estimate, error) { return GPUIVB(gpu, n, false) },
			"gpu-iva":  func() (perf.Estimate, error) { return GPUIVA(gpu, n, false, true) },
			"cpu":      func() (perf.Estimate, error) { return CPUReference(cpu, n, false) },
		}
		for name, f := range cases {
			e, err := f()
			if err != nil {
				t.Fatalf("%s N=%d: %v", name, n, err)
			}
			if p, ok := prev[name]; ok && e.OptionsPerSec >= p {
				t.Errorf("%s: throughput rose with depth at N=%d (%g -> %g)", name, n, p, e.OptionsPerSec)
			}
			prev[name] = e.OptionsPerSec
		}
	}
}

// TestFPGAThroughputScalesWithLanesAndClock: the IV.B estimate must be
// proportional to lanes * Fmax.
func TestFPGAThroughputScalesWithLanesAndClock(t *testing.T) {
	board := device.DE4()
	_, fitB := fits(t)
	base, err := FPGAIVB(board, fitB, 1024, false, false)
	if err != nil {
		t.Fatal(err)
	}
	doubled := fitB
	doubled.NodeLanes *= 2
	est, err := FPGAIVB(board, doubled, 1024, false, false)
	if err != nil {
		t.Fatal(err)
	}
	if ratio := est.OptionsPerSec / base.OptionsPerSec; ratio < 1.99 || ratio > 2.01 {
		t.Errorf("doubling lanes gave %.3fx", ratio)
	}
	slower := fitB
	slower.FmaxMHz /= 2
	est, err = FPGAIVB(board, slower, 1024, false, false)
	if err != nil {
		t.Fatal(err)
	}
	if ratio := est.OptionsPerSec / base.OptionsPerSec; ratio < 0.49 || ratio > 0.51 {
		t.Errorf("halving the clock gave %.3fx", ratio)
	}
}

// TestSinglePrecisionNeverSlower: halving element size can only help the
// transfer-bound IV.A models.
func TestSinglePrecisionNeverSlower(t *testing.T) {
	board := device.DE4()
	fitA, _ := fits(t)
	d, err := FPGAIVA(board, fitA, 1024, false, true)
	if err != nil {
		t.Fatal(err)
	}
	s, err := FPGAIVA(board, fitA, 1024, true, true)
	if err != nil {
		t.Fatal(err)
	}
	if s.OptionsPerSec < d.OptionsPerSec {
		t.Errorf("single %g slower than double %g on the transfer-bound path", s.OptionsPerSec, d.OptionsPerSec)
	}
}

// TestEmbeddedEstimates sanity-checks the future-work models directly.
func TestEmbeddedEstimates(t *testing.T) {
	for _, spec := range []device.EmbeddedSpec{device.TIKeystone(), device.ARMMali()} {
		d, err := EmbeddedIVB(spec, 1024, false)
		if err != nil {
			t.Fatal(err)
		}
		s, err := EmbeddedIVB(spec, 1024, true)
		if err != nil {
			t.Fatal(err)
		}
		if s.OptionsPerSec <= d.OptionsPerSec {
			t.Errorf("%s: single %g not above double %g", spec.Name, s.OptionsPerSec, d.OptionsPerSec)
		}
		if _, err := EmbeddedIVB(spec, 0, false); err == nil {
			t.Error("zero steps should fail")
		}
	}
}

// TestSaturationGPUNeedsTenTimesMore pins the §V-C claim that the GPU
// "needs a more important workload to reach optimal performances (ten
// times as many)".
func TestSaturationGPUNeedsTenTimesMore(t *testing.T) {
	fpga := device.DE4().SaturationOptions
	gpu := device.GTX660().SaturationOptions
	if gpu != 10*fpga {
		t.Errorf("saturation workloads: gpu %d vs fpga %d, want 10x", gpu, fpga)
	}
}
