package accel

import (
	"fmt"
	"sort"
	"sync"

	"binopt/internal/device"
)

// Registry is a name-keyed, registration-ordered set of platforms.
type Registry struct {
	mu     sync.RWMutex
	names  []string
	byName map[string]Platform
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]Platform)}
}

// Register adds a platform under its described name. Names are unique.
func (r *Registry) Register(p Platform) error {
	d := p.Describe()
	if d.Name == "" {
		return fmt.Errorf("accel: platform has no name")
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if _, dup := r.byName[d.Name]; dup {
		return fmt.Errorf("accel: platform %q already registered", d.Name)
	}
	r.byName[d.Name] = p
	r.names = append(r.names, d.Name)
	return nil
}

// Lookup returns the platform registered under name.
func (r *Registry) Lookup(name string) (Platform, bool) {
	r.mu.RLock()
	defer r.mu.RUnlock()
	p, ok := r.byName[name]
	return p, ok
}

// Names returns the registered names in registration order.
func (r *Registry) Names() []string {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]string, len(r.names))
	copy(out, r.names)
	return out
}

// Platforms returns the platforms in registration order.
func (r *Registry) Platforms() []Platform {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]Platform, 0, len(r.names))
	for _, n := range r.names {
		out = append(out, r.byName[n])
	}
	return out
}

// defaultExtras collects constructors registered by platform files'
// init functions (see embedded.go); they are appended to the default
// registry after the paper's three evaluated platforms, sorted by name
// so registration order does not depend on compilation order.
var defaultExtras []func() Platform

func registerDefault(f func() Platform) {
	defaultExtras = append(defaultExtras, f)
}

var (
	defaultOnce sync.Once
	defaultReg  *Registry
)

// Default returns the shared registry holding the paper's test
// environment (§V-A) — DE4 FPGA, GTX660, Xeon X5450 — plus any
// platforms self-registered at init time.
func Default() *Registry {
	defaultOnce.Do(func() {
		r := NewRegistry()
		for _, p := range []Platform{
			NewFPGA("fpga-ivb", "DE4", device.DE4()),
			NewGPU("gpu-ivb", "GTX660", device.GTX660()),
			NewCPU("cpu-ref", "Xeon X5450", device.XeonX5450()),
		} {
			if err := r.Register(p); err != nil {
				panic(err)
			}
		}
		extras := make([]Platform, 0, len(defaultExtras))
		for _, f := range defaultExtras {
			extras = append(extras, f())
		}
		sort.Slice(extras, func(i, j int) bool {
			return extras[i].Describe().Name < extras[j].Describe().Name
		})
		for _, p := range extras {
			if err := r.Register(p); err != nil {
				panic(err)
			}
		}
		defaultReg = r
	})
	return defaultReg
}

// Get returns the named platform from the default registry.
func Get(name string) (Platform, error) {
	p, ok := Default().Lookup(name)
	if !ok {
		return nil, fmt.Errorf("accel: unknown platform %q (have %v)", name, Default().Names())
	}
	return p, nil
}

// Platforms returns the default registry's platforms in registration
// order.
func Platforms() []Platform { return Default().Platforms() }

// Names returns the default registry's platform names in registration
// order.
func Names() []string { return Default().Names() }
