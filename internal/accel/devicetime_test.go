package accel

import (
	"math"
	"testing"

	"binopt/internal/option"
)

func tracedProbe() option.Option {
	return option.Option{
		Right: option.Put, Style: option.American,
		Spot: 100, Strike: 105, Rate: 0.03, Sigma: 0.2, T: 0.5,
	}
}

// TestPriceTracedTimeline: a kernel-substrate engine's modelled device
// trace decomposes each option into the IV.B command sequence, tiles
// the device clock gaplessly, and spends exactly the estimate's
// per-option seconds.
func TestPriceTracedTimeline(t *testing.T) {
	p, err := Get("fpga-ivb")
	if err != nil {
		t.Fatal(err)
	}
	eng, err := p.NewEngine(128)
	if err != nil {
		t.Fatal(err)
	}
	spo := eng.ModelledSecondsPerOption()
	if spo <= 0 {
		t.Fatalf("seconds per option = %v", spo)
	}

	var prevEnd float64
	for i := 0; i < 3; i++ {
		price, dtr, err := eng.PriceTraced(tracedProbe())
		if err != nil {
			t.Fatal(err)
		}
		want, err := eng.Price(tracedProbe())
		if err != nil {
			t.Fatal(err)
		}
		if price != want {
			t.Errorf("PriceTraced price %v != Price %v", price, want)
		}
		if dtr.Backend != "fpga-ivb" {
			t.Errorf("backend = %q", dtr.Backend)
		}
		// Option i occupies [prevEnd, prevEnd+spo) — the interleaved
		// plain Price above also advanced the clock by one option.
		if math.Abs(dtr.Start-prevEnd) > 1e-12 {
			t.Errorf("option %d starts at %v, want %v (device clock must be contiguous)", i, dtr.Start, prevEnd)
		}
		if math.Abs((dtr.End-dtr.Start)-spo) > 1e-12*spo {
			t.Errorf("option %d spans %v device seconds, want %v", i, dtr.End-dtr.Start, spo)
		}
		names := make([]string, len(dtr.Commands))
		at := dtr.Start
		var sum float64
		for c, cmd := range dtr.Commands {
			names[c] = cmd.Name
			if cmd.Queued != dtr.Start || cmd.Submit != dtr.Start {
				t.Errorf("command %q queued/submit not at option start: %+v", cmd.Name, cmd)
			}
			if math.Abs(cmd.Start-at) > 1e-12 {
				t.Errorf("command %q starts at %v, want %v (commands must tile)", cmd.Name, cmd.Start, at)
			}
			if cmd.End < cmd.Start {
				t.Errorf("command %q ends before it starts", cmd.Name)
			}
			at = cmd.End
			sum += cmd.Seconds()
		}
		if len(names) != 3 || names[0] != "write params+leaves" || names[1] != "ndrange IV.B" || names[2] != "read result" {
			t.Errorf("command sequence = %v", names)
		}
		if dtr.Commands[len(dtr.Commands)-1].End != dtr.End {
			t.Errorf("last command ends at %v, option at %v", at, dtr.End)
		}
		if math.Abs(sum-spo) > 1e-9*spo {
			t.Errorf("commands sum to %v, option costs %v", sum, spo)
		}
		// The kernel dominates: transfers are overhead, not the bulk.
		if k := dtr.Commands[1].Seconds(); k < dtr.Commands[0].Seconds() || k < dtr.Commands[2].Seconds() {
			t.Errorf("kernel (%v) should dominate transfers (%v, %v)",
				k, dtr.Commands[0].Seconds(), dtr.Commands[2].Seconds())
		}
		prevEnd = dtr.End + spo // the plain Price call consumed one more slot
	}

	// 6 pricings total (3 traced + 3 plain) on the device clock.
	if got, want := eng.ModelledDeviceSeconds(), 6*spo; math.Abs(got-want) > 1e-9*want {
		t.Errorf("ModelledDeviceSeconds = %v, want %v", got, want)
	}
}

// TestPriceTracedHostEngine: the pure-host reference engine collapses
// to a single compute command — no PCIe lanes to model.
func TestPriceTracedHostEngine(t *testing.T) {
	p, err := Get("cpu-ref")
	if err != nil {
		t.Fatal(err)
	}
	eng, err := p.NewEngine(64)
	if err != nil {
		t.Fatal(err)
	}
	_, dtr, err := eng.PriceTraced(tracedProbe())
	if err != nil {
		t.Fatal(err)
	}
	if len(dtr.Commands) != 1 || dtr.Commands[0].Name != "compute" {
		t.Errorf("host engine commands = %+v, want one compute", dtr.Commands)
	}
	if dtr.Commands[0].End != dtr.End || dtr.Commands[0].Start != dtr.Start {
		t.Errorf("compute command must cover the option interval: %+v", dtr)
	}
}
