package accel

import (
	"fmt"
	"math"
	"sync"

	"binopt/internal/kernels"
	"binopt/internal/lattice"
	"binopt/internal/opencl"
	"binopt/internal/option"
	"binopt/internal/perf"
)

// maxProbeSteps caps the depth of the construction-time kernel probe.
// The simulated runtime executes kernel IV.B with a goroutine per
// work-item and two real barriers per backward step, so a full-depth
// probe would cost seconds per engine; a few hundred steps already
// exercises every code path (params packing, leaf streaming, local
// memory, barriers, readback) while staying in the low milliseconds.
const maxProbeSteps = 256

// Engine is an executable pricing engine for one platform: the real
// kernel verified on the platform's simulated OpenCL device at
// construction, then served through the bit-identical host realisation
// of the same arithmetic, with every priced option accounted against the
// platform's modelled substrate activity (opencl.Counters) and energy.
//
// The two-phase design preserves the repository's exactness guarantee at
// serving throughput: kernel IV.B with host-computed double-precision
// leaves is proven bit-for-bit equal to the host lattice engine (the
// kernels package integration tests, re-checked here on every
// construction), so the host path IS the device arithmetic — only the
// clock is modelled, exactly as in the perf estimates.
type Engine struct {
	desc       Description
	est        perf.Estimate
	steps      int
	probeSteps int
	host       *lattice.Engine
	jpo        float64 // modelled joules per option

	// perOption is the modelled substrate activity of pricing one option
	// at serving depth, calibrated from the construction probe. perQuad
	// is the activity of one interleaved quad group (four options through
	// one shared sweep): control costs are paid once, data costs four
	// times — see quadGroupCounters.
	perOption opencl.Counters
	perQuad   opencl.Counters

	// spo and devPlan model the device clock: seconds per option from
	// the estimate, decomposed into the option's command schedule.
	spo     float64
	devPlan devCommandPlan

	mu       sync.Mutex
	totals   opencl.Counters
	priced   int64
	devClock float64 // modelled device-busy seconds accumulated

	// fault, when armed via SetFaultHook, is consulted before every
	// pricing; a non-nil return aborts the call with that error and
	// accounts nothing. It is how the fault injector (internal/faults)
	// makes the simulated substrate misbehave on demand.
	hookMu sync.RWMutex
	fault  func() error
}

// SetFaultHook arms (or, with nil, disarms) the engine's fault hook.
// Safe to call while the engine is serving; in-flight pricings keep the
// hook state they started with.
func (e *Engine) SetFaultHook(h func() error) {
	e.hookMu.Lock()
	e.fault = h
	e.hookMu.Unlock()
}

// faultCheck runs the armed hook, if any. The hook itself may sleep
// (latency-spike and stuck-shard profiles), so it runs outside the
// accounting lock.
func (e *Engine) faultCheck() error {
	e.hookMu.RLock()
	h := e.fault
	e.hookMu.RUnlock()
	if h == nil {
		return nil
	}
	return h()
}

// probeChain is the construction-time verification batch: the styles and
// rights the kernels branch on.
func probeChain() []option.Option {
	return []option.Option{
		{Right: option.Put, Style: option.American, Spot: 100, Strike: 105, Rate: 0.03, Sigma: 0.2, T: 0.5},
		{Right: option.Call, Style: option.European, Spot: 100, Strike: 95, Rate: 0.05, Div: 0.01, Sigma: 0.3, T: 1},
		{Right: option.Call, Style: option.American, Spot: 80, Strike: 100, Rate: 0.02, Div: 0.04, Sigma: 0.4, T: 2},
	}
}

// probeDepth picks the largest affordable probe depth the device can run
// kernel IV.B at: one work-item per tree row, rows*8 bytes of local
// memory per work-group.
func probeDepth(info opencl.DeviceInfo, steps int) int {
	p := steps
	if p > maxProbeSteps {
		p = maxProbeSteps
	}
	if m := info.MaxWorkGroupSize; m > 0 && p > m-1 {
		p = m - 1
	}
	if lb := info.LocalMemBytes; lb > 0 {
		if rows := int(lb/8) - 1; p > rows {
			p = rows
		}
	}
	if p < 1 {
		p = 1
	}
	return p
}

// newKernelEngine builds an engine whose substrate is kernel IV.B on the
// platform's OpenCL device: it runs the probe batch through the real
// runtime, asserts bit-for-bit parity with the host lattice, and
// calibrates the per-option counters from the metered run.
func newKernelEngine(desc Description, est perf.Estimate, steps int) (*Engine, error) {
	host, err := lattice.NewEngine(steps)
	if err != nil {
		return nil, fmt.Errorf("accel: %s: %w", desc.Name, err)
	}
	probe := probeDepth(desc.OpenCL, steps)
	ctx, err := opencl.NewContext(&opencl.Device{Info: desc.OpenCL})
	if err != nil {
		return nil, fmt.Errorf("accel: %s: %w", desc.Name, err)
	}
	chain := probeChain()
	res, err := kernels.RunIVB(ctx, chain, kernels.IVBConfig{
		Steps:        probe,
		Precision:    kernels.Double,
		LeavesOnHost: true,
	})
	if err != nil {
		return nil, fmt.Errorf("accel: %s: probe kernel: %w", desc.Name, err)
	}
	ref, err := lattice.NewEngine(probe)
	if err != nil {
		return nil, fmt.Errorf("accel: %s: %w", desc.Name, err)
	}
	for i, o := range chain {
		want, err := ref.Price(o)
		if err != nil {
			return nil, fmt.Errorf("accel: %s: probe reference: %w", desc.Name, err)
		}
		//binopt:ignore floateq the probe asserts bit-exact kernel/host parity (the §IV invariant), not numerical closeness
		if got := res.Prices[i]; got != want {
			return nil, fmt.Errorf("accel: %s: kernel/host parity violation at probe depth %d, option %d: device %v (%#x) vs host %v (%#x)",
				desc.Name, probe, i, got, math.Float64bits(got), want, math.Float64bits(want))
		}
	}
	if err := verifyQuadParity(desc.Name, steps); err != nil {
		return nil, err
	}
	perOpt := scaleProbeCounters(res.Counters, len(chain), probe, steps)
	return &Engine{
		desc:       desc,
		est:        est,
		steps:      steps,
		probeSteps: probe,
		host:       host,
		jpo:        joulesPerOption(est),
		perOption:  perOpt,
		perQuad:    quadGroupCounters(perOpt),
		spo:        secondsPerOption(est),
		devPlan:    newDevCommandPlan(perOpt),
	}, nil
}

// newHostEngine builds the CPU reference engine: no OpenCL substrate,
// the host lattice is the device. Its modelled activity is the
// arithmetic alone.
func newHostEngine(desc Description, est perf.Estimate, steps int) (*Engine, error) {
	host, err := lattice.NewEngine(steps)
	if err != nil {
		return nil, fmt.Errorf("accel: %s: %w", desc.Name, err)
	}
	if err := verifyQuadParity(desc.Name, steps); err != nil {
		return nil, err
	}
	const flopsPerNode = 6
	perOpt := opencl.Counters{Flops: nodesFor(steps) * flopsPerNode}
	return &Engine{
		desc:      desc,
		est:       est,
		steps:     steps,
		host:      host,
		jpo:       joulesPerOption(est),
		perOption: perOpt,
		perQuad:   quadGroupCounters(perOpt),
		spo:       secondsPerOption(est),
		devPlan:   newDevCommandPlan(perOpt),
	}, nil
}

// verifyQuadParity extends the construction-time parity guarantee to
// the interleaved batch path: the quad sweep — straight and cache-tiled
// — must reproduce the scalar host lattice bit for bit on the probe
// chain before the engine is allowed to serve batches through it. Depth
// is capped like the kernel probe; the quad kernels have no
// depth-dependent branches, so a few hundred steps exercise every path.
func verifyQuadParity(name string, steps int) error {
	depth := steps
	if depth > maxProbeSteps {
		depth = maxProbeSteps
	}
	ref, err := lattice.NewEngine(depth)
	if err != nil {
		return fmt.Errorf("accel: %s: quad probe: %w", name, err)
	}
	chain := probeChain()
	want := make([]float64, len(chain))
	for i, o := range chain {
		if want[i], err = ref.Price(o); err != nil {
			return fmt.Errorf("accel: %s: quad probe reference: %w", name, err)
		}
	}
	qp := ref.NewQuadPlan()
	for _, tiled := range []bool{false, true} {
		if err := qp.Load(chain); err != nil {
			return fmt.Errorf("accel: %s: quad probe: %w", name, err)
		}
		var got [4]float64
		mode := "straight"
		if tiled {
			mode = "tiled"
			got = qp.ExecTiled()
		} else {
			got = qp.Exec()
		}
		for i := range chain {
			if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
				return fmt.Errorf("accel: %s: quad/scalar parity violation (%s sweep, probe depth %d, option %d): quad %v (%#x) vs scalar %v (%#x)",
					name, mode, depth, i, got[i], math.Float64bits(got[i]), want[i], math.Float64bits(want[i]))
			}
		}
	}
	return nil
}

// quadGroupCounters models one interleaved quad group from the
// per-option activity: the shared sweep launches one kernel over one
// set of work-items and crosses each barrier once for all four lanes
// (control costs ×1), while every node touches four lane values and
// performs four lanes of arithmetic (data costs ×4). The result
// readback is one transfer carrying four prices.
func quadGroupCounters(per opencl.Counters) opencl.Counters {
	return opencl.Counters{
		Kernels:        per.Kernels,
		KernelLaunches: per.KernelLaunches,
		WorkGroups:     per.WorkGroups,
		WorkItems:      per.WorkItems,
		Barriers:       per.Barriers,
		HostReads:      per.HostReads,
		HostTransfers:  per.HostTransfers,
		GlobalReads:    4 * per.GlobalReads,
		GlobalWrites:   4 * per.GlobalWrites,
		LocalReads:     4 * per.LocalReads,
		LocalWrites:    4 * per.LocalWrites,
		Flops:          4 * per.Flops,
		HostWrites:     4 * per.HostWrites,
	}
}

func joulesPerOption(est perf.Estimate) float64 {
	if est.OptionsPerSec <= 0 {
		return 0
	}
	return est.PowerWatts / est.OptionsPerSec
}

func nodesFor(steps int) int64 {
	n := int64(steps)
	return n * (n + 1) / 2
}

// scaleProbeCounters converts the metered activity of the probe batch
// into the modelled per-option activity at serving depth. Quantities
// proportional to tree nodes (arithmetic, local traffic, barriers) scale
// by the node ratio; quantities proportional to tree rows (work-items,
// parameter/leaf traffic) scale by the row ratio; per-option fixed costs
// (result readback, launches) carry over unscaled.
func scaleProbeCounters(c opencl.Counters, batch, probe, steps int) opencl.Counters {
	nodeR := float64(nodesFor(steps)) / float64(nodesFor(probe))
	rowR := float64(steps+1) / float64(probe+1)
	per := func(v int64, ratio float64) int64 {
		return int64(math.Round(float64(v) / float64(batch) * ratio))
	}
	return opencl.Counters{
		Kernels:        per(c.Kernels, 1),
		KernelLaunches: per(c.KernelLaunches, 1),
		WorkGroups:     per(c.WorkGroups, 1),
		WorkItems:      per(c.WorkItems, rowR),
		GlobalReads:    per(c.GlobalReads, rowR),
		GlobalWrites:   per(c.GlobalWrites, 1),
		LocalReads:     per(c.LocalReads, nodeR),
		LocalWrites:    per(c.LocalWrites, nodeR),
		Flops:          per(c.Flops, nodeR),
		Barriers:       per(c.Barriers, nodeR),
		HostWrites:     per(c.HostWrites, rowR),
		HostReads:      per(c.HostReads, 1),
		HostTransfers:  per(c.HostTransfers, 1),
	}
}

// Describe returns the owning platform's description.
func (e *Engine) Describe() Description { return e.desc }

// Estimate returns the modelled throughput/power row the engine was
// built against.
func (e *Engine) Estimate() perf.Estimate { return e.est }

// Steps reports the serving tree depth.
func (e *Engine) Steps() int { return e.steps }

// ProbeSteps reports the depth of the construction-time kernel probe
// (zero for host-substrate engines).
func (e *Engine) ProbeSteps() int { return e.probeSteps }

// Price prices one option and accounts its modelled substrate activity.
// An armed fault hook is consulted first; its error fails the call with
// no accounting, exactly as a device-side launch failure would.
func (e *Engine) Price(o option.Option) (float64, error) {
	if err := e.faultCheck(); err != nil {
		return 0, err
	}
	p, err := e.host.Price(o)
	if err != nil {
		return 0, err
	}
	e.account(1)
	return p, nil
}

// PriceTraced prices one option and additionally returns its modelled
// device timeline: the interval the option occupied on this platform's
// virtual device clock, decomposed into the commands the host program
// would have enqueued, with the four profiling timestamps each. The
// telemetry layer renders these as the device lane of the trace.
func (e *Engine) PriceTraced(o option.Option) (float64, DeviceTrace, error) {
	if err := e.faultCheck(); err != nil {
		return 0, DeviceTrace{}, err
	}
	p, err := e.host.Price(o)
	if err != nil {
		return 0, DeviceTrace{}, err
	}
	start := e.account(1)
	return p, e.devPlan.trace(e.desc.Name, start, e.spo), nil
}

// PriceBatch prices a batch (workers <= 0 uses GOMAXPROCS) and accounts
// its modelled substrate activity. The fault hook is consulted once per
// batch — the batch is one modelled device submission. The host lattice
// routes the batch through quad-interleaved sweeps, so the accounting
// mirrors the dispatch: full groups of four book one shared-sweep quad
// group, the remainder books scalar per-option activity.
func (e *Engine) PriceBatch(opts []option.Option, workers int) ([]float64, error) {
	if err := e.faultCheck(); err != nil {
		return nil, err
	}
	prices, err := e.host.PriceBatch(opts, workers)
	if err != nil {
		return nil, err
	}
	e.accountBatch(len(opts))
	return prices, nil
}

// PriceAndGreeksBatch prices a batch with full sensitivities through
// the host's quad-batched Greeks path and accounts the modelled
// substrate activity of the five contract evaluations each position
// costs: one scalar retained sweep plus one interleaved quad group
// carrying the four vega/rho bump contracts. The fault hook is
// consulted once per batch, like PriceBatch.
func (e *Engine) PriceAndGreeksBatch(opts []option.Option, workers int) ([]float64, []lattice.Greeks, error) {
	if err := e.faultCheck(); err != nil {
		return nil, nil, err
	}
	prices, greeks, err := e.host.PriceAndGreeksBatch(opts, workers)
	if err != nil {
		return nil, nil, err
	}
	e.accountGreeksBatch(len(opts))
	return prices, greeks, nil
}

// accountGreeksBatch books n positions evaluated with sensitivities:
// per position one scalar sweep plus one quad group, five contract
// evaluations on the modelled device clock and energy ledger.
func (e *Engine) accountGreeksBatch(n int) {
	var add opencl.Counters
	for i := 0; i < n; i++ {
		add.Add(e.perOption)
		add.Add(e.perQuad)
	}
	e.book(add, 5*n)
}

// account books n scalar-priced options and advances the modelled
// device clock, returning the device-clock position the work started
// at.
func (e *Engine) account(n int) float64 {
	var add opencl.Counters
	for i := 0; i < n; i++ {
		add.Add(e.perOption)
	}
	return e.book(add, n)
}

// accountBatch books n options priced through the quad-interleaved
// batch path: full groups of four accumulate perQuad, the scalar
// remainder perOption. The device clock and modelled energy remain
// per-option — they model the paper's measured device, which the
// interleaving does not change.
func (e *Engine) accountBatch(n int) {
	var add opencl.Counters
	for i := 0; i < n/4; i++ {
		add.Add(e.perQuad)
	}
	for i := 0; i < n%4; i++ {
		add.Add(e.perOption)
	}
	e.book(add, n)
}

// book commits accumulated counters plus n options of device-clock
// advance, returning the clock position the work started at.
func (e *Engine) book(add opencl.Counters, n int) float64 {
	e.mu.Lock()
	e.totals.Add(add)
	e.priced += int64(n)
	start := e.devClock
	e.devClock += float64(n) * e.spo
	e.mu.Unlock()
	return start
}

// Counters returns the accumulated modelled substrate activity.
func (e *Engine) Counters() opencl.Counters {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.totals
}

// PricedOptions reports how many options the engine has priced.
func (e *Engine) PricedOptions() int64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.priced
}

// ModelledJoulesPerOption is the platform's modelled energy per priced
// option (power / throughput from the estimate).
func (e *Engine) ModelledJoulesPerOption() float64 { return e.jpo }

// ModelledSecondsPerOption is the modelled device time of one option
// (1 / OptionsPerSec from the estimate).
func (e *Engine) ModelledSecondsPerOption() float64 { return e.spo }

// ModelledDeviceSeconds is the total modelled device-busy time of
// everything priced: the device clock's current position.
func (e *Engine) ModelledDeviceSeconds() float64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.devClock
}

// ModelledJoules is the total modelled energy of everything priced.
func (e *Engine) ModelledJoules() float64 {
	return float64(e.PricedOptions()) * e.jpo
}
