//go:build race

package accel

// raceEnabled reports whether the race detector is compiled in.
const raceEnabled = true
