package accel

import (
	"fmt"

	"binopt/internal/cpumodel"
	"binopt/internal/device"
	"binopt/internal/gpumodel"
	"binopt/internal/hls"
	"binopt/internal/perf"
)

// This file holds the per-platform estimate builders: the only place the
// repository converts a device spec (plus, for the FPGA, an HLS fit
// report) into a perf.Estimate row. Consumers normally reach them
// through Platform.Estimate; the direct forms stay exported for studies
// that synthesise their own fit reports (power capping, knob sweeps).

// bytesPerNodeIVA is the global traffic of one IV.A node update: the
// time-step table entry, six option constants, three ping values in, two
// pong values out — about 12 element-sized words.
const bytesPerNodeIVA = 12

// precisionName converts the single flag to the Table II label.
func precisionName(single bool) string {
	if single {
		return "single"
	}
	return "double"
}

func elemBytes(single bool) float64 {
	if single {
		return 4
	}
	return 8
}

// FPGAIVB estimates the optimized kernel on an FPGA board, from its fit
// report. leavesOnHost adds the fallback path's host work and transfer.
func FPGAIVB(board device.FPGABoard, fit hls.FitReport, steps int, single, leavesOnHost bool) (perf.Estimate, error) {
	if steps < 1 {
		return perf.Estimate{}, fmt.Errorf("accel: steps must be positive, got %d", steps)
	}
	nodes := float64(steps) * float64(steps+1) / 2
	// Steady-state pipeline: NodeLanes updates per clock.
	optSec := nodes / (float64(fit.NodeLanes) * fit.FmaxMHz * 1e6)

	if leavesOnHost {
		// Host computes the leaves (a multiply per node on the Xeon) and
		// streams them down; neither overlaps with this option's kernel
		// start in the paper's fallback description.
		cpu := device.XeonX5450()
		hostCompute := float64(steps+1) * 4 / cpu.ClockHz
		transfer := float64(steps+1) * elemBytes(single) / (board.PCIe.TheoreticalB / 2)
		optSec += hostCompute + transfer
	}
	e := perf.Estimate{
		Platform:          board.Chip.Name,
		Kernel:            string(KernelIVB),
		Precision:         precisionName(single),
		OptionsPerSec:     1 / optSec,
		PowerWatts:        fit.PowerWatts,
		SaturationOptions: board.SaturationOptions,
	}
	return perf.Finalize(e, steps), nil
}

// FPGAIVA estimates the straightforward kernel on an FPGA board. The
// per-batch cost is the DDR-bound node sweep plus the blocking host
// interaction — leaf upload, launch, and the ping-pong readback that
// §V-C identifies as the bottleneck.
func FPGAIVA(board device.FPGABoard, fit hls.FitReport, steps int, single, fullReadback bool) (perf.Estimate, error) {
	if steps < 1 {
		return perf.Estimate{}, fmt.Errorf("accel: steps must be positive, got %d", steps)
	}
	elem := elemBytes(single)
	nodes := float64(steps) * float64(steps+1) / 2

	pipeline := nodes / (float64(fit.NodeLanes) * fit.FmaxMHz * 1e6)
	ddr := nodes * bytesPerNodeIVA * elem / board.DDRBytesPerSec
	kernel := pipeline
	if ddr > kernel {
		kernel = ddr
	}

	bufLen := float64((steps + 1) * (steps + 2) / 2)
	write := float64(steps+1) * 2 * elem / board.PCIe.EffectiveB
	read := elem / board.PCIe.EffectiveB
	if fullReadback {
		read = 2 * bufLen * elem / board.PCIe.EffectiveB
	}
	batch := kernel + write + read + 3*board.PCIe.CommandLatencySec

	e := perf.Estimate{
		Platform:          board.Chip.Name,
		Kernel:            string(KernelIVA),
		Precision:         precisionName(single),
		OptionsPerSec:     1 / batch,
		PowerWatts:        fit.PowerWatts,
		SaturationOptions: board.SaturationOptions,
	}
	return perf.Finalize(e, steps), nil
}

// GPUIVB estimates the optimized kernel on the GPU.
func GPUIVB(spec device.GPUSpec, steps int, single bool) (perf.Estimate, error) {
	m := gpumodel.New(spec)
	ps, err := m.IVBOptionsPerSec(steps, single)
	if err != nil {
		return perf.Estimate{}, err
	}
	e := perf.Estimate{
		Platform:          spec.Name,
		Kernel:            string(KernelIVB),
		Precision:         precisionName(single),
		OptionsPerSec:     ps,
		PowerWatts:        m.PowerWatts(),
		SaturationOptions: spec.SaturationOptions,
	}
	return perf.Finalize(e, steps), nil
}

// GPUIVA estimates the straightforward kernel on the GPU.
func GPUIVA(spec device.GPUSpec, steps int, single, fullReadback bool) (perf.Estimate, error) {
	m := gpumodel.New(spec)
	ps, err := m.IVAOptionsPerSec(steps, single, fullReadback)
	if err != nil {
		return perf.Estimate{}, err
	}
	e := perf.Estimate{
		Platform:          spec.Name,
		Kernel:            string(KernelIVA),
		Precision:         precisionName(single),
		OptionsPerSec:     ps,
		PowerWatts:        m.PowerWatts(),
		SaturationOptions: spec.SaturationOptions,
	}
	return perf.Finalize(e, steps), nil
}

// EmbeddedIVB estimates the optimized kernel on one of the paper's
// future-work targets (§VI: "other hardware architectures supporting the
// OpenCL standard [16], [17]"): arithmetic-throughput bound at the
// spec's sustained efficiency, like the GPU model.
func EmbeddedIVB(spec device.EmbeddedSpec, steps int, single bool) (perf.Estimate, error) {
	if steps < 1 {
		return perf.Estimate{}, fmt.Errorf("accel: steps must be positive, got %d", steps)
	}
	peak := spec.PeakDPFlops
	if single {
		peak = spec.PeakSPFlops
	}
	nodes := float64(steps) * float64(steps+1) / 2
	const flopsPerNode = 6
	e := perf.Estimate{
		Platform:      spec.Name,
		Kernel:        string(KernelIVB),
		Precision:     precisionName(single),
		OptionsPerSec: peak * spec.Efficiency / (nodes * flopsPerNode),
		PowerWatts:    spec.TDPWatts,
	}
	return perf.Finalize(e, steps), nil
}

// CPUReference estimates the single-core software reference.
func CPUReference(spec device.CPUSpec, steps int, single bool) (perf.Estimate, error) {
	m := cpumodel.New(spec)
	ps, err := m.OptionsPerSec(steps, single)
	if err != nil {
		return perf.Estimate{}, err
	}
	e := perf.Estimate{
		Platform:      spec.Name,
		Kernel:        string(KernelReference),
		Precision:     precisionName(single),
		OptionsPerSec: ps,
		PowerWatts:    m.PowerWatts(),
	}
	return perf.Finalize(e, steps), nil
}
