// Package accel is the unified accelerator platform layer: one registry
// tying together the device catalogue (internal/device), the HLS fitter
// (internal/hls), the analytic cost models (internal/gpumodel,
// internal/cpumodel, and the FPGA fit-report arithmetic), and the
// executable kernels on the simulated OpenCL runtime
// (internal/kernels + internal/opencl).
//
// The paper's whole argument is a three-way comparison — DE4 FPGA vs
// GTX660 vs Xeon X5450 — over the same OpenCL kernels, and every layer
// of the reproduction needs the same per-platform plumbing: describe the
// device, fit the kernel (where applicable), estimate throughput/power/
// energy, and execute. This package owns that plumbing once; the serving
// tier, the table/experiment generators and the CLI tools all enumerate
// the registry instead of hand-wiring the models. Adding a platform is
// one file registering one constructor (see embedded.go).
package accel

import (
	"binopt/internal/device"
	"binopt/internal/hls"
	"binopt/internal/opencl"
	"binopt/internal/perf"
)

// Kernel names one of the paper's kernel variants.
type Kernel string

const (
	// KernelIVA is the straightforward dataflow kernel (§IV-A):
	// ping-pong buffers in global memory, no barriers.
	KernelIVA Kernel = "IV.A"
	// KernelIVB is the optimized work-group kernel (§IV-B): one
	// work-group per option, values in local memory, barriers.
	KernelIVB Kernel = "IV.B"
	// KernelReference is the paper's single-threaded software reference.
	KernelReference Kernel = "reference"
)

// Options selects a build variant for Platform.Estimate. The zero value
// is each platform's headline Table II row: the default kernel in double
// precision with the paper's parallelisation knobs.
type Options struct {
	// Kernel picks the variant; empty means the platform's default.
	Kernel Kernel
	// Single selects the float32 build.
	Single bool
	// FullReadback makes kernel IV.A read the whole ping-pong buffer
	// back every batch (the paper's 25-options/s configuration) instead
	// of only the root.
	FullReadback bool
	// LeavesOnHost selects kernel IV.B's fallback plan: leaves computed
	// on the host and streamed down, "to the detriment of speed".
	LeavesOnHost bool
	// Knobs overrides the HLS parallelisation knobs on fitting platforms
	// (nil: the paper's published knobs for the kernel).
	Knobs *hls.Knobs
	// Fit supplies a pre-computed fit report on fitting platforms,
	// bypassing the fitter entirely (power-capped designs, knob sweeps).
	Fit *hls.FitReport
}

// Description is the static identity of a registered platform.
type Description struct {
	// Name is the registry key and the serving shard label, e.g.
	// "fpga-ivb".
	Name string
	// Label is the short device tag report text uses, e.g. "DE4".
	Label string
	// Device is the full device name, e.g. "Terasic DE4 (Stratix IV
	// EP4SGX530)".
	Device string
	// Kind classifies the platform: "fpga", "gpu", "cpu" or "embedded".
	Kind string
	// DefaultKernel is the variant Estimate and NewEngine use when
	// Options.Kernel is empty.
	DefaultKernel Kernel
	// OpenCL is the runtime device descriptor engines execute against.
	OpenCL opencl.DeviceInfo
	// SaturationOptions is the workload at which the device reaches
	// linear throughput (zero when not modelled).
	SaturationOptions int64

	// Exactly one of the following spec pointers is set, exposing the
	// underlying catalogue entry to consumers that need chip-level
	// denominators (Table I, the power-cap experiment).
	Board    *device.FPGABoard
	GPU      *device.GPUSpec
	CPU      *device.CPUSpec
	Embedded *device.EmbeddedSpec
}

// Platform is one accelerator the registry knows how to describe,
// cost-model and execute.
type Platform interface {
	// Describe returns the platform's static identity and device info.
	Describe() Description
	// Estimate returns the modelled throughput/power/energy row for a
	// tree of the given depth under the selected build options.
	Estimate(steps int, o Options) (perf.Estimate, error)
	// NewEngine builds an executable pricing engine at the given depth,
	// backed by the platform's simulated substrate. Construction runs
	// the real kernel on the platform's OpenCL device and verifies it
	// bit-for-bit against the host reference before the engine is
	// released to callers.
	NewEngine(steps int) (*Engine, error)
}

// Fitter is implemented by platforms whose kernels go through the HLS
// compiler/fitter (the FPGA). A zero Knobs value selects the paper's
// published knobs for the kernel.
type Fitter interface {
	Platform
	Fit(steps int, kernel Kernel, knobs hls.Knobs) (hls.FitReport, error)
}
