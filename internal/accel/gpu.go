package accel

import (
	"fmt"

	"binopt/internal/device"
	"binopt/internal/perf"
)

// gpuPlatform adapts a GPU spec: estimates come from the analytic GPU
// model, execution from kernel IV.B on the simulated runtime.
type gpuPlatform struct {
	name  string
	label string
	spec  device.GPUSpec
}

// NewGPU wraps a GPU spec as a registrable platform. The default
// registry holds NewGPU("gpu-ivb", "GTX660", device.GTX660()).
func NewGPU(name, label string, spec device.GPUSpec) Platform {
	return &gpuPlatform{name: name, label: label, spec: spec}
}

func (p *gpuPlatform) Describe() Description {
	spec := p.spec
	return Description{
		Name:              p.name,
		Label:             p.label,
		Device:            spec.Name,
		Kind:              "gpu",
		DefaultKernel:     KernelIVB,
		OpenCL:            spec.OpenCLInfo(),
		SaturationOptions: spec.SaturationOptions,
		GPU:               &spec,
	}
}

func (p *gpuPlatform) Estimate(steps int, o Options) (perf.Estimate, error) {
	if steps < 1 {
		return perf.Estimate{}, fmt.Errorf("accel: %s: steps must be positive, got %d", p.name, steps)
	}
	switch o.Kernel {
	case KernelIVB, "":
		return GPUIVB(p.spec, steps, o.Single)
	case KernelIVA:
		return GPUIVA(p.spec, steps, o.Single, o.FullReadback)
	default:
		return perf.Estimate{}, fmt.Errorf("accel: %s: unsupported kernel %q", p.name, o.Kernel)
	}
}

func (p *gpuPlatform) NewEngine(steps int) (*Engine, error) {
	est, err := p.Estimate(steps, Options{})
	if err != nil {
		return nil, err
	}
	return newKernelEngine(p.Describe(), est, steps)
}
