package accel

import (
	"fmt"

	"binopt/internal/device"
	"binopt/internal/opencl"
	"binopt/internal/perf"
)

// This file is the layer's "add a platform = one file" demonstration:
// it adapts the paper's §VI embedded future-work targets and
// self-registers the TI KeyStone into the default registry via init().
// Nothing else in the repository names this platform — it appears in
// binomtab, pricesrvd --backends, the serving pool and the bench output
// purely by being registered here.

// embeddedPlatform adapts an embedded OpenCL SoC: estimates come from
// the arithmetic-bound embedded model, execution from kernel IV.B on the
// simulated runtime.
type embeddedPlatform struct {
	name  string
	label string
	spec  device.EmbeddedSpec
}

// NewEmbedded wraps an embedded SoC spec as a registrable platform.
func NewEmbedded(name, label string, spec device.EmbeddedSpec) Platform {
	return &embeddedPlatform{name: name, label: label, spec: spec}
}

func (p *embeddedPlatform) Describe() Description {
	spec := p.spec
	return Description{
		Name:          p.name,
		Label:         p.label,
		Device:        spec.Name,
		Kind:          "embedded",
		DefaultKernel: KernelIVB,
		// No vendor SDK publishes OpenCL limits for these parts in the
		// paper; the descriptor below is a conservative embedded profile
		// (modest work-group ceiling, small local memory) sufficient for
		// the runtime to execute and meter kernel IV.B.
		OpenCL: opencl.DeviceInfo{
			Name:             spec.Name,
			Vendor:           "embedded",
			Type:             opencl.Accelerator,
			ComputeUnits:     8,
			GlobalMemBytes:   512 << 20,
			LocalMemBytes:    256 << 10,
			MaxWorkGroupSize: 1024,
		},
		Embedded: &spec,
	}
}

func (p *embeddedPlatform) Estimate(steps int, o Options) (perf.Estimate, error) {
	if steps < 1 {
		return perf.Estimate{}, fmt.Errorf("accel: %s: steps must be positive, got %d", p.name, steps)
	}
	switch o.Kernel {
	case KernelIVB, "":
		return EmbeddedIVB(p.spec, steps, o.Single)
	default:
		return perf.Estimate{}, fmt.Errorf("accel: %s: unsupported kernel %q", p.name, o.Kernel)
	}
}

func (p *embeddedPlatform) NewEngine(steps int) (*Engine, error) {
	est, err := p.Estimate(steps, Options{})
	if err != nil {
		return nil, err
	}
	return newKernelEngine(p.Describe(), est, steps)
}

func init() {
	registerDefault(func() Platform {
		return NewEmbedded("embedded-keystone", "KeyStone", device.TIKeystone())
	})
}
