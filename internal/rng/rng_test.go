package rng

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterministicStream(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at %d", i)
		}
	}
	c := New(43)
	same := 0
	a = New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Errorf("different seeds nearly identical: %d matches", same)
	}
}

func TestFloat64Range(t *testing.T) {
	g := New(7)
	for i := 0; i < 100000; i++ {
		f := g.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestUniformMoments(t *testing.T) {
	g := New(11)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		f := g.Float64()
		sum += f
		sumSq += f * f
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-0.5) > 0.01 {
		t.Errorf("uniform mean = %v", mean)
	}
	if math.Abs(variance-1.0/12) > 0.01 {
		t.Errorf("uniform variance = %v, want %v", variance, 1.0/12)
	}
}

func TestNormMoments(t *testing.T) {
	n := NewNorm(New(13))
	const count = 200000
	var sum, sumSq, sumCube, sumQuad float64
	for i := 0; i < count; i++ {
		z := n.Next()
		sum += z
		sumSq += z * z
		sumCube += z * z * z
		sumQuad += z * z * z * z
	}
	mean := sum / count
	variance := sumSq / count
	skew := sumCube / count
	kurt := sumQuad / count
	if math.Abs(mean) > 0.02 {
		t.Errorf("normal mean = %v", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("normal variance = %v", variance)
	}
	if math.Abs(skew) > 0.05 {
		t.Errorf("normal skew = %v", skew)
	}
	if math.Abs(kurt-3) > 0.15 {
		t.Errorf("normal kurtosis = %v, want 3", kurt)
	}
}

func TestAntitheticPairs(t *testing.T) {
	a := NewAntithetic(NewNorm(New(5)))
	for i := 0; i < 1000; i++ {
		z1 := a.Next()
		z2 := a.Next()
		if z1 != -z2 {
			t.Fatalf("pair %d not antithetic: %v, %v", i, z1, z2)
		}
	}
}

func TestAntitheticMeanExactlyZero(t *testing.T) {
	a := NewAntithetic(NewNorm(New(5)))
	var sum float64
	for i := 0; i < 10000; i++ {
		sum += a.Next()
	}
	if sum != 0 {
		t.Errorf("antithetic pair sum = %v, want exactly 0", sum)
	}
}

func TestJumpProducesDisjointStreams(t *testing.T) {
	a := New(99)
	b := New(99)
	b.Jump()
	// The jumped stream must differ from the original's early output.
	matches := 0
	for i := 0; i < 1000; i++ {
		if a.Uint64() == b.Uint64() {
			matches++
		}
	}
	if matches > 2 {
		t.Errorf("jumped stream overlaps: %d matches", matches)
	}
}

func TestJumpEquivalenceProperty(t *testing.T) {
	// Two generators with the same seed, each jumped once, stay identical.
	f := func(seed uint64) bool {
		a, b := New(seed), New(seed)
		a.Jump()
		b.Jump()
		for i := 0; i < 16; i++ {
			if a.Uint64() != b.Uint64() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestZeroSeedNotAbsorbing(t *testing.T) {
	g := New(0)
	var any uint64
	for i := 0; i < 10; i++ {
		any |= g.Uint64()
	}
	if any == 0 {
		t.Error("zero seed produced an all-zero stream")
	}
}
