// Package rng provides the random-number machinery for the Monte Carlo
// substrate: a fast, seedable xoshiro256** generator (implemented from
// the published reference algorithm, not wrapped from math/rand, so the
// stream is stable across Go releases), uniform and Gaussian variates
// (Box–Muller and Ziggurat-free polar method), and antithetic wrappers.
// The paper's related work (§II) is dominated by Monte Carlo
// accelerators; this package is the deterministic foundation for the
// reproduction's MC engine.
package rng

import "math"

// splitmix64 seeds the generator state; it is the standard seeding
// function recommended for the xoshiro family.
func splitmix64(x *uint64) uint64 {
	*x += 0x9E3779B97F4A7C15
	z := *x
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Xoshiro256 is the xoshiro256** 1.0 generator of Blackman and Vigna:
// 256 bits of state, period 2^256-1, excellent statistical quality.
type Xoshiro256 struct {
	s [4]uint64
}

// New returns a generator seeded deterministically from seed.
func New(seed uint64) *Xoshiro256 {
	var g Xoshiro256
	sm := seed
	for i := range g.s {
		g.s[i] = splitmix64(&sm)
	}
	// A zero state would be absorbing; splitmix64 cannot produce four
	// zeros from any seed, but guard anyway.
	if g.s[0]|g.s[1]|g.s[2]|g.s[3] == 0 {
		g.s[0] = 1
	}
	return &g
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Uint64 returns the next 64 random bits.
func (g *Xoshiro256) Uint64() uint64 {
	result := rotl(g.s[1]*5, 7) * 9
	t := g.s[1] << 17
	g.s[2] ^= g.s[0]
	g.s[3] ^= g.s[1]
	g.s[1] ^= g.s[2]
	g.s[0] ^= g.s[3]
	g.s[2] ^= t
	g.s[3] = rotl(g.s[3], 45)
	return result
}

// Float64 returns a uniform variate in [0, 1) with 53 random bits.
func (g *Xoshiro256) Float64() float64 {
	return float64(g.Uint64()>>11) * (1.0 / (1 << 53))
}

// Jump advances the generator by 2^128 steps, equivalent to 2^128 calls
// to Uint64; used to give parallel workers non-overlapping substreams.
func (g *Xoshiro256) Jump() {
	jump := [4]uint64{0x180EC6D33CFD0ABA, 0xD5A61266F0C9392C, 0xA9582618E03FC9AA, 0x39ABDC4529B1661C}
	var s0, s1, s2, s3 uint64
	for _, j := range jump {
		for b := 0; b < 64; b++ {
			if j&(1<<uint(b)) != 0 {
				s0 ^= g.s[0]
				s1 ^= g.s[1]
				s2 ^= g.s[2]
				s3 ^= g.s[3]
			}
			g.Uint64()
		}
	}
	g.s[0], g.s[1], g.s[2], g.s[3] = s0, s1, s2, s3
}

// Norm returns a standard normal variate via the Marsaglia polar method
// (exact, no tail truncation), caching the spare deviate.
type Norm struct {
	src   *Xoshiro256
	spare float64
	has   bool
}

// NewNorm returns a Gaussian source over the generator.
func NewNorm(src *Xoshiro256) *Norm { return &Norm{src: src} }

// Next returns the next standard normal variate.
func (n *Norm) Next() float64 {
	if n.has {
		n.has = false
		return n.spare
	}
	for {
		u := 2*n.src.Float64() - 1
		v := 2*n.src.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		f := math.Sqrt(-2 * math.Log(s) / s)
		n.spare = v * f
		n.has = true
		return u * f
	}
}

// Antithetic yields pairs (z, -z) from an underlying Gaussian source —
// the classic variance-reduction device used throughout the option
// pricing Monte Carlo literature.
type Antithetic struct {
	src  *Norm
	last float64
	flip bool
}

// NewAntithetic wraps a Gaussian source.
func NewAntithetic(src *Norm) *Antithetic { return &Antithetic{src: src} }

// Next returns the next variate of the antithetic stream.
func (a *Antithetic) Next() float64 {
	if a.flip {
		a.flip = false
		return -a.last
	}
	a.last = a.src.Next()
	a.flip = true
	return a.last
}
