package perf

import (
	"fmt"

	"binopt/internal/cpumodel"
	"binopt/internal/device"
	"binopt/internal/gpumodel"
)

// GPUIVB estimates the optimized kernel on the GPU.
func GPUIVB(spec device.GPUSpec, steps int, single bool) (Estimate, error) {
	m := gpumodel.New(spec)
	ps, err := m.IVBOptionsPerSec(steps, single)
	if err != nil {
		return Estimate{}, err
	}
	e := Estimate{
		Platform:          spec.Name,
		Kernel:            "IV.B",
		Precision:         precisionName(single),
		OptionsPerSec:     ps,
		PowerWatts:        m.PowerWatts(),
		SaturationOptions: spec.SaturationOptions,
	}
	return finalize(e, steps), nil
}

// GPUIVA estimates the straightforward kernel on the GPU.
func GPUIVA(spec device.GPUSpec, steps int, single, fullReadback bool) (Estimate, error) {
	m := gpumodel.New(spec)
	ps, err := m.IVAOptionsPerSec(steps, single, fullReadback)
	if err != nil {
		return Estimate{}, err
	}
	e := Estimate{
		Platform:          spec.Name,
		Kernel:            "IV.A",
		Precision:         precisionName(single),
		OptionsPerSec:     ps,
		PowerWatts:        m.PowerWatts(),
		SaturationOptions: spec.SaturationOptions,
	}
	return finalize(e, steps), nil
}

// EmbeddedIVB estimates the optimized kernel on one of the paper's
// future-work targets (§VI: "other hardware architectures supporting the
// OpenCL standard [16], [17]"): arithmetic-throughput bound at the
// spec's sustained efficiency, like the GPU model.
func EmbeddedIVB(spec device.EmbeddedSpec, steps int, single bool) (Estimate, error) {
	if steps < 1 {
		return Estimate{}, fmt.Errorf("perf: steps must be positive, got %d", steps)
	}
	peak := spec.PeakDPFlops
	if single {
		peak = spec.PeakSPFlops
	}
	nodes := float64(steps) * float64(steps+1) / 2
	const flopsPerNode = 6
	e := Estimate{
		Platform:      spec.Name,
		Kernel:        "IV.B",
		Precision:     precisionName(single),
		OptionsPerSec: peak * spec.Efficiency / (nodes * flopsPerNode),
		PowerWatts:    spec.TDPWatts,
	}
	return finalize(e, steps), nil
}

// CPUReference estimates the single-core software reference.
func CPUReference(spec device.CPUSpec, steps int, single bool) (Estimate, error) {
	m := cpumodel.New(spec)
	ps, err := m.OptionsPerSec(steps, single)
	if err != nil {
		return Estimate{}, err
	}
	e := Estimate{
		Platform:      spec.Name,
		Kernel:        "reference",
		Precision:     precisionName(single),
		OptionsPerSec: ps,
		PowerWatts:    m.PowerWatts(),
	}
	return finalize(e, steps), nil
}
