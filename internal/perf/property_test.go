package perf

import (
	"testing"
	"testing/quick"

	"binopt/internal/device"
)

// TestThroughputMonotoneInDepth: deeper trees mean more nodes per option,
// so options/s must fall monotonically with N on every platform model.
func TestThroughputMonotoneInDepth(t *testing.T) {
	board := device.DE4()
	fitA, fitB := fits(t)
	gpu := device.GTX660()
	cpu := device.XeonX5450()

	prev := map[string]float64{}
	for _, n := range []int{128, 256, 512, 1024, 2048} {
		cases := map[string]func() (Estimate, error){
			"fpga-ivb": func() (Estimate, error) { return FPGAIVB(board, fitB, n, false, false) },
			"fpga-iva": func() (Estimate, error) { return FPGAIVA(board, fitA, n, false, true) },
			"gpu-ivb":  func() (Estimate, error) { return GPUIVB(gpu, n, false) },
			"gpu-iva":  func() (Estimate, error) { return GPUIVA(gpu, n, false, true) },
			"cpu":      func() (Estimate, error) { return CPUReference(cpu, n, false) },
		}
		for name, f := range cases {
			e, err := f()
			if err != nil {
				t.Fatalf("%s N=%d: %v", name, n, err)
			}
			if p, ok := prev[name]; ok && e.OptionsPerSec >= p {
				t.Errorf("%s: throughput rose with depth at N=%d (%g -> %g)", name, n, p, e.OptionsPerSec)
			}
			prev[name] = e.OptionsPerSec
		}
	}
}

// TestFPGAThroughputScalesWithLanesAndClock: the IV.B estimate must be
// proportional to lanes * Fmax.
func TestFPGAThroughputScalesWithLanesAndClock(t *testing.T) {
	board := device.DE4()
	_, fitB := fits(t)
	base, err := FPGAIVB(board, fitB, 1024, false, false)
	if err != nil {
		t.Fatal(err)
	}
	doubled := fitB
	doubled.NodeLanes *= 2
	est, err := FPGAIVB(board, doubled, 1024, false, false)
	if err != nil {
		t.Fatal(err)
	}
	if ratio := est.OptionsPerSec / base.OptionsPerSec; ratio < 1.99 || ratio > 2.01 {
		t.Errorf("doubling lanes gave %.3fx", ratio)
	}
	slower := fitB
	slower.FmaxMHz /= 2
	est, err = FPGAIVB(board, slower, 1024, false, false)
	if err != nil {
		t.Fatal(err)
	}
	if ratio := est.OptionsPerSec / base.OptionsPerSec; ratio < 0.49 || ratio > 0.51 {
		t.Errorf("halving the clock gave %.3fx", ratio)
	}
}

// TestSaturationThroughputProperties: the ramp is monotone in workload
// and bounded by the peak for any parameters.
func TestSaturationThroughputProperties(t *testing.T) {
	f := func(rawPeak float64, rawSat uint32, rawN uint32) bool {
		peak := 1 + float64(uint32(rawPeak))/1e3
		sat := int64(rawSat%1_000_000) + 10
		n := int64(rawN % 10_000_000)
		tput := SaturationThroughput(peak, sat, n)
		if tput < 0 || tput > peak {
			return false
		}
		return SaturationThroughput(peak, sat, n+1) >= tput
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestSinglePrecisionNeverSlower: halving element size can only help the
// transfer-bound IV.A models.
func TestSinglePrecisionNeverSlower(t *testing.T) {
	board := device.DE4()
	fitA, _ := fits(t)
	d, err := FPGAIVA(board, fitA, 1024, false, true)
	if err != nil {
		t.Fatal(err)
	}
	s, err := FPGAIVA(board, fitA, 1024, true, true)
	if err != nil {
		t.Fatal(err)
	}
	if s.OptionsPerSec < d.OptionsPerSec {
		t.Errorf("single %g slower than double %g on the transfer-bound path", s.OptionsPerSec, d.OptionsPerSec)
	}
}

// TestEmbeddedEstimates sanity-checks the future-work models directly.
func TestEmbeddedEstimates(t *testing.T) {
	for _, spec := range []device.EmbeddedSpec{device.TIKeystone(), device.ARMMali()} {
		d, err := EmbeddedIVB(spec, 1024, false)
		if err != nil {
			t.Fatal(err)
		}
		s, err := EmbeddedIVB(spec, 1024, true)
		if err != nil {
			t.Fatal(err)
		}
		if s.OptionsPerSec <= d.OptionsPerSec {
			t.Errorf("%s: single %g not above double %g", spec.Name, s.OptionsPerSec, d.OptionsPerSec)
		}
		if _, err := EmbeddedIVB(spec, 0, false); err == nil {
			t.Error("zero steps should fail")
		}
	}
}
