// Package perf converts kernel runs into the quantities Table II reports:
// options per second, options per joule, and tree nodes per second, for
// each (kernel, platform, precision) combination, plus the
// workload-dependent saturation behaviour of §V-C. Throughput comes from
// the analytic device models (internal/hls fit reports for the FPGA,
// internal/gpumodel, internal/cpumodel); accuracy (RMSE) is measured
// separately by running the corresponding lattice engine and attached by
// the reporting layer.
package perf

import (
	"fmt"

	"binopt/internal/device"
	"binopt/internal/hls"
)

// Estimate is one performance row.
type Estimate struct {
	Platform        string
	Kernel          string // "IV.A", "IV.B", "reference"
	Precision       string // "double" or "single"
	OptionsPerSec   float64
	PowerWatts      float64
	OptionsPerJoule float64
	NodesPerSec     float64
	// SaturationOptions is the workload at which throughput is within
	// ~10% of OptionsPerSec (zero when not modelled).
	SaturationOptions int64
}

// finalize fills the derived metrics.
func finalize(e Estimate, steps int) Estimate {
	nodes := float64(steps) * float64(steps+1) / 2
	e.OptionsPerJoule = e.OptionsPerSec / e.PowerWatts
	e.NodesPerSec = e.OptionsPerSec * nodes
	return e
}

// String renders the row compactly.
func (e Estimate) String() string {
	return fmt.Sprintf("%s %s (%s): %.4g options/s, %.3g options/J, %.4g nodes/s at %.1f W",
		e.Kernel, e.Platform, e.Precision, e.OptionsPerSec, e.OptionsPerJoule, e.NodesPerSec, e.PowerWatts)
}

// bytesPerNodeIVA is the global traffic of one IV.A node update: the
// time-step table entry, six option constants, three ping values in, two
// pong values out — about 12 element-sized words.
const bytesPerNodeIVA = 12

// precisionName converts the single flag to the Table II label.
func precisionName(single bool) string {
	if single {
		return "single"
	}
	return "double"
}

func elemBytes(single bool) float64 {
	if single {
		return 4
	}
	return 8
}

// FPGAIVB estimates the optimized kernel on an FPGA board, from its fit
// report. leavesOnHost adds the fallback path's host work and transfer.
func FPGAIVB(board device.FPGABoard, fit hls.FitReport, steps int, single, leavesOnHost bool) (Estimate, error) {
	if steps < 1 {
		return Estimate{}, fmt.Errorf("perf: steps must be positive, got %d", steps)
	}
	nodes := float64(steps) * float64(steps+1) / 2
	// Steady-state pipeline: NodeLanes updates per clock.
	optSec := nodes / (float64(fit.NodeLanes) * fit.FmaxMHz * 1e6)

	if leavesOnHost {
		// Host computes the leaves (a multiply per node on the Xeon) and
		// streams them down; neither overlaps with this option's kernel
		// start in the paper's fallback description.
		cpu := device.XeonX5450()
		hostCompute := float64(steps+1) * 4 / cpu.ClockHz
		transfer := float64(steps+1) * elemBytes(single) / (board.PCIe.TheoreticalB / 2)
		optSec += hostCompute + transfer
	}
	e := Estimate{
		Platform:          board.Chip.Name,
		Kernel:            "IV.B",
		Precision:         precisionName(single),
		OptionsPerSec:     1 / optSec,
		PowerWatts:        fit.PowerWatts,
		SaturationOptions: board.SaturationOptions,
	}
	return finalize(e, steps), nil
}

// FPGAIVA estimates the straightforward kernel on an FPGA board. The
// per-batch cost is the DDR-bound node sweep plus the blocking host
// interaction — leaf upload, launch, and the ping-pong readback that
// §V-C identifies as the bottleneck.
func FPGAIVA(board device.FPGABoard, fit hls.FitReport, steps int, single, fullReadback bool) (Estimate, error) {
	if steps < 1 {
		return Estimate{}, fmt.Errorf("perf: steps must be positive, got %d", steps)
	}
	elem := elemBytes(single)
	nodes := float64(steps) * float64(steps+1) / 2

	pipeline := nodes / (float64(fit.NodeLanes) * fit.FmaxMHz * 1e6)
	ddr := nodes * bytesPerNodeIVA * elem / board.DDRBytesPerSec
	kernel := pipeline
	if ddr > kernel {
		kernel = ddr
	}

	bufLen := float64((steps + 1) * (steps + 2) / 2)
	write := float64(steps+1) * 2 * elem / board.PCIe.EffectiveB
	read := elem / board.PCIe.EffectiveB
	if fullReadback {
		read = 2 * bufLen * elem / board.PCIe.EffectiveB
	}
	batch := kernel + write + read + 3*board.PCIe.CommandLatencySec

	e := Estimate{
		Platform:          board.Chip.Name,
		Kernel:            "IV.A",
		Precision:         precisionName(single),
		OptionsPerSec:     1 / batch,
		PowerWatts:        fit.PowerWatts,
		SaturationOptions: board.SaturationOptions,
	}
	return finalize(e, steps), nil
}

// SaturationThroughput returns the achieved throughput for a workload of
// n options given the post-saturation peak: a pipeline-ramp hyperbola
// normalised so the device delivers 90% of peak at its published
// saturation workload, and is linear-time beyond it.
func SaturationThroughput(peak float64, saturationOptions, n int64) float64 {
	if n <= 0 {
		return 0
	}
	n0 := float64(saturationOptions) / 9
	return peak * float64(n) / (float64(n) + n0)
}

// SecondsFor returns the wall time to price n options under the
// saturation model — linear in n with a fixed ramp intercept.
func SecondsFor(peak float64, saturationOptions, n int64) float64 {
	if n <= 0 || peak <= 0 {
		return 0
	}
	n0 := float64(saturationOptions) / 9
	return (float64(n) + n0) / peak
}

// CurvePoint is one sample of the saturation study.
type CurvePoint struct {
	Options       int64
	OptionsPerSec float64
	Seconds       float64
}

// SaturationCurve samples achieved throughput across workloads — the
// regenerable form of the §V-C saturation discussion.
func SaturationCurve(peak float64, saturationOptions int64, workloads []int64) []CurvePoint {
	out := make([]CurvePoint, 0, len(workloads))
	for _, n := range workloads {
		out = append(out, CurvePoint{
			Options:       n,
			OptionsPerSec: SaturationThroughput(peak, saturationOptions, n),
			Seconds:       SecondsFor(peak, saturationOptions, n),
		})
	}
	return out
}
