// Package perf defines the quantities Table II reports — options per
// second, options per joule, and tree nodes per second for each
// (kernel, platform, precision) combination — plus the
// workload-dependent saturation behaviour of §V-C. The per-platform
// estimate builders that fill these rows live in internal/accel, next to
// the device models they consume; this package keeps only the row type
// and the device-independent saturation arithmetic.
package perf

import "fmt"

// Estimate is one performance row.
type Estimate struct {
	Platform        string
	Kernel          string // "IV.A", "IV.B", "reference"
	Precision       string // "double" or "single"
	OptionsPerSec   float64
	PowerWatts      float64
	OptionsPerJoule float64
	NodesPerSec     float64
	// SaturationOptions is the workload at which throughput is within
	// ~10% of OptionsPerSec (zero when not modelled).
	SaturationOptions int64
}

// Finalize fills the derived metrics of a row whose primary throughput
// and power are set.
func Finalize(e Estimate, steps int) Estimate {
	nodes := float64(steps) * float64(steps+1) / 2
	e.OptionsPerJoule = e.OptionsPerSec / e.PowerWatts
	e.NodesPerSec = e.OptionsPerSec * nodes
	return e
}

// String renders the row compactly.
func (e Estimate) String() string {
	return fmt.Sprintf("%s %s (%s): %.4g options/s, %.3g options/J, %.4g nodes/s at %.1f W",
		e.Kernel, e.Platform, e.Precision, e.OptionsPerSec, e.OptionsPerJoule, e.NodesPerSec, e.PowerWatts)
}

// SaturationThroughput returns the achieved throughput for a workload of
// n options given the post-saturation peak: a pipeline-ramp hyperbola
// normalised so the device delivers 90% of peak at its published
// saturation workload, and is linear-time beyond it.
func SaturationThroughput(peak float64, saturationOptions, n int64) float64 {
	if n <= 0 {
		return 0
	}
	n0 := float64(saturationOptions) / 9
	return peak * float64(n) / (float64(n) + n0)
}

// SecondsFor returns the wall time to price n options under the
// saturation model — linear in n with a fixed ramp intercept.
func SecondsFor(peak float64, saturationOptions, n int64) float64 {
	if n <= 0 || peak <= 0 {
		return 0
	}
	n0 := float64(saturationOptions) / 9
	return (float64(n) + n0) / peak
}

// CurvePoint is one sample of the saturation study.
type CurvePoint struct {
	Options       int64
	OptionsPerSec float64
	Seconds       float64
}

// SaturationCurve samples achieved throughput across workloads — the
// regenerable form of the §V-C saturation discussion.
func SaturationCurve(peak float64, saturationOptions int64, workloads []int64) []CurvePoint {
	out := make([]CurvePoint, 0, len(workloads))
	for _, n := range workloads {
		out = append(out, CurvePoint{
			Options:       n,
			OptionsPerSec: SaturationThroughput(peak, saturationOptions, n),
			Seconds:       SecondsFor(peak, saturationOptions, n),
		})
	}
	return out
}
