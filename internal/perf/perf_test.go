package perf

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestSaturationCurveShape(t *testing.T) {
	peak := 2400.0
	sat := int64(100_000)
	points := SaturationCurve(peak, sat, []int64{100, 1000, 10_000, 100_000, 1_000_000})
	for i := 1; i < len(points); i++ {
		if points[i].OptionsPerSec <= points[i-1].OptionsPerSec {
			t.Error("throughput must rise with workload")
		}
	}
	// 90% of peak at the published saturation workload.
	atSat := SaturationThroughput(peak, sat, sat)
	if math.Abs(atSat-0.9*peak) > 1e-9 {
		t.Errorf("throughput at saturation = %.1f, want %.1f", atSat, 0.9*peak)
	}
	// Beyond saturation, time is linear in n: t(2n) - t(n) == n/peak.
	t1 := SecondsFor(peak, sat, 2*sat)
	t0 := SecondsFor(peak, sat, sat)
	if math.Abs((t1-t0)-float64(sat)/peak) > 1e-9 {
		t.Error("post-saturation time must be linear in workload")
	}
}

func TestSaturationEdgeCases(t *testing.T) {
	if got := SaturationThroughput(1000, 1000, 0); got != 0 {
		t.Errorf("zero workload throughput = %v", got)
	}
	if got := SecondsFor(1000, 1000, 0); got != 0 {
		t.Errorf("zero workload time = %v", got)
	}
	if got := SecondsFor(0, 1000, 10); got != 0 {
		t.Errorf("zero peak time = %v", got)
	}
}

// TestSaturationThroughputProperties: the ramp is monotone in workload
// and bounded by the peak for any parameters.
func TestSaturationThroughputProperties(t *testing.T) {
	f := func(rawPeak float64, rawSat uint32, rawN uint32) bool {
		peak := 1 + float64(uint32(rawPeak))/1e3
		sat := int64(rawSat%1_000_000) + 10
		n := int64(rawN % 10_000_000)
		tput := SaturationThroughput(peak, sat, n)
		if tput < 0 || tput > peak {
			return false
		}
		return SaturationThroughput(peak, sat, n+1) >= tput
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestFinalizeDerivedMetrics(t *testing.T) {
	e := Finalize(Estimate{OptionsPerSec: 100, PowerWatts: 20}, 4)
	if e.OptionsPerJoule != 5 {
		t.Errorf("options/J = %v, want 5", e.OptionsPerJoule)
	}
	if e.NodesPerSec != 100*10 { // 4*5/2 = 10 nodes per option
		t.Errorf("nodes/s = %v, want 1000", e.NodesPerSec)
	}
}

func TestEstimateString(t *testing.T) {
	e := Estimate{Platform: "X", Kernel: "IV.B", Precision: "double",
		OptionsPerSec: 2400, PowerWatts: 17, OptionsPerJoule: 141, NodesPerSec: 1.26e9}
	s := e.String()
	if !strings.Contains(s, "IV.B") || !strings.Contains(s, "options/J") {
		t.Errorf("String: %q", s)
	}
}
