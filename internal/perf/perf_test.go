package perf

import (
	"math"
	"strings"
	"testing"

	"binopt/internal/device"
	"binopt/internal/hls"
	"binopt/internal/kernels"
)

func fits(t *testing.T) (hls.FitReport, hls.FitReport) {
	t.Helper()
	board := device.DE4()
	fitA, err := hls.Fit(board, kernels.ProfileIVA(), kernels.PaperKnobsIVA())
	if err != nil {
		t.Fatal(err)
	}
	fitB, err := hls.Fit(board, kernels.ProfileIVB(1024), kernels.PaperKnobsIVB())
	if err != nil {
		t.Fatal(err)
	}
	return fitA, fitB
}

func within(t *testing.T, name string, got, want, relTol float64) {
	t.Helper()
	rel := math.Abs(got-want) / math.Abs(want)
	if rel > relTol {
		t.Errorf("%s = %.4g, paper reports %.4g (off %.0f%%)", name, got, want, 100*rel)
	} else {
		t.Logf("%s = %.4g vs paper %.4g (%.1f%%)", name, got, want, 100*rel)
	}
}

// TestTable2FPGA reproduces the FPGA columns of Table II.
func TestTable2FPGA(t *testing.T) {
	fitA, fitB := fits(t)
	board := device.DE4()

	a, err := FPGAIVA(board, fitA, 1024, false, true)
	if err != nil {
		t.Fatal(err)
	}
	within(t, "IV.A FPGA options/s", a.OptionsPerSec, 25, 0.15)
	within(t, "IV.A FPGA options/J", a.OptionsPerJoule, 1.7, 0.15)
	within(t, "IV.A FPGA nodes/s", a.NodesPerSec, 13e6, 0.15)

	b, err := FPGAIVB(board, fitB, 1024, false, false)
	if err != nil {
		t.Fatal(err)
	}
	within(t, "IV.B FPGA options/s", b.OptionsPerSec, 2400, 0.12)
	within(t, "IV.B FPGA options/J", b.OptionsPerJoule, 140, 0.12)
	within(t, "IV.B FPGA nodes/s", b.NodesPerSec, 1.3e9, 0.12)

	// The headline claim: more than 2000 options per second on the DE4.
	if b.OptionsPerSec < 2000 {
		t.Errorf("IV.B FPGA = %.0f options/s, the paper's use case needs > 2000", b.OptionsPerSec)
	}
}

// TestTable2GPU reproduces the GPU columns.
func TestTable2GPU(t *testing.T) {
	spec := device.GTX660()
	a, err := GPUIVA(spec, 1024, false, true)
	if err != nil {
		t.Fatal(err)
	}
	within(t, "IV.A GPU options/s", a.OptionsPerSec, 53, 0.12)
	within(t, "IV.A GPU options/J", a.OptionsPerJoule, 0.4, 0.15)

	bd, err := GPUIVB(spec, 1024, false)
	if err != nil {
		t.Fatal(err)
	}
	within(t, "IV.B GPU double options/s", bd.OptionsPerSec, 8900, 0.05)
	within(t, "IV.B GPU double options/J", bd.OptionsPerJoule, 64, 0.05)
	within(t, "IV.B GPU double nodes/s", bd.NodesPerSec, 4.7e9, 0.05)

	bs, err := GPUIVB(spec, 1024, true)
	if err != nil {
		t.Fatal(err)
	}
	within(t, "IV.B GPU single options/s", bs.OptionsPerSec, 47000, 0.05)
	within(t, "IV.B GPU single options/J", bs.OptionsPerJoule, 340, 0.05)
}

// TestTable2Reference reproduces the software reference columns.
func TestTable2Reference(t *testing.T) {
	spec := device.XeonX5450()
	d, err := CPUReference(spec, 1024, false)
	if err != nil {
		t.Fatal(err)
	}
	within(t, "reference double options/s", d.OptionsPerSec, 222, 0.05)
	within(t, "reference double options/J", d.OptionsPerJoule, 1.85, 0.05)
	within(t, "reference double nodes/s", d.NodesPerSec, 117e6, 0.05)

	s, err := CPUReference(spec, 1024, true)
	if err != nil {
		t.Fatal(err)
	}
	within(t, "reference single options/s", s.OptionsPerSec, 116, 0.05)
	within(t, "reference single options/J", s.OptionsPerJoule, 1.0, 0.05)
}

// TestPaperHeadlineRatios checks the shape claims of §V-C.
func TestPaperHeadlineRatios(t *testing.T) {
	fitA, fitB := fits(t)
	board := device.DE4()
	fpgaB, _ := FPGAIVB(board, fitB, 1024, false, false)
	gpuB, _ := GPUIVB(device.GTX660(), 1024, false)
	ref, _ := CPUReference(device.XeonX5450(), 1024, false)
	fpgaA, _ := FPGAIVA(board, fitA, 1024, false, true)

	// "the implementation on the DE4 board is 2 times more energy-
	// efficient than the GPU implementation"
	if r := fpgaB.OptionsPerJoule / gpuB.OptionsPerJoule; r < 1.8 || r > 2.6 {
		t.Errorf("FPGA/GPU energy ratio = %.2f, paper reports ~2.2", r)
	}
	// "more than 5 times more energy efficient than the software
	// reference" (140 / 1.85 is in fact ~75; the 5x sentence compares
	// J/option at matched throughput elsewhere — assert the hard
	// dominance).
	if r := fpgaB.OptionsPerJoule / ref.OptionsPerJoule; r < 5 {
		t.Errorf("FPGA/reference energy ratio = %.1f, want > 5", r)
	}
	// GPU wins raw speed by a moderate factor: "the number of options/s
	// computed by the GTX660 and the FPGA version are within a factor 5
	// of each other".
	if r := gpuB.OptionsPerSec / fpgaB.OptionsPerSec; r < 2 || r > 5 {
		t.Errorf("GPU/FPGA speed ratio = %.2f, paper reports within a factor 5", r)
	}
	// Kernel IV.A is catastrophically slower than IV.B on the same board.
	if r := fpgaB.OptionsPerSec / fpgaA.OptionsPerSec; r < 50 {
		t.Errorf("IV.B/IV.A FPGA ratio = %.0f, expected ~100x", r)
	}
}

func TestSaturationCurveShape(t *testing.T) {
	peak := 2400.0
	sat := int64(100_000)
	points := SaturationCurve(peak, sat, []int64{100, 1000, 10_000, 100_000, 1_000_000})
	for i := 1; i < len(points); i++ {
		if points[i].OptionsPerSec <= points[i-1].OptionsPerSec {
			t.Error("throughput must rise with workload")
		}
	}
	// 90% of peak at the published saturation workload.
	atSat := SaturationThroughput(peak, sat, sat)
	if math.Abs(atSat-0.9*peak) > 1e-9 {
		t.Errorf("throughput at saturation = %.1f, want %.1f", atSat, 0.9*peak)
	}
	// Beyond saturation, time is linear in n: t(2n) - t(n) == n/peak.
	t1 := SecondsFor(peak, sat, 2*sat)
	t0 := SecondsFor(peak, sat, sat)
	if math.Abs((t1-t0)-float64(sat)/peak) > 1e-9 {
		t.Error("post-saturation time must be linear in workload")
	}
}

func TestSaturationGPUNeedsTenTimesMore(t *testing.T) {
	// §V-C: the GPU "needs a more important workload to reach optimal
	// performances (ten times as many)".
	fpga := device.DE4().SaturationOptions
	gpu := device.GTX660().SaturationOptions
	if gpu != 10*fpga {
		t.Errorf("saturation workloads: gpu %d vs fpga %d, want 10x", gpu, fpga)
	}
}

func TestSaturationEdgeCases(t *testing.T) {
	if got := SaturationThroughput(1000, 1000, 0); got != 0 {
		t.Errorf("zero workload throughput = %v", got)
	}
	if got := SecondsFor(1000, 1000, 0); got != 0 {
		t.Errorf("zero workload time = %v", got)
	}
	if got := SecondsFor(0, 1000, 10); got != 0 {
		t.Errorf("zero peak time = %v", got)
	}
}

func TestLeavesOnHostSlowsIVB(t *testing.T) {
	_, fitB := fits(t)
	board := device.DE4()
	fast, err := FPGAIVB(board, fitB, 1024, false, false)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := FPGAIVB(board, fitB, 1024, false, true)
	if err != nil {
		t.Fatal(err)
	}
	if slow.OptionsPerSec >= fast.OptionsPerSec {
		t.Error("host-side leaves must cost throughput (paper: 'to the detriment of speed')")
	}
	// But the penalty is bounded — the fallback remains a usable plan.
	if slow.OptionsPerSec < 0.5*fast.OptionsPerSec {
		t.Errorf("host-leaves penalty too large: %.0f vs %.0f options/s",
			slow.OptionsPerSec, fast.OptionsPerSec)
	}
}

func TestPowerCapMeetsBudget(t *testing.T) {
	// §V-C workaround: derate the clock until the 10 W budget holds, and
	// check the derated design still beats the 2000 options/s target.
	_, fitB := fits(t)
	board := device.DE4()
	capped, err := fitB.CapPower(board.Chip, 10)
	if err != nil {
		t.Fatal(err)
	}
	if capped.PowerWatts > 10+1e-9 {
		t.Errorf("capped power = %.2f W", capped.PowerWatts)
	}
	if capped.FmaxMHz >= fitB.FmaxMHz {
		t.Error("capping must lower the clock")
	}
	est, err := FPGAIVB(board, capped, 1024, false, false)
	if err != nil {
		t.Fatal(err)
	}
	// Derating the clock to 10 W keeps ~40% of throughput (the static
	// power floor eats the budget) — under 2000 options/s, which is why
	// the paper concedes that a less power-hungry *board*, not just a
	// slower clock, is needed to meet both constraints at once.
	if est.OptionsPerSec < 800 || est.OptionsPerSec > 2000 {
		t.Errorf("10 W derated design = %.0f options/s; expected ~1000 (under the 2000 target)", est.OptionsPerSec)
	}
	// Derating also *hurts* energy efficiency: the static watts amortise
	// over fewer options.
	if est.OptionsPerJoule >= fitBEst(t, board, fitB).OptionsPerJoule {
		t.Error("derated design should be less energy-efficient than full speed")
	}
	// Impossible budget: below static power.
	if _, err := fitB.CapPower(board.Chip, 1); err == nil {
		t.Error("budget below static power should fail")
	}
	// Already within budget: unchanged.
	same, err := fitB.CapPower(board.Chip, 100)
	if err != nil {
		t.Fatal(err)
	}
	if same.FmaxMHz != fitB.FmaxMHz {
		t.Error("generous budget should not derate")
	}
}

func fitBEst(t *testing.T, board device.FPGABoard, fit hls.FitReport) Estimate {
	t.Helper()
	e, err := FPGAIVB(board, fit, 1024, false, false)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestEstimateString(t *testing.T) {
	e := Estimate{Platform: "X", Kernel: "IV.B", Precision: "double",
		OptionsPerSec: 2400, PowerWatts: 17, OptionsPerJoule: 141, NodesPerSec: 1.26e9}
	s := e.String()
	if !strings.Contains(s, "IV.B") || !strings.Contains(s, "options/J") {
		t.Errorf("String: %q", s)
	}
}

func TestValidationErrors(t *testing.T) {
	fitA, fitB := fits(t)
	board := device.DE4()
	if _, err := FPGAIVA(board, fitA, 0, false, true); err == nil {
		t.Error("zero steps should fail")
	}
	if _, err := FPGAIVB(board, fitB, -1, false, false); err == nil {
		t.Error("negative steps should fail")
	}
	if _, err := GPUIVA(device.GTX660(), 0, false, true); err == nil {
		t.Error("zero steps should fail")
	}
	if _, err := GPUIVB(device.GTX660(), 0, false); err == nil {
		t.Error("zero steps should fail")
	}
	if _, err := CPUReference(device.XeonX5450(), 0, false); err == nil {
		t.Error("zero steps should fail")
	}
}
