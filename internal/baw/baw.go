// Package baw implements the Barone-Adesi–Whaley (1987) quadratic
// approximation for American options: a closed-form-speed estimate of the
// early-exercise premium, the standard "fast but approximate" point in
// the solver landscape the binomial accelerator competes against. A
// full lattice run costs ~500k node updates at N=1024; BAW costs a dozen
// Newton iterations — at roughly 1e-2 relative accuracy.
package baw

import (
	"fmt"
	"math"

	"binopt/internal/bs"
	"binopt/internal/mathx"
	"binopt/internal/option"
)

// maxIter bounds the critical-price Newton iteration.
const maxIter = 200

// Price returns the BAW approximation of an American option value.
// European contracts are delegated to the exact closed form.
func Price(o option.Option) (float64, error) {
	if err := o.Validate(); err != nil {
		return 0, err
	}
	if o.Style == option.European {
		return bs.Price(o)
	}
	euro := o
	euro.Style = option.European
	euroPrice, err := bs.Price(euro)
	if err != nil {
		return 0, err
	}
	// Without dividends an American call is the European call.
	if o.Right == option.Call && o.Div == 0 {
		return euroPrice, nil
	}

	sigma2 := o.Sigma * o.Sigma
	m := 2 * o.Rate / sigma2
	n := 2 * (o.Rate - o.Div) / sigma2
	k := 1 - math.Exp(-o.Rate*o.T)
	if k == 0 {
		// Zero rates: no time value of waiting for the strike leg; the
		// quadratic approximation degenerates. The American put equals
		// the European one when r = 0 (no early-exercise incentive), the
		// call likewise when additionally q = 0 (handled above).
		return euroPrice, nil
	}

	if o.Right == option.Call {
		q2 := (-(n - 1) + math.Sqrt((n-1)*(n-1)+4*m/k)) / 2
		sStar, err := criticalPrice(o, q2, true)
		if err != nil {
			return 0, err
		}
		if o.Spot >= sStar {
			return o.Spot - o.Strike, nil
		}
		a2 := (sStar / q2) * (1 - math.Exp(-o.Div*o.T)*mathx.NormCDF(d1(o, sStar)))
		return euroPrice + a2*math.Pow(o.Spot/sStar, q2), nil
	}

	q1 := (-(n - 1) - math.Sqrt((n-1)*(n-1)+4*m/k)) / 2
	sStar, err := criticalPrice(o, q1, false)
	if err != nil {
		return 0, err
	}
	if o.Spot <= sStar {
		return o.Strike - o.Spot, nil
	}
	a1 := -(sStar / q1) * (1 - math.Exp(-o.Div*o.T)*mathx.NormCDF(-d1(o, sStar)))
	return euroPrice + a1*math.Pow(o.Spot/sStar, q1), nil
}

// d1 is the Black-Scholes d1 evaluated at spot s.
func d1(o option.Option, s float64) float64 {
	return (math.Log(s/o.Strike) + (o.Rate-o.Div+0.5*o.Sigma*o.Sigma)*o.T) /
		(o.Sigma * math.Sqrt(o.T))
}

// criticalPrice solves the BAW smooth-pasting condition for the
// early-exercise boundary by damped Newton iteration.
func criticalPrice(o option.Option, q float64, call bool) (float64, error) {
	// Seed at the perpetual boundary blended toward the strike.
	s := o.Strike
	if call {
		s = o.Strike * 1.2
	} else {
		s = o.Strike * 0.8
	}
	dfDiv := math.Exp(-o.Div * o.T)
	volSqrtT := o.Sigma * math.Sqrt(o.T)

	for i := 0; i < maxIter; i++ {
		eo := o
		eo.Style = option.European
		eo.Spot = s
		euro, err := bs.Price(eo)
		if err != nil {
			return 0, err
		}
		nd1 := mathx.NormCDF(d1(o, s))
		var f, fp float64
		if call {
			// f(S) = euro + (1 - dfDiv*N(d1)) S/q - (S - K) = 0
			f = euro + (1-dfDiv*nd1)*s/q - (s - o.Strike)
			// f'(S) ~ delta + (1 - dfDiv*N(d1))/q - 1 (the N' term is
			// second order; damped Newton tolerates the approximation)
			fp = dfDiv*nd1 + (1-dfDiv*nd1)/q - 1 - dfDiv*mathx.NormPDF(d1(o, s))/(q*volSqrtT)
		} else {
			nmd1 := mathx.NormCDF(-d1(o, s))
			f = euro - (1-dfDiv*nmd1)*s/q - (o.Strike - s)
			fp = -dfDiv*nmd1 - (1-dfDiv*nmd1)/q + 1 - dfDiv*mathx.NormPDF(d1(o, s))/(q*volSqrtT)
		}
		if math.Abs(f) < 1e-10*o.Strike {
			return s, nil
		}
		if fp == 0 || math.IsNaN(fp) {
			break
		}
		step := f / fp
		// Damping keeps the iterate positive and inside a sane band.
		next := s - step
		if next <= 0.05*o.Strike {
			next = 0.5 * (s + 0.05*o.Strike)
		}
		if next >= 20*o.Strike {
			next = 0.5 * (s + 20*o.Strike)
		}
		if math.Abs(next-s) < 1e-12*o.Strike {
			return next, nil
		}
		s = next
	}
	return 0, fmt.Errorf("baw: critical price iteration did not converge for %s", o.String())
}
