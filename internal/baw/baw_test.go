package baw

import (
	"math"
	"testing"

	"binopt/internal/bs"
	"binopt/internal/lattice"
	"binopt/internal/option"
)

func amPut() option.Option {
	return option.Option{
		Right: option.Put, Style: option.American,
		Spot: 100, Strike: 105, Rate: 0.03, Sigma: 0.2, T: 0.5,
	}
}

func latticeRef(t *testing.T, o option.Option) float64 {
	t.Helper()
	e, err := lattice.NewEngine(4096)
	if err != nil {
		t.Fatal(err)
	}
	v, err := e.Price(o)
	if err != nil {
		t.Fatal(err)
	}
	return v
}

func TestPutApproximationAccuracy(t *testing.T) {
	// BAW is a ~1% approximation across ordinary parameter ranges.
	for _, k := range []float64{85, 95, 105, 115} {
		o := amPut()
		o.Strike = k
		got, err := Price(o)
		if err != nil {
			t.Fatal(err)
		}
		ref := latticeRef(t, o)
		if rel := math.Abs(got-ref) / math.Max(ref, 0.5); rel > 0.02 {
			t.Errorf("K=%v: BAW %v vs lattice %v (rel %g)", k, got, ref, rel)
		}
	}
}

func TestCallWithDividends(t *testing.T) {
	o := amPut()
	o.Right = option.Call
	o.Strike = 95
	o.Div = 0.06
	got, err := Price(o)
	if err != nil {
		t.Fatal(err)
	}
	ref := latticeRef(t, o)
	if rel := math.Abs(got-ref) / ref; rel > 0.02 {
		t.Errorf("BAW call %v vs lattice %v (rel %g)", got, ref, rel)
	}
}

func TestCallNoDividendsIsEuropean(t *testing.T) {
	o := amPut()
	o.Right = option.Call
	got, err := Price(o)
	if err != nil {
		t.Fatal(err)
	}
	euro := o
	euro.Style = option.European
	want, err := bs.Price(euro)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("no-dividend american call %v != european %v", got, want)
	}
}

func TestEuropeanDelegates(t *testing.T) {
	o := amPut()
	o.Style = option.European
	got, err := Price(o)
	if err != nil {
		t.Fatal(err)
	}
	want, err := bs.Price(o)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("european delegation broken: %v vs %v", got, want)
	}
}

func TestDeepITMPutIsIntrinsic(t *testing.T) {
	o := amPut()
	o.Spot = 40
	o.Strike = 100
	o.Rate = 0.08
	got, err := Price(o)
	if err != nil {
		t.Fatal(err)
	}
	if got != 60 {
		t.Errorf("deep ITM put = %v, want intrinsic 60", got)
	}
}

func TestAmericanAboveEuropean(t *testing.T) {
	o := amPut()
	am, err := Price(o)
	if err != nil {
		t.Fatal(err)
	}
	euro := o
	euro.Style = option.European
	eu, err := bs.Price(euro)
	if err != nil {
		t.Fatal(err)
	}
	if am < eu {
		t.Errorf("BAW american %v below european %v", am, eu)
	}
}

func TestZeroRatePutEqualsEuropean(t *testing.T) {
	o := amPut()
	o.Rate = 0
	got, err := Price(o)
	if err != nil {
		t.Fatal(err)
	}
	euro := o
	euro.Style = option.European
	want, err := bs.Price(euro)
	if err != nil {
		t.Fatal(err)
	}
	if got != want {
		t.Errorf("r=0 put: %v vs european %v", got, want)
	}
}

func TestValidation(t *testing.T) {
	bad := amPut()
	bad.Sigma = -1
	if _, err := Price(bad); err == nil {
		t.Error("invalid option should fail")
	}
}
