package volatility

import (
	"errors"
	"math"
	"testing"

	"binopt/internal/bs"
	"binopt/internal/lattice"
	"binopt/internal/option"
)

func euro() option.Option {
	return option.Option{
		Right: option.Put, Style: option.European,
		Spot: 100, Strike: 105, Rate: 0.03, Sigma: 0.2, T: 0.5,
	}
}

// solvers under test, by name.
var solvers = map[string]func(float64, option.Option, PriceFunc, float64, int) (float64, error){
	"bisect": Bisect,
	"newton": Newton,
	"brent":  Brent,
}

func TestRoundTripBlackScholes(t *testing.T) {
	// Price at a known sigma with the closed form, then recover it.
	for name, solve := range solvers {
		for _, trueSigma := range []float64{0.08, 0.2, 0.45, 0.9} {
			o := euro()
			o.Sigma = trueSigma
			price, err := bs.Price(o)
			if err != nil {
				t.Fatal(err)
			}
			got, err := solve(price, o, bs.Price, 0, 0)
			if err != nil {
				t.Fatalf("%s sigma=%v: %v", name, trueSigma, err)
			}
			if math.Abs(got-trueSigma) > 1e-5 {
				t.Errorf("%s: recovered %v, want %v", name, got, trueSigma)
			}
		}
	}
}

func TestRoundTripLatticeAmerican(t *testing.T) {
	// The real use case: invert an American binomial price.
	eng, err := lattice.NewEngine(128)
	if err != nil {
		t.Fatal(err)
	}
	pf := PriceFunc(eng.Price)
	o := euro()
	o.Style = option.American
	o.Sigma = 0.27
	price, err := eng.Price(o)
	if err != nil {
		t.Fatal(err)
	}
	for name, solve := range solvers {
		got, err := solve(price, o, pf, 0, 0)
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if math.Abs(got-0.27) > 1e-4 {
			t.Errorf("%s: recovered %v, want 0.27", name, got)
		}
	}
}

func TestQuoteValidation(t *testing.T) {
	o := euro()
	for name, solve := range solvers {
		if _, err := solve(-1, o, bs.Price, 0, 0); err == nil {
			t.Errorf("%s: negative price should fail", name)
		}
		if _, err := solve(0, o, bs.Price, 0, 0); err == nil {
			t.Errorf("%s: zero price should fail", name)
		}
		// Put priced above strike is impossible.
		if _, err := solve(200, o, bs.Price, 0, 0); err == nil {
			t.Errorf("%s: impossible put quote should fail", name)
		}
		call := o
		call.Right = option.Call
		if _, err := solve(150, call, bs.Price, 0, 0); err == nil {
			t.Errorf("%s: call above spot should fail", name)
		}
	}
}

func TestUnattainableQuote(t *testing.T) {
	// A price below the zero-volatility floor of an ITM European put is
	// valid-looking but unattainable.
	o := euro()
	o.Strike = 150
	floor, err := bs.Price(func() option.Option { oo := o; oo.Sigma = VolMin; return oo }())
	if err != nil {
		t.Fatal(err)
	}
	bad := floor * 0.5
	if _, err := Bisect(bad, o, bs.Price, 0, 0); err == nil {
		t.Error("bisect: below-floor quote should fail")
	}
	if _, err := Brent(bad, o, bs.Price, 0, 0); err == nil {
		t.Error("brent: below-floor quote should fail")
	}
}

func TestNewtonFallsBackNearZeroVega(t *testing.T) {
	// Moderately ITM short-dated options have small vega: Newton must
	// not explode, just fall back and still converge.
	o := euro()
	o.Strike = 125
	o.T = 0.15
	o.Sigma = 0.35
	price, err := bs.Price(o)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Newton(price, o, bs.Price, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if back, _ := bs.Price(func() option.Option { oo := o; oo.Sigma = got; return oo }()); math.Abs(back-price) > 1e-6 {
		t.Errorf("recovered sigma reprices to %v, want %v", back, price)
	}
}

func TestExtremeITMQuoteHasNoVolInfo(t *testing.T) {
	// So deep in the money that the price is flat in sigma to within the
	// tolerance: the solvers must classify it rather than return an
	// arbitrary sigma.
	o := euro()
	o.Strike = 180
	o.T = 0.05
	o.Sigma = 0.3
	price, err := bs.Price(o)
	if err != nil {
		t.Fatal(err)
	}
	for name, solve := range solvers {
		if _, err := solve(price, o, bs.Price, 0, 0); !errors.Is(err, ErrNoVolInfo) {
			t.Errorf("%s: err = %v, want ErrNoVolInfo", name, err)
		}
	}
}

func TestSolverEfficiencyOrdering(t *testing.T) {
	// Brent should need far fewer pricings than bisection.
	count := func(solve func(float64, option.Option, PriceFunc, float64, int) (float64, error)) int {
		n := 0
		pf := func(o option.Option) (float64, error) {
			n++
			return bs.Price(o)
		}
		o := euro()
		o.Sigma = 0.33
		price, err := bs.Price(o)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := solve(price, o, pf, 0, 0); err != nil {
			t.Fatal(err)
		}
		return n
	}
	nBisect := count(Bisect)
	nBrent := count(Brent)
	if nBrent >= nBisect {
		t.Errorf("brent used %d pricings vs bisect %d; expected fewer", nBrent, nBisect)
	}
}
