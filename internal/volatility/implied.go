// Package volatility recovers implied volatilities from option quotes —
// the decision-aid use case that motivates the paper's accelerator: "a
// trader can use our work to estimate the implied volatility curve of an
// option ... A second per volatility curve (2000 option values per
// volatility curve for accuracy considerations)" (§I). The solvers are
// generic over the pricing engine, so the same curve can be produced by
// the reference software or by either OpenCL kernel.
package volatility

import (
	"errors"
	"fmt"
	"math"

	"binopt/internal/bs"
	"binopt/internal/option"
)

// ErrNoVolInfo marks a quote sitting on the zero-volatility price floor —
// typically a deep in-the-money American option pinned at intrinsic
// value, whose price is flat in sigma. No implied volatility is defined
// there; curve construction skips such quotes, as trading desks do.
var ErrNoVolInfo = errors.New("volatility: quote at the zero-volatility floor carries no volatility information")

// PriceFunc prices a contract; the sigma to invert is carried inside the
// option. The lattice engines and the Black–Scholes closed form both
// satisfy it directly.
type PriceFunc func(option.Option) (float64, error)

// Solver bounds and defaults.
const (
	// VolMin and VolMax bracket every realistic implied volatility.
	// VolMin stays above the CRR feasibility bound sigma > |r-q|*sqrt(dt)
	// (below it the risk-neutral probability leaves (0,1) and lattice
	// pricers reject the contract).
	VolMin = 5e-3
	VolMax = 4.0
	// DefaultTol is the price-space convergence tolerance.
	DefaultTol = 1e-8
	// DefaultMaxIter bounds all iterative solvers.
	DefaultMaxIter = 100
)

// evalAt prices the contract at volatility sigma.
func evalAt(pf PriceFunc, o option.Option, sigma float64) (float64, error) {
	o.Sigma = sigma
	return pf(o)
}

// checkQuote rejects prices that no volatility can explain: below the
// zero-volatility floor or above the spot bound.
func checkQuote(price float64, o option.Option) error {
	if math.IsNaN(price) || price <= 0 {
		return fmt.Errorf("volatility: quote %v is not a positive price", price)
	}
	if o.Right == option.Call && price > o.Spot {
		return fmt.Errorf("volatility: call quote %v above spot %v has no implied volatility", price, o.Spot)
	}
	if o.Right == option.Put && price > o.Strike {
		return fmt.Errorf("volatility: put quote %v above strike %v has no implied volatility", price, o.Strike)
	}
	return nil
}

// floorCheck prices the contract at the volatility floor and classifies
// the quote: below the floor it is unattainable, on the floor it carries
// no volatility information, above it inversion can proceed.
func floorCheck(price float64, o option.Option, pf PriceFunc, tol float64) (float64, error) {
	floor, err := evalAt(pf, o, VolMin)
	if err != nil {
		return 0, err
	}
	switch {
	case price < floor-tol:
		return floor, fmt.Errorf("volatility: quote %v below the zero-volatility floor %v", price, floor)
	case price <= floor+tol:
		return floor, ErrNoVolInfo
	default:
		return floor, nil
	}
}

// Bisect recovers the implied volatility by bisection on [VolMin,
// VolMax]. Robust and derivative-free; about 30-45 pricings per quote.
func Bisect(price float64, o option.Option, pf PriceFunc, tol float64, maxIter int) (float64, error) {
	if err := checkQuote(price, o); err != nil {
		return 0, err
	}
	if tol <= 0 {
		tol = DefaultTol
	}
	if maxIter <= 0 {
		maxIter = DefaultMaxIter
	}
	if _, err := floorCheck(price, o, pf, tol); err != nil {
		return 0, err
	}
	lo, hi := VolMin, VolMax
	fHi, err := evalAt(pf, o, hi)
	if err != nil {
		return 0, err
	}
	if price > fHi+tol {
		return 0, fmt.Errorf("volatility: quote %v above the maximum attainable price %v", price, fHi)
	}
	var mid float64
	for i := 0; i < maxIter; i++ {
		mid = 0.5 * (lo + hi)
		v, err := evalAt(pf, o, mid)
		if err != nil {
			return 0, err
		}
		if math.Abs(v-price) < tol || hi-lo < 1e-12 {
			return mid, nil
		}
		if v < price {
			lo = mid
		} else {
			hi = mid
		}
	}
	return mid, nil
}

// Newton recovers the implied volatility by Newton–Raphson using the
// Black–Scholes vega as the slope (the standard quasi-Newton for lattice
// pricers, whose own vega is not analytic). Falls back to bisection when
// the iteration leaves the bracket or stalls.
func Newton(price float64, o option.Option, pf PriceFunc, tol float64, maxIter int) (float64, error) {
	if err := checkQuote(price, o); err != nil {
		return 0, err
	}
	if tol <= 0 {
		tol = DefaultTol
	}
	if maxIter <= 0 {
		maxIter = DefaultMaxIter
	}
	if _, err := floorCheck(price, o, pf, tol); err != nil {
		return 0, err
	}
	sigma := 0.3 // standard starting point
	for i := 0; i < maxIter; i++ {
		v, err := evalAt(pf, o, sigma)
		if err != nil {
			return 0, err
		}
		diff := v - price
		if math.Abs(diff) < tol {
			return sigma, nil
		}
		vegaOpt := o
		vegaOpt.Sigma = sigma
		vega, err := bs.Vega(vegaOpt)
		if err != nil || vega < 1e-10 {
			break // flat slope: bisection territory
		}
		next := sigma - diff/vega
		if next <= VolMin || next >= VolMax || math.IsNaN(next) {
			break
		}
		if math.Abs(next-sigma) < 1e-12 {
			return next, nil
		}
		sigma = next
	}
	return Bisect(price, o, pf, tol, maxIter)
}

// Brent recovers the implied volatility with Brent's method: bracketing
// with inverse quadratic interpolation, the best of both worlds at ~10-15
// pricings per quote.
func Brent(price float64, o option.Option, pf PriceFunc, tol float64, maxIter int) (float64, error) {
	if err := checkQuote(price, o); err != nil {
		return 0, err
	}
	if tol <= 0 {
		tol = DefaultTol
	}
	if maxIter <= 0 {
		maxIter = DefaultMaxIter
	}
	floor, err := floorCheck(price, o, pf, tol)
	if err != nil {
		return 0, err
	}
	f := func(sigma float64) (float64, error) {
		v, err := evalAt(pf, o, sigma)
		return v - price, err
	}
	a, b := VolMin, VolMax
	fa := floor - price
	fb, err := f(b)
	if err != nil {
		return 0, err
	}
	if fa*fb > 0 {
		return 0, fmt.Errorf("volatility: quote %v not bracketed by [%v, %v]", price, VolMin, VolMax)
	}
	if math.Abs(fa) < math.Abs(fb) {
		a, b, fa, fb = b, a, fb, fa
	}
	c, fc := a, fa
	d := b - a
	mflag := true
	for i := 0; i < maxIter; i++ {
		if math.Abs(fb) < tol {
			return b, nil
		}
		var s float64
		//binopt:ignore floateq Brent's method guard: exact inequality is what keeps the IQI denominators nonzero
		if fa != fc && fb != fc {
			// Inverse quadratic interpolation.
			s = a*fb*fc/((fa-fb)*(fa-fc)) +
				b*fa*fc/((fb-fa)*(fb-fc)) +
				c*fa*fb/((fc-fa)*(fc-fb))
		} else {
			// Secant.
			s = b - fb*(b-a)/(fb-fa)
		}
		lo, hi := (3*a+b)/4, b
		if lo > hi {
			lo, hi = hi, lo
		}
		cond := s < lo || s > hi ||
			(mflag && math.Abs(s-b) >= math.Abs(b-c)/2) ||
			(!mflag && math.Abs(s-b) >= math.Abs(c-d)/2) ||
			(mflag && math.Abs(b-c) < 1e-14) ||
			(!mflag && math.Abs(c-d) < 1e-14)
		if cond {
			s = 0.5 * (a + b)
			mflag = true
		} else {
			mflag = false
		}
		fs, err := f(s)
		if err != nil {
			return 0, err
		}
		d = c
		c, fc = b, fb
		if fa*fs < 0 {
			b, fb = s, fs
		} else {
			a, fa = s, fs
		}
		if math.Abs(fa) < math.Abs(fb) {
			a, b, fa, fb = b, a, fb, fa
		}
		if math.Abs(b-a) < 1e-12 {
			return b, nil
		}
	}
	return b, nil
}
