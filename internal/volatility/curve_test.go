package volatility

import (
	"errors"
	"math"
	"strings"
	"testing"

	"binopt/internal/lattice"
	"binopt/internal/option"
	"binopt/internal/workload"
)

// buildQuotes generates a small chain and its binomial reference prices.
func buildQuotes(t *testing.T, n, steps int) ([]workload.Quote, *lattice.Engine) {
	t.Helper()
	spec := workload.DefaultVolCurveSpec(99)
	spec.N = n
	opts, err := workload.Chain(spec)
	if err != nil {
		t.Fatal(err)
	}
	quotes, err := workload.ReferenceQuotes(opts, steps, 0)
	if err != nil {
		t.Fatal(err)
	}
	eng, err := lattice.NewEngine(steps)
	if err != nil {
		t.Fatal(err)
	}
	return quotes, eng
}

func TestCurveRecoversSmile(t *testing.T) {
	// End-to-end use case (experiment E2 at test scale): generate quotes
	// from a known smile, invert them, and compare curve to truth. Deep
	// in-the-money puts pinned at intrinsic carry no volatility
	// information and are skipped, as on a real desk.
	quotes, eng := buildQuotes(t, 40, 96)
	pts, skipped, err := Curve(quotes, eng.Price, MethodBrent, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts)+skipped != 40 {
		t.Fatalf("points %d + skipped %d != 40", len(pts), skipped)
	}
	if len(pts) < 25 {
		t.Fatalf("too few informative quotes: %d", len(pts))
	}
	var worst float64
	for _, p := range pts {
		truth := workload.DefaultSmile(p.Mny)
		if e := math.Abs(p.Implied - truth); e > worst {
			worst = e
		}
	}
	if worst > 5e-4 {
		t.Errorf("worst smile recovery error %g, want < 5e-4", worst)
	}
	// Sorted by strike.
	for i := 1; i < len(pts); i++ {
		if pts[i].Strike < pts[i-1].Strike {
			t.Fatal("curve not sorted by strike")
		}
	}
}

func TestCurveMethodsAgree(t *testing.T) {
	quotes, eng := buildQuotes(t, 12, 64)
	var ref []CurvePoint
	for _, m := range []Method{MethodBrent, MethodNewton, MethodBisect} {
		pts, _, err := Curve(quotes, eng.Price, m, 4)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		if ref == nil {
			ref = pts
			continue
		}
		if len(pts) != len(ref) {
			t.Fatalf("%v kept %d points, reference %d", m, len(pts), len(ref))
		}
		for i := range pts {
			if math.Abs(pts[i].Implied-ref[i].Implied) > 1e-4 {
				t.Errorf("%v point %d: %v vs %v", m, i, pts[i].Implied, ref[i].Implied)
			}
		}
	}
}

func TestCurveEmptyQuotes(t *testing.T) {
	_, eng := buildQuotes(t, 1, 16)
	if _, _, err := Curve(nil, eng.Price, MethodBrent, 0); err == nil {
		t.Error("empty quotes should fail")
	}
}

func TestCurvePropagatesSolverErrors(t *testing.T) {
	quotes, eng := buildQuotes(t, 5, 32)
	quotes[3].Price = -1
	if _, _, err := Curve(quotes, eng.Price, MethodBisect, 2); err == nil {
		t.Error("bad quote should surface an error")
	}
}

func TestPinnedQuoteReturnsNoVolInfo(t *testing.T) {
	// A deep ITM American put pinned at intrinsic must be classified as
	// carrying no volatility information by every solver.
	eng, err := lattice.NewEngine(64)
	if err != nil {
		t.Fatal(err)
	}
	o := quotes130()
	price, err := eng.Price(o)
	if err != nil {
		t.Fatal(err)
	}
	if price != o.Intrinsic() {
		t.Skipf("contract not pinned at intrinsic (%v vs %v)", price, o.Intrinsic())
	}
	for name, solve := range map[string]func(float64, option.Option, PriceFunc, float64, int) (float64, error){
		"bisect": Bisect, "newton": Newton, "brent": Brent,
	} {
		_, err := solve(price, o, eng.Price, 0, 0)
		if !errors.Is(err, ErrNoVolInfo) {
			t.Errorf("%s: err = %v, want ErrNoVolInfo", name, err)
		}
	}
}

func quotes130() option.Option {
	return option.Option{
		Right: option.Put, Style: option.American,
		Spot: 100, Strike: 140, Rate: 0.05, Sigma: 0.10, T: 0.5,
	}
}

func TestMethodString(t *testing.T) {
	for _, m := range []Method{MethodBrent, MethodNewton, MethodBisect} {
		if m.String() == "" || strings.HasPrefix(m.String(), "Method(") {
			t.Errorf("Method(%d).String() = %q", int(m), m.String())
		}
	}
	if !strings.Contains(Method(9).String(), "9") {
		t.Error("unknown method should print its number")
	}
}
