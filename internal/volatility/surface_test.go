package volatility

import (
	"math"
	"testing"

	"binopt/internal/lattice"
	"binopt/internal/workload"
)

// buildSurfaceQuotes generates chains at several maturities from the
// default smile.
func buildSurfaceQuotes(t *testing.T, perMaturity, steps int, maturities []float64) ([]workload.Quote, *lattice.Engine) {
	t.Helper()
	var all []workload.Quote
	for i, mat := range maturities {
		spec := workload.DefaultVolCurveSpec(int64(100 + i))
		spec.N = perMaturity
		spec.T = mat
		spec.MinMny = 0.85
		spec.MaxMny = 1.10
		opts, err := workload.Chain(spec)
		if err != nil {
			t.Fatal(err)
		}
		quotes, err := workload.ReferenceQuotes(opts, steps, 0)
		if err != nil {
			t.Fatal(err)
		}
		all = append(all, quotes...)
	}
	eng, err := lattice.NewEngine(steps)
	if err != nil {
		t.Fatal(err)
	}
	return all, eng
}

func TestSurfaceRecoversSmileAcrossMaturities(t *testing.T) {
	mats := []float64{0.25, 0.5, 1.0}
	quotes, eng := buildSurfaceQuotes(t, 14, 64, mats)
	surf, skipped, err := BuildSurface(quotes, eng.Price, MethodBrent, 0)
	if err != nil {
		t.Fatal(err)
	}
	if skipped > len(quotes)/3 {
		t.Errorf("too many skipped quotes: %d of %d", skipped, len(quotes))
	}
	if got := surf.Maturities(); len(got) != 3 || got[0] != 0.25 || got[2] != 1.0 {
		t.Fatalf("maturities: %v", got)
	}
	// On-grid queries recover the generating smile.
	for _, mat := range mats {
		for _, k := range []float64{90, 100, 105} {
			v, err := surf.Vol(k, mat)
			if err != nil {
				t.Fatal(err)
			}
			truth := workload.DefaultSmile(k / 100)
			if math.Abs(v-truth) > 5e-3 {
				t.Errorf("vol(K=%v, T=%v) = %v, smile %v", k, mat, v, truth)
			}
		}
	}
}

func TestSurfaceInterpolatesBetweenMaturities(t *testing.T) {
	quotes, eng := buildSurfaceQuotes(t, 10, 64, []float64{0.25, 1.0})
	surf, _, err := BuildSurface(quotes, eng.Price, MethodBrent, 0)
	if err != nil {
		t.Fatal(err)
	}
	v25, err := surf.Vol(100, 0.25)
	if err != nil {
		t.Fatal(err)
	}
	v100, err := surf.Vol(100, 1.0)
	if err != nil {
		t.Fatal(err)
	}
	mid, err := surf.Vol(100, 0.6)
	if err != nil {
		t.Fatal(err)
	}
	lo, hi := math.Min(v25, v100), math.Max(v25, v100)
	if mid < lo-1e-9 || mid > hi+1e-9 {
		t.Errorf("interpolated vol %v outside [%v, %v]", mid, lo, hi)
	}
}

func TestSurfaceClampsOutsideRange(t *testing.T) {
	quotes, eng := buildSurfaceQuotes(t, 10, 64, []float64{0.5})
	surf, _, err := BuildSurface(quotes, eng.Price, MethodBrent, 0)
	if err != nil {
		t.Fatal(err)
	}
	inside, err := surf.Vol(100, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	early, err := surf.Vol(100, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	late, err := surf.Vol(100, 5)
	if err != nil {
		t.Fatal(err)
	}
	if early != inside || late != inside {
		t.Errorf("single-maturity surface should clamp: %v / %v / %v", early, inside, late)
	}
	// Strike clamping at the wings.
	wingLo, err := surf.Vol(1, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	wingHi, err := surf.Vol(1e6, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if wingLo <= 0 || wingHi <= 0 {
		t.Error("clamped wings should return the end-of-curve vols")
	}
}

func TestSurfaceQueryValidation(t *testing.T) {
	quotes, eng := buildSurfaceQuotes(t, 8, 48, []float64{0.5})
	surf, _, err := BuildSurface(quotes, eng.Price, MethodBrent, 0)
	if err != nil {
		t.Fatal(err)
	}
	for _, q := range [][2]float64{{-1, 0.5}, {100, -1}, {0, 0.5}, {100, 0}, {math.NaN(), 0.5}} {
		if _, err := surf.Vol(q[0], q[1]); err == nil {
			t.Errorf("query %v should fail", q)
		}
	}
}

func TestBuildSurfaceErrors(t *testing.T) {
	_, eng := buildSurfaceQuotes(t, 2, 32, []float64{0.5})
	if _, _, err := BuildSurface(nil, eng.Price, MethodBrent, 0); err == nil {
		t.Error("empty quotes should fail")
	}
}
