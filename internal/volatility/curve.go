package volatility

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"

	"binopt/internal/workload"
)

// Method selects the root finder used per quote.
type Method int

const (
	// MethodBrent is the default (fewest pricings per quote).
	MethodBrent Method = iota
	// MethodNewton uses BS-vega Newton with bisection fallback.
	MethodNewton
	// MethodBisect is the fully robust baseline.
	MethodBisect
)

// String names the method.
func (m Method) String() string {
	switch m {
	case MethodBrent:
		return "brent"
	case MethodNewton:
		return "newton"
	case MethodBisect:
		return "bisect"
	default:
		return fmt.Sprintf("Method(%d)", int(m))
	}
}

// CurvePoint is one recovered point of the implied-volatility curve.
type CurvePoint struct {
	Strike  float64
	Mny     float64 // strike / spot
	Implied float64
}

// Curve inverts every quote and returns the volatility curve sorted by
// strike — the artefact the trader reads off the accelerator — plus the
// number of quotes skipped because they carry no volatility information
// (deep in-the-money American options pinned at intrinsic). workers
// limits concurrency (<= 0 uses GOMAXPROCS); each quote costs the solver
// a dozen or more full tree pricings, which is precisely why the paper
// needs 2000+ options/s.
func Curve(quotes []workload.Quote, pf PriceFunc, method Method, workers int) ([]CurvePoint, int, error) {
	if len(quotes) == 0 {
		return nil, 0, fmt.Errorf("volatility: no quotes")
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(quotes) {
		workers = len(quotes)
	}
	solve := Brent
	switch method {
	case MethodNewton:
		solve = Newton
	case MethodBisect:
		solve = Bisect
	}

	pts := make([]CurvePoint, len(quotes))
	keep := make([]bool, len(quotes))
	var (
		wg       sync.WaitGroup
		mu       sync.Mutex
		skipped  int
		firstErr error
	)
	next := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				q := quotes[i]
				iv, err := solve(q.Price, q.Option, pf, DefaultTol, DefaultMaxIter)
				switch {
				case errors.Is(err, ErrNoVolInfo):
					mu.Lock()
					skipped++
					mu.Unlock()
				case err != nil:
					mu.Lock()
					if firstErr == nil {
						firstErr = fmt.Errorf("volatility: quote %d (K=%v): %w", i, q.Option.Strike, err)
					}
					mu.Unlock()
				default:
					pts[i] = CurvePoint{
						Strike:  q.Option.Strike,
						Mny:     q.Option.Strike / q.Option.Spot,
						Implied: iv,
					}
					keep[i] = true
				}
			}
		}()
	}
	for i := range quotes {
		next <- i
	}
	close(next)
	wg.Wait()
	if firstErr != nil {
		return nil, skipped, firstErr
	}
	out := pts[:0]
	for i, k := range keep {
		if k {
			out = append(out, pts[i])
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Strike < out[j].Strike })
	return out, skipped, nil
}
