package volatility

import (
	"fmt"
	"math"
	"sort"

	"binopt/internal/workload"
)

// Surface is an implied-volatility surface: one recovered curve per
// maturity, queryable at any (strike, expiry) by interpolation. It is
// the multi-maturity extension of the paper's per-curve use case — the
// natural next artefact once the accelerator prices one curve per second.
type Surface struct {
	maturities []float64
	curves     [][]CurvePoint
}

// BuildSurface groups the quotes by expiry, inverts each group into a
// curve, and assembles the surface. It returns the surface and the total
// number of skipped (no-vol-information) quotes.
func BuildSurface(quotes []workload.Quote, pf PriceFunc, method Method, workers int) (*Surface, int, error) {
	if len(quotes) == 0 {
		return nil, 0, fmt.Errorf("volatility: no quotes for surface")
	}
	groups := make(map[float64][]workload.Quote)
	for _, q := range quotes {
		groups[q.Option.T] = append(groups[q.Option.T], q)
	}
	maturities := make([]float64, 0, len(groups))
	for t := range groups {
		maturities = append(maturities, t)
	}
	sort.Float64s(maturities)

	s := &Surface{maturities: maturities}
	skipped := 0
	for _, t := range maturities {
		pts, sk, err := Curve(groups[t], pf, method, workers)
		skipped += sk
		if err != nil {
			return nil, skipped, fmt.Errorf("volatility: maturity %v: %w", t, err)
		}
		if len(pts) == 0 {
			return nil, skipped, fmt.Errorf("volatility: maturity %v has no informative quotes", t)
		}
		s.curves = append(s.curves, pts)
	}
	return s, skipped, nil
}

// Maturities returns the surface's expiry grid.
func (s *Surface) Maturities() []float64 {
	out := make([]float64, len(s.maturities))
	copy(out, s.maturities)
	return out
}

// Vol returns the implied volatility at (strike, t). Strikes interpolate
// linearly within each curve (clamped at the ends); maturities
// interpolate linearly in total variance sigma^2*t, the arbitrage-aware
// convention, clamped outside the quoted range.
func (s *Surface) Vol(strike, t float64) (float64, error) {
	if strike <= 0 || t <= 0 || math.IsNaN(strike) || math.IsNaN(t) {
		return 0, fmt.Errorf("volatility: query (K=%v, T=%v) invalid", strike, t)
	}
	// Locate bracketing maturities.
	n := len(s.maturities)
	j := sort.SearchFloat64s(s.maturities, t)
	switch {
	case j == 0:
		return curveVol(s.curves[0], strike), nil
	case j >= n:
		return curveVol(s.curves[n-1], strike), nil
	}
	t0, t1 := s.maturities[j-1], s.maturities[j]
	v0 := curveVol(s.curves[j-1], strike)
	v1 := curveVol(s.curves[j], strike)
	// Total-variance interpolation: w(t) linear between w0 and w1.
	w0 := v0 * v0 * t0
	w1 := v1 * v1 * t1
	w := w0 + (w1-w0)*(t-t0)/(t1-t0)
	if w < 0 {
		w = 0
	}
	return math.Sqrt(w / t), nil
}

// curveVol interpolates one curve linearly in strike with clamped
// extrapolation.
func curveVol(pts []CurvePoint, strike float64) float64 {
	n := len(pts)
	if strike <= pts[0].Strike {
		return pts[0].Implied
	}
	if strike >= pts[n-1].Strike {
		return pts[n-1].Implied
	}
	j := sort.Search(n, func(i int) bool { return pts[i].Strike >= strike })
	a, b := pts[j-1], pts[j]
	w := (strike - a.Strike) / (b.Strike - a.Strike)
	return a.Implied*(1-w) + b.Implied*w
}
