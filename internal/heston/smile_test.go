package heston

import (
	"math"
	"testing"
)

func TestImpliedSmileSkewsWithNegativeRho(t *testing.T) {
	p := testParams() // rho = -0.7
	strikes := []float64{80, 90, 100, 110, 120}
	smile, err := ImpliedSmile(p, strikes, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(smile) != 5 {
		t.Fatalf("got %d points", len(smile))
	}
	// Downward skew: low strikes carry more implied volatility.
	if smile[0].Implied <= smile[4].Implied {
		t.Errorf("negative rho should skew the smile down: vol(80)=%v vol(120)=%v",
			smile[0].Implied, smile[4].Implied)
	}
	// All implied vols near the variance scale sqrt(theta)=0.2.
	for _, pt := range smile {
		if pt.Implied < 0.1 || pt.Implied > 0.35 {
			t.Errorf("vol(%v) = %v implausible", pt.Strike, pt.Implied)
		}
	}
}

func TestImpliedSmileFlatWhenDeterministic(t *testing.T) {
	p := testParams()
	p.Xi = 1e-4
	p.V0 = p.Theta
	smile, err := ImpliedSmile(p, []float64{85, 100, 115}, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	for _, pt := range smile {
		if math.Abs(pt.Implied-math.Sqrt(p.Theta)) > 2e-3 {
			t.Errorf("deterministic-variance smile should be flat at 0.2: vol(%v)=%v",
				pt.Strike, pt.Implied)
		}
	}
}

func TestImpliedSmileValidation(t *testing.T) {
	if _, err := ImpliedSmile(testParams(), nil, 1); err == nil {
		t.Error("no strikes should fail")
	}
	bad := testParams()
	bad.Kappa = 0
	if _, err := ImpliedSmile(bad, []float64{100}, 1); err == nil {
		t.Error("invalid params should fail")
	}
}
