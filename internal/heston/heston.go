// Package heston implements the stochastic-volatility substrate of the
// paper's key related work: de Schryver et al. ([4]) built their
// energy-efficiency benchmark around barrier options under the Heston
// model, priced by a Multi-Level Monte Carlo method. This package
// provides the model (with the semi-analytic European price as the
// correctness oracle), full-truncation Euler simulation, barrier-option
// Monte Carlo, and the Giles MLMC estimator that [4] selected as the best
// accuracy/energy compromise.
package heston

import (
	"fmt"
	"math"
	"math/cmplx"
)

// Params are the Heston square-root stochastic-variance dynamics:
//
//	dS = (r - q) S dt + sqrt(v) S dW_s
//	dv = kappa (theta - v) dt + xi sqrt(v) dW_v,   d<W_s, W_v> = rho dt
type Params struct {
	Spot  float64
	Rate  float64
	Div   float64
	V0    float64 // initial variance
	Kappa float64 // mean-reversion speed
	Theta float64 // long-run variance
	Xi    float64 // volatility of variance
	Rho   float64 // spot/variance correlation
}

// Validate rejects unusable parameter sets.
func (p Params) Validate() error {
	switch {
	case !(p.Spot > 0) || math.IsInf(p.Spot, 0):
		return fmt.Errorf("heston: spot must be positive, got %v", p.Spot)
	case !(p.V0 >= 0) || math.IsInf(p.V0, 0):
		return fmt.Errorf("heston: v0 must be non-negative, got %v", p.V0)
	case !(p.Kappa > 0):
		return fmt.Errorf("heston: kappa must be positive, got %v", p.Kappa)
	case !(p.Theta > 0):
		return fmt.Errorf("heston: theta must be positive, got %v", p.Theta)
	case !(p.Xi > 0):
		return fmt.Errorf("heston: xi must be positive, got %v", p.Xi)
	case p.Rho < -1 || p.Rho > 1 || math.IsNaN(p.Rho):
		return fmt.Errorf("heston: rho must be in [-1,1], got %v", p.Rho)
	case math.IsNaN(p.Rate) || math.IsInf(p.Rate, 0):
		return fmt.Errorf("heston: rate must be finite, got %v", p.Rate)
	case math.IsNaN(p.Div) || math.IsInf(p.Div, 0):
		return fmt.Errorf("heston: dividend yield must be finite, got %v", p.Div)
	}
	return nil
}

// FellerSatisfied reports whether 2*kappa*theta >= xi^2, the condition
// under which the variance process stays strictly positive.
func (p Params) FellerSatisfied() bool {
	return 2*p.Kappa*p.Theta >= p.Xi*p.Xi
}

// EuropeanCall returns the semi-analytic Heston price of a European call
// with strike k and expiry t, using the "little Heston trap"
// formulation of the characteristic function (numerically stable for
// long maturities) integrated by composite Simpson quadrature.
func EuropeanCall(p Params, k, t float64) (float64, error) {
	if err := p.Validate(); err != nil {
		return 0, err
	}
	if !(k > 0) || !(t > 0) {
		return 0, fmt.Errorf("heston: strike and expiry must be positive (K=%v, T=%v)", k, t)
	}
	p1 := probability(p, k, t, 1)
	p2 := probability(p, k, t, 2)
	call := p.Spot*math.Exp(-p.Div*t)*p1 - k*math.Exp(-p.Rate*t)*p2
	if call < 0 {
		call = 0
	}
	return call, nil
}

// EuropeanPut returns the Heston put via put-call parity.
func EuropeanPut(p Params, k, t float64) (float64, error) {
	call, err := EuropeanCall(p, k, t)
	if err != nil {
		return 0, err
	}
	put := call - p.Spot*math.Exp(-p.Div*t) + k*math.Exp(-p.Rate*t)
	if put < 0 {
		put = 0
	}
	return put, nil
}

// probability evaluates P_j = 1/2 + (1/pi) Int_0^inf Re(e^{-iu lnK}
// f_j(u)/(iu)) du for j in {1, 2}.
func probability(p Params, k, t float64, j int) float64 {
	lnK := math.Log(k)
	integrand := func(u float64) float64 {
		fu := charFn(p, u, t, j)
		val := cmplx.Exp(complex(0, -u*lnK)) * fu / complex(0, u)
		return real(val)
	}
	// Composite Simpson on (0, uMax]; the integrand decays like
	// exp(-c u) for Heston, so 200 is ample for typical parameters.
	const uMax = 200.0
	const n = 2000 // intervals (even)
	h := uMax / n
	sum := 0.0
	for i := 0; i <= n; i++ {
		u := float64(i) * h
		if i == 0 {
			u = 1e-9 // the integrand has a removable singularity at 0
		}
		w := 2.0
		switch {
		case i == 0 || i == n:
			w = 1
		case i%2 == 1:
			w = 4
		}
		sum += w * integrand(u)
	}
	pj := 0.5 + sum*h/(3*math.Pi)
	// Probabilities are clamped against quadrature noise at the tails.
	if pj < 0 {
		pj = 0
	}
	if pj > 1 {
		pj = 1
	}
	return pj
}

// charFn is the little-trap Heston characteristic function component.
func charFn(p Params, u, t float64, j int) complex128 {
	var uj, bj float64
	if j == 1 {
		uj = 0.5
		bj = p.Kappa - p.Rho*p.Xi
	} else {
		uj = -0.5
		bj = p.Kappa
	}
	a := p.Kappa * p.Theta
	x := math.Log(p.Spot)
	iu := complex(0, u)

	beta := complex(bj, 0) - complex(p.Rho*p.Xi, 0)*iu
	d := cmplx.Sqrt(beta*beta - complex(p.Xi*p.Xi, 0)*(2*complex(uj, 0)*iu-complex(u*u, 0)))
	// Little trap: c = (beta - d)/(beta + d), use exp(-d t).
	c := (beta - d) / (beta + d)
	edt := cmplx.Exp(-d * complex(t, 0))
	one := complex(1, 0)

	bigC := complex((p.Rate-p.Div)*t, 0)*iu +
		complex(a/(p.Xi*p.Xi), 0)*((beta-d)*complex(t, 0)-2*cmplx.Log((one-c*edt)/(one-c)))
	bigD := (beta - d) / complex(p.Xi*p.Xi, 0) * (one - edt) / (one - c*edt)

	return cmplx.Exp(bigC + bigD*complex(p.V0, 0) + iu*complex(x, 0))
}
