package heston

import (
	"math"
	"testing"
)

func TestEulerConvergesToClosedForm(t *testing.T) {
	p := testParams()
	const k, T = 100.0, 0.5
	ref, err := EuropeanCall(p, k, T)
	if err != nil {
		t.Fatal(err)
	}
	est, err := EuropeanCallMC(p, k, T, SimConfig{Paths: 120000, Steps: 64, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	// Allow statistical error plus the O(dt) Euler bias.
	if diff := math.Abs(est.Price - ref); diff > 4*est.StdErr+0.05 {
		t.Errorf("MC %v vs closed form %v (diff %g, 4σ %g)", est.Price, ref, diff, 4*est.StdErr)
	}
}

func TestEulerBiasShrinksWithSteps(t *testing.T) {
	p := testParams()
	const k, T = 100.0, 0.5
	ref, err := EuropeanCall(p, k, T)
	if err != nil {
		t.Fatal(err)
	}
	coarse, err := EuropeanCallMC(p, k, T, SimConfig{Paths: 200000, Steps: 2, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	fine, err := EuropeanCallMC(p, k, T, SimConfig{Paths: 200000, Steps: 64, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(fine.Price-ref) > math.Abs(coarse.Price-ref) {
		t.Errorf("refinement did not reduce bias: 2 steps err %g, 64 steps err %g",
			math.Abs(coarse.Price-ref), math.Abs(fine.Price-ref))
	}
}

func TestBarrierBelowEverythingEqualsVanilla(t *testing.T) {
	// A barrier so deep it can never be touched leaves the vanilla call.
	p := testParams()
	const k, T = 100.0, 0.5
	seed := uint64(11)
	vanilla, err := EuropeanCallMC(p, k, T, SimConfig{Paths: 50000, Steps: 32, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	barrier, err := DownAndOutCallMC(p, k, 1e-6, T, SimConfig{Paths: 50000, Steps: 32, Seed: seed})
	if err != nil {
		t.Fatal(err)
	}
	if barrier.Price != vanilla.Price {
		t.Errorf("unreachable barrier: %v vs vanilla %v (same seed, must match exactly)",
			barrier.Price, vanilla.Price)
	}
}

func TestBarrierMonotoneInLevel(t *testing.T) {
	// Raising the knock-out barrier can only destroy value.
	p := testParams()
	const k, T = 100.0, 0.5
	prev := math.Inf(1)
	for _, b := range []float64{50, 70, 85, 95, 99} {
		est, err := DownAndOutCallMC(p, k, b, T, SimConfig{Paths: 60000, Steps: 32, Seed: 21})
		if err != nil {
			t.Fatal(err)
		}
		if est.Price > prev+2*est.StdErr {
			t.Errorf("barrier %v: price %v rose above previous %v", b, est.Price, prev)
		}
		prev = est.Price
	}
}

func TestBarrierNearSpotNearlyWorthless(t *testing.T) {
	p := testParams()
	est, err := DownAndOutCallMC(p, 100, 99.5, 0.5, SimConfig{Paths: 30000, Steps: 64, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	vanilla, err := EuropeanCall(p, 100, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// Discrete monitoring at 64 dates shifts the effective barrier down
	// by ~0.58*sigma*sqrt(dt) (Broadie-Glasserman-Kou), so some value
	// survives; the bulk must still be destroyed.
	if est.Price > 0.35*vanilla {
		t.Errorf("barrier at 99.5%% of spot should destroy most value: %v vs vanilla %v", est.Price, vanilla)
	}
}

func TestSimValidation(t *testing.T) {
	p := testParams()
	if _, err := EuropeanCallMC(p, 100, 0.5, SimConfig{Paths: 1, Steps: 8}); err == nil {
		t.Error("1 path should fail")
	}
	if _, err := EuropeanCallMC(p, 100, 0.5, SimConfig{Paths: 100, Steps: 0}); err == nil {
		t.Error("0 steps should fail")
	}
	if _, err := DownAndOutCallMC(p, 100, 120, 0.5, SimConfig{Paths: 100, Steps: 8}); err == nil {
		t.Error("barrier above spot should fail")
	}
	if _, err := DownAndOutCallMC(p, 100, -5, 0.5, SimConfig{Paths: 100, Steps: 8}); err == nil {
		t.Error("negative barrier should fail")
	}
}

func TestVarianceProcessStaysReasonable(t *testing.T) {
	// Full truncation must not blow up even when Feller is violated.
	p := testParams()
	p.Xi = 1.2 // violates Feller
	est, err := EuropeanCallMC(p, 100, 1, SimConfig{Paths: 20000, Steps: 64, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(est.Price) || est.Price < 0 || est.Price > p.Spot {
		t.Errorf("price %v out of sane range under Feller violation", est.Price)
	}
}
