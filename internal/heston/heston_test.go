package heston

import (
	"math"
	"testing"

	"binopt/internal/bs"
	"binopt/internal/option"
)

// testParams is a well-behaved Heston set satisfying the Feller
// condition.
func testParams() Params {
	return Params{
		Spot:  100,
		Rate:  0.03,
		V0:    0.04,
		Kappa: 2.0,
		Theta: 0.04,
		Xi:    0.3,
		Rho:   -0.7,
	}
}

func TestValidate(t *testing.T) {
	if err := testParams().Validate(); err != nil {
		t.Fatal(err)
	}
	mutations := map[string]func(*Params){
		"zero spot":   func(p *Params) { p.Spot = 0 },
		"neg v0":      func(p *Params) { p.V0 = -0.1 },
		"zero kappa":  func(p *Params) { p.Kappa = 0 },
		"zero theta":  func(p *Params) { p.Theta = 0 },
		"zero xi":     func(p *Params) { p.Xi = 0 },
		"rho above 1": func(p *Params) { p.Rho = 1.5 },
		"nan rate":    func(p *Params) { p.Rate = math.NaN() },
	}
	for name, mutate := range mutations {
		p := testParams()
		mutate(&p)
		if err := p.Validate(); err == nil {
			t.Errorf("%s should fail", name)
		}
	}
}

func TestFeller(t *testing.T) {
	p := testParams() // 2*2*0.04 = 0.16 > 0.09
	if !p.FellerSatisfied() {
		t.Error("test params should satisfy Feller")
	}
	p.Xi = 1.0
	if p.FellerSatisfied() {
		t.Error("xi=1 should violate Feller")
	}
}

func TestClosedFormDegeneratesToBlackScholes(t *testing.T) {
	// With vanishing vol-of-vol and v0 = theta, the variance is constant
	// and Heston reduces to Black-Scholes with sigma = sqrt(theta).
	p := testParams()
	p.Xi = 1e-4
	p.V0 = p.Theta
	for _, k := range []float64{80, 100, 120} {
		got, err := EuropeanCall(p, k, 1)
		if err != nil {
			t.Fatal(err)
		}
		ref, err := bs.Price(option.Option{
			Right: option.Call, Style: option.European,
			Spot: p.Spot, Strike: k, Rate: p.Rate, Sigma: math.Sqrt(p.Theta), T: 1,
		})
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-ref) > 2e-3 {
			t.Errorf("K=%v: heston %v vs bs %v", k, got, ref)
		}
	}
}

func TestClosedFormDeterministicVariancePath(t *testing.T) {
	// With xi -> 0 but v0 != theta, the variance follows its ODE and the
	// option prices like BS with the average variance over the life.
	p := testParams()
	p.Xi = 1e-4
	p.V0 = 0.09
	const T = 0.75
	// avg variance = theta + (v0-theta)(1-exp(-kT))/(kT)
	avg := p.Theta + (p.V0-p.Theta)*(1-math.Exp(-p.Kappa*T))/(p.Kappa*T)
	got, err := EuropeanCall(p, 100, T)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := bs.Price(option.Option{
		Right: option.Call, Style: option.European,
		Spot: p.Spot, Strike: 100, Rate: p.Rate, Sigma: math.Sqrt(avg), T: T,
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-ref) > 2e-3 {
		t.Errorf("heston %v vs averaged-variance bs %v", got, ref)
	}
}

func TestPutCallParity(t *testing.T) {
	p := testParams()
	call, err := EuropeanCall(p, 105, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	put, err := EuropeanPut(p, 105, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	lhs := call - put
	rhs := p.Spot*math.Exp(-p.Div*0.5) - 105*math.Exp(-p.Rate*0.5)
	if math.Abs(lhs-rhs) > 1e-6 {
		t.Errorf("parity: C-P = %v, want %v", lhs, rhs)
	}
}

func TestClosedFormMonotoneInStrike(t *testing.T) {
	p := testParams()
	prev := math.Inf(1)
	for k := 70.0; k <= 130; k += 5 {
		c, err := EuropeanCall(p, k, 1)
		if err != nil {
			t.Fatal(err)
		}
		if c > prev {
			t.Fatalf("call price rose with strike at K=%v", k)
		}
		prev = c
	}
}

func TestSkewFromCorrelation(t *testing.T) {
	// Negative rho fattens the left tail: OTM puts gain value relative
	// to rho=0, i.e. implied vol at low strikes is higher.
	pNeg := testParams() // rho = -0.7
	pZero := testParams()
	pZero.Rho = 0
	lowNeg, err := EuropeanPut(pNeg, 80, 1)
	if err != nil {
		t.Fatal(err)
	}
	lowZero, err := EuropeanPut(pZero, 80, 1)
	if err != nil {
		t.Fatal(err)
	}
	if lowNeg <= lowZero {
		t.Errorf("negative rho should raise OTM put value: %v vs %v", lowNeg, lowZero)
	}
}

func TestClosedFormValidation(t *testing.T) {
	p := testParams()
	if _, err := EuropeanCall(p, -1, 1); err == nil {
		t.Error("negative strike should fail")
	}
	if _, err := EuropeanCall(p, 100, 0); err == nil {
		t.Error("zero expiry should fail")
	}
	bad := p
	bad.Xi = 0
	if _, err := EuropeanCall(bad, 100, 1); err == nil {
		t.Error("invalid params should fail")
	}
}
