package heston

import (
	"fmt"

	"binopt/internal/bs"
	"binopt/internal/option"
	"binopt/internal/volatility"
)

// SmilePoint is one strike's Black-Scholes-implied volatility under the
// Heston model.
type SmilePoint struct {
	Strike  float64
	Implied float64
}

// ImpliedSmile converts Heston prices into the Black-Scholes implied
// volatilities at the given strikes — the model-generated smile. With
// negative spot/variance correlation the curve skews downward, the
// stylised equity fact stochastic-volatility models exist to capture;
// the test suite asserts exactly that shape.
func ImpliedSmile(p Params, strikes []float64, t float64) ([]SmilePoint, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if len(strikes) == 0 {
		return nil, fmt.Errorf("heston: no strikes for smile")
	}
	out := make([]SmilePoint, 0, len(strikes))
	for _, k := range strikes {
		price, err := EuropeanCall(p, k, t)
		if err != nil {
			return nil, err
		}
		contract := option.Option{
			Right: option.Call, Style: option.European,
			Spot: p.Spot, Strike: k, Rate: p.Rate, Div: p.Div,
			Sigma: 0.2, // placeholder; the solver owns sigma
			T:     t,
		}
		iv, err := volatility.Brent(price, contract, bs.Price, 0, 0)
		if err != nil {
			return nil, fmt.Errorf("heston: smile at K=%v: %w", k, err)
		}
		out = append(out, SmilePoint{Strike: k, Implied: iv})
	}
	return out, nil
}
