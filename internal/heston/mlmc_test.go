package heston

import (
	"math"
	"testing"
)

func mlmcConfig() MLMCConfig {
	return MLMCConfig{
		Levels:      4,
		BaseSteps:   4,
		Refine:      4,
		PathsLevel0: 120000,
		Seed:        17,
	}
}

func TestMLMCMatchesPlainMC(t *testing.T) {
	p := testParams()
	const k, barrier, T = 100.0, 80.0, 0.5
	cfg := mlmcConfig()
	ml, err := DownAndOutCallMLMC(p, k, barrier, T, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Plain MC at the finest level.
	fineSteps := cfg.BaseSteps * ipow(cfg.Refine, cfg.Levels-1)
	plain, err := DownAndOutCallMC(p, k, barrier, T, SimConfig{
		Paths: 120000, Steps: fineSteps, Seed: 99,
	})
	if err != nil {
		t.Fatal(err)
	}
	tol := 4*(ml.StdErr+plain.StdErr) + 0.02
	if diff := math.Abs(ml.Price - plain.Price); diff > tol {
		t.Errorf("MLMC %v ± %v vs plain %v ± %v (diff %g > tol %g)",
			ml.Price, ml.StdErr, plain.Price, plain.StdErr, diff, tol)
	}
}

func TestMLMCVarianceDecaysAcrossLevels(t *testing.T) {
	// The Giles coupling must make the correction variance fall with
	// level — the property that gives MLMC its complexity advantage.
	p := testParams()
	ml, err := DownAndOutCallMLMC(p, 100, 80, 0.5, mlmcConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(ml.Levels) != 4 {
		t.Fatalf("got %d levels", len(ml.Levels))
	}
	base := ml.Levels[0].Variance
	last := ml.Levels[len(ml.Levels)-1].Variance
	if last >= base/4 {
		t.Errorf("correction variance at top level %g not well below base %g", last, base)
	}
	for i := 2; i < len(ml.Levels); i++ {
		if ml.Levels[i].Variance > ml.Levels[i-1].Variance*1.5 {
			t.Errorf("level %d variance %g grew from %g", i, ml.Levels[i].Variance, ml.Levels[i-1].Variance)
		}
	}
}

func TestMLMCCheaperThanStandardMC(t *testing.T) {
	// The headline of [4]'s design-space exploration: MLMC reaches the
	// same statistical error for less work than single-level MC at the
	// finest grid.
	p := testParams()
	ml, err := DownAndOutCallMLMC(p, 100, 80, 0.5, mlmcConfig())
	if err != nil {
		t.Fatal(err)
	}
	if ml.CostStandardMC <= ml.TotalCost {
		t.Errorf("MLMC cost %g not below standard-MC cost %g", ml.TotalCost, ml.CostStandardMC)
	}
	speedup := ml.CostStandardMC / ml.TotalCost
	if speedup < 2 {
		t.Errorf("MLMC speedup %gx implausibly small", speedup)
	}
}

func TestMLMCValidation(t *testing.T) {
	p := testParams()
	bad := []MLMCConfig{
		{Levels: 0, BaseSteps: 4, Refine: 2, PathsLevel0: 100},
		{Levels: 2, BaseSteps: 0, Refine: 2, PathsLevel0: 100},
		{Levels: 2, BaseSteps: 4, Refine: 1, PathsLevel0: 100},
		{Levels: 2, BaseSteps: 4, Refine: 2, PathsLevel0: 4},
	}
	for _, cfg := range bad {
		if _, err := DownAndOutCallMLMC(p, 100, 80, 0.5, cfg); err == nil {
			t.Errorf("config %+v should fail", cfg)
		}
	}
	if _, err := DownAndOutCallMLMC(p, 100, 120, 0.5, mlmcConfig()); err == nil {
		t.Error("barrier above spot should fail")
	}
}

func TestIPow(t *testing.T) {
	if ipow(4, 0) != 1 || ipow(4, 1) != 4 || ipow(2, 10) != 1024 {
		t.Error("ipow broken")
	}
}
