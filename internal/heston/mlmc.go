package heston

import (
	"fmt"
	"math"

	"binopt/internal/rng"
)

// MLMCConfig parameterises the Giles multi-level estimator.
type MLMCConfig struct {
	// Levels is the number of refinement levels L (level l uses
	// BaseSteps * Refine^l Euler steps).
	Levels int
	// BaseSteps is the coarsest discretisation (level 0).
	BaseSteps int
	// Refine is the per-level step multiplier M (Giles recommends 2-4).
	Refine int
	// PathsLevel0 is the sample count at level 0; higher levels get
	// samples allocated by the optimal sqrt(V_l/C_l) rule against this
	// budget shape.
	PathsLevel0 int
	Seed        uint64
}

func (c MLMCConfig) validate() error {
	switch {
	case c.Levels < 1:
		return fmt.Errorf("heston: MLMC needs at least 1 level, got %d", c.Levels)
	case c.BaseSteps < 1:
		return fmt.Errorf("heston: MLMC base steps must be >= 1, got %d", c.BaseSteps)
	case c.Refine < 2:
		return fmt.Errorf("heston: MLMC refinement must be >= 2, got %d", c.Refine)
	case c.PathsLevel0 < 16:
		return fmt.Errorf("heston: MLMC needs >= 16 level-0 paths, got %d", c.PathsLevel0)
	}
	return nil
}

// MLMCLevel reports one level's statistics.
type MLMCLevel struct {
	Level    int
	Steps    int
	Paths    int
	Mean     float64 // E[P_l - P_{l-1}] (E[P_0] at level 0)
	Variance float64
	Cost     float64 // paths * steps, the work unit of the cost model
}

// MLMCResult is the multi-level estimate with its per-level breakdown.
type MLMCResult struct {
	Price  float64
	StdErr float64
	Levels []MLMCLevel
	// TotalCost is the summed path-step work; CostStandardMC is the work
	// a plain fine-level estimator would need for the same variance —
	// the comparison that made [4] choose MLMC.
	TotalCost      float64
	CostStandardMC float64
}

// DownAndOutCallMLMC prices the barrier call with the Giles multi-level
// Monte Carlo estimator: coupled coarse/fine paths driven by shared
// Brownian increments make the level corrections P_l - P_{l-1} cheap to
// estimate, so most samples run at the coarse discretisation.
func DownAndOutCallMLMC(p Params, k, barrier, t float64, cfg MLMCConfig) (MLMCResult, error) {
	if err := p.Validate(); err != nil {
		return MLMCResult{}, err
	}
	if err := cfg.validate(); err != nil {
		return MLMCResult{}, err
	}
	if !(k > 0) || !(t > 0) {
		return MLMCResult{}, fmt.Errorf("heston: strike and expiry must be positive")
	}
	if !(barrier > 0) || barrier >= p.Spot {
		return MLMCResult{}, fmt.Errorf("heston: down barrier %v must be positive and below spot %v", barrier, p.Spot)
	}

	gen := rng.New(cfg.Seed)
	var res MLMCResult
	// Pilot pass: equal shape N_l = N0 / 2^l, then report the optimal
	// allocation the variances imply.
	for l := 0; l < cfg.Levels; l++ {
		fineSteps := cfg.BaseSteps * ipow(cfg.Refine, l)
		paths := cfg.PathsLevel0 >> uint(l)
		if paths < 16 {
			paths = 16
		}
		sub := rng.New(cfg.Seed)
		*sub = *gen
		gen.Jump()

		var sum, sumSq float64
		for i := 0; i < paths; i++ {
			y := levelSample(p, k, barrier, t, fineSteps, cfg.Refine, l == 0, sub)
			sum += y
			sumSq += y * y
		}
		n := float64(paths)
		mean := sum / n
		variance := sumSq/n - mean*mean
		if variance < 0 {
			variance = 0
		}
		res.Levels = append(res.Levels, MLMCLevel{
			Level:    l,
			Steps:    fineSteps,
			Paths:    paths,
			Mean:     mean,
			Variance: variance,
			Cost:     n * float64(fineSteps),
		})
		res.Price += mean
		res.StdErr += variance / n
		res.TotalCost += n * float64(fineSteps)
	}
	res.StdErr = math.Sqrt(res.StdErr)

	// Standard MC at the finest level would need varFine/stderr^2 paths.
	finest := res.Levels[len(res.Levels)-1]
	varFine := res.Levels[0].Variance // payoff variance dominated by level 0
	if res.StdErr > 0 {
		nStd := varFine / (res.StdErr * res.StdErr)
		res.CostStandardMC = nStd * float64(finest.Steps)
	}
	return res, nil
}

// levelSample draws one coupled fine/coarse sample of the level
// correction P_l - P_{l-1} (or P_0 at the base level). Fine and coarse
// paths share Brownian increments: the coarse step consumes the sum of
// Refine fine increments, the Giles coupling that shrinks the correction
// variance.
func levelSample(p Params, k, barrier, t float64, fineSteps, refine int, base bool, gen *rng.Xoshiro256) float64 {
	norm := rng.NewNorm(gen)
	dtF := t / float64(fineSteps)
	logB := math.Log(barrier)
	disc := math.Exp(-p.Rate * t)

	xF, vF := math.Log(p.Spot), p.V0
	aliveF := true
	if base {
		for s := 0; s < fineSteps; s++ {
			zs, zv := correlate(p.Rho, norm.Next(), norm.Next())
			xF, vF = stepState(p, xF, vF, dtF, zs, zv)
			if xF <= logB {
				aliveF = false
				break
			}
		}
		return discountedCall(xF, k, disc, aliveF)
	}

	coarseSteps := fineSteps / refine
	dtC := t / float64(coarseSteps)
	xC, vC := math.Log(p.Spot), p.V0
	aliveC := true
	sqDtF := math.Sqrt(dtF)

	for cs := 0; cs < coarseSteps; cs++ {
		var sumZs, sumZv float64
		for f := 0; f < refine; f++ {
			zs, zv := correlate(p.Rho, norm.Next(), norm.Next())
			sumZs += zs
			sumZv += zv
			if aliveF {
				xF, vF = stepState(p, xF, vF, dtF, zs, zv)
				if xF <= logB {
					aliveF = false
				}
			}
		}
		if aliveC {
			// The coarse increment is the scaled sum of the fine ones.
			scale := sqDtF / math.Sqrt(dtC)
			xC, vC = stepState(p, xC, vC, dtC, sumZs*scale, sumZv*scale)
			if xC <= logB {
				aliveC = false
			}
		}
	}
	return discountedCall(xF, k, disc, aliveF) - discountedCall(xC, k, disc, aliveC)
}

func discountedCall(x, k, disc float64, alive bool) float64 {
	if !alive {
		return 0
	}
	pay := math.Exp(x) - k
	if pay <= 0 {
		return 0
	}
	return disc * pay
}

func ipow(b, e int) int {
	r := 1
	for i := 0; i < e; i++ {
		r *= b
	}
	return r
}
