package heston

import (
	"fmt"
	"math"

	"binopt/internal/rng"
)

// SimConfig parameterises a Heston Monte Carlo run.
type SimConfig struct {
	Paths int
	Steps int // Euler time steps over the option's life
	Seed  uint64
}

func (c SimConfig) validate() error {
	if c.Paths < 2 {
		return fmt.Errorf("heston: need at least 2 paths, got %d", c.Paths)
	}
	if c.Steps < 1 {
		return fmt.Errorf("heston: need at least 1 step, got %d", c.Steps)
	}
	return nil
}

// Estimate is a Monte Carlo price with its standard error.
type Estimate struct {
	Price  float64
	StdErr float64
	Paths  int
}

// stepState advances one full-truncation Euler step of (log S, v):
// the variance is floored at zero inside the drift and diffusion, the
// standard bias-minimising discretisation for the square-root process.
func stepState(p Params, x, v, dt, zs, zv float64) (float64, float64) {
	vp := v
	if vp < 0 {
		vp = 0
	}
	sq := math.Sqrt(vp * dt)
	x += (p.Rate-p.Div-0.5*vp)*dt + sq*zs
	v += p.Kappa*(p.Theta-vp)*dt + p.Xi*sq*zv
	return x, v
}

// correlate maps two independent standard normals to the correlated pair
// (z_s, z_v) with correlation rho.
func correlate(rho, z1, z2 float64) (zs, zv float64) {
	zv = z1
	zs = rho*z1 + math.Sqrt(1-rho*rho)*z2
	return zs, zv
}

// EuropeanCallMC estimates the European call by full-truncation Euler
// simulation. It exists mainly to validate the simulator against the
// semi-analytic price; real European pricing should use EuropeanCall.
func EuropeanCallMC(p Params, k, t float64, cfg SimConfig) (Estimate, error) {
	if err := p.Validate(); err != nil {
		return Estimate{}, err
	}
	if err := cfg.validate(); err != nil {
		return Estimate{}, err
	}
	if !(k > 0) || !(t > 0) {
		return Estimate{}, fmt.Errorf("heston: strike and expiry must be positive")
	}
	dt := t / float64(cfg.Steps)
	disc := math.Exp(-p.Rate * t)
	norm := rng.NewNorm(rng.New(cfg.Seed))

	var sum, sumSq float64
	for i := 0; i < cfg.Paths; i++ {
		x := math.Log(p.Spot)
		v := p.V0
		for s := 0; s < cfg.Steps; s++ {
			zs, zv := correlate(p.Rho, norm.Next(), norm.Next())
			x, v = stepState(p, x, v, dt, zs, zv)
		}
		pay := math.Exp(x) - k
		if pay < 0 {
			pay = 0
		}
		y := disc * pay
		sum += y
		sumSq += y * y
	}
	n := float64(cfg.Paths)
	mean := sum / n
	variance := sumSq/n - mean*mean
	if variance < 0 {
		variance = 0
	}
	return Estimate{Price: mean, StdErr: math.Sqrt(variance / n), Paths: cfg.Paths}, nil
}

// DownAndOutCallMC estimates a down-and-out barrier call: the option
// pays like a European call unless the spot touches the barrier at any
// monitoring date (the Euler grid), in which case it knocks out. This is
// the product class of the benchmark in [4]. The discrete monitoring
// bias shrinks as O(sqrt(dt)).
func DownAndOutCallMC(p Params, k, barrier, t float64, cfg SimConfig) (Estimate, error) {
	if err := p.Validate(); err != nil {
		return Estimate{}, err
	}
	if err := cfg.validate(); err != nil {
		return Estimate{}, err
	}
	if !(k > 0) || !(t > 0) {
		return Estimate{}, fmt.Errorf("heston: strike and expiry must be positive")
	}
	if !(barrier > 0) || barrier >= p.Spot {
		return Estimate{}, fmt.Errorf("heston: down barrier %v must be positive and below spot %v", barrier, p.Spot)
	}
	dt := t / float64(cfg.Steps)
	disc := math.Exp(-p.Rate * t)
	logB := math.Log(barrier)
	norm := rng.NewNorm(rng.New(cfg.Seed))

	var sum, sumSq float64
	for i := 0; i < cfg.Paths; i++ {
		x := math.Log(p.Spot)
		v := p.V0
		alive := true
		for s := 0; s < cfg.Steps; s++ {
			zs, zv := correlate(p.Rho, norm.Next(), norm.Next())
			x, v = stepState(p, x, v, dt, zs, zv)
			if x <= logB {
				alive = false
				break
			}
		}
		y := 0.0
		if alive {
			if pay := math.Exp(x) - k; pay > 0 {
				y = disc * pay
			}
		}
		sum += y
		sumSq += y * y
	}
	n := float64(cfg.Paths)
	mean := sum / n
	variance := sumSq/n - mean*mean
	if variance < 0 {
		variance = 0
	}
	return Estimate{Price: mean, StdErr: math.Sqrt(variance / n), Paths: cfg.Paths}, nil
}
