// Package bs implements the Black–Scholes–Merton closed-form price and
// Greeks for European options. The lattice engines converge to these
// values as the step count grows, which is the primary correctness oracle
// for the reproduction (the paper's leaves "correspond to the pricing of
// European options and can be found analytically", §III-B).
package bs

import (
	"fmt"
	"math"

	"binopt/internal/mathx"
	"binopt/internal/option"
)

// Greeks bundles the standard first- and second-order sensitivities.
type Greeks struct {
	Delta float64 // dV/dS
	Gamma float64 // d2V/dS2
	Vega  float64 // dV/dSigma (per unit of volatility, not per %)
	Theta float64 // dV/dt (calendar decay, per year)
	Rho   float64 // dV/dRate
}

// d1d2 returns the two Black–Scholes auxiliary terms.
func d1d2(o option.Option) (d1, d2 float64) {
	volSqrtT := o.Sigma * math.Sqrt(o.T)
	d1 = (math.Log(o.Spot/o.Strike) + (o.Rate-o.Div+0.5*o.Sigma*o.Sigma)*o.T) / volSqrtT
	d2 = d1 - volSqrtT
	return d1, d2
}

// Price returns the Black–Scholes value of a European option. American
// contracts are rejected: no closed form exists for them, which is the
// entire reason the paper builds a lattice accelerator.
func Price(o option.Option) (float64, error) {
	if err := o.Validate(); err != nil {
		return 0, err
	}
	if o.Style != option.European {
		return 0, fmt.Errorf("bs: closed form only prices European options, got %v", o.Style)
	}
	return price(o), nil
}

// price computes the closed form without re-validating; callers inside the
// package guarantee a valid European contract.
func price(o option.Option) float64 {
	d1, d2 := d1d2(o)
	dfDiv := math.Exp(-o.Div * o.T)
	dfRate := math.Exp(-o.Rate * o.T)
	if o.Right == option.Call {
		return o.Spot*dfDiv*mathx.NormCDF(d1) - o.Strike*dfRate*mathx.NormCDF(d2)
	}
	return o.Strike*dfRate*mathx.NormCDF(-d2) - o.Spot*dfDiv*mathx.NormCDF(-d1)
}

// PriceAndGreeks returns the closed-form value along with the analytic
// Greeks.
func PriceAndGreeks(o option.Option) (float64, Greeks, error) {
	v, err := Price(o)
	if err != nil {
		return 0, Greeks{}, err
	}
	d1, d2 := d1d2(o)
	dfDiv := math.Exp(-o.Div * o.T)
	dfRate := math.Exp(-o.Rate * o.T)
	sqrtT := math.Sqrt(o.T)
	pdf := mathx.NormPDF(d1)

	var g Greeks
	g.Gamma = dfDiv * pdf / (o.Spot * o.Sigma * sqrtT)
	g.Vega = o.Spot * dfDiv * pdf * sqrtT
	if o.Right == option.Call {
		g.Delta = dfDiv * mathx.NormCDF(d1)
		g.Theta = -o.Spot*dfDiv*pdf*o.Sigma/(2*sqrtT) -
			o.Rate*o.Strike*dfRate*mathx.NormCDF(d2) +
			o.Div*o.Spot*dfDiv*mathx.NormCDF(d1)
		g.Rho = o.Strike * o.T * dfRate * mathx.NormCDF(d2)
	} else {
		g.Delta = -dfDiv * mathx.NormCDF(-d1)
		g.Theta = -o.Spot*dfDiv*pdf*o.Sigma/(2*sqrtT) +
			o.Rate*o.Strike*dfRate*mathx.NormCDF(-d2) -
			o.Div*o.Spot*dfDiv*mathx.NormCDF(-d1)
		g.Rho = -o.Strike * o.T * dfRate * mathx.NormCDF(-d2)
	}
	return v, g, nil
}

// Vega returns only the volatility sensitivity; the implied-volatility
// Newton solver needs it on every iteration and nothing else.
func Vega(o option.Option) (float64, error) {
	if err := o.Validate(); err != nil {
		return 0, err
	}
	d1, _ := d1d2(o)
	return o.Spot * math.Exp(-o.Div*o.T) * mathx.NormPDF(d1) * math.Sqrt(o.T), nil
}
