package bs

import (
	"math"
	"testing"
	"testing/quick"

	"binopt/internal/mathx"
	"binopt/internal/option"
)

func euro(right option.Right) option.Option {
	return option.Option{
		Right:  right,
		Style:  option.European,
		Spot:   100,
		Strike: 100,
		Rate:   0.05,
		Sigma:  0.2,
		T:      1,
	}
}

func TestPriceKnownValues(t *testing.T) {
	// Hull, "Options, Futures & Other Derivatives" style reference values
	// recomputed independently at full precision.
	cases := []struct {
		name string
		o    option.Option
		want float64
	}{
		{"atm call", euro(option.Call), 10.450583572185565},
		{"atm put", euro(option.Put), 5.573526022256971},
		{
			"itm call",
			option.Option{Right: option.Call, Style: option.European,
				Spot: 110, Strike: 100, Rate: 0.05, Sigma: 0.2, T: 1},
			17.6629537405905,
		},
		{
			"hull 15.6 put",
			option.Option{Right: option.Put, Style: option.European,
				Spot: 42, Strike: 40, Rate: 0.10, Sigma: 0.2, T: 0.5},
			0.808599372900096,
		},
	}
	for _, c := range cases {
		got, err := Price(c.o)
		if err != nil {
			t.Fatalf("%s: %v", c.name, err)
		}
		if !mathx.AlmostEqual(got, c.want, 1e-12, 1e-12) {
			t.Errorf("%s: Price = %.15g, want %.15g", c.name, got, c.want)
		}
	}
}

func TestPriceTextbookValues(t *testing.T) {
	// Independent oracle: values quoted in Hull to two decimals.
	call, err := Price(option.Option{Right: option.Call, Style: option.European,
		Spot: 42, Strike: 40, Rate: 0.10, Sigma: 0.2, T: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(call-4.76) > 0.005 {
		t.Errorf("Hull call = %v, want 4.76", call)
	}
	put, err := Price(option.Option{Right: option.Put, Style: option.European,
		Spot: 42, Strike: 40, Rate: 0.10, Sigma: 0.2, T: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(put-0.81) > 0.005 {
		t.Errorf("Hull put = %v, want 0.81", put)
	}
}

func TestPriceRejectsAmerican(t *testing.T) {
	o := euro(option.Call)
	o.Style = option.American
	if _, err := Price(o); err == nil {
		t.Error("American option must be rejected by the closed form")
	}
}

func TestPriceRejectsInvalid(t *testing.T) {
	o := euro(option.Call)
	o.Sigma = 0
	if _, err := Price(o); err == nil {
		t.Error("invalid option must be rejected")
	}
}

func TestPutCallParity(t *testing.T) {
	f := func(rawS, rawK, rawSigma, rawT float64) bool {
		o := euro(option.Call)
		o.Spot = 20 + math.Abs(math.Mod(rawS, 300))
		o.Strike = 20 + math.Abs(math.Mod(rawK, 300))
		o.Sigma = 0.05 + math.Abs(math.Mod(rawSigma, 0.8))
		o.T = 0.05 + math.Abs(math.Mod(rawT, 3))
		call, err := Price(o)
		if err != nil {
			return false
		}
		o.Right = option.Put
		put, err := Price(o)
		if err != nil {
			return false
		}
		lhs := call - put
		rhs := o.Spot*math.Exp(-o.Div*o.T) - o.Strike*math.Exp(-o.Rate*o.T)
		return mathx.AlmostEqual(lhs, rhs, 1e-10, 1e-10)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestGreeksAgainstFiniteDifferences(t *testing.T) {
	for _, right := range []option.Right{option.Call, option.Put} {
		o := euro(right)
		o.Div = 0.01
		v, g, err := PriceAndGreeks(o)
		if err != nil {
			t.Fatal(err)
		}
		if v <= 0 {
			t.Fatalf("%v: price %v", right, v)
		}

		bump := func(mutate func(*option.Option, float64), h float64) float64 {
			up, dn := o, o
			mutate(&up, h)
			mutate(&dn, -h)
			vu, _ := Price(up)
			vd, _ := Price(dn)
			return (vu - vd) / (2 * h)
		}

		const h = 1e-4
		if fd := bump(func(x *option.Option, d float64) { x.Spot += d }, h*o.Spot); !mathx.AlmostEqual(g.Delta, fd, 1e-6, 1e-5) {
			t.Errorf("%v delta: analytic %v vs fd %v", right, g.Delta, fd)
		}
		if fd := bump(func(x *option.Option, d float64) { x.Sigma += d }, h); !mathx.AlmostEqual(g.Vega, fd, 1e-5, 1e-5) {
			t.Errorf("%v vega: analytic %v vs fd %v", right, g.Vega, fd)
		}
		if fd := bump(func(x *option.Option, d float64) { x.Rate += d }, h); !mathx.AlmostEqual(g.Rho, fd, 1e-5, 1e-5) {
			t.Errorf("%v rho: analytic %v vs fd %v", right, g.Rho, fd)
		}
		// Theta: d/dt of remaining life; bump T downward by h years.
		if fd := bump(func(x *option.Option, d float64) { x.T -= d }, h); !mathx.AlmostEqual(g.Theta, fd, 1e-4, 1e-4) {
			t.Errorf("%v theta: analytic %v vs fd %v", right, g.Theta, fd)
		}
		// Gamma via second difference of spot.
		up, dn := o, o
		up.Spot += 0.01
		dn.Spot -= 0.01
		vu, _ := Price(up)
		vd, _ := Price(dn)
		fdGamma := (vu - 2*v + vd) / (0.01 * 0.01)
		if !mathx.AlmostEqual(g.Gamma, fdGamma, 1e-5, 1e-4) {
			t.Errorf("%v gamma: analytic %v vs fd %v", right, g.Gamma, fdGamma)
		}
	}
}

func TestVegaMatchesPriceAndGreeks(t *testing.T) {
	o := euro(option.Put)
	_, g, err := PriceAndGreeks(o)
	if err != nil {
		t.Fatal(err)
	}
	v, err := Vega(o)
	if err != nil {
		t.Fatal(err)
	}
	if v != g.Vega {
		t.Errorf("Vega = %v, PriceAndGreeks.Vega = %v", v, g.Vega)
	}
	bad := o
	bad.Spot = -1
	if _, err := Vega(bad); err == nil {
		t.Error("Vega must validate input")
	}
}

func TestPriceBounds(t *testing.T) {
	// European call is bounded by S*exp(-qT) above and intrinsic of the
	// forward below.
	f := func(rawK float64) bool {
		o := euro(option.Call)
		o.Strike = 20 + math.Abs(math.Mod(rawK, 300))
		v, err := Price(o)
		if err != nil {
			return false
		}
		upper := o.Spot * math.Exp(-o.Div*o.T)
		lower := math.Max(0, o.Spot*math.Exp(-o.Div*o.T)-o.Strike*math.Exp(-o.Rate*o.T))
		return v >= lower-1e-12 && v <= upper+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
