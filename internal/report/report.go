// Package report renders the reproduction's results in the paper's own
// table layouts (Table I resource usage, Table II performances) plus CSV
// for downstream tooling, and carries the published baseline rows the
// paper compares against ([9] Jin et al. on a Virtex 4, [10] Wynnyk &
// Magdon-Ismail on a Stratix III).
package report

import (
	"fmt"
	"math"
	"strings"
)

// Baseline is a published comparison row quoted, not re-measured, exactly
// as the paper does.
type Baseline struct {
	Label         string
	Platform      string
	Precision     string
	OptionsPerSec float64
	NodesPerSec   float64
	RMSENote      string
}

// PublishedBaselines returns the two related-work rows of Table II.
func PublishedBaselines() []Baseline {
	return []Baseline{
		{
			Label:         "[9] Jin et al.",
			Platform:      "Virtex 4 xc4vsx55",
			Precision:     "double",
			OptionsPerSec: 385,
			NodesPerSec:   202e6,
			RMSENote:      "0",
		},
		{
			Label:         "[10] Wynnyk et al.",
			Platform:      "Stratix III EP3SE260",
			Precision:     "double",
			OptionsPerSec: 1152,
			NodesPerSec:   576e6,
			RMSENote:      "0",
		},
	}
}

// Table is a minimal text-table builder: fixed header, ragged-safe rows,
// column widths fitted to content.
type Table struct {
	header []string
	rows   [][]string
}

// NewTable creates a table with the given column headers.
func NewTable(header ...string) *Table {
	return &Table{header: header}
}

// AddRow appends one row; missing cells render empty.
func (t *Table) AddRow(cells ...string) {
	t.rows = append(t.rows, cells)
}

// String renders the table with aligned columns.
func (t *Table) String() string {
	widths := make([]int, len(t.header))
	for i, h := range t.header {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, w := range widths {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", w, c)
		}
		b.WriteString("\n")
	}
	writeRow(t.header)
	total := 0
	for _, w := range widths {
		total += w
	}
	b.WriteString(strings.Repeat("-", total+2*(len(widths)-1)))
	b.WriteString("\n")
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// CSV renders the table as comma-separated values (cells containing
// commas or quotes are quoted).
func (t *Table) CSV() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString(",")
			}
			if strings.ContainsAny(c, ",\"\n") {
				c = "\"" + strings.ReplaceAll(c, "\"", "\"\"") + "\""
			}
			b.WriteString(c)
		}
		b.WriteString("\n")
	}
	writeRow(t.header)
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}

// Sci formats a float in compact scientific-or-plain notation the way the
// paper's tables read.
func Sci(x float64) string {
	switch {
	case x == 0:
		return "0"
	case x >= 1e6 || x < 1e-3:
		return fmt.Sprintf("%.3g", x)
	case x >= 100:
		return fmt.Sprintf("%.0f", x)
	case x >= 1:
		return fmt.Sprintf("%.3g", x)
	default:
		return fmt.Sprintf("%.2g", x)
	}
}

// RMSENote renders a measured RMSE the way Table II quotes it: "0" for
// machine-precision agreement, the nearest order of magnitude otherwise
// (5.6e-4 reads "~1e-3", as the paper rounds).
func RMSENote(rmse float64) string {
	if rmse < 1e-9 {
		return "0"
	}
	exp := int(math.Round(math.Log10(rmse)))
	return fmt.Sprintf("~1e%d", exp)
}

// Markdown renders the table as GitHub-flavoured markdown.
func (t *Table) Markdown() string {
	var b strings.Builder
	writeRow := func(cells []string) {
		b.WriteString("|")
		for i := range t.header {
			c := ""
			if i < len(cells) {
				c = cells[i]
			}
			b.WriteString(" ")
			b.WriteString(strings.ReplaceAll(c, "|", "\\|"))
			b.WriteString(" |")
		}
		b.WriteString("\n")
	}
	writeRow(t.header)
	b.WriteString("|")
	for range t.header {
		b.WriteString("---|")
	}
	b.WriteString("\n")
	for _, row := range t.rows {
		writeRow(row)
	}
	return b.String()
}
