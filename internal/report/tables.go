package report

import (
	"fmt"

	"binopt/internal/hls"
	"binopt/internal/perf"
)

// FormatTable1 renders fit reports in the layout of the paper's Table I.
func FormatTable1(chipName string, totalRegs int, totalM9K int, totalDSP int, totalBits int64, reports ...hls.FitReport) string {
	return BuildTable1(chipName, totalRegs, totalM9K, totalDSP, totalBits, reports...).String()
}

// BuildTable1 assembles the Table I structure for text or CSV rendering.
func BuildTable1(chipName string, totalRegs int, totalM9K int, totalDSP int, totalBits int64, reports ...hls.FitReport) *Table {
	t := NewTable(append([]string{chipName}, names(reports)...)...)
	row := func(label string, cell func(hls.FitReport) string) {
		cells := []string{label}
		for _, r := range reports {
			cells = append(cells, cell(r))
		}
		t.AddRow(cells...)
	}
	row("Parallelisation", func(r hls.FitReport) string { return r.Knobs.String() })
	row("Logic utilization", func(r hls.FitReport) string { return fmt.Sprintf("%.0f %%", r.LogicUtilPct) })
	row("Registers", func(r hls.FitReport) string {
		return fmt.Sprintf("%d K/%d K", r.Registers/1024, totalRegs/1024)
	})
	row("Memory bits", func(r hls.FitReport) string {
		return fmt.Sprintf("%d K/%d K (%.0f %%)", r.MemoryBits/1024, totalBits/1024,
			100*float64(r.MemoryBits)/float64(totalBits))
	})
	row("including M9K", func(r hls.FitReport) string {
		return fmt.Sprintf("%d/%d (%.0f %%)", r.M9K, totalM9K, 100*float64(r.M9K)/float64(totalM9K))
	})
	row("DSP (18-bit)", func(r hls.FitReport) string {
		return fmt.Sprintf("%d/%d (%.0f %%)", r.DSP18, totalDSP, 100*float64(r.DSP18)/float64(totalDSP))
	})
	row("Clock Frequency", func(r hls.FitReport) string { return fmt.Sprintf("%.2f MHz", r.FmaxMHz) })
	row("Power consumption", func(r hls.FitReport) string { return fmt.Sprintf("%.1f W", r.PowerWatts) })
	return t
}

func names(reports []hls.FitReport) []string {
	out := make([]string, len(reports))
	for i, r := range reports {
		out[i] = r.Kernel
	}
	return out
}

// Table2Row is one measured column of the performance comparison.
type Table2Row struct {
	Kernel    string
	Platform  string
	Precision string
	Estimate  perf.Estimate
	RMSE      float64
	// RMSEKnown is false for rows where accuracy was not measured (the
	// published baselines).
	RMSEKnown bool
	RMSEText  string // rendered note; filled from RMSE when known
}

// FormatTable2 renders measured rows plus the published baselines in the
// layout of the paper's Table II.
func FormatTable2(rows []Table2Row, baselines []Baseline) string {
	return BuildTable2(rows, baselines).String()
}

// BuildTable2 assembles the Table II structure for text or CSV rendering.
func BuildTable2(rows []Table2Row, baselines []Baseline) *Table {
	t := NewTable("", "Platform", "Precision", "options/s", "RMSE", "options/J", "Tree nodes/s")
	for _, r := range rows {
		note := r.RMSEText
		if note == "" && r.RMSEKnown {
			note = RMSENote(r.RMSE)
		}
		label := "Kernel " + r.Kernel
		if r.Kernel == "reference" {
			label = "Reference Software"
		}
		t.AddRow(
			label,
			r.Platform,
			r.Precision,
			Sci(r.Estimate.OptionsPerSec),
			note,
			Sci(r.Estimate.OptionsPerJoule),
			Sci(r.Estimate.NodesPerSec),
		)
	}
	for _, b := range baselines {
		t.AddRow(b.Label, b.Platform, b.Precision, Sci(b.OptionsPerSec), b.RMSENote, "N/A", Sci(b.NodesPerSec))
	}
	return t
}

// FormatSaturation renders the §V-C saturation sweep.
func FormatSaturation(label string, points []perf.CurvePoint) string {
	t := NewTable("options", label+" options/s", "seconds")
	for _, p := range points {
		t.AddRow(fmt.Sprintf("%d", p.Options), Sci(p.OptionsPerSec), Sci(p.Seconds))
	}
	return t.String()
}
