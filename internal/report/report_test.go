package report

import (
	"strings"
	"testing"

	"binopt/internal/device"
	"binopt/internal/hls"
	"binopt/internal/kernels"
	"binopt/internal/perf"
)

func TestTableRendering(t *testing.T) {
	tbl := NewTable("a", "bb", "ccc")
	tbl.AddRow("1", "2", "3")
	tbl.AddRow("longer", "x") // ragged row
	s := tbl.String()
	lines := strings.Split(strings.TrimRight(s, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("got %d lines:\n%s", len(lines), s)
	}
	if !strings.HasPrefix(lines[0], "a") || !strings.Contains(lines[0], "ccc") {
		t.Errorf("header: %q", lines[0])
	}
	if !strings.Contains(lines[2], "1") {
		t.Errorf("row: %q", lines[2])
	}
}

func TestTableCSV(t *testing.T) {
	tbl := NewTable("x", "y")
	tbl.AddRow("a,b", `say "hi"`)
	csv := tbl.CSV()
	if !strings.Contains(csv, `"a,b"`) {
		t.Errorf("comma cell not quoted: %q", csv)
	}
	if !strings.Contains(csv, `"say ""hi"""`) {
		t.Errorf("quote cell not escaped: %q", csv)
	}
	if !strings.HasPrefix(csv, "x,y\n") {
		t.Errorf("header: %q", csv)
	}
}

func TestSci(t *testing.T) {
	cases := map[float64]string{
		0:      "0",
		25:     "25",
		2400:   "2400",
		47000:  "47000",
		1.7:    "1.7",
		0.4:    "0.4",
		1.3e9:  "1.3e+09",
		13e6:   "1.3e+07",
		0.0001: "0.0001",
	}
	for in, want := range cases {
		if got := Sci(in); got != want {
			t.Errorf("Sci(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestRMSENote(t *testing.T) {
	if got := RMSENote(0); got != "0" {
		t.Errorf("RMSENote(0) = %q", got)
	}
	if got := RMSENote(1e-12); got != "0" {
		t.Errorf("RMSENote(1e-12) = %q", got)
	}
	if got := RMSENote(2.4e-3); got != "~1e-3" {
		t.Errorf("RMSENote(2.4e-3) = %q", got)
	}
	if got := RMSENote(9e-4); got != "~1e-3" {
		t.Errorf("RMSENote(9e-4) = %q", got)
	}
}

func TestPublishedBaselines(t *testing.T) {
	bs := PublishedBaselines()
	if len(bs) != 2 {
		t.Fatalf("got %d baselines", len(bs))
	}
	if bs[0].OptionsPerSec != 385 || bs[1].OptionsPerSec != 1152 {
		t.Error("baseline throughput values do not match Table II")
	}
}

func TestFormatTable1(t *testing.T) {
	board := device.DE4()
	fitA, err := hls.Fit(board, kernels.ProfileIVA(), kernels.PaperKnobsIVA())
	if err != nil {
		t.Fatal(err)
	}
	fitB, err := hls.Fit(board, kernels.ProfileIVB(1024), kernels.PaperKnobsIVB())
	if err != nil {
		t.Fatal(err)
	}
	s := FormatTable1(board.Chip.Name, board.Chip.Registers, board.Chip.M9K,
		board.Chip.DSP18, board.Chip.MemoryBits, fitA, fitB)
	for _, want := range []string{"Logic utilization", "including M9K", "DSP (18-bit)",
		"Clock Frequency", "Power consumption", "kernel-IV.A", "kernel-IV.B", "MHz"} {
		if !strings.Contains(s, want) {
			t.Errorf("Table I missing %q:\n%s", want, s)
		}
	}
}

func TestFormatTable2(t *testing.T) {
	rows := []Table2Row{{
		Kernel:    "IV.B",
		Platform:  "EP4SGX530",
		Precision: "double",
		Estimate: perf.Estimate{
			OptionsPerSec: 2400, OptionsPerJoule: 140, NodesPerSec: 1.3e9,
		},
		RMSE:      1.2e-3,
		RMSEKnown: true,
	}}
	s := FormatTable2(rows, PublishedBaselines())
	for _, want := range []string{"Kernel IV.B", "~1e-3", "options/J", "[9] Jin", "[10] Wynnyk", "N/A"} {
		if !strings.Contains(s, want) {
			t.Errorf("Table II missing %q:\n%s", want, s)
		}
	}
}

func TestFormatSaturation(t *testing.T) {
	pts := perf.SaturationCurve(2400, 100000, []int64{100, 100000})
	s := FormatSaturation("FPGA IV.B", pts)
	if !strings.Contains(s, "100000") || !strings.Contains(s, "options/s") {
		t.Errorf("saturation table:\n%s", s)
	}
}

func TestTableMarkdown(t *testing.T) {
	tbl := NewTable("a", "b")
	tbl.AddRow("1", "x|y")
	md := tbl.Markdown()
	if !strings.HasPrefix(md, "| a | b |\n|---|---|\n") {
		t.Errorf("markdown header:\n%s", md)
	}
	if !strings.Contains(md, `x\|y`) {
		t.Errorf("pipe not escaped:\n%s", md)
	}
}
