// Package faults is a deterministic, seedable fault injector for the
// serving stack's simulated substrates. A production pool of DE4s,
// GTX660s and Xeons would see transient PCIe errors, driver resets and
// wedged command queues; the modelled devices never misbehave on their
// own, so the fault-tolerance machinery in internal/serve (shard
// circuit breakers, retry-with-failover, honest Retry-After under
// partial outage) would otherwise be untestable. An Injector compiles a
// small spec grammar into per-backend fault profiles and hands out
// hooks that accel.Engine consults before pricing; the same seed and
// call order reproduce the same fault schedule, so chaos runs are
// replayable.
//
// Spec grammar (clauses separated by ';', profiles by ','):
//
//	spec    := clause (';' clause)*
//	clause  := backend ':' profile (',' profile)*
//	backend := registry name | '*'            (scope; '*' matches any)
//	profile := 'err=' RATE                    fail pricing with probability RATE
//	         | 'lat=' DUR ['@' RATE]          add DUR latency (probability RATE, default 1)
//	         | 'stuck=' N                     after N calls the shard wedges:
//	                                          every call stalls, then errors
//	         | 'stall=' DUR                   wedged-call stall (default 50ms)
//
// Examples:
//
//	gpu-ivb:err=0.2                   20% of GPU pricings fail
//	fpga-ivb:lat=5ms@0.1              10% of FPGA pricings take 5ms longer
//	cpu-ref:stuck=100,stall=20ms      Xeon shard wedges after 100 options
//	*:err=0.05                        5% error rate everywhere
package faults

import (
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"
)

// ErrInjected marks every failure the injector produces, so consumers
// can tell a simulated outage from a real pricing error with errors.Is.
var ErrInjected = errors.New("injected fault")

// defaultStall is how long a wedged shard's calls block before erroring
// when the clause sets stuck= without stall=.
const defaultStall = 50 * time.Millisecond

// rule is one backend's compiled fault profile.
type rule struct {
	errRate    float64       // probability a call fails
	latency    time.Duration // added latency when the spike fires
	latRate    float64       // probability of the latency spike
	stuckAfter int64         // calls before the shard wedges (-1: never)
	stall      time.Duration // wedged-call stall before the error
}

// Injector owns the compiled rules and the seeded PRNG. All decisions
// draw from one generator under a mutex, so a fixed seed plus a fixed
// call order yields a fixed fault schedule.
type Injector struct {
	spec string
	seed int64

	mu    sync.Mutex
	rng   *rand.Rand
	rules map[string]*rule
	calls map[string]int64 // per-backend hook invocations, drives stuck=
}

// Parse compiles a fault spec. An empty spec yields an inactive
// injector (Active reports false, HookFor returns nil for everything).
func Parse(spec string, seed int64) (*Injector, error) {
	in := &Injector{
		spec:  spec,
		seed:  seed,
		rng:   rand.New(rand.NewSource(seed)),
		rules: make(map[string]*rule),
		calls: make(map[string]int64),
	}
	for _, clause := range strings.Split(spec, ";") {
		clause = strings.TrimSpace(clause)
		if clause == "" {
			continue
		}
		backend, profiles, ok := strings.Cut(clause, ":")
		backend = strings.TrimSpace(backend)
		if !ok || backend == "" {
			return nil, fmt.Errorf("faults: clause %q: want backend:profile[,profile...]", clause)
		}
		if _, dup := in.rules[backend]; dup {
			return nil, fmt.Errorf("faults: backend %q scoped by more than one clause", backend)
		}
		r := &rule{stuckAfter: -1, stall: defaultStall}
		for _, p := range strings.Split(profiles, ",") {
			p = strings.TrimSpace(p)
			key, val, ok := strings.Cut(p, "=")
			if !ok {
				return nil, fmt.Errorf("faults: clause %q: profile %q is not key=value", clause, p)
			}
			switch key {
			case "err":
				rate, err := parseRate(val)
				if err != nil {
					return nil, fmt.Errorf("faults: clause %q: err=%s: %w", clause, val, err)
				}
				r.errRate = rate
			case "lat":
				durStr, rateStr, hasRate := strings.Cut(val, "@")
				d, err := time.ParseDuration(durStr)
				if err != nil || d <= 0 {
					return nil, fmt.Errorf("faults: clause %q: lat=%s: want a positive duration", clause, val)
				}
				r.latency, r.latRate = d, 1
				if hasRate {
					rate, err := parseRate(rateStr)
					if err != nil {
						return nil, fmt.Errorf("faults: clause %q: lat=%s: %w", clause, val, err)
					}
					r.latRate = rate
				}
			case "stuck":
				n, err := strconv.ParseInt(val, 10, 64)
				if err != nil || n < 0 {
					return nil, fmt.Errorf("faults: clause %q: stuck=%s: want a non-negative call count", clause, val)
				}
				r.stuckAfter = n
			case "stall":
				d, err := time.ParseDuration(val)
				if err != nil || d < 0 {
					return nil, fmt.Errorf("faults: clause %q: stall=%s: want a non-negative duration", clause, val)
				}
				r.stall = d
			default:
				return nil, fmt.Errorf("faults: clause %q: unknown profile %q (want err/lat/stuck/stall)", clause, key)
			}
		}
		if r.latRate == 0 {
			r.latency = 0 // lat=DUR@0 never fires; drop the dead duration
		}
		if r.errRate == 0 && r.latRate == 0 && r.stuckAfter < 0 {
			return nil, fmt.Errorf("faults: clause %q selects no fault profile", clause)
		}
		in.rules[backend] = r
	}
	return in, nil
}

func parseRate(s string) (float64, error) {
	rate, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
	if err != nil || rate < 0 || rate > 1 {
		return 0, fmt.Errorf("want a probability in [0, 1]")
	}
	return rate, nil
}

// Active reports whether the injector carries any rule at all.
func (in *Injector) Active() bool { return in != nil && len(in.rules) > 0 }

// Seed returns the PRNG seed the schedule is derived from.
func (in *Injector) Seed() int64 { return in.seed }

// String returns the spec the injector was compiled from.
func (in *Injector) String() string { return in.spec }

// Canonical re-emits the compiled rules as a normalized spec: clauses
// sorted by backend, profiles in err, lat, stuck, stall order, inactive
// components omitted, durations and rates in Go's shortest round-trip
// forms. Parsing a canonical spec yields the same canonical spec, so
// two specs compile to the same fault schedule iff their canonical
// forms match; chaos reports log this form.
func (in *Injector) Canonical() string {
	var clauses []string
	for _, backend := range in.Backends() {
		r := in.rules[backend]
		var ps []string
		if r.errRate > 0 {
			ps = append(ps, "err="+formatRate(r.errRate))
		}
		if r.latRate > 0 {
			ps = append(ps, "lat="+r.latency.String()+"@"+formatRate(r.latRate))
		}
		if r.stuckAfter >= 0 {
			ps = append(ps, "stuck="+strconv.FormatInt(r.stuckAfter, 10))
			ps = append(ps, "stall="+r.stall.String())
		}
		clauses = append(clauses, backend+":"+strings.Join(ps, ","))
	}
	return strings.Join(clauses, ";")
}

func formatRate(r float64) string {
	return strconv.FormatFloat(r, 'g', -1, 64)
}

// Backends lists the scoped backend names, sorted ('*' included as-is).
func (in *Injector) Backends() []string {
	out := make([]string, 0, len(in.rules))
	for name := range in.rules {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// HookFor returns the fault hook for one backend — the function
// accel.Engine consults before pricing — or nil when no clause scopes
// it. Exact names win over the '*' wildcard.
func (in *Injector) HookFor(backend string) func() error {
	if in == nil {
		return nil
	}
	r := in.rules[backend]
	if r == nil {
		r = in.rules["*"]
	}
	if r == nil {
		return nil
	}
	return func() error { return in.decide(backend, r) }
}

// decide plays one call against the backend's profile: wedge check
// first (a stuck shard fails everything), then the latency spike, then
// the error draw. Sleeps happen outside the mutex so concurrent shards
// only serialise on the PRNG, not on each other's stalls.
func (in *Injector) decide(backend string, r *rule) error {
	in.mu.Lock()
	n := in.calls[backend]
	in.calls[backend] = n + 1
	var latHit, errHit bool
	if r.latRate > 0 {
		latHit = in.rng.Float64() < r.latRate
	}
	if r.errRate > 0 {
		errHit = in.rng.Float64() < r.errRate
	}
	in.mu.Unlock()

	if r.stuckAfter >= 0 && n >= r.stuckAfter {
		time.Sleep(r.stall)
		return fmt.Errorf("faults: %s: shard wedged after %d calls: %w", backend, r.stuckAfter, ErrInjected)
	}
	if latHit {
		time.Sleep(r.latency)
	}
	if errHit {
		return fmt.Errorf("faults: %s: %w", backend, ErrInjected)
	}
	return nil
}

// Calls reports how many times a backend's hook has fired, for chaos
// reports and tests.
func (in *Injector) Calls(backend string) int64 {
	if in == nil {
		return 0
	}
	in.mu.Lock()
	defer in.mu.Unlock()
	return in.calls[backend]
}
