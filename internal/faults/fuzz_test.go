package faults

import (
	"strings"
	"testing"
	"time"
)

// TestCanonical pins the normalized spelling of a representative spec:
// clauses sorted, profiles in err/lat/stuck/stall order, defaults made
// explicit, inactive components dropped.
func TestCanonical(t *testing.T) {
	cases := []struct {
		spec, want string
	}{
		{"", ""},
		{" ; ; ", ""},
		{"gpu-ivb:err=0.20", "gpu-ivb:err=0.2"},
		{"fpga-ivb:lat=5ms", "fpga-ivb:lat=5ms@1"},
		{"cpu-ref:stuck=100", "cpu-ref:stuck=100,stall=50ms"},
		{"cpu-ref:stall=20ms,stuck=100", "cpu-ref:stuck=100,stall=20ms"},
		{"b:err=0.1;a:lat=1s@0.5", "a:lat=1s@0.5;b:err=0.1"},
		{"*:err=0.05,lat=5ms@0", "*:err=0.05"},
	}
	for _, c := range cases {
		in, err := Parse(c.spec, 1)
		if err != nil {
			t.Errorf("Parse(%q): %v", c.spec, err)
			continue
		}
		if got := in.Canonical(); got != c.want {
			t.Errorf("Canonical(%q) = %q, want %q", c.spec, got, c.want)
		}
	}
}

// FuzzParse feeds arbitrary specs through the grammar. Parse must never
// panic, and whenever it accepts a spec the canonical re-emission must
// reparse to the identical canonical form and the identical compiled
// schedule — the round-trip that lets chaos reports log Canonical() and
// stay replayable.
func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"",
		"gpu-ivb:err=0.2",
		"fpga-ivb:lat=5ms@0.1",
		"cpu-ref:stuck=100,stall=20ms",
		"*:err=0.05",
		"a:err=1;b:lat=1h@0.5;c:stuck=0",
		"a:err=0.2,lat=3ms@0.9,stuck=7,stall=1ms",
		" spaced :  err = 0.5 ",
		"a:err=2",
		"a:lat=-5ms",
		"a:stuck=-1",
		"a:err=0.1;a:err=0.2",
		"a:stall=9ms",
		"a:b:err=1",
		";;;",
		"a,b:err=1e-3",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		in, err := Parse(spec, 42)
		if err != nil {
			if in != nil {
				t.Fatalf("Parse(%q) returned both an injector and error %v", spec, err)
			}
			return
		}
		c1 := in.Canonical()
		in2, err := Parse(c1, 42)
		if err != nil {
			t.Fatalf("canonical form %q of accepted spec %q does not reparse: %v", c1, spec, err)
		}
		c2 := in2.Canonical()
		if c1 != c2 {
			t.Fatalf("canonical form is not a fixed point: %q -> %q -> %q", spec, c1, c2)
		}
		if got, want := strings.Join(in2.Backends(), ";"), strings.Join(in.Backends(), ";"); got != want {
			t.Fatalf("round-trip changed backends: %q vs %q", got, want)
		}
		if in.Active() != in2.Active() {
			t.Fatalf("round-trip changed Active: %v vs %v", in.Active(), in2.Active())
		}
		// The compiled rules must survive the round-trip exactly: same
		// hooks scoped, and a wedged backend wedges at the same call.
		for _, b := range in.Backends() {
			r1, r2 := in.rules[b], in2.rules[b]
			if r1.errRate != r2.errRate || r1.latency != r2.latency || r1.latRate != r2.latRate ||
				r1.stuckAfter != r2.stuckAfter {
				t.Fatalf("round-trip changed rule for %q: %+v vs %+v", b, r1, r2)
			}
			if r1.stuckAfter >= 0 && r1.stall != r2.stall {
				t.Fatalf("round-trip changed stall for %q: %v vs %v", b, r1.stall, r2.stall)
			}
		}
	})
}

// TestFuzzSeedBehaviour spot-checks that a canonicalized spec drives the
// injector identically to the original: same seed, same call order,
// same fault schedule.
func TestFuzzSeedBehaviour(t *testing.T) {
	const spec = "a:err=0.5,lat=1us@0.5;b:stuck=3,stall=1us"
	in1, err := Parse(spec, 7)
	if err != nil {
		t.Fatal(err)
	}
	in2, err := Parse(in1.Canonical(), 7)
	if err != nil {
		t.Fatal(err)
	}
	h1, h2 := in1.HookFor("a"), in2.HookFor("a")
	w1, w2 := in1.HookFor("b"), in2.HookFor("b")
	deadline := time.Now().Add(10 * time.Second)
	for i := 0; i < 64 && time.Now().Before(deadline); i++ {
		if (h1() == nil) != (h2() == nil) {
			t.Fatalf("call %d: error schedules diverge between spec and canonical form", i)
		}
		if (w1() == nil) != (w2() == nil) {
			t.Fatalf("call %d: wedge schedules diverge between spec and canonical form", i)
		}
	}
}
