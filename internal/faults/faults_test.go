package faults

import (
	"errors"
	"strings"
	"testing"
	"time"
)

func TestParseRejectsBadSpecs(t *testing.T) {
	cases := []struct {
		spec string
		want string // substring of the error
	}{
		{"gpu-ivb", "backend:profile"},
		{":err=0.2", "backend:profile"},
		{"gpu-ivb:err", "key=value"},
		{"gpu-ivb:err=1.5", "probability"},
		{"gpu-ivb:err=-0.1", "probability"},
		{"gpu-ivb:lat=0", "positive duration"},
		{"gpu-ivb:lat=5ms@2", "probability"},
		{"gpu-ivb:stuck=-1", "non-negative"},
		{"gpu-ivb:stall=-5ms", "non-negative"},
		{"gpu-ivb:frob=1", "unknown profile"},
		{"gpu-ivb:stall=5ms", "no fault profile"},
		{"gpu-ivb:err=0.2;gpu-ivb:err=0.3", "more than one clause"},
	}
	for _, tc := range cases {
		if _, err := Parse(tc.spec, 1); err == nil || !strings.Contains(err.Error(), tc.want) {
			t.Errorf("Parse(%q) = %v, want error containing %q", tc.spec, err, tc.want)
		}
	}
}

func TestParseEmptySpecInactive(t *testing.T) {
	in, err := Parse("", 1)
	if err != nil {
		t.Fatal(err)
	}
	if in.Active() {
		t.Fatal("empty spec must be inactive")
	}
	if h := in.HookFor("gpu-ivb"); h != nil {
		t.Fatal("inactive injector handed out a hook")
	}
	var nilIn *Injector
	if nilIn.Active() || nilIn.HookFor("x") != nil || nilIn.Calls("x") != 0 {
		t.Fatal("nil injector must be safely inactive")
	}
}

func TestScopingAndWildcard(t *testing.T) {
	in, err := Parse("gpu-ivb:err=1;*:lat=1ms", 1)
	if err != nil {
		t.Fatal(err)
	}
	if got := in.Backends(); len(got) != 2 || got[0] != "*" || got[1] != "gpu-ivb" {
		t.Fatalf("Backends() = %v", got)
	}
	// Exact clause wins: gpu-ivb always errors.
	if err := in.HookFor("gpu-ivb")(); !errors.Is(err, ErrInjected) {
		t.Fatalf("gpu-ivb hook = %v, want ErrInjected", err)
	}
	// Everything else falls through to the wildcard (latency only).
	if err := in.HookFor("cpu-ref")(); err != nil {
		t.Fatalf("wildcard hook errored: %v", err)
	}
	if in.Calls("cpu-ref") != 1 || in.Calls("gpu-ivb") != 1 {
		t.Fatalf("calls = %d/%d, want 1/1", in.Calls("cpu-ref"), in.Calls("gpu-ivb"))
	}
}

// TestDeterministicSchedule: the same seed and call order must produce
// the same fault schedule; a different seed must (for this spec) not.
func TestDeterministicSchedule(t *testing.T) {
	schedule := func(seed int64) []bool {
		in, err := Parse("gpu-ivb:err=0.3", seed)
		if err != nil {
			t.Fatal(err)
		}
		hook := in.HookFor("gpu-ivb")
		out := make([]bool, 200)
		for i := range out {
			out[i] = hook() != nil
		}
		return out
	}
	a, b, c := schedule(7), schedule(7), schedule(8)
	same := func(x, y []bool) bool {
		for i := range x {
			if x[i] != y[i] {
				return false
			}
		}
		return true
	}
	if !same(a, b) {
		t.Fatal("same seed produced different schedules")
	}
	if same(a, c) {
		t.Fatal("different seeds produced identical 200-call schedules")
	}
	fails := 0
	for _, f := range a {
		if f {
			fails++
		}
	}
	// 30% of 200 with generous slack: the draw is Bernoulli, not exact.
	if fails < 30 || fails > 90 {
		t.Fatalf("err=0.3 schedule failed %d/200 calls", fails)
	}
}

func TestLatencySpike(t *testing.T) {
	in, err := Parse("fpga-ivb:lat=20ms", 1)
	if err != nil {
		t.Fatal(err)
	}
	hook := in.HookFor("fpga-ivb")
	start := time.Now()
	if err := hook(); err != nil {
		t.Fatalf("latency-only profile errored: %v", err)
	}
	if el := time.Since(start); el < 20*time.Millisecond {
		t.Fatalf("lat=20ms call returned in %s", el)
	}
}

func TestStuckShard(t *testing.T) {
	in, err := Parse("cpu-ref:stuck=3,stall=1ms", 1)
	if err != nil {
		t.Fatal(err)
	}
	hook := in.HookFor("cpu-ref")
	for i := 0; i < 3; i++ {
		if err := hook(); err != nil {
			t.Fatalf("call %d before the wedge errored: %v", i, err)
		}
	}
	for i := 0; i < 2; i++ {
		if err := hook(); !errors.Is(err, ErrInjected) {
			t.Fatalf("wedged call %d = %v, want ErrInjected", i, err)
		}
	}
	if got := in.Calls("cpu-ref"); got != 5 {
		t.Fatalf("calls = %d, want 5", got)
	}
}

// TestConcurrentHookRace exercises the shared PRNG path under the race
// detector.
func TestConcurrentHookRace(t *testing.T) {
	in, err := Parse("*:err=0.5", 3)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	for w := 0; w < 4; w++ {
		go func(name string) {
			hook := in.HookFor(name)
			for i := 0; i < 200; i++ {
				hook()
			}
			done <- struct{}{}
		}([]string{"a", "b", "c", "d"}[w])
	}
	for w := 0; w < 4; w++ {
		<-done
	}
	var total int64
	for _, name := range []string{"a", "b", "c", "d"} {
		total += in.Calls(name)
	}
	if total != 800 {
		t.Fatalf("total calls = %d, want 800", total)
	}
}
