// Package obslog is the serving tier's structured logging front door: a
// thin layer over log/slog that pins the attribute vocabulary every
// binary and package shares (component, node, trace_id, req), so a
// fleet's interleaved logs grep cleanly by trace ID straight into the
// merged Chrome trace. It deliberately adds no levels, sinks, or config
// beyond slog's own — the value is the shared vocabulary and the
// nil-safe disabled mode, not a logging framework.
package obslog

import (
	"io"
	"log/slog"
)

// Attribute keys shared across the fleet. Using the constants keeps the
// vocabulary greppable and typo-proof at call sites.
const (
	// KeyComponent names the subsystem ("serve", "router", "loadgen").
	KeyComponent = "component"
	// KeyNode names the fleet member a log line came from.
	KeyNode = "node"
	// KeyTrace is the 32-hex distributed trace ID.
	KeyTrace = "trace_id"
	// KeyReq is the process-local request group ID.
	KeyReq = "req"
)

// New builds a text-format logger writing to w, tagged with the
// component name. Level filters at and above; pass slog.LevelInfo for
// normal operation, slog.LevelDebug for verbose runs.
func New(w io.Writer, component string, level slog.Level) *slog.Logger {
	h := slog.NewTextHandler(w, &slog.HandlerOptions{Level: level})
	return slog.New(h).With(KeyComponent, component)
}

// Nop returns an enabled-but-silent logger: every call is accepted and
// discarded. Call sites hold a *slog.Logger unconditionally; disabled
// logging is this, not a nil check at every call.
func Nop() *slog.Logger {
	return slog.New(slog.NewTextHandler(io.Discard, &slog.HandlerOptions{Level: slog.Level(127)}))
}

// Or returns l, or the Nop logger when l is nil — the one nil check,
// made once where a logger enters a subsystem instead of at every log
// site.
func Or(l *slog.Logger) *slog.Logger {
	if l != nil {
		return l
	}
	return Nop()
}

// WithTrace returns l with the request's tracing identity attached, so
// every subsequent line correlates to spans and exemplars. Zero-valued
// fields are omitted rather than logged as empty.
func WithTrace(l *slog.Logger, trace string, req uint64) *slog.Logger {
	if l == nil {
		return Nop()
	}
	if trace != "" {
		l = l.With(KeyTrace, trace)
	}
	if req != 0 {
		l = l.With(KeyReq, req)
	}
	return l
}
