package obslog

import (
	"log/slog"
	"strings"
	"testing"
)

// TestNewCarriesComponent: lines carry the pinned component attribute.
func TestNewCarriesComponent(t *testing.T) {
	var b strings.Builder
	l := New(&b, "serve", slog.LevelInfo)
	l.Info("batch flushed", "options", 16)
	out := b.String()
	for _, want := range []string{"component=serve", "batch flushed", "options=16"} {
		if !strings.Contains(out, want) {
			t.Errorf("log line missing %q: %s", want, out)
		}
	}
}

// TestLevelFilter: lines below the handler level are dropped.
func TestLevelFilter(t *testing.T) {
	var b strings.Builder
	l := New(&b, "serve", slog.LevelInfo)
	l.Debug("noisy detail")
	if b.Len() != 0 {
		t.Errorf("debug line leaked through info level: %s", b.String())
	}
}

// TestWithTrace: trace and req attach when set, omit when zero, and a
// nil logger degrades to Nop instead of panicking.
func TestWithTrace(t *testing.T) {
	var b strings.Builder
	l := New(&b, "router", slog.LevelInfo)

	WithTrace(l, "4bf92f3577b34da6a3ce929d0e0e4736", 7).Info("forwarded")
	out := b.String()
	if !strings.Contains(out, "trace_id=4bf92f3577b34da6a3ce929d0e0e4736") || !strings.Contains(out, "req=7") {
		t.Errorf("trace attrs missing: %s", out)
	}

	b.Reset()
	WithTrace(l, "", 0).Info("untraced")
	out = b.String()
	if strings.Contains(out, "trace_id") || strings.Contains(out, "req=") {
		t.Errorf("zero trace attrs leaked: %s", out)
	}

	WithTrace(nil, "abc", 1).Info("to nowhere")
}

// TestNopAndOr: the Nop logger swallows everything; Or substitutes it
// for nil.
func TestNopAndOr(t *testing.T) {
	Nop().Error("discarded")
	Or(nil).Info("also discarded")
	var b strings.Builder
	l := New(&b, "x", slog.LevelInfo)
	if Or(l) != l {
		t.Error("Or replaced a non-nil logger")
	}
}
