package telemetry

import (
	"encoding/json"
	"testing"
	"time"
)

// fixedSpans is a deterministic two-clock trace: one request with host
// phases and a modelled device command, built from pinned timestamps.
func fixedSpans() []Span {
	base := time.Unix(1700000000, 0).UTC()
	return []Span{
		{ID: 1, Req: 1, Name: "POST /v1/price", Proc: "host", Thread: "requests",
			Start: base, Dur: 5 * time.Millisecond, Clock: Wall,
			Attrs: map[string]any{"contracts": 2}},
		{ID: 2, Req: 1, Name: "batch", Proc: "host", Thread: "requests",
			Start: base.Add(100 * time.Microsecond), Dur: 400 * time.Microsecond, Clock: Wall},
		{ID: 3, Req: 1, Name: "compute", Proc: "host", Thread: "backend fpga-ivb",
			Start: base.Add(500 * time.Microsecond), Dur: 4 * time.Millisecond, Clock: Wall,
			Attrs: map[string]any{"backend": "fpga-ivb"}},
		{ID: 4, Req: 1, Name: "ndrange IV.B", Proc: "device:fpga-ivb", Thread: "cl queue",
			DevStart: 0.001, DevDur: 0.0005, Clock: Device,
			Attrs: map[string]any{"queued_s": 0.001}},
	}
}

// TestChromeGolden pins the exporter's exact output: lane numbering,
// metadata events, relative microsecond timestamps on both clocks, and
// sorted args. Any byte change here is a contract change for saved
// traces.
func TestChromeGolden(t *testing.T) {
	got, err := Chrome(fixedSpans())
	if err != nil {
		t.Fatal(err)
	}
	const want = `{"traceEvents":[` +
		`{"name":"process_name","ph":"M","ts":0,"pid":1,"tid":0,"args":{"name":"device:fpga-ivb"}},` +
		`{"name":"thread_name","ph":"M","ts":0,"pid":1,"tid":1,"args":{"name":"cl queue"}},` +
		`{"name":"process_name","ph":"M","ts":0,"pid":2,"tid":0,"args":{"name":"host"}},` +
		`{"name":"thread_name","ph":"M","ts":0,"pid":2,"tid":1,"args":{"name":"backend fpga-ivb"}},` +
		`{"name":"thread_name","ph":"M","ts":0,"pid":2,"tid":2,"args":{"name":"requests"}},` +
		`{"name":"ndrange IV.B","ph":"X","ts":1000,"dur":500,"pid":1,"tid":1,"args":{"clock":"device","queued_s":0.001,"req":1}},` +
		`{"name":"compute","ph":"X","ts":500,"dur":4000,"pid":2,"tid":1,"args":{"backend":"fpga-ivb","clock":"wall","req":1}},` +
		`{"name":"POST /v1/price","ph":"X","ts":0,"dur":5000,"pid":2,"tid":2,"args":{"clock":"wall","contracts":2,"req":1}},` +
		`{"name":"batch","ph":"X","ts":100,"dur":400,"pid":2,"tid":2,"args":{"clock":"wall","req":1}}` +
		`],"displayTimeUnit":"ms"}`
	if string(got) != want {
		t.Errorf("golden mismatch:\n got: %s\nwant: %s", got, want)
	}
}

// TestChromeDeterministic: same spans in a different emission order
// produce lane assignments independent of that order, and repeated
// export is byte-identical.
func TestChromeDeterministic(t *testing.T) {
	a, err := Chrome(fixedSpans())
	if err != nil {
		t.Fatal(err)
	}
	b, err := Chrome(fixedSpans())
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Error("repeated export differs")
	}
}

// TestChromeValidJSON: the export parses back and every complete event
// lands on a named lane.
func TestChromeValidJSON(t *testing.T) {
	out, err := Chrome(fixedSpans())
	if err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Pid  int            `json:"pid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(out, &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v", err)
	}
	pids := map[int]bool{}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "M" && ev.Name == "process_name" {
			pids[ev.Pid] = true
		}
	}
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "X" && !pids[ev.Pid] {
			t.Errorf("event %q on unnamed pid %d", ev.Name, ev.Pid)
		}
	}
}

// TestChromeEmpty: no spans still yields a valid document.
func TestChromeEmpty(t *testing.T) {
	out, err := Chrome(nil)
	if err != nil {
		t.Fatal(err)
	}
	var doc map[string]any
	if err := json.Unmarshal(out, &doc); err != nil {
		t.Fatalf("empty export invalid: %v", err)
	}
}
