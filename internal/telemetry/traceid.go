// Distributed trace identity: the W3C Trace Context subset the fleet
// speaks. A trace ID is 16 random bytes in lowercase hex, minted once
// per client request at whichever tier sees it first (router or node),
// and carried on every span that request touches — across process
// boundaries via a `traceparent` header on forwarded sub-batch
// requests. The trace ID, not the per-process span ring, is what lets
// the fleet aggregator stitch router and node spans into one timeline,
// and what an exemplar on a latency histogram points at.
package telemetry

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"strconv"
	"strings"
)

// NewTraceID mints a fresh 128-bit trace ID as 32 lowercase hex digits.
// The all-zero ID (which W3C reserves as invalid) cannot be produced:
// the first byte is forced nonzero.
func NewTraceID() string {
	var b [16]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand never fails on supported platforms; a broken
		// entropy source degrades to a constant, still-valid ID rather
		// than taking the serving path down.
		b = [16]byte{0xde, 0xad}
	}
	if b[0] == 0 {
		b[0] = 1
	}
	return hex.EncodeToString(b[:])
}

// FormatTraceParent renders a W3C traceparent header value:
// version 00, the 32-hex trace ID, the 16-hex parent span ID, and the
// sampled flag (everything this system traces is sampled).
func FormatTraceParent(trace string, parent uint64) string {
	return fmt.Sprintf("00-%s-%016x-01", trace, parent)
}

// ParseTraceParent reads a traceparent header back into its trace ID
// and parent span ID. It accepts exactly the shape FormatTraceParent
// writes plus any future version byte (per the W3C spec, unknown
// versions parse as version 00). Malformed values report ok=false — a
// request with a mangled header is served untraced-parented rather than
// rejected.
func ParseTraceParent(header string) (trace string, parent uint64, ok bool) {
	parts := strings.Split(strings.TrimSpace(header), "-")
	if len(parts) < 4 {
		return "", 0, false
	}
	version, traceID, spanID := parts[0], parts[1], parts[2]
	if len(version) != 2 || !isHex(version) || version == "ff" {
		return "", 0, false
	}
	if len(traceID) != 32 || !isHex(traceID) || traceID == strings.Repeat("0", 32) {
		return "", 0, false
	}
	if len(spanID) != 16 || !isHex(spanID) {
		return "", 0, false
	}
	parent, err := strconv.ParseUint(spanID, 16, 64)
	if err != nil || parent == 0 {
		return "", 0, false
	}
	return traceID, parent, true
}

// isHex reports whether s is entirely lowercase hex digits.
func isHex(s string) bool {
	for _, c := range s {
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}

// traceKey carries a TraceContext through a context.Context.
type traceKey struct{}

// TraceContext is the request-scoped tracing identity that travels down
// the pricing pipeline: the distributed trace ID and the local request
// group (the ID of the span the HTTP handler opened, which child spans
// join via Span.Req).
type TraceContext struct {
	// Trace is the 32-hex distributed trace ID ("" when untraced).
	Trace string
	// Req is the local request group ID (0 when untraced).
	Req uint64
}

// ContextWithTrace tags ctx with a full trace context.
func ContextWithTrace(ctx context.Context, tc TraceContext) context.Context {
	return context.WithValue(ctx, traceKey{}, tc)
}

// TraceFromContext extracts the trace context; the zero value when
// untagged. It also honours the legacy req-only tagging of
// ContextWithReq, so older call sites keep grouping spans correctly.
func TraceFromContext(ctx context.Context) TraceContext {
	if tc, ok := ctx.Value(traceKey{}).(TraceContext); ok {
		return tc
	}
	return TraceContext{Req: ReqFromContext(ctx)}
}
