// Chrome trace-event export: the span ring rendered as the JSON object
// format chrome://tracing and Perfetto load directly. Host wall spans
// and modelled device spans land in separate process lanes, so the UI
// shows the request pipeline above what each modelled device was doing,
// both zoomable on one time axis.
package telemetry

import (
	"encoding/json"
	"sort"
	"time"
)

// chromeEvent is one trace_event record. Only "X" (complete) and "M"
// (metadata) phases are emitted.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  float64        `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the JSON object format container.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// Chrome renders spans as Chrome trace-event JSON. Wall timestamps are
// made relative to the earliest wall span so traces start at t=0;
// device spans already carry relative modelled seconds. The output is
// deterministic for a given span slice: lanes are numbered by sorted
// name, events sorted by (pid, tid, ts, name), and args keys are sorted
// by the JSON encoder.
func Chrome(spans []Span) ([]byte, error) {
	// Assign process and thread IDs by sorted first-seen names so the
	// lane numbering never depends on emission interleaving.
	procNames := map[string]bool{}
	threadNames := map[[2]string]bool{}
	for _, sp := range spans {
		procNames[sp.Proc] = true
		threadNames[[2]string{sp.Proc, sp.Thread}] = true
	}
	procs := make([]string, 0, len(procNames))
	for p := range procNames {
		procs = append(procs, p)
	}
	sort.Strings(procs)
	pids := make(map[string]int, len(procs))
	for i, p := range procs {
		pids[p] = i + 1
	}
	threads := make([][2]string, 0, len(threadNames))
	for th := range threadNames {
		threads = append(threads, th)
	}
	sort.Slice(threads, func(i, j int) bool {
		if threads[i][0] != threads[j][0] {
			return threads[i][0] < threads[j][0]
		}
		return threads[i][1] < threads[j][1]
	})
	tids := make(map[[2]string]int, len(threads))
	tidIn := map[string]int{}
	for _, th := range threads {
		tidIn[th[0]]++
		tids[th] = tidIn[th[0]]
	}

	var base time.Time
	for _, sp := range spans {
		if sp.Clock != Wall {
			continue
		}
		if base.IsZero() || sp.Start.Before(base) {
			base = sp.Start
		}
	}

	events := make([]chromeEvent, 0, len(spans)+len(procs)+len(threads))
	for _, p := range procs {
		events = append(events, chromeEvent{
			Name: "process_name", Ph: "M", Pid: pids[p],
			Args: map[string]any{"name": p},
		})
	}
	for _, th := range threads {
		events = append(events, chromeEvent{
			Name: "thread_name", Ph: "M", Pid: pids[th[0]], Tid: tids[th],
			Args: map[string]any{"name": th[1]},
		})
	}
	for _, sp := range spans {
		ev := chromeEvent{
			Name: sp.Name, Ph: "X",
			Pid: pids[sp.Proc], Tid: tids[[2]string{sp.Proc, sp.Thread}],
		}
		if sp.Clock == Device {
			ev.Ts = sp.DevStart * 1e6
			ev.Dur = sp.DevDur * 1e6
		} else {
			ev.Ts = float64(sp.Start.Sub(base)) / float64(time.Microsecond)
			ev.Dur = float64(sp.Dur) / float64(time.Microsecond)
		}
		ev.Args = make(map[string]any, len(sp.Attrs)+2)
		for k, v := range sp.Attrs {
			ev.Args[k] = v
		}
		ev.Args["clock"] = sp.Clock.String()
		if sp.Req != 0 {
			ev.Args["req"] = sp.Req
		}
		if sp.Trace != "" {
			ev.Args["trace_id"] = sp.Trace
		}
		events = append(events, ev)
	}

	// Metadata first, then timeline order within each lane.
	sort.SliceStable(events, func(i, j int) bool {
		a, b := events[i], events[j]
		if (a.Ph == "M") != (b.Ph == "M") {
			return a.Ph == "M"
		}
		if a.Pid != b.Pid {
			return a.Pid < b.Pid
		}
		if a.Tid != b.Tid {
			return a.Tid < b.Tid
		}
		//binopt:ignore floateq sort tie-break needs an exact total order, not tolerance
		if a.Ts != b.Ts {
			return a.Ts < b.Ts
		}
		return a.Name < b.Name
	})
	return json.Marshal(chromeTrace{TraceEvents: events, DisplayTimeUnit: "ms"})
}
