package telemetry

import (
	"context"
	"sync"
	"testing"
	"time"
)

// TestSpanLifecycle: Begin/SetAttr/End produce one retained wall span
// with a measured duration and a fresh ID.
func TestSpanLifecycle(t *testing.T) {
	tr := New(16)
	a := tr.Begin("request", "host", "requests")
	if a.ID() == 0 {
		t.Fatal("active span has no ID")
	}
	a.SetAttr("contracts", 3)
	a.SetReq(a.ID())
	time.Sleep(time.Millisecond)
	a.End()

	spans := tr.Snapshot()
	if len(spans) != 1 {
		t.Fatalf("retained %d spans, want 1", len(spans))
	}
	sp := spans[0]
	if sp.Name != "request" || sp.Proc != "host" || sp.Thread != "requests" {
		t.Errorf("span identity wrong: %+v", sp)
	}
	if sp.Clock != Wall {
		t.Errorf("clock = %v, want wall", sp.Clock)
	}
	if sp.Dur <= 0 {
		t.Errorf("duration not measured: %v", sp.Dur)
	}
	if sp.Attrs["contracts"] != 3 {
		t.Errorf("attrs = %v", sp.Attrs)
	}
	if sp.Req != sp.ID {
		t.Errorf("req group = %d, want %d", sp.Req, sp.ID)
	}
	if tr.Emitted() != 1 || tr.Dropped() != 0 {
		t.Errorf("emitted=%d dropped=%d", tr.Emitted(), tr.Dropped())
	}
}

// TestRingWraparound: a full ring keeps the newest spans in order and
// counts the evictions. Run under -race this also certifies concurrent
// emission (the CI race step runs every test).
func TestRingWraparound(t *testing.T) {
	const capacity = 8
	tr := New(capacity)
	base := time.Unix(1700000000, 0)
	for i := 0; i < 20; i++ {
		tr.Emit(Span{Name: "s", Start: base.Add(time.Duration(i) * time.Second), Clock: Wall})
	}
	spans := tr.Snapshot()
	if len(spans) != capacity {
		t.Fatalf("retained %d, want %d", len(spans), capacity)
	}
	for i, sp := range spans {
		want := base.Add(time.Duration(20-capacity+i) * time.Second)
		if !sp.Start.Equal(want) {
			t.Errorf("span %d start = %v, want %v (oldest-first order broken)", i, sp.Start, want)
		}
	}
	if got := tr.Dropped(); got != 20-capacity {
		t.Errorf("dropped = %d, want %d", got, 20-capacity)
	}
	if got := tr.Emitted(); got != 20 {
		t.Errorf("emitted = %d, want 20", got)
	}

	tr.Reset()
	if tr.Len() != 0 {
		t.Errorf("len after reset = %d", tr.Len())
	}
}

// TestConcurrentEmit hammers the ring from many goroutines; the race
// detector owns the correctness claim, the totals check the accounting.
func TestConcurrentEmit(t *testing.T) {
	tr := New(32)
	const workers, per = 8, 100
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < per; i++ {
				tr.Emit(Span{Name: "x", Clock: Wall})
				tr.Snapshot()
				tr.Len()
			}
		}()
	}
	wg.Wait()
	if got := tr.Emitted(); got != workers*per {
		t.Errorf("emitted = %d, want %d", got, workers*per)
	}
	if got := tr.Dropped(); got != workers*per-32 {
		t.Errorf("dropped = %d, want %d", got, workers*per-32)
	}
	if tr.Len() != 32 {
		t.Errorf("len = %d, want 32", tr.Len())
	}
}

// TestDisabledTracer: the nil tracer accepts every call as a no-op.
func TestDisabledTracer(t *testing.T) {
	var tr *Tracer
	if tr.Enabled() {
		t.Fatal("nil tracer reports enabled")
	}
	tr.Emit(Span{Name: "x"})
	a := tr.Begin("r", "host", "t")
	a.SetAttr("k", 1)
	a.End()
	if tr.Snapshot() != nil || tr.Len() != 0 || tr.NextID() != 0 {
		t.Error("nil tracer retained state")
	}
	if tr.Emitted() != 0 || tr.Dropped() != 0 || tr.Capacity() != 0 {
		t.Error("nil tracer has counters")
	}
	tr.Reset()
}

// TestContextReq round-trips the request group through a context.
func TestContextReq(t *testing.T) {
	ctx := context.Background()
	if got := ReqFromContext(ctx); got != 0 {
		t.Errorf("untagged ctx req = %d", got)
	}
	ctx = ContextWithReq(ctx, 42)
	if got := ReqFromContext(ctx); got != 42 {
		t.Errorf("req = %d, want 42", got)
	}
}
