// Cross-process span export: the JSON wire form a node serves from
// /debug/spans and the fleet aggregator pulls. Spans travel with
// explicit unix-nano wall timestamps (a time.Time's monotonic reading
// is meaningless on another machine), and each page carries the Since
// cursor to resume from plus how many spans the poller already lost to
// ring wraparound — so the aggregator can report trace gaps honestly
// instead of silently rendering a partial timeline.
package telemetry

import "time"

// SpanJSON is one span in wire form. Wall times are unix nanoseconds;
// device times stay modelled seconds (they are already process-local
// relative values).
type SpanJSON struct {
	ID       uint64         `json:"id"`
	Req      uint64         `json:"req,omitempty"`
	Trace    string         `json:"trace,omitempty"`
	Name     string         `json:"name"`
	Proc     string         `json:"proc"`
	Thread   string         `json:"thread"`
	Start    int64          `json:"start_unix_nano,omitempty"`
	DurNS    int64          `json:"dur_ns,omitempty"`
	DevStart float64        `json:"dev_start,omitempty"`
	DevDur   float64        `json:"dev_dur,omitempty"`
	Clock    string         `json:"clock"`
	Attrs    map[string]any `json:"attrs,omitempty"`
}

// Export is one page of spans from a node's ring: everything emitted
// after the request's cursor, the next cursor to poll from, and the
// node's own clock reading at export time (an extra alignment datum on
// top of the heartbeat-measured offset).
type Export struct {
	Node        string     `json:"node,omitempty"`
	NowUnixNano int64      `json:"now_unix_nano"`
	Next        uint64     `json:"next"`
	Missed      uint64     `json:"missed"`
	Spans       []SpanJSON `json:"spans"`
}

// ToJSON converts a span to wire form.
func ToJSON(sp Span) SpanJSON {
	out := SpanJSON{
		ID:       sp.ID,
		Req:      sp.Req,
		Trace:    sp.Trace,
		Name:     sp.Name,
		Proc:     sp.Proc,
		Thread:   sp.Thread,
		DevStart: sp.DevStart,
		DevDur:   sp.DevDur,
		Clock:    sp.Clock.String(),
		Attrs:    sp.Attrs,
	}
	if sp.Clock == Wall {
		out.Start = sp.Start.UnixNano()
		out.DurNS = int64(sp.Dur)
	}
	return out
}

// FromJSON converts a wire span back, applying skew to wall timestamps:
// the receiver passes the node's measured clock offset (node minus
// aggregator) and gets spans on its own timeline. Device spans pass
// through unshifted — a modelled device clock has no skew to correct.
func FromJSON(sj SpanJSON, skew time.Duration) Span {
	sp := Span{
		ID:       sj.ID,
		Req:      sj.Req,
		Trace:    sj.Trace,
		Name:     sj.Name,
		Proc:     sj.Proc,
		Thread:   sj.Thread,
		DevStart: sj.DevStart,
		DevDur:   sj.DevDur,
		Attrs:    sj.Attrs,
	}
	if sj.Clock == Device.String() {
		sp.Clock = Device
		return sp
	}
	sp.Clock = Wall
	sp.Start = time.Unix(0, sj.Start-int64(skew))
	sp.Dur = time.Duration(sj.DurNS)
	return sp
}

// ExportSince packages everything emitted after cursor as one wire
// page. Node names the exporting process for the aggregator's lanes.
func (t *Tracer) ExportSince(cursor uint64, node string) Export {
	spans, next, missed := t.Since(cursor)
	out := Export{
		Node:        node,
		NowUnixNano: time.Now().UnixNano(),
		Next:        next,
		Missed:      missed,
		Spans:       make([]SpanJSON, len(spans)),
	}
	for i, sp := range spans {
		out.Spans[i] = ToJSON(sp)
	}
	return out
}
