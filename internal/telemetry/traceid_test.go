package telemetry

import (
	"context"
	"strings"
	"testing"
	"time"
)

// TestNewTraceID: fresh IDs are 32 lowercase hex, never all-zero, and
// distinct across calls.
func TestNewTraceID(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 64; i++ {
		id := NewTraceID()
		if len(id) != 32 || !isHex(id) {
			t.Fatalf("trace ID %q not 32 lowercase hex", id)
		}
		if id == strings.Repeat("0", 32) {
			t.Fatal("all-zero trace ID minted")
		}
		if seen[id] {
			t.Fatalf("duplicate trace ID %q", id)
		}
		seen[id] = true
	}
}

// TestTraceParentRoundTrip: Format then Parse recovers the identity.
func TestTraceParentRoundTrip(t *testing.T) {
	trace := NewTraceID()
	header := FormatTraceParent(trace, 0xdeadbeef)
	got, parent, ok := ParseTraceParent(header)
	if !ok {
		t.Fatalf("ParseTraceParent(%q) not ok", header)
	}
	if got != trace || parent != 0xdeadbeef {
		t.Errorf("round trip: got (%q, %#x), want (%q, %#x)", got, parent, trace, 0xdeadbeef)
	}
}

// TestParseTraceParentMalformed: every malformed shape reports ok=false
// instead of a partial parse.
func TestParseTraceParentMalformed(t *testing.T) {
	valid := "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01"
	cases := []struct {
		name   string
		header string
		ok     bool
	}{
		{"valid", valid, true},
		{"valid future version", "cc-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", true},
		{"valid with whitespace", "  " + valid + "  ", true},
		{"empty", "", false},
		{"garbage", "hello world", false},
		{"too few fields", "00-4bf92f3577b34da6a3ce929d0e0e4736", false},
		{"version ff reserved", "ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", false},
		{"short trace id", "00-4bf92f35-00f067aa0ba902b7-01", false},
		{"uppercase trace id", "00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01", false},
		{"nonhex trace id", "00-4bf92f3577b34da6a3ce929d0e0e47zz-00f067aa0ba902b7-01", false},
		{"all-zero trace id", "00-00000000000000000000000000000000-00f067aa0ba902b7-01", false},
		{"short span id", "00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa-01", false},
		{"all-zero span id", "00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01", false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			trace, parent, ok := ParseTraceParent(tc.header)
			if ok != tc.ok {
				t.Fatalf("ParseTraceParent(%q) ok = %v, want %v", tc.header, ok, tc.ok)
			}
			if !ok && (trace != "" || parent != 0) {
				t.Errorf("failed parse leaked values (%q, %d)", trace, parent)
			}
		})
	}
}

// TestContextTrace: the full trace context round-trips, and the legacy
// req-only tagging still surfaces through TraceFromContext.
func TestContextTrace(t *testing.T) {
	ctx := context.Background()
	if tc := TraceFromContext(ctx); tc != (TraceContext{}) {
		t.Errorf("untagged ctx trace = %+v", tc)
	}
	want := TraceContext{Trace: NewTraceID(), Req: 7}
	if got := TraceFromContext(ContextWithTrace(ctx, want)); got != want {
		t.Errorf("trace context = %+v, want %+v", got, want)
	}
	legacy := ContextWithReq(ctx, 42)
	if got := TraceFromContext(legacy); got != (TraceContext{Req: 42}) {
		t.Errorf("legacy req tagging = %+v, want Req=42", got)
	}
}

// TestSince: cursor-based export pages through emissions, survives ring
// wraparound with an honest missed count, and never double-delivers.
func TestSince(t *testing.T) {
	const capacity = 8
	tr := New(capacity)
	emit := func(n int) {
		for i := 0; i < n; i++ {
			tr.Emit(Span{Name: "s", Clock: Wall})
		}
	}

	spans, cursor, missed := tr.Since(0)
	if len(spans) != 0 || cursor != 0 || missed != 0 {
		t.Fatalf("empty ring: got %d spans, cursor %d, missed %d", len(spans), cursor, missed)
	}

	emit(3)
	spans, cursor, missed = tr.Since(cursor)
	if len(spans) != 3 || missed != 0 {
		t.Fatalf("first page: %d spans, missed %d, want 3, 0", len(spans), missed)
	}

	// Nothing new: same cursor comes back, no spans re-delivered.
	spans, cursor2, missed := tr.Since(cursor)
	if len(spans) != 0 || cursor2 != cursor || missed != 0 {
		t.Fatalf("idle poll: %d spans, cursor %d→%d, missed %d", len(spans), cursor, cursor2, missed)
	}

	// Overflow the ring: 3 already read + 20 new = 23 emitted, ring
	// holds the newest 8, so 20-8=12 of the unread ones were lost.
	emit(20)
	spans, cursor, missed = tr.Since(cursor)
	if len(spans) != capacity {
		t.Fatalf("post-wrap page: %d spans, want %d", len(spans), capacity)
	}
	if missed != 12 {
		t.Fatalf("missed = %d, want 12", missed)
	}

	// A stale cursor far in the future returns nothing (a restarted
	// node handing back a cursor from a previous incarnation).
	if spans, _, missed := tr.Since(cursor + 1000); len(spans) != 0 || missed != 0 {
		t.Fatalf("future cursor: %d spans, missed %d", len(spans), missed)
	}

	// Reset keeps the sequence monotone: old cursors stay valid, the
	// discarded spans count as missed, not re-delivered.
	mid := cursor
	emit(4)
	tr.Reset()
	emit(2)
	spans, _, missed = tr.Since(mid)
	if len(spans) != 2 || missed != 4 {
		t.Fatalf("after reset: %d spans, missed %d, want 2, 4", len(spans), missed)
	}

	// Nil tracer: Since echoes the cursor back.
	var nilTr *Tracer
	if spans, cursor, missed := nilTr.Since(5); spans != nil || cursor != 5 || missed != 0 {
		t.Error("nil tracer Since not a no-op")
	}
}

// TestSinceSeparateCursors: two pollers with independent cursors each
// see every span exactly once.
func TestSinceSeparateCursors(t *testing.T) {
	tr := New(16)
	var curA, curB uint64
	var gotA, gotB int
	for round := 0; round < 5; round++ {
		for i := 0; i < 3; i++ {
			tr.Emit(Span{Name: "s", Clock: Wall})
		}
		spans, next, _ := tr.Since(curA)
		gotA += len(spans)
		curA = next
		if round%2 == 1 { // B polls half as often
			spans, next, _ = tr.Since(curB)
			gotB += len(spans)
			curB = next
		}
	}
	spans, _, _ := tr.Since(curB)
	gotB += len(spans)
	if gotA != 15 || gotB != 15 {
		t.Errorf("poller A saw %d, B saw %d, want 15 each", gotA, gotB)
	}
}

// TestExportRoundTrip: wire form preserves identity, clocks, and attrs;
// skew correction shifts wall starts onto the receiver's timeline.
func TestExportRoundTrip(t *testing.T) {
	tr := New(8)
	start := time.Unix(1700000000, 123)
	tr.Emit(Span{
		ID: 9, Req: 4, Trace: "4bf92f3577b34da6a3ce929d0e0e4736",
		Name: "compute", Proc: "host", Thread: "backend fpga-ivb",
		Start: start, Dur: 250 * time.Microsecond, Clock: Wall,
		Attrs: map[string]any{"options": 16},
	})
	tr.Emit(Span{
		ID: 10, Name: "ndrange IV.B", Proc: "device:fpga-ivb", Thread: "cl queue",
		DevStart: 1.5, DevDur: 0.25, Clock: Device,
	})

	ex := tr.ExportSince(0, "node0")
	if ex.Node != "node0" || ex.Missed != 0 || len(ex.Spans) != 2 {
		t.Fatalf("export = %+v", ex)
	}
	if ex.NowUnixNano == 0 {
		t.Error("export carries no clock reading")
	}

	skew := 3 * time.Second
	wall := FromJSON(ex.Spans[0], skew)
	if wall.ID != 9 || wall.Req != 4 || wall.Trace != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Errorf("wall identity lost: %+v", wall)
	}
	if wall.Clock != Wall || wall.Dur != 250*time.Microsecond {
		t.Errorf("wall clock/dur lost: %+v", wall)
	}
	if want := start.Add(-skew); !wall.Start.Equal(want) {
		t.Errorf("skew correction: start %v, want %v", wall.Start, want)
	}

	dev := FromJSON(ex.Spans[1], skew)
	//binopt:ignore floateq modelled device times round-trip bit-exactly through JSON
	if dev.Clock != Device || dev.DevStart != 1.5 || dev.DevDur != 0.25 {
		t.Errorf("device span mangled: %+v", dev)
	}
	if !dev.Start.IsZero() {
		t.Error("device span grew a wall start")
	}

	// Incremental: a second export from the returned cursor is empty.
	if ex2 := tr.ExportSince(ex.Next, "node0"); len(ex2.Spans) != 0 {
		t.Errorf("re-export delivered %d spans", len(ex2.Spans))
	}
}

// TestActiveSetTrace: the trace ID sticks to the emitted span and the
// nil tracer stays inert.
func TestActiveSetTrace(t *testing.T) {
	tr := New(4)
	a := tr.Begin("request", "host", "requests")
	a.SetTrace("4bf92f3577b34da6a3ce929d0e0e4736")
	if a.Trace() != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Errorf("Trace() = %q", a.Trace())
	}
	a.End()
	if got := tr.Snapshot()[0].Trace; got != "4bf92f3577b34da6a3ce929d0e0e4736" {
		t.Errorf("emitted span trace = %q", got)
	}

	var nilTr *Tracer
	na := nilTr.Begin("r", "h", "t")
	na.SetTrace("feed")
	na.End()
}
