// Package telemetry is the span-based tracing spine of the serving
// tier: every priced option leaves a timeline of host phases (batch
// assembly, shard queue, compute, readback) and modelled device
// commands (the analogue of CL_PROFILING_COMMAND_{QUEUED,SUBMIT,START,
// END}) that downstream sinks — the /debug/trace Chrome-trace endpoint,
// the /metrics phase decomposition — render for the operator.
//
// Spans carry one of two clocks. Wall spans are real host time measured
// with time.Now. Device spans live on a per-backend *modelled* device
// clock: a virtual monotonic timeline, in seconds, advanced by the
// platform engine's perf estimate as options are priced, so the trace
// shows what the modelled DE4/GTX660/Xeon would have been doing — the
// two-clock discipline the paper's energy attribution (§V) needs, where
// host wall time and device busy time are different quantities.
//
// The tracer itself is a bounded ring: emitting a span is one short
// mutex hold and one struct copy, old spans are overwritten (and
// counted) rather than growing memory, and a nil *Tracer is a valid
// disabled tracer whose every method is a cheap no-op.
package telemetry

import (
	"context"
	"sync"
	"sync/atomic"
	"time"
)

// reqKey carries a request group ID through a context, so spans emitted
// deep in the pipeline land in the same Chrome trace group as the
// request span the HTTP handler opened.
type reqKey struct{}

// ContextWithReq tags ctx with a request group ID.
func ContextWithReq(ctx context.Context, req uint64) context.Context {
	return context.WithValue(ctx, reqKey{}, req)
}

// ReqFromContext extracts the request group ID, zero when untagged.
func ReqFromContext(ctx context.Context) uint64 {
	if v, ok := ctx.Value(reqKey{}).(uint64); ok {
		return v
	}
	return 0
}

// Clock distinguishes which timeline a span's timestamps live on.
type Clock uint8

const (
	// Wall spans are measured host time (time.Now).
	Wall Clock = iota
	// Device spans are modelled device time: DevStart/DevDur seconds on
	// the owning backend's virtual device clock.
	Device
)

// String names the clock for trace args and tests.
func (c Clock) String() string {
	if c == Device {
		return "device"
	}
	return "wall"
}

// Span is one completed interval on one timeline. Spans are emitted
// whole (start and duration known) rather than opened and closed in the
// ring, so the hot path never holds a ring slot across a computation.
type Span struct {
	// ID is unique per tracer; Req groups every span of one client
	// request (zero when the span is not request-scoped).
	ID  uint64
	Req uint64
	// Trace is the 32-hex distributed trace ID stitching this span to
	// the same client request on other processes (empty when the span
	// is purely local). See traceid.go.
	Trace string
	// Name is the span label, e.g. "batch", "queue", "compute",
	// "ndrange IV.B".
	Name string
	// Proc and Thread place the span on a Chrome trace track: Proc is
	// the process lane ("host" or "device:fpga-ivb"), Thread the thread
	// lane within it ("requests", "backend fpga-ivb", "cl queue").
	Proc   string
	Thread string
	// Start and Dur are the wall-clock interval (Clock == Wall).
	Start time.Time
	Dur   time.Duration
	// DevStart and DevDur are seconds on the modelled device clock
	// (Clock == Device).
	DevStart float64
	DevDur   float64
	Clock    Clock
	// Attrs are exported into the Chrome trace event's args. Keys are
	// sorted at export, so map iteration order never leaks into output.
	Attrs map[string]any
}

// Tracer is a bounded, concurrency-safe span sink. The zero capacity
// and the nil tracer are both valid: New clamps capacity to at least 1,
// and every method is nil-safe so call sites need no branching.
type Tracer struct {
	capacity int
	ids      atomic.Uint64
	emitted  atomic.Int64
	dropped  atomic.Int64

	mu   sync.Mutex
	ring []Span
	// seqs[i] is the emission sequence number of ring[i]: a dense,
	// monotone counter assigned under mu, the cursor Since paginates
	// on. Span IDs cannot serve here — Begin assigns them before the
	// region runs, so emission order and ID order diverge.
	seqs []uint64
	seq  uint64
	next int
	full bool
}

// New builds a tracer retaining up to capacity spans (minimum 1).
func New(capacity int) *Tracer {
	if capacity < 1 {
		capacity = 1
	}
	return &Tracer{capacity: capacity, ring: make([]Span, capacity), seqs: make([]uint64, capacity)}
}

// Enabled reports whether spans emitted here are retained. A nil tracer
// is the disabled tracer.
func (t *Tracer) Enabled() bool { return t != nil }

// Capacity reports the ring size (zero for the disabled tracer).
func (t *Tracer) Capacity() int {
	if t == nil {
		return 0
	}
	return t.capacity
}

// NextID returns a fresh span/request ID (zero for the disabled
// tracer).
func (t *Tracer) NextID() uint64 {
	if t == nil {
		return 0
	}
	return t.ids.Add(1)
}

// Emit records one completed span, assigning an ID if the caller left
// it zero. When the ring is full the oldest span is overwritten and
// counted as dropped.
func (t *Tracer) Emit(sp Span) {
	if t == nil {
		return
	}
	if sp.ID == 0 {
		sp.ID = t.ids.Add(1)
	}
	t.emitted.Add(1)
	t.mu.Lock()
	if t.full {
		t.dropped.Add(1)
	}
	t.seq++
	t.seqs[t.next] = t.seq
	t.ring[t.next] = sp
	t.next++
	if t.next == t.capacity {
		t.next = 0
		t.full = true
	}
	t.mu.Unlock()
}

// Len reports the number of retained spans.
func (t *Tracer) Len() int {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.full {
		return t.capacity
	}
	return t.next
}

// Emitted reports the total spans ever emitted.
func (t *Tracer) Emitted() int64 {
	if t == nil {
		return 0
	}
	return t.emitted.Load()
}

// Dropped reports the spans overwritten because the ring was full.
func (t *Tracer) Dropped() int64 {
	if t == nil {
		return 0
	}
	return t.dropped.Load()
}

// Snapshot copies the retained spans out in emission order, oldest
// first. It does not clear the ring.
func (t *Tracer) Snapshot() []Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.full {
		out := make([]Span, t.next)
		copy(out, t.ring[:t.next])
		return out
	}
	out := make([]Span, 0, t.capacity)
	out = append(out, t.ring[t.next:]...)
	out = append(out, t.ring[:t.next]...)
	return out
}

// Since returns the retained spans emitted after the cursor, in
// emission order, plus the new cursor to poll from and the number of
// spans that were emitted after the cursor but already overwritten
// (ring wraparound) or discarded (Reset) before this call. A fresh
// consumer starts at cursor 0. Unlike Snapshot+Reset polling, two
// pollers with their own cursors never race each other, and a poll
// never destroys data another consumer still wants.
func (t *Tracer) Since(cursor uint64) (spans []Span, next uint64, missed uint64) {
	if t == nil {
		return nil, cursor, 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	next = t.seq
	if cursor >= t.seq {
		return nil, next, 0
	}
	collect := func(i int) {
		if t.seqs[i] > cursor {
			spans = append(spans, t.ring[i])
		}
	}
	if t.full {
		for i := t.next; i < t.capacity; i++ {
			collect(i)
		}
	}
	for i := 0; i < t.next; i++ {
		collect(i)
	}
	missed = (t.seq - cursor) - uint64(len(spans))
	return spans, next, missed
}

// Reset discards the retained spans (counters keep accumulating).
func (t *Tracer) Reset() {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.next = 0
	t.full = false
	t.mu.Unlock()
}

// Active is an in-progress wall span, for call sites that bracket a
// region instead of computing timestamps themselves (request handlers).
type Active struct {
	t  *Tracer
	sp Span
}

// Begin opens a wall span now. On a disabled tracer the returned Active
// is inert.
func (t *Tracer) Begin(name, proc, thread string) *Active {
	a := &Active{t: t}
	if t == nil {
		return a
	}
	a.sp = Span{ID: t.NextID(), Name: name, Proc: proc, Thread: thread, Start: time.Now(), Clock: Wall}
	return a
}

// ID returns the span's ID (zero when inert), usable as the Req of
// child spans.
func (a *Active) ID() uint64 { return a.sp.ID }

// SetAttr attaches one attribute.
func (a *Active) SetAttr(key string, value any) {
	if a.t == nil {
		return
	}
	if a.sp.Attrs == nil {
		a.sp.Attrs = make(map[string]any, 4)
	}
	a.sp.Attrs[key] = value
}

// SetReq assigns the span to a request group.
func (a *Active) SetReq(req uint64) { a.sp.Req = req }

// SetTrace stitches the span to a distributed trace ID.
func (a *Active) SetTrace(trace string) { a.sp.Trace = trace }

// Trace returns the span's distributed trace ID ("" when inert or
// unstitched).
func (a *Active) Trace() string { return a.sp.Trace }

// End closes and emits the span.
func (a *Active) End() {
	if a.t == nil {
		return
	}
	a.sp.Dur = time.Since(a.sp.Start)
	a.t.Emit(a.sp)
}
