// Package gpumodel estimates kernel run times on the paper's GPU target
// (GTX660). Kernel IV.B is modelled as arithmetic-throughput bound at a
// calibrated sustained efficiency (the barrier-heavy binomial loop runs
// far below peak); kernel IV.A is bound by the blocking per-batch
// ping-pong readback over PCIe, exactly the bottleneck §V-C diagnoses.
package gpumodel

import (
	"fmt"

	"binopt/internal/device"
)

// flopsPerNode is the arithmetic work of one backward-induction node
// update: three multiplies, one add, one subtract, one compare-select.
const flopsPerNode = 6

// Model estimates GPU kernel performance.
type Model struct {
	Spec device.GPUSpec
}

// New returns a model over the given GPU.
func New(spec device.GPUSpec) Model { return Model{Spec: spec} }

// nodesPerOption returns the tree-node count the paper's "tree nodes/s"
// metric uses.
func nodesPerOption(steps int) float64 {
	return float64(steps) * float64(steps+1) / 2
}

// IVBOptionsPerSec returns the post-saturation throughput of the
// optimized kernel.
func (m Model) IVBOptionsPerSec(steps int, single bool) (float64, error) {
	if steps < 1 {
		return 0, fmt.Errorf("gpumodel: steps must be positive, got %d", steps)
	}
	peak := m.Spec.PeakDPFlops() * m.Spec.EffDP
	if single {
		peak = m.Spec.PeakSPFlops() * m.Spec.EffSP
	}
	return peak / (nodesPerOption(steps) * flopsPerNode), nil
}

// IVABatchSeconds returns the duration of one batch of the
// straightforward kernel: the device-side sweep over all tree nodes plus
// the blocking host readback of the ping-pong state.
func (m Model) IVABatchSeconds(steps int, single bool, fullReadback bool) (float64, error) {
	if steps < 1 {
		return 0, fmt.Errorf("gpumodel: steps must be positive, got %d", steps)
	}
	elem := 8.0
	if single {
		elem = 4.0
	}
	nodes := nodesPerOption(steps)

	// Device sweep: bound by arithmetic (generously parallel) and global
	// memory traffic (~12 values per node).
	compute := nodes * flopsPerNode / (m.Spec.PeakDPFlops() * 0.5)
	if single {
		compute = nodes * flopsPerNode / (m.Spec.PeakSPFlops() * 0.5)
	}
	traffic := nodes * 12 * elem / m.Spec.MemBytesPerSec
	kernel := compute
	if traffic > kernel {
		kernel = traffic
	}

	// Host interaction: leaf upload, launch, result readback — three
	// blocking commands, each paying the driver latency. The published
	// kernel additionally drains both ping-pong buffers' node state.
	bufLen := float64((steps + 1) * (steps + 2) / 2)
	write := float64(steps+1) * 2 * elem / m.Spec.PCIe.EffectiveB
	read := 1 * elem / m.Spec.PCIe.EffectiveB
	if fullReadback {
		read = 2 * bufLen * elem / m.Spec.PCIe.EffectiveB
	}
	overhead := 3 * m.Spec.PCIe.CommandLatencySec
	return kernel + write + read + overhead, nil
}

// IVAOptionsPerSec returns the steady-state throughput of the
// straightforward kernel: one option completes per batch.
func (m Model) IVAOptionsPerSec(steps int, single bool, fullReadback bool) (float64, error) {
	batch, err := m.IVABatchSeconds(steps, single, fullReadback)
	if err != nil {
		return 0, err
	}
	return 1 / batch, nil
}

// PowerWatts returns the dissipation attributed to a GPU run (the board
// TDP, as the paper uses for its options/J comparison).
func (m Model) PowerWatts() float64 { return m.Spec.TDPWatts }
