package gpumodel

import (
	"math"
	"testing"

	"binopt/internal/device"
)

func TestIVBCalibration(t *testing.T) {
	m := New(device.GTX660())
	// Paper Table II at N=1024: 8900 options/s double, 47000 single.
	d, err := m.IVBOptionsPerSec(1024, false)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d-8900)/8900 > 0.03 {
		t.Errorf("double = %.0f options/s, want ~8900", d)
	}
	s, err := m.IVBOptionsPerSec(1024, true)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s-47000)/47000 > 0.03 {
		t.Errorf("single = %.0f options/s, want ~47000", s)
	}
	// Single precision wins by ~5x, not the naive 8x (shared-memory
	// bound), matching the published ratio.
	if ratio := s / d; ratio < 4.5 || ratio > 6.5 {
		t.Errorf("single/double ratio = %.1f, want ~5.3", ratio)
	}
}

func TestIVACalibration(t *testing.T) {
	m := New(device.GTX660())
	// Paper Table II: 53 options/s for the published kernel on GPU.
	got, err := m.IVAOptionsPerSec(1024, false, true)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-53)/53 > 0.10 {
		t.Errorf("IV.A GPU = %.1f options/s, want ~53", got)
	}
}

func TestIVAReducedReadsSpeedup(t *testing.T) {
	// §V-C: the modified kernel with reduced reads ran 14x faster on the
	// same hardware (840 vs 58.4 options/s).
	m := New(device.GTX660())
	full, err := m.IVAOptionsPerSec(1024, false, true)
	if err != nil {
		t.Fatal(err)
	}
	reduced, err := m.IVAOptionsPerSec(1024, false, false)
	if err != nil {
		t.Fatal(err)
	}
	speedup := reduced / full
	if speedup < 8 || speedup > 40 {
		t.Errorf("reduced-reads speedup = %.1fx, paper reports ~14x", speedup)
	}
}

func TestIVAKernelTimeNotBinding(t *testing.T) {
	// The batch must be transfer-dominated: with readback suppressed the
	// batch collapses by an order of magnitude.
	m := New(device.GTX660())
	full, err := m.IVABatchSeconds(1024, false, true)
	if err != nil {
		t.Fatal(err)
	}
	reduced, err := m.IVABatchSeconds(1024, false, false)
	if err != nil {
		t.Fatal(err)
	}
	if full < 10*reduced {
		t.Errorf("batch %.4fs vs reduced %.4fs: readback should dominate", full, reduced)
	}
}

func TestValidation(t *testing.T) {
	m := New(device.GTX660())
	if _, err := m.IVBOptionsPerSec(0, false); err == nil {
		t.Error("zero steps should fail")
	}
	if _, err := m.IVABatchSeconds(-1, false, true); err == nil {
		t.Error("negative steps should fail")
	}
}

func TestPowerIsTDP(t *testing.T) {
	if New(device.GTX660()).PowerWatts() != 140 {
		t.Error("GPU power should be the 140 W TDP")
	}
}
