// Package kernels implements the paper's two OpenCL kernel architectures
// for binomial option pricing — the "straightforward" dataflow kernel of
// §IV-A and the "optimized" work-group kernel of §IV-B — together with
// their host drivers and the datapath profiles the HLS compiler model
// consumes.
package kernels

import "binopt/internal/hls"

// ProfileIVA is the datapath of the straightforward kernel: one
// work-item computes one tree node (Equation 1) per batch, reading from
// one ping-pong buffer and writing the other. All traffic is global:
// asset price, two option-value addresses (Id+N-t and Id+N-t+1), the
// option-constant buffer and the time-step constant buffer on the way in;
// updated price and value on the way out.
func ProfileIVA() hls.KernelProfile {
	return hls.KernelProfile{
		Name: "kernel-IV.A",
		BodyOps: map[hls.OpKind]int{
			hls.DPMul:    3, // S*d, rp*V1, rq*V0
			hls.DPAddSub: 2, // continuation sum, intrinsic S-K
			hls.DPMax:    1, // early-exercise select
			hls.IntALU:   6, // global id, read/write address arithmetic
		},
		LoopTrips:        1,
		GlobalLoadSites:  4, // S ping, V ping (x2 addresses), constants
		GlobalStoreSites: 2, // S pong, V pong
		PrivateBytes:     40,
	}
}

// ProfileIVB returns the datapath of the optimized kernel for an n-step
// tree: one work-group prices one option; work-item k owns tree row k,
// initialises its leaf through the Power operator, then loops n times
// over Equation 1 against the local-memory value array, synchronising
// with barriers (Figure 4: copy barrier + compute barrier per step).
func ProfileIVB(n int) hls.KernelProfile {
	return hls.KernelProfile{
		Name: "kernel-IV.B",
		SetupOps: map[hls.OpKind]int{
			hls.DPPow:  1, // leaf factor u^(2k-n)
			hls.DPMul:  2, // scale by S0, step adjustment
			hls.IntALU: 4,
		},
		BodyOps: map[hls.OpKind]int{
			hls.DPMul:    3, // S*d, rp*V[k], rq*V[k-1]
			hls.DPAddSub: 2,
			hls.DPMax:    1,
			hls.IntALU:   4,
		},
		LoopTrips:        n,
		GlobalLoadSites:  2, // option constants, leaf parameters
		GlobalStoreSites: 1, // final result
		LocalBytes:       int64(n+1) * 8,
		LocalReadPorts:   2,
		LocalWritePorts:  1,
		Barriers:         2,
		// Live state across barriers: private S, the four option
		// constants, loop indices and temporaries.
		PrivateBytes: 80,
	}
}

// PaperKnobsIVA returns the parallelisation the paper settled on for
// kernel IV.A: "vectorized twice and replicated 3 times to use the
// maximum possible resources on the FPGA" (§V-B).
func PaperKnobsIVA() hls.Knobs { return hls.Knobs{Vectorize: 2, Replicate: 3, Unroll: 1} }

// PaperKnobsIVB returns the parallelisation for kernel IV.B: "an internal
// loop, which has been unrolled twice, coupled with a 4 times
// vectorization of the kernel" (§V-B).
func PaperKnobsIVB() hls.Knobs { return hls.Knobs{Vectorize: 4, Replicate: 1, Unroll: 2} }
