//go:build race

package kernels

// raceEnabled reports whether the race detector is compiled in.
const raceEnabled = true
