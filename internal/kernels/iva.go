package kernels

import (
	"fmt"

	"binopt/internal/lattice"
	"binopt/internal/opencl"
	"binopt/internal/option"
)

// IVAConfig configures a build of the straightforward kernel.
type IVAConfig struct {
	// Steps is the tree depth N.
	Steps int
	// Precision selects double or single arithmetic.
	Precision Precision
	// FullReadback reproduces the measured behaviour of the published
	// kernel: one complete ping-pong buffer is read back between batches
	// ("approximately 19 MB for N = 1024, effectively stalling the
	// kernel"). Setting it false models the paper's "modified version of
	// this kernel ... with a reduced number of read operations" that ran
	// 14x faster on the GPU.
	FullReadback bool
	// LocalSize is the work-group size used to tile the NDRange; it has
	// no numerical effect (the kernel is barrier-free) and defaults to
	// 256.
	LocalSize int
}

// Validate checks the configuration.
func (c IVAConfig) Validate() error {
	if c.Steps < 1 {
		return fmt.Errorf("kernels: IV.A needs at least 1 step, got %d", c.Steps)
	}
	if c.LocalSize < 0 {
		return fmt.Errorf("kernels: negative local size %d", c.LocalSize)
	}
	return nil
}

// nodeBase returns the flattened offset of tree level t: levels 0..t-1
// occupy t*(t+1)/2 slots. Level t's node k lives at nodeBase(t)+k; the
// leaf level N doubles as the host-written entry region.
func nodeBase(t int) int { return t * (t + 1) / 2 }

// RunIVA prices the batch through the straightforward kernel: one
// work-item per tree node, the whole NDRange advancing a pipeline of N+1
// in-flight options by one time step per batch, with ping-pong global
// buffers swapped between batches (Figure 3). The host executes the four
// per-batch commands of §IV-A: initialise input data, write it to global
// memory, enqueue the kernels, read a result back.
func RunIVA(ctx *opencl.Context, opts []option.Option, cfg IVAConfig) (RunResult, error) {
	if err := cfg.Validate(); err != nil {
		return RunResult{}, err
	}
	if len(opts) == 0 {
		return RunResult{}, fmt.Errorf("kernels: empty option batch")
	}
	n := cfg.Steps
	rows := n + 1
	totalNodes := nodeBase(n) // work-items: N(N+1)/2
	bufLen := nodeBase(n + 1) // node slots + leaf region
	rnd := cfg.Precision.rounder()
	elem := cfg.Precision.elemBytes()
	local := cfg.LocalSize
	if local == 0 {
		local = 256
	}
	q := ctx.NewQueue()

	// Ping-pong value and asset-price buffers plus the constant tables.
	var bufs [2]struct{ s, v *opencl.Buffer }
	for i := range bufs {
		s, err := ctx.CreateBuffer(fmt.Sprintf("iva-s%d", i), bufLen, elem)
		if err != nil {
			return RunResult{}, err
		}
		defer s.Release()
		v, err := ctx.CreateBuffer(fmt.Sprintf("iva-v%d", i), bufLen, elem)
		if err != nil {
			return RunResult{}, err
		}
		defer v.Release()
		bufs[i].s, bufs[i].v = s, v
	}
	params, err := ctx.CreateBuffer("iva-params", len(opts)*paramStride, elem)
	if err != nil {
		return RunResult{}, err
	}
	defer params.Release()
	tTable, err := ctx.CreateBuffer("iva-ttable", totalNodes, 4)
	if err != nil {
		return RunResult{}, err
	}
	defer tTable.Release()

	// Host-side setup: option constants and the work-item time-step
	// table ("stored in a constant buffer, allowing work-items to
	// determine their read addresses", §IV-A).
	host := make([]float64, len(opts)*paramStride)
	if err := packParams(host, opts, n, rnd); err != nil {
		return RunResult{}, err
	}
	if _, err := q.EnqueueWriteBuffer(params, 0, host); err != nil {
		return RunResult{}, err
	}
	tt := make([]float64, totalNodes)
	for t := 0; t < n; t++ {
		for k := 0; k <= t; k++ {
			tt[nodeBase(t)+k] = float64(t)
		}
	}
	if _, err := q.EnqueueWriteBuffer(tTable, 0, tt); err != nil {
		return RunResult{}, err
	}

	kern := buildIVAKernel(rnd)
	globalSize := ((totalNodes + local - 1) / local) * local // pad to a multiple

	prices := make([]float64, len(opts))
	readback := make([]float64, bufLen)
	leafS := make([]float64, rows)
	leafV := make([]float64, rows)

	batches := len(opts) + n - 1
	cur := 0
	for b := 0; b < batches; b++ {
		old, next := bufs[cur], bufs[1-cur]

		// (1)+(2) Initialise and write the entering option's leaves.
		if b < len(opts) {
			o := opts[b]
			lp, err := option.NewLatticeParams(o, n, option.CRR)
			if err != nil {
				return RunResult{}, fmt.Errorf("kernels: option %d: %w", b, err)
			}
			copy(leafS, lattice.HostLeafPrices(o.Spot, lp, option.CRR, cfg.Precision == Single))
			strike := rnd(o.Strike)
			for k := range leafV {
				leafV[k] = rnd(payoffHost(o.Right, leafS[k], strike))
			}
			if _, err := q.EnqueueWriteBuffer(old.s, nodeBase(n), leafS); err != nil {
				return RunResult{}, err
			}
			if _, err := q.EnqueueWriteBuffer(old.v, nodeBase(n), leafV); err != nil {
				return RunResult{}, err
			}
		}

		// (3) Enqueue the kernel batch.
		if err := kern.SetArgs(old.s, old.v, next.s, next.v, tTable, params,
			b, len(opts), n, totalNodes); err != nil {
			return RunResult{}, err
		}
		if _, err := q.EnqueueNDRange(kern, globalSize, local); err != nil {
			return RunResult{}, err
		}

		// (4) Read a result from global memory. The published kernel
		// reads the full buffer; the reduced-reads variant fetches only
		// the root slot.
		if cfg.FullReadback {
			if _, err := q.EnqueueReadBuffer(next.v, 0, readback); err != nil {
				return RunResult{}, err
			}
		} else {
			if _, err := q.EnqueueReadBuffer(next.v, 0, readback[:1]); err != nil {
				return RunResult{}, err
			}
		}
		if done := b - (n - 1); done >= 0 && done < len(opts) {
			prices[done] = readback[0]
		}
		q.Finish()    // batch boundary: all commands drained before the swap
		cur = 1 - cur // swap ping-pong
	}
	return RunResult{Prices: prices, Counters: q.Counters()}, nil
}

// buildIVAKernel constructs the per-node kernel body. Arguments:
// 0 sOld, 1 vOld, 2 sNew, 3 vNew, 4 tTable, 5 params, 6 batch,
// 7 numOptions, 8 steps, 9 totalNodes.
func buildIVAKernel(rnd func(float64) float64) *opencl.Kernel {
	return opencl.NewKernel("binomial-iva", false, func(wi *opencl.WorkItem) {
		id := wi.GlobalID()
		if id >= wi.Int(9) { // NDRange padding
			return
		}
		n := wi.Int(8)
		t := int(wi.Load(wi.Buffer(4), id)) // time step of this node
		k := id - nodeBase(t)

		// The option currently flowing through stage t.
		opID := wi.Int(6) - (n - 1 - t)
		if opID < 0 || opID >= wi.Int(7) {
			// Pipeline fill/drain: no live option at this stage yet.
			wi.Store(wi.Buffer(2), id, 0)
			wi.Store(wi.Buffer(3), id, 0)
			return
		}

		params := wi.Buffer(5)
		base := opID * paramStride
		strike := wi.Load(params, base+1)
		invD := wi.Load(params, base+2)
		pu := wi.Load(params, base+3)
		pd := wi.Load(params, base+4)
		isCall := wi.Load(params, base+5) != 0
		isAmerican := wi.Load(params, base+6) != 0

		child := nodeBase(t+1) + k
		sDn := wi.Load(wi.Buffer(0), child)
		vDn := wi.Load(wi.Buffer(1), child)
		vUp := wi.Load(wi.Buffer(1), child+1)

		s := rnd(sDn * invD)
		cont := rnd(rnd(pu*vUp) + rnd(pd*vDn))
		wi.AddFlops(4)
		if isAmerican {
			var ex float64
			if isCall {
				ex = rnd(maxf(s-strike, 0))
			} else {
				ex = rnd(maxf(strike-s, 0))
			}
			if ex > cont {
				cont = ex
			}
			wi.AddFlops(2)
		}
		wi.Store(wi.Buffer(2), id, s)
		wi.Store(wi.Buffer(3), id, cont)
	})
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// payoffHost is the host-side exercise value in the working precision.
func payoffHost(r option.Right, s, strike float64) float64 {
	if r == option.Call {
		return maxf(s-strike, 0)
	}
	return maxf(strike-s, 0)
}
