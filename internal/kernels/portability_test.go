package kernels

import (
	"testing"

	"binopt/internal/device"
	"binopt/internal/hwmath"
	"binopt/internal/opencl"
)

// The OpenCL promise the paper leans on (§III-C: "An OpenCL program can
// be executed on any of those devices with only a handful of
// modifications") holds for this runtime too: both kernels produce
// identical numerics on the FPGA, GPU and CPU device descriptors.
func TestKernelsPortableAcrossDevices(t *testing.T) {
	opts := testChain(5)
	const steps = 24

	contexts := map[string]*opencl.Context{}
	for name, info := range map[string]opencl.DeviceInfo{
		"fpga": device.DE4().OpenCLInfo(),
		"gpu":  device.GTX660().OpenCLInfo(),
		"cpu":  device.XeonX5450().OpenCLInfo(),
	} {
		p := opencl.NewPlatform(name, name, "OpenCL 1.1", info)
		ctx, err := opencl.NewContext(p.Devices(-1)[0])
		if err != nil {
			t.Fatal(err)
		}
		contexts[name] = ctx
	}

	var refB, refA []float64
	for name, ctx := range contexts {
		b, err := RunIVB(ctx, opts, IVBConfig{Steps: steps, Pow: hwmath.Flawed13})
		if err != nil {
			t.Fatalf("%s IVB: %v", name, err)
		}
		a, err := RunIVA(ctx, opts, IVAConfig{Steps: steps})
		if err != nil {
			t.Fatalf("%s IVA: %v", name, err)
		}
		if refB == nil {
			refB, refA = b.Prices, a.Prices
			continue
		}
		for i := range opts {
			if b.Prices[i] != refB[i] {
				t.Errorf("%s IVB option %d: %v != %v", name, i, b.Prices[i], refB[i])
			}
			if a.Prices[i] != refA[i] {
				t.Errorf("%s IVA option %d: %v != %v", name, i, a.Prices[i], refA[i])
			}
		}
	}
}

// The GPU device allows work-groups up to 1024 work-items; IV.B needs
// steps+1, so trees deeper than 1023 must be rejected cleanly there
// while the FPGA descriptor (2048) accepts them.
func TestIVBWorkGroupLimitPerDevice(t *testing.T) {
	opts := testChain(1)
	gpuPlat := opencl.NewPlatform("gpu", "g", "1.1", device.GTX660().OpenCLInfo())
	gpuCtx, err := opencl.NewContext(gpuPlat.Devices(-1)[0])
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunIVB(gpuCtx, opts, IVBConfig{Steps: 1500, Pow: hwmath.Accurate13SP1}); err == nil {
		t.Error("IV.B at N=1500 should exceed the GPU work-group limit")
	}
}
