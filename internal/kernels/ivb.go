package kernels

import (
	"fmt"

	"binopt/internal/hwmath"
	"binopt/internal/lattice"
	"binopt/internal/opencl"
	"binopt/internal/option"
)

// Precision selects the floating-point width of a kernel build, the
// distinction between Table II's "Double" and "Single" columns.
type Precision int

const (
	// Double is IEEE binary64 throughout.
	Double Precision = iota
	// Single rounds every operation to IEEE binary32 and halves all
	// buffer traffic.
	Single
)

// String names the precision the way Table II does.
func (p Precision) String() string {
	if p == Single {
		return "single"
	}
	return "double"
}

func (p Precision) elemBytes() int {
	if p == Single {
		return 4
	}
	return 8
}

func (p Precision) rounder() func(float64) float64 {
	if p == Single {
		return func(x float64) float64 { return float64(float32(x)) }
	}
	return func(x float64) float64 { return x }
}

// paramStride is the per-option layout of the option-constant global
// buffer: S0, K, invD, Pu, Pd, callFlag, americanFlag, spare.
const paramStride = 8

// packParams fills dst with the per-option constants the kernels read,
// computed on the host exactly as the paper describes ("copying all
// option parameters in global memory").
func packParams(dst []float64, opts []option.Option, steps int, rnd func(float64) float64) error {
	for i, o := range opts {
		lp, err := option.NewLatticeParams(o, steps, option.CRR)
		if err != nil {
			return fmt.Errorf("kernels: option %d: %w", i, err)
		}
		base := i * paramStride
		dst[base+0] = rnd(o.Spot)
		dst[base+1] = rnd(o.Strike)
		dst[base+2] = rnd(1 / rnd(lp.D)) // invD, matching the reference engine
		dst[base+3] = rnd(lp.Pu)
		dst[base+4] = rnd(lp.Pd)
		if o.Right == option.Call {
			dst[base+5] = 1
		}
		if o.Style == option.American {
			dst[base+6] = 1
		}
		dst[base+7] = rnd(lp.U)
	}
	return nil
}

// IVBConfig configures a build of the optimized kernel.
type IVBConfig struct {
	// Steps is the tree depth N (1024 in the paper's evaluation).
	Steps int
	// Precision selects double or single arithmetic.
	Precision Precision
	// Pow is the Power-operator core used for device-side leaf
	// initialisation (hwmath.Flawed13 reproduces the paper's RMSE issue,
	// hwmath.Accurate13SP1 the hoped-for fix).
	Pow hwmath.PowCore
	// LeavesOnHost switches to the paper's fallback plan: "the values at
	// the leaves will have to be computed on the host and sent to global
	// memory, to be then copied in local memory, to the detriment of
	// speed".
	LeavesOnHost bool
}

// Validate checks the configuration against the runtime's constraints.
func (c IVBConfig) Validate() error {
	if c.Steps < 1 {
		return fmt.Errorf("kernels: IV.B needs at least 1 step, got %d", c.Steps)
	}
	return nil
}

// RunResult carries the prices and the metered activity of one kernel
// run.
type RunResult struct {
	Prices   []float64
	Counters opencl.Counters
}

// RunIVB prices the batch through the optimized kernel on the given
// context: one work-group per option, one work-item per tree row,
// values in local memory, two barriers per backward step (Figure 4).
// Host interaction is exactly the paper's three commands: write
// parameters, enqueue, read results.
func RunIVB(ctx *opencl.Context, opts []option.Option, cfg IVBConfig) (RunResult, error) {
	if err := cfg.Validate(); err != nil {
		return RunResult{}, err
	}
	if len(opts) == 0 {
		return RunResult{}, fmt.Errorf("kernels: empty option batch")
	}
	n := cfg.Steps
	rows := n + 1
	rnd := cfg.Precision.rounder()
	elem := cfg.Precision.elemBytes()
	q := ctx.NewQueue()

	params, err := ctx.CreateBuffer("ivb-params", len(opts)*paramStride, elem)
	if err != nil {
		return RunResult{}, err
	}
	defer params.Release()
	results, err := ctx.CreateBuffer("ivb-results", len(opts), elem)
	if err != nil {
		return RunResult{}, err
	}
	defer results.Release()

	host := make([]float64, len(opts)*paramStride)
	if err := packParams(host, opts, n, rnd); err != nil {
		return RunResult{}, err
	}
	// Command 1: option parameters to global memory.
	if _, err := q.EnqueueWriteBuffer(params, 0, host); err != nil {
		return RunResult{}, err
	}

	var leaves *opencl.Buffer
	if cfg.LeavesOnHost {
		leaves, err = ctx.CreateBuffer("ivb-leaves", len(opts)*rows, elem)
		if err != nil {
			return RunResult{}, err
		}
		defer leaves.Release()
		leafHost := make([]float64, len(opts)*rows)
		for i, o := range opts {
			lp, err := option.NewLatticeParams(o, n, option.CRR)
			if err != nil {
				return RunResult{}, err
			}
			copy(leafHost[i*rows:], lattice.HostLeafPrices(o.Spot, lp, option.CRR, cfg.Precision == Single))
		}
		if _, err := q.EnqueueWriteBuffer(leaves, 0, leafHost); err != nil {
			return RunResult{}, err
		}
	}

	kern := buildIVBKernel(cfg, rnd)
	args := []any{params, results, opencl.LocalAlloc{N: rows, ElemBytes: elem}, n}
	if cfg.LeavesOnHost {
		args = append(args, leaves)
	}
	if err := kern.SetArgs(args...); err != nil {
		return RunResult{}, err
	}
	// Command 2: enqueue enough kernels to process all the data.
	if _, err := q.EnqueueNDRange(kern, len(opts)*rows, rows); err != nil {
		return RunResult{}, err
	}

	// Command 3: read back the final results.
	prices := make([]float64, len(opts))
	if _, err := q.EnqueueReadBuffer(results, 0, prices); err != nil {
		return RunResult{}, err
	}
	q.Finish()
	return RunResult{Prices: prices, Counters: q.Counters()}, nil
}

// buildIVBKernel constructs the kernel body. Arguments: 0 params,
// 1 results, 2 local value array, 3 steps, [4 leaves when host-side].
func buildIVBKernel(cfg IVBConfig, rnd func(float64) float64) *opencl.Kernel {
	return opencl.NewKernel("binomial-ivb", true, func(wi *opencl.WorkItem) {
		k := wi.LocalID()   // tree row owned by this work-item
		opt := wi.GroupID() // one work-group per option
		n := wi.Int(3)

		params := wi.Buffer(0)
		base := opt * paramStride
		s0 := wi.Load(params, base+0)
		strike := wi.Load(params, base+1)
		invD := wi.Load(params, base+2)
		pu := wi.Load(params, base+3)
		pd := wi.Load(params, base+4)
		isCall := wi.Load(params, base+5) != 0
		isAmerican := wi.Load(params, base+6) != 0
		u := wi.Load(params, base+7)

		payoff := func(s float64) float64 {
			if isCall {
				if s > strike {
					return s - strike
				}
				return 0
			}
			if strike > s {
				return strike - s
			}
			return 0
		}

		// Leaf initialisation: Power operator on the device (the paper's
		// fast-but-inaccurate path) or precomputed values from the host.
		var s float64
		if cfg.LeavesOnHost {
			s = wi.Load(wi.Buffer(4), opt*(n+1)+k)
		} else {
			s = rnd(rnd(s0) * rnd(cfg.Pow.Pow(u, float64(2*k-n))))
			wi.AddFlops(2)
		}
		wi.StoreLocal(2, k, rnd(payoff(s)))
		wi.AddFlops(1)
		wi.Barrier()

		for t := n - 1; t >= 0; t-- {
			var vUp, vDn float64
			active := k <= t
			if active {
				vDn = wi.LoadLocal(2, k)
				vUp = wi.LoadLocal(2, k+1)
			}
			wi.Barrier() // reads of level t+1 complete
			if active {
				s = rnd(s * invD)
				cont := rnd(rnd(pu*vUp) + rnd(pd*vDn))
				wi.AddFlops(4)
				if isAmerican {
					if ex := rnd(payoff(s)); ex > cont {
						cont = ex
					}
					wi.AddFlops(2)
				}
				wi.StoreLocal(2, k, cont)
			}
			wi.Barrier() // writes of level t complete
		}
		if k == 0 {
			wi.Store(wi.Buffer(1), opt, wi.LoadLocal(2, 0))
		}
	})
}
