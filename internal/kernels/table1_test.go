package kernels

import (
	"math"
	"testing"

	"binopt/internal/device"
	"binopt/internal/hls"
)

// Table I targets from the paper (Stratix IV EP4SGX530).
type table1Target struct {
	logicPct   float64
	registersK float64 // base-2 K
	memBitsK   float64
	m9k        float64
	dsp        float64
	fmaxMHz    float64
	powerW     float64
}

func checkWithin(t *testing.T, name string, got, want, relTol float64) {
	t.Helper()
	if want == 0 {
		t.Fatalf("%s: zero target", name)
	}
	rel := math.Abs(got-want) / math.Abs(want)
	if rel > relTol {
		t.Errorf("%s = %.4g, paper reports %.4g (off by %.1f%%, tolerance %.0f%%)",
			name, got, want, 100*rel, 100*relTol)
	} else {
		t.Logf("%s = %.4g vs paper %.4g (%.1f%%)", name, got, want, 100*rel)
	}
}

func fitTable1(t *testing.T, prof hls.KernelProfile, knobs hls.Knobs, want table1Target) hls.FitReport {
	t.Helper()
	rep, err := hls.Fit(device.DE4(), prof, knobs)
	if err != nil {
		t.Fatal(err)
	}
	checkWithin(t, prof.Name+" logic util %", rep.LogicUtilPct, want.logicPct, 0.08)
	checkWithin(t, prof.Name+" registers", float64(rep.Registers)/1024, want.registersK, 0.08)
	checkWithin(t, prof.Name+" memory bits", float64(rep.MemoryBits)/1024, want.memBitsK, 0.15)
	checkWithin(t, prof.Name+" M9K", float64(rep.M9K), want.m9k, 0.08)
	checkWithin(t, prof.Name+" DSP", float64(rep.DSP18), want.dsp, 0.08)
	checkWithin(t, prof.Name+" Fmax", rep.FmaxMHz, want.fmaxMHz, 0.06)
	checkWithin(t, prof.Name+" power", rep.PowerWatts, want.powerW, 0.08)
	return rep
}

func TestTable1KernelIVA(t *testing.T) {
	rep := fitTable1(t, ProfileIVA(), PaperKnobsIVA(), table1Target{
		logicPct:   99,
		registersK: 411,
		memBitsK:   10843,
		m9k:        1250,
		dsp:        586,
		fmaxMHz:    98.27,
		powerW:     15,
	})
	if rep.NodeLanes != 6 {
		t.Errorf("IV.A lanes = %d, want 6 (vec2 x repl3)", rep.NodeLanes)
	}
}

func TestTable1KernelIVB(t *testing.T) {
	rep := fitTable1(t, ProfileIVB(1024), PaperKnobsIVB(), table1Target{
		logicPct:   66,
		registersK: 245,
		memBitsK:   7990,
		m9k:        1118,
		dsp:        760,
		fmaxMHz:    162.62,
		powerW:     17,
	})
	if rep.NodeLanes != 8 {
		t.Errorf("IV.B lanes = %d, want 8 (vec4 x unroll2)", rep.NodeLanes)
	}
}

func TestTable1KernelIVBUsesMostM9K(t *testing.T) {
	// §V-B: "when optimized, both kernels use most of the M9K Block RAMs
	// available".
	for _, cfg := range []struct {
		prof  hls.KernelProfile
		knobs hls.Knobs
	}{
		{ProfileIVA(), PaperKnobsIVA()},
		{ProfileIVB(1024), PaperKnobsIVB()},
	} {
		rep, err := hls.Fit(device.DE4(), cfg.prof, cfg.knobs)
		if err != nil {
			t.Fatal(err)
		}
		if frac := float64(rep.M9K) / 1280; frac < 0.8 {
			t.Errorf("%s uses only %.0f%% of M9K blocks", cfg.prof.Name, 100*frac)
		}
	}
}
