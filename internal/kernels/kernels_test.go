package kernels

import (
	"math"
	"testing"

	"binopt/internal/device"
	"binopt/internal/hwmath"
	"binopt/internal/lattice"
	"binopt/internal/mathx"
	"binopt/internal/opencl"
	"binopt/internal/option"
)

// testContext builds a runtime context on the DE4 descriptor.
func testContext(t *testing.T) *opencl.Context {
	t.Helper()
	p := opencl.NewPlatform("Altera SDK for OpenCL", "Altera", "OpenCL 1.0", device.DE4().OpenCLInfo())
	ctx, err := opencl.NewContext(p.Devices(opencl.Accelerator)[0])
	if err != nil {
		t.Fatal(err)
	}
	return ctx
}

// testChain builds a deterministic mixed batch: calls and puts, American
// and European, strikes straddling the spot.
func testChain(n int) []option.Option {
	opts := make([]option.Option, n)
	for i := range opts {
		o := option.Option{
			Right:  option.Put,
			Style:  option.American,
			Spot:   100,
			Strike: 85 + float64(i%30),
			Rate:   0.03,
			Sigma:  0.15 + 0.002*float64(i%40),
			T:      0.5,
		}
		if i%2 == 1 {
			o.Right = option.Call
		}
		if i%3 == 2 {
			o.Style = option.European
		}
		opts[i] = o
	}
	return opts
}

// engineFor mirrors a kernel configuration on the native engine.
func engineFor(t *testing.T, steps int, single bool, devLeaves bool, pow hwmath.PowCore) *lattice.Engine {
	t.Helper()
	e, err := lattice.NewEngine(steps)
	if err != nil {
		t.Fatal(err)
	}
	if single {
		e = e.WithSinglePrecision()
	}
	if devLeaves {
		e = e.WithDeviceLeaves(pow)
	}
	return e
}

func TestIVBMatchesEngineExactly(t *testing.T) {
	// The optimized kernel's results must be bit-identical to the native
	// engine configured with device-side leaves (same operation order).
	ctx := testContext(t)
	opts := testChain(12)
	const steps = 48
	for _, pow := range []hwmath.PowCore{hwmath.Accurate13SP1, hwmath.Flawed13} {
		res, err := RunIVB(ctx, opts, IVBConfig{Steps: steps, Pow: pow})
		if err != nil {
			t.Fatal(err)
		}
		eng := engineFor(t, steps, false, true, pow)
		for i, o := range opts {
			want, err := eng.Price(o)
			if err != nil {
				t.Fatal(err)
			}
			if res.Prices[i] != want {
				t.Errorf("%s: option %d: kernel %v != engine %v", pow.Name, i, res.Prices[i], want)
			}
		}
	}
}

func TestIVBHostLeavesMatchesReferenceEngine(t *testing.T) {
	// With host-computed leaves, IV.B must match the reference engine
	// bit-for-bit — this is the paper's accuracy workaround.
	ctx := testContext(t)
	opts := testChain(8)
	const steps = 32
	res, err := RunIVB(ctx, opts, IVBConfig{Steps: steps, Pow: hwmath.Flawed13, LeavesOnHost: true})
	if err != nil {
		t.Fatal(err)
	}
	eng := engineFor(t, steps, false, false, hwmath.Accurate13SP1)
	for i, o := range opts {
		want, err := eng.Price(o)
		if err != nil {
			t.Fatal(err)
		}
		if res.Prices[i] != want {
			t.Errorf("option %d: kernel %v != engine %v", i, res.Prices[i], want)
		}
	}
}

func TestIVBSinglePrecision(t *testing.T) {
	ctx := testContext(t)
	opts := testChain(6)
	const steps = 32
	res, err := RunIVB(ctx, opts, IVBConfig{Steps: steps, Precision: Single, Pow: hwmath.Accurate13SP1})
	if err != nil {
		t.Fatal(err)
	}
	eng := engineFor(t, steps, true, true, hwmath.Accurate13SP1)
	for i, o := range opts {
		want, err := eng.Price(o)
		if err != nil {
			t.Fatal(err)
		}
		if res.Prices[i] != want {
			t.Errorf("option %d: kernel %v != engine %v", i, res.Prices[i], want)
		}
	}
	// Single-precision traffic accounting: 4-byte elements.
	if res.Counters.HostReads != int64(len(opts))*4 {
		t.Errorf("host reads = %d bytes, want %d", res.Counters.HostReads, len(opts)*4)
	}
}

func TestIVBThreeHostCommands(t *testing.T) {
	// §IV-B: exactly three host commands — write params, enqueue, read.
	ctx := testContext(t)
	res, err := RunIVB(ctx, testChain(4), IVBConfig{Steps: 16, Pow: hwmath.Accurate13SP1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Counters.HostTransfers != 2 || res.Counters.KernelLaunches != 1 {
		t.Errorf("host interaction: %d transfers, %d launches; want 2 and 1",
			res.Counters.HostTransfers, res.Counters.KernelLaunches)
	}
}

func TestIVBWorkItemCount(t *testing.T) {
	// N*Nop work-items... precisely (N+1) rows per option in this
	// implementation, one work-group per option.
	ctx := testContext(t)
	opts := testChain(5)
	res, err := RunIVB(ctx, opts, IVBConfig{Steps: 16, Pow: hwmath.Accurate13SP1})
	if err != nil {
		t.Fatal(err)
	}
	if got, want := res.Counters.WorkItems, int64(5*17); got != want {
		t.Errorf("work-items = %d, want %d", got, want)
	}
	if got, want := res.Counters.WorkGroups, int64(5); got != want {
		t.Errorf("work-groups = %d, want %d", got, want)
	}
	if res.Counters.Barriers == 0 {
		t.Error("no barriers metered")
	}
}

func TestIVBConfigValidation(t *testing.T) {
	ctx := testContext(t)
	if _, err := RunIVB(ctx, testChain(1), IVBConfig{Steps: 0}); err == nil {
		t.Error("zero steps should fail")
	}
	if _, err := RunIVB(ctx, nil, IVBConfig{Steps: 8}); err == nil {
		t.Error("empty batch should fail")
	}
	bad := testChain(2)
	bad[1].Sigma = -1
	if _, err := RunIVB(ctx, bad, IVBConfig{Steps: 8, Pow: hwmath.Accurate13SP1}); err == nil {
		t.Error("invalid option should fail")
	}
}

func TestIVAMatchesReferenceEngineExactly(t *testing.T) {
	// The dataflow kernel must reproduce the reference engine
	// bit-for-bit: host leaves, double precision, accurate arithmetic.
	ctx := testContext(t)
	opts := testChain(10)
	const steps = 24
	for _, full := range []bool{true, false} {
		res, err := RunIVA(ctx, opts, IVAConfig{Steps: steps, FullReadback: full})
		if err != nil {
			t.Fatal(err)
		}
		eng := engineFor(t, steps, false, false, hwmath.Accurate13SP1)
		for i, o := range opts {
			want, err := eng.Price(o)
			if err != nil {
				t.Fatal(err)
			}
			if res.Prices[i] != want {
				t.Errorf("full=%v option %d: kernel %v != engine %v", full, i, res.Prices[i], want)
			}
		}
	}
}

func TestIVAAgreesWithIVBHostLeaves(t *testing.T) {
	// Cross-kernel integration: both architectures, same numerics.
	ctx := testContext(t)
	opts := testChain(7)
	const steps = 20
	a, err := RunIVA(ctx, opts, IVAConfig{Steps: steps})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunIVB(ctx, opts, IVBConfig{Steps: steps, Pow: hwmath.Accurate13SP1, LeavesOnHost: true})
	if err != nil {
		t.Fatal(err)
	}
	for i := range opts {
		if a.Prices[i] != b.Prices[i] {
			t.Errorf("option %d: IV.A %v != IV.B %v", i, a.Prices[i], b.Prices[i])
		}
	}
}

func TestIVASinglePrecisionMatchesEngine(t *testing.T) {
	ctx := testContext(t)
	opts := testChain(4)
	const steps = 16
	res, err := RunIVA(ctx, opts, IVAConfig{Steps: steps, Precision: Single})
	if err != nil {
		t.Fatal(err)
	}
	eng := engineFor(t, steps, true, false, hwmath.Accurate13SP1)
	for i, o := range opts {
		want, err := eng.Price(o)
		if err != nil {
			t.Fatal(err)
		}
		if res.Prices[i] != want {
			t.Errorf("option %d: kernel %v != engine %v", i, res.Prices[i], want)
		}
	}
}

func TestIVAFullReadbackTrafficDominates(t *testing.T) {
	// The published kernel's host traffic must dwarf the reduced-reads
	// variant's — the root cause of its poor throughput (§V-C).
	ctx := testContext(t)
	opts := testChain(6)
	const steps = 24
	full, err := RunIVA(ctx, opts, IVAConfig{Steps: steps, FullReadback: true})
	if err != nil {
		t.Fatal(err)
	}
	reduced, err := RunIVA(ctx, opts, IVAConfig{Steps: steps, FullReadback: false})
	if err != nil {
		t.Fatal(err)
	}
	if full.Counters.HostReads < 50*reduced.Counters.HostReads {
		t.Errorf("full readback %dB vs reduced %dB: expected >=50x gap",
			full.Counters.HostReads, reduced.Counters.HostReads)
	}
	// Both execute the same kernels and device-side work.
	if full.Counters.WorkItems != reduced.Counters.WorkItems {
		t.Error("readback mode must not change the device workload")
	}
}

func TestIVABatchCountAndWorkItems(t *testing.T) {
	// Nop options at N steps take Nop+N-1 batches of N(N+1)/2 work-items
	// (plus padding to the work-group size).
	ctx := testContext(t)
	opts := testChain(3)
	const steps, local = 16, 8
	res, err := RunIVA(ctx, opts, IVAConfig{Steps: steps, LocalSize: local})
	if err != nil {
		t.Fatal(err)
	}
	batches := int64(len(opts) + steps - 1)
	if got := res.Counters.KernelLaunches; got != batches {
		t.Errorf("launches = %d, want %d", got, batches)
	}
	nodes := int64(steps * (steps + 1) / 2)
	padded := (nodes + local - 1) / local * local
	if got, want := res.Counters.WorkItems, batches*padded; got != want {
		t.Errorf("work-items = %d, want %d", got, want)
	}
}

func TestIVAConfigValidation(t *testing.T) {
	ctx := testContext(t)
	if _, err := RunIVA(ctx, testChain(1), IVAConfig{Steps: 0}); err == nil {
		t.Error("zero steps should fail")
	}
	if _, err := RunIVA(ctx, nil, IVAConfig{Steps: 8}); err == nil {
		t.Error("empty batch should fail")
	}
	if _, err := RunIVA(ctx, testChain(1), IVAConfig{Steps: 8, LocalSize: -1}); err == nil {
		t.Error("negative local size should fail")
	}
}

func TestFlawedPowShowsUpOnlyInDeviceLeaves(t *testing.T) {
	// Experiment E4 at kernel level: IV.B with the flawed core deviates
	// from the reference ~1e-3; with host leaves it does not deviate at
	// all. Moderate tree size keeps the run fast; the deviation scales
	// with N, so the threshold here is looser than the N=1024 figure.
	ctx := testContext(t)
	opts := testChain(16)
	const steps = 128
	ref := engineFor(t, steps, false, false, hwmath.Accurate13SP1)
	want := make([]float64, len(opts))
	for i, o := range opts {
		v, err := ref.Price(o)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = v
	}
	flawed, err := RunIVB(ctx, opts, IVBConfig{Steps: steps, Pow: hwmath.Flawed13})
	if err != nil {
		t.Fatal(err)
	}
	hostLeaves, err := RunIVB(ctx, opts, IVBConfig{Steps: steps, Pow: hwmath.Flawed13, LeavesOnHost: true})
	if err != nil {
		t.Fatal(err)
	}
	rmseFlawed := mathx.RMSE(flawed.Prices, want)
	rmseHost := mathx.RMSE(hostLeaves.Prices, want)
	if rmseFlawed == 0 || rmseFlawed > 1e-2 {
		t.Errorf("flawed-pow RMSE = %g, expected small but nonzero", rmseFlawed)
	}
	if rmseHost != 0 {
		t.Errorf("host-leaves RMSE = %g, want exactly 0", rmseHost)
	}
}

func TestPrecisionString(t *testing.T) {
	if Double.String() != "double" || Single.String() != "single" {
		t.Error("Precision.String broken")
	}
}

func TestPackParamsInvD(t *testing.T) {
	// invD must be computed exactly as the reference engine computes it
	// (1/rnd(d)), or bit-parity between kernel and engine breaks.
	opts := testChain(1)
	lp, err := option.NewLatticeParams(opts[0], 16, option.CRR)
	if err != nil {
		t.Fatal(err)
	}
	dst := make([]float64, paramStride)
	if err := packParams(dst, opts, 16, Double.rounder()); err != nil {
		t.Fatal(err)
	}
	if dst[2] != 1/lp.D {
		t.Errorf("invD = %v, want %v", dst[2], 1/lp.D)
	}
	if math.Abs(dst[2]-lp.U) > 1e-12 {
		t.Errorf("CRR invD should be ~u: %v vs %v", dst[2], lp.U)
	}
}

// TestIVBPaperScaleFunctional drives the optimized kernel at the paper's
// full N=1024 depth through the runtime — 1025 work-item goroutines
// rendezvousing at 2049 barriers per option — and checks bit-parity with
// the engine. Guarded by -short because the barrier traffic is heavy.
func TestIVBPaperScaleFunctional(t *testing.T) {
	if testing.Short() {
		t.Skip("full-scale functional run skipped in -short mode")
	}
	ctx := testContext(t)
	opts := testChain(2)
	const steps = 1024
	res, err := RunIVB(ctx, opts, IVBConfig{Steps: steps, Pow: hwmath.Flawed13})
	if err != nil {
		t.Fatal(err)
	}
	eng := engineFor(t, steps, false, true, hwmath.Flawed13)
	for i, o := range opts {
		want, err := eng.Price(o)
		if err != nil {
			t.Fatal(err)
		}
		if res.Prices[i] != want {
			t.Errorf("option %d: kernel %v != engine %v", i, res.Prices[i], want)
		}
	}
	// The paper's work-item count: (N+1) rows per option.
	if got, want := res.Counters.WorkItems, int64(2*(steps+1)); got != want {
		t.Errorf("work-items = %d, want %d", got, want)
	}
}
