package kernels

import (
	"strings"
	"testing"

	"binopt/internal/hwmath"
	"binopt/internal/opencl"
	"binopt/internal/option"
)

// The paper's §IV-A design rationale — ping-pong buffering exists "to
// avoid any memory conflict" — as an executable invariant: both kernels'
// drivers must run clean under the runtime's element-granular hazard
// checker. RunIVA/RunIVB create their own queues, so the checker is
// exercised through purpose-built drivers here mirroring the batch
// structure with the checker enabled.

// runIVABatch mirrors one batch of RunIVA with hazards enabled: same
// kernel, same buffer layout, one enqueue. With inPlace it aliases the
// output buffers onto the input buffers — the anti-pattern ping-pong
// exists to avoid — and returns the enqueue error either way.
func runIVABatch(t *testing.T, opts []option.Option, steps, local int, inPlace bool) error {
	t.Helper()
	ctx := testContext(t)
	q := ctx.NewQueue()
	q.EnableHazardCheck()

	totalNodes := nodeBase(steps)
	bufLen := nodeBase(steps + 1)
	mk := func(name string) *opencl.Buffer {
		b, err := ctx.CreateBuffer(name, bufLen, 8)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	sOld, vOld, sNew, vNew := mk("s0"), mk("v0"), mk("s1"), mk("v1")
	if inPlace {
		sNew, vNew = sOld, vOld
	}
	params, err := ctx.CreateBuffer("params", len(opts)*paramStride, 8)
	if err != nil {
		t.Fatal(err)
	}
	tTable, err := ctx.CreateBuffer("tt", totalNodes, 4)
	if err != nil {
		t.Fatal(err)
	}
	host := make([]float64, len(opts)*paramStride)
	if err := packParams(host, opts, steps, Double.rounder()); err != nil {
		t.Fatal(err)
	}
	if _, err := q.EnqueueWriteBuffer(params, 0, host); err != nil {
		t.Fatal(err)
	}
	tt := make([]float64, totalNodes)
	for tl := 0; tl < steps; tl++ {
		for k := 0; k <= tl; k++ {
			tt[nodeBase(tl)+k] = float64(tl)
		}
	}
	if _, err := q.EnqueueWriteBuffer(tTable, 0, tt); err != nil {
		t.Fatal(err)
	}

	kern := buildIVAKernel(Double.rounder())
	if err := kern.SetArgs(sOld, vOld, sNew, vNew, tTable, params,
		steps, len(opts), steps, totalNodes); err != nil {
		t.Fatal(err)
	}
	global := (totalNodes + local - 1) / local * local
	_, err = q.EnqueueNDRange(kern, global, local)
	return err
}

// runIVBBatch runs one real IV.B batch — per-option params and one
// result slot per group in global memory, the recombination tree in
// local — through a hazard-checked queue and returns the enqueue error.
func runIVBBatch(t *testing.T, opts []option.Option, steps int) error {
	t.Helper()
	ctx := testContext(t)
	rows := steps + 1
	q := ctx.NewQueue()
	q.EnableHazardCheck()
	params, err := ctx.CreateBuffer("p", len(opts)*paramStride, 8)
	if err != nil {
		t.Fatal(err)
	}
	results, err := ctx.CreateBuffer("r", len(opts), 8)
	if err != nil {
		t.Fatal(err)
	}
	host := make([]float64, len(opts)*paramStride)
	if err := packParams(host, opts, steps, Double.rounder()); err != nil {
		t.Fatal(err)
	}
	if _, err := q.EnqueueWriteBuffer(params, 0, host); err != nil {
		t.Fatal(err)
	}
	kern := buildIVBKernel(IVBConfig{Steps: steps, Pow: hwmath.Accurate13SP1}, Double.rounder())
	if err := kern.SetArgs(params, results, opencl.LocalAlloc{N: rows, ElemBytes: 8}, steps); err != nil {
		t.Fatal(err)
	}
	_, err = q.EnqueueNDRange(kern, len(opts)*rows, rows)
	return err
}

func TestIVAPingPongIsHazardFree(t *testing.T) {
	opts := testChain(4)
	const steps = 12
	if err := runIVABatch(t, opts, steps, 6, false); err != nil {
		t.Fatalf("ping-pong batch flagged hazards: %v", err)
	}
	// The anti-pattern the paper avoids: write back into the buffers
	// being read. The checker must catch it.
	if err := runIVABatch(t, opts, steps, 6, true); err == nil {
		t.Fatal("in-place tree update should be flagged as a memory conflict")
	}
}

func TestIVBKernelIsHazardFreeOnGlobals(t *testing.T) {
	if err := runIVBBatch(t, testChain(3), 8); err != nil {
		t.Fatalf("kernel IV.B flagged hazards: %v", err)
	}
}

// TestIVAPingPongHazardFreeAtDepth2048 sweeps the full production depth
// (the paper's Table II tops out at 2048 steps): ~2.1M tree nodes per
// batch through the element-granular checker. Under the race detector
// the tree is thinned — the instrumented scheduler is an order of
// magnitude slower and the invariant is depth-independent by
// construction; the full sweep still runs in the plain test pass.
func TestIVAPingPongHazardFreeAtDepth2048(t *testing.T) {
	if testing.Short() {
		t.Skip("depth-2048 hazard sweep is seconds-long; skipped in -short")
	}
	steps := 2048
	if raceEnabled {
		steps = 256
	}
	if err := runIVABatch(t, testChain(1), steps, 64, false); err != nil {
		t.Fatalf("ping-pong batch at depth %d flagged hazards: %v", steps, err)
	}
}

// TestIVBHazardFreeAtDeviceMaxDepth pushes kernel IV.B to the deepest
// tree one work-group can hold: the modelled device caps work-group
// size at 2048, so depth 2047 (2048 rows) is IV.B's ceiling and depth
// 2048 must be rejected up front by the launch check — an explicit
// local-size error, not a data hazard. This is the same envelope that
// forces the paper to route deep trees to kernel IV.A.
func TestIVBHazardFreeAtDeviceMaxDepth(t *testing.T) {
	err := runIVBBatch(t, testChain(1), 2048)
	if err == nil {
		t.Fatal("depth 2048 needs a 2049-row work-group; the device cap should reject the launch")
	}
	if !strings.Contains(err.Error(), "local size") {
		t.Fatalf("depth-2048 rejection should be the local-size launch check, got: %v", err)
	}

	if testing.Short() {
		t.Skip("depth-2047 hazard sweep is seconds-long; skipped in -short")
	}
	steps := 2047
	if raceEnabled {
		steps = 255
	}
	if err := runIVBBatch(t, testChain(1), steps); err != nil {
		t.Fatalf("kernel IV.B at depth %d flagged hazards: %v", steps, err)
	}
}
