package kernels

import (
	"testing"

	"binopt/internal/hwmath"
	"binopt/internal/opencl"
)

// The paper's §IV-A design rationale — ping-pong buffering exists "to
// avoid any memory conflict" — as an executable invariant: both kernels'
// drivers must run clean under the runtime's element-granular hazard
// checker. RunIVA/RunIVB create their own queues, so the checker is
// exercised through a purpose-built driver here mirroring RunIVA's batch
// structure with the checker enabled.

func TestIVAPingPongIsHazardFree(t *testing.T) {
	ctx := testContext(t)
	opts := testChain(4)
	const steps = 12

	// Mirror one batch of RunIVA with hazards enabled: build the same
	// kernel and buffers, enqueue one batch.
	q := ctx.NewQueue()
	q.EnableHazardCheck()

	totalNodes := nodeBase(steps)
	bufLen := nodeBase(steps + 1)
	mk := func(name string) *opencl.Buffer {
		b, err := ctx.CreateBuffer(name, bufLen, 8)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	sOld, vOld, sNew, vNew := mk("s0"), mk("v0"), mk("s1"), mk("v1")
	params, err := ctx.CreateBuffer("params", len(opts)*paramStride, 8)
	if err != nil {
		t.Fatal(err)
	}
	tTable, err := ctx.CreateBuffer("tt", totalNodes, 4)
	if err != nil {
		t.Fatal(err)
	}
	host := make([]float64, len(opts)*paramStride)
	if err := packParams(host, opts, steps, Double.rounder()); err != nil {
		t.Fatal(err)
	}
	if _, err := q.EnqueueWriteBuffer(params, 0, host); err != nil {
		t.Fatal(err)
	}
	tt := make([]float64, totalNodes)
	for tl := 0; tl < steps; tl++ {
		for k := 0; k <= tl; k++ {
			tt[nodeBase(tl)+k] = float64(tl)
		}
	}
	if _, err := q.EnqueueWriteBuffer(tTable, 0, tt); err != nil {
		t.Fatal(err)
	}

	kern := buildIVAKernel(Double.rounder())
	if err := kern.SetArgs(sOld, vOld, sNew, vNew, tTable, params,
		steps, len(opts), steps, totalNodes); err != nil {
		t.Fatal(err)
	}
	local := 6
	global := (totalNodes + local - 1) / local * local
	if _, err := q.EnqueueNDRange(kern, global, local); err != nil {
		t.Fatalf("ping-pong batch flagged hazards: %v", err)
	}

	// The anti-pattern the paper avoids: write back into the buffers
	// being read. The checker must catch it.
	if err := kern.SetArgs(sOld, vOld, sOld, vOld, tTable, params,
		steps, len(opts), steps, totalNodes); err != nil {
		t.Fatal(err)
	}
	if _, err := q.EnqueueNDRange(kern, global, local); err == nil {
		t.Fatal("in-place tree update should be flagged as a memory conflict")
	}
}

func TestIVBKernelIsHazardFreeOnGlobals(t *testing.T) {
	// Kernel IV.B touches global memory only for per-option params and
	// the one result slot per group; run a real small batch through the
	// checker via a custom queue + direct kernel build.
	ctx := testContext(t)
	opts := testChain(3)
	const steps = 8
	rows := steps + 1

	q := ctx.NewQueue()
	q.EnableHazardCheck()
	params, err := ctx.CreateBuffer("p", len(opts)*paramStride, 8)
	if err != nil {
		t.Fatal(err)
	}
	results, err := ctx.CreateBuffer("r", len(opts), 8)
	if err != nil {
		t.Fatal(err)
	}
	host := make([]float64, len(opts)*paramStride)
	if err := packParams(host, opts, steps, Double.rounder()); err != nil {
		t.Fatal(err)
	}
	if _, err := q.EnqueueWriteBuffer(params, 0, host); err != nil {
		t.Fatal(err)
	}
	kern := buildIVBKernel(IVBConfig{Steps: steps, Pow: hwmath.Accurate13SP1}, Double.rounder())
	if err := kern.SetArgs(params, results, opencl.LocalAlloc{N: rows, ElemBytes: 8}, steps); err != nil {
		t.Fatal(err)
	}
	if _, err := q.EnqueueNDRange(kern, len(opts)*rows, rows); err != nil {
		t.Fatalf("kernel IV.B flagged hazards: %v", err)
	}
}
