//go:build !race

package kernels

// raceEnabled reports whether the race detector is compiled in; the
// depth-2048 hazard sweeps thin their trees under race, where the
// instrumented work-item scheduler is an order of magnitude slower.
const raceEnabled = false
