package omhist

import (
	"math"
	"strings"
	"sync"
	"testing"
)

// TestObserveAndRender: cumulative bucket lines, count, sum, and an
// exemplar pinned to the bucket its observation landed in.
func TestObserveAndRender(t *testing.T) {
	h := New([]float64{0.001, 0.01, 0.1})
	h.Observe(0.0005)
	h.Observe(0.005)
	h.ObserveExemplar(0.05, "4bf92f3577b34da6a3ce929d0e0e4736")
	h.Observe(5) // +Inf bucket

	var b strings.Builder
	h.Render(&b, "binopt_option_latency_seconds", "")
	out := b.String()

	for _, want := range []string{
		`binopt_option_latency_seconds_bucket{le="0.001"} 1`,
		`binopt_option_latency_seconds_bucket{le="0.01"} 2`,
		`binopt_option_latency_seconds_bucket{le="+Inf"} 4`,
		`binopt_option_latency_seconds_count 4`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q in:\n%s", want, out)
		}
	}
	// The 0.1 bucket line carries the exemplar.
	found := false
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, `le="0.1"`) {
			found = true
			if !strings.Contains(line, `# {trace_id="4bf92f3577b34da6a3ce929d0e0e4736"} 0.05`) {
				t.Errorf("0.1 bucket missing exemplar: %s", line)
			}
		} else if strings.Contains(line, "# {") {
			t.Errorf("exemplar leaked onto another line: %s", line)
		}
	}
	if !found {
		t.Fatalf("no 0.1 bucket line in:\n%s", out)
	}
	if h.Count() != 4 {
		t.Errorf("count = %d", h.Count())
	}
	if math.Abs(h.Sum()-5.0555) > 1e-9 {
		t.Errorf("sum = %v", h.Sum())
	}
}

// TestRenderLabels: extra labels precede le and wrap _count/_sum.
func TestRenderLabels(t *testing.T) {
	h := New([]float64{1})
	h.Observe(0.5)
	var b strings.Builder
	h.Render(&b, "binopt_phase_seconds", `phase="batch"`)
	out := b.String()
	for _, want := range []string{
		`binopt_phase_seconds_bucket{phase="batch",le="1"} 1`,
		`binopt_phase_seconds_bucket{phase="batch",le="+Inf"} 1`,
		`binopt_phase_seconds_count{phase="batch"} 1`,
		`binopt_phase_seconds_sum{phase="batch"} 0.5`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q in:\n%s", want, out)
		}
	}
}

// TestExemplarReplacement: the newest trace-tagged observation wins;
// untagged observations leave the pinned exemplar alone.
func TestExemplarReplacement(t *testing.T) {
	h := New([]float64{1})
	h.ObserveExemplar(0.3, "aaaa")
	h.ObserveExemplar(0.4, "bbbb")
	h.Observe(0.5)
	var b strings.Builder
	h.Render(&b, "m", "")
	out := b.String()
	if !strings.Contains(out, `# {trace_id="bbbb"} 0.4`) {
		t.Errorf("newest exemplar not pinned:\n%s", out)
	}
	if strings.Contains(out, "aaaa") {
		t.Errorf("stale exemplar survived:\n%s", out)
	}
}

// TestQuantileAndMean: interpolation matches the old serve histogram's
// behaviour the health page still relies on.
func TestQuantileAndMean(t *testing.T) {
	h := New([]float64{1, 2, 4})
	for i := 0; i < 100; i++ {
		h.Observe(1.5)
	}
	q := h.Quantile(0.5)
	if q < 1 || q > 2 {
		t.Errorf("p50 = %v, want within (1,2]", q)
	}
	if math.Abs(h.Mean()-1.5) > 1e-9 {
		t.Errorf("mean = %v", h.Mean())
	}
	if New([]float64{1}).Quantile(0.99) != 0 {
		t.Error("empty histogram quantile not 0")
	}
}

// TestNilHistogram: every method on nil is a no-op.
func TestNilHistogram(t *testing.T) {
	var h *Histogram
	h.Observe(1)
	h.ObserveExemplar(1, "x")
	if h.Count() != 0 || h.Sum() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Error("nil histogram has state")
	}
	var b strings.Builder
	h.Render(&b, "m", "")
	if b.Len() != 0 {
		t.Error("nil histogram rendered output")
	}
}

// TestConcurrent hammers observe+render under the race detector.
func TestConcurrent(t *testing.T) {
	h := New(ExpBuckets(0.001, 10, 2))
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				h.ObserveExemplar(float64(i%7)*0.01, "t")
				if i%50 == 0 {
					var b strings.Builder
					h.Render(&b, "m", "")
				}
			}
		}(w)
	}
	wg.Wait()
	if h.Count() != 8*200 {
		t.Errorf("count = %d", h.Count())
	}
}

// TestExpBuckets pins the generator's shape.
func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(1, 16, 2)
	want := []float64{1, 2, 4, 8}
	if len(b) != len(want) {
		t.Fatalf("bounds = %v", b)
	}
	for i := range want {
		//binopt:ignore floateq generated bounds are exact powers of two
		if b[i] != want[i] {
			t.Fatalf("bounds = %v, want %v", b, want)
		}
	}
}
