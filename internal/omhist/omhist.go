// Package omhist is a fixed-bucket concurrent histogram that renders in
// the OpenMetrics exposition format with per-bucket exemplars: each
// bucket remembers the most recent trace-tagged observation that landed
// in it, and the rendered `_bucket` line carries it as
// `# {trace_id="..."} value timestamp`. That is the jump an operator
// makes from "the p99 spiked" to the one merged fleet trace that shows
// where the time (and the joules) went — aggregates locate the symptom,
// the exemplar names a culprit.
//
// It replaces the quantile-gauge rendering the serving tier started
// with: cumulative buckets aggregate correctly across processes (the
// fleet roll-up can sum them; quantiles cannot be averaged), and the
// bucket layout is where exemplars legally attach.
package omhist

import (
	"fmt"
	"math"
	"sort"
	"strings"
	"sync/atomic"
	"time"
)

// Exemplar is one trace-tagged observation pinned to a bucket.
type Exemplar struct {
	// TraceID is the 32-hex distributed trace ID of the request that
	// produced the observation.
	TraceID string
	// Value is the observed value (same unit as the histogram).
	Value float64
	// UnixNano is when the observation happened.
	UnixNano int64
}

// Histogram is a fixed-bucket concurrent histogram with optional
// per-bucket exemplars. All methods are safe for concurrent use; a nil
// *Histogram is a valid no-op sink so disabled paths need no branching.
type Histogram struct {
	bounds    []float64      // upper bounds, ascending
	counts    []atomic.Int64 // len(bounds)+1, last is the +Inf bucket
	exemplars []atomic.Pointer[Exemplar]
	sum       atomicFloat
	n         atomic.Int64
}

// New builds a histogram over the given ascending upper bounds. The
// +Inf overflow bucket is implicit.
func New(bounds []float64) *Histogram {
	return &Histogram{
		bounds:    bounds,
		counts:    make([]atomic.Int64, len(bounds)+1),
		exemplars: make([]atomic.Pointer[Exemplar], len(bounds)+1),
	}
}

// ExpBuckets builds bounds growing geometrically from lo by factor
// until reaching hi (exclusive).
func ExpBuckets(lo, hi, factor float64) []float64 {
	var b []float64
	for v := lo; v < hi; v *= factor {
		b = append(b, v)
	}
	return b
}

// Observe records one sample with no exemplar.
func (h *Histogram) Observe(v float64) { h.ObserveExemplar(v, "") }

// ObserveExemplar records one sample; when traceID is non-empty the
// containing bucket's exemplar is replaced with this observation, so
// each bucket always points at a recent representative trace.
func (h *Histogram) ObserveExemplar(v float64, traceID string) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.counts[i].Add(1)
	h.sum.add(v)
	h.n.Add(1)
	if traceID != "" {
		h.exemplars[i].Store(&Exemplar{TraceID: traceID, Value: v, UnixNano: time.Now().UnixNano()})
	}
}

// Count reports the total observations.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.n.Load()
}

// Sum reports the sum of observed values.
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return h.sum.load()
}

// Mean returns the average observed value, or 0 when empty.
func (h *Histogram) Mean() float64 {
	if h == nil {
		return 0
	}
	n := h.n.Load()
	if n == 0 {
		return 0
	}
	return h.sum.load() / float64(n)
}

// Quantile estimates the q-quantile (0 < q < 1) by linear interpolation
// inside the containing bucket. It returns 0 when the histogram is
// empty. Rendering no longer exposes quantiles — this survives for
// health summaries and tests, where a local estimate is the point.
func (h *Histogram) Quantile(q float64) float64 {
	if h == nil {
		return 0
	}
	total := h.n.Load()
	if total == 0 {
		return 0
	}
	target := q * float64(total)
	var cum float64
	for i := range h.counts {
		c := float64(h.counts[i].Load())
		if cum+c >= target && c > 0 {
			lo := 0.0
			if i > 0 {
				lo = h.bounds[i-1]
			}
			hi := lo * 2
			if i < len(h.bounds) {
				hi = h.bounds[i]
			}
			frac := (target - cum) / c
			return lo + frac*(hi-lo)
		}
		cum += c
	}
	return h.bounds[len(h.bounds)-1]
}

// Render writes the OpenMetrics exposition lines for the histogram:
// cumulative `_bucket{le="..."}` lines (exemplar-suffixed where one is
// pinned), then `_count` and `_sum`. labels is the pre-rendered extra
// label set without braces ("" or e.g. `phase="batch"`); le is appended
// after it so scrapers see one flat label set.
func (h *Histogram) Render(b *strings.Builder, name, labels string) {
	if h == nil {
		return
	}
	sep := ""
	if labels != "" {
		sep = ","
	}
	var cum int64
	for i := range h.counts {
		cum += h.counts[i].Load()
		le := "+Inf"
		if i < len(h.bounds) {
			le = formatBound(h.bounds[i])
		}
		fmt.Fprintf(b, "%s_bucket{%s%sle=%q} %d", name, labels, sep, le, cum)
		if ex := h.exemplars[i].Load(); ex != nil {
			fmt.Fprintf(b, " # {trace_id=%q} %.6g %.3f", ex.TraceID, ex.Value, float64(ex.UnixNano)/1e9)
		}
		b.WriteByte('\n')
	}
	var suffix string
	if labels != "" {
		suffix = "{" + labels + "}"
	}
	fmt.Fprintf(b, "%s_count%s %d\n", name, suffix, h.n.Load())
	fmt.Fprintf(b, "%s_sum%s %.6g\n", name, suffix, h.sum.load())
}

// formatBound renders a bucket bound in shortest "%g" form, pinned in
// one place so every exposition and every test grep agree on it.
func formatBound(v float64) string {
	return fmt.Sprintf("%g", v)
}

// atomicFloat is a float64 accumulator built on a bits CAS loop.
type atomicFloat struct{ bits atomic.Uint64 }

func (f *atomicFloat) add(v float64) {
	for {
		old := f.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if f.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

func (f *atomicFloat) load() float64 { return math.Float64frombits(f.bits.Load()) }
