// Package quadrature prices options by repeated numerical integration of
// the risk-neutral transition density on a log-price grid — the QUAD
// family that the solver survey cited by the paper ([12] Jin, Luk,
// Thomas, "On comparing financial option price solvers on FPGA")
// concludes is the best accuracy/time compromise for American options.
// American exercise is approximated by a Bermudan schedule of exercise
// dates; between dates the value is propagated exactly through the
// lognormal kernel, integrated with Simpson's rule plus closed-form tail
// corrections outside the grid.
package quadrature

import (
	"fmt"
	"math"

	"binopt/internal/mathx"
	"binopt/internal/option"
)

// Config parameterises the grid and the exercise schedule.
type Config struct {
	// SpaceNodes is the number of grid intervals (must be even for
	// Simpson; default 256).
	SpaceNodes int
	// Dates is the number of exercise dates approximating American
	// exercise (default 32). European contracts always use one step.
	Dates int
	// WidthSigmas sets the grid half-width in terminal standard
	// deviations (default 7).
	WidthSigmas float64
}

func (c *Config) defaults() {
	if c.SpaceNodes == 0 {
		c.SpaceNodes = 256
	}
	if c.Dates == 0 {
		c.Dates = 32
	}
	if c.WidthSigmas == 0 {
		c.WidthSigmas = 7
	}
}

func (c Config) validate() error {
	switch {
	case c.SpaceNodes < 4 || c.SpaceNodes%2 != 0:
		return fmt.Errorf("quadrature: SpaceNodes must be even and >= 4, got %d", c.SpaceNodes)
	case c.Dates < 1:
		return fmt.Errorf("quadrature: need at least 1 date, got %d", c.Dates)
	case c.WidthSigmas <= 0:
		return fmt.Errorf("quadrature: width must be positive, got %v", c.WidthSigmas)
	}
	return nil
}

// Price values the option by QUAD integration and returns the value at
// the spot.
func Price(o option.Option, cfg Config) (float64, error) {
	if err := o.Validate(); err != nil {
		return 0, err
	}
	cfg.defaults()
	if err := cfg.validate(); err != nil {
		return 0, err
	}

	m := cfg.SpaceNodes
	dates := cfg.Dates
	if o.Style == option.European {
		// One exact transition from expiry to now.
		dates = 1
	}
	dt := o.T / float64(dates)
	nu := o.Rate - o.Div - 0.5*o.Sigma*o.Sigma
	s := o.Sigma * math.Sqrt(dt)
	disc := math.Exp(-o.Rate * dt)

	half := cfg.WidthSigmas*o.Sigma*math.Sqrt(o.T) + math.Abs(nu)*o.T + 0.5
	x0 := math.Log(o.Spot)
	xMin := x0 - half
	dx := 2 * half / float64(m)

	grid := make([]float64, m+1)
	spotAt := make([]float64, m+1)
	pay := make([]float64, m+1)
	for j := 0; j <= m; j++ {
		grid[j] = xMin + float64(j)*dx
		spotAt[j] = math.Exp(grid[j])
		pay[j] = o.Payoff(spotAt[j])
	}

	v := append([]float64(nil), pay...)
	vNew := make([]float64, m+1)
	american := o.Style == option.American

	for step := 0; step < dates; step++ {
		for i := 0; i <= m; i++ {
			mu := grid[i] + nu*dt
			vNew[i] = disc * (simpsonKernel(grid, v, mu, s, dx) + tails(o, grid, mu, s))
			if american {
				if pay[i] > vNew[i] {
					vNew[i] = pay[i]
				}
			}
		}
		copy(v, vNew)
	}

	// The spot sits at the grid centre; interpolate defensively anyway.
	pos := (x0 - xMin) / dx
	j := int(pos)
	if j < 0 {
		j = 0
	}
	if j >= m {
		j = m - 1
	}
	w := pos - float64(j)
	val := v[j]*(1-w) + v[j+1]*w
	if american {
		if intr := o.Intrinsic(); val < intr {
			val = intr
		}
	}
	return val, nil
}

// simpsonKernel integrates V(y) * phi((y-mu)/s)/s over the grid with
// composite Simpson weights.
func simpsonKernel(grid, v []float64, mu, s, dx float64) float64 {
	m := len(grid) - 1
	var acc mathx.KahanSum
	for j := 0; j <= m; j++ {
		w := 2.0
		switch {
		case j == 0 || j == m:
			w = 1
		case j%2 == 1:
			w = 4
		}
		z := (grid[j] - mu) / s
		acc.Add(w * v[j] * mathx.NormPDF(z) / s)
	}
	return acc.Sum() * dx / 3
}

// tails adds the closed-form contribution of the value beyond the grid,
// where the option value equals its payoff to excellent accuracy: the
// put's lower tail integrates K - e^y against the Gaussian kernel, the
// call's upper tail e^y - K. The opposite tails contribute zero payoff.
func tails(o option.Option, grid []float64, mu, s float64) float64 {
	lo := grid[0]
	hi := grid[len(grid)-1]
	expMean := math.Exp(mu + 0.5*s*s)
	if o.Right == option.Put {
		// ∫_{-inf}^{lo} (K - e^y) phi((y-mu)/s)/s dy
		zLo := (lo - mu) / s
		k := o.Strike * mathx.NormCDF(zLo)
		e := expMean * mathx.NormCDF(zLo-s)
		t := k - e
		if t < 0 {
			return 0
		}
		return t
	}
	// ∫_{hi}^{inf} (e^y - K) phi((y-mu)/s)/s dy
	zHi := (hi - mu) / s
	e := expMean * mathx.NormCDFComplement(zHi-s)
	k := o.Strike * mathx.NormCDFComplement(zHi)
	t := e - k
	if t < 0 {
		return 0
	}
	return t
}
