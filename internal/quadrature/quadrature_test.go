package quadrature

import (
	"math"
	"testing"

	"binopt/internal/bs"
	"binopt/internal/lattice"
	"binopt/internal/option"
)

func contract(right option.Right, style option.Style) option.Option {
	return option.Option{
		Right: right, Style: style,
		Spot: 100, Strike: 105, Rate: 0.03, Sigma: 0.2, T: 0.5,
	}
}

func TestEuropeanMatchesBlackScholes(t *testing.T) {
	for _, right := range []option.Right{option.Call, option.Put} {
		o := contract(right, option.European)
		ref, err := bs.Price(o)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Price(o, Config{SpaceNodes: 512})
		if err != nil {
			t.Fatal(err)
		}
		if diff := math.Abs(got - ref); diff > 2e-3 {
			t.Errorf("%v: QUAD %v vs BS %v (diff %g)", right, got, ref, diff)
		}
	}
}

func TestAmericanMatchesLattice(t *testing.T) {
	o := contract(option.Put, option.American)
	eng, err := lattice.NewEngine(4096)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := eng.Price(o)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Price(o, Config{SpaceNodes: 512, Dates: 64})
	if err != nil {
		t.Fatal(err)
	}
	// Bermudan with 64 dates under-approximates American slightly.
	if diff := math.Abs(got - ref); diff > 2e-2 {
		t.Errorf("QUAD american %v vs lattice %v (diff %g)", got, ref, diff)
	}
	if got > ref+2e-3 {
		t.Errorf("Bermudan approximation %v should not exceed American %v", got, ref)
	}
}

func TestMoreDatesApproachAmerican(t *testing.T) {
	o := contract(option.Put, option.American)
	eng, err := lattice.NewEngine(4096)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := eng.Price(o)
	if err != nil {
		t.Fatal(err)
	}
	few, err := Price(o, Config{SpaceNodes: 512, Dates: 4})
	if err != nil {
		t.Fatal(err)
	}
	many, err := Price(o, Config{SpaceNodes: 512, Dates: 64})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(many-ref) > math.Abs(few-ref) {
		t.Errorf("more exercise dates should improve: 4 dates err %g, 64 dates err %g",
			math.Abs(few-ref), math.Abs(many-ref))
	}
	if many < few-1e-9 {
		t.Errorf("Bermudan value must increase with dates: %v -> %v", few, many)
	}
}

func TestAmericanAboveEuropean(t *testing.T) {
	am, err := Price(contract(option.Put, option.American), Config{})
	if err != nil {
		t.Fatal(err)
	}
	eu, err := Price(contract(option.Put, option.European), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if am < eu {
		t.Errorf("american %v below european %v", am, eu)
	}
}

func TestCallTailContribution(t *testing.T) {
	// A far OTM grid forces the upper tail correction to carry real
	// weight: deep ITM call must still price near S - K*disc.
	o := option.Option{
		Right: option.Call, Style: option.European,
		Spot: 200, Strike: 100, Rate: 0.05, Sigma: 0.2, T: 1,
	}
	ref, err := bs.Price(o)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Price(o, Config{SpaceNodes: 512})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-ref) > 5e-3 {
		t.Errorf("deep ITM call %v vs BS %v", got, ref)
	}
}

func TestValidation(t *testing.T) {
	o := contract(option.Put, option.American)
	bad := o
	bad.T = -1
	if _, err := Price(bad, Config{}); err == nil {
		t.Error("invalid option should fail")
	}
	for _, cfg := range []Config{
		{SpaceNodes: 3}, // odd
		{SpaceNodes: 2}, // too small
		{Dates: -1},     // negative
		{WidthSigmas: -1},
	} {
		if _, err := Price(o, cfg); err == nil {
			t.Errorf("config %+v should fail", cfg)
		}
	}
}
