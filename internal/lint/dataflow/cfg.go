package dataflow

import (
	"go/ast"
	"go/token"
)

// Block is one straight-line run of statements in a CFG. Nodes holds
// the statements (and loop/branch condition expressions) in execution
// order; Succs the possible continuations.
type Block struct {
	Index int
	Nodes []ast.Node
	Succs []*Block
}

// CFG is the control-flow graph of one function body. Entry leads to
// the first statement; every return, panic-free fallthrough and
// function-ending path reaches Exit. Unreachable statements (after a
// return or goto) still get blocks, just without predecessors, so
// analyses see their defs and uses without propagating facts into them.
type CFG struct {
	Entry  *Block
	Exit   *Block
	Blocks []*Block
}

// Preds computes the predecessor lists (the builder only records
// successors).
func (g *CFG) Preds() map[*Block][]*Block {
	preds := make(map[*Block][]*Block, len(g.Blocks))
	for _, b := range g.Blocks {
		for _, s := range b.Succs {
			preds[s] = append(preds[s], b)
		}
	}
	return preds
}

// NewCFG builds the graph for one function body. It handles the full
// statement grammar: if/else chains, for and range loops, switch and
// type switch (fallthrough included), select, labeled break/continue,
// goto (forward and backward), and defer (a defer's arguments evaluate
// in place; the deferred call itself is re-attached before Exit, which
// is where it runs).
func NewCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{
		labels: make(map[string]*labelTarget),
	}
	entry := b.newBlock()
	exit := b.newBlock()
	b.exit = exit
	cur := b.stmts(body.List, entry)
	b.edge(cur, exit)
	for _, pg := range b.pendingGotos {
		if t, ok := b.labels[pg.label]; ok {
			b.edge(pg.from, t.block)
		}
		// A goto to an undeclared label is a compile error upstream;
		// nothing to connect here.
	}
	// Deferred calls run on the way out: give them a block of their own
	// between every Exit predecessor and Exit. Simpler and equivalent
	// for forward dataflow: prepend them to Exit's node list.
	if len(b.defers) > 0 {
		nodes := make([]ast.Node, 0, len(b.defers)+len(exit.Nodes))
		for i := len(b.defers) - 1; i >= 0; i-- { // LIFO, like the runtime
			nodes = append(nodes, b.defers[i])
		}
		exit.Nodes = append(nodes, exit.Nodes...)
	}
	return &CFG{Entry: entry, Exit: exit, Blocks: b.blocks}
}

type labelTarget struct {
	block *Block // where goto LABEL lands
	// brk/cont are the targets of labeled break/continue while the
	// labeled loop or switch is open.
	brk, cont *Block
}

type pendingGoto struct {
	from  *Block
	label string
}

type loopFrame struct {
	label     string
	brk, cont *Block
}

type cfgBuilder struct {
	blocks       []*Block
	exit         *Block
	loops        []loopFrame // innermost last; switches/selects push brk-only frames
	labels       map[string]*labelTarget
	pendingGotos []pendingGoto
	defers       []ast.Node
	// nextLabel names the label to attach to the next loop/switch
	// statement (label: for {...}).
	nextLabel string
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{Index: len(b.blocks)}
	b.blocks = append(b.blocks, blk)
	return blk
}

func (b *cfgBuilder) edge(from, to *Block) {
	if from == nil || to == nil {
		return
	}
	from.Succs = append(from.Succs, to)
}

func (b *cfgBuilder) stmts(list []ast.Stmt, cur *Block) *Block {
	for _, s := range list {
		cur = b.stmt(s, cur)
	}
	return cur
}

// stmt threads one statement through the graph and returns the block
// where control continues.
func (b *cfgBuilder) stmt(s ast.Stmt, cur *Block) *Block {
	switch s := s.(type) {
	case *ast.LabeledStmt:
		// Start a fresh block so gotos have a landing site, then let the
		// labeled statement register break/continue targets under the
		// label.
		lb := b.newBlock()
		b.edge(cur, lb)
		t := &labelTarget{block: lb}
		b.labels[s.Label.Name] = t
		b.nextLabel = s.Label.Name
		out := b.stmt(s.Stmt, lb)
		b.nextLabel = ""
		return out

	case *ast.ReturnStmt:
		cur.Nodes = append(cur.Nodes, s)
		b.edge(cur, b.exit)
		return b.newBlock() // unreachable continuation

	case *ast.BranchStmt:
		cur.Nodes = append(cur.Nodes, s)
		switch s.Tok {
		case token.GOTO:
			b.pendingGotos = append(b.pendingGotos, pendingGoto{cur, s.Label.Name})
		case token.BREAK:
			if t := b.branchTarget(s.Label, true); t != nil {
				b.edge(cur, t)
			}
		case token.CONTINUE:
			if t := b.branchTarget(s.Label, false); t != nil {
				b.edge(cur, t)
			}
		case token.FALLTHROUGH:
			// Handled structurally by the switch builder (the case body
			// flows into the next case); nothing to add here.
			return cur
		}
		return b.newBlock()

	case *ast.BlockStmt:
		return b.stmts(s.List, cur)

	case *ast.IfStmt:
		if s.Init != nil {
			cur = b.stmt(s.Init, cur)
		}
		cur.Nodes = append(cur.Nodes, s.Cond)
		thenB := b.newBlock()
		b.edge(cur, thenB)
		thenOut := b.stmts(s.Body.List, thenB)
		join := b.newBlock()
		b.edge(thenOut, join)
		if s.Else != nil {
			elseB := b.newBlock()
			b.edge(cur, elseB)
			elseOut := b.stmt(s.Else, elseB)
			b.edge(elseOut, join)
		} else {
			b.edge(cur, join)
		}
		return join

	case *ast.ForStmt:
		label := b.takeLabel()
		if s.Init != nil {
			cur = b.stmt(s.Init, cur)
		}
		head := b.newBlock()
		b.edge(cur, head)
		if s.Cond != nil {
			head.Nodes = append(head.Nodes, s.Cond)
		}
		join := b.newBlock()
		post := head
		if s.Post != nil {
			post = b.newBlock()
		}
		b.pushLoop(label, join, post)
		bodyB := b.newBlock()
		b.edge(head, bodyB)
		bodyOut := b.stmts(s.Body.List, bodyB)
		b.popLoop()
		if s.Post != nil {
			b.edge(bodyOut, post)
			post = b.stmt(s.Post, post)
			b.edge(post, head)
		} else {
			b.edge(bodyOut, head)
		}
		if s.Cond != nil {
			b.edge(head, join) // condition false
		}
		// `for {}` with no cond only leaves via break/return/goto.
		return join

	case *ast.RangeStmt:
		label := b.takeLabel()
		cur.Nodes = append(cur.Nodes, s) // the range clause: X eval + key/value defs
		head := b.newBlock()
		b.edge(cur, head)
		join := b.newBlock()
		b.edge(head, join) // range exhausted
		b.pushLoop(label, join, head)
		bodyB := b.newBlock()
		b.edge(head, bodyB)
		bodyOut := b.stmts(s.Body.List, bodyB)
		b.popLoop()
		b.edge(bodyOut, head)
		return join

	case *ast.SwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			cur = b.stmt(s.Init, cur)
		}
		if s.Tag != nil {
			cur.Nodes = append(cur.Nodes, s.Tag)
		}
		return b.caseBodies(label, cur, s.Body.List, switchClauses(s.Body.List))

	case *ast.TypeSwitchStmt:
		label := b.takeLabel()
		if s.Init != nil {
			cur = b.stmt(s.Init, cur)
		}
		cur.Nodes = append(cur.Nodes, s.Assign)
		return b.caseBodies(label, cur, s.Body.List, switchClauses(s.Body.List))

	case *ast.SelectStmt:
		label := b.takeLabel()
		join := b.newBlock()
		b.pushSwitch(label, join)
		reachesJoin := false
		for _, cl := range s.Body.List {
			comm, ok := cl.(*ast.CommClause)
			if !ok {
				continue
			}
			cb := b.newBlock()
			b.edge(cur, cb)
			if comm.Comm != nil {
				cb = b.stmt(comm.Comm, cb)
			}
			out := b.stmts(comm.Body, cb)
			b.edge(out, join)
			reachesJoin = true
		}
		b.popLoop()
		if !reachesJoin {
			// select{} blocks forever; the join is unreachable.
			return join
		}
		return join

	case *ast.DeferStmt:
		// Arguments evaluate here; the call itself runs before Exit.
		cur.Nodes = append(cur.Nodes, s)
		b.defers = append(b.defers, s)
		return cur

	default:
		// Straight-line statement: assign, expr, send, incdec, decl, go,
		// empty.
		cur.Nodes = append(cur.Nodes, s)
		return cur
	}
}

// switchClauses filters the *ast.CaseClause entries of a switch body.
func switchClauses(list []ast.Stmt) []*ast.CaseClause {
	out := make([]*ast.CaseClause, 0, len(list))
	for _, cl := range list {
		if cc, ok := cl.(*ast.CaseClause); ok {
			out = append(out, cc)
		}
	}
	return out
}

// caseBodies wires a (type) switch's clause bodies: every clause is
// entered from the dispatch block, fallthrough chains a body into the
// next clause, and a missing default adds a direct dispatch→join edge.
func (b *cfgBuilder) caseBodies(label string, cur *Block, raw []ast.Stmt, clauses []*ast.CaseClause) *Block {
	join := b.newBlock()
	b.pushSwitch(label, join)
	hasDefault := false
	bodies := make([]*Block, len(clauses))
	for i := range clauses {
		bodies[i] = b.newBlock()
		b.edge(cur, bodies[i])
	}
	for i, cc := range clauses {
		if cc.List == nil {
			hasDefault = true
		}
		for _, e := range cc.List {
			bodies[i].Nodes = append(bodies[i].Nodes, e)
		}
		out := b.stmts(cc.Body, bodies[i])
		if fallsThrough(cc.Body) && i+1 < len(clauses) {
			b.edge(out, bodies[i+1])
		} else {
			b.edge(out, join)
		}
	}
	b.popLoop()
	if !hasDefault {
		b.edge(cur, join)
	}
	return join
}

// fallsThrough reports whether a case body ends in a fallthrough.
func fallsThrough(body []ast.Stmt) bool {
	if len(body) == 0 {
		return false
	}
	br, ok := body[len(body)-1].(*ast.BranchStmt)
	return ok && br.Tok == token.FALLTHROUGH
}

func (b *cfgBuilder) takeLabel() string {
	l := b.nextLabel
	b.nextLabel = ""
	return l
}

func (b *cfgBuilder) pushLoop(label string, brk, cont *Block) {
	b.loops = append(b.loops, loopFrame{label: label, brk: brk, cont: cont})
	if label != "" {
		if t, ok := b.labels[label]; ok {
			t.brk, t.cont = brk, cont
		}
	}
}

// pushSwitch opens a break-only frame (switch/select): continue skips it.
func (b *cfgBuilder) pushSwitch(label string, brk *Block) {
	b.loops = append(b.loops, loopFrame{label: label, brk: brk})
	if label != "" {
		if t, ok := b.labels[label]; ok {
			t.brk = brk
		}
	}
}

func (b *cfgBuilder) popLoop() {
	b.loops = b.loops[:len(b.loops)-1]
}

// branchTarget resolves break (wantBreak) or continue to its block.
func (b *cfgBuilder) branchTarget(label *ast.Ident, wantBreak bool) *Block {
	if label != nil {
		t, ok := b.labels[label.Name]
		if !ok {
			return nil
		}
		if wantBreak {
			return t.brk
		}
		return t.cont
	}
	for i := len(b.loops) - 1; i >= 0; i-- {
		f := b.loops[i]
		if wantBreak {
			return f.brk
		}
		if f.cont != nil { // continue skips switch/select frames
			return f.cont
		}
	}
	return nil
}
