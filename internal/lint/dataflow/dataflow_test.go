package dataflow

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"testing"

	"binopt/internal/lint"
)

// typecheck parses and type-checks one synthetic file, returning the
// named function declarations.
func typecheck(t *testing.T, src string) (*token.FileSet, map[string]*ast.FuncDecl, *types.Info) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "x.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	info := lint.NewInfo()
	conf := types.Config{Importer: importer.Default()}
	if _, err := conf.Check("x", fset, []*ast.File{f}, info); err != nil {
		t.Fatalf("typecheck: %v", err)
	}
	fns := make(map[string]*ast.FuncDecl)
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok {
			fns[fd.Name.Name] = fd
		}
	}
	return fset, fns, info
}

// --- Walker ---

// flagState is a simple gen-only abstract state: a set of string facts.
type flagState map[string]bool

func (s flagState) CloneState() State {
	c := make(flagState, len(s))
	for k := range s {
		c[k] = true
	}
	return c
}

func (s flagState) MergeState(o State) State {
	out := s.CloneState().(flagState)
	for k := range o.(flagState) {
		out[k] = true
	}
	return out
}

// markClient sets fact "armed" on calls to arm() and records, for every
// call to probe(), whether the fact held at that point.
type markClient struct {
	w      *Walker
	probes []bool
	fresh  int
}

func (c *markClient) Fresh() State { c.fresh++; return make(flagState) }

func (c *markClient) Transfer(s ast.Stmt, st State) State {
	es, ok := s.(*ast.ExprStmt)
	if !ok {
		return st
	}
	if call, ok := es.X.(*ast.CallExpr); ok {
		if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "arm" {
			ns := st.CloneState().(flagState)
			ns["armed"] = true
			return ns
		}
	}
	return st
}

func (c *markClient) Expr(e ast.Expr, st State) {
	c.w.InspectExpr(e, st, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "probe" {
				c.probes = append(c.probes, st.(flagState)["armed"])
			}
		}
		return true
	})
}

func runWalker(t *testing.T, body string) *markClient {
	t.Helper()
	src := "package x\nfunc arm() {}\nfunc probe() {}\nfunc f(cond bool, ch chan int) {\n" + body + "\n}\n"
	_, fns, _ := typecheck(t, src)
	c := &markClient{}
	w := &Walker{Client: c}
	c.w = w
	w.Walk(fns["f"].Body, make(flagState))
	return c
}

func TestWalkerBranchMerge(t *testing.T) {
	// Armed on one branch only: the join conservatively keeps the fact.
	c := runWalker(t, `
	if cond {
		arm()
	}
	probe()`)
	if want := []bool{true}; fmt.Sprint(c.probes) != fmt.Sprint(want) {
		t.Fatalf("probes = %v, want %v", c.probes, want)
	}
}

func TestWalkerTerminatingBranchDropsState(t *testing.T) {
	// The armed branch returns; only the clean branch reaches the probe.
	c := runWalker(t, `
	if cond {
		arm()
		return
	}
	probe()`)
	if want := []bool{false}; fmt.Sprint(c.probes) != fmt.Sprint(want) {
		t.Fatalf("probes = %v, want %v", c.probes, want)
	}
}

func TestWalkerLoopBodyStateReachesExit(t *testing.T) {
	// A fact set inside a loop body survives past the loop (the body may
	// have run).
	c := runWalker(t, `
	for i := 0; i < 3; i++ {
		arm()
	}
	probe()`)
	if want := []bool{true}; fmt.Sprint(c.probes) != fmt.Sprint(want) {
		t.Fatalf("probes = %v, want %v", c.probes, want)
	}
}

func TestWalkerGoroutineGetsFreshState(t *testing.T) {
	c := runWalker(t, `
	arm()
	go func() {
		probe()
	}()
	probe()`)
	// Goroutine body probes under a fresh state (false); the spawning
	// path stays armed. InspectExpr walks the literal before the
	// statement's own probe.
	if c.fresh == 0 {
		t.Fatalf("goroutine body did not get a fresh state")
	}
	if want := []bool{false, true}; fmt.Sprint(c.probes) != fmt.Sprint(want) {
		t.Fatalf("probes = %v, want %v", c.probes, want)
	}
}

func TestWalkerSwitchMergesCases(t *testing.T) {
	c := runWalker(t, `
	switch {
	case cond:
		arm()
	default:
	}
	probe()`)
	if want := []bool{true}; fmt.Sprint(c.probes) != fmt.Sprint(want) {
		t.Fatalf("probes = %v, want %v", c.probes, want)
	}
}

// --- CFG ---

func buildCFG(t *testing.T, body string) *CFG {
	t.Helper()
	src := "package x\nfunc g() int { return 0 }\nfunc f(cond bool, n int, ch chan int) {\n" + body + "\n}\n"
	_, fns, _ := typecheck(t, src)
	return NewCFG(fns["f"].Body)
}

// reaches reports whether to is reachable from from.
func reaches(from, to *Block) bool {
	seen := map[*Block]bool{}
	var walk func(b *Block) bool
	walk = func(b *Block) bool {
		if b == to {
			return true
		}
		if seen[b] {
			return false
		}
		seen[b] = true
		for _, s := range b.Succs {
			if walk(s) {
				return true
			}
		}
		return false
	}
	return walk(from)
}

func TestCFGStraightLine(t *testing.T) {
	g := buildCFG(t, "n = 1\nn = 2")
	if !reaches(g.Entry, g.Exit) {
		t.Fatal("exit unreachable")
	}
	if len(g.Entry.Nodes) != 2 {
		t.Fatalf("entry block has %d nodes, want 2", len(g.Entry.Nodes))
	}
}

func TestCFGLoopBackEdge(t *testing.T) {
	g := buildCFG(t, `
	for i := 0; i < n; i++ {
		n = g()
	}
	n = 0`)
	// The loop body must reach back to the condition head and the exit.
	var head *Block
	for _, b := range g.Blocks {
		for _, s := range b.Succs {
			if s == b || reaches(s, b) {
				head = b
			}
		}
	}
	if head == nil {
		t.Fatal("no back edge found in loop CFG")
	}
	if !reaches(g.Entry, g.Exit) {
		t.Fatal("exit unreachable")
	}
}

func TestCFGGotoBackward(t *testing.T) {
	g := buildCFG(t, `
again:
	n = g()
	if cond {
		goto again
	}`)
	// goto creates a cycle.
	cyclic := false
	for _, b := range g.Blocks {
		for _, s := range b.Succs {
			if reaches(s, b) {
				cyclic = true
			}
		}
	}
	if !cyclic {
		t.Fatal("backward goto produced no cycle")
	}
}

func TestCFGSwitchFallthrough(t *testing.T) {
	g := buildCFG(t, `
	switch n {
	case 1:
		n = 10
		fallthrough
	case 2:
		n = 20
	default:
		n = 30
	}
	n = 0`)
	if !reaches(g.Entry, g.Exit) {
		t.Fatal("exit unreachable")
	}
	// The case-1 body must reach the case-2 body (fallthrough edge):
	// find them by node counts.
	var c1, c2 *Block
	for _, b := range g.Blocks {
		for _, nd := range b.Nodes {
			if as, ok := nd.(*ast.AssignStmt); ok {
				if lit, ok := as.Rhs[0].(*ast.BasicLit); ok {
					switch lit.Value {
					case "10":
						c1 = b
					case "20":
						c2 = b
					}
				}
			}
		}
	}
	if c1 == nil || c2 == nil {
		t.Fatal("case bodies not found")
	}
	if !reaches(c1, c2) {
		t.Fatal("fallthrough edge missing")
	}
}

func TestCFGLabeledBreak(t *testing.T) {
	g := buildCFG(t, `
outer:
	for {
		for {
			if cond {
				break outer
			}
		}
	}
	n = 0`)
	if !reaches(g.Entry, g.Exit) {
		t.Fatal("labeled break does not reach past the outer loop")
	}
}

func TestCFGSelect(t *testing.T) {
	g := buildCFG(t, `
	select {
	case v := <-ch:
		n = v
	case ch <- n:
	}
	n = 0`)
	if !reaches(g.Entry, g.Exit) {
		t.Fatal("exit unreachable through select")
	}
}

func TestCFGDeferRunsBeforeExit(t *testing.T) {
	g := buildCFG(t, `
	defer g()
	n = 1`)
	found := false
	for _, nd := range g.Exit.Nodes {
		if _, ok := nd.(*ast.DeferStmt); ok {
			found = true
		}
	}
	if !found {
		t.Fatal("deferred call not re-attached before exit")
	}
}

// --- Def-use chains ---

func buildChains(t *testing.T, src string, fn string) (*Chains, map[string]*ast.FuncDecl, *types.Info) {
	t.Helper()
	_, fns, info := typecheck(t, src)
	fd, ok := fns[fn]
	if !ok {
		t.Fatalf("function %q not found", fn)
	}
	return BuildChains(fd, info), fns, info
}

// defsFor selects the non-entry definitions of the named variable.
func defsFor(ch *Chains, name string) []*Def {
	var out []*Def
	for _, d := range ch.Defs {
		if d.Obj.Name() == name && d.Ident != nil {
			out = append(out, d)
		}
	}
	return out
}

const chainsSrc = `package x

import "errors"

func fail() (int, error) { return 0, errors.New("x") }

func deadStore() error {
	err := errors.New("first") // dead: overwritten before any use
	_, err = fail()
	return err
}

func liveThroughBranch(cond bool) error {
	err := errors.New("first")
	if cond {
		return err
	}
	_, err = fail()
	return err
}

func bareReturn() (err error) {
	_, err = fail()
	return
}

func droppedTail() int {
	n, err := fail()
	_ = err
	n2, err := fail() // this err def reaches no use
	_ = n
	return n2
}

func escaped() error {
	var err error
	f := func() { _, err = fail() }
	f()
	return err
}
`

func TestChainsDeadStore(t *testing.T) {
	ch, _, _ := buildChains(t, chainsSrc, "deadStore")
	defs := defsFor(ch, "err")
	if len(defs) != 2 {
		t.Fatalf("got %d defs of err, want 2", len(defs))
	}
	if n := len(defs[0].Uses); n != 0 {
		t.Errorf("first def (dead store) has %d uses, want 0", n)
	}
	if n := len(defs[1].Uses); n != 1 {
		t.Errorf("second def has %d uses, want 1", n)
	}
	if defs[0].Rhs == nil {
		t.Errorf("first def lost its RHS")
	}
}

func TestChainsBranchKeepsDefLive(t *testing.T) {
	ch, _, _ := buildChains(t, chainsSrc, "liveThroughBranch")
	defs := defsFor(ch, "err")
	if len(defs) != 2 {
		t.Fatalf("got %d defs of err, want 2", len(defs))
	}
	// The first def reaches the `return err` inside the branch.
	if n := len(defs[0].Uses); n != 1 {
		t.Errorf("first def has %d uses, want 1 (the branch return)", n)
	}
}

func TestChainsBareReturnUsesNamedResult(t *testing.T) {
	ch, _, _ := buildChains(t, chainsSrc, "bareReturn")
	defs := defsFor(ch, "err")
	if len(defs) != 1 {
		t.Fatalf("got %d defs of err, want 1", len(defs))
	}
	if n := len(defs[0].Uses); n != 1 {
		t.Errorf("def has %d uses, want 1 (the bare return)", n)
	}
}

func TestChainsTailDefUnused(t *testing.T) {
	ch, _, _ := buildChains(t, chainsSrc, "droppedTail")
	defs := defsFor(ch, "err")
	if len(defs) != 2 {
		t.Fatalf("got %d defs of err, want 2", len(defs))
	}
	if n := len(defs[0].Uses); n != 1 {
		t.Errorf("first def has %d uses, want 1 (the _ = err)", n)
	}
	if n := len(defs[1].Uses); n != 0 {
		t.Errorf("tail def has %d uses, want 0", n)
	}
}

func TestChainsEscapeDisablesConclusions(t *testing.T) {
	ch, _, _ := buildChains(t, chainsSrc, "escaped")
	for obj := range ch.Escaped {
		if obj.Name() == "err" {
			return
		}
	}
	t.Fatal("err captured by a closure was not marked escaped")
}

func TestChainsUseDefsLinksBack(t *testing.T) {
	ch, _, _ := buildChains(t, chainsSrc, "deadStore")
	linked := 0
	for use, defs := range ch.UseDefs {
		if use.Name == "err" && len(defs) > 0 {
			linked++
		}
	}
	if linked == 0 {
		t.Fatal("UseDefs carries no links for err")
	}
}

// Regression: a parameter used in straight-line code shares the entry
// block with its own binding; the entry defs must be events at the head
// of that block, or such uses never link (and look like dead params).
func TestChainsParamUseInEntryBlock(t *testing.T) {
	ch, _, _ := buildChains(t, `package x

func passthrough(n int) int {
	return n + 1
}
`, "passthrough")
	defs := defsFor(ch, "n")
	var entry *Def
	for _, d := range ch.Defs {
		if d.Obj.Name() == "n" && d.Ident == nil {
			entry = d
		}
	}
	if len(defs) != 0 {
		t.Fatalf("no body defs of n expected, got %d", len(defs))
	}
	if entry == nil {
		t.Fatal("no entry def recorded for parameter n")
	}
	if n := len(entry.Uses); n != 1 {
		t.Fatalf("parameter entry def has %d uses, want 1 (the return)", n)
	}
}
