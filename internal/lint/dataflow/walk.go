// Package dataflow is the control-flow engine under the binoptvet
// analyzers. It provides three layers, each usable on its own:
//
//   - Walker: a branch-merging abstract-state interpreter over a
//     function body in source order, generalized out of the locksafe
//     analyzer so every stateful check (held locks, pending WaitGroup
//     adds, tainted variables) shares one treatment of if/for/switch/
//     select/defer/goto instead of hand-rolling its own;
//   - CFG: an explicit per-function control-flow graph (cfg.go) for
//     analyses that need fixpoints rather than a single pass;
//   - Chains: reaching-definitions def-use chains over the CFG
//     (defuse.go), linking every definition of a local variable to the
//     uses it reaches — the machinery behind errdrop's dead-error-store
//     detection.
//
// The walker is deliberately conservative in the same places locksafe
// always was: loop bodies merge back into the loop head once (no
// fixpoint), break/continue fall through rather than tracking their
// targets, goto terminates the walked path, and function literals and
// goroutine bodies start from the client's Fresh state because they run
// at another time.
package dataflow

import (
	"go/ast"
	"go/token"
)

// State is one analyzer's abstract fact set (held locks, pending adds,
// …) threaded through a Walker pass. Implementations are immutable from
// the engine's point of view: the engine clones before exploring a
// branch and merges at joins.
type State interface {
	// CloneState returns an independent copy for exploring one branch.
	CloneState() State
	// MergeState folds another branch's exit state into this one at a
	// control-flow join and returns the result; the union must be
	// conservative (a fact holding on either path holds after).
	MergeState(State) State
}

// Client customizes a Walker pass.
type Client interface {
	// Fresh returns the entry state of a detached execution context — a
	// goroutine body or a function literal, which run with none of the
	// spawning path's facts.
	Fresh() State
	// Transfer folds one statement's intrinsic effect into the state
	// (a Lock/Unlock call, a WaitGroup Add) and may report findings
	// triggered by the statement itself (a send, a select). It runs
	// after the statement's expressions were offered to Expr and before
	// the engine walks the statement's sub-blocks.
	Transfer(s ast.Stmt, st State) State
	// Expr observes one expression evaluated under st — a condition, a
	// right-hand side, a call. The engine hands over whole expressions;
	// clients typically inspect within via Walker.InspectExpr so nested
	// function literals divert through Fresh automatically.
	Expr(e ast.Expr, st State)
}

// Walker drives the branch-merging walk. The zero value is unusable;
// set Client.
type Walker struct {
	Client Client
}

// Walk interprets a function body starting from entry and returns the
// state at fallthrough exit plus whether the block always terminates
// (return, panic-like goto-out, every branch returning).
func (w *Walker) Walk(b *ast.BlockStmt, entry State) (State, bool) {
	if b == nil {
		return entry, false
	}
	return w.stmts(b.List, entry)
}

// InspectExpr visits every node of e under st, diverting function
// literal bodies through a fresh walk (their body runs later, with none
// of the current facts) and calling visit for everything else. A nil
// visit just performs the literal diversion. visit returning false
// prunes that subtree.
func (w *Walker) InspectExpr(e ast.Expr, st State, visit func(ast.Node) bool) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			w.Walk(lit.Body, w.Client.Fresh())
			return false
		}
		if visit == nil {
			return true
		}
		return visit(n)
	})
}

func (w *Walker) stmts(list []ast.Stmt, st State) (State, bool) {
	for _, s := range list {
		var term bool
		st, term = w.stmt(s, st)
		if term {
			return st, true
		}
	}
	return st, false
}

// stmt interprets one statement: expressions are offered to the client
// under the incoming state, Transfer folds the statement's effect, and
// structured statements clone/merge around their branches exactly the
// way locksafe's original hand-rolled checker did.
func (w *Walker) stmt(s ast.Stmt, st State) (State, bool) {
	c := w.Client
	switch s := s.(type) {
	case *ast.ExprStmt:
		c.Expr(s.X, st)
		return c.Transfer(s, st), false

	case *ast.SendStmt:
		c.Expr(s.Chan, st)
		c.Expr(s.Value, st)
		return c.Transfer(s, st), false

	case *ast.IncDecStmt:
		c.Expr(s.X, st)
		return c.Transfer(s, st), false

	case *ast.AssignStmt:
		for _, e := range s.Rhs {
			c.Expr(e, st)
		}
		for _, e := range s.Lhs {
			c.Expr(e, st)
		}
		return c.Transfer(s, st), false

	case *ast.DeferStmt:
		// The deferred call's arguments evaluate now; its body runs at
		// function exit. Transfer sees the DeferStmt so clients can
		// special-case defer mu.Unlock() (held to function end).
		st = c.Transfer(s, st)
		c.Expr(s.Call, st)
		return st, false

	case *ast.GoStmt:
		// The goroutine body runs without the spawning path's facts.
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			w.Walk(lit.Body, c.Fresh())
		}
		for _, a := range s.Call.Args {
			c.Expr(a, st)
		}
		return c.Transfer(s, st), false

	case *ast.ReturnStmt:
		for _, e := range s.Results {
			c.Expr(e, st)
		}
		return c.Transfer(s, st), true

	case *ast.BranchStmt:
		// goto leaves the walked region; break/continue conservatively
		// fall through so facts reach the statements after the loop.
		return c.Transfer(s, st), s.Tok == token.GOTO

	case *ast.BlockStmt:
		return w.Walk(s, st)

	case *ast.IfStmt:
		if s.Init != nil {
			st, _ = w.stmt(s.Init, st)
		}
		c.Expr(s.Cond, st)
		st = c.Transfer(s, st)
		thenSt, thenTerm := w.Walk(s.Body, st.CloneState())
		elseSt, elseTerm := st, false
		if s.Else != nil {
			elseSt, elseTerm = w.stmt(s.Else, st.CloneState())
		}
		switch {
		case thenTerm && elseTerm:
			return st, true
		case thenTerm:
			return elseSt, false
		case elseTerm:
			return thenSt, false
		default:
			return thenSt.MergeState(elseSt), false
		}

	case *ast.ForStmt:
		if s.Init != nil {
			st, _ = w.stmt(s.Init, st)
		}
		if s.Cond != nil {
			c.Expr(s.Cond, st)
		}
		st = c.Transfer(s, st)
		bodySt, _ := w.Walk(s.Body, st.CloneState())
		if s.Post != nil {
			w.stmt(s.Post, bodySt)
		}
		return st.CloneState().MergeState(bodySt), false

	case *ast.RangeStmt:
		c.Expr(s.X, st)
		st = c.Transfer(s, st)
		bodySt, _ := w.Walk(s.Body, st.CloneState())
		return st.CloneState().MergeState(bodySt), false

	case *ast.SelectStmt:
		// Transfer sees the select itself (locksafe flags it there);
		// each clause body walks under a clone and the results are
		// discarded — the conservative treatment the goldens pin. The
		// clause communication ops are covered by the select finding,
		// not revisited individually.
		st = c.Transfer(s, st)
		for _, cl := range s.Body.List {
			if comm, ok := cl.(*ast.CommClause); ok {
				w.stmts(comm.Body, st.CloneState())
			}
		}
		return st, false

	case *ast.SwitchStmt:
		if s.Init != nil {
			st, _ = w.stmt(s.Init, st)
		}
		if s.Tag != nil {
			c.Expr(s.Tag, st)
		}
		st = c.Transfer(s, st)
		merged := st
		for _, cl := range s.Body.List {
			if cc, ok := cl.(*ast.CaseClause); ok {
				out, term := w.stmts(cc.Body, st.CloneState())
				if !term {
					merged = merged.MergeState(out)
				}
			}
		}
		return merged, false

	case *ast.TypeSwitchStmt:
		st = c.Transfer(s, st)
		for _, cl := range s.Body.List {
			if cc, ok := cl.(*ast.CaseClause); ok {
				w.stmts(cc.Body, st.CloneState())
			}
		}
		return st, false

	case *ast.LabeledStmt:
		return w.stmt(s.Stmt, st)

	case *ast.DeclStmt:
		if gd, ok := s.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						c.Expr(v, st)
					}
				}
			}
		}
		return c.Transfer(s, st), false
	}
	return st, false
}
