package dataflow

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Def is one definition (assignment, declaration, or parameter binding)
// of a local variable, with every use it reaches.
type Def struct {
	Obj *types.Var
	// Ident is the defining occurrence on the left-hand side; nil for
	// parameters and named results, which the signature defines.
	Ident *ast.Ident
	// Node is the statement or spec carrying the definition.
	Node ast.Node
	// Rhs is the expression whose value this definition binds: the
	// matching right-hand side of an assignment, or the shared call in
	// a tuple assignment (a, err := f()). Nil for zero-value
	// declarations, parameters, and range bindings.
	Rhs ast.Expr
	// Uses are the identifier occurrences this definition reaches.
	Uses []*ast.Ident
}

// Chains holds the def-use analysis of one function: reaching
// definitions computed over its CFG, linked into per-definition use
// lists.
type Chains struct {
	Defs []*Def
	// UseDefs maps every use occurrence to the definitions that may
	// reach it.
	UseDefs map[*ast.Ident][]*Def
	// Escaped marks variables captured by a function literal or with
	// their address taken: their uses happen at times the CFG cannot
	// see, so dead-store conclusions about them are off the table.
	Escaped map[*types.Var]bool
}

// BuildChains computes def-use chains for fn, which must be an
// *ast.FuncDecl or *ast.FuncLit with a body. Only variables declared
// inside the function (parameters and named results included) are
// tracked; package-level state is out of scope by design.
func BuildChains(fn ast.Node, info *types.Info) *Chains {
	var body *ast.BlockStmt
	var ftype *ast.FuncType
	switch fn := fn.(type) {
	case *ast.FuncDecl:
		body, ftype = fn.Body, fn.Type
	case *ast.FuncLit:
		body, ftype = fn.Body, fn.Type
	}
	ch := &Chains{
		UseDefs: make(map[*ast.Ident][]*Def),
		Escaped: make(map[*types.Var]bool),
	}
	if body == nil {
		return ch
	}

	a := &chainBuilder{info: info, ch: ch, defsOf: make(map[*types.Var][]int)}
	a.collectTracked(body, ftype)
	a.collectEscapes(body)

	g := NewCFG(body)

	// Parameter and named-result bindings are definitions at entry.
	var entryDefs []int
	for _, fl := range []*ast.FieldList{ftype.Params, ftype.Results} {
		if fl == nil {
			continue
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				if obj, ok := info.Defs[name].(*types.Var); ok && a.tracked[obj] {
					entryDefs = append(entryDefs, a.addDef(obj, nil, f, nil))
				}
			}
		}
	}
	if ftype.Results != nil {
		a.namedResults(ftype.Results)
	}

	// Per-block event streams: ordered defs and uses. The signature's
	// bindings are def events at the head of the entry block, so uses in
	// straight-line code (which shares the entry block) see them.
	events := make(map[*Block][]event, len(g.Blocks))
	for _, b := range g.Blocks {
		var evs []event
		if b == g.Entry {
			for _, d := range entryDefs {
				evs = append(evs, event{def: d})
			}
		}
		for _, n := range b.Nodes {
			evs = a.nodeEvents(n, evs)
		}
		events[b] = evs
	}

	// gen/kill per block, then iterate IN/OUT to fixpoint.
	type bitset map[int]bool
	gen := make(map[*Block]bitset)
	kill := make(map[*Block]map[*types.Var]bool) // kills every other def of the var
	for _, b := range g.Blocks {
		g1, k1 := bitset{}, map[*types.Var]bool{}
		for _, ev := range events[b] {
			if ev.def >= 0 {
				obj := a.ch.Defs[ev.def].Obj
				for _, d := range a.defsOf[obj] {
					delete(g1, d)
				}
				g1[ev.def] = true
				k1[obj] = true
			}
		}
		gen[b], kill[b] = g1, k1
	}
	in := make(map[*Block]bitset)
	out := make(map[*Block]bitset)
	for _, b := range g.Blocks {
		in[b], out[b] = bitset{}, bitset{}
	}
	preds := g.Preds()
	for changed := true; changed; {
		changed = false
		for _, b := range g.Blocks {
			nin := bitset{}
			for _, p := range preds[b] {
				for d := range out[p] {
					nin[d] = true
				}
			}
			in[b] = nin
			nout := bitset{}
			for d := range nin {
				if !kill[b][a.ch.Defs[d].Obj] {
					nout[d] = true
				}
			}
			for d := range gen[b] {
				nout[d] = true
			}
			if len(nout) != len(out[b]) {
				changed = true
			} else {
				for d := range nout {
					if !out[b][d] {
						changed = true
						break
					}
				}
			}
			out[b] = nout
		}
	}

	// Final pass: walk each block's events against its IN set, linking
	// uses to the definitions reaching them.
	for _, b := range g.Blocks {
		reach := make(map[*types.Var][]int)
		for d := range in[b] {
			obj := a.ch.Defs[d].Obj
			reach[obj] = append(reach[obj], d)
		}
		for _, ev := range events[b] {
			if ev.use != nil {
				for _, d := range reach[ev.useObj] {
					def := a.ch.Defs[d]
					def.Uses = append(def.Uses, ev.use)
					ch.UseDefs[ev.use] = append(ch.UseDefs[ev.use], def)
				}
			}
			if ev.def >= 0 {
				reach[a.ch.Defs[ev.def].Obj] = []int{ev.def}
			}
		}
	}
	return ch
}

// event is one ordered def or use inside a block. Exactly one of def
// (an index into Chains.Defs) or use is set; def is -1 when unset.
type event struct {
	def    int
	use    *ast.Ident
	useObj *types.Var
}

type chainBuilder struct {
	info         *types.Info
	ch           *Chains
	tracked      map[*types.Var]bool
	defsOf       map[*types.Var][]int
	results      []*types.Var // named results, used implicitly by bare returns
	resultIdents map[*types.Var]*ast.Ident
}

func (a *chainBuilder) objOf(id *ast.Ident) *types.Var {
	if obj, ok := a.info.Defs[id].(*types.Var); ok {
		return obj
	}
	obj, _ := a.info.Uses[id].(*types.Var)
	return obj
}

// collectTracked records every variable declared within the function.
func (a *chainBuilder) collectTracked(body *ast.BlockStmt, ftype *ast.FuncType) {
	a.tracked = make(map[*types.Var]bool)
	add := func(id *ast.Ident) {
		if id == nil || id.Name == "_" {
			return
		}
		if obj, ok := a.info.Defs[id].(*types.Var); ok {
			a.tracked[obj] = true
		}
	}
	for _, fl := range []*ast.FieldList{ftype.Params, ftype.Results} {
		if fl == nil {
			continue
		}
		for _, f := range fl.List {
			for _, n := range f.Names {
				add(n)
			}
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			add(id)
		}
		return true
	})
}

// namedResults records the result variables a bare return implicitly
// uses.
func (a *chainBuilder) namedResults(results *ast.FieldList) {
	for _, f := range results.List {
		for _, n := range f.Names {
			if obj, ok := a.info.Defs[n].(*types.Var); ok {
				a.results = append(a.results, obj)
			}
		}
	}
}

// collectEscapes marks variables referenced inside nested function
// literals or with their address taken.
func (a *chainBuilder) collectEscapes(body *ast.BlockStmt) {
	var inLit func(n ast.Node)
	inLit = func(n ast.Node) {
		ast.Inspect(n, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if obj := a.objOf(id); obj != nil && a.tracked[obj] {
					a.ch.Escaped[obj] = true
				}
			}
			return true
		})
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			inLit(n.Body)
			return false
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if id, ok := ast.Unparen(n.X).(*ast.Ident); ok {
					if obj := a.objOf(id); obj != nil && a.tracked[obj] {
						a.ch.Escaped[obj] = true
					}
				}
			}
		}
		return true
	})
}

func (a *chainBuilder) addDef(obj *types.Var, id *ast.Ident, node ast.Node, rhs ast.Expr) int {
	d := &Def{Obj: obj, Ident: id, Node: node, Rhs: rhs}
	a.ch.Defs = append(a.ch.Defs, d)
	idx := len(a.ch.Defs) - 1
	a.defsOf[obj] = append(a.defsOf[obj], idx)
	return idx
}

// nodeEvents appends the ordered def/use events of one CFG node. Uses
// on the right-hand side come before the left-hand side's definitions,
// matching evaluation order.
func (a *chainBuilder) nodeEvents(n ast.Node, evs []event) []event {
	switch n := n.(type) {
	case *ast.AssignStmt:
		for _, rhs := range n.Rhs {
			evs = a.exprUses(rhs, evs)
		}
		for i, lhs := range n.Lhs {
			id, ok := ast.Unparen(lhs).(*ast.Ident)
			if !ok {
				evs = a.exprUses(lhs, evs) // *p, s.f, a[i]: index/base exprs are uses
				continue
			}
			if id.Name == "_" {
				continue
			}
			obj := a.objOf(id)
			if obj == nil || !a.tracked[obj] {
				continue
			}
			if n.Tok != token.ASSIGN && n.Tok != token.DEFINE {
				// Compound assignment (+=, |=): a use, then a def.
				evs = append(evs, event{def: -1, use: id, useObj: obj})
			}
			var rhs ast.Expr
			if len(n.Rhs) == len(n.Lhs) {
				rhs = n.Rhs[i]
			} else if len(n.Rhs) == 1 {
				rhs = n.Rhs[0] // tuple assignment from one call
			}
			evs = append(evs, event{def: a.addDef(obj, id, n, rhs)})
		}
	case *ast.ValueSpec:
		for _, v := range n.Values {
			evs = a.exprUses(v, evs)
		}
		for i, name := range n.Names {
			if name.Name == "_" {
				continue
			}
			obj := a.objOf(name)
			if obj == nil || !a.tracked[obj] {
				continue
			}
			var rhs ast.Expr
			if len(n.Values) == len(n.Names) {
				rhs = n.Values[i]
			} else if len(n.Values) == 1 {
				rhs = n.Values[0]
			}
			evs = append(evs, event{def: a.addDef(obj, name, n, rhs)})
		}
	case *ast.DeclStmt:
		if gd, ok := n.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					evs = a.nodeEvents(vs, evs)
				}
			}
		}
	case *ast.IncDecStmt:
		if id, ok := ast.Unparen(n.X).(*ast.Ident); ok {
			if obj := a.objOf(id); obj != nil && a.tracked[obj] {
				evs = append(evs, event{def: -1, use: id, useObj: obj})
				evs = append(evs, event{def: a.addDef(obj, id, n, nil)})
				break
			}
		}
		evs = a.exprUses(n.X, evs)
	case *ast.RangeStmt:
		evs = a.exprUses(n.X, evs)
		for _, e := range []ast.Expr{n.Key, n.Value} {
			if e == nil {
				continue
			}
			if id, ok := ast.Unparen(e).(*ast.Ident); ok && id.Name != "_" {
				if obj := a.objOf(id); obj != nil && a.tracked[obj] {
					evs = append(evs, event{def: a.addDef(obj, id, n, nil)})
					continue
				}
			}
			evs = a.exprUses(e, evs)
		}
	case *ast.ReturnStmt:
		for _, e := range n.Results {
			evs = a.exprUses(e, evs)
		}
		if len(n.Results) == 0 {
			// A bare return reads every named result.
			for _, obj := range a.results {
				evs = append(evs, event{def: -1, use: a.resultUse(obj), useObj: obj})
			}
		}
	case *ast.ExprStmt:
		evs = a.exprUses(n.X, evs)
	case *ast.SendStmt:
		evs = a.exprUses(n.Chan, evs)
		evs = a.exprUses(n.Value, evs)
	case *ast.GoStmt:
		evs = a.exprUses(n.Call, evs)
	case *ast.DeferStmt:
		evs = a.exprUses(n.Call, evs)
	case ast.Expr:
		evs = a.exprUses(n, evs)
	}
	return evs
}

// resultUse returns the per-function synthetic ident standing for a
// bare return's implicit read of a named result.
func (a *chainBuilder) resultUse(obj *types.Var) *ast.Ident {
	if a.resultIdents == nil {
		a.resultIdents = make(map[*types.Var]*ast.Ident)
	}
	if id, ok := a.resultIdents[obj]; ok {
		return id
	}
	id := ast.NewIdent(obj.Name())
	id.NamePos = obj.Pos()
	a.resultIdents[obj] = id
	return id
}

// exprUses appends a use event for every tracked-variable occurrence in
// e, skipping nested function literal bodies (handled as escapes).
func (a *chainBuilder) exprUses(e ast.Expr, evs []event) []event {
	if e == nil {
		return evs
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.Ident:
			if obj, ok := a.info.Uses[n].(*types.Var); ok && a.tracked[obj] {
				evs = append(evs, event{def: -1, use: n, useObj: obj})
			}
		}
		return true
	})
	return evs
}
