package lint

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// listPkg is the slice of `go list -json` output the loader consumes.
type listPkg struct {
	Dir        string
	ImportPath string
	Name       string
	ForTest    string
	Export     string
	Standard   bool
	GoFiles    []string
	ImportMap  map[string]string
}

// LoadedPackage is one type-checked analysis unit. For a package with
// in-package tests the unit is the test variant (package sources plus
// _test.go files); external _test packages load as their own unit.
type LoadedPackage struct {
	// Path is the base import path with any " [pkg.test]" test-variant
	// suffix stripped; analyzers' Match filters see this form.
	Path  string
	Fset  *token.FileSet
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info
}

// Load type-checks the packages matching patterns (run from dir, which
// must sit inside the module) and returns one unit per compilation the
// toolchain would perform, test files included. Dependencies are
// imported from compiler export data produced by `go list -export`, so
// loading needs no network and no third-party machinery.
func Load(dir string, patterns []string) ([]*LoadedPackage, error) {
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	metas, err := goList(dir, append([]string{
		"-e", "-test", "-deps", "-export",
		"-json=Dir,ImportPath,Name,ForTest,Export,Standard,GoFiles,ImportMap",
	}, patterns...))
	if err != nil {
		return nil, err
	}
	exports := make(map[string]string, len(metas))
	byPath := make(map[string]*listPkg, len(metas))
	for _, m := range metas {
		byPath[m.ImportPath] = m
		if m.Export != "" {
			exports[m.ImportPath] = m.Export
		}
	}

	// The dependency closure above does not say which packages were
	// asked for; a second, root-only listing does.
	roots, err := goList(dir, append([]string{
		"-e", "-test", "-json=ImportPath,Name,ForTest",
	}, patterns...))
	if err != nil {
		return nil, err
	}

	// A package with in-package tests appears twice ("p" and
	// "p [p.test]"); analyzing both would duplicate every finding in
	// the shared files, so the test variant — the superset — wins.
	variant := make(map[string]bool)
	for _, r := range roots {
		if r.ForTest != "" && pkgBase(r.ImportPath) == r.ForTest {
			variant[r.ForTest] = true
		}
	}

	var out []*LoadedPackage
	for _, r := range roots {
		if r.Name == "main" && strings.HasSuffix(r.ImportPath, ".test") {
			continue // synthesized test binary
		}
		if r.ForTest == "" && variant[r.ImportPath] {
			continue // base package shadowed by its test variant
		}
		m := byPath[r.ImportPath]
		if m == nil {
			return nil, fmt.Errorf("lint: go list closure is missing %q", r.ImportPath)
		}
		lp, err := checkUnit(m, exports)
		if err != nil {
			return nil, err
		}
		out = append(out, lp)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Path < out[j].Path })
	return out, nil
}

// MatchSuffix returns a Match filter admitting packages whose import
// path ends with one of the given suffixes. External test packages
// ("p_test") count as their base package.
func MatchSuffix(suffixes ...string) func(string) bool {
	return func(path string) bool {
		base := strings.TrimSuffix(path, "_test")
		for _, s := range suffixes {
			if strings.HasSuffix(base, s) {
				return true
			}
		}
		return false
	}
}

// pkgBase strips the " [pkg.test]" test-variant suffix.
func pkgBase(importPath string) string {
	if i := strings.Index(importPath, " ["); i >= 0 {
		return importPath[:i]
	}
	return importPath
}

// checkUnit parses and type-checks one go list entry against the export
// data of its dependency closure.
func checkUnit(m *listPkg, exports map[string]string) (*LoadedPackage, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, g := range m.GoFiles {
		name := g
		if !filepath.IsAbs(name) {
			name = filepath.Join(m.Dir, g)
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		files = append(files, f)
	}
	imp := importer.ForCompiler(fset, "gc", func(path string) (io.ReadCloser, error) {
		if mapped, ok := m.ImportMap[path]; ok {
			path = mapped
		}
		exp, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(exp)
	})
	info := NewInfo()
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(pkgBase(m.ImportPath), fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", m.ImportPath, err)
	}
	return &LoadedPackage{Path: pkgBase(m.ImportPath), Fset: fset, Files: files, Pkg: pkg, Info: info}, nil
}

// goList runs `go list` with args in dir and decodes the JSON stream.
func goList(dir string, args []string) ([]*listPkg, error) {
	cmd := exec.Command("go", append([]string{"list"}, args...)...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	outBytes, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("lint: go list: %w\n%s", err, stderr.String())
	}
	var metas []*listPkg
	dec := json.NewDecoder(bytes.NewReader(outBytes))
	for {
		var m listPkg
		if err := dec.Decode(&m); errors.Is(err, io.EOF) {
			break
		} else if err != nil {
			return nil, fmt.Errorf("lint: decoding go list output: %w", err)
		}
		metas = append(metas, &m)
	}
	return metas, nil
}

// Run loads the packages matching patterns and applies every analyzer
// whose Match filter admits the package, returning findings sorted by
// position. Suppression directives are already applied.
func Run(analyzers []*Analyzer, dir string, patterns []string) ([]Diagnostic, error) {
	diags, _, err := RunTimed(analyzers, dir, patterns)
	return diags, err
}

// RunTimed is Run plus per-analyzer wall time, accumulated across every
// analyzed package. CI prints the timings so an analyzer that starts
// dominating the lint step is caught by a log diff, not a bisect.
func RunTimed(analyzers []*Analyzer, dir string, patterns []string) ([]Diagnostic, map[string]time.Duration, error) {
	pkgs, err := Load(dir, patterns)
	if err != nil {
		return nil, nil, err
	}
	timings := make(map[string]time.Duration, len(analyzers))
	var all []Diagnostic
	for _, p := range pkgs {
		var active []*Analyzer
		for _, a := range analyzers {
			if a.Match == nil || a.Match(p.Path) {
				active = append(active, a)
			}
		}
		if len(active) == 0 {
			continue
		}
		diags, err := analyzePackage(active, p.Fset, p.Files, p.Pkg, p.Info, timings)
		if err != nil {
			return nil, nil, fmt.Errorf("%s: %w", p.Path, err)
		}
		all = append(all, diags...)
	}
	sort.Slice(all, func(i, j int) bool {
		a, b := all[i], all[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return all, timings, nil
}
