// Package lint is a minimal static-analysis framework with the same
// shape as golang.org/x/tools/go/analysis — Analyzer values with a Run
// hook over a type-checked Pass — rebuilt on the standard library alone
// so the reproduction stays dependency-free. The five binoptvet
// analyzers (kerneldet, barrieruse, unitcheck, floateq, locksafe) turn
// the repo's load-bearing runtime invariants into compile-time checks:
// bit-identical prices across platforms (§IV parity), barrier-protected
// local memory in the work-group kernel (§IV-A "to avoid any memory
// conflict"), and dimensionally consistent joules/seconds/hertz
// arithmetic in the Table-I power model.
//
// A finding is suppressed by a directive comment on the flagged line or
// the line directly above it:
//
//	//binopt:ignore <analyzer> <reason>
//
// The reason is mandatory; a directive without one is itself a finding.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"time"
)

// Analyzer describes one static check, mirroring
// golang.org/x/tools/go/analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in findings and in
	// //binopt:ignore directives. It must be a valid identifier.
	Name string

	// Doc is the one-paragraph description printed by binoptvet -help.
	Doc string

	// Match restricts which packages the driver hands to the analyzer;
	// nil means every package. The test harness bypasses Match so
	// testdata packages exercise the analyzer regardless of path.
	Match func(pkgPath string) bool

	// Run executes the check over one package and reports findings
	// through the pass.
	Run func(*Pass) error
}

// Pass carries one type-checked package through one analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	report func(Diagnostic)
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.report(Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      p.Fset.Position(pos),
		Message:  fmt.Sprintf(format, args...),
	})
}

// Diagnostic is one finding, resolved to a file position.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

// String formats the finding the way go vet does.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// NewInfo allocates the types.Info maps every analyzer relies on.
func NewInfo() *types.Info {
	return &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
		Scopes:     make(map[ast.Node]*types.Scope),
	}
}

// AnalyzePackage runs the analyzers over one type-checked package and
// returns the findings with suppression directives already applied:
// suppressed findings are dropped, and malformed or unknown-analyzer
// directives are converted into findings of their own. The analyzers'
// Match filters are NOT consulted here — that is driver policy.
func AnalyzePackage(analyzers []*Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) ([]Diagnostic, error) {
	return analyzePackage(analyzers, fset, files, pkg, info, nil)
}

// analyzePackage is AnalyzePackage with optional per-analyzer wall-time
// accounting: when timings is non-nil, each analyzer's Run duration is
// accumulated under its name.
func analyzePackage(analyzers []*Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, timings map[string]time.Duration) ([]Diagnostic, error) {
	var diags []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      fset,
			Files:     files,
			Pkg:       pkg,
			TypesInfo: info,
			report:    func(d Diagnostic) { diags = append(diags, d) },
		}
		t0 := time.Now()
		err := a.Run(pass)
		if timings != nil {
			timings[a.Name] += time.Since(t0)
		}
		if err != nil {
			return nil, fmt.Errorf("lint: %s: %w", a.Name, err)
		}
	}
	dirs, dirDiags := collectDirectives(analyzers, fset, files)
	diags = append(filterSuppressed(diags, dirs), dirDiags...)
	return diags, nil
}
