// Package floateq flags exact floating-point equality comparisons in
// non-test code.
//
// The reproduction's parity suite compares prices bit-for-bit on
// purpose — that is the §IV invariant — so _test.go files are the
// sanctioned home for exact comparison and are skipped wholesale. In
// production code an exact == or != on floats is almost always a
// latent vacuous comparison: a branch taken because two code paths
// share a rounding accident, or a guard that can never fire. The rare
// intentional sites (parity probes, exact domain endpoints, sort
// tie-breaks) carry a //binopt:ignore floateq directive with the
// reason written down, which keeps the deliberate exactness auditable.
package floateq

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"binopt/internal/lint"
)

// Analyzer flags ==/!= between floating-point operands.
var Analyzer = &lint.Analyzer{
	Name: "floateq",
	Doc: "flag exact ==/!= on floating-point values in non-test code outside " +
		"tolerance helpers; comparisons against an exact zero, NaN self-checks " +
		"(x != x) and math.Inf sentinels are allowed, and _test.go files are " +
		"exempt because the parity suite compares bit-for-bit by design",
	Run: run,
}

// approvedFunc matches names of tolerance helpers whose bodies may
// compare floats exactly (typically against a computed bound).
func approvedFunc(name string) bool {
	lower := strings.ToLower(name)
	for _, frag := range []string{"approx", "close", "within", "toler", "ulp"} {
		if strings.Contains(lower, frag) {
			return true
		}
	}
	return false
}

func run(pass *lint.Pass) error {
	// Function literals inherit the enclosing declaration's name, so a
	// closure inside approxEqual stays exempt with its parent.
	check := func(enclosing string, root ast.Node) {
		ast.Inspect(root, func(n ast.Node) bool {
			cmp, ok := n.(*ast.BinaryExpr)
			if !ok || (cmp.Op != token.EQL && cmp.Op != token.NEQ) {
				return true
			}
			if approvedFunc(enclosing) {
				return true
			}
			if !floatOperand(pass.TypesInfo, cmp.X) && !floatOperand(pass.TypesInfo, cmp.Y) {
				return true
			}
			if exempt(pass, cmp) {
				return true
			}
			pass.Reportf(cmp.OpPos, "exact floating-point %s comparison; use a tolerance helper, "+
				"or annotate intentional bit-parity with %s floateq <reason>", cmp.Op, lint.DirectivePrefix)
			return true
		})
	}
	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue // the parity suite asserts bit-exact equality by design
		}
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Body != nil {
					check(d.Name.Name, d.Body)
				}
			case *ast.GenDecl:
				check("", d)
			}
		}
	}
	return nil
}

// floatOperand reports whether e has floating-point type.
func floatOperand(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	return t != nil && lint.IsFloat(t)
}

// exempt holds the comparisons exact equality is legitimate for:
// constant-zero sentinels, both-constant comparisons folded at compile
// time, NaN self-tests, and ±Inf range sentinels.
func exempt(pass *lint.Pass, cmp *ast.BinaryExpr) bool {
	xv := pass.TypesInfo.Types[cmp.X]
	yv := pass.TypesInfo.Types[cmp.Y]
	if xv.Value != nil && yv.Value != nil {
		return true
	}
	if isZero(xv) || isZero(yv) {
		return true
	}
	if lint.ExprString(pass.Fset, cmp.X) == lint.ExprString(pass.Fset, cmp.Y) {
		return true // x != x is the portable NaN test
	}
	if isInfCall(pass.TypesInfo, cmp.X) || isInfCall(pass.TypesInfo, cmp.Y) {
		return true
	}
	return false
}

func isZero(tv types.TypeAndValue) bool {
	return tv.Value != nil && tv.Value.String() == "0"
}

func isInfCall(info *types.Info, e ast.Expr) bool {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	return ok && lint.IsPkgFunc(info, call, "math", "Inf")
}
