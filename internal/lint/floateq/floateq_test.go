package floateq

import (
	"testing"

	"binopt/internal/lint/linttest"
)

func TestFloateq(t *testing.T) {
	linttest.Run(t, "testdata", Analyzer, "a")
}
