package a

import "math"

func flagged(x, y float64, f32 float32) {
	_ = x == y            // want `exact floating-point == comparison`
	_ = x != y            // want `exact floating-point != comparison`
	_ = f32 == float32(y) // want `exact floating-point == comparison`
	if x == y+1 {         // want `exact floating-point == comparison`
		return
	}
	_ = []bool{x == y} // want `exact floating-point == comparison`
}

func clean(x, y float64, n int) {
	_ = x == 0   // exact-zero sentinel is deliberate
	_ = 0.0 != y // either side
	_ = x != x   // portable NaN test
	_ = x == math.Inf(1)
	_ = math.Inf(-1) == y
	_ = n == 3 // integers are not floateq's business
	_ = x < y  // ordering comparisons carry no exactness trap
	const a, b = 1.5, 2.5
	_ = a == b // both constant, folded at compile time
}

// approxEqual is a tolerance helper: exact comparison on the bound is
// the point.
func approxEqual(x, y, tol float64) bool {
	d := x - y
	if d < 0 {
		d = -d
	}
	sameSign := (x >= 0) == (y >= 0)
	_ = sameSign
	return d == tol || d < tol
}

// withinULP inherits the exemption through its closure.
func withinULP(x, y float64) bool {
	eq := func() bool { return x == y }
	return eq()
}

func suppressed(x, y float64) {
	//binopt:ignore floateq bit-parity probe keeps exact equality on purpose
	_ = x == y
	_ = x != y //binopt:ignore floateq same-line suppression form
}
