package barrieruse

import (
	"testing"

	"binopt/internal/lint/linttest"
)

func TestBarrieruse(t *testing.T) {
	linttest.Run(t, "testdata", Analyzer, "bu")
}
