package bu

import "opencl"

// cleanIVB mirrors kernel IV.B's barrier discipline exactly: leaf
// barrier after the initial store, a barrier between the neighbour
// loads and the write-back, and a barrier before the next level's
// loads. No findings.
func cleanIVB() *opencl.Kernel {
	return opencl.NewKernel("ivb-clean", true, func(wi *opencl.WorkItem) {
		k := wi.LocalID()
		n := wi.Int(0)
		wi.StoreLocal(0, k, float64(k))
		wi.Barrier()
		for t := n; t >= 1; t-- {
			if k < t {
				up := wi.LoadLocal(0, k+1)
				down := wi.LoadLocal(0, k)
				wi.Barrier()
				wi.StoreLocal(0, k, 0.5*(up+down))
			}
			wi.Barrier()
		}
	})
}

// missingMidBarrier drops IV.B's barrier between the neighbour loads
// and the write-back: the store at k races a neighbour still reading
// k (its own k+1).
func missingMidBarrier() *opencl.Kernel {
	return opencl.NewKernel("ivb-no-mid", true, func(wi *opencl.WorkItem) {
		k := wi.LocalID()
		n := wi.Int(0)
		wi.StoreLocal(0, k, float64(k))
		wi.Barrier()
		for t := n; t >= 1; t-- {
			up := wi.LoadLocal(0, k+1)
			down := wi.LoadLocal(0, k)
			wi.StoreLocal(0, k, 0.5*(up+down)) // want `may overwrite an element another work-item`
			wi.Barrier()
		}
	})
}

// missingEndBarrier drops IV.B's barrier at the bottom of the loop:
// the store at k survives the back edge and races the next level's
// load at k+1.
func missingEndBarrier() *opencl.Kernel {
	return opencl.NewKernel("ivb-no-end", true, func(wi *opencl.WorkItem) {
		k := wi.LocalID()
		n := wi.Int(0)
		wi.StoreLocal(0, k, float64(k))
		wi.Barrier()
		for t := n; t >= 1; t-- {
			up := wi.LoadLocal(0, k+1) // want `may read another work-item's unbarriered`
			down := wi.LoadLocal(0, k)
			wi.Barrier()
			wi.StoreLocal(0, k, 0.5*(up+down))
		}
	})
}

// missingLeafBarrier drops the barrier after the initial payoff store,
// so the first level's neighbour load sees an unbarriered write.
func missingLeafBarrier() *opencl.Kernel {
	return opencl.NewKernel("ivb-no-leaf", true, func(wi *opencl.WorkItem) {
		k := wi.LocalID()
		n := wi.Int(0)
		wi.StoreLocal(0, k, float64(k))
		for t := n; t >= 1; t-- {
			up := wi.LoadLocal(0, k+1) // want `may read another work-item's unbarriered`
			down := wi.LoadLocal(0, k)
			wi.Barrier()
			wi.StoreLocal(0, k, 0.5*(up+down))
			wi.Barrier()
		}
	})
}

// scatterStores writes two different slots back to back: on another
// work-item those slots alias, so the pair needs a barrier between.
func scatterStores() *opencl.Kernel {
	return opencl.NewKernel("scatter", true, func(wi *opencl.WorkItem) {
		k := wi.LocalID()
		wi.StoreLocal(0, k, 1)
		wi.StoreLocal(0, k+1, 2) // want `on another work-item's element`
		wi.Barrier()
	})
}

// distinctBuffers is clean: the unbarriered accesses touch different
// local buffers, which never alias.
func distinctBuffers() *opencl.Kernel {
	return opencl.NewKernel("two-buffers", true, func(wi *opencl.WorkItem) {
		k := wi.LocalID()
		wi.StoreLocal(0, k, 1)
		v := wi.LoadLocal(1, k+1)
		wi.StoreLocal(1, k+1, v+1)
		wi.Barrier()
	})
}

// sequentialKernel uses the same racy shape but is built with
// usesBarriers=false: a sequential kernel has no work-group
// concurrency, so nothing is flagged.
func sequentialKernel() *opencl.Kernel {
	return opencl.NewKernel("iva-like", false, func(wi *opencl.WorkItem) {
		k := wi.LocalID()
		wi.StoreLocal(0, k, 1)
		_ = wi.LoadLocal(0, k+1)
	})
}

// suppressedKernel documents a deliberate exception with the shared
// ignore directive.
func suppressedKernel() *opencl.Kernel {
	return opencl.NewKernel("annotated", true, func(wi *opencl.WorkItem) {
		k := wi.LocalID()
		wi.StoreLocal(0, k, 1)
		//binopt:ignore barrieruse single work-item group proven by launch config
		_ = wi.LoadLocal(0, k+1)
		wi.Barrier()
	})
}
