// Package opencl is a minimal stub of the runtime: kerneldet and
// barrieruse recognise NewKernel and WorkItem by name, so testdata can
// exercise the analyzers without the real simulator.
package opencl

type WorkItem struct{}

func (wi *WorkItem) LocalID() int                        { return 0 }
func (wi *WorkItem) GroupID() int                        { return 0 }
func (wi *WorkItem) Int(i int) int                       { return 0 }
func (wi *WorkItem) Load(b *Buffer, idx int) float64     { return 0 }
func (wi *WorkItem) Store(b *Buffer, idx int, v float64) {}
func (wi *WorkItem) LoadLocal(arg, idx int) float64      { return 0 }
func (wi *WorkItem) StoreLocal(arg, idx int, v float64)  {}
func (wi *WorkItem) Barrier()                            {}
func (wi *WorkItem) Buffer(i int) *Buffer                { return nil }

type Buffer struct{}

type Kernel struct{}

func NewKernel(name string, usesBarriers bool, fn func(*WorkItem)) *Kernel {
	return &Kernel{}
}
