// Package barrieruse is the static companion to the runtime hazard
// tracker in internal/opencl: in a work-group kernel (a function
// literal passed to opencl.NewKernel with usesBarriers=true), local
// memory is shared by every work-item of the group, and the paper's
// §IV-A discipline — "to avoid any memory conflict" — demands a Barrier
// between a write to a local buffer and any access that could touch the
// same element from another work-item.
//
// The model is index-expression based: all work-items execute the same
// source, so an access at index text "k" by one work-item can alias an
// access at a DIFFERENT index text ("k+1", "0") by its neighbour.
// Between two barriers the analyzer therefore flags, per local buffer:
//
//   - RAW: LoadLocal after a StoreLocal with a different index text;
//   - WAR: StoreLocal after a LoadLocal with a different index text;
//   - WAW: two StoreLocals with different index texts.
//
// Same-index accesses are each work-item's own slot and stay silent,
// which is exactly the read-modify-write pattern kernel IV.B uses. Loop
// bodies are walked twice so hazards across the loop's back edge (a
// store at the bottom racing a load at the top of the next iteration)
// are caught — removing any one of IV.B's three barriers produces a
// finding.
package barrieruse

import (
	"go/ast"
	"go/constant"
	"go/token"

	"binopt/internal/lint"
)

// Analyzer flags unbarriered local-memory hazards in work-group kernels.
var Analyzer = &lint.Analyzer{
	Name: "barrieruse",
	Doc: "in kernels built with usesBarriers=true, a StoreLocal followed by a " +
		"potential cross-work-item LoadLocal/StoreLocal (or vice versa) without " +
		"an intervening Barrier is a local-memory hazard",
	Run: run,
}

func run(pass *lint.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := lint.CalleeFunc(pass.TypesInfo, call)
			if fn == nil || fn.Name() != "NewKernel" || fn.Pkg() == nil || fn.Pkg().Name() != "opencl" {
				return true
			}
			if len(call.Args) < 3 || !constTrue(pass, call.Args[1]) {
				return true // sequential kernels have no work-group concurrency
			}
			if lit, ok := ast.Unparen(call.Args[2]).(*ast.FuncLit); ok {
				c := &checker{pass: pass, reported: make(map[token.Pos]bool)}
				c.stmts(lit.Body.List, state{})
			}
			return true
		})
	}
	return nil
}

func constTrue(pass *lint.Pass, e ast.Expr) bool {
	tv, ok := pass.TypesInfo.Types[e]
	return ok && tv.Value != nil && tv.Value.Kind() == constant.Bool && constant.BoolVal(tv.Value)
}

// access is one unbarriered local-memory touch: which local buffer
// (argument-slot expression text) at which index (expression text).
type access struct {
	pos      token.Pos
	arg, idx string
}

// state is the set of unbarriered accesses flowing into a statement.
type state struct {
	stores []access
	loads  []access
}

func (s state) clone() state {
	return state{
		stores: append([]access(nil), s.stores...),
		loads:  append([]access(nil), s.loads...),
	}
}

// union merges two control-flow paths; an access pending on either path
// is pending after the join.
func union(a, b state) state {
	out := a.clone()
	out.stores = mergeAccesses(out.stores, b.stores)
	out.loads = mergeAccesses(out.loads, b.loads)
	return out
}

func mergeAccesses(dst, src []access) []access {
	seen := make(map[access]bool, len(dst))
	for _, a := range dst {
		seen[a] = true
	}
	for _, a := range src {
		if !seen[a] {
			seen[a] = true
			dst = append(dst, a)
		}
	}
	return dst
}

type checker struct {
	pass     *lint.Pass
	reported map[token.Pos]bool
}

func (c *checker) stmts(list []ast.Stmt, s state) state {
	for _, st := range list {
		s = c.stmt(st, s)
	}
	return s
}

func (c *checker) stmt(st ast.Stmt, s state) state {
	switch st := st.(type) {
	case *ast.BlockStmt:
		return c.stmts(st.List, s)
	case *ast.IfStmt:
		if st.Init != nil {
			s = c.stmt(st.Init, s)
		}
		s = c.events(st.Cond, s)
		thenOut := c.stmts(st.Body.List, s.clone())
		elseOut := s
		if st.Else != nil {
			elseOut = c.stmt(st.Else, s.clone())
		}
		return union(thenOut, elseOut)
	case *ast.ForStmt:
		if st.Init != nil {
			s = c.stmt(st.Init, s)
		}
		if st.Cond != nil {
			s = c.events(st.Cond, s)
		}
		once := c.stmts(st.Body.List, s.clone())
		if st.Post != nil {
			once = c.stmt(st.Post, once)
		}
		// Second pass models the back edge: state at the loop bottom
		// flows into the loop top of the next iteration.
		again := c.stmts(st.Body.List, once.clone())
		if st.Post != nil {
			again = c.stmt(st.Post, again)
		}
		return union(s, union(once, again))
	case *ast.RangeStmt:
		s = c.events(st.X, s)
		once := c.stmts(st.Body.List, s.clone())
		again := c.stmts(st.Body.List, once.clone())
		return union(s, union(once, again))
	case *ast.SwitchStmt:
		if st.Init != nil {
			s = c.stmt(st.Init, s)
		}
		if st.Tag != nil {
			s = c.events(st.Tag, s)
		}
		out := s
		for _, cl := range st.Body.List {
			if cc, ok := cl.(*ast.CaseClause); ok {
				out = union(out, c.stmts(cc.Body, s.clone()))
			}
		}
		return out
	case *ast.LabeledStmt:
		return c.stmt(st.Stmt, s)
	default:
		return c.events(st, s)
	}
}

// events processes the local-memory operations inside one
// non-control-flow node in source order.
func (c *checker) events(n ast.Node, s state) state {
	if n == nil {
		return s
	}
	ast.Inspect(n, func(m ast.Node) bool {
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		info := c.pass.TypesInfo
		switch {
		case lint.MethodCallOn(info, call, "WorkItem", "Barrier"):
			s = state{}
		case lint.MethodCallOn(info, call, "WorkItem", "StoreLocal") && len(call.Args) == 3:
			st := access{pos: call.Pos(), arg: c.text(call.Args[0]), idx: c.text(call.Args[1])}
			for _, ld := range s.loads {
				if ld.arg == st.arg && ld.idx != st.idx {
					c.report(call.Pos(), "StoreLocal(%s, %s) may overwrite an element another work-item "+
						"is still reading (LoadLocal(%s, %s) at %s) without an intervening Barrier",
						st.arg, st.idx, ld.arg, ld.idx, c.pos(ld.pos))
					break
				}
			}
			for _, prev := range s.stores {
				if prev.arg == st.arg && prev.idx != st.idx {
					c.report(call.Pos(), "StoreLocal(%s, %s) may collide with StoreLocal(%s, %s) (at %s) "+
						"on another work-item's element without an intervening Barrier",
						st.arg, st.idx, prev.arg, prev.idx, c.pos(prev.pos))
					break
				}
			}
			s.stores = mergeAccesses(s.stores, []access{st})
		case lint.MethodCallOn(info, call, "WorkItem", "LoadLocal") && len(call.Args) == 2:
			ld := access{pos: call.Pos(), arg: c.text(call.Args[0]), idx: c.text(call.Args[1])}
			for _, st := range s.stores {
				if st.arg == ld.arg && st.idx != ld.idx {
					c.report(call.Pos(), "LoadLocal(%s, %s) may read another work-item's unbarriered "+
						"StoreLocal(%s, %s) (at %s); insert a Barrier between the write and the read",
						ld.arg, ld.idx, st.arg, st.idx, c.pos(st.pos))
					break
				}
			}
			s.loads = mergeAccesses(s.loads, []access{ld})
		}
		return true
	})
	return s
}

func (c *checker) text(e ast.Expr) string { return lint.ExprString(c.pass.Fset, e) }

func (c *checker) pos(p token.Pos) token.Position { return c.pass.Fset.Position(p) }

// report emits once per source position even though loops are walked
// twice and branches may re-visit the same call.
func (c *checker) report(pos token.Pos, format string, args ...any) {
	if c.reported[pos] {
		return
	}
	c.reported[pos] = true
	c.pass.Reportf(pos, format, args...)
}
