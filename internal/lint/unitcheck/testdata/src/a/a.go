package a

// The seeded Table-I violation: energy and time added as if they were
// the same dimension.
func seededJouleSecondMix(kernelJoules, hostSeconds float64) float64 {
	return kernelJoules + hostSeconds // want `'\+' mixes Joules and Seconds`
}

func flagged(staticWatts, runSeconds, fmaxMHz, clockHz float64, localBytes int64) {
	_ = staticWatts - runSeconds // want `'-' mixes Watts and Seconds`
	_ = fmaxMHz + clockHz        // want `'\+' mixes MHz and Hz`
	if fmaxMHz < clockHz {       // want `'<' mixes MHz and Hz`
		return
	}
	_ = float64(localBytes) + runSeconds // want `'\+' mixes Bytes and Seconds`

	var totalJoules float64
	totalJoules = runSeconds // want `assignment mixes Joules and Seconds`
	_ = totalJoules

	idleJoules := 0.0
	idleJoules = staticWatts // want `assignment mixes Joules and Watts`
	_ = idleJoules
}

type report struct {
	EnergyJoules float64
	WallSeconds  float64
}

func flaggedFieldsAndCalls(drainSeconds, busWatts float64) {
	_ = report{
		EnergyJoules: busWatts, // want `field EnergyJoules mixes Joules and Watts`
		WallSeconds:  drainSeconds,
	}
	scale(busWatts) // want `argument busWatts passed to parameter baseJoules of scale mixes Watts and Joules`
}

func scale(baseJoules float64) float64 { return baseJoules * 2 }

func clean(staticWatts, runSeconds, fmaxMHz float64) {
	// Multiplication and division are dimension changes: the canonical
	// Table-I identity joules = watts × seconds.
	energyJoules := staticWatts * runSeconds
	_ = energyJoules

	// Same-unit arithmetic is the convention working as intended.
	totalSeconds := runSeconds + runSeconds
	_ = totalSeconds

	// A division routed through a plainly-named intermediate is an
	// explicit conversion.
	fHz := fmaxMHz * 1e6
	_ = fHz + fHz

	// Non-numeric identifiers that happen to end in a unit word are not
	// quantities: no finding even though the suffixes differ.
	labelSeconds := "seconds"
	labelJoules := "joules"
	_ = labelSeconds == labelJoules

	// Calls are conversion boundaries.
	capped := capSeconds(staticWatts)
	_ = capped + runSeconds
}

func capSeconds(x float64) float64 { return x }

func suppressed(aJoules, bSeconds float64) {
	//binopt:ignore unitcheck modelled exchange rate validated in fit_test
	_ = aJoules + bSeconds
}
