package unitcheck

import (
	"testing"

	"binopt/internal/lint/linttest"
)

func TestUnitcheck(t *testing.T) {
	linttest.Run(t, "testdata", Analyzer, "a")
}
