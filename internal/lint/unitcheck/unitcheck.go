// Package unitcheck enforces the unit-suffix naming convention the
// Table-I power model depends on: identifiers carrying a physical
// quantity name their unit (…Joules, …Seconds, …Hz, …MHz, …Bytes,
// …Watts), and arithmetic that adds, subtracts, compares or assigns
// across two DIFFERENT units is flagged. Multiplication and division
// legitimately change dimension (watts × seconds = joules), so they
// reset the inferred unit — an explicit conversion is any expression
// that routes through *, /, a function call, or a plainly-named
// intermediate. The checker is deliberately name-driven: it models the
// convention, not full dimensional analysis, exactly like the HLS
// report's MHz/W bookkeeping it guards.
package unitcheck

import (
	"go/ast"
	"go/token"
	"go/types"
	"unicode"

	"binopt/internal/lint"
)

// Analyzer flags unit-suffix mismatches in +, -, comparisons,
// assignments, composite-literal fields and call arguments.
var Analyzer = &lint.Analyzer{
	Name: "unitcheck",
	Doc: "flag arithmetic, comparisons, assignments and calls that mix " +
		"identifiers with different unit suffixes (Joules, Seconds, Hz, MHz, " +
		"Bytes, Watts) without an explicit conversion",
	Match: lint.MatchSuffix(
		"internal/hls", "internal/perf", "internal/gpumodel", "internal/accel",
		"internal/slo", "internal/omhist", "internal/scenario",
	),
	Run: run,
}

// units are recognised longest-first so FmaxMHz resolves to MHz, not Hz.
var units = []string{"Joules", "Seconds", "MHz", "GHz", "Hz", "Bytes", "Watts"}

// unitOfName extracts the unit suffix of an identifier, honouring
// camel-case boundaries; a whole identifier equal to the lowercased
// unit ("watts", "seconds") also counts.
func unitOfName(name string) (string, bool) {
	for _, u := range units {
		if name == u {
			return u, true
		}
		if len(name) > len(u) && name[len(name)-len(u):] == u {
			prev := rune(name[len(name)-len(u)-1])
			if unicode.IsLower(prev) || unicode.IsDigit(prev) {
				return u, true
			}
		}
	}
	for _, u := range units {
		if name == lowerUnit(u) {
			return u, true
		}
	}
	return "", false
}

func lowerUnit(u string) string {
	b := []rune(u)
	for i := range b {
		b[i] = unicode.ToLower(b[i])
	}
	return string(b)
}

// unitOf infers the unit a whole expression denotes, or ok=false when
// the expression's dimension is unknown (literals, products, calls —
// all of which act as explicit conversions).
func unitOf(info *types.Info, e ast.Expr) (string, bool) {
	switch e := e.(type) {
	case *ast.Ident:
		return unitOfName(e.Name)
	case *ast.SelectorExpr:
		return unitOfName(e.Sel.Name)
	case *ast.ParenExpr:
		return unitOf(info, e.X)
	case *ast.UnaryExpr:
		if e.Op == token.SUB || e.Op == token.ADD {
			return unitOf(info, e.X)
		}
	case *ast.BinaryExpr:
		if e.Op == token.ADD || e.Op == token.SUB {
			lu, lok := unitOf(info, e.X)
			ru, rok := unitOf(info, e.Y)
			if lok && rok && lu == ru {
				return lu, true
			}
		}
	case *ast.CallExpr:
		// A type conversion is transparent: float64(xBytes) is still
		// bytes. A real call is an explicit conversion boundary.
		if tv, ok := info.Types[e.Fun]; ok && tv.IsType() && len(e.Args) == 1 {
			return unitOf(info, e.Args[0])
		}
	case *ast.IndexExpr:
		return unitOf(info, e.X)
	}
	return "", false
}

// numeric reports whether the expression has a numeric type — unit
// discipline only concerns quantities, not strings like "…Seconds" keys.
func numeric(info *types.Info, e ast.Expr) bool {
	t := info.TypeOf(e)
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsNumeric != 0
}

func run(pass *lint.Pass) error {
	info := pass.TypesInfo
	mismatch := func(pos token.Pos, what, lu, ru string) {
		pass.Reportf(pos, "%s mixes %s and %s without an explicit conversion", what, lu, ru)
	}
	both := func(x, y ast.Expr) (string, string, bool) {
		lu, lok := unitOf(info, x)
		ru, rok := unitOf(info, y)
		if lok && rok && lu != ru && numeric(info, x) && numeric(info, y) {
			return lu, ru, true
		}
		return "", "", false
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				switch n.Op {
				case token.ADD, token.SUB, token.LSS, token.LEQ, token.GTR, token.GEQ, token.EQL, token.NEQ:
					if lu, ru, bad := both(n.X, n.Y); bad {
						mismatch(n.OpPos, "'"+n.Op.String()+"'", lu, ru)
					}
				}
			case *ast.AssignStmt:
				if len(n.Lhs) != len(n.Rhs) {
					return true
				}
				for i := range n.Lhs {
					if lu, ru, bad := both(n.Lhs[i], n.Rhs[i]); bad {
						mismatch(n.TokPos, "assignment", lu, ru)
					}
				}
			case *ast.ValueSpec:
				if len(n.Names) != len(n.Values) {
					return true
				}
				for i := range n.Names {
					if lu, ru, bad := both(n.Names[i], n.Values[i]); bad {
						mismatch(n.Names[i].Pos(), "declaration", lu, ru)
					}
				}
			case *ast.KeyValueExpr:
				key, ok := n.Key.(*ast.Ident)
				if !ok {
					return true
				}
				if lu, lok := unitOfName(key.Name); lok {
					if ru, rok := unitOf(info, n.Value); rok && lu != ru && numeric(info, n.Value) {
						mismatch(n.Colon, "field "+key.Name, lu, ru)
					}
				}
			case *ast.CallExpr:
				checkCallArgs(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkCallArgs compares each argument's unit against the callee
// parameter's declared name: passing fHz into a parameter named mhz is
// exactly the Table-I slip this exists to catch.
func checkCallArgs(pass *lint.Pass, call *ast.CallExpr) {
	fn := lint.CalleeFunc(pass.TypesInfo, call)
	if fn == nil {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Variadic() {
		return
	}
	params := sig.Params()
	if params.Len() != len(call.Args) {
		return
	}
	for i, arg := range call.Args {
		pu, pok := unitOfName(params.At(i).Name())
		if !pok {
			continue
		}
		au, aok := unitOf(pass.TypesInfo, arg)
		if aok && au != pu && numeric(pass.TypesInfo, arg) {
			pass.Reportf(arg.Pos(), "argument %s passed to parameter %s of %s mixes %s and %s without an explicit conversion",
				lint.ExprString(pass.Fset, arg), params.At(i).Name(), fn.Name(), au, pu)
		}
	}
}
