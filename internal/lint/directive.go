package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"
)

// DirectivePrefix introduces a suppression comment:
//
//	//binopt:ignore <analyzer> <reason>
//
// It silences findings of the named analyzer on the same source line or
// on the line directly below the comment (so the directive can sit on
// its own line above the flagged statement).
const DirectivePrefix = "//binopt:ignore"

// directive is one parsed suppression.
type directive struct {
	analyzer string
	reason   string
	file     string
	line     int
}

// collectDirectives parses every //binopt:ignore comment. Malformed
// directives — missing analyzer, missing reason, or naming an analyzer
// not in the running suite — become findings under the pseudo-analyzer
// "directive", so a suppression can never silently rot.
func collectDirectives(analyzers []*Analyzer, fset *token.FileSet, files []*ast.File) ([]directive, []Diagnostic) {
	known := make(map[string]bool, len(analyzers))
	for _, a := range analyzers {
		known[a.Name] = true
	}
	var dirs []directive
	var diags []Diagnostic
	bad := func(pos token.Pos, format string, args ...any) {
		diags = append(diags, Diagnostic{
			Analyzer: "directive",
			Pos:      fset.Position(pos),
			Message:  fmt.Sprintf(format, args...),
		})
	}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, DirectivePrefix)
				if !ok || (rest != "" && rest[0] != ' ' && rest[0] != '\t') {
					continue // not ours, e.g. //binopt:ignorexyz
				}
				name, reason, _ := strings.Cut(strings.TrimSpace(rest), " ")
				if name == "" {
					bad(c.Pos(), "binopt:ignore needs an analyzer name and a reason")
					continue
				}
				if !known[name] {
					bad(c.Pos(), "binopt:ignore names unknown analyzer %q", name)
					continue
				}
				if strings.TrimSpace(reason) == "" {
					bad(c.Pos(), "binopt:ignore %s needs a written reason", name)
					continue
				}
				p := fset.Position(c.Pos())
				dirs = append(dirs, directive{analyzer: name, reason: strings.TrimSpace(reason), file: p.Filename, line: p.Line})
			}
		}
	}
	return dirs, diags
}

// filterSuppressed drops findings covered by a directive on the same
// line or the line directly above.
func filterSuppressed(diags []Diagnostic, dirs []directive) []Diagnostic {
	if len(dirs) == 0 {
		return diags
	}
	type key struct {
		file     string
		line     int
		analyzer string
	}
	covered := make(map[key]bool, len(dirs)*2)
	for _, d := range dirs {
		covered[key{d.file, d.line, d.analyzer}] = true
		covered[key{d.file, d.line + 1, d.analyzer}] = true
	}
	out := diags[:0]
	for _, d := range diags {
		if covered[key{d.Pos.Filename, d.Pos.Line, d.Analyzer}] {
			continue
		}
		out = append(out, d)
	}
	return out
}
