package lint

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"path/filepath"
)

// vetConfig mirrors the JSON file cmd/go hands a -vettool for each
// compilation unit. Only the fields binoptvet consumes are declared;
// the rest of the document is ignored.
type vetConfig struct {
	ID          string
	Compiler    string
	Dir         string
	ImportPath  string
	GoFiles     []string
	ImportMap   map[string]string
	PackageFile map[string]string
	VetxOnly    bool
	VetxOutput  string

	SucceedOnTypecheckFailure bool
}

// RunUnit implements the `go vet -vettool` protocol for one .cfg file:
// it type-checks the unit against the export data the go command
// already built, applies every analyzer whose Match filter admits the
// package, writes the (empty — binoptvet exports no facts) VetxOutput
// file the go command insists on, and returns the findings.
func RunUnit(analyzers []*Analyzer, cfgFile string) ([]Diagnostic, error) {
	data, err := os.ReadFile(cfgFile)
	if err != nil {
		return nil, err
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", cfgFile, err)
	}
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("binoptvet: no facts\n"), 0o666); err != nil {
			return nil, err
		}
	}
	if cfg.VetxOnly {
		return nil, nil // dependency pass: facts only, and we export none
	}

	path := pkgBase(cfg.ImportPath)
	var active []*Analyzer
	for _, a := range analyzers {
		if a.Match == nil || a.Match(path) {
			active = append(active, a)
		}
	}
	if len(active) == 0 {
		return nil, nil
	}

	fset := token.NewFileSet()
	files := make([]*ast.File, 0, len(cfg.GoFiles))
	for _, g := range cfg.GoFiles {
		if !filepath.IsAbs(g) {
			g = filepath.Join(cfg.Dir, g)
		}
		f, err := parser.ParseFile(fset, g, nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}

	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	imp := importer.ForCompiler(fset, compiler, func(p string) (io.ReadCloser, error) {
		if mapped, ok := cfg.ImportMap[p]; ok {
			p = mapped
		}
		exp, ok := cfg.PackageFile[p]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", p)
		}
		return os.Open(exp)
	})
	info := NewInfo()
	conf := types.Config{Importer: imp}
	pkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return nil, nil
		}
		return nil, fmt.Errorf("type-checking %s: %w", cfg.ImportPath, err)
	}
	return AnalyzePackage(active, fset, files, pkg, info)
}
