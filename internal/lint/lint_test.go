package lint

import (
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"strings"
	"testing"
)

// checkSrc type-checks one source string and runs the analyzers.
func checkSrc(t *testing.T, src string, analyzers ...*Analyzer) []Diagnostic {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	info := NewInfo()
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	pkg, err := conf.Check("p", fset, []*ast.File{f}, info)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := AnalyzePackage(analyzers, fset, []*ast.File{f}, pkg, info)
	if err != nil {
		t.Fatal(err)
	}
	return diags
}

// intLit is a toy analyzer: it flags every integer literal. Small
// enough to exercise reporting and suppression end to end.
var intLit = &Analyzer{
	Name: "intlit",
	Doc:  "flags integer literals (test analyzer)",
	Run: func(pass *Pass) error {
		for _, f := range pass.Files {
			ast.Inspect(f, func(n ast.Node) bool {
				if bl, ok := n.(*ast.BasicLit); ok && bl.Kind == token.INT {
					pass.Reportf(bl.Pos(), "integer literal %s", bl.Value)
				}
				return true
			})
		}
		return nil
	},
}

func TestReportAndSuppress(t *testing.T) {
	src := `package p

var a = 1
var b = 2 //binopt:ignore intlit literal is load-bearing

//binopt:ignore intlit next-line form covers this one
var c = 3

var d = 4
`
	diags := checkSrc(t, src, intLit)
	if len(diags) != 2 {
		t.Fatalf("want 2 findings (lines 3 and 9), got %d: %v", len(diags), diags)
	}
	if diags[0].Pos.Line != 3 || diags[1].Pos.Line != 9 {
		t.Errorf("findings on wrong lines: %v", diags)
	}
	if !strings.Contains(diags[0].String(), "intlit: integer literal 1") {
		t.Errorf("diagnostic format: %q", diags[0].String())
	}
}

func TestMalformedDirectives(t *testing.T) {
	src := `package p

//binopt:ignore
var a = 1

//binopt:ignore intlit
var b = 2

//binopt:ignore nosuchanalyzer because
var c = 3
`
	diags := checkSrc(t, src, intLit)
	var msgs []string
	for _, d := range diags {
		if d.Analyzer == "directive" {
			msgs = append(msgs, d.Message)
		}
	}
	if len(msgs) != 3 {
		t.Fatalf("want 3 directive findings, got %v", diags)
	}
	for want, got := range map[string]string{
		"needs an analyzer name": msgs[0],
		"needs a written reason": msgs[1],
		"unknown analyzer":       msgs[2],
	} {
		if !strings.Contains(got, want) {
			t.Errorf("directive finding %q does not mention %q", got, want)
		}
	}
	// The malformed directives must not suppress anything: all three
	// literals still reported.
	var lits int
	for _, d := range diags {
		if d.Analyzer == "intlit" {
			lits++
		}
	}
	if lits != 3 {
		t.Errorf("malformed directives suppressed findings: %v", diags)
	}
}

func TestDirectiveScopedToAnalyzer(t *testing.T) {
	src := `package p

//binopt:ignore intlit only silences intlit, not others
var a = 1
`
	other := &Analyzer{
		Name: "other",
		Doc:  "flags the same literals under another name",
		Run:  intLit.Run,
	}
	diags := checkSrc(t, src, intLit, other)
	if len(diags) != 1 || diags[0].Analyzer != "other" {
		t.Fatalf("want exactly the 'other' finding to survive, got %v", diags)
	}
}

func TestMatchSuffix(t *testing.T) {
	m := MatchSuffix("internal/serve", "internal/faults")
	for path, want := range map[string]bool{
		"binopt/internal/serve":      true,
		"binopt/internal/serve_test": true, // external test package
		"binopt/internal/faults":     true,
		"binopt/internal/telemetry":  false,
		"binopt/internal/servesque":  false,
	} {
		if got := m(path); got != want {
			t.Errorf("MatchSuffix(%q) = %v, want %v", path, got, want)
		}
	}
}
