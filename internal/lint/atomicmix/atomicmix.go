// Package atomicmix flags variables and fields that are accessed both
// through the function-style sync/atomic API and by plain reads or
// writes. Mixing the two is the classic torn-counter bug: the atomic
// half establishes that the cell is shared across goroutines, at which
// point every plain access is a data race that -race only catches if
// the schedule cooperates. The fabric's own counters use the typed
// atomics (atomic.Int64 and friends), which make this mistake
// unrepresentable; this analyzer covers the remaining function-style
// sites so a plain `x.n++` next to an `atomic.AddInt64(&x.n, 1)` fails
// CI instead of a soak test.
//
// Composite-literal fields are exempt: initialisation before the value
// is published is the one place a plain write to an atomic cell is
// conventional (the zero value or a seeded counter).
//
// The analyzer runs on every package, test files included — tests are
// exactly where ad-hoc plain reads of atomic counters sneak in.
package atomicmix

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"binopt/internal/lint"
)

// Analyzer flags plain access to atomically-accessed cells.
var Analyzer = &lint.Analyzer{
	Name: "atomicmix",
	Doc: "flag plain reads/writes of a variable or field that is elsewhere " +
		"accessed through sync/atomic",
	Run: run,
}

func run(pass *lint.Pass) error {
	// Pass 1: find every cell touched through the function-style
	// sync/atomic API, and remember the argument subtrees of those calls
	// so pass 2 does not flag the atomic accesses themselves.
	cells := make(map[types.Object]token.Pos)
	inAtomic := make(map[ast.Expr]bool)
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := lint.CalleeFunc(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
				return true
			}
			if fn.Type().(*types.Signature).Recv() != nil {
				return true // typed atomics (atomic.Int64) cannot be mixed
			}
			for _, arg := range call.Args {
				inAtomic[arg] = true
			}
			if len(call.Args) == 0 {
				return true
			}
			if obj := cellObj(pass.TypesInfo, call.Args[0]); obj != nil {
				if _, seen := cells[obj]; !seen {
					cells[obj] = call.Pos()
				}
			}
			return true
		})
	}
	if len(cells) == 0 {
		return nil
	}

	// Pass 2: every other access to those cells must also be atomic.
	for _, f := range pass.Files {
		skipComposite := make(map[ast.Node]bool)
		ast.Inspect(f, func(n ast.Node) bool {
			if e, ok := n.(ast.Expr); ok && inAtomic[e] {
				return false // the sanctioned access
			}
			switch n := n.(type) {
			case *ast.CompositeLit:
				// Keys of a composite literal initialise the cell before
				// publication; skip the whole literal's key/value pairs'
				// keys but still walk values.
				for _, el := range n.Elts {
					if kv, ok := el.(*ast.KeyValueExpr); ok {
						skipComposite[kv.Key] = true
					}
				}
			case *ast.Field:
				return false // the declaration itself is not an access
			case *ast.SelectorExpr:
				if skipComposite[n] {
					return false
				}
				if sel, ok := pass.TypesInfo.Selections[n]; ok {
					report(pass, cells, n.Sel.Pos(), sel.Obj(), n)
				}
				return true
			case *ast.Ident:
				if skipComposite[n] {
					return false
				}
				if pass.TypesInfo.Defs[n] != nil {
					return true // defining occurrence, not an access
				}
				// Field accesses are reported once, at their selector;
				// here only plain variables count.
				if v, ok := pass.TypesInfo.Uses[n].(*types.Var); ok && !v.IsField() {
					report(pass, cells, n.Pos(), v, n)
				}
			}
			return true
		})
	}
	return nil
}

// report flags one plain access to a known atomic cell.
func report(pass *lint.Pass, cells map[types.Object]token.Pos, pos token.Pos, obj types.Object, e ast.Expr) {
	if obj == nil {
		return
	}
	first, ok := cells[obj]
	if !ok {
		return
	}
	pass.Reportf(pos,
		"plain access to %s, which is accessed atomically at %s; every access to an "+
			"atomic cell must go through sync/atomic",
		exprLabel(pass, e, obj), pass.Fset.Position(first))
}

// exprLabel names the access compactly for the message.
func exprLabel(pass *lint.Pass, e ast.Expr, obj types.Object) string {
	s := lint.ExprString(pass.Fset, e)
	if s == "<expr>" || strings.Contains(s, "\n") {
		return obj.Name()
	}
	return s
}

// cellObj resolves the canonical object behind an atomic call's address
// argument: the field object for &s.f, the variable for &x.
func cellObj(info *types.Info, arg ast.Expr) types.Object {
	un, ok := ast.Unparen(arg).(*ast.UnaryExpr)
	if !ok || un.Op != token.AND {
		return nil
	}
	switch target := ast.Unparen(un.X).(type) {
	case *ast.Ident:
		return info.Uses[target]
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[target]; ok {
			return sel.Obj()
		}
	case *ast.IndexExpr:
		// &arr[i]: identity by the array/slice variable is too coarse to
		// be sound; skip element cells.
		return nil
	}
	return nil
}
