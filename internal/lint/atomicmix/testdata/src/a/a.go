package a

import "sync/atomic"

type counters struct {
	hits   int64
	misses int64
	cold   int64
}

// hits is accessed atomically here, so every other access must be too.
func (c *counters) record() {
	atomic.AddInt64(&c.hits, 1)
}

func (c *counters) snapshot() int64 {
	return c.hits // want `plain access to c\.hits`
}

func (c *counters) reset() {
	c.hits = 0 // want `plain access to c\.hits`
}

// misses is only ever accessed atomically: clean.
func (c *counters) miss() {
	atomic.AddInt64(&c.misses, 1)
}

func (c *counters) missCount() int64 {
	return atomic.LoadInt64(&c.misses)
}

// cold is never touched atomically: plain access is fine.
func (c *counters) warm() int64 {
	c.cold++
	return c.cold
}

// Composite-literal initialisation happens before publication: exempt.
func fresh() *counters {
	return &counters{hits: 0, misses: 0}
}

// A package-level variable mixed between atomic and plain access.
var inflight int64

func begin() {
	atomic.AddInt64(&inflight, 1)
}

func leak() int64 {
	return inflight // want `plain access to inflight`
}

// The suppressed read documents why it is tolerable.
func debugDump() int64 {
	//binopt:ignore atomicmix post-shutdown dump, no concurrent writers remain
	return inflight
}
