package atomicmix

import (
	"testing"

	"binopt/internal/lint/linttest"
)

func TestAtomicmix(t *testing.T) {
	linttest.Run(t, "testdata", Analyzer, "a")
}
