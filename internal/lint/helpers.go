package lint

import (
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"
	"strings"
)

// CalleeFunc resolves the function or method a call invokes, or nil for
// indirect calls (function values, type conversions, some builtins).
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// IsPkgFunc reports whether the call invokes the named package-level
// function of a package with the given import path ("time", "math/rand").
func IsPkgFunc(info *types.Info, call *ast.CallExpr, pkgPath string, names ...string) bool {
	fn := CalleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != pkgPath {
		return false
	}
	if fn.Type().(*types.Signature).Recv() != nil {
		return false
	}
	for _, n := range names {
		if fn.Name() == n {
			return true
		}
	}
	return len(names) == 0
}

// RecvNamed returns the named type of the method call's receiver
// (through pointers), or nil when the call is not a method call.
func RecvNamed(info *types.Info, call *ast.CallExpr) *types.Named {
	fn := CalleeFunc(info, call)
	if fn == nil {
		return nil
	}
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return nil
	}
	t := recv.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// MethodCallOn reports whether call invokes a method of the given name
// on a receiver whose (pointer-stripped) named type is typeName. The
// package of the receiver type is deliberately ignored so testdata can
// stub domain types.
func MethodCallOn(info *types.Info, call *ast.CallExpr, typeName, method string) bool {
	named := RecvNamed(info, call)
	if named == nil || named.Obj().Name() != typeName {
		return false
	}
	fn := CalleeFunc(info, call)
	return fn != nil && fn.Name() == method
}

// ExprString renders an expression compactly for messages and for
// syntactic identity comparison.
func ExprString(fset *token.FileSet, e ast.Expr) string {
	var b strings.Builder
	if err := printer.Fprint(&b, fset, e); err != nil {
		return "<expr>"
	}
	return b.String()
}

// IsFloat reports whether t's underlying type is a floating-point or
// complex basic type.
func IsFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&(types.IsFloat|types.IsComplex) != 0
}
