// Package b pins the directive scoping rules against the new
// analyzers: a //binopt:ignore covers its own line and the line
// directly below — never a whole enclosing function — and a directive
// naming an analyzer that is not running is itself a finding.
package b

func spin() {}

// A directive on the function declaration does not reach the go
// statement two lines into the body.
//
//binopt:ignore spawncheck directive on the decl must not leak into the body
func declLevelDirectiveDoesNotCover() {
	x := 1
	_ = x
	go func() { // want "no tie to a shutdown path"
		for {
			spin()
		}
	}()
}

// On the spawning line itself, the same directive works.
func lineLevelDirectiveCovers() {
	go func() { //binopt:ignore spawncheck drained by process exit in the harness
		for {
			spin()
		}
	}()
}

// And on the line directly above the spawn.
func lineAboveDirectiveCovers() {
	//binopt:ignore spawncheck drained by process exit in the harness
	go func() {
		for {
			spin()
		}
	}()
}

// An unknown analyzer name can never rot silently.
func unknownAnalyzer() {
	//binopt:ignore spawnchk typo must be caught // want `unknown analyzer "spawnchk"`
	go func() { // want "no tie to a shutdown path"
		for {
			spin()
		}
	}()
}
