package a

import (
	"context"
	"net/http"
	"sync"
)

// Untied: nothing ever stops this loop.
func untied(work chan int) {
	go func() { // want "no tie to a shutdown path"
		for {
			process()
		}
	}()
	_ = work
}

func process() {}

// WaitGroup pairing done right: Add before go, Done in the body.
func wgPaired(wg *sync.WaitGroup) {
	wg.Add(1)
	go func() {
		defer wg.Done()
		process()
	}()
}

// Add after the spawn: Wait can return before the Add lands.
func wgAddLate(wg *sync.WaitGroup) {
	go func() { // want `wg\.Add is not on every path before this spawn`
		defer wg.Done()
		process()
	}()
	wg.Add(1)
}

// Add on only one branch: the other branch spawns unadded, so the
// intersection merge correctly refuses the evidence.
func wgAddOneBranch(wg *sync.WaitGroup, fast bool) {
	if fast {
		wg.Add(1)
	} else {
		process()
	}
	go func() { // want `wg\.Add is not on every path before this spawn`
		defer wg.Done()
		process()
	}()
}

// Add on both branches satisfies the must-analysis.
func wgAddBothBranches(wg *sync.WaitGroup, fast bool) {
	if fast {
		wg.Add(1)
	} else {
		wg.Add(1)
	}
	go func() {
		defer wg.Done()
		process()
	}()
}

// Done with no Add anywhere in this function: the Add lives in the
// caller, which is fine — Done alone is the tie.
func wgDoneCallerAdds(wg *sync.WaitGroup) {
	go func() {
		defer wg.Done()
		process()
	}()
}

// A done channel is a tie (receive).
func doneChannel(stop chan struct{}) {
	go func() {
		for {
			select {
			case <-stop:
				return
			default:
				process()
			}
		}
	}()
}

// Closing a channel to signal completion is a tie.
func closesDone(done chan struct{}) {
	go func() {
		defer close(done)
		process()
	}()
}

// Consulting a context is a tie.
func ctxTied(ctx context.Context) {
	go func() {
		<-ctx.Done()
	}()
}

// Ranging over a channel is a tie: closing the channel ends the loop.
func rangesChannel(work chan int) {
	go func() {
		for v := range work {
			_ = v
		}
	}()
}

// An http.Server accept loop is its own lifecycle: Close unblocks it.
func serveLifecycle(srv *http.Server) {
	go func() {
		_ = srv.ListenAndServe()
	}()
}

// One-level callee resolution: the worker's body holds the evidence.
type pool struct {
	wg   sync.WaitGroup
	work chan int
}

func (p *pool) worker() {
	defer p.wg.Done()
	for v := range p.work {
		_ = v
	}
}

func (p *pool) start() {
	p.wg.Add(1)
	go p.worker()
}

// A callee from another package is out of view: flagged, and the
// intentional site carries a written reason.
func outOfView() {
	go http.ListenAndServe(":0", nil) // want "out of view"
	//binopt:ignore spawncheck crash reporter is fire-and-forget by design
	go http.ListenAndServe(":1", nil)
}
