// Package spawncheck ties every goroutine in the fabric's long-running
// packages to a shutdown path. A bare `go func() { for { ... } }()` in
// serve, cluster, or telemetry is a leak with a delay on it: the node
// passes every test, then Close() returns while the goroutine keeps
// scraping, heartbeating, or writing to a closed listener. The analyzer
// accepts any of the idioms the repo actually uses as evidence of a tie:
//
//   - sync.WaitGroup pairing: the body calls wg.Done and a wg.Add
//     precedes the spawn on every path (the Add-after-spawn ordering is
//     its own finding: Wait can return before a late Add lands);
//   - a done channel: the body receives, selects, ranges over a
//     channel, or closes one to signal completion;
//   - context: the body consults a context.Context (ctx.Done, request
//     ctx threaded in);
//   - http.Server lifecycle: the body runs srv.Serve/ListenAndServe,
//     which srv.Close unblocks.
//
// The Add-before-spawn ordering check runs on the dataflow walker with
// intersection merges: an Add on only one branch of an if does not
// count, because the other branch really can spawn unadded.
package spawncheck

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"binopt/internal/lint"
	"binopt/internal/lint/dataflow"
)

// Analyzer flags goroutines with no tie to a shutdown path.
var Analyzer = &lint.Analyzer{
	Name: "spawncheck",
	Doc: "flag go statements in long-running packages that are not tied to a " +
		"shutdown path (WaitGroup pairing, done channel, context, or server lifecycle)",
	Match: lint.MatchSuffix(
		"internal/serve", "internal/cluster", "internal/telemetry",
	),
	Run: run,
}

func run(pass *lint.Pass) error {
	decls := funcDecls(pass)
	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue // test goroutines live and die with the test
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					newChecker(pass, decls).check(n.Body)
				}
				return false
			case *ast.FuncLit:
				newChecker(pass, decls).check(n.Body)
				return false
			}
			return true
		})
	}
	return nil
}

// funcDecls maps each function object to its declaration, for one-level
// resolution of `go s.worker(...)` spawns.
func funcDecls(pass *lint.Pass) map[*types.Func]*ast.FuncDecl {
	m := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok {
				if fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
					m[fn] = fd
				}
			}
		}
	}
	return m
}

// addSet is the dataflow state: the WaitGroup expressions (by source
// text) that have had Add called on every path reaching this point.
// Merging is intersection — this is a must-analysis.
type addSet map[string]bool

func (s addSet) CloneState() dataflow.State {
	c := make(addSet, len(s))
	for k := range s {
		c[k] = true
	}
	return c
}

func (s addSet) MergeState(o dataflow.State) dataflow.State {
	other := o.(addSet)
	out := make(addSet)
	for k := range s {
		if other[k] {
			out[k] = true
		}
	}
	return out
}

type checker struct {
	pass  *lint.Pass
	decls map[*types.Func]*ast.FuncDecl
	// allAdds holds the WaitGroup expressions Add'ed anywhere in the
	// function under check, to tell "Add is after the spawn" (a bug
	// here) from "Add happens in the caller" (fine).
	allAdds map[string]bool
	walker  *dataflow.Walker
}

func newChecker(pass *lint.Pass, decls map[*types.Func]*ast.FuncDecl) *checker {
	c := &checker{pass: pass, decls: decls}
	c.walker = &dataflow.Walker{Client: c}
	return c
}

func (c *checker) check(body *ast.BlockStmt) {
	c.allAdds = make(map[string]bool)
	ast.Inspect(body, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if recv, ok := c.wgMethod(call, "Add"); ok {
				c.allAdds[recv] = true
			}
		}
		return true
	})
	c.walker.Walk(body, make(addSet))
}

func (c *checker) Fresh() dataflow.State { return make(addSet) }

func (c *checker) Expr(e ast.Expr, st dataflow.State) {}

// Transfer records Add calls and audits go statements.
func (c *checker) Transfer(s ast.Stmt, st dataflow.State) dataflow.State {
	adds := st.(addSet)
	switch s := s.(type) {
	case *ast.ExprStmt:
		if call, ok := ast.Unparen(s.X).(*ast.CallExpr); ok {
			if recv, ok := c.wgMethod(call, "Add"); ok {
				adds = adds.CloneState().(addSet)
				adds[recv] = true
			}
		}
	case *ast.GoStmt:
		c.checkSpawn(s, adds)
	}
	return adds
}

// checkSpawn audits one go statement against the current Add state.
func (c *checker) checkSpawn(s *ast.GoStmt, adds addSet) {
	var body *ast.BlockStmt
	switch fun := ast.Unparen(s.Call.Fun).(type) {
	case *ast.FuncLit:
		body = fun.Body
	default:
		if fn := lint.CalleeFunc(c.pass.TypesInfo, s.Call); fn != nil {
			if fd, ok := c.decls[fn]; ok {
				body = fd.Body
			}
		}
	}
	// Spawning a server loop directly is its own lifecycle.
	if c.isServeCall(s.Call) {
		return
	}
	if body == nil {
		c.pass.Reportf(s.Pos(),
			"goroutine body is out of view (callee not declared in this package); "+
				"tie it to a shutdown path where it is spawned, or suppress with a reason")
		return
	}
	ev := c.evidence(body)
	switch {
	case len(ev.doneOn) > 0:
		for _, recv := range ev.doneOn {
			if !adds[recv] && c.allAdds[recv] {
				c.pass.Reportf(s.Pos(),
					"%s.Add is not on every path before this spawn, but the goroutine calls "+
						"%s.Done; Wait can return before a late Add lands — Add before go",
					recv, recv)
			}
		}
	case ev.tied:
	default:
		c.pass.Reportf(s.Pos(),
			"goroutine has no tie to a shutdown path: no WaitGroup Done, no done-channel "+
				"receive/select/close, no context, no server lifecycle; it can outlive Close")
	}
}

// spawnEvidence is what a goroutine body offers as its shutdown tie.
type spawnEvidence struct {
	tied   bool     // channel op, context use, or server call found
	doneOn []string // WaitGroup expressions the body calls Done on
}

// evidence scans a goroutine body (nested literals included) for any
// accepted shutdown tie.
func (c *checker) evidence(body *ast.BlockStmt) spawnEvidence {
	var ev spawnEvidence
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SelectStmt:
			ev.tied = true
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				ev.tied = true
			}
		case *ast.RangeStmt:
			if t := c.pass.TypesInfo.TypeOf(n.X); t != nil {
				if _, isChan := t.Underlying().(*types.Chan); isChan {
					ev.tied = true
				}
			}
		case *ast.CallExpr:
			if recv, ok := c.wgMethod(n, "Done"); ok {
				ev.doneOn = append(ev.doneOn, recv)
			}
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok {
				if _, isBuiltin := c.pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin && id.Name == "close" {
					ev.tied = true
				}
			}
			if c.isServeCall(n) {
				ev.tied = true
			}
		case ast.Expr:
			if t := c.pass.TypesInfo.TypeOf(n); t != nil && isContextType(t) {
				ev.tied = true
			}
		}
		return true
	})
	return ev
}

// isServeCall reports a call to an http.Server-style accept loop, which
// the matching Close/Shutdown unblocks.
func (c *checker) isServeCall(call *ast.CallExpr) bool {
	for _, m := range []string{"Serve", "ListenAndServe", "ServeTLS", "ListenAndServeTLS"} {
		if lint.MethodCallOn(c.pass.TypesInfo, call, "Server", m) {
			return true
		}
	}
	return false
}

// wgMethod reports whether call is method `name` on a sync.WaitGroup,
// returning the receiver's source text as the group's identity.
func (c *checker) wgMethod(call *ast.CallExpr, name string) (string, bool) {
	fn := lint.CalleeFunc(c.pass.TypesInfo, call)
	if fn == nil || fn.Name() != name || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", false
	}
	named := lint.RecvNamed(c.pass.TypesInfo, call)
	if named == nil || named.Obj().Name() != "WaitGroup" {
		return "", false
	}
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	return lint.ExprString(c.pass.Fset, sel.X), true
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}
