package spawncheck

import (
	"testing"

	"binopt/internal/lint/linttest"
)

func TestSpawncheck(t *testing.T) {
	linttest.Run(t, "testdata", Analyzer, "a", "b")
}
