package suite

import (
	"path/filepath"
	"testing"

	"binopt/internal/lint"
)

// TestAnalyzerRegistry pins the suite's shape: nine distinct, documented
// analyzers under the names the suppression directives refer to.
func TestAnalyzerRegistry(t *testing.T) {
	want := map[string]bool{
		"barrieruse": true, "floateq": true, "kerneldet": true,
		"locksafe": true, "unitcheck": true,
		"atomicmix": true, "ctxflow": true, "errdrop": true,
		"spawncheck": true,
	}
	seen := map[string]bool{}
	for _, a := range Analyzers {
		if a.Name == "" || a.Doc == "" || a.Run == nil {
			t.Fatalf("analyzer %q is missing a name, doc or run function", a.Name)
		}
		if seen[a.Name] {
			t.Fatalf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
		if !want[a.Name] {
			t.Errorf("unexpected analyzer %q in the suite", a.Name)
		}
	}
	if len(seen) != len(want) {
		t.Errorf("suite has %d analyzers, want %d", len(seen), len(want))
	}
}

// TestRepoIsClean runs the whole suite over the repository — the same
// gate CI applies. Every deliberate exception in the tree carries a
// //binopt:ignore directive with a written reason, so a finding here is
// either a real defect or an undocumented exception; both should fail.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("repo-wide lint type-checks every package; skipped in -short")
	}
	root := filepath.Join("..", "..", "..")
	diags, err := lint.Run(Analyzers, root, []string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	for _, d := range diags {
		t.Errorf("%s", d)
	}
}
