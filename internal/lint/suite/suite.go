// Package suite registers the binoptvet analyzers. The command and the
// repo-wide integration test both consume this list, so adding an
// analyzer here is the single step that wires it into `scripts/lint.sh`,
// `go vet -vettool` and CI.
package suite

import (
	"binopt/internal/lint"
	"binopt/internal/lint/barrieruse"
	"binopt/internal/lint/floateq"
	"binopt/internal/lint/kerneldet"
	"binopt/internal/lint/locksafe"
	"binopt/internal/lint/unitcheck"
)

// Analyzers is every check binoptvet runs, in report order.
var Analyzers = []*lint.Analyzer{
	barrieruse.Analyzer,
	floateq.Analyzer,
	kerneldet.Analyzer,
	locksafe.Analyzer,
	unitcheck.Analyzer,
}
