// Package suite registers the binoptvet analyzers. The command and the
// repo-wide integration test both consume this list, so adding an
// analyzer here is the single step that wires it into `scripts/lint.sh`,
// `go vet -vettool` and CI.
package suite

import (
	"binopt/internal/lint"
	"binopt/internal/lint/atomicmix"
	"binopt/internal/lint/barrieruse"
	"binopt/internal/lint/ctxflow"
	"binopt/internal/lint/errdrop"
	"binopt/internal/lint/floateq"
	"binopt/internal/lint/kerneldet"
	"binopt/internal/lint/locksafe"
	"binopt/internal/lint/spawncheck"
	"binopt/internal/lint/unitcheck"
)

// Analyzers is every check binoptvet runs, in report order. The first
// five guard the numeric core (parity, barriers, units); the four added
// with the dataflow layer guard the fabric's concurrency and lifecycle
// invariants (context threading, goroutine shutdown ties, atomic
// discipline, error flow).
var Analyzers = []*lint.Analyzer{
	atomicmix.Analyzer,
	barrieruse.Analyzer,
	ctxflow.Analyzer,
	errdrop.Analyzer,
	floateq.Analyzer,
	kerneldet.Analyzer,
	locksafe.Analyzer,
	spawncheck.Analyzer,
	unitcheck.Analyzer,
}
