// Package linttest is a golden-file harness for lint analyzers in the
// style of golang.org/x/tools/go/analysis/analysistest: testdata
// packages annotate the lines they expect findings on with
//
//	// want "regexp" "another regexp"
//
// and the harness fails the test on any unmatched expectation or
// unexpected finding. Suppression directives (//binopt:ignore) are
// honoured exactly as in the real driver, so their behaviour is
// testable from testdata too.
package linttest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"sync"
	"testing"

	"binopt/internal/lint"
)

// Run analyzes the packages under dir/src (one directory per package,
// imported by its directory name) and compares findings against the
// // want annotations in their sources. The analyzer's Match filter is
// deliberately bypassed: testdata exercises the check itself, package
// scoping is driver policy.
func Run(t *testing.T, dir string, a *lint.Analyzer, pkgs ...string) {
	t.Helper()
	ld := &loader{root: filepath.Join(dir, "src"), fset: token.NewFileSet(), pkgs: make(map[string]*loaded)}
	for _, pkg := range pkgs {
		lp, err := ld.load(pkg)
		if err != nil {
			t.Fatalf("loading testdata package %q: %v", pkg, err)
		}
		diags, err := lint.AnalyzePackage([]*lint.Analyzer{a}, ld.fset, lp.files, lp.pkg, lp.info)
		if err != nil {
			t.Fatalf("analyzing %q: %v", pkg, err)
		}
		checkWants(t, ld.fset, lp.files, diags)
	}
}

// loaded is one type-checked testdata package.
type loaded struct {
	files []*ast.File
	pkg   *types.Package
	info  *types.Info
}

// loader resolves imports first against the testdata src tree, then
// against the real toolchain via export data, so testdata can stub
// domain packages (an `opencl` with WorkItem and NewKernel) while still
// importing the genuine standard library.
type loader struct {
	root string
	fset *token.FileSet
	pkgs map[string]*loaded
	gc   types.ImporterFrom // one instance, so stdlib types stay identical across packages

	mu      sync.Mutex
	exports map[string]string
}

func (l *loader) load(path string) (*loaded, error) {
	if p, ok := l.pkgs[path]; ok {
		return p, nil
	}
	dir := filepath.Join(l.root, path)
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	info := lint.NewInfo()
	conf := types.Config{Importer: (*testImporter)(l)}
	pkg, err := conf.Check(path, l.fset, files, info)
	if err != nil {
		return nil, err
	}
	p := &loaded{files: files, pkg: pkg, info: info}
	l.pkgs[path] = p
	return p, nil
}

// testImporter adapts loader to types.Importer.
type testImporter loader

func (ti *testImporter) Import(path string) (*types.Package, error) {
	l := (*loader)(ti)
	if _, err := os.Stat(filepath.Join(l.root, path)); err == nil {
		p, err := l.load(path)
		if err != nil {
			return nil, err
		}
		return p.pkg, nil
	}
	if l.gc == nil {
		l.gc = importer.ForCompiler(l.fset, "gc", func(p string) (io.ReadCloser, error) {
			f, err := l.exportFile(p)
			if err != nil {
				return nil, err
			}
			return os.Open(f)
		}).(types.ImporterFrom)
	}
	return l.gc.ImportFrom(path, "", 0)
}

// exportFile locates compiler export data for a real package, shelling
// out to `go list -export` once per new dependency closure.
func (l *loader) exportFile(path string) (string, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if f, ok := l.exports[path]; ok {
		return f, nil
	}
	out, err := exec.Command("go", "list", "-e", "-deps", "-export", "-f",
		`{{if .Export}}{{.ImportPath}} {{.Export}}{{end}}`, path).Output()
	if err != nil {
		return "", fmt.Errorf("go list -export %s: %w", path, err)
	}
	if l.exports == nil {
		l.exports = make(map[string]string)
	}
	for _, line := range strings.Split(strings.TrimSpace(string(out)), "\n") {
		if ip, f, ok := strings.Cut(line, " "); ok {
			l.exports[ip] = f
		}
	}
	f, ok := l.exports[path]
	if !ok {
		return "", fmt.Errorf("no export data for %q", path)
	}
	return f, nil
}

// wantRe pulls the quoted regexps off a // want comment; both "..."
// and `...` forms are accepted.
var wantRe = regexp.MustCompile("\"((?:[^\"\\\\]|\\\\.)*)\"|`([^`]*)`")

// checkWants matches findings against // want annotations line by line.
func checkWants(t *testing.T, fset *token.FileSet, files []*ast.File, diags []lint.Diagnostic) {
	t.Helper()
	wants, problems := collectWants(fset, files)
	problems = append(problems, matchWants(wants, diags)...)
	for _, p := range problems {
		t.Errorf("%s", p)
	}
}

type lineKey struct {
	file string
	line int
}

type wantEntry struct {
	re  *regexp.Regexp
	pat string
}

// collectWants parses the // want annotations of every file. A comment
// whose first word is exactly "want" but that carries no parseable
// quoted regexp — a missing quote, a typo like `// want foo` — is a
// problem, not a silent no-op: an annotation the harness cannot read
// would otherwise let the finding it was written for disappear without
// failing the test.
func collectWants(fset *token.FileSet, files []*ast.File) (map[lineKey][]wantEntry, []string) {
	wants := make(map[lineKey][]wantEntry)
	var problems []string
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				// The annotation may be the whole comment or embedded at
				// its tail (a //binopt:ignore directive under test carries
				// its own want: `//binopt:ignore typo ... // want "..."`).
				idx := strings.Index(c.Text, "// want")
				if idx < 0 {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(c.Text[idx:], "//"))
				word, args, _ := strings.Cut(rest, " ")
				if word != "want" {
					continue // e.g. "// wants", not an annotation
				}
				pos := fset.Position(c.Pos())
				matches := wantRe.FindAllStringSubmatch(args, -1)
				if len(matches) == 0 {
					problems = append(problems, fmt.Sprintf(
						"%s: malformed want comment %q: no quoted regexp found (use // want \"pattern\" or `pattern`)",
						pos, c.Text))
					continue
				}
				for _, m := range matches {
					pat := m[1]
					if m[2] != "" {
						pat = m[2]
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						problems = append(problems, fmt.Sprintf("%s: bad want regexp %q: %v", pos, pat, err))
						continue
					}
					k := lineKey{pos.Filename, pos.Line}
					wants[k] = append(wants[k], wantEntry{re: re, pat: pat})
				}
			}
		}
	}
	return wants, problems
}

// matchWants pairs findings with annotations and returns every mismatch
// in both directions: unexpected findings and unmatched expectations.
func matchWants(wants map[lineKey][]wantEntry, diags []lint.Diagnostic) []string {
	var problems []string
	for _, d := range diags {
		k := lineKey{d.Pos.Filename, d.Pos.Line}
		matched := -1
		for i, w := range wants[k] {
			if w.re.MatchString(d.Message) {
				matched = i
				break
			}
		}
		if matched < 0 {
			problems = append(problems, fmt.Sprintf("%s: unexpected finding: %s: %s", d.Pos, d.Analyzer, d.Message))
			continue
		}
		wants[k] = append(wants[k][:matched], wants[k][matched+1:]...)
	}
	var keys []lineKey
	for k, res := range wants {
		if len(res) > 0 {
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].file != keys[j].file {
			return keys[i].file < keys[j].file
		}
		return keys[i].line < keys[j].line
	})
	for _, k := range keys {
		for _, w := range wants[k] {
			problems = append(problems, fmt.Sprintf("%s:%d: expected finding matching %q, got none", k.file, k.line, w.pat))
		}
	}
	return problems
}
