// Package b exercises the harness's multi-package loading: it imports
// sibling testdata package a, and the self-test analyzer needs a's type
// information to resolve the flagged callee.
package b

import "a"

func useMarked() int {
	return a.Marked() // want "call to a\.Marked"
}

func usePlain() int {
	return a.Plain()
}
