// Second file of package b: annotations in every file of a multi-file
// package are collected, not just the first.
package b

import "a"

var sink = a.Marked() // want "call to a\.Marked"
