// Package a is a helper package for the harness's own multi-package
// loader test: package b imports it by directory name.
package a

// Marked is the function the self-test analyzer flags calls to.
func Marked() int { return 42 }

// Plain is never flagged.
func Plain() int { return 7 }
