package linttest

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"

	"binopt/internal/lint"
)

// parseOne is a test helper: parse a single annotated source file.
func parseOne(t *testing.T, src string) (*token.FileSet, []*ast.File) {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "w.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return fset, []*ast.File{f}
}

func TestCollectWantsParsesBothQuoteForms(t *testing.T) {
	fset, files := parseOne(t, `package p

func f() {
	_ = 1 // want "first pattern" `+"`second [0-9]+`"+`
}
`)
	wants, problems := collectWants(fset, files)
	if len(problems) != 0 {
		t.Fatalf("unexpected problems: %v", problems)
	}
	k := lineKey{"w.go", 4}
	if got := len(wants[k]); got != 2 {
		t.Fatalf("want 2 patterns on line 4, got %d", got)
	}
	if wants[k][0].pat != "first pattern" || wants[k][1].pat != "second [0-9]+" {
		t.Fatalf("patterns parsed wrong: %q, %q", wants[k][0].pat, wants[k][1].pat)
	}
}

func TestCollectWantsFlagsMalformedComment(t *testing.T) {
	fset, files := parseOne(t, `package p

func f() {
	_ = 1 // want missing quotes entirely
	_ = 2 // wants more money (not an annotation)
	_ = 3 // want
}
`)
	_, problems := collectWants(fset, files)
	if len(problems) != 2 {
		t.Fatalf("want 2 malformed-comment problems (lines 4 and 6), got %d: %v", len(problems), problems)
	}
	for _, p := range problems {
		if !strings.Contains(p, "malformed want comment") {
			t.Errorf("problem %q does not mention malformed want comment", p)
		}
	}
	if !strings.Contains(problems[0], "w.go:4") || !strings.Contains(problems[1], "w.go:6") {
		t.Errorf("problems point at wrong lines: %v", problems)
	}
}

func TestCollectWantsFlagsBadRegexp(t *testing.T) {
	fset, files := parseOne(t, `package p

func f() {
	_ = 1 // want "unclosed [class"
}
`)
	_, problems := collectWants(fset, files)
	if len(problems) != 1 || !strings.Contains(problems[0], "bad want regexp") {
		t.Fatalf("want one bad-regexp problem, got %v", problems)
	}
}

func TestMatchWantsBothDirections(t *testing.T) {
	fset, files := parseOne(t, `package p

func f() {
	_ = 1 // want "seen finding"
	_ = 2 // want "never produced"
}
`)
	wants, problems := collectWants(fset, files)
	if len(problems) != 0 {
		t.Fatalf("unexpected collect problems: %v", problems)
	}
	diags := []lint.Diagnostic{
		{Analyzer: "demo", Pos: token.Position{Filename: "w.go", Line: 4}, Message: "a seen finding here"},
		{Analyzer: "demo", Pos: token.Position{Filename: "w.go", Line: 9}, Message: "surprise on line nine"},
	}
	got := matchWants(wants, diags)
	if len(got) != 2 {
		t.Fatalf("want 2 mismatch problems, got %d: %v", len(got), got)
	}
	if !strings.Contains(got[0], "unexpected finding") || !strings.Contains(got[0], "surprise") {
		t.Errorf("first problem should be the unexpected finding, got %q", got[0])
	}
	if !strings.Contains(got[1], `expected finding matching "never produced"`) {
		t.Errorf("second problem should be the unmatched expectation, got %q", got[1])
	}
}

// TestLoaderMultiPackage pins the multi-package layout: package b under
// testdata imports sibling package a by directory name, and annotations
// in b are checked against findings produced while analyzing b. The
// analyzer flags calls to a.Marked so the finding depends on the
// cross-package type information resolving.
func TestLoaderMultiPackage(t *testing.T) {
	a := &lint.Analyzer{
		Name: "callmark",
		Doc:  "flags calls to a.Marked (harness self-test)",
		Run: func(pass *lint.Pass) error {
			for _, f := range pass.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					call, ok := n.(*ast.CallExpr)
					if !ok {
						return true
					}
					if fn := lint.CalleeFunc(pass.TypesInfo, call); fn != nil &&
						fn.Name() == "Marked" && fn.Pkg() != nil && fn.Pkg().Path() == "a" {
						pass.Reportf(call.Pos(), "call to a.Marked")
					}
					return true
				})
			}
			return nil
		},
	}
	Run(t, "testdata", a, "b")
}
