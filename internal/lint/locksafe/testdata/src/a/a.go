package a

import "sync"

// Engine stands in for accel.Engine: locksafe recognises the receiver
// type by name so testdata needs no real accelerator.
type Engine struct{}

func (e *Engine) PriceOptions(n int) float64 { return float64(n) }

type shard struct {
	mu     sync.Mutex
	rw     sync.RWMutex
	jobs   chan int
	engine *Engine
}

func (s *shard) flagged() {
	s.mu.Lock()
	s.jobs <- 1 // want `channel send while s\.mu is locked`
	<-s.jobs    // want `channel receive while s\.mu is locked`
	s.mu.Unlock()
}

func (s *shard) flaggedSelect() {
	s.mu.Lock()
	defer s.mu.Unlock()
	select { // want `select while s\.mu is locked`
	case j := <-s.jobs:
		_ = j
	default:
	}
}

func (s *shard) flaggedEngine() float64 {
	s.rw.RLock()
	defer s.rw.RUnlock()
	return s.engine.PriceOptions(3) // want `call to Engine\.PriceOptions while s\.rw is locked`
}

func (s *shard) flaggedRange() {
	s.mu.Lock()
	for j := range s.jobs { // want `range over channel while s\.mu is locked`
		_ = j
	}
	s.mu.Unlock()
}

// unlockBeforeDispatch is the idiom the serving pool uses everywhere:
// detach under the lock, release, then block. No findings.
func (s *shard) unlockBeforeDispatch() {
	s.mu.Lock()
	n := 1
	s.mu.Unlock()
	s.jobs <- n
	_ = s.engine.PriceOptions(n)
}

// earlyReturnPath releases on the terminating branch; the fallthrough
// path still holds the lock but performs no blocking op under it.
func (s *shard) earlyReturnPath(closed bool) int {
	s.mu.Lock()
	if closed {
		s.mu.Unlock()
		return 0
	}
	n := cap(s.jobs)
	s.mu.Unlock()
	<-s.jobs
	return n
}

// goroutineDoesNotInheritLocks: the spawned body has its own state.
func (s *shard) goroutineDoesNotInheritLocks() {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() {
		s.jobs <- 1 // runs after Unlock on its own goroutine
	}()
}

// distinctLocks: holding rw does not taint mu's critical path.
func (s *shard) distinctLocks() {
	s.rw.RLock()
	s.rw.RUnlock()
	s.jobs <- 1
}

func (s *shard) suppressed() {
	s.mu.Lock()
	//binopt:ignore locksafe send is buffered and never blocks by construction
	s.jobs <- 1
	s.mu.Unlock()
}
