// Package locksafe flags code that performs a blocking rendezvous —
// a channel send or receive, a select, or a call into an accel.Engine —
// while holding a sync.Mutex or sync.RWMutex. In the serving pool those
// are the deadlock-and-latency couplings that turn one wedged shard
// into a stalled dispatcher: every existing hot path (batcher flush,
// breaker bookkeeping, metrics snapshots) deliberately unlocks before
// touching a channel, and this analyzer keeps it that way.
//
// The analysis is an intra-procedural, source-order approximation
// driven by the shared dataflow.Walker: Lock()/RLock() marks the
// receiver's lock held, Unlock()/RUnlock() releases it, defer Unlock()
// holds it to function end, and branches that terminate (return/panic)
// do not leak state past the branch. That is exactly enough to certify
// the unlock-before-dispatch idiom without whole-program may-alias
// analysis.
package locksafe

import (
	"go/ast"
	"go/token"
	"go/types"

	"binopt/internal/lint"
	"binopt/internal/lint/dataflow"
)

// Analyzer flags channel operations and Engine calls under a held mutex.
var Analyzer = &lint.Analyzer{
	Name: "locksafe",
	Doc: "flag channel send/receive/select and accel.Engine calls made while " +
		"a sync.Mutex or sync.RWMutex is held",
	Match: lint.MatchSuffix(
		"internal/serve", "internal/telemetry", "internal/faults",
		"internal/cluster", "internal/slo", "internal/omhist",
		"internal/obslog", "internal/scenario",
	),
	Run: run,
}

func run(pass *lint.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					newChecker(pass).check(n.Body)
				}
				return false // the checker walks nested literals itself
			case *ast.FuncLit:
				// Only reached for literals outside any declaration
				// (package-level var initialisers).
				newChecker(pass).check(n.Body)
				return false
			}
			return true
		})
	}
	return nil
}

// heldSet maps a lock expression's source text to the position where it
// was acquired. It is the checker's dataflow.State: cloning copies the
// map, merging unions it — a lock held on either of two joining paths
// is conservatively held after the join.
type heldSet map[string]token.Pos

func (h heldSet) CloneState() dataflow.State {
	c := make(heldSet, len(h))
	for k, v := range h {
		c[k] = v
	}
	return c
}

func (h heldSet) MergeState(o dataflow.State) dataflow.State {
	other := o.(heldSet)
	if len(other) == 0 {
		return h
	}
	out := h.CloneState().(heldSet)
	for k, v := range other {
		if _, ok := out[k]; !ok {
			out[k] = v
		}
	}
	return out
}

// checker implements dataflow.Client: Transfer tracks lock state and
// flags statement-level rendezvous (sends, selects, channel ranges);
// Expr flags receives and Engine calls inside expressions.
type checker struct {
	pass     *lint.Pass
	walker   *dataflow.Walker
	reported map[token.Pos]bool
}

func newChecker(pass *lint.Pass) *checker {
	c := &checker{pass: pass, reported: make(map[token.Pos]bool)}
	c.walker = &dataflow.Walker{Client: c}
	return c
}

func (c *checker) check(body *ast.BlockStmt) {
	c.walker.Walk(body, make(heldSet))
}

// Fresh starts goroutine bodies and function literals with no locks:
// they run at another time, without the spawning path's state.
func (c *checker) Fresh() dataflow.State { return make(heldSet) }

// Transfer folds lock operations into the held set and reports the
// statement-shaped violations.
func (c *checker) Transfer(s ast.Stmt, st dataflow.State) dataflow.State {
	held := st.(heldSet)
	switch s := s.(type) {
	case *ast.ExprStmt:
		return c.applyLockOps(s.X, held)
	case *ast.SendStmt:
		c.violation(s.Arrow, "channel send", held)
	case *ast.SelectStmt:
		c.violation(s.Select, "select", held)
	case *ast.RangeStmt:
		if t := c.pass.TypesInfo.TypeOf(s.X); t != nil {
			if _, isChan := t.Underlying().(*types.Chan); isChan {
				c.violation(s.For, "range over channel", held)
			}
		}
	}
	return held
}

// Expr scans an expression for violations under the current held set:
// receives, nested sends in literals, and Engine method calls.
func (c *checker) Expr(e ast.Expr, st dataflow.State) {
	held := st.(heldSet)
	c.walker.InspectExpr(e, st, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				c.violation(n.OpPos, "channel receive", held)
			}
		case *ast.CallExpr:
			if named := lint.RecvNamed(c.pass.TypesInfo, n); named != nil && named.Obj().Name() == "Engine" {
				fn := lint.CalleeFunc(c.pass.TypesInfo, n)
				c.violation(n.Pos(), "call to Engine."+fn.Name(), held)
			}
		}
		return true
	})
}

// applyLockOps updates the held set for Lock/Unlock calls appearing as
// a statement expression.
func (c *checker) applyLockOps(e ast.Expr, held heldSet) heldSet {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return held
	}
	name, ok := c.lockMethod(call)
	if !ok {
		return held
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return held
	}
	key := lint.ExprString(c.pass.Fset, sel.X)
	switch name {
	case "Lock", "RLock":
		held = held.CloneState().(heldSet)
		held[key] = call.Pos()
	case "Unlock", "RUnlock":
		held = held.CloneState().(heldSet)
		delete(held, key)
	}
	return held
}

// lockMethod reports whether the call is a (R)Lock/(R)Unlock on a
// sync.Mutex or sync.RWMutex (directly or through an embedded field).
func (c *checker) lockMethod(call *ast.CallExpr) (string, bool) {
	fn := lint.CalleeFunc(c.pass.TypesInfo, call)
	if fn == nil {
		return "", false
	}
	switch fn.Name() {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", false
	}
	if fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", false
	}
	return fn.Name(), true
}

// violation reports the blocking operation against every lock currently
// held, once per position.
func (c *checker) violation(pos token.Pos, what string, held heldSet) {
	if len(held) == 0 || c.reported[pos] {
		return
	}
	c.reported[pos] = true
	lock := ""
	for k := range held {
		if lock == "" || k < lock {
			lock = k // name the lexicographically first lock, deterministically
		}
	}
	c.pass.Reportf(pos, "%s while %s is locked (acquired at %s); unlock before blocking",
		what, lock, c.pass.Fset.Position(held[lock]))
}
