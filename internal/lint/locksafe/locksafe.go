// Package locksafe flags code that performs a blocking rendezvous —
// a channel send or receive, a select, or a call into an accel.Engine —
// while holding a sync.Mutex or sync.RWMutex. In the serving pool those
// are the deadlock-and-latency couplings that turn one wedged shard
// into a stalled dispatcher: every existing hot path (batcher flush,
// breaker bookkeeping, metrics snapshots) deliberately unlocks before
// touching a channel, and this analyzer keeps it that way.
//
// The analysis is an intra-procedural, source-order approximation:
// Lock()/RLock() marks the receiver's lock held, Unlock()/RUnlock()
// releases it, defer Unlock() holds it to function end, and branches
// that terminate (return/panic) do not leak state past the branch. That
// is exactly enough to certify the unlock-before-dispatch idiom without
// whole-program may-alias analysis.
package locksafe

import (
	"go/ast"
	"go/token"
	"go/types"

	"binopt/internal/lint"
)

// Analyzer flags channel operations and Engine calls under a held mutex.
var Analyzer = &lint.Analyzer{
	Name: "locksafe",
	Doc: "flag channel send/receive/select and accel.Engine calls made while " +
		"a sync.Mutex or sync.RWMutex is held",
	Match: lint.MatchSuffix(
		"internal/serve", "internal/telemetry", "internal/faults",
		"internal/cluster", "internal/slo", "internal/omhist",
		"internal/obslog", "internal/scenario",
	),
	Run: run,
}

func run(pass *lint.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if n.Body != nil {
					newChecker(pass).block(n.Body, make(heldSet))
				}
				return false // the checker walks nested literals itself
			case *ast.FuncLit:
				// Only reached for literals outside any declaration
				// (package-level var initialisers).
				newChecker(pass).block(n.Body, make(heldSet))
				return false
			}
			return true
		})
	}
	return nil
}

// heldSet maps a lock expression's source text to the position where it
// was acquired.
type heldSet map[string]token.Pos

// union merges the locks held on two merging control-flow paths: a lock
// held on either path is conservatively held after the join.
func union(a, b heldSet) heldSet {
	if len(b) == 0 {
		return a
	}
	out := a.clone()
	for k, v := range b {
		if _, ok := out[k]; !ok {
			out[k] = v
		}
	}
	return out
}

func (h heldSet) clone() heldSet {
	c := make(heldSet, len(h))
	for k, v := range h {
		c[k] = v
	}
	return c
}

type checker struct {
	pass     *lint.Pass
	reported map[token.Pos]bool
}

func newChecker(pass *lint.Pass) *checker {
	return &checker{pass: pass, reported: make(map[token.Pos]bool)}
}

// block walks statements in order, threading the held-lock state
// through; it returns the state at fallthrough exit and whether the
// block always terminates (return / panic / infinite select).
func (c *checker) block(b *ast.BlockStmt, held heldSet) (heldSet, bool) {
	if b == nil {
		return held, false
	}
	return c.stmts(b.List, held)
}

func (c *checker) stmts(list []ast.Stmt, held heldSet) (heldSet, bool) {
	for _, st := range list {
		var term bool
		held, term = c.stmt(st, held)
		if term {
			return held, true
		}
	}
	return held, false
}

func (c *checker) stmt(st ast.Stmt, held heldSet) (heldSet, bool) {
	switch st := st.(type) {
	case *ast.ExprStmt:
		c.expr(st.X, held)
		held = c.applyLockOps(st.X, held)
	case *ast.SendStmt:
		c.expr(st.Chan, held)
		c.expr(st.Value, held)
		c.violation(st.Arrow, "channel send", held)
	case *ast.AssignStmt:
		for _, e := range st.Rhs {
			c.expr(e, held)
		}
		for _, e := range st.Lhs {
			c.expr(e, held)
		}
	case *ast.DeferStmt:
		if name, ok := c.lockMethod(st.Call); ok && (name == "Unlock" || name == "RUnlock") {
			// Held until function end: nothing to release on this path.
			break
		}
		c.expr(st.Call, held)
	case *ast.GoStmt:
		// The goroutine body runs without the caller's locks; check it
		// with a fresh state.
		if lit, ok := st.Call.Fun.(*ast.FuncLit); ok {
			c.block(lit.Body, make(heldSet))
		}
		for _, a := range st.Call.Args {
			c.expr(a, held)
		}
	case *ast.ReturnStmt:
		for _, e := range st.Results {
			c.expr(e, held)
		}
		return held, true
	case *ast.BranchStmt:
		return held, st.Tok == token.GOTO // break/continue end this path's walk conservatively
	case *ast.BlockStmt:
		return c.block(st, held)
	case *ast.IfStmt:
		if st.Init != nil {
			held, _ = c.stmt(st.Init, held)
		}
		c.expr(st.Cond, held)
		thenHeld, thenTerm := c.block(st.Body, held.clone())
		elseHeld, elseTerm := held, false
		if st.Else != nil {
			elseHeld, elseTerm = c.stmt(st.Else, held.clone())
		}
		switch {
		case thenTerm && elseTerm:
			return held, true
		case thenTerm:
			return elseHeld, false
		case elseTerm:
			return thenHeld, false
		default:
			return union(thenHeld, elseHeld), false
		}
	case *ast.ForStmt:
		if st.Init != nil {
			held, _ = c.stmt(st.Init, held)
		}
		if st.Cond != nil {
			c.expr(st.Cond, held)
		}
		bodyHeld, _ := c.block(st.Body, held.clone())
		if st.Post != nil {
			c.stmt(st.Post, bodyHeld)
		}
		return union(held, bodyHeld), false
	case *ast.RangeStmt:
		c.expr(st.X, held)
		if t := c.pass.TypesInfo.TypeOf(st.X); t != nil {
			if _, isChan := t.Underlying().(*types.Chan); isChan {
				c.violation(st.For, "range over channel", held)
			}
		}
		bodyHeld, _ := c.block(st.Body, held.clone())
		return union(held, bodyHeld), false
	case *ast.SelectStmt:
		c.violation(st.Select, "select", held)
		for _, cl := range st.Body.List {
			if comm, ok := cl.(*ast.CommClause); ok {
				c.stmts(comm.Body, held.clone())
			}
		}
	case *ast.SwitchStmt:
		if st.Init != nil {
			held, _ = c.stmt(st.Init, held)
		}
		if st.Tag != nil {
			c.expr(st.Tag, held)
		}
		merged := held
		for _, cl := range st.Body.List {
			if cc, ok := cl.(*ast.CaseClause); ok {
				out, term := c.stmts(cc.Body, held.clone())
				if !term {
					merged = union(merged, out)
				}
			}
		}
		return merged, false
	case *ast.TypeSwitchStmt:
		for _, cl := range st.Body.List {
			if cc, ok := cl.(*ast.CaseClause); ok {
				c.stmts(cc.Body, held.clone())
			}
		}
	case *ast.LabeledStmt:
		return c.stmt(st.Stmt, held)
	case *ast.DeclStmt:
		if gd, ok := st.Decl.(*ast.GenDecl); ok {
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, v := range vs.Values {
						c.expr(v, held)
					}
				}
			}
		}
	}
	return held, false
}

// applyLockOps updates the held set for Lock/Unlock calls appearing as
// a statement expression.
func (c *checker) applyLockOps(e ast.Expr, held heldSet) heldSet {
	call, ok := ast.Unparen(e).(*ast.CallExpr)
	if !ok {
		return held
	}
	name, ok := c.lockMethod(call)
	if !ok {
		return held
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return held
	}
	key := lint.ExprString(c.pass.Fset, sel.X)
	switch name {
	case "Lock", "RLock":
		held = held.clone()
		held[key] = call.Pos()
	case "Unlock", "RUnlock":
		held = held.clone()
		delete(held, key)
	}
	return held
}

// lockMethod reports whether the call is a (R)Lock/(R)Unlock on a
// sync.Mutex or sync.RWMutex (directly or through an embedded field).
func (c *checker) lockMethod(call *ast.CallExpr) (string, bool) {
	fn := lint.CalleeFunc(c.pass.TypesInfo, call)
	if fn == nil {
		return "", false
	}
	switch fn.Name() {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", false
	}
	if fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", false
	}
	return fn.Name(), true
}

// expr scans an expression for violations under the current held set:
// receives, nested sends in literals, and Engine method calls.
func (c *checker) expr(e ast.Expr, held heldSet) {
	if e == nil {
		return
	}
	ast.Inspect(e, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// A literal's body executes later; check it with no locks
			// unless it is invoked in place, which the CallExpr case
			// still sees as an indirect call (conservatively skipped).
			c.block(n.Body, make(heldSet))
			return false
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				c.violation(n.OpPos, "channel receive", held)
			}
		case *ast.CallExpr:
			if named := lint.RecvNamed(c.pass.TypesInfo, n); named != nil && named.Obj().Name() == "Engine" {
				fn := lint.CalleeFunc(c.pass.TypesInfo, n)
				c.violation(n.Pos(), "call to Engine."+fn.Name(), held)
			}
		}
		return true
	})
}

// violation reports the blocking operation against every lock currently
// held, once per position.
func (c *checker) violation(pos token.Pos, what string, held heldSet) {
	if len(held) == 0 || c.reported[pos] {
		return
	}
	c.reported[pos] = true
	lock := ""
	for k := range held {
		if lock == "" || k < lock {
			lock = k // name the lexicographically first lock, deterministically
		}
	}
	c.pass.Reportf(pos, "%s while %s is locked (acquired at %s); unlock before blocking",
		what, lock, c.pass.Fset.Position(held[lock]))
}
