package locksafe

import (
	"testing"

	"binopt/internal/lint/linttest"
)

func TestLocksafe(t *testing.T) {
	linttest.Run(t, "testdata", Analyzer, "a")
}
