package kerneldet

import (
	"testing"

	"binopt/internal/lint/linttest"
)

func TestKerneldet(t *testing.T) {
	linttest.Run(t, "testdata", Analyzer, "kd")
}
