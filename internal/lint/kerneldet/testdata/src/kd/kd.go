package kd

import (
	"errors"
	"math"
	"math/rand"
	"time"

	"opencl"
)

var calibration = map[string]float64{"fma": 1}

var scaleBias = 1.0

var errSaturated = errors.New("saturated")

func badKernel() *opencl.Kernel {
	return opencl.NewKernel("bad", true, func(wi *opencl.WorkItem) {
		t0 := time.Now() // want `calls time\.Now`
		_ = t0
		jitter := rand.Float64() // want `shared math/rand source`
		_ = jitter
		v := math.FMA(2, 3, 4) // want `calls math\.FMA`
		_ = v
		for k, f := range calibration { // want `ranges over a map` `touches package-level variable calibration`
			_, _ = k, f
		}
		_ = scaleBias // want `touches package-level variable scaleBias`
		helper(wi)
	})
}

// helper is reachable from the kernel body, so its violations count.
func helper(wi *opencl.WorkItem) {
	wi.StoreLocal(0, 0, rand.Float64()) // want `shared math/rand source`
	if err := validate(); err != nil {
		_ = err
	}
}

// validate is reachable transitively; error sentinels are tolerated.
func validate() error {
	return errSaturated
}

// goodKernel is a faithful miniature of IV.B: pure arithmetic over
// arguments, a seeded generator built outside, and no global state.
func goodKernel(seed int64) *opencl.Kernel {
	rng := rand.New(rand.NewSource(seed))
	noise := rng.Float64() // host-side, outside the kernel body
	_ = noise
	return opencl.NewKernel("good", true, func(wi *opencl.WorkItem) {
		k := wi.LocalID()
		n := wi.Int(3)
		s := math.Pow(1.01, float64(2*k-n))
		wi.StoreLocal(0, k, payoff(s))
		wi.Barrier()
	})
}

// payoff is reachable but clean.
func payoff(s float64) float64 {
	if s > 100 {
		return s - 100
	}
	return 0
}

// hostSide is NOT reachable from any kernel: the same constructs are
// fine here.
func hostSide() float64 {
	total := 0.0
	for _, v := range calibration {
		total += v
	}
	total += rand.Float64() * scaleBias
	_ = time.Now()
	return math.FMA(total, 2, 1)
}

func suppressedKernel() *opencl.Kernel {
	return opencl.NewKernel("annotated", false, func(wi *opencl.WorkItem) {
		//binopt:ignore kerneldet bias is frozen before any kernel launches
		_ = scaleBias
	})
}

// markedSweep is a host-side kernel realisation: the //binopt:kernel
// directive makes it a determinism root without an opencl.NewKernel
// call.
//
//binopt:kernel miniature backward sweep (testdata)
func markedSweep(v []float64, pu, pd float64) {
	_ = time.Now() // want `calls time\.Now`
	for k := range v[:len(v)-1] {
		v[k] = pu*v[k+1] + pd*v[k]
	}
	markedHelper(v)
}

// markedHelper is reachable from the marked root, so its violations
// count.
func markedHelper(v []float64) {
	v[0] *= scaleBias // want `touches package-level variable scaleBias`
}

// markedSkew has kernel-looking text in its doc prose but no directive
// line; it must NOT become a root. (A "binopt:kernel sweep" mention in
// running text is not a marker.)
func markedSkew() float64 {
	return rand.Float64() * scaleBias
}
