// Package kerneldet enforces determinism on kernel bodies. The §IV
// parity probe asserts bit-identical prices across the FPGA, GPU and
// CPU platforms; that only holds if every function reachable from a
// kernel body (the function literal handed to opencl.NewKernel) is a
// pure function of its inputs. Four nondeterminism vectors are flagged:
//
//   - map iteration: Go randomises range order, so any map range can
//     reorder floating-point accumulation between runs;
//   - wall-clock and PRNG calls: time.Now / global math/rand draws make
//     a kernel's output depend on when and how often it ran;
//   - mutable package-level state: a kernel reading or writing a global
//     var couples work-items and replays;
//   - math.FMA: fused multiply-add rounds once where the separate
//     operations round twice — exactly the class of per-platform
//     contraction difference the parity probe exists to catch.
//
// The analysis is reachability-based within the package. Roots are the
// function literals handed to opencl.NewKernel plus any function whose
// doc comment carries a //binopt:kernel directive — the host-side
// kernel realisations (the lattice engine's scalar, quad and tiled
// sweeps) that implement the same arithmetic without flowing through
// the simulated runtime. Statically-resolved calls to same-package
// functions extend the checked set from either kind of root.
package kerneldet

import (
	"go/ast"
	"go/types"
	"strings"

	"binopt/internal/lint"
)

// Analyzer flags nondeterminism reachable from opencl.NewKernel bodies
// or from functions marked //binopt:kernel.
var Analyzer = &lint.Analyzer{
	Name: "kerneldet",
	Doc: "kernel bodies (opencl.NewKernel literals and //binopt:kernel " +
		"functions) and the package functions they call must be " +
		"deterministic: no map iteration, no time.Now or unseeded math/rand, " +
		"no mutable package-level state, no math.FMA",
	Run: run,
}

// kernelMark is the doc-comment directive declaring a function a
// host-side kernel realisation and therefore a determinism root.
const kernelMark = "//binopt:kernel"

func run(pass *lint.Pass) error {
	// Index this package's function declarations by their object so
	// calls resolve to bodies.
	decls := make(map[*types.Func]*ast.FuncDecl)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			if obj, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func); ok {
				decls[obj] = fd
			}
		}
	}

	// Roots: function literals passed as the kernel body argument of
	// opencl.NewKernel (recognised by name so testdata can stub the
	// runtime package), plus declarations marked //binopt:kernel.
	var roots []ast.Node
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			if fd, ok := d.(*ast.FuncDecl); ok && fd.Body != nil && hasKernelMark(fd.Doc) {
				roots = append(roots, fd.Body)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := lint.CalleeFunc(pass.TypesInfo, call)
			if fn == nil || fn.Name() != "NewKernel" || fn.Pkg() == nil || fn.Pkg().Name() != "opencl" {
				return true
			}
			if len(call.Args) < 3 {
				return true
			}
			if lit, ok := ast.Unparen(call.Args[2]).(*ast.FuncLit); ok {
				roots = append(roots, lit)
			}
			return true
		})
	}
	if len(roots) == 0 {
		return nil
	}

	// Breadth-first reachability over statically-resolved same-package
	// calls. Function literals nested in a reachable body are walked in
	// place by ast.Inspect.
	visited := make(map[ast.Node]bool)
	queue := roots
	for len(queue) > 0 {
		body := queue[0]
		queue = queue[1:]
		if visited[body] {
			continue
		}
		visited[body] = true
		check(pass, body)
		ast.Inspect(body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := lint.CalleeFunc(pass.TypesInfo, call)
			if fn == nil {
				return true
			}
			if fd, ok := decls[fn]; ok && !visited[fd.Body] {
				queue = append(queue, fd.Body)
			}
			return true
		})
	}
	return nil
}

// hasKernelMark reports whether a doc comment carries the
// //binopt:kernel directive (a line comment starting with the marker;
// trailing free text describes the kernel).
func hasKernelMark(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		if strings.HasPrefix(c.Text, kernelMark) {
			rest := c.Text[len(kernelMark):]
			if rest == "" || rest[0] == ' ' || rest[0] == '\t' {
				return true
			}
		}
	}
	return false
}

// check walks one reachable body and reports determinism violations.
func check(pass *lint.Pass, body ast.Node) {
	info := pass.TypesInfo
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.RangeStmt:
			if t := info.TypeOf(n.X); t != nil {
				if _, isMap := t.Underlying().(*types.Map); isMap {
					pass.Reportf(n.For, "kernel-reachable code ranges over a map; "+
						"iteration order is randomised and breaks replayable pricing")
				}
			}
		case *ast.CallExpr:
			switch {
			case lint.IsPkgFunc(info, n, "time", "Now", "Since", "Until", "Sleep", "After", "Tick", "NewTimer", "NewTicker"):
				pass.Reportf(n.Pos(), "kernel-reachable code calls time.%s; "+
					"kernels must be pure functions of their arguments",
					lint.CalleeFunc(info, n).Name())
			case isGlobalRand(info, n):
				pass.Reportf(n.Pos(), "kernel-reachable code draws from the shared math/rand source; "+
					"use an explicitly seeded *rand.Rand outside the kernel")
			case lint.IsPkgFunc(info, n, "math", "FMA"):
				pass.Reportf(n.Pos(), "kernel-reachable code calls math.FMA; "+
					"fused contraction differs across platforms and breaks bit parity")
			}
		case *ast.Ident:
			if v, ok := info.Uses[n].(*types.Var); ok && isMutableGlobal(v) {
				pass.Reportf(n.Pos(), "kernel-reachable code touches package-level variable %s; "+
					"kernels must not read or write mutable global state", v.Name())
			}
		}
		return true
	})
}

// isGlobalRand matches package-level draws from math/rand or
// math/rand/v2 — the constructors for explicitly-seeded generators are
// allowed.
func isGlobalRand(info *types.Info, call *ast.CallExpr) bool {
	fn := lint.CalleeFunc(info, call)
	if fn == nil || fn.Pkg() == nil {
		return false
	}
	path := fn.Pkg().Path()
	if path != "math/rand" && path != "math/rand/v2" {
		return false
	}
	if fn.Type().(*types.Signature).Recv() != nil {
		return false // methods on a seeded *rand.Rand are deterministic
	}
	switch fn.Name() {
	case "New", "NewSource", "NewZipf", "NewPCG", "NewChaCha8":
		return false
	}
	return true
}

// isMutableGlobal reports whether v is a package-level var. Error
// sentinels are tolerated: comparing against a fixed error value is
// deterministic and pervasive.
func isMutableGlobal(v *types.Var) bool {
	if v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
		return false
	}
	if named, ok := v.Type().(*types.Named); ok && named.Obj().Name() == "error" {
		return false
	}
	if types.Identical(v.Type(), types.Universe.Lookup("error").Type()) {
		return false
	}
	return true
}
