package a

import (
	"errors"
	"fmt"
	"strings"
)

func enqueue() error           { return nil }
func price() (float64, error)  { return 0, nil }
func readAll() ([]byte, error) { return nil, nil }

// A statement-position call whose error falls on the floor.
func fireAndForget() {
	enqueue() // want "error result of enqueue is discarded"
}

// The explicit lone discard is the sanctioned idiom: exempt.
func consideredAndDeclined() {
	_ = enqueue()
}

// Deferred calls are out of scope: the error has nowhere to go.
func deferredClose() {
	defer enqueue()
}

// fmt printers and in-memory writers never fail usefully: exempt.
func printers(b *strings.Builder) {
	fmt.Println("tick")
	b.WriteString("tick")
}

// Keeping the value while blanking its error.
func keepValueDropError() float64 {
	v, _ := price() // want "error result of price is blanked"
	return v
}

// Blanking everything is an explicit full discard: exempt.
func fullDiscard() {
	_, _ = price()
}

// Handling the error properly: clean.
func handled() (float64, error) {
	v, err := price()
	if err != nil {
		return 0, err
	}
	return v, nil
}

// The shadowed-err bug: the first assignment is never checked.
func shadowed() error {
	_, err := price() // want "err assigned here is never checked"
	_, err = readAll()
	return err
}

// An error checked on every path is clean even when reassigned.
func checkedTwice() error {
	_, err := price()
	if err != nil {
		return err
	}
	_, err = readAll()
	return err
}

// A tail assignment dropped at function end.
func droppedTail() {
	err := enqueue()
	if err != nil {
		return
	}
	err = enqueue() // want "err assigned here is never checked"
}

// Capture by a closure suspends judgement: the read happens later.
func escapes() func() error {
	err := errors.New("pending")
	return func() error { return err }
}

// Inside a goroutine literal the same chains run.
func inGoroutine(done chan struct{}) {
	go func() {
		defer close(done)
		err := enqueue() // want "err assigned here is never checked"
		_ = done
		err = nil
		_ = err
	}()
}

// The suppressed site carries its reason.
func bestEffortFlush() {
	//binopt:ignore errdrop best-effort flush on shutdown, node is already draining
	enqueue()
}
