package errdrop

import (
	"testing"

	"binopt/internal/lint/linttest"
)

func TestErrdrop(t *testing.T) {
	linttest.Run(t, "testdata", Analyzer, "a")
}
