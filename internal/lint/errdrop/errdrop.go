// Package errdrop flags dropped and shadowed errors in the code whose
// failures corrupt results rather than crash: the kernel-reachable path
// (accel, opencl, lattice) and the joules-accounting path (telemetry,
// scenario). A pricing kernel that silently ignores an enqueue error
// returns stale lattice values as if they were fresh; an energy ledger
// that drops a scrape error under-reports joules with no trace. Three
// shapes are flagged:
//
//   - a call statement whose error result falls on the floor
//     (`enqueue(k)` where enqueue returns error);
//   - a tuple assignment that keeps the value but blanks the error
//     (`v, _ := price(...)`);
//   - an error assigned and then overwritten or abandoned before any
//     read — the shadowed-err bug, found via the dataflow layer's
//     def-use chains (a definition with no reaching use).
//
// An explicit lone `_ = f()` is exempt: it is the language's idiom for
// "I considered this error and decline it", and forcing a directive on
// top adds nothing. fmt printers and the never-failing writers
// (strings.Builder, bytes.Buffer, hash.Hash) are exempt for the same
// reason.
package errdrop

import (
	"go/ast"
	"go/types"
	"strings"

	"binopt/internal/lint"
	"binopt/internal/lint/dataflow"
)

// Analyzer flags discarded and shadowed errors in kernel-reachable and
// joules-accounting packages.
var Analyzer = &lint.Analyzer{
	Name: "errdrop",
	Doc: "flag discarded error results and error assignments that are " +
		"overwritten or dropped before being checked",
	Match: lint.MatchSuffix(
		"internal/accel", "internal/opencl", "internal/lattice",
		"internal/scenario", "internal/telemetry",
	),
	Run: run,
}

var errorType = types.Universe.Lookup("error").Type()

func run(pass *lint.Pass) error {
	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				checkBareCall(pass, n)
			case *ast.AssignStmt:
				checkBlankedError(pass, n)
			case *ast.FuncDecl:
				checkShadowedErr(pass, n)
			case *ast.FuncLit:
				checkShadowedErr(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkBareCall flags a statement-position call whose results include
// an error nobody receives.
func checkBareCall(pass *lint.Pass, s *ast.ExprStmt) {
	call, ok := ast.Unparen(s.X).(*ast.CallExpr)
	if !ok || !returnsError(pass.TypesInfo, call) || exemptCallee(pass.TypesInfo, call) {
		return
	}
	pass.Reportf(call.Pos(),
		"error result of %s is discarded; check it, or assign to _ explicitly if it truly cannot matter",
		calleeLabel(pass, call))
}

// checkBlankedError flags `v, _ := f()` — keeping the value while
// blanking the error that says whether the value is any good.
func checkBlankedError(pass *lint.Pass, n *ast.AssignStmt) {
	if len(n.Rhs) != 1 || len(n.Lhs) < 2 {
		return
	}
	call, ok := ast.Unparen(n.Rhs[0]).(*ast.CallExpr)
	if !ok || exemptCallee(pass.TypesInfo, call) {
		return
	}
	tuple, ok := pass.TypesInfo.TypeOf(call).(*types.Tuple)
	if !ok || tuple.Len() != len(n.Lhs) {
		return
	}
	kept := false
	for _, lhs := range n.Lhs {
		if id, ok := ast.Unparen(lhs).(*ast.Ident); !ok || id.Name != "_" {
			kept = true
		}
	}
	if !kept {
		return // all results blanked: an explicit full discard
	}
	for i, lhs := range n.Lhs {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok || id.Name != "_" {
			continue
		}
		if types.Identical(tuple.At(i).Type(), errorType) {
			pass.Reportf(id.Pos(),
				"error result of %s is blanked while its value is kept; a kept value with a "+
					"dropped error is a stale result wearing a fresh timestamp",
				calleeLabel(pass, call))
		}
	}
}

// checkShadowedErr flags error-typed definitions that no use ever
// reaches: assigned, then overwritten or abandoned unchecked.
func checkShadowedErr(pass *lint.Pass, fn ast.Node) {
	ch := dataflow.BuildChains(fn, pass.TypesInfo)
	for _, d := range ch.Defs {
		if d.Ident == nil || d.Rhs == nil || len(d.Uses) > 0 {
			continue
		}
		if ch.Escaped[d.Obj] || !types.Identical(d.Obj.Type(), errorType) {
			continue
		}
		pass.Reportf(d.Ident.Pos(),
			"%s assigned here is never checked: the value is overwritten or dropped "+
				"before any read",
			d.Obj.Name())
	}
}

// returnsError reports whether any of the call's results is an error.
func returnsError(info *types.Info, call *ast.CallExpr) bool {
	t := info.TypeOf(call)
	switch t := t.(type) {
	case nil:
		return false
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if types.Identical(t.At(i).Type(), errorType) {
				return true
			}
		}
		return false
	default:
		return types.Identical(t, errorType)
	}
}

// exemptCallee reports the never-fails callees whose errors exist only
// to satisfy interfaces: fmt printers, and writes to in-memory sinks.
func exemptCallee(info *types.Info, call *ast.CallExpr) bool {
	fn := lint.CalleeFunc(info, call)
	if fn == nil {
		return false
	}
	if fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
		return true
	}
	if named := lint.RecvNamed(info, call); named != nil {
		switch named.Obj().Name() {
		case "Builder", "Buffer", "Hash":
			return true
		}
	}
	return false
}

// calleeLabel names the callee for messages.
func calleeLabel(pass *lint.Pass, call *ast.CallExpr) string {
	if fn := lint.CalleeFunc(pass.TypesInfo, call); fn != nil {
		return fn.Name()
	}
	return lint.ExprString(pass.Fset, call.Fun)
}
