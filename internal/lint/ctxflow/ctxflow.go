// Package ctxflow enforces context threading on the fabric's request
// paths. A node that prices, routes, or scrapes on behalf of an
// incoming request must do so under that request's context: a
// context.Background() (or TODO()) minted mid-path detaches the work
// from the caller's deadline and from fleet shutdown, which is exactly
// how a closed Router ends up waiting out a full heartbeat timeout. The
// dual failure — accepting a ctx parameter and then never consulting
// it — is flagged too, because an ignored parameter reads as cancellable
// at every call site while behaving like Background underneath.
//
// Detection of unused ctx parameters rides the dataflow layer's def-use
// chains: the parameter's entry definition must reach at least one use,
// or escape into a closure (closures run later; the chains cannot see
// their reads, so capture counts as use).
package ctxflow

import (
	"go/ast"
	"go/types"
	"strings"

	"binopt/internal/lint"
	"binopt/internal/lint/dataflow"
)

// Analyzer flags detached contexts and ignored ctx parameters on
// request paths.
var Analyzer = &lint.Analyzer{
	Name: "ctxflow",
	Doc: "flag context.Background()/context.TODO() in request-path packages and " +
		"context parameters that are accepted but never used",
	Match: lint.MatchSuffix(
		"internal/serve", "internal/cluster", "internal/scenario",
	),
	Run: run,
}

func run(pass *lint.Pass) error {
	for _, f := range pass.Files {
		if strings.HasSuffix(pass.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue // tests drive handlers directly; Background is their job
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if lint.IsPkgFunc(pass.TypesInfo, n, "context", "Background", "TODO") {
					fn := lint.CalleeFunc(pass.TypesInfo, n)
					pass.Reportf(n.Pos(),
						"context.%s() on a request path detaches this work from caller "+
							"deadlines and shutdown; thread the incoming ctx or derive from a lifetime ctx",
						fn.Name())
				}
			case *ast.FuncDecl:
				checkUnusedCtxParam(pass, n)
			}
			return true
		})
	}
	return nil
}

// checkUnusedCtxParam reports a context.Context parameter whose entry
// definition reaches no use and does not escape into a closure.
func checkUnusedCtxParam(pass *lint.Pass, fn *ast.FuncDecl) {
	if fn.Body == nil || fn.Type.Params == nil {
		return
	}
	var ctxObjs []*types.Var
	for _, field := range fn.Type.Params.List {
		for _, name := range field.Names {
			if name.Name == "_" {
				continue // explicitly discarded, e.g. to satisfy an interface
			}
			obj, ok := pass.TypesInfo.Defs[name].(*types.Var)
			if ok && isContextType(obj.Type()) {
				ctxObjs = append(ctxObjs, obj)
			}
		}
	}
	if len(ctxObjs) == 0 {
		return
	}
	ch := dataflow.BuildChains(fn, pass.TypesInfo)
	for _, obj := range ctxObjs {
		if ch.Escaped[obj] {
			continue // captured by a closure: used at a time we cannot see
		}
		used := false
		for _, d := range ch.Defs {
			if d.Obj == obj && len(d.Uses) > 0 {
				used = true
				break
			}
		}
		if !used {
			pass.Reportf(obj.Pos(),
				"context parameter %s is never used: callers read this signature as "+
					"cancellable, but the body behaves like context.Background(); thread it or drop it",
				obj.Name())
		}
	}
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Name() == "Context" && obj.Pkg() != nil && obj.Pkg().Path() == "context"
}
