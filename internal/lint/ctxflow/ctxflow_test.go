package ctxflow

import (
	"testing"

	"binopt/internal/lint/linttest"
)

func TestCtxflow(t *testing.T) {
	linttest.Run(t, "testdata", Analyzer, "a")
}
