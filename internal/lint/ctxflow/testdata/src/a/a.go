package a

import "context"

func doWork(ctx context.Context) error { _ = ctx; return nil }

// Detached contexts minted mid-path.
func detached() error {
	ctx := context.Background() // want `context\.Background\(\) on a request path`
	return doWork(ctx)
}

func todoDetached() error {
	return doWork(context.TODO()) // want `context\.TODO\(\) on a request path`
}

// Suppressed with a written reason: stays quiet.
func lifetimeRoot() context.Context {
	//binopt:ignore ctxflow process lifetime root created once at startup
	return context.Background()
}

// A ctx parameter that is never consulted.
func ignoresCtx(ctx context.Context, n int) int { // want `context parameter ctx is never used`
	return n * 2
}

// Threading the ctx into a downstream call counts as use.
func threadsCtx(ctx context.Context) error {
	return doWork(ctx)
}

// Capture by a closure counts as use: the goroutine reads it later.
func capturesCtx(ctx context.Context, done chan struct{}) {
	go func() {
		<-ctx.Done()
		close(done)
	}()
}

// A blank parameter is an explicit discard, not a silent one.
func blankCtx(_ context.Context, n int) int {
	return n + 1
}

// Selecting on ctx.Done directly is also a use.
func selectsCtx(ctx context.Context, work chan int) int {
	select {
	case v := <-work:
		return v
	case <-ctx.Done():
		return 0
	}
}
