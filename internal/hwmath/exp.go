package hwmath

import (
	"math"

	"binopt/internal/mathx"
)

// ExpCore models a hardware e^x operator: a range-reduced exp2 evaluation
// with limited fractional precision. The binomial kernels use it for the
// per-option factors exp(-sigma*sqrt(dt)) and exp(-r*dt); with the default
// widths it is faithful to double precision well beyond the needs of the
// application, matching the paper's finding that only the Power operator
// was problematic.
type ExpCore struct {
	Name        string
	FracBits    uint // fractional bits of the exp2 argument after reduction
	LatencyCyc  int
	singleRound bool // round the result to float32 (single-precision builds)
}

// Exp64 is the double-precision exponential core.
var Exp64 = ExpCore{Name: "exp-dp", FracBits: 52, LatencyCyc: 17}

// Exp32 is the single-precision exponential core used by the float32
// kernel variants.
var Exp32 = ExpCore{Name: "exp-sp", FracBits: 23, LatencyCyc: 12, singleRound: true}

// Exp computes e^x through the emulated datapath.
func (c ExpCore) Exp(x float64) float64 {
	if math.IsNaN(x) || math.IsInf(x, 0) {
		return math.Exp(x)
	}
	w := x * math.Log2E
	ip, fp := math.Modf(w)
	if c.FracBits < 52 {
		scale := math.Ldexp(1, int(c.FracBits))
		fp = math.Round(fp*scale) / scale
	}
	r := math.Ldexp(math.Exp2(fp), int(ip))
	if c.singleRound {
		r = mathx.RoundTo32(r)
	}
	return r
}

// SqrtCore models the hardware square root, which vendor FPGA libraries
// implement correctly rounded; it exists so the HLS resource model can
// account for its area and latency explicitly.
type SqrtCore struct {
	Name       string
	LatencyCyc int
}

// Sqrt64 is the double-precision square-root core.
var Sqrt64 = SqrtCore{Name: "sqrt-dp", LatencyCyc: 28}

// Sqrt computes the square root (correctly rounded).
func (SqrtCore) Sqrt(x float64) float64 { return math.Sqrt(x) }
