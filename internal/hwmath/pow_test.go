package hwmath

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestAccurateCoreMatchesMathPow(t *testing.T) {
	bases := []float64{1.0062, 0.9938, 1.5, 2.0, 100.0}
	for _, b := range bases {
		for k := -1024; k <= 1024; k += 37 {
			got := Accurate13SP1.Pow(b, float64(k))
			want := math.Pow(b, float64(k))
			rel := math.Abs(got-want) / math.Abs(want)
			// The exp2(y*log2 x) datapath amplifies the one rounding of
			// y*log2(x) by |w|, so ~1e-13 is the double-precision floor
			// at |w| ~ 500.
			if rel > 1e-12 {
				t.Fatalf("accurate core: pow(%v,%d) rel err %g", b, k, rel)
			}
		}
	}
}

func TestFlawedCoreErrorMagnitude(t *testing.T) {
	// The up-factor of a 1024-step CRR tree at sigma=0.2, T=0.5.
	u := math.Exp(0.2 * math.Sqrt(0.5/1024))
	worst := Flawed13.WorstRelError(u, 1024)
	// Calibration target: leaf relative error in the 1e-6..1e-4 band,
	// which propagates to ~1e-3 absolute price RMSE at S~100 (experiment
	// E4 checks the end-to-end figure).
	if worst < 1e-6 || worst > 1e-4 {
		t.Errorf("flawed core worst leaf rel error = %g, want within [1e-6, 1e-4]", worst)
	}
	// The accurate core must be at least two orders of magnitude better.
	accWorst := Accurate13SP1.WorstRelError(u, 1024)
	if accWorst*100 > worst {
		t.Errorf("accurate core (%g) not clearly better than flawed (%g)", accWorst, worst)
	}
}

func TestFlawedCoreErrorGrowsWithExponent(t *testing.T) {
	u := 1.00625
	small := Flawed13.WorstRelError(u, 16)
	large := Flawed13.WorstRelError(u, 1024)
	if large < small {
		t.Errorf("error should grow with |y|: n=16 gives %g, n=1024 gives %g", small, large)
	}
}

func TestPowSpecialCases(t *testing.T) {
	if got := Flawed13.Pow(2, 0); got != 1 {
		t.Errorf("x^0 = %v, want 1", got)
	}
	if got := Flawed13.Pow(0, 2); got != 0 {
		t.Errorf("0^2 = %v, want 0 (IEEE fallback)", got)
	}
	if got := Flawed13.Pow(-2, 2); got != 4 {
		t.Errorf("(-2)^2 = %v, want 4 (IEEE fallback)", got)
	}
	if got := Flawed13.Pow(math.NaN(), 2); !math.IsNaN(got) {
		t.Errorf("NaN^2 = %v", got)
	}
	if got := Flawed13.Pow(math.Inf(1), 2); !math.IsInf(got, 1) {
		t.Errorf("Inf^2 = %v", got)
	}
}

func TestPowExactPowersOfTwo(t *testing.T) {
	// log2 of a power of two is exact in any precision >= needed bits, so
	// even the flawed core is exact there.
	for k := -10; k <= 10; k++ {
		got := Flawed13.Pow(2, float64(k))
		want := math.Ldexp(1, k)
		if got != want {
			t.Errorf("2^%d = %v, want %v", k, got, want)
		}
	}
}

func TestPowMonotoneInExponent(t *testing.T) {
	// For base > 1 the emulated core must remain monotone over integer
	// exponents (a non-monotone pow would corrupt the tree ordering).
	u := 1.0101
	prev := Flawed13.Pow(u, -512)
	for k := -511; k <= 512; k++ {
		cur := Flawed13.Pow(u, float64(k))
		if cur <= prev {
			t.Fatalf("pow not monotone at k=%d: %v <= %v", k, cur, prev)
		}
		prev = cur
	}
}

func TestRelErrorProperty(t *testing.T) {
	f := func(rawB, rawY float64) bool {
		b := 0.5 + math.Abs(math.Mod(rawB, 2))
		y := math.Mod(rawY, 1024)
		return Flawed13.RelError(b, y) >= 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestPowCoreString(t *testing.T) {
	s := Flawed13.String()
	if !strings.Contains(s, "altera-13.0-pow") || !strings.Contains(s, "log=16b") {
		t.Errorf("String() = %q", s)
	}
}

func TestExpCores(t *testing.T) {
	for _, x := range []float64{-5, -0.001, 0, 0.001, 1, 5} {
		want := math.Exp(x)
		if got := Exp64.Exp(x); math.Abs(got-want) > 1e-13*want {
			t.Errorf("Exp64(%v) = %v, want %v", x, got, want)
		}
		if got := Exp32.Exp(x); math.Abs(got-want) > 1e-6*want {
			t.Errorf("Exp32(%v) = %v too far from %v", x, got, want)
		}
		if got := Exp32.Exp(x); got != float64(float32(got)) {
			t.Errorf("Exp32 result %v is not a float32 value", got)
		}
	}
	if got := Exp64.Exp(math.Inf(1)); !math.IsInf(got, 1) {
		t.Errorf("Exp64(+Inf) = %v", got)
	}
	if got := Exp64.Exp(math.NaN()); !math.IsNaN(got) {
		t.Errorf("Exp64(NaN) = %v", got)
	}
}

func TestSqrtCore(t *testing.T) {
	if got := Sqrt64.Sqrt(9); got != 3 {
		t.Errorf("Sqrt(9) = %v", got)
	}
}
