package slo

import (
	"testing"
	"time"
)

// fakeClock drives the monitor deterministically.
type fakeClock struct{ t time.Time }

func (c *fakeClock) now() time.Time          { return c.t }
func (c *fakeClock) advance(d time.Duration) { c.t = c.t.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(1700000000, 0)} }
func opts(c *fakeClock, extra Options) Options {
	extra.Now = c.now
	if extra.FastWindow == 0 {
		extra.FastWindow = 5 * time.Second
	}
	if extra.SlowWindow == 0 {
		extra.SlowWindow = 30 * time.Second
	}
	return extra
}

// TestHealthyUnderGoodTraffic: fast requests, no errors → no burn.
func TestHealthyUnderGoodTraffic(t *testing.T) {
	c := newFakeClock()
	m := New(opts(c, Options{LatencyThreshold: 100 * time.Millisecond}))
	for i := 0; i < 50; i++ {
		m.Observe(10*time.Millisecond, false)
		c.advance(200 * time.Millisecond)
	}
	r := m.Report()
	if !r.Healthy {
		t.Fatalf("healthy traffic reported burning: %+v", r)
	}
	if r.Requests != 50 {
		t.Errorf("requests = %d", r.Requests)
	}
	for _, o := range r.Objectives {
		if o.FastBurn != 0 || o.SlowBurn != 0 || o.Burning {
			t.Errorf("objective %s burning on clean traffic: %+v", o.Name, o)
		}
	}
}

// TestLatencyBurn: sustained slow requests light both windows.
func TestLatencyBurn(t *testing.T) {
	c := newFakeClock()
	m := New(opts(c, Options{
		LatencyThreshold: 50 * time.Millisecond,
		LatencyTarget:    0.99, // 1% budget
		BurnThreshold:    10,
	}))
	// 50% slow = burn 50 over every window.
	for i := 0; i < 60; i++ {
		m.Observe(10*time.Millisecond, false)
		m.Observe(200*time.Millisecond, false)
		c.advance(time.Second)
	}
	r := m.Report()
	if r.Healthy {
		t.Fatalf("sustained slowness reported healthy: %+v", r)
	}
	lat := r.Objectives[0]
	if lat.Name != "latency" || !lat.Burning {
		t.Errorf("latency objective = %+v", lat)
	}
	if lat.FastBurn < 40 || lat.SlowBurn < 40 {
		t.Errorf("burns = %v/%v, want ~50", lat.FastBurn, lat.SlowBurn)
	}
	// Availability untouched: no failures.
	if r.Objectives[1].Burning {
		t.Errorf("availability burning without errors: %+v", r.Objectives[1])
	}
}

// TestErrorBurnClearsWhenFixed: the fast window clears the alert soon
// after errors stop, even while the slow window still remembers them —
// the whole point of the two-window construction.
func TestErrorBurnClearsWhenFixed(t *testing.T) {
	c := newFakeClock()
	m := New(opts(c, Options{
		ErrorTarget:   0.999,
		BurnThreshold: 10,
		FastWindow:    5 * time.Second,
		SlowWindow:    30 * time.Second,
	}))
	// 20 seconds of 50% errors.
	for i := 0; i < 20; i++ {
		m.Observe(time.Millisecond, true)
		m.Observe(time.Millisecond, false)
		c.advance(time.Second)
	}
	if r := m.Report(); r.Healthy {
		t.Fatalf("error storm reported healthy: %+v", r)
	}
	// 10 seconds of clean traffic: fast window clears, slow still hot.
	for i := 0; i < 10; i++ {
		m.Observe(time.Millisecond, false)
		c.advance(time.Second)
	}
	r := m.Report()
	avail := r.Objectives[1]
	if avail.FastBurn != 0 {
		t.Errorf("fast burn = %v after recovery", avail.FastBurn)
	}
	if avail.SlowBurn < 10 {
		t.Errorf("slow burn = %v, should still remember the storm", avail.SlowBurn)
	}
	if !r.Healthy {
		t.Errorf("alert did not clear once fast window recovered: %+v", r)
	}
}

// TestBriefSpikeDoesNotAlert: one slow second inside a long clean
// window lights the fast burn but fails the slow-burn condition, so no
// alert fires — the slow window is what filters transients.
func TestBriefSpikeDoesNotAlert(t *testing.T) {
	c := newFakeClock()
	m := New(opts(c, Options{LatencyThreshold: 50 * time.Millisecond, BurnThreshold: 10}))
	// 25 seconds of clean traffic, then one second of pure slowness.
	for i := 0; i < 25; i++ {
		for j := 0; j < 4; j++ {
			m.Observe(time.Millisecond, false)
		}
		c.advance(time.Second)
	}
	for j := 0; j < 4; j++ {
		m.Observe(time.Second, false)
	}
	r := m.Report()
	if !r.Healthy {
		t.Fatalf("single-second spike alerted: %+v", r)
	}
	lat := r.Objectives[0]
	if lat.FastBurn <= 10 {
		t.Errorf("fast window missed the spike: %+v", lat)
	}
	if lat.SlowBurn > 10 {
		t.Errorf("slow burn %v above threshold — test premise broken", lat.SlowBurn)
	}
}

// TestFailedRequestsCountAsSlow: a fast 500 still burns latency budget.
func TestFailedRequestsCountAsSlow(t *testing.T) {
	c := newFakeClock()
	m := New(opts(c, Options{LatencyThreshold: time.Second}))
	m.Observe(time.Millisecond, true)
	r := m.Report()
	if r.Objectives[0].FastBurn == 0 {
		t.Error("fast failure did not count against latency objective")
	}
}

// TestIdleDecay: burn decays to zero once the windows roll past the
// last observation.
func TestIdleDecay(t *testing.T) {
	c := newFakeClock()
	m := New(opts(c, Options{}))
	m.Observe(time.Second, true)
	c.advance(31 * time.Second)
	r := m.Report()
	for _, o := range r.Objectives {
		if o.FastBurn != 0 || o.SlowBurn != 0 {
			t.Errorf("burn survived past the slow window: %+v", o)
		}
	}
}

// TestNilMonitor: disabled mode is healthy and inert.
func TestNilMonitor(t *testing.T) {
	var m *Monitor
	if m.Enabled() {
		t.Error("nil monitor enabled")
	}
	m.Observe(time.Second, true)
	r := m.Report()
	if !r.Healthy || len(r.Objectives) != 0 {
		t.Errorf("nil monitor report = %+v", r)
	}
}

// TestDefaults: zero options come back filled and self-consistent.
func TestDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.LatencyThreshold <= 0 || o.LatencyTarget <= 0 || o.LatencyTarget >= 1 ||
		o.ErrorTarget <= 0 || o.ErrorTarget >= 1 || o.BurnThreshold <= 0 || o.Now == nil {
		t.Errorf("defaults incomplete: %+v", o)
	}
	if o.SlowWindow < o.FastWindow {
		t.Errorf("slow window %v shorter than fast %v", o.SlowWindow, o.FastWindow)
	}
}
